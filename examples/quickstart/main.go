// Quickstart: find the paper's headline RISC-V memory-model bug in ~40
// lines. We take the Figure 3 WRC litmus test, check what C11 says about
// its causality-violating outcome, compile it with the intuitive Base
// mapping, run it on an nMCA RISC-V implementation (nMM), and watch
// TriCheck flag the bug — then apply the paper's fix and watch it go away.
package main

import (
	"fmt"
	"log"

	"tricheck"
)

func main() {
	eng := tricheck.NewEngine()

	// Figure 3: T0 stores x; T1 reads x and publishes y with a release;
	// T2 acquires y and reads x. C11 forbids seeing y==1 but x==0.
	test := tricheck.WRC.Instantiate([]tricheck.Order{
		tricheck.Rlx, tricheck.Rlx, tricheck.Rel, tricheck.Acq, tricheck.Rlx,
	})
	fmt.Println(test.Name)
	fmt.Print(test.Prog.String())
	fmt.Printf("C11 forbids: %s\n\n", test.Specified)

	// Full-stack check: intuitive compiler mapping (Table 2) on an
	// nMCA-store microarchitecture allowed by the current RISC-V spec.
	buggy := tricheck.Stack{
		Mapping: tricheck.RISCVBaseIntuitive,
		Model:   tricheck.NMM(tricheck.Curr),
	}
	res, err := eng.Run(test, buggy)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: verdict %v\n", buggy.Name(), res.Verdict)
	if res.Verdict == tricheck.Bug {
		diag, err := eng.Diagnose(res)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(diag)
	}

	// The paper's fix: cumulative lightweight fences for releases
	// (refined mapping + refined ISA semantics in the hardware model).
	fixed := tricheck.Stack{
		Mapping: tricheck.RISCVBaseRefined,
		Model:   tricheck.NMM(tricheck.Ours),
	}
	res2, err := eng.Run(test, fixed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s: verdict %v\n", fixed.Name(), res2.Verdict)
	if res2.Verdict != tricheck.Bug {
		fmt.Println("the cumulative-fence refinement eliminates the bug")
	}
}
