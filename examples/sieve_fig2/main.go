// sieve_fig2 regenerates the data behind the paper's Figure 2: the cost of
// working around the ARM load→load hazard in the compiler. Three variants
// of the parallel Sieve of Eratosthenes — relaxed atomics, relaxed atomics
// with a dmb after every load (ARM's recommended fix), and fully SC
// atomics — run on the simulated multicore of internal/timing, and an
// ASCII rendition of the figure is printed.
package main

import (
	"fmt"
	"strings"

	"tricheck/internal/sieve"
	"tricheck/internal/timing"
)

func main() {
	const n = 1000000
	pts := sieve.Figure2(n, 8, timing.DefaultConfig())

	fmt.Printf("Parallel Sieve of Eratosthenes, n=%d (simulated cycles)\n\n", n)
	max := pts[0].SC
	bar := func(v float64) string {
		w := int(v / max * 56)
		return strings.Repeat("█", w)
	}
	for _, p := range pts {
		fmt.Printf("%d threads\n", p.Threads)
		fmt.Printf("  RLX      %10.0f %s\n", p.Relaxed, bar(p.Relaxed))
		fmt.Printf("  RLX+fix  %10.0f %s\n", p.Fixed, bar(p.Fixed))
		fmt.Printf("  SC (DMB) %10.0f %s\n", p.SC, bar(p.SC))
	}
	last := pts[len(pts)-1]
	fmt.Printf("\nAt 8 threads: hazard-fix overhead %.1f%% (paper: 15.3%%); ", 100*last.FixOverhead)
	fmt.Printf("SC within %.1f%% of the fixed variant (paper: converged).\n", 100*last.SCOverFixed)

	// Correctness: all variants compute the same primes regardless of
	// synchronization strength — the property that makes relaxed atomics
	// legal here in the first place.
	r := sieve.Run(sieve.Relaxed, 8, n, timing.DefaultConfig())
	fmt.Printf("π(%d) = %d (all variants agree)\n", n, r.Primes)
}
