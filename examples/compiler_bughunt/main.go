// compiler_bughunt reproduces the paper's Section 7: using TriCheck to
// audit supposedly proven-correct C11→Power compiler mappings on an
// ARM Cortex-A9-like microarchitecture. It sweeps the full 1,701-test
// suite under both the leading-sync (Table 1) and trailing-sync mappings
// and separates the hardware load→load hazard (Figure 1, present under any
// mapping) from genuine mapping counterexamples — the loophole that
// invalidated the trailing-sync correctness proof.
package main

import (
	"fmt"
	"log"

	"tricheck"
)

func main() {
	eng := tricheck.NewEngine()
	suite := tricheck.PaperSuite()
	model := tricheck.PowerA9()

	fmt.Printf("Auditing C11→Power mappings on %d litmus tests (model: Cortex-A9-like)\n\n", len(suite))

	type audit struct {
		mapping *tricheck.Mapping
		res     *tricheck.SuiteResult
	}
	var audits []audit
	for _, m := range []*tricheck.Mapping{tricheck.PowerLeadingSync, tricheck.PowerTrailingSync} {
		res, err := eng.RunSuite(suite, tricheck.Stack{Mapping: m, Model: model}, 0)
		if err != nil {
			log.Fatal(err)
		}
		audits = append(audits, audit{m, res})
	}

	// The corr / co-rsdwi bugs are the hardware's same-address load→load
	// hazard (Figure 1): they appear under every mapping and are ARM's to
	// fix. Everything else is a mapping counterexample.
	for _, a := range audits {
		hazard, mappingBugs := 0, 0
		var examples []string
		for _, r := range a.res.Results {
			if r.Verdict != tricheck.Bug {
				continue
			}
			fam := r.Test.Shape.Name
			if fam == "corr" || fam == "co-rsdwi" {
				hazard++
			} else {
				mappingBugs++
				if len(examples) < 4 {
					examples = append(examples, r.Test.Name)
				}
			}
		}
		fmt.Printf("%s:\n", a.mapping.Name)
		fmt.Printf("  load→load hazard bugs (hardware, Figure 1): %d\n", hazard)
		fmt.Printf("  mapping counterexamples:                    %d\n", mappingBugs)
		for _, e := range examples {
			fmt.Printf("    e.g. %s\n", e)
		}
		fmt.Println()
	}

	// Diagnose the canonical trailing-sync counterexample.
	tst := tricheck.RWC.Instantiate([]tricheck.Order{
		tricheck.SC, tricheck.Acq, tricheck.SC, tricheck.SC, tricheck.SC})
	r, err := eng.Run(tst, tricheck.Stack{Mapping: tricheck.PowerTrailingSync, Model: model})
	if err != nil {
		log.Fatal(err)
	}
	if r.Verdict == tricheck.Bug {
		fmt.Println("Canonical counterexample (SC atomics mixed with an acquire load —")
		fmt.Println("the trailing hwsync runs too late to propagate the acquired write):")
		diag, err := eng.Diagnose(r)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(diag)
	}

	// And confirm the hazard is the hardware's fault: repair the model,
	// keep the mapping, and the corr bugs disappear.
	fixedModel := tricheck.PowerA9Fixed()
	res, err := eng.RunSuite(tricheck.CoRR.Generate(), tricheck.Stack{Mapping: tricheck.PowerLeadingSync, Model: fixedModel}, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nWith same-address load→load order restored in hardware (%s):\n", fixedModel.Name)
	fmt.Printf("  corr bugs under leading-sync: %d (was 18)\n", res.Tally.Bugs)
}
