// riscv_casestudy replays the paper's Section 5 analysis of the RISC-V
// memory model step by step: each subsection's litmus test is run against
// the current RISC-V MCM (riscv-curr) and the paper's proposed refinement
// (riscv-ours), printing the verdict transitions the refinement loop of
// Figure 6 produces.
package main

import (
	"fmt"
	"log"

	"tricheck"
)

type step struct {
	title   string
	test    *tricheck.Test
	base    bool // Base ISA (fences) vs Base+A (AMOs)
	expects string
}

func main() {
	eng := tricheck.NewEngine()

	steps := []step{
		{
			title: "5.1.1 Lack of cumulative lightweight fences (WRC, Figure 8)",
			test: tricheck.WRC.Instantiate([]tricheck.Order{
				tricheck.Rlx, tricheck.Rlx, tricheck.Rel, tricheck.Acq, tricheck.Rlx}),
			base:    true,
			expects: "Bug under riscv-curr: fence rw,w is not cumulative; fixed by lwf",
		},
		{
			title: "5.1.2 Lack of cumulative heavyweight fences (IRIW, Figure 9)",
			test: tricheck.IRIW.Instantiate([]tricheck.Order{
				tricheck.SC, tricheck.SC, tricheck.SC, tricheck.SC, tricheck.SC, tricheck.SC}),
			base:    true,
			expects: "Bug under riscv-curr: fence rw,rw is not cumulative; fixed by hwf",
		},
		{
			title: "5.1.3 Reordering loads to the same address (CoRR)",
			test: tricheck.CoRR.Instantiate([]tricheck.Order{
				tricheck.Rlx, tricheck.Rlx, tricheck.Rlx, tricheck.Rlx}),
			base:    true,
			expects: "Bug under riscv-curr: same-address R→R not required; fixed in the ISA",
		},
		{
			title: "5.2.1 Lack of cumulative releases (WRC on Base+A, Figure 10)",
			test: tricheck.WRC.Instantiate([]tricheck.Order{
				tricheck.Rlx, tricheck.Rlx, tricheck.Rel, tricheck.Acq, tricheck.Rlx}),
			base:    false,
			expects: "Bug under riscv-curr: AMO.rl is not cumulative; fixed by lazy cumulative releases",
		},
		{
			title: "5.2.2 Absence of roach-motel movement for SC atomics (MP, Figure 11)",
			test: tricheck.MP.Instantiate([]tricheck.Order{
				tricheck.SC, tricheck.Rlx, tricheck.SC, tricheck.SC}),
			base:    false,
			expects: "OverlyStrict under riscv-curr: AMO.aq.rl blocks roach motel; relaxed by AMO.rl.sc",
		},
		{
			title: "5.2.3 Lazy implementation of cumulativity (MP with address dependency, Figure 13)",
			test: tricheck.MPAddrDep.Instantiate([]tricheck.Order{
				tricheck.Rel, tricheck.Rel, tricheck.Rlx, tricheck.Acq}),
			base:    false,
			expects: "OverlyStrict under riscv-curr: eager releases; riscv-ours allows lazy cumulativity",
		},
	}

	for _, s := range steps {
		fmt.Printf("── %s ──\n", s.title)
		fmt.Printf("   %s\n", s.expects)
		curr := stackFor(s.base, tricheck.Curr)
		ours := stackFor(s.base, tricheck.Ours)
		r1, err := eng.Run(s.test, curr)
		if err != nil {
			log.Fatal(err)
		}
		r2, err := eng.Run(s.test, ours)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   %-14s -> %-14s   (%s)\n", r1.Verdict, r2.Verdict, s.test.Name)
		if r1.Verdict == tricheck.Bug {
			diag, err := eng.Diagnose(r1)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("   %s\n", diag)
		}
		fmt.Println()
	}
	fmt.Println("All six Section 5 findings reproduce: three bugs and two over-strictness")
	fmt.Println("cases under riscv-curr, all resolved by the riscv-ours refinements.")
}

func stackFor(base bool, v tricheck.Variant) tricheck.Stack {
	// The weakest nMCA model shows every effect; use nMM throughout.
	var m *tricheck.Mapping
	switch {
	case base && v == tricheck.Curr:
		m = tricheck.RISCVBaseIntuitive
	case base && v == tricheck.Ours:
		m = tricheck.RISCVBaseRefined
	case !base && v == tricheck.Curr:
		m = tricheck.RISCVAtomicsIntuitive
	default:
		m = tricheck.RISCVAtomicsRefined
	}
	return tricheck.Stack{Mapping: m, Model: tricheck.NMM(v)}
}
