package tricheck_test

import (
	"fmt"
	"log"
	"strings"
	"testing"

	"tricheck"
)

// ExampleEngine_Run demonstrates the quick-start flow: detect the Figure 3
// WRC bug on an nMCA RISC-V implementation under the current MCM.
func ExampleEngine_Run() {
	eng := tricheck.NewEngine()
	test := tricheck.WRC.Instantiate([]tricheck.Order{
		tricheck.Rlx, tricheck.Rlx, tricheck.Rel, tricheck.Acq, tricheck.Rlx})
	res, err := eng.Run(test, tricheck.Stack{
		Mapping: tricheck.RISCVBaseIntuitive,
		Model:   tricheck.NMM(tricheck.Curr),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Verdict)
	// Output: Bug
}

// ExampleEngine_RunSuite shows family-level aggregation: the Section 5.1.1
// count of 108 buggy WRC variants.
func ExampleEngine_RunSuite() {
	eng := tricheck.NewEngine()
	res, err := eng.RunSuite(tricheck.WRC.Generate(), tricheck.Stack{
		Mapping: tricheck.RISCVBaseIntuitive,
		Model:   tricheck.NMM(tricheck.Curr),
	}, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Tally.SpecifiedBugs)
	// Output: 108
}

func TestFacadeShapeRegistry(t *testing.T) {
	if len(tricheck.PaperShapes()) != 7 {
		t.Errorf("%d paper shapes, want 7", len(tricheck.PaperShapes()))
	}
	if len(tricheck.AllShapes()) < 10 {
		t.Errorf("%d shapes total, want the extended set too", len(tricheck.AllShapes()))
	}
	if tricheck.ShapeByName("iriw") != tricheck.IRIW {
		t.Error("ShapeByName broken through the facade")
	}
	if len(tricheck.PaperSuite()) != 1701 {
		t.Errorf("paper suite = %d tests, want 1701", len(tricheck.PaperSuite()))
	}
}

func TestFacadeMappingsAndModels(t *testing.T) {
	if len(tricheck.Mappings()) != 9 {
		t.Errorf("%d mappings, want 9", len(tricheck.Mappings()))
	}
	if tricheck.MappingByName("riscv-base-refined") != tricheck.RISCVBaseRefined {
		t.Error("MappingByName broken")
	}
	for _, v := range []tricheck.Variant{tricheck.Curr, tricheck.Ours} {
		if len(tricheck.Models(v)) != 7 {
			t.Errorf("%d models for %v, want 7", len(tricheck.Models(v)), v)
		}
	}
	if tricheck.ModelByName("A9like", tricheck.Curr) == nil {
		t.Error("ModelByName broken")
	}
	if tricheck.PowerA9() == nil || tricheck.PowerA9Fixed() == nil ||
		tricheck.SCProofModel() == nil || tricheck.AlphaLike() == nil {
		t.Error("companion model constructors broken")
	}
}

func TestFacadeCompileAndReports(t *testing.T) {
	test := tricheck.MP.Instantiate([]tricheck.Order{
		tricheck.Rlx, tricheck.Rel, tricheck.Acq, tricheck.Rlx})
	prog, err := tricheck.CompileTest(tricheck.RISCVAtomicsIntuitive, test)
	if err != nil {
		t.Fatal(err)
	}
	if prog.NumThreads() != 2 {
		t.Errorf("compiled threads = %d", prog.NumThreads())
	}
	eng := tricheck.NewEngine()
	res, err := eng.RunSuite(tricheck.MP.Generate(), tricheck.Stack{
		Mapping: tricheck.RISCVBaseIntuitive, Model: tricheck.NMM(tricheck.Curr)}, 0)
	if err != nil {
		t.Fatal(err)
	}
	var fig, csv, t7, mt strings.Builder
	tricheck.WriteFigure15(&fig, []*tricheck.SuiteResult{res})
	tricheck.WriteCSV(&csv, []*tricheck.SuiteResult{res})
	tricheck.WriteTable7(&t7, tricheck.Curr)
	tricheck.WriteMappingTable(&mt, tricheck.RISCVBaseIntuitive)
	for name, s := range map[string]string{
		"Figure15": fig.String(), "CSV": csv.String(), "Table7": t7.String(), "MappingTable": mt.String(),
	} {
		if s == "" {
			t.Errorf("%s writer produced nothing", name)
		}
	}
}

func TestFacadeStacks(t *testing.T) {
	stacks := tricheck.RISCVStacks(true, tricheck.Ours)
	if len(stacks) != 7 {
		t.Fatalf("%d stacks", len(stacks))
	}
	for _, s := range stacks {
		if s.Mapping != tricheck.RISCVBaseRefined {
			t.Error("base/ours stacks must pair with the refined mapping")
		}
	}
}

// TestFacadeOperationalSimulators: the exposed operational simulators run
// and agree with the engine's verdicts on a known case.
func TestFacadeOperationalSimulators(t *testing.T) {
	tst := tricheck.WRC.Instantiate([]tricheck.Order{
		tricheck.Rlx, tricheck.Rlx, tricheck.Rel, tricheck.Acq, tricheck.Rlx})
	prog, err := tricheck.CompileTest(tricheck.RISCVBaseIntuitive, tst)
	if err != nil {
		t.Fatal(err)
	}
	if tricheck.OperationalWR(prog).Outcomes()[tst.Specified] {
		t.Error("WRC bug reachable on the MCA machine")
	}
	if tricheck.OperationalTSO(prog).Outcomes()[tst.Specified] {
		t.Error("WRC bug reachable on TSO")
	}
	if !tricheck.OperationalNWR(prog).Outcomes()[tst.Specified] {
		t.Error("WRC bug unreachable on the operational nMCA machine")
	}
}
