package tricheck_test

import (
	"fmt"
	"log"
	"strings"
	"testing"

	"tricheck"
)

// ExampleEngine_Run demonstrates the quick-start flow: detect the Figure 3
// WRC bug on an nMCA RISC-V implementation under the current MCM.
func ExampleEngine_Run() {
	eng := tricheck.NewEngine()
	test := tricheck.WRC.Instantiate([]tricheck.Order{
		tricheck.Rlx, tricheck.Rlx, tricheck.Rel, tricheck.Acq, tricheck.Rlx})
	res, err := eng.Run(test, tricheck.Stack{
		Mapping: tricheck.RISCVBaseIntuitive,
		Model:   tricheck.NMM(tricheck.Curr),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Verdict)
	// Output: Bug
}

// ExampleEngine_RunSuite shows family-level aggregation: the Section 5.1.1
// count of 108 buggy WRC variants.
func ExampleEngine_RunSuite() {
	eng := tricheck.NewEngine()
	res, err := eng.RunSuite(tricheck.WRC.Generate(), tricheck.Stack{
		Mapping: tricheck.RISCVBaseIntuitive,
		Model:   tricheck.NMM(tricheck.Curr),
	}, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Tally.SpecifiedBugs)
	// Output: 108
}

func TestFacadeShapeRegistry(t *testing.T) {
	if len(tricheck.PaperShapes()) != 7 {
		t.Errorf("%d paper shapes, want 7", len(tricheck.PaperShapes()))
	}
	if len(tricheck.AllShapes()) < 10 {
		t.Errorf("%d shapes total, want the extended set too", len(tricheck.AllShapes()))
	}
	if tricheck.ShapeByName("iriw") != tricheck.IRIW {
		t.Error("ShapeByName broken through the facade")
	}
	if len(tricheck.PaperSuite()) != 1701 {
		t.Errorf("paper suite = %d tests, want 1701", len(tricheck.PaperSuite()))
	}
}

func TestFacadeMappingsAndModels(t *testing.T) {
	if len(tricheck.Mappings()) != 9 {
		t.Errorf("%d mappings, want 9", len(tricheck.Mappings()))
	}
	if tricheck.MappingByName("riscv-base-refined") != tricheck.RISCVBaseRefined {
		t.Error("MappingByName broken")
	}
	for _, v := range []tricheck.Variant{tricheck.Curr, tricheck.Ours} {
		if len(tricheck.Models(v)) != 7 {
			t.Errorf("%d models for %v, want 7", len(tricheck.Models(v)), v)
		}
	}
	if tricheck.ModelByName("A9like", tricheck.Curr) == nil {
		t.Error("ModelByName broken")
	}
	if tricheck.PowerA9() == nil || tricheck.PowerA9Fixed() == nil ||
		tricheck.SCProofModel() == nil || tricheck.AlphaLike() == nil {
		t.Error("companion model constructors broken")
	}
}

func TestFacadeCompileAndReports(t *testing.T) {
	test := tricheck.MP.Instantiate([]tricheck.Order{
		tricheck.Rlx, tricheck.Rel, tricheck.Acq, tricheck.Rlx})
	prog, err := tricheck.CompileTest(tricheck.RISCVAtomicsIntuitive, test)
	if err != nil {
		t.Fatal(err)
	}
	if prog.NumThreads() != 2 {
		t.Errorf("compiled threads = %d", prog.NumThreads())
	}
	eng := tricheck.NewEngine()
	res, err := eng.RunSuite(tricheck.MP.Generate(), tricheck.Stack{
		Mapping: tricheck.RISCVBaseIntuitive, Model: tricheck.NMM(tricheck.Curr)}, 0)
	if err != nil {
		t.Fatal(err)
	}
	var fig, csv, t7, mt strings.Builder
	tricheck.WriteFigure15(&fig, []*tricheck.SuiteResult{res})
	tricheck.WriteCSV(&csv, []*tricheck.SuiteResult{res})
	tricheck.WriteTable7(&t7, tricheck.Curr)
	tricheck.WriteMappingTable(&mt, tricheck.RISCVBaseIntuitive)
	for name, s := range map[string]string{
		"Figure15": fig.String(), "CSV": csv.String(), "Table7": t7.String(), "MappingTable": mt.String(),
	} {
		if s == "" {
			t.Errorf("%s writer produced nothing", name)
		}
	}
}

func TestFacadeStacks(t *testing.T) {
	stacks := tricheck.RISCVStacks(true, tricheck.Ours)
	if len(stacks) != 7 {
		t.Fatalf("%d stacks", len(stacks))
	}
	for _, s := range stacks {
		if s.Mapping != tricheck.RISCVBaseRefined {
			t.Error("base/ours stacks must pair with the refined mapping")
		}
	}
}

// TestFacadeOperationalSimulators: the exposed operational simulators run
// and agree with the engine's verdicts on a known case.
func TestFacadeOperationalSimulators(t *testing.T) {
	tst := tricheck.WRC.Instantiate([]tricheck.Order{
		tricheck.Rlx, tricheck.Rlx, tricheck.Rel, tricheck.Acq, tricheck.Rlx})
	prog, err := tricheck.CompileTest(tricheck.RISCVBaseIntuitive, tst)
	if err != nil {
		t.Fatal(err)
	}
	if tricheck.OperationalWR(prog).Outcomes()[tst.Specified] {
		t.Error("WRC bug reachable on the MCA machine")
	}
	if tricheck.OperationalTSO(prog).Outcomes()[tst.Specified] {
		t.Error("WRC bug reachable on TSO")
	}
	if !tricheck.OperationalNWR(prog).Outcomes()[tst.Specified] {
		t.Error("WRC bug unreachable on the operational nMCA machine")
	}
}

// TestFacadeSynthesis: the synthesis surface — enumerate, filter,
// summarize, run one novel shape end to end through the engine.
func TestFacadeSynthesis(t *testing.T) {
	res, err := tricheck.SynthesizeShapes(tricheck.SynthOptions{MaxLen: 4, Deps: true})
	if err != nil {
		t.Fatal(err)
	}
	st := tricheck.SynthSummarize(res)
	if st.Cycles != 12 || st.Novel != 6 || st.Variants != 918 {
		t.Errorf("max-len 4 with deps: %d shapes / %d novel / %d variants, want 12/6/918",
			st.Cycles, st.Novel, st.Variants)
	}
	novel := tricheck.SynthNovelOnly(res)
	if len(novel) != st.Novel {
		t.Fatalf("SynthNovelOnly kept %d, want %d", len(novel), st.Novel)
	}
	if got := len(tricheck.SynthShapes(res)); got != st.Cycles {
		t.Fatalf("SynthShapes kept %d, want %d", got, st.Cycles)
	}
	// The one-write CoRR cycle bugs on the Section 5.1.3 stack.
	var corr *tricheck.Synthesized
	for _, s := range novel {
		if s.Shape.Name == "syn-pos.fre.rfe" {
			corr = s
		}
	}
	if corr == nil {
		t.Fatal("syn-pos.fre.rfe missing")
	}
	eng := tricheck.NewEngine()
	sr, err := eng.RunSuite(corr.Shape.Generate(),
		tricheck.Stack{Mapping: tricheck.RISCVBaseIntuitive, Model: tricheck.NMM(tricheck.Curr)}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Tally.SpecifiedBugs != 6 {
		t.Errorf("one-write corr on Base/nMM-curr: %d specified bugs, want 6", sr.Tally.SpecifiedBugs)
	}
	// Structural fingerprints collapse a test and its thread-permuted
	// corpus round trip onto one identity.
	probe := corr.Shape.Generate()[0]
	if tricheck.StructuralFingerprint(probe) != corr.Fingerprint {
		t.Error("facade StructuralFingerprint disagrees with the synthesizer's dedup key")
	}
}
