package mem

import (
	"errors"
	"fmt"
)

// ErrStopped is returned by Enumerate when the visitor requested an early
// stop; callers that stop deliberately usually ignore it.
var ErrStopped = errors.New("mem: enumeration stopped by visitor")

// ErrUnresolvable is returned when a register-carried address can never be
// resolved (a cross-thread value dependency cycle); litmus tests in this
// repository never trigger it.
var ErrUnresolvable = errors.New("mem: unresolvable register-carried address")

// Enumerate visits every candidate execution of p (see the package comment
// for exactly which consistency facts are baked in). The visitor may return
// false to stop enumeration early, in which case Enumerate returns
// ErrStopped.
//
// Visitor contract: the Execution passed to visit is a scratch value owned
// by the enumerator and reused for every candidate — its slices (RF, MO,
// MOIndex, LocOf, RVal, WVal) are overwritten between calls. A visitor may
// read it freely for the duration of the call (evaluators are expected to
// borrow it zero-copy, e.g. to layer per-execution µhb overlay edges over
// a static skeleton) but must Clone anything it retains afterwards.
// Allocation-averse visitors should use the Append* accessors
// (AppendFRSuccessors) with their own scratch buffers instead of the
// slice-returning convenience forms.
func Enumerate(p *Program, visit func(*Execution) bool) error {
	if err := p.Validate(); err != nil {
		return err
	}
	p.frozen.Store(true)
	en := &enumerator{p: p, visit: visit}
	en.init()
	en.assignReads()
	if en.stopped {
		return ErrStopped
	}
	if en.err == nil && !en.yielded && en.deadEnd {
		return fmt.Errorf("%w (thread values feed addresses cyclically)", ErrUnresolvable)
	}
	return en.err
}

// Executions collects all candidate executions of p. Each returned
// Execution is an independent copy.
func Executions(p *Program) ([]*Execution, error) {
	var out []*Execution
	err := Enumerate(p, func(x *Execution) bool {
		out = append(out, x.Clone())
		return true
	})
	return out, err
}

// Outcomes returns the set of observer outcomes over all candidate
// executions (before any memory-model filtering).
func Outcomes(p *Program) (map[Outcome]bool, error) {
	out := map[Outcome]bool{}
	err := Enumerate(p, func(x *Execution) bool {
		out[x.OutcomeOf()] = true
		return true
	})
	return out, err
}

// Clone returns a deep copy of the execution.
func (x *Execution) Clone() *Execution {
	c := &Execution{
		P:       x.P,
		RF:      append([]int(nil), x.RF...),
		MOIndex: append([]int(nil), x.MOIndex...),
		LocOf:   append([]Loc(nil), x.LocOf...),
		RVal:    append([]int64(nil), x.RVal...),
		WVal:    append([]int64(nil), x.WVal...),
	}
	c.MO = make([][]int, len(x.MO))
	for i := range x.MO {
		c.MO[i] = append([]int(nil), x.MO[i]...)
	}
	return c
}

const rfUnassigned = -2

type enumerator struct {
	p       *Program
	visit   func(*Execution) bool
	stopped bool
	err     error
	yielded bool // at least one execution reached the visitor
	deadEnd bool // some branch was pruned as value-unresolvable

	reads  []*Event // reading events, (thread, index) order
	writes []*Event // writing events, gid order
	rf     []int    // by gid; rfUnassigned until chosen
	done   []bool   // by position in reads

	x Execution // scratch execution handed to the visitor
}

func (en *enumerator) init() {
	p := en.p
	en.reads = p.sortedByPO(func(e *Event) bool { return e.IsRead() })
	for _, e := range p.events {
		if e.IsWrite() {
			en.writes = append(en.writes, e)
		}
	}
	en.rf = make([]int, len(p.events))
	for i := range en.rf {
		en.rf[i] = rfUnassigned
	}
	en.done = make([]bool, len(en.reads))
	en.x = Execution{
		P:       p,
		MOIndex: make([]int, len(p.events)),
		LocOf:   make([]Loc, len(p.events)),
		RVal:    make([]int64, len(p.events)),
		WVal:    make([]int64, len(p.events)),
	}
}

// operandValue resolves an operand evaluated by thread t at program-order
// position idx under the current partial rf assignment. The second result
// is false while the value still depends on an unassigned read.
func (en *enumerator) operandValue(t, idx int, op Operand, visiting map[int]bool) (int64, bool) {
	if op.Kind == OpConst {
		return op.Const, true
	}
	// Find the latest earlier load of this thread writing the register.
	th := en.p.Threads[t]
	for i := idx - 1; i >= 0; i-- {
		e := th[i]
		if e.IsRead() && e.Dst == op.Reg {
			return en.readValue(e.GID, visiting)
		}
	}
	return 0, false // unreachable after Validate
}

// readValue resolves the value read by event gid, if determined.
func (en *enumerator) readValue(gid int, visiting map[int]bool) (int64, bool) {
	if visiting[gid] {
		return 0, false // value-dependency cycle (out of thin air)
	}
	src := en.rf[gid]
	switch src {
	case rfUnassigned:
		return 0, false
	case InitWrite:
		return 0, true
	}
	visiting[gid] = true
	v, ok := en.writeValue(src, visiting)
	delete(visiting, gid)
	return v, ok
}

// writeValue resolves the value written by event gid, if determined.
func (en *enumerator) writeValue(gid int, visiting map[int]bool) (int64, bool) {
	e := en.p.events[gid]
	data, ok := en.operandValue(e.Thread, e.Index, e.Data, visiting)
	if !ok {
		return 0, false
	}
	if e.Kind == Write {
		return data, true
	}
	// RMW
	old, ok := en.readValue(gid, visiting)
	if !ok {
		return 0, false
	}
	switch e.RMWOp {
	case RMWAdd:
		return old + data, true
	case RMWSwap:
		return data, true
	}
	return 0, false
}

// eventLoc resolves the location accessed by event gid, if determined.
func (en *enumerator) eventLoc(gid int) (Loc, bool) {
	e := en.p.events[gid]
	if e.Kind == Fence {
		return LocNone, true
	}
	v, ok := en.operandValue(e.Thread, e.Index, e.Addr, map[int]bool{})
	if !ok {
		return LocNone, false
	}
	return Loc(v), true
}

// assignReads recursively chooses an rf source for every reading event.
// At each step it picks the first (thread, index)-ordered unassigned read
// whose address is already resolvable, so that address dependencies chain
// naturally; writes whose own location is not yet resolvable are offered as
// candidates optimistically and checked once everything is assigned.
func (en *enumerator) assignReads() {
	if en.stopped || en.err != nil {
		return
	}
	pick := -1
	var pickLoc Loc
	sawUnassigned := false
	for i, r := range en.reads {
		if en.done[i] {
			continue
		}
		sawUnassigned = true
		if loc, ok := en.eventLoc(r.GID); ok {
			if loc < 0 || int(loc) >= en.p.NumLocs {
				return // resolved to a non-location value: invalid branch
			}
			pick, pickLoc = i, loc
			break
		}
	}
	if !sawUnassigned {
		en.finishReads()
		return
	}
	if pick == -1 {
		// Reads remain but none is resolvable on this branch: a value
		// dependency cycle (out of thin air) induced by the optimistic rf
		// choices so far. Prune the branch; if the whole enumeration ends
		// this way, Enumerate reports ErrUnresolvable.
		en.deadEnd = true
		return
	}
	r := en.reads[pick]
	en.done[pick] = true
	// Candidate sources: the initial value plus every write whose location
	// is (or may turn out to be) pickLoc.
	en.rf[r.GID] = InitWrite
	en.assignReads()
	for _, w := range en.writes {
		if en.stopped || en.err != nil {
			break
		}
		if w.GID == r.GID {
			continue
		}
		wloc, ok := en.eventLoc(w.GID)
		if ok && wloc != pickLoc {
			continue
		}
		en.rf[r.GID] = w.GID
		en.assignReads()
	}
	en.rf[r.GID] = rfUnassigned
	en.done[pick] = false
}

// finishReads validates the completed rf assignment (deferred location
// checks) and proceeds to coherence-order enumeration.
func (en *enumerator) finishReads() {
	p := en.p
	for _, e := range p.events {
		loc, ok := en.eventLoc(e.GID)
		if !ok || (e.Kind != Fence && (loc < 0 || int(loc) >= p.NumLocs)) {
			return // still unresolved or invalid: reject branch
		}
		en.x.LocOf[e.GID] = loc
	}
	for _, r := range en.reads {
		if src := en.rf[r.GID]; src != InitWrite {
			if en.x.LocOf[src] != en.x.LocOf[r.GID] {
				return // optimistic candidate turned out to mismatch
			}
		}
	}
	// Group writes by resolved location.
	byLoc := make([][]int, p.NumLocs)
	for _, w := range en.writes {
		l := en.x.LocOf[w.GID]
		byLoc[l] = append(byLoc[l], w.GID)
	}
	// Reject if two RMWs read from the same source: atomicity would force
	// both to immediately follow it in mo.
	seenSrc := map[int]bool{}
	for _, w := range en.writes {
		if w.Kind != RMW {
			continue
		}
		src := en.rf[w.GID]
		if seenSrc[src] && src != InitWrite {
			return
		}
		if src == InitWrite {
			// Two init-reading RMWs on the same location also conflict.
			key := -1000 - int(en.x.LocOf[w.GID])
			if seenSrc[key] {
				return
			}
			seenSrc[key] = true
			continue
		}
		seenSrc[src] = true
	}
	en.x.MO = make([][]int, p.NumLocs)
	en.enumerateMO(byLoc, 0)
}

// enumerateMO enumerates per-location coherence orders consistent with
// program order (CoWW) and RMW atomicity, location by location.
func (en *enumerator) enumerateMO(byLoc [][]int, l int) {
	if en.stopped || en.err != nil {
		return
	}
	if l == len(byLoc) {
		en.finishExecution()
		return
	}
	ws := byLoc[l]
	if len(ws) == 0 {
		en.x.MO[l] = nil
		en.enumerateMO(byLoc, l+1)
		return
	}
	perm := make([]int, 0, len(ws))
	used := make([]bool, len(ws))
	var rec func()
	rec = func() {
		if en.stopped || en.err != nil {
			return
		}
		if len(perm) == len(ws) {
			en.x.MO[l] = perm
			for i, w := range perm {
				en.x.MOIndex[w] = i + 1
			}
			en.enumerateMO(byLoc, l+1)
			return
		}
		// If an unplaced RMW reads from the most recently placed write (or
		// from init at position 0), it must come next.
		forced := -1
		var prev int // source a next-placed RMW must have
		if len(perm) == 0 {
			prev = InitWrite
		} else {
			prev = perm[len(perm)-1]
		}
		for i, w := range ws {
			if used[i] {
				continue
			}
			e := en.p.events[w]
			if e.Kind == RMW && en.rf[w] == prev {
				// Only force if prev is actually this RMW's source; for
				// init sources this only applies at position 0.
				if prev != InitWrite || len(perm) == 0 {
					forced = i
					break
				}
			}
		}
		for i, w := range ws {
			if used[i] {
				continue
			}
			if forced >= 0 && i != forced {
				continue
			}
			e := en.p.events[w]
			// CoWW: same-thread writes to this location in program order.
			ok := true
			for j, w2 := range ws {
				if !used[j] && j != i && en.p.events[w2].Thread == e.Thread && en.p.events[w2].Index < e.Index {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			// RMW atomicity: an RMW may only be placed right after its
			// source (or first, if it reads init).
			if e.Kind == RMW && en.rf[w] != prev {
				continue
			}
			// Conversely, if the previous write is some RMW's source, only
			// that RMW may follow (forced above); additionally no placed
			// RMW may be followed by a write that breaks adjacency — the
			// "forced" rule already guarantees this.
			used[i] = true
			perm = append(perm, w)
			rec()
			perm = perm[:len(perm)-1]
			used[i] = false
		}
	}
	rec()
}

// finishExecution applies the CoWR/CoRW filters, resolves all values and
// hands the candidate to the visitor.
func (en *enumerator) finishExecution() {
	p := en.p
	x := &en.x
	// CoWR / CoRW with respect to same-thread writes.
	for _, r := range en.reads {
		loc := x.LocOf[r.GID]
		srcIdx := 0
		if s := en.rf[r.GID]; s != InitWrite {
			srcIdx = x.MOIndex[s]
		}
		for _, e := range p.Threads[r.Thread] {
			if !e.IsWrite() || e.GID == r.GID || x.LocOf[e.GID] != loc {
				continue
			}
			if e.Index < r.Index && x.MOIndex[e.GID] > srcIdx {
				return // CoWR: read an older value than our own prior write
			}
			if e.Index > r.Index && x.MOIndex[e.GID] <= srcIdx {
				return // CoRW: read our own (or a newer-than-own) later write
			}
		}
	}
	// Resolve all values; reject executions with undetermined values
	// (out-of-thin-air cycles).
	for _, r := range en.reads {
		v, ok := en.readValue(r.GID, map[int]bool{})
		if !ok {
			return
		}
		x.RVal[r.GID] = v
	}
	for _, w := range en.writes {
		v, ok := en.writeValue(w.GID, map[int]bool{})
		if !ok {
			return
		}
		x.WVal[w.GID] = v
	}
	x.RF = en.rf
	en.yielded = true
	if !en.visit(x) {
		en.stopped = true
	}
}
