package mem

import (
	"errors"
	"fmt"
	"sync"
)

// ErrStopped is returned by Enumerate when the visitor requested an early
// stop; callers that stop deliberately usually ignore it.
var ErrStopped = errors.New("mem: enumeration stopped by visitor")

// ErrUnresolvable is returned when a register-carried address can never be
// resolved (a cross-thread value dependency cycle); litmus tests in this
// repository never trigger it.
var ErrUnresolvable = errors.New("mem: unresolvable register-carried address")

// Enumerate visits every candidate execution of p (see the package comment
// for exactly which consistency facts are baked in). The visitor may return
// false to stop enumeration early, in which case Enumerate returns
// ErrStopped.
//
// Visitor contract: the Execution passed to visit is a scratch value owned
// by the enumerator and reused for every candidate — its slices (RF, MO,
// MOIndex, LocOf, RVal, WVal) are overwritten between calls. A visitor may
// read it freely for the duration of the call (evaluators are expected to
// borrow it zero-copy, e.g. to layer per-execution µhb overlay edges over
// a static skeleton) but must Clone anything it retains afterwards.
// Allocation-averse visitors should use the Append* accessors
// (AppendFRSuccessors) with their own scratch buffers instead of the
// slice-returning convenience forms.
func Enumerate(p *Program, visit func(*Execution) bool) error {
	return enumerate(p, visit, false)
}

// EnumerateDelta is Enumerate in minimal-change order: every choice
// point (rf source per read, coherence-order branch per depth) scans
// its alternatives in a reflected, mixed-radix-Gray-code order, so
// consecutive candidates differ in as few rf/mo decisions as possible.
// That keeps the edge delta between consecutive overlays small, which
// is what the incremental acyclicity tier (uhb.Incr) amortizes best.
//
// The visited candidate multiset is exactly Enumerate's — only the
// order differs. Callers that derive order-sensitive statistics from
// the stream (e.g. "graphs checked before an outcome was known
// observable") will see those statistics change, which is why the
// default verdict path keeps Enumerate's natural backtracking order.
func EnumerateDelta(p *Program, visit func(*Execution) bool) error {
	return enumerate(p, visit, true)
}

// enumeratorPool recycles enumerator scratch across evaluations: a cold
// sweep runs two short enumerations per job (C11 and µspec), so the
// per-run buffer setup is a measurable slice of its allocation profile.
var enumeratorPool = sync.Pool{New: func() any { return new(enumerator) }}

func enumerate(p *Program, visit func(*Execution) bool, delta bool) error {
	if err := p.Validate(); err != nil {
		return err
	}
	p.frozen.Store(true)
	en := enumeratorPool.Get().(*enumerator)
	en.init(p, visit, delta)
	en.assignReads()
	err := en.err
	if en.stopped {
		err = ErrStopped
	} else if err == nil && !en.yielded && en.deadEnd {
		err = fmt.Errorf("%w (thread values feed addresses cyclically)", ErrUnresolvable)
	}
	en.p, en.visit, en.x.P = nil, nil, nil
	enumeratorPool.Put(en)
	return err
}

// Executions collects all candidate executions of p. Each returned
// Execution is an independent copy.
func Executions(p *Program) ([]*Execution, error) {
	var out []*Execution
	err := Enumerate(p, func(x *Execution) bool {
		out = append(out, x.Clone())
		return true
	})
	return out, err
}

// Outcomes returns the set of observer outcomes over all candidate
// executions (before any memory-model filtering).
func Outcomes(p *Program) (map[Outcome]bool, error) {
	out := map[Outcome]bool{}
	err := Enumerate(p, func(x *Execution) bool {
		out[x.OutcomeOf()] = true
		return true
	})
	return out, err
}

// Clone returns a deep copy of the execution.
func (x *Execution) Clone() *Execution {
	c := &Execution{
		P:       x.P,
		RF:      append([]int(nil), x.RF...),
		MOIndex: append([]int(nil), x.MOIndex...),
		LocOf:   append([]Loc(nil), x.LocOf...),
		RVal:    append([]int64(nil), x.RVal...),
		WVal:    append([]int64(nil), x.WVal...),
	}
	c.MO = make([][]int, len(x.MO))
	for i := range x.MO {
		c.MO[i] = append([]int(nil), x.MO[i]...)
	}
	return c
}

const rfUnassigned = -2

type enumerator struct {
	p       *Program
	visit   func(*Execution) bool
	stopped bool
	err     error
	yielded bool // at least one execution reached the visitor
	deadEnd bool // some branch was pruned as value-unresolvable
	delta   bool // EnumerateDelta: reflected (minimal-change) choice order

	reads  []*Event // reading events, (thread, index) order
	writes []*Event // writing events, gid order
	rf     []int    // by gid; rfUnassigned until chosen
	done   []bool   // by position in reads

	// Reused scratch. The enumeration inner loops are allocation-free in
	// steady state: value resolution marks visiting (entries are always
	// cleared on exit, so the slice is all-false between top-level
	// calls), finishReads groups writes into byLoc rows and stamps RMW
	// sources with seenEpoch instead of filling fresh maps, and each
	// location's permutation state lives in permBuf/usedBuf.
	visiting   []bool
	constLoc   []Loc   // by gid: constant-address location (or fence LocNone)
	constLocOK []bool  // by gid: constLoc is valid, skip operand resolution
	constWVal  []int64 // by gid: constant plain-write value
	constWOK   []bool  // by gid: constWVal is valid
	byLoc      [][]int
	seenEp     []int32 // by write gid: seenEpoch when seen as an RMW source
	seenInitEp []int32 // by location: seenEpoch when an init-reading RMW was seen
	seenEpoch  int32
	permBuf    [][]int
	usedBuf    [][]bool
	rfDir      []bool   // delta mode: per-read reflected iteration direction
	moDir      []uint64 // delta mode: per-location, per-depth direction bits

	x Execution // scratch execution handed to the visitor
}

// sized returns buf resized to n elements, zeroed — reusing its backing
// array when the capacity allows.
func sized[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	buf = buf[:n]
	clear(buf)
	return buf
}

// sizedRows resizes a slice-of-rows to n, preserving the backing arrays
// of surviving rows (callers reslice rows to [:0] before use).
func sizedRows[T any](rows [][]T, n int) [][]T {
	if cap(rows) < n {
		return make([][]T, n)
	}
	return rows[:n]
}

// init (re)binds pooled enumerator scratch to a program, reusing every
// buffer whose capacity still fits.
func (en *enumerator) init(p *Program, visit func(*Execution) bool, delta bool) {
	en.p, en.visit, en.delta = p, visit, delta
	en.stopped, en.err, en.yielded, en.deadEnd = false, nil, false, false
	en.seenEpoch = 0
	en.reads = en.reads[:0]
	en.writes = en.writes[:0]
	for _, e := range p.events {
		if e.IsRead() {
			en.reads = append(en.reads, e)
		}
		if e.IsWrite() {
			en.writes = append(en.writes, e)
		}
	}
	// (thread, index) order; the key is unique per event, so any sort
	// yields the order sortedByPO produced. Insertion sort: litmus-scale
	// event counts, no closure/swapper allocation.
	for i := 1; i < len(en.reads); i++ {
		for j := i; j > 0; j-- {
			a, b := en.reads[j-1], en.reads[j]
			if a.Thread < b.Thread || (a.Thread == b.Thread && a.Index < b.Index) {
				break
			}
			en.reads[j-1], en.reads[j] = b, a
		}
	}
	en.rf = sized(en.rf, len(p.events))
	for i := range en.rf {
		en.rf[i] = rfUnassigned
	}
	en.done = sized(en.done, len(en.reads))
	en.visiting = sized(en.visiting, len(p.events))
	// Constant-operand precomputation: litmus-scale programs address
	// memory almost exclusively through constants, so location and plain-
	// write value resolution — the innermost per-candidate queries — are
	// answered from these tables instead of re-walking operand chains.
	en.constLoc = sized(en.constLoc, len(p.events))
	en.constLocOK = sized(en.constLocOK, len(p.events))
	en.constWVal = sized(en.constWVal, len(p.events))
	en.constWOK = sized(en.constWOK, len(p.events))
	for _, e := range p.events {
		if e.Kind == Fence {
			en.constLoc[e.GID], en.constLocOK[e.GID] = LocNone, true
		} else if e.Addr.Kind == OpConst {
			en.constLoc[e.GID], en.constLocOK[e.GID] = Loc(e.Addr.Const), true
		}
		if e.Kind == Write && e.Data.Kind == OpConst {
			en.constWVal[e.GID], en.constWOK[e.GID] = e.Data.Const, true
		}
	}
	en.byLoc = sizedRows(en.byLoc, p.NumLocs)
	en.seenEp = sized(en.seenEp, len(p.events))
	en.seenInitEp = sized(en.seenInitEp, p.NumLocs)
	en.permBuf = sizedRows(en.permBuf, p.NumLocs)
	en.usedBuf = sizedRows(en.usedBuf, p.NumLocs)
	if delta {
		en.rfDir = sized(en.rfDir, len(en.reads))
		en.moDir = sized(en.moDir, p.NumLocs)
	}
	en.x.P = p
	en.x.MO = sizedRows(en.x.MO, p.NumLocs)
	en.x.RF = nil
	en.x.MOIndex = sized(en.x.MOIndex, len(p.events))
	en.x.LocOf = sized(en.x.LocOf, len(p.events))
	en.x.RVal = sized(en.x.RVal, len(p.events))
	en.x.WVal = sized(en.x.WVal, len(p.events))
}

// operandValue resolves an operand evaluated by thread t at program-order
// position idx under the current partial rf assignment. The second result
// is false while the value still depends on an unassigned read.
func (en *enumerator) operandValue(t, idx int, op Operand) (int64, bool) {
	if op.Kind == OpConst {
		return op.Const, true
	}
	// Find the latest earlier load of this thread writing the register.
	th := en.p.Threads[t]
	for i := idx - 1; i >= 0; i-- {
		e := th[i]
		if e.IsRead() && e.Dst == op.Reg {
			return en.readValue(e.GID)
		}
	}
	return 0, false // unreachable after Validate
}

// readValue resolves the value read by event gid, if determined. The
// visiting marks are always cleared on exit, so en.visiting is all-false
// between top-level resolutions.
func (en *enumerator) readValue(gid int) (int64, bool) {
	if en.visiting[gid] {
		return 0, false // value-dependency cycle (out of thin air)
	}
	src := en.rf[gid]
	switch src {
	case rfUnassigned:
		return 0, false
	case InitWrite:
		return 0, true
	}
	en.visiting[gid] = true
	v, ok := en.writeValue(src)
	en.visiting[gid] = false
	return v, ok
}

// writeValue resolves the value written by event gid, if determined.
func (en *enumerator) writeValue(gid int) (int64, bool) {
	if en.constWOK[gid] {
		return en.constWVal[gid], true
	}
	e := en.p.events[gid]
	data, ok := en.operandValue(e.Thread, e.Index, e.Data)
	if !ok {
		return 0, false
	}
	if e.Kind == Write {
		return data, true
	}
	// RMW
	old, ok := en.readValue(gid)
	if !ok {
		return 0, false
	}
	switch e.RMWOp {
	case RMWAdd:
		return old + data, true
	case RMWSwap:
		return data, true
	}
	return 0, false
}

// eventLoc resolves the location accessed by event gid, if determined.
func (en *enumerator) eventLoc(gid int) (Loc, bool) {
	if en.constLocOK[gid] {
		return en.constLoc[gid], true
	}
	e := en.p.events[gid]
	v, ok := en.operandValue(e.Thread, e.Index, e.Addr)
	if !ok {
		return LocNone, false
	}
	return Loc(v), true
}

// assignReads recursively chooses an rf source for every reading event.
// At each step it picks the first (thread, index)-ordered unassigned read
// whose address is already resolvable, so that address dependencies chain
// naturally; writes whose own location is not yet resolvable are offered as
// candidates optimistically and checked once everything is assigned.
func (en *enumerator) assignReads() {
	if en.stopped || en.err != nil {
		return
	}
	pick := -1
	var pickLoc Loc
	sawUnassigned := false
	for i, r := range en.reads {
		if en.done[i] {
			continue
		}
		sawUnassigned = true
		if loc, ok := en.eventLoc(r.GID); ok {
			if loc < 0 || int(loc) >= en.p.NumLocs {
				return // resolved to a non-location value: invalid branch
			}
			pick, pickLoc = i, loc
			break
		}
	}
	if !sawUnassigned {
		en.finishReads()
		return
	}
	if pick == -1 {
		// Reads remain but none is resolvable on this branch: a value
		// dependency cycle (out of thin air) induced by the optimistic rf
		// choices so far. Prune the branch; if the whole enumeration ends
		// this way, Enumerate reports ErrUnresolvable.
		en.deadEnd = true
		return
	}
	r := en.reads[pick]
	en.done[pick] = true
	if en.delta {
		en.assignReadDelta(pick, r, pickLoc)
		en.rf[r.GID] = rfUnassigned
		en.done[pick] = false
		return
	}
	// Candidate sources: the initial value plus every write whose location
	// is (or may turn out to be) pickLoc.
	en.rf[r.GID] = InitWrite
	en.assignReads()
	for _, w := range en.writes {
		if en.stopped || en.err != nil {
			break
		}
		if w.GID == r.GID {
			continue
		}
		wloc, ok := en.eventLoc(w.GID)
		if ok && wloc != pickLoc {
			continue
		}
		en.rf[r.GID] = w.GID
		en.assignReads()
	}
	en.rf[r.GID] = rfUnassigned
	en.done[pick] = false
}

// assignReadDelta is the EnumerateDelta branch body for one read: the
// candidate sources are collected up front and scanned in a reflected
// (mixed-radix Gray code) order — forward on one visit of this choice
// point, backward on the next — so consecutive candidate executions
// differ in as few rf choices as possible and the incremental
// acyclicity tier's delta stays small. Early location pruning is
// per-candidate-list rather than interleaved with the recursion, which
// can only defer a rejection to finishReads, never change the visited
// candidate set.
func (en *enumerator) assignReadDelta(pick int, r *Event, pickLoc Loc) {
	// One small allocation per choice point: the list must survive the
	// recursion below, which visits other choice points. Delta order is
	// opt-in, so this stays off the default verdict path.
	cands := make([]int, 0, len(en.writes)+1)
	cands = append(cands, InitWrite)
	for _, w := range en.writes {
		if w.GID == r.GID {
			continue
		}
		wloc, ok := en.eventLoc(w.GID)
		if ok && wloc != pickLoc {
			continue
		}
		cands = append(cands, w.GID)
	}
	reverse := en.rfDir[pick]
	en.rfDir[pick] = !reverse
	for i := range cands {
		if en.stopped || en.err != nil {
			break
		}
		src := cands[i]
		if reverse {
			src = cands[len(cands)-1-i]
		}
		en.rf[r.GID] = src
		en.assignReads()
	}
}

// finishReads validates the completed rf assignment (deferred location
// checks) and proceeds to coherence-order enumeration.
func (en *enumerator) finishReads() {
	p := en.p
	for _, e := range p.events {
		loc, ok := en.eventLoc(e.GID)
		if !ok || (e.Kind != Fence && (loc < 0 || int(loc) >= p.NumLocs)) {
			return // still unresolved or invalid: reject branch
		}
		en.x.LocOf[e.GID] = loc
	}
	for _, r := range en.reads {
		if src := en.rf[r.GID]; src != InitWrite {
			if en.x.LocOf[src] != en.x.LocOf[r.GID] {
				return // optimistic candidate turned out to mismatch
			}
		}
	}
	// Group writes by resolved location (rows reuse their backing arrays
	// across candidates).
	byLoc := en.byLoc
	for l := range byLoc {
		byLoc[l] = byLoc[l][:0]
	}
	for _, w := range en.writes {
		l := en.x.LocOf[w.GID]
		byLoc[l] = append(byLoc[l], w.GID)
	}
	// Reject if two RMWs read from the same source: atomicity would force
	// both to immediately follow it in mo. Epoch stamps replace the
	// per-call seen-source map.
	en.seenEpoch++
	for _, w := range en.writes {
		if w.Kind != RMW {
			continue
		}
		src := en.rf[w.GID]
		if src == InitWrite {
			// Two init-reading RMWs on the same location also conflict.
			l := en.x.LocOf[w.GID]
			if en.seenInitEp[l] == en.seenEpoch {
				return
			}
			en.seenInitEp[l] = en.seenEpoch
			continue
		}
		if en.seenEp[src] == en.seenEpoch {
			return
		}
		en.seenEp[src] = en.seenEpoch
	}
	en.enumerateMO(byLoc, 0)
}

// enumerateMO enumerates per-location coherence orders consistent with
// program order (CoWW) and RMW atomicity, location by location.
func (en *enumerator) enumerateMO(byLoc [][]int, l int) {
	if en.stopped || en.err != nil {
		return
	}
	if l == len(byLoc) {
		en.finishExecution()
		return
	}
	ws := byLoc[l]
	if len(ws) == 0 {
		en.x.MO[l] = nil
		en.enumerateMO(byLoc, l+1)
		return
	}
	// Permutation state reuses per-location buffers; the backtracking
	// discipline leaves used all-false and perm empty on exit.
	if cap(en.permBuf[l]) < len(ws) {
		en.permBuf[l] = make([]int, 0, len(ws))
		en.usedBuf[l] = make([]bool, len(ws))
	}
	perm := en.permBuf[l][:0]
	used := en.usedBuf[l][:len(ws)]
	var rec func()
	rec = func() {
		if en.stopped || en.err != nil {
			return
		}
		if len(perm) == len(ws) {
			en.x.MO[l] = perm
			for i, w := range perm {
				en.x.MOIndex[w] = i + 1
			}
			en.enumerateMO(byLoc, l+1)
			return
		}
		// If an unplaced RMW reads from the most recently placed write (or
		// from init at position 0), it must come next.
		forced := -1
		var prev int // source a next-placed RMW must have
		if len(perm) == 0 {
			prev = InitWrite
		} else {
			prev = perm[len(perm)-1]
		}
		for i, w := range ws {
			if used[i] {
				continue
			}
			e := en.p.events[w]
			if e.Kind == RMW && en.rf[w] == prev {
				// Only force if prev is actually this RMW's source; for
				// init sources this only applies at position 0.
				if prev != InitWrite || len(perm) == 0 {
					forced = i
					break
				}
			}
		}
		// Delta mode reflects the branch scan per depth (flipping on each
		// re-entry), so consecutive coherence orders differ by a small
		// suffix — the MO half of the Gray-code walk.
		reverse := false
		if en.delta {
			d := len(perm)
			reverse = en.moDir[l]&(1<<uint(d)) != 0
			en.moDir[l] ^= 1 << uint(d)
		}
		for k := 0; k < len(ws); k++ {
			i := k
			if reverse {
				i = len(ws) - 1 - k
			}
			w := ws[i]
			if used[i] {
				continue
			}
			if forced >= 0 && i != forced {
				continue
			}
			e := en.p.events[w]
			// CoWW: same-thread writes to this location in program order.
			ok := true
			for j, w2 := range ws {
				if !used[j] && j != i && en.p.events[w2].Thread == e.Thread && en.p.events[w2].Index < e.Index {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			// RMW atomicity: an RMW may only be placed right after its
			// source (or first, if it reads init).
			if e.Kind == RMW && en.rf[w] != prev {
				continue
			}
			// Conversely, if the previous write is some RMW's source, only
			// that RMW may follow (forced above); additionally no placed
			// RMW may be followed by a write that breaks adjacency — the
			// "forced" rule already guarantees this.
			used[i] = true
			perm = append(perm, w)
			rec()
			perm = perm[:len(perm)-1]
			used[i] = false
		}
	}
	rec()
}

// finishExecution applies the CoWR/CoRW filters, resolves all values and
// hands the candidate to the visitor.
func (en *enumerator) finishExecution() {
	p := en.p
	x := &en.x
	// CoWR / CoRW with respect to same-thread writes.
	for _, r := range en.reads {
		loc := x.LocOf[r.GID]
		srcIdx := 0
		if s := en.rf[r.GID]; s != InitWrite {
			srcIdx = x.MOIndex[s]
		}
		for _, e := range p.Threads[r.Thread] {
			if !e.IsWrite() || e.GID == r.GID || x.LocOf[e.GID] != loc {
				continue
			}
			if e.Index < r.Index && x.MOIndex[e.GID] > srcIdx {
				return // CoWR: read an older value than our own prior write
			}
			if e.Index > r.Index && x.MOIndex[e.GID] <= srcIdx {
				return // CoRW: read our own (or a newer-than-own) later write
			}
		}
	}
	// Resolve all values; reject executions with undetermined values
	// (out-of-thin-air cycles).
	for _, r := range en.reads {
		v, ok := en.readValue(r.GID)
		if !ok {
			return
		}
		x.RVal[r.GID] = v
	}
	for _, w := range en.writes {
		v, ok := en.writeValue(w.GID)
		if !ok {
			return
		}
		x.WVal[w.GID] = v
	}
	x.RF = en.rf
	en.yielded = true
	if !en.visit(x) {
		en.stopped = true
	}
}
