package mem

import (
	"testing"
)

// twoThreadMP builds the classic message-passing skeleton:
// T0: x=1; y=1    T1: r0=y; r1=x
func twoThreadMP() *Program {
	p := NewProgram(2, "x", "y")
	p.Add(0, Event{Kind: Write, Addr: Const(0), Data: Const(1)})
	p.Add(0, Event{Kind: Write, Addr: Const(1), Data: Const(1)})
	p.Add(1, Event{Kind: Read, Addr: Const(1), Dst: 0})
	p.Add(1, Event{Kind: Read, Addr: Const(0), Dst: 1})
	p.AddObserver(1, 0, "r0")
	p.AddObserver(1, 1, "r1")
	return p
}

func TestMPEnumerationOutcomes(t *testing.T) {
	p := twoThreadMP()
	got, err := Outcomes(p)
	if err != nil {
		t.Fatalf("Outcomes: %v", err)
	}
	// Each load independently reads init or the single write: 4 outcomes.
	want := []Outcome{"r0=0; r1=0", "r0=0; r1=1", "r0=1; r1=0", "r0=1; r1=1"}
	if len(got) != len(want) {
		t.Fatalf("got %d outcomes %v, want %d", len(got), got, len(want))
	}
	for _, o := range want {
		if !got[o] {
			t.Errorf("missing outcome %q", o)
		}
	}
}

func TestMPExecutionCount(t *testing.T) {
	p := twoThreadMP()
	xs, err := Executions(p)
	if err != nil {
		t.Fatalf("Executions: %v", err)
	}
	// 2 rf choices per load, single write per location so one mo each: 4.
	if len(xs) != 4 {
		t.Fatalf("got %d executions, want 4", len(xs))
	}
	for _, x := range xs {
		if x.P != p {
			t.Errorf("execution does not reference program")
		}
	}
}

func TestSameThreadCoWR(t *testing.T) {
	// T0: x=1; r0=x  — the read must see 1 (its own write), never init.
	p := NewProgram(1, "x")
	p.Add(0, Event{Kind: Write, Addr: Const(0), Data: Const(1)})
	p.Add(0, Event{Kind: Read, Addr: Const(0), Dst: 0})
	p.AddObserver(0, 0, "r0")
	got, err := Outcomes(p)
	if err != nil {
		t.Fatalf("Outcomes: %v", err)
	}
	if len(got) != 1 || !got["r0=1"] {
		t.Fatalf("CoWR violated: outcomes %v, want only r0=1", got)
	}
}

func TestSameThreadCoRW(t *testing.T) {
	// T0: r0=x; x=1 — the read must not see the later write.
	p := NewProgram(1, "x")
	p.Add(0, Event{Kind: Read, Addr: Const(0), Dst: 0})
	p.Add(0, Event{Kind: Write, Addr: Const(0), Data: Const(1)})
	p.AddObserver(0, 0, "r0")
	got, err := Outcomes(p)
	if err != nil {
		t.Fatalf("Outcomes: %v", err)
	}
	if len(got) != 1 || !got["r0=0"] {
		t.Fatalf("CoRW violated: outcomes %v, want only r0=0", got)
	}
}

func TestSameAddressReadReadNotBakedIn(t *testing.T) {
	// T0: x=1; x=2   T1: r0=x; r1=x.
	// The substrate must keep executions where T1 sees 2 then 1 (CoRR is a
	// per-model decision, not a substrate fact).
	p := NewProgram(1, "x")
	p.Add(0, Event{Kind: Write, Addr: Const(0), Data: Const(1)})
	p.Add(0, Event{Kind: Write, Addr: Const(0), Data: Const(2)})
	p.Add(1, Event{Kind: Read, Addr: Const(0), Dst: 0})
	p.Add(1, Event{Kind: Read, Addr: Const(0), Dst: 1})
	p.AddObserver(1, 0, "r0")
	p.AddObserver(1, 1, "r1")
	got, err := Outcomes(p)
	if err != nil {
		t.Fatalf("Outcomes: %v", err)
	}
	if !got["r0=2; r1=1"] {
		t.Fatalf("expected CoRR-violating candidate to exist, outcomes: %v", got)
	}
	// 3 values per load: 9 outcomes.
	if len(got) != 9 {
		t.Fatalf("got %d outcomes, want 9: %v", len(got), got)
	}
}

func TestCoWWProgramOrderInMO(t *testing.T) {
	// Same-thread same-location writes must appear in mo in program order.
	p := NewProgram(1, "x")
	a := p.Add(0, Event{Kind: Write, Addr: Const(0), Data: Const(1)})
	b := p.Add(0, Event{Kind: Write, Addr: Const(0), Data: Const(2)})
	xs, err := Executions(p)
	if err != nil {
		t.Fatalf("Executions: %v", err)
	}
	if len(xs) != 1 {
		t.Fatalf("got %d executions, want 1", len(xs))
	}
	if !xs[0].MOBefore(a.GID, b.GID) {
		t.Fatalf("CoWW violated: mo = %v", xs[0].MO)
	}
	if got := xs[0].FinalMem()[0]; got != 2 {
		t.Fatalf("final memory = %d, want 2", got)
	}
}

func TestRMWAtomicity(t *testing.T) {
	// T0: fetch-and-add x += 10;  T1: fetch-and-add x += 100.
	// The two RMWs must chain: outcomes {0,10} or {0,100} for the old
	// values, never both reading 0.
	p := NewProgram(1, "x")
	p.Add(0, Event{Kind: RMW, Addr: Const(0), Data: Const(10), Dst: 0, RMWOp: RMWAdd})
	p.Add(1, Event{Kind: RMW, Addr: Const(0), Data: Const(100), Dst: 0, RMWOp: RMWAdd})
	p.AddObserver(0, 0, "a")
	p.AddObserver(1, 0, "b")
	got, err := Outcomes(p)
	if err != nil {
		t.Fatalf("Outcomes: %v", err)
	}
	want := map[Outcome]bool{"a=0; b=10": true, "a=100; b=0": true}
	if len(got) != len(want) {
		t.Fatalf("outcomes %v, want %v", got, want)
	}
	for o := range want {
		if !got[o] {
			t.Errorf("missing outcome %q", o)
		}
	}
}

func TestRMWSwapValue(t *testing.T) {
	// T0: swap x <- 7 (old into r0); final memory must be 7, r0 = 0.
	p := NewProgram(1, "x")
	p.Add(0, Event{Kind: RMW, Addr: Const(0), Data: Const(7), Dst: 0, RMWOp: RMWSwap})
	p.AddObserver(0, 0, "r0")
	xs, err := Executions(p)
	if err != nil {
		t.Fatalf("Executions: %v", err)
	}
	if len(xs) != 1 {
		t.Fatalf("got %d executions, want 1", len(xs))
	}
	if got := xs[0].FinalMem()[0]; got != 7 {
		t.Errorf("final mem = %d, want 7", got)
	}
	if got := xs[0].RegValue(0, 0); got != 0 {
		t.Errorf("r0 = %d, want 0", got)
	}
}

func TestAddressDependency(t *testing.T) {
	// Figure 13 flavour: T0: y = 0-or-1 selects which location T1 reads.
	// Locations: 0 = x (holds 42 after T0), 1 = y (holds 0, the index of x
	// via init... we store the location id directly).
	// T0: x(loc0)=42; y(loc1)=0   T1: r0 = y; r1 = [r0]
	p := NewProgram(2, "x", "y")
	p.Add(0, Event{Kind: Write, Addr: Const(0), Data: Const(42)})
	p.Add(0, Event{Kind: Write, Addr: Const(1), Data: Const(0)}) // stores loc id of x
	p.Add(1, Event{Kind: Read, Addr: Const(1), Dst: 0})
	p.Add(1, Event{Kind: Read, Addr: FromReg(0), Dst: 1})
	p.AddObserver(1, 0, "r0")
	p.AddObserver(1, 1, "r1")
	got, err := Outcomes(p)
	if err != nil {
		t.Fatalf("Outcomes: %v", err)
	}
	// r0 is 0 either way (init y = 0 and T0 stores 0): the dependent read
	// always targets x, seeing 0 or 42.
	want := map[Outcome]bool{"r0=0; r1=0": true, "r0=0; r1=42": true}
	for o := range want {
		if !got[o] {
			t.Errorf("missing outcome %q in %v", o, got)
		}
	}
	if len(got) != len(want) {
		t.Errorf("outcomes %v, want exactly %v", got, want)
	}
}

func TestAddressDependencySelectsLocation(t *testing.T) {
	// T1's second read targets x or y depending on what the first read saw.
	// T0: y(loc1)=1 stores "1" which is also the loc id of y.
	p := NewProgram(2, "x", "y")
	p.Add(0, Event{Kind: Write, Addr: Const(1), Data: Const(1)})
	p.Add(1, Event{Kind: Read, Addr: Const(1), Dst: 0})   // r0 = y: 0 or 1
	p.Add(1, Event{Kind: Read, Addr: FromReg(0), Dst: 1}) // reads x if 0, y if 1
	p.AddObserver(1, 0, "r0")
	p.AddObserver(1, 1, "r1")
	got, err := Outcomes(p)
	if err != nil {
		t.Fatalf("Outcomes: %v", err)
	}
	// r0=0 -> second read reads x (always 0): "r0=0; r1=0"
	// r0=1 -> second read reads y: may see init 0? Same-address CoRR not
	// baked in, but rf options are init (0) or the write (1).
	want := map[Outcome]bool{"r0=0; r1=0": true, "r0=1; r1=0": true, "r0=1; r1=1": true}
	for o := range want {
		if !got[o] {
			t.Errorf("missing outcome %q in %v", o, got)
		}
	}
	if len(got) != len(want) {
		t.Errorf("outcomes %v, want exactly %v", got, want)
	}
}

func TestValidateErrors(t *testing.T) {
	p := NewProgram(1, "x")
	p.Add(0, Event{Kind: Read, Addr: FromReg(3), Dst: 0})
	if err := p.Validate(); err == nil {
		t.Errorf("want error for unwritten register address")
	}
	p2 := NewProgram(1, "x")
	p2.Add(0, Event{Kind: Write, Addr: Const(5), Data: Const(1)})
	if err := p2.Validate(); err == nil {
		t.Errorf("want error for out-of-range address")
	}
	p3 := NewProgram(1, "x")
	p3.Add(0, Event{Kind: Write, Addr: Const(0), Data: Const(1), CtrlDepOn: []int{0}})
	if err := p3.Validate(); err == nil {
		t.Errorf("want error for control dependency on self")
	}
}

func TestEnumerateStop(t *testing.T) {
	p := twoThreadMP()
	n := 0
	err := Enumerate(p, func(*Execution) bool {
		n++
		return false
	})
	if err != ErrStopped {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	if n != 1 {
		t.Fatalf("visited %d, want 1", n)
	}
}

func TestFencesDoNotAffectCandidates(t *testing.T) {
	p := twoThreadMP()
	base, err := Executions(p)
	if err != nil {
		t.Fatalf("Executions: %v", err)
	}
	q := NewProgram(2, "x", "y")
	q.Add(0, Event{Kind: Write, Addr: Const(0), Data: Const(1)})
	q.Add(0, Event{Kind: Fence})
	q.Add(0, Event{Kind: Write, Addr: Const(1), Data: Const(1)})
	q.Add(1, Event{Kind: Read, Addr: Const(1), Dst: 0})
	q.Add(1, Event{Kind: Fence})
	q.Add(1, Event{Kind: Read, Addr: Const(0), Dst: 1})
	q.AddObserver(1, 0, "r0")
	q.AddObserver(1, 1, "r1")
	fenced, err := Executions(q)
	if err != nil {
		t.Fatalf("Executions: %v", err)
	}
	if len(base) != len(fenced) {
		t.Fatalf("fences changed candidate count: %d vs %d", len(base), len(fenced))
	}
}

// TestExecutionInvariants checks structural invariants over every candidate
// of a write-heavy program: rf sources write the read's location, MOIndex is
// consistent with MO, and fr successors are mo-after the source.
func TestExecutionInvariants(t *testing.T) {
	p := NewProgram(2, "x", "y")
	p.Add(0, Event{Kind: Write, Addr: Const(0), Data: Const(1)})
	p.Add(0, Event{Kind: Write, Addr: Const(1), Data: Const(1)})
	p.Add(1, Event{Kind: Write, Addr: Const(0), Data: Const(2)})
	p.Add(1, Event{Kind: Read, Addr: Const(0), Dst: 0})
	p.Add(2, Event{Kind: Read, Addr: Const(0), Dst: 0})
	p.Add(2, Event{Kind: Read, Addr: Const(1), Dst: 1})
	p.AddObserver(1, 0, "a")
	p.AddObserver(2, 0, "b")
	p.AddObserver(2, 1, "c")
	count := 0
	err := Enumerate(p, func(x *Execution) bool {
		count++
		for _, e := range p.Events() {
			if e.IsRead() {
				src := x.RF[e.GID]
				if src != InitWrite && x.LocOf[src] != x.LocOf[e.GID] {
					t.Fatalf("rf source location mismatch: %v", x)
				}
				for _, w := range x.FRSuccessors(e.GID) {
					srcIdx := 0
					if src != InitWrite {
						srcIdx = x.MOIndex[src]
					}
					if x.MOIndex[w] <= srcIdx {
						t.Fatalf("fr successor not mo-after source: %v", x)
					}
				}
			}
		}
		for l, ws := range x.MO {
			for i, w := range ws {
				if x.MOIndex[w] != i+1 || x.LocOf[w] != Loc(l) {
					t.Fatalf("MOIndex inconsistent: %v", x)
				}
			}
		}
		return true
	})
	if err != nil {
		t.Fatalf("Enumerate: %v", err)
	}
	if count == 0 {
		t.Fatal("no executions enumerated")
	}
}

func TestOutcomeParse(t *testing.T) {
	m, err := ParseOutcome("r0=1; r1=0")
	if err != nil {
		t.Fatalf("ParseOutcome: %v", err)
	}
	if m["r0"] != 1 || m["r1"] != 0 {
		t.Fatalf("parsed %v", m)
	}
	if _, err := ParseOutcome("garbage"); err == nil {
		t.Errorf("want error for malformed outcome")
	}
}
