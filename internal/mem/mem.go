// Package mem provides the execution-candidate substrate shared by the
// C11 axiomatic evaluator (internal/c11) and the microarchitectural µspec
// evaluator (internal/uspec).
//
// A program is a set of threads, each an ordered list of memory events
// (reads, writes, read-modify-writes and fences). A candidate execution
// assigns a source write to every read (the reads-from relation, rf), a
// per-location total order over writes (the coherence / modification order,
// mo), and derives the from-reads relation (fr). Values and addresses are
// resolved through per-thread registers so that address, data and control
// dependencies behave like they do in real litmus tests (e.g. the paper's
// Figure 13, where a load's address is produced by a program-order-earlier
// load).
//
// Enumeration bakes in only those facts that hold at every layer of the
// stack examined by TriCheck:
//
//   - CoWW: same-thread writes to the same location appear in mo in program
//     order (store buffers are FIFO per address; C11 requires it too),
//   - CoWR: a read never reads a write that is mo-older than the newest
//     same-thread program-order-earlier write to the same location,
//   - CoRW: a read never reads a write that is mo-after a same-thread
//     program-order-later write to the same location,
//   - RMW atomicity: a read-modify-write reads its immediate mo-predecessor.
//
// Crucially it does NOT bake in same-address read→read ordering (CoRR):
// that is exactly the ordering the paper's rMM/nMM/A9like microarchitectures
// relax (Section 5.1.3), so it must remain a per-model decision.
package mem

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
)

// Loc identifies a memory location (a litmus-test variable such as x or y).
// Locations are small dense integers; names live in the owning program.
type Loc int

// LocNone marks events (fences) that do not access memory.
const LocNone Loc = -1

// Kind classifies an event.
type Kind uint8

// Event kinds.
const (
	// Read is a load.
	Read Kind = iota
	// Write is a store.
	Write
	// RMW is an atomic read-modify-write: one read and one write that are
	// adjacent in coherence order.
	RMW
	// Fence is a memory fence; it does not access memory but occupies a
	// program-order slot so layer-specific models can attach semantics.
	Fence
)

// String returns a short human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case Read:
		return "R"
	case Write:
		return "W"
	case RMW:
		return "RMW"
	case Fence:
		return "F"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// RMWKind selects how a read-modify-write computes its stored value.
type RMWKind uint8

const (
	// RMWAdd stores oldValue + Data. With Data == 0 this is the paper's
	// "AMOADD to the zero register" idiom for implementing an atomic load:
	// the written value equals the value read.
	RMWAdd RMWKind = iota
	// RMWSwap stores Data and discards the old value (modulo Dst); this is
	// the "AMOSWAP discarding the load" idiom for an atomic store.
	RMWSwap
)

// OperandKind distinguishes constant operands from register operands.
type OperandKind uint8

const (
	// OpConst is an immediate constant operand.
	OpConst OperandKind = iota
	// OpReg reads the thread-local register written by a program-order
	// earlier load; using one creates a syntactic dependency.
	OpReg
)

// Operand is the value or address source of an event: either an immediate
// constant or a thread-local register (creating an address or data
// dependency on the load that last wrote the register).
type Operand struct {
	Kind  OperandKind
	Const int64
	Reg   int
}

// Const returns a constant operand.
func Const(v int64) Operand { return Operand{Kind: OpConst, Const: v} }

// FromReg returns a register operand referring to thread-local register r.
func FromReg(r int) Operand { return Operand{Kind: OpReg, Reg: r} }

// NoDst marks events that do not write a destination register.
const NoDst = -1

// Event is a single memory event. Events are created through Program.Add*
// which assigns GID, Thread and Index.
type Event struct {
	// GID is the dense global identifier of the event.
	GID int
	// Thread is the issuing thread (core) index.
	Thread int
	// Index is the event's program-order position within its thread.
	Index int
	// Kind classifies the event.
	Kind Kind
	// Addr is the accessed location: a constant Loc or a register holding
	// one (an address dependency). Unused for fences.
	Addr Operand
	// Data is the stored value for writes, or the RMW operand for RMWs.
	Data Operand
	// Dst is the thread-local register receiving a loaded value, or NoDst.
	Dst int
	// RMWOp selects the read-modify-write function for Kind == RMW.
	RMWOp RMWKind
	// CtrlDepOn lists thread-local indices of loads this event is
	// control-dependent on.
	CtrlDepOn []int
	// Tag is an opaque caller-owned value (typically an index into the
	// caller's own instruction or HLL-event list).
	Tag int
}

// IsRead reports whether the event has a read component.
func (e *Event) IsRead() bool { return e.Kind == Read || e.Kind == RMW }

// IsWrite reports whether the event has a write component.
func (e *Event) IsWrite() bool { return e.Kind == Write || e.Kind == RMW }

// Observer names one load whose result is part of a litmus test outcome.
type Observer struct {
	// Thread and Reg identify the destination register holding the value.
	Thread int
	Reg    int
	// Label is the outcome key, e.g. "r0".
	Label string
}

// MemObserver names one location whose final value is part of a litmus
// test outcome (needed by shapes like S, R and 2+2W whose interesting
// outcome constrains coherence order rather than loaded values).
type MemObserver struct {
	Loc   Loc
	Label string
}

// Program is a multi-threaded litmus-test program over shared locations.
type Program struct {
	// Threads holds the per-thread event lists in program order.
	Threads [][]*Event
	// NumLocs is the number of distinct locations (0..NumLocs-1).
	NumLocs int
	// LocNames optionally names locations for rendering ("x", "y", ...).
	LocNames []string
	// Observers lists the registers that form a final-state outcome.
	Observers []Observer
	// MemObservers lists locations whose final values join the outcome.
	MemObservers []MemObserver

	events []*Event // dense by GID
	// chunks batches Event storage: Add hands out pointers into the
	// chunk at cur and opens a fresh one when it fills, so pointers stay
	// stable and event construction costs one allocation per chunk
	// instead of one per event. Reset rewinds cur so a recycled program
	// refills the same chunks.
	chunks [][]Event
	cur    int
	// frozen flips (atomically: concurrent evaluators may Enumerate one
	// program at the same time) once enumeration begins, rejecting
	// further mutation.
	frozen atomic.Bool
}

// NewProgram returns an empty program with nlocs locations named by names
// (padded with "v<i>" if names is short).
func NewProgram(nlocs int, names ...string) *Program {
	p := &Program{}
	p.Reset(nlocs, names...)
	return p
}

// Reset empties the program for reuse with a new location set, keeping
// the event chunks and per-thread slices so a recycled program builds
// without reallocating. The caller must not retain events or thread
// slices from the previous generation.
func (p *Program) Reset(nlocs int, names ...string) {
	p.frozen.Store(false)
	for i := range p.Threads {
		p.Threads[i] = p.Threads[i][:0]
	}
	p.Threads = p.Threads[:0]
	p.events = p.events[:0]
	p.Observers = p.Observers[:0]
	p.MemObservers = p.MemObservers[:0]
	for i := range p.chunks {
		p.chunks[i] = p.chunks[i][:0]
	}
	p.cur = 0
	p.NumLocs = nlocs
	p.LocNames = p.LocNames[:0]
	for i := 0; i < nlocs; i++ {
		if i < len(names) {
			p.LocNames = append(p.LocNames, names[i])
		} else {
			p.LocNames = append(p.LocNames, fmt.Sprintf("v%d", i))
		}
	}
}

// LocName returns the display name of location l.
func (p *Program) LocName(l Loc) string {
	if l >= 0 && int(l) < len(p.LocNames) {
		return p.LocNames[l]
	}
	return fmt.Sprintf("v%d", int(l))
}

// NumThreads returns the number of threads.
func (p *Program) NumThreads() int { return len(p.Threads) }

// Events returns all events dense by GID.
func (p *Program) Events() []*Event { return p.events }

// Event returns the event with the given GID.
func (p *Program) Event(gid int) *Event { return p.events[gid] }

// Add appends ev to thread t, assigning GID/Thread/Index, and returns it.
func (p *Program) Add(t int, ev Event) *Event {
	if p.frozen.Load() {
		panic("mem: Add after enumeration began")
	}
	for len(p.Threads) <= t {
		if len(p.Threads) < cap(p.Threads) {
			// Re-expose a row truncated by Reset, keeping its capacity.
			p.Threads = p.Threads[:len(p.Threads)+1]
		} else {
			p.Threads = append(p.Threads, nil)
		}
	}
	// Fixed-size chunks: litmus-scale programs hold around a dozen
	// events, so 8 amortizes allocation count without stranding the
	// tail of a larger chunk.
	var ch *[]Event
	for {
		if p.cur == len(p.chunks) {
			p.chunks = append(p.chunks, make([]Event, 0, 8))
		}
		ch = &p.chunks[p.cur]
		if len(*ch) < cap(*ch) {
			break
		}
		p.cur++
	}
	*ch = append(*ch, ev)
	e := &(*ch)[len(*ch)-1]
	e.GID = len(p.events)
	e.Thread = t
	e.Index = len(p.Threads[t])
	p.Threads[t] = append(p.Threads[t], e)
	p.events = append(p.events, e)
	return e
}

// AddObserver registers a (thread, register) pair as an outcome observer.
func (p *Program) AddObserver(thread, reg int, label string) {
	p.Observers = append(p.Observers, Observer{Thread: thread, Reg: reg, Label: label})
}

// AddMemObserver registers a location's final value as an outcome observer.
func (p *Program) AddMemObserver(loc Loc, label string) {
	p.MemObservers = append(p.MemObservers, MemObserver{Loc: loc, Label: label})
}

// Validate checks structural well-formedness: operand registers must be
// written by a program-order-earlier load of the same thread, constant
// addresses must be in range, and control dependencies must refer to earlier
// loads. It returns the first problem found.
func (p *Program) Validate() error {
	for t, th := range p.Threads {
		written := map[int]bool{}
		for i, e := range th {
			switch e.Kind {
			case Read, Write, RMW:
				if err := p.checkOperand(t, i, e.Addr, written, "address"); err != nil {
					return err
				}
				if e.IsWrite() {
					if err := p.checkOperand(t, i, e.Data, written, "data"); err != nil {
						return err
					}
				}
			case Fence:
				// nothing to check
			}
			for _, d := range e.CtrlDepOn {
				if d < 0 || d >= i || !p.Threads[t][d].IsRead() {
					return fmt.Errorf("mem: T%d[%d]: control dependency on %d is not an earlier load", t, i, d)
				}
			}
			if e.IsRead() && e.Dst != NoDst {
				written[e.Dst] = true
			}
		}
	}
	return nil
}

func (p *Program) checkOperand(t, i int, o Operand, written map[int]bool, what string) error {
	switch o.Kind {
	case OpConst:
		if what == "address" && (o.Const < 0 || o.Const >= int64(p.NumLocs)) {
			return fmt.Errorf("mem: T%d[%d]: %s location %d out of range [0,%d)", t, i, what, o.Const, p.NumLocs)
		}
	case OpReg:
		if !written[o.Reg] {
			return fmt.Errorf("mem: T%d[%d]: %s register r%d not written by an earlier load", t, i, what, o.Reg)
		}
	}
	return nil
}

// InitWrite is the rf source of a read that reads the initial (zero) value.
const InitWrite = -1

// Execution is one candidate execution of a program: a complete rf
// assignment, a per-location coherence order and the values they induce.
// Executions are consistent with the cross-layer facts documented on the
// package (CoWW/CoWR/CoRW/RMW atomicity) but not necessarily with any
// particular memory model; layer-specific packages filter them further.
type Execution struct {
	P *Program
	// RF maps each reading event's GID to the GID of its source write, or
	// InitWrite. Non-reading events map to InitWrite.
	RF []int
	// MO holds, per location, the GIDs of that location's writes in
	// coherence order (the implicit init write precedes all of them).
	MO [][]int
	// MOIndex maps a write's GID to 1 + its position in MO of its location;
	// the implicit init write has index 0. Non-writes map to 0.
	MOIndex []int
	// LocOf is the resolved location of each event (LocNone for fences).
	LocOf []Loc
	// RVal is the value read by each reading event.
	RVal []int64
	// WVal is the value written by each writing event.
	WVal []int64
}

// SameLoc reports whether events a and b resolved to the same location.
func (x *Execution) SameLoc(a, b int) bool {
	return x.LocOf[a] != LocNone && x.LocOf[a] == x.LocOf[b]
}

// MOBefore reports whether write a precedes write b in coherence order.
// Both must be writes to the same location.
func (x *Execution) MOBefore(a, b int) bool {
	return x.MOIndex[a] < x.MOIndex[b]
}

// FRSuccessors returns the writes that read r is from-reads-ordered before:
// every write to r's location that is mo-after r's source.
func (x *Execution) FRSuccessors(r int) []int {
	return x.AppendFRSuccessors(r, nil)
}

// AppendFRSuccessors appends read r's from-reads successors to dst and
// returns the extended slice — the copy-avoidance variant of FRSuccessors
// for evaluators that visit every candidate of an enumeration sweep and
// keep a reusable scratch buffer (see the Enumerate visitor contract).
func (x *Execution) AppendFRSuccessors(r int, dst []int) []int {
	loc := x.LocOf[r]
	if loc == LocNone {
		return dst
	}
	src := x.RF[r]
	srcIdx := 0
	if src != InitWrite {
		srcIdx = x.MOIndex[src]
	}
	for _, w := range x.MO[loc] {
		if x.MOIndex[w] > srcIdx && w != r {
			dst = append(dst, w)
		}
	}
	return dst
}

// FinalMem returns the final value of each location (the mo-maximal write,
// or 0 if the location is never written).
func (x *Execution) FinalMem() []int64 {
	out := make([]int64, x.P.NumLocs)
	for l, ws := range x.MO {
		if len(ws) > 0 {
			out[l] = x.WVal[ws[len(ws)-1]]
		}
	}
	return out
}

// RegValue returns the final value of thread t's register r (the value read
// by the last load of t with Dst == r), or 0 if never written.
func (x *Execution) RegValue(t, r int) int64 {
	var v int64
	for _, e := range x.P.Threads[t] {
		if e.IsRead() && e.Dst == r {
			v = x.RVal[e.GID]
		}
	}
	return v
}

// Outcome is the canonical final-state key of an execution with respect to
// a program's observers: "label=value" pairs joined by "; " in observer
// declaration order (register observers first, then memory observers).
type Outcome string

// OutcomeOf computes the observer outcome of the execution.
func (x *Execution) OutcomeOf() Outcome {
	b := make([]byte, 0, 16*(len(x.P.Observers)+len(x.P.MemObservers)))
	for _, o := range x.P.Observers {
		b = appendOutcomePart(b, o.Label, x.RegValue(o.Thread, o.Reg))
	}
	for _, m := range x.P.MemObservers {
		// Final memory value: the mo-maximal write, matching FinalMem
		// without materializing the per-location slice.
		var v int64
		if ws := x.MO[m.Loc]; len(ws) > 0 {
			v = x.WVal[ws[len(ws)-1]]
		}
		b = appendOutcomePart(b, m.Label, v)
	}
	return Outcome(b)
}

// OutcomeFromValues builds an Outcome from per-observer values.
func OutcomeFromValues(obs []Observer, value func(Observer) int64) Outcome {
	b := make([]byte, 0, 16*len(obs))
	for _, o := range obs {
		b = appendOutcomePart(b, o.Label, value(o))
	}
	return Outcome(b)
}

// appendOutcomePart appends one "label=value" pair, "; "-separated from
// whatever precedes it.
func appendOutcomePart(b []byte, label string, v int64) []byte {
	if len(b) > 0 {
		b = append(b, ';', ' ')
	}
	b = append(b, label...)
	b = append(b, '=')
	return strconv.AppendInt(b, v, 10)
}

// ParseOutcome splits an outcome back into label → value form.
func ParseOutcome(o Outcome) (map[string]int64, error) {
	out := map[string]int64{}
	if o == "" {
		return out, nil
	}
	for _, part := range strings.Split(string(o), "; ") {
		var label string
		var v int64
		if n, err := fmt.Sscanf(part, "%s", &label); n != 1 || err != nil {
			return nil, fmt.Errorf("mem: malformed outcome part %q", part)
		}
		eq := strings.SplitN(part, "=", 2)
		if len(eq) != 2 {
			return nil, fmt.Errorf("mem: malformed outcome part %q", part)
		}
		if _, err := fmt.Sscanf(eq[1], "%d", &v); err != nil {
			return nil, fmt.Errorf("mem: malformed outcome value %q", part)
		}
		out[eq[0]] = v
	}
	return out, nil
}

// String renders the execution compactly for debugging.
func (x *Execution) String() string {
	var b strings.Builder
	b.WriteString("rf{")
	first := true
	for gid, src := range x.RF {
		if !x.P.events[gid].IsRead() {
			continue
		}
		if !first {
			b.WriteString(", ")
		}
		first = false
		if src == InitWrite {
			fmt.Fprintf(&b, "e%d<-init", gid)
		} else {
			fmt.Fprintf(&b, "e%d<-e%d", gid, src)
		}
	}
	b.WriteString("} mo{")
	for l, ws := range x.MO {
		if len(ws) == 0 {
			continue
		}
		fmt.Fprintf(&b, "%s:", x.P.LocName(Loc(l)))
		for i, w := range ws {
			if i > 0 {
				b.WriteString("<")
			}
			fmt.Fprintf(&b, "e%d", w)
		}
		b.WriteString(" ")
	}
	b.WriteString("}")
	return b.String()
}
