package mem

import "sync"

// OutcomeCache interns the outcomes of one program's enumeration sweep.
//
// OutcomeOf formats "label=value" pairs for every candidate, which
// dominated evaluator profiles: an enumeration visits orders of
// magnitude more candidates than it has distinct outcomes. The cache
// keys candidates by their packed observer-value vector (computed
// allocation-free from the scratch Execution) and formats the canonical
// Outcome string once per distinct vector — the returned strings are
// exactly OutcomeOf's, so outcome sets, tallies, and Explain output are
// bit-identical to the uncached path.
//
// The intern table is a flat open-addressed map over the packed word
// vectors (linear probing, power-of-two capacity): no per-lookup string
// conversion, no hashed string keys — on a cold sweep the per-candidate
// lookup is the evaluators' innermost non-verdict operation.
//
// Lookup also returns a dense id (assignment order), letting evaluators
// replace per-candidate map[Outcome] updates with slice indexing and
// build their outcome maps once at the end of the sweep.
//
// A cache is bound to one Program and, like the enumerator's scratch
// Execution, is not safe for concurrent use.
type OutcomeCache struct {
	p *Program
	// regGID[i] is the gid of the read that determines register observer
	// i's final value (the last matching load of the thread), or -1.
	regGID []int
	nk     int      // key words per outcome (register + memory observers)
	buf    []uint64 // packing scratch, nk words
	sbuf   []byte   // rendering scratch for misses
	keys   []uint64 // interned key vectors, nk words per id
	outs   []Outcome
	table  []int32 // open-addressed id slots; -1 = empty
	mask   uint32
}

// NewOutcomeCache returns an empty cache for p's observers.
func NewOutcomeCache(p *Program) *OutcomeCache {
	c := &OutcomeCache{}
	c.bind(p)
	return c
}

// bind points the cache at p and empties the intern stores, keeping
// their capacity for reuse.
func (c *OutcomeCache) bind(p *Program) {
	c.p = p
	c.regGID = c.regGID[:0]
	for _, o := range p.Observers {
		gid := -1
		for _, e := range p.Threads[o.Thread] {
			if e.IsRead() && e.Dst == o.Reg {
				gid = e.GID
			}
		}
		c.regGID = append(c.regGID, gid)
	}
	c.nk = len(p.Observers) + len(p.MemObservers)
	if cap(c.buf) < c.nk {
		c.buf = make([]uint64, c.nk)
	} else {
		c.buf = c.buf[:c.nk]
	}
	// Modest presize for the intern stores: enough that small sweeps
	// never regrow, without inflating the per-evaluation footprint (one
	// cache is bound per evaluator call).
	if c.sbuf == nil {
		c.sbuf = make([]byte, 0, 48)
	}
	c.sbuf = c.sbuf[:0]
	if c.keys == nil {
		c.keys = make([]uint64, 0, 8*c.nk)
	}
	c.keys = c.keys[:0]
	if c.outs == nil {
		c.outs = make([]Outcome, 0, 8)
	}
	c.outs = c.outs[:0]
	if c.table == nil {
		c.table = make([]int32, 64)
	}
	for i := range c.table {
		c.table[i] = -1
	}
	c.mask = uint32(len(c.table) - 1)
}

// outcomeCachePool recycles caches between evaluator calls: a cold sweep
// binds one cache per (test, evaluator) and discards it as soon as the
// outcome sets are built, so the intern stores otherwise dominate the
// evaluators' allocation profile.
var outcomeCachePool sync.Pool

// AcquireOutcomeCache returns a pooled cache bound to p. Release with
// ReleaseOutcomeCache once the interned outcomes have been copied out;
// the Outcome strings themselves remain valid (they are immutable).
func AcquireOutcomeCache(p *Program) *OutcomeCache {
	if v := outcomeCachePool.Get(); v != nil {
		c := v.(*OutcomeCache)
		c.bind(p)
		return c
	}
	return NewOutcomeCache(p)
}

// ReleaseOutcomeCache returns c to the pool. The caller must not use c
// or the slice returned by Outcomes afterwards.
func ReleaseOutcomeCache(c *OutcomeCache) {
	if c == nil {
		return
	}
	c.p = nil
	outcomeCachePool.Put(c)
}

// Outcomes returns the interned outcomes in first-seen order; index is
// the dense id Lookup returned for each.
func (c *OutcomeCache) Outcomes() []Outcome { return c.outs }

func hashWords(ws []uint64) uint64 {
	h := uint64(14695981039346656037) // FNV offset basis
	for _, w := range ws {
		h ^= w
		h *= 1099511628211 // FNV prime
	}
	return h
}

// Lookup returns the execution's outcome and its dense id, interning on
// first sight. x must be an execution of the cache's program.
func (c *OutcomeCache) Lookup(x *Execution) (Outcome, int) {
	buf := c.buf
	k := 0
	for _, gid := range c.regGID {
		var v int64
		if gid >= 0 {
			v = x.RVal[gid]
		}
		buf[k] = uint64(v)
		k++
	}
	for _, m := range c.p.MemObservers {
		// Final memory value: the mo-maximal write, matching FinalMem
		// without materializing the per-location slice.
		var v int64
		if ws := x.MO[m.Loc]; len(ws) > 0 {
			v = x.WVal[ws[len(ws)-1]]
		}
		buf[k] = uint64(v)
		k++
	}
	i := uint32(hashWords(buf)) & c.mask
	for {
		id := c.table[i]
		if id < 0 {
			break
		}
		if c.keyEqual(int(id), buf) {
			return c.outs[id], int(id)
		}
		i = (i + 1) & c.mask
	}
	// Miss: render the canonical string from the packed values. regGID
	// mirrors RegValue (last matching read, zero default) and the memory
	// words above mirror FinalMem, so this is byte-for-byte OutcomeOf's
	// output without re-walking the execution.
	b := c.sbuf[:0]
	k = 0
	for _, o := range c.p.Observers {
		b = appendOutcomePart(b, o.Label, int64(buf[k]))
		k++
	}
	for _, m := range c.p.MemObservers {
		b = appendOutcomePart(b, m.Label, int64(buf[k]))
		k++
	}
	c.sbuf = b
	o := Outcome(b)
	id := len(c.outs)
	c.outs = append(c.outs, o)
	c.keys = append(c.keys, buf...)
	c.table[i] = int32(id)
	if 4*len(c.outs) >= 3*len(c.table) {
		c.grow()
	}
	return o, id
}

func (c *OutcomeCache) keyEqual(id int, buf []uint64) bool {
	key := c.keys[id*c.nk : (id+1)*c.nk]
	for i, w := range key {
		if w != buf[i] {
			return false
		}
	}
	return true
}

func (c *OutcomeCache) grow() {
	nt := make([]int32, 2*len(c.table))
	for i := range nt {
		nt[i] = -1
	}
	mask := uint32(len(nt) - 1)
	for id := range c.outs {
		i := uint32(hashWords(c.keys[id*c.nk:(id+1)*c.nk])) & mask
		for nt[i] >= 0 {
			i = (i + 1) & mask
		}
		nt[i] = int32(id)
	}
	c.table, c.mask = nt, mask
}
