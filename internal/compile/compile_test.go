package compile

import (
	"strings"
	"testing"

	"tricheck/internal/c11"
	"tricheck/internal/isa"
	"tricheck/internal/litmus"
	"tricheck/internal/mem"
)

func compileTest(t *testing.T, m *Mapping, p *c11.Program) *isa.Program {
	t.Helper()
	out, err := Compile(m, p)
	if err != nil {
		t.Fatalf("Compile(%s): %v", m.Name, err)
	}
	return out
}

// ops flattens thread t of the compiled program into op kinds.
func kinds(p *isa.Program, t int) []isa.OpKind {
	var out []isa.OpKind
	for _, ins := range p.Instrs[t] {
		out = append(out, ins.Op)
	}
	return out
}

// TestTable2BaseMappings checks the Intuitive column of Table 2 against the
// paper: ld acq = ld; f[r,m] — ld sc = f[m,m]; ld; f[m,m] — st rel =
// f[m,w]; st — st sc = f[m,m]; st.
func TestTable2BaseMappings(t *testing.T) {
	cases := []struct {
		recipe Recipe
		want   []Item
	}{
		{RISCVBaseIntuitive.LoadAcq, []Item{Access(), F(isa.ClassR, isa.ClassRW)}},
		{RISCVBaseIntuitive.LoadSC, []Item{F(isa.ClassRW, isa.ClassRW), Access(), F(isa.ClassRW, isa.ClassRW)}},
		{RISCVBaseIntuitive.StoreRel, []Item{F(isa.ClassRW, isa.ClassW), Access()}},
		{RISCVBaseIntuitive.StoreSC, []Item{F(isa.ClassRW, isa.ClassRW), Access()}},
	}
	for i, c := range cases {
		if len(c.recipe) != len(c.want) {
			t.Fatalf("case %d: recipe length %d, want %d", i, len(c.recipe), len(c.want))
		}
		for j := range c.want {
			if c.recipe[j] != c.want[j] {
				t.Errorf("case %d item %d = %+v, want %+v", i, j, c.recipe[j], c.want[j])
			}
		}
	}
	// Refined: lwf before releases, hwf before SC.
	if RISCVBaseRefined.StoreRel[0].Cum != isa.CumLW {
		t.Error("refined st rel must start with the cumulative lightweight fence")
	}
	if RISCVBaseRefined.StoreSC[0].Cum != isa.CumHW || RISCVBaseRefined.LoadSC[0].Cum != isa.CumHW {
		t.Error("refined SC accesses must use the cumulative heavyweight fence")
	}
}

// TestTable3AtomicsMappings checks Table 3: acquire→AMO.aq, release→AMO.rl,
// SC intuitive→AMO.aq.rl, SC refined→AMO.aq.sc / AMO.rl.sc.
func TestTable3AtomicsMappings(t *testing.T) {
	check := func(r Recipe, aq, rl, sc bool) {
		t.Helper()
		if len(r) != 1 || r[0].Kind != KAMO {
			t.Fatalf("recipe %+v: want a single AMO", r)
		}
		if r[0].Aq != aq || r[0].Rl != rl || r[0].SC != sc {
			t.Errorf("recipe %+v: want aq=%v rl=%v sc=%v", r, aq, rl, sc)
		}
	}
	check(RISCVAtomicsIntuitive.LoadAcq, true, false, false)
	check(RISCVAtomicsIntuitive.LoadSC, true, true, false)
	check(RISCVAtomicsIntuitive.StoreRel, false, true, false)
	check(RISCVAtomicsIntuitive.StoreSC, true, true, false)
	check(RISCVAtomicsRefined.LoadSC, true, false, true)
	check(RISCVAtomicsRefined.StoreSC, false, true, true)
}

// TestPowerLeadingSyncTable1 checks Table 1: ld acq = ld; ctrlisync — ld sc
// = hwsync; ld; ctrlisync — st rel = lwsync; st — st sc = hwsync; st.
func TestPowerLeadingSyncTable1(t *testing.T) {
	m := PowerLeadingSync
	if m.LoadAcq[1].Pred != isa.ClassR || m.LoadAcq[1].Cum != isa.CumNone {
		t.Error("ld acq must end with ctrlisync (non-cumulative R→RW)")
	}
	if m.LoadSC[0].Cum != isa.CumHW {
		t.Error("leading-sync ld sc must start with hwsync")
	}
	if m.StoreRel[0].Cum != isa.CumLW || m.StoreSC[0].Cum != isa.CumHW {
		t.Error("st rel/sc must lead with lwsync/hwsync")
	}
	// Trailing: sync after SC accesses.
	if PowerTrailingSync.LoadSC[1].Cum != isa.CumHW {
		t.Error("trailing-sync ld sc must end with hwsync")
	}
	if PowerTrailingSync.StoreSC[2].Cum != isa.CumHW || PowerTrailingSync.StoreSC[0].Cum != isa.CumLW {
		t.Error("trailing-sync st sc must be lwsync; st; hwsync")
	}
}

// TestFigure8WRCBaseCompilation reproduces the paper's Figure 8: the WRC
// variant of Figure 3 compiled with the intuitive Base mapping yields
// exactly sw / lw; fence rw,w; sw / lw; fence r,rw; lw.
func TestFigure8WRCBaseCompilation(t *testing.T) {
	tst := litmus.WRC.Instantiate([]c11.Order{c11.Rlx, c11.Rlx, c11.Rel, c11.Acq, c11.Rlx})
	p := compileTest(t, RISCVBaseIntuitive, tst.Prog)
	want := [][]isa.OpKind{
		{isa.OpStore},
		{isa.OpLoad, isa.OpFence, isa.OpStore},
		{isa.OpLoad, isa.OpFence, isa.OpLoad},
	}
	for th := range want {
		got := kinds(p, th)
		if len(got) != len(want[th]) {
			t.Fatalf("T%d: %v, want %v", th, got, want[th])
		}
		for i := range got {
			if got[i] != want[th][i] {
				t.Errorf("T%d[%d] = %v, want %v", th, i, got[i], want[th][i])
			}
		}
	}
	// Figure 8's fences: T1's is fence rw,w; T2's is fence r,rw.
	if f := p.Instrs[1][1]; f.Pred != isa.ClassRW || f.Succ != isa.ClassW {
		t.Errorf("T1 fence = %v,%v, want rw,w", f.Pred, f.Succ)
	}
	if f := p.Instrs[2][1]; f.Pred != isa.ClassR || f.Succ != isa.ClassRW {
		t.Errorf("T2 fence = %v,%v, want r,rw", f.Pred, f.Succ)
	}
}

// TestFigure10WRCAtomicsCompilation reproduces Figure 10: WRC under the
// intuitive Base+A mapping becomes sw / lw; amoswap.rl / amoadd.aq; lw.
func TestFigure10WRCAtomicsCompilation(t *testing.T) {
	tst := litmus.WRC.Instantiate([]c11.Order{c11.Rlx, c11.Rlx, c11.Rel, c11.Acq, c11.Rlx})
	p := compileTest(t, RISCVAtomicsIntuitive, tst.Prog)
	if got := kinds(p, 1); got[0] != isa.OpLoad || got[1] != isa.OpAMOStore {
		t.Fatalf("T1 = %v, want lw; amostore", got)
	}
	rel := p.Instrs[1][1]
	if rel.Aq || !rel.Rl {
		t.Errorf("T1 release AMO bits aq=%v rl=%v, want rl only", rel.Aq, rel.Rl)
	}
	acq := p.Instrs[2][0]
	if acq.Op != isa.OpAMOLoad || !acq.Aq || acq.Rl {
		t.Errorf("T2 acquire = %+v, want AMOLoad.aq", acq)
	}
}

// TestObserversPreserved: the compiled program exposes the same observers,
// so HLL and ISA outcomes are directly comparable.
func TestObserversPreserved(t *testing.T) {
	tst := litmus.IRIW.Instantiate([]c11.Order{c11.SC, c11.SC, c11.SC, c11.SC, c11.SC, c11.SC})
	for _, m := range Mappings() {
		p := compileTest(t, m, tst.Prog)
		hllObs := tst.Prog.Mem().Observers
		isaObs := p.Mem().Observers
		if len(hllObs) != len(isaObs) {
			t.Fatalf("%s: observer count %d, want %d", m.Name, len(isaObs), len(hllObs))
		}
		for i := range hllObs {
			if hllObs[i] != isaObs[i] {
				t.Errorf("%s: observer %d = %+v, want %+v", m.Name, i, isaObs[i], hllObs[i])
			}
		}
	}
}

// TestOutcomeUniversePreserved: compilation must not change the candidate
// outcome universe — same observers, same writes, same value space.
func TestOutcomeUniversePreserved(t *testing.T) {
	for _, shape := range []*litmus.Shape{litmus.MP, litmus.WRC, litmus.SB} {
		tst := shape.Instantiate(allOrders(shape, c11.Rlx, c11.Rel, c11.Acq))
		hllOut, err := mem.Outcomes(tst.Prog.Mem())
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range []*Mapping{RISCVBaseIntuitive, RISCVBaseRefined, PowerLeadingSync} {
			p := compileTest(t, m, tst.Prog)
			isaOut, err := mem.Outcomes(p.Mem())
			if err != nil {
				t.Fatal(err)
			}
			for o := range hllOut {
				if !isaOut[o] {
					t.Errorf("%s/%s: HLL outcome %q missing at ISA level", shape.Name, m.Name, o)
				}
			}
		}
	}
}

// allOrders assigns ldOrd to loads and the matching store orders to stores.
func allOrders(s *litmus.Shape, stOrd, stAlt, ldOrd c11.Order) []c11.Order {
	out := make([]c11.Order, len(s.Slots))
	for i, k := range s.Slots {
		if k == litmus.StoreSlot {
			if i%2 == 0 {
				out[i] = stOrd
			} else {
				out[i] = stAlt
			}
		} else {
			out[i] = ldOrd
		}
	}
	return out
}

// TestControlDependencyReindexing: a control-dependent store must point at
// the access instruction of its source load even when fences are emitted
// in between.
func TestControlDependencyReindexing(t *testing.T) {
	p := c11.New(2, "x", "y")
	x, y := mem.Const(0), mem.Const(1)
	g := p.Load(0, c11.Acq, x, 0)
	_ = g
	p.StoreDep(0, c11.Rel, y, mem.Const(1), []int{0})
	p.Observe(0, 0, "r0")
	out := compileTest(t, RISCVBaseIntuitive, p)
	// T0 compiles to: lw; fence r,rw; fence rw,w; sw. The sw's control dep
	// must reference instruction 0 (the lw).
	var sw *isa.Instr
	for _, ins := range out.Instrs[0] {
		if ins.Op == isa.OpStore {
			sw = ins
		}
	}
	if sw == nil {
		t.Fatal("no store emitted")
	}
	if len(sw.CtrlDepOn) != 1 || sw.CtrlDepOn[0] != 0 {
		t.Fatalf("store CtrlDepOn = %v, want [0]", sw.CtrlDepOn)
	}
	if out.Instrs[0][0].Op != isa.OpLoad {
		t.Fatalf("instruction 0 is %v, want the load", out.Instrs[0][0].Op)
	}
}

// TestAddressDependencyCarriedThrough: register operands survive
// compilation (Figure 13/14 correspondence).
func TestAddressDependencyCarriedThrough(t *testing.T) {
	tst := litmus.MPAddrDep.Instantiate([]c11.Order{c11.Rel, c11.Rel, c11.Rlx, c11.Acq})
	for _, m := range []*Mapping{RISCVBaseIntuitive, RISCVAtomicsIntuitive} {
		p := compileTest(t, m, tst.Prog)
		found := false
		for _, ins := range p.Instrs[1] {
			if ins.HasReadPart() && ins.Addr.Kind == mem.OpReg {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: address dependency lost in compilation", m.Name)
		}
	}
}

func TestMappingValidate(t *testing.T) {
	for _, m := range Mappings() {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
	bad := &Mapping{Name: "bad", LoadRlx: Recipe{F(isa.ClassR, isa.ClassR)}}
	if err := bad.Validate(); err == nil {
		t.Error("mapping without an access item must fail validation")
	}
	bad2 := Recipe{Access(), Access()}
	if err := bad2.Validate(); err == nil {
		t.Error("recipe with two accesses must fail validation")
	}
}

func TestMappingByName(t *testing.T) {
	for _, m := range Mappings() {
		if MappingByName(m.Name) != m {
			t.Errorf("MappingByName(%s) broken", m.Name)
		}
	}
	if MappingByName("nope") != nil {
		t.Error("MappingByName(nope) should be nil")
	}
}

// TestCompileFenceProgram: C11 fences lower through the fence recipes.
func TestCompileFenceProgram(t *testing.T) {
	p := c11.New(2, "x", "y")
	x, y := mem.Const(0), mem.Const(1)
	p.Store(0, c11.Rlx, x, mem.Const(1))
	p.FenceOp(0, c11.Rel)
	p.Store(0, c11.Rlx, y, mem.Const(1))
	p.Load(1, c11.Rlx, y, 0)
	p.FenceOp(1, c11.Acq)
	p.Load(1, c11.Rlx, x, 1)
	p.Observe(1, 0, "r0")
	p.Observe(1, 1, "r1")
	out := compileTest(t, RISCVBaseRefined, p)
	if out.Instrs[0][1].Op != isa.OpFence || out.Instrs[0][1].Cum != isa.CumLW {
		t.Errorf("release fence should compile to lwf under the refined mapping, got %+v", out.Instrs[0][1])
	}
	s := strings.TrimSpace(out.String())
	if s == "" {
		t.Error("empty rendering")
	}
}
