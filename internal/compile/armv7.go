package compile

import "tricheck/internal/isa"

// ARMv7 mappings. ARMv7 has no lightweight fence: dmb is a full cumulative
// heavyweight barrier (≈ Power sync), and the ctrl+isb idiom matches
// ctrl+isync. These mappings make the paper's Figure 1/2 story executable
// end to end: ARMv7Standard compiles relaxed atomics to bare accesses and
// is exposed to the Cortex-A9 load→load hazard; ARMv7HazardFix adds ARM's
// recommended dmb after every atomic load (the workaround whose cost
// Figure 2 measures).
var (
	// ARMv7Standard is the conventional C11 → ARMv7 mapping
	// (dmb-based; see Sewell et al.'s C/C++11 mappings table).
	ARMv7Standard = &Mapping{
		Name:        "armv7-standard",
		Description: "C11 → ARMv7: dmb-based mapping (pre-hazard-fix)",
		Arch:        isa.ARMv7,
		LoadRlx:     Recipe{Access()},
		LoadAcq:     Recipe{Access(), HWF()}, // ld; dmb
		LoadSC:      Recipe{Access(), HWF()},
		StoreRlx:    Recipe{Access()},
		StoreRel:    Recipe{HWF(), Access()},        // dmb; st
		StoreSC:     Recipe{HWF(), Access(), HWF()}, // dmb; st; dmb
		FenceAcq:    Recipe{HWF()},
		FenceRel:    Recipe{HWF()},
		FenceAcqRel: Recipe{HWF()},
		FenceSC:     Recipe{HWF()},
	}

	// ARMv7HazardFix additionally issues a dmb immediately after relaxed
	// atomic loads, per ARM's Cortex-A9 read-after-read advice (Section
	// 2.1): binary patching was infeasible, so the compiler pays instead.
	ARMv7HazardFix = &Mapping{
		Name:        "armv7-hazard-fix",
		Description: "ARMv7 mapping with dmb after relaxed loads (ARM's ld→ld hazard fix)",
		Arch:        isa.ARMv7,
		LoadRlx:     Recipe{Access(), HWF()},
		LoadAcq:     Recipe{Access(), HWF()},
		LoadSC:      Recipe{Access(), HWF()},
		StoreRlx:    Recipe{Access()},
		StoreRel:    Recipe{HWF(), Access()},
		StoreSC:     Recipe{HWF(), Access(), HWF()},
		FenceAcq:    Recipe{HWF()},
		FenceRel:    Recipe{HWF()},
		FenceAcqRel: Recipe{HWF()},
		FenceSC:     Recipe{HWF()},
	}
)
