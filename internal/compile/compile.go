// Package compile implements TriCheck's HLL→ISA compilation step (step 2 of
// the Figure 6 toolflow): mapping tables from C11 atomic operations to ISA
// instruction sequences, and a compiler that lowers a C11 litmus program to
// an isa.Program while preserving registers, dependencies and outcome
// observers.
//
// The shipped mappings are the paper's Tables 1–3 plus the trailing-sync
// Power mapping examined in Section 7:
//
//	RISCVBaseIntuitive / RISCVBaseRefined         (Table 2)
//	RISCVAtomicsIntuitive / RISCVAtomicsRefined   (Table 3)
//	PowerLeadingSync                              (Table 1)
//	PowerTrailingSync                             (Batty et al., §7)
package compile

import (
	"fmt"
	"sync"

	"tricheck/internal/c11"
	"tricheck/internal/isa"
	"tricheck/internal/mem"
)

// progPool recycles compiled programs between verification jobs. A cold
// sweep compiles one program per (test, stack) job and discards it as
// soon as the verdict is computed, so the instruction and event arenas
// otherwise dominate the toolflow's allocation profile.
var progPool sync.Pool

func acquireProgram(arch isa.Arch, nlocs int, names ...string) *isa.Program {
	if v := progPool.Get(); v != nil {
		p := v.(*isa.Program)
		p.Reset(arch, nlocs, names...)
		return p
	}
	return isa.NewProgram(arch, nlocs, names...)
}

// ReleaseProgram returns a compiled program to the pool for reuse by a
// later Compile. The caller must not retain p or any of its
// instructions or events afterwards.
func ReleaseProgram(p *isa.Program) {
	if p != nil {
		progPool.Put(p)
	}
}

// ItemKind classifies a recipe element.
type ItemKind uint8

// Recipe element kinds.
const (
	// KFence emits a fence.
	KFence ItemKind = iota
	// KAccess emits the access itself as a plain load/store.
	KAccess
	// KAMO emits the access as an AMO (AMOADD-zero for loads, AMOSWAP for
	// stores) with the item's annotation bits.
	KAMO
)

// Item is one element of a mapping recipe.
type Item struct {
	Kind       ItemKind
	Pred, Succ isa.Class        // KFence
	Cum        isa.Cumulativity // KFence
	Aq, Rl, SC bool             // KAMO
}

// F builds a plain fence item.
func F(pred, succ isa.Class) Item { return Item{Kind: KFence, Pred: pred, Succ: succ} }

// LWF builds a cumulative lightweight fence item.
func LWF() Item {
	return Item{Kind: KFence, Pred: isa.ClassRW, Succ: isa.ClassRW, Cum: isa.CumLW}
}

// HWF builds a cumulative heavyweight fence item.
func HWF() Item {
	return Item{Kind: KFence, Pred: isa.ClassRW, Succ: isa.ClassRW, Cum: isa.CumHW}
}

// Access builds the plain-access item.
func Access() Item { return Item{Kind: KAccess} }

// AMO builds the AMO-access item with annotation bits.
func AMO(aq, rl, sc bool) Item { return Item{Kind: KAMO, Aq: aq, Rl: rl, SC: sc} }

// Recipe is the instruction sequence a C11 operation lowers to. Exactly one
// item must be KAccess or KAMO.
type Recipe []Item

// Validate checks the one-access invariant.
func (r Recipe) Validate() error {
	n := 0
	for _, it := range r {
		if it.Kind == KAccess || it.Kind == KAMO {
			n++
		}
	}
	if n != 1 {
		return fmt.Errorf("compile: recipe must contain exactly one access, has %d", n)
	}
	return nil
}

// Mapping is a complete C11→ISA compiler mapping.
type Mapping struct {
	// Name identifies the mapping ("riscv-base-intuitive", ...).
	Name string
	// Description cites the paper table it reproduces.
	Description string
	// Arch is the target architecture.
	Arch isa.Arch
	// Load and store recipes per C11 memory order. NA compiles like Rlx.
	LoadRlx, LoadAcq, LoadSC    Recipe
	StoreRlx, StoreRel, StoreSC Recipe
	// Fence recipes for C11 atomic_thread_fence.
	FenceAcq, FenceRel, FenceAcqRel, FenceSC Recipe
}

// Validate checks every recipe.
func (m *Mapping) Validate() error {
	for _, r := range []Recipe{m.LoadRlx, m.LoadAcq, m.LoadSC, m.StoreRlx, m.StoreRel, m.StoreSC} {
		if err := r.Validate(); err != nil {
			return fmt.Errorf("%s: %w", m.Name, err)
		}
	}
	return nil
}

// loadRecipe selects the recipe for a load of the given order.
func (m *Mapping) loadRecipe(o c11.Order) (Recipe, error) {
	switch o {
	case c11.NA, c11.Rlx:
		return m.LoadRlx, nil
	case c11.Acq:
		return m.LoadAcq, nil
	case c11.SC:
		return m.LoadSC, nil
	}
	return nil, fmt.Errorf("compile: no load recipe for order %v", o)
}

// storeRecipe selects the recipe for a store of the given order.
func (m *Mapping) storeRecipe(o c11.Order) (Recipe, error) {
	switch o {
	case c11.NA, c11.Rlx:
		return m.StoreRlx, nil
	case c11.Rel:
		return m.StoreRel, nil
	case c11.SC:
		return m.StoreSC, nil
	}
	return nil, fmt.Errorf("compile: no store recipe for order %v", o)
}

// fenceRecipe selects the recipe for a C11 fence.
func (m *Mapping) fenceRecipe(o c11.Order) (Recipe, error) {
	switch o {
	case c11.Acq:
		return m.FenceAcq, nil
	case c11.Rel:
		return m.FenceRel, nil
	case c11.AcqRel:
		return m.FenceAcqRel, nil
	case c11.SC:
		return m.FenceSC, nil
	}
	return nil, fmt.Errorf("compile: no fence recipe for order %v", o)
}

// Compile lowers a C11 program to the target ISA. Registers keep their
// numbers, syntactic address/data dependencies carry over via operands,
// control dependencies are re-indexed to the emitted access instructions,
// and observers are copied, so outcomes from both levels are directly
// comparable.
func Compile(m *Mapping, p *c11.Program) (*isa.Program, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	hll := p.Mem()
	out := acquireProgram(m.Arch, hll.NumLocs, hll.LocNames...)
	for t, ops := range p.Ops {
		// accessIdx maps the C11 per-thread op index to the per-thread
		// index of its emitted access instruction, for control deps.
		accessIdx := make([]int, len(ops))
		for i, op := range ops {
			var recipe Recipe
			var err error
			switch op.Kind {
			case c11.OpLoad:
				recipe, err = m.loadRecipe(op.Ord)
			case c11.OpStore:
				recipe, err = m.storeRecipe(op.Ord)
			case c11.OpFence:
				recipe, err = m.fenceRecipe(op.Ord)
			case c11.OpRMW:
				return nil, fmt.Errorf("compile: C11 RMWs are not part of the paper's mappings")
			}
			if err != nil {
				return nil, err
			}
			ctrl := make([]int, 0, len(op.CtrlDepOn))
			for _, d := range op.CtrlDepOn {
				ctrl = append(ctrl, accessIdx[d])
			}
			for _, item := range recipe {
				var ins isa.Instr
				switch item.Kind {
				case KFence:
					ins = isa.Instr{Op: isa.OpFence, Pred: item.Pred, Succ: item.Succ, Cum: item.Cum, Dst: mem.NoDst}
				case KAccess:
					if op.Kind == c11.OpLoad {
						ins = isa.Instr{Op: isa.OpLoad, Addr: op.Addr, Dst: op.Dst}
					} else {
						ins = isa.Instr{Op: isa.OpStore, Addr: op.Addr, Data: op.Data, Dst: mem.NoDst}
					}
					ins.CtrlDepOn = ctrl
				case KAMO:
					if op.Kind == c11.OpLoad {
						ins = isa.Instr{Op: isa.OpAMOLoad, Addr: op.Addr, Dst: op.Dst}
					} else {
						ins = isa.Instr{Op: isa.OpAMOStore, Addr: op.Addr, Data: op.Data, Dst: mem.NoDst}
					}
					ins.Aq, ins.Rl, ins.SCBit = item.Aq, item.Rl, item.SC
					ins.CtrlDepOn = ctrl
				}
				idx := out.Add(t, ins)
				if item.Kind != KFence {
					accessIdx[i] = idx
				}
			}
		}
	}
	for _, ob := range hll.Observers {
		out.Observe(ob.Thread, ob.Reg, ob.Label)
	}
	for _, ob := range hll.MemObservers {
		out.Mem().AddMemObserver(ob.Loc, ob.Label)
	}
	return out, nil
}

// The paper's mapping tables. r/w/m in Table 2 correspond to
// ClassR/ClassW/ClassRW here.
var (
	// RISCVBaseIntuitive is Table 2's "Intuitive" column: the mapping a
	// compiler writer would derive from the current RISC-V manual.
	RISCVBaseIntuitive = &Mapping{
		Name:        "riscv-base-intuitive",
		Description: "Table 2, Intuitive C11 → RISC-V Base mapping",
		Arch:        isa.RISCV,
		LoadRlx:     Recipe{Access()},
		LoadAcq:     Recipe{Access(), F(isa.ClassR, isa.ClassRW)},
		LoadSC:      Recipe{F(isa.ClassRW, isa.ClassRW), Access(), F(isa.ClassRW, isa.ClassRW)},
		StoreRlx:    Recipe{Access()},
		StoreRel:    Recipe{F(isa.ClassRW, isa.ClassW), Access()},
		StoreSC:     Recipe{F(isa.ClassRW, isa.ClassRW), Access()},
		FenceAcq:    Recipe{F(isa.ClassR, isa.ClassRW)},
		FenceRel:    Recipe{F(isa.ClassRW, isa.ClassW)},
		FenceAcqRel: Recipe{F(isa.ClassRW, isa.ClassRW)},
		FenceSC:     Recipe{F(isa.ClassRW, isa.ClassRW)},
	}

	// RISCVBaseRefined is Table 2's "Refined" column: release stores use
	// the proposed cumulative lightweight fence, SC accesses the proposed
	// cumulative heavyweight fence.
	RISCVBaseRefined = &Mapping{
		Name:        "riscv-base-refined",
		Description: "Table 2, Refined C11 → RISC-V Base mapping (riscv-ours)",
		Arch:        isa.RISCV,
		LoadRlx:     Recipe{Access()},
		LoadAcq:     Recipe{Access(), F(isa.ClassR, isa.ClassRW)},
		LoadSC:      Recipe{HWF(), Access(), F(isa.ClassR, isa.ClassRW)},
		StoreRlx:    Recipe{Access()},
		StoreRel:    Recipe{LWF(), Access()},
		StoreSC:     Recipe{HWF(), Access()},
		FenceAcq:    Recipe{F(isa.ClassR, isa.ClassRW)},
		FenceRel:    Recipe{LWF()},
		FenceAcqRel: Recipe{LWF()},
		FenceSC:     Recipe{HWF()},
	}

	// RISCVAtomicsIntuitive is Table 3's "Intuitive" column. SC atomics use
	// AMO.aq.rl, which the current spec makes store atomic.
	RISCVAtomicsIntuitive = &Mapping{
		Name:        "riscv-base+a-intuitive",
		Description: "Table 3, Intuitive C11 → RISC-V Base+A mapping",
		Arch:        isa.RISCV,
		LoadRlx:     Recipe{Access()},
		LoadAcq:     Recipe{AMO(true, false, false)},
		LoadSC:      Recipe{AMO(true, true, false)},
		StoreRlx:    Recipe{Access()},
		StoreRel:    Recipe{AMO(false, true, false)},
		StoreSC:     Recipe{AMO(true, true, false)},
		FenceAcq:    Recipe{F(isa.ClassR, isa.ClassRW)},
		FenceRel:    Recipe{F(isa.ClassRW, isa.ClassW)},
		FenceAcqRel: Recipe{F(isa.ClassRW, isa.ClassRW)},
		FenceSC:     Recipe{F(isa.ClassRW, isa.ClassRW)},
	}

	// RISCVAtomicsRefined is Table 3's "Refined" column: the proposed ".sc"
	// bit supplies store atomicity without the roach-motel-blocking extra
	// acquire/release semantics (Section 5.2.2).
	RISCVAtomicsRefined = &Mapping{
		Name:        "riscv-base+a-refined",
		Description: "Table 3, Refined C11 → RISC-V Base+A mapping (riscv-ours)",
		Arch:        isa.RISCV,
		LoadRlx:     Recipe{Access()},
		LoadAcq:     Recipe{AMO(true, false, false)},
		LoadSC:      Recipe{AMO(true, false, true)},
		StoreRlx:    Recipe{Access()},
		StoreRel:    Recipe{AMO(false, true, false)},
		StoreSC:     Recipe{AMO(false, true, true)},
		FenceAcq:    Recipe{F(isa.ClassR, isa.ClassRW)},
		FenceRel:    Recipe{LWF()},
		FenceAcqRel: Recipe{LWF()},
		FenceSC:     Recipe{HWF()},
	}

	// PowerLeadingSync is Table 1: McKenney & Silvera's leading-sync C11 →
	// Power mapping, the one the paper adopts after Section 7.
	PowerLeadingSync = &Mapping{
		Name:        "power-leading-sync",
		Description: "Table 1, leading-sync C11 → Power mapping",
		Arch:        isa.Power,
		LoadRlx:     Recipe{Access()},
		LoadAcq:     Recipe{Access(), F(isa.ClassR, isa.ClassRW)}, // ld; ctrlisync
		LoadSC:      Recipe{HWF(), Access(), F(isa.ClassR, isa.ClassRW)},
		StoreRlx:    Recipe{Access()},
		StoreRel:    Recipe{LWF(), Access()},
		StoreSC:     Recipe{HWF(), Access()},
		FenceAcq:    Recipe{LWF()},
		FenceRel:    Recipe{LWF()},
		FenceAcqRel: Recipe{LWF()},
		FenceSC:     Recipe{HWF()},
	}

	// PowerTrailingSync is the trailing-sync mapping of Batty et al. whose
	// proof loophole Section 7 exposes: SC loads are ld; hwsync and SC
	// stores lwsync; st; hwsync.
	PowerTrailingSync = &Mapping{
		Name:        "power-trailing-sync",
		Description: "Trailing-sync C11 → Power mapping (Section 7 counterexamples)",
		Arch:        isa.Power,
		LoadRlx:     Recipe{Access()},
		LoadAcq:     Recipe{Access(), F(isa.ClassR, isa.ClassRW)},
		LoadSC:      Recipe{Access(), HWF()},
		StoreRlx:    Recipe{Access()},
		StoreRel:    Recipe{LWF(), Access()},
		StoreSC:     Recipe{LWF(), Access(), HWF()},
		FenceAcq:    Recipe{LWF()},
		FenceRel:    Recipe{LWF()},
		FenceAcqRel: Recipe{LWF()},
		FenceSC:     Recipe{HWF()},
	}
)

// Mappings returns every shipped mapping.
func Mappings() []*Mapping {
	return []*Mapping{
		RISCVBaseIntuitive, RISCVBaseRefined,
		RISCVAtomicsIntuitive, RISCVAtomicsRefined,
		PowerLeadingSync, PowerTrailingSync,
		ARMv7Standard, ARMv7HazardFix,
		X86TSO,
	}
}

// MappingByName finds a mapping by name, or nil.
func MappingByName(name string) *Mapping {
	for _, m := range Mappings() {
		if m.Name == name {
			return m
		}
	}
	return nil
}
