package compile

import "tricheck/internal/isa"

// X86TSO is the standard C11 → x86 mapping (Sewell et al.'s mappings
// table): TSO hardware already provides acquire/release ordering, so loads
// and stores compile bare and only SC stores need an mfence (modelled as a
// plain non-cumulative full fence — cumulativity is vacuous on an rMCA
// machine). It pairs with the uspec.TSO model; the Figure 15 machinery then
// shows the classic result that the only weak behaviour x86 exhibits is
// store buffering.
//
// The ISA vocabulary reuses isa.RISCV opcodes (plain loads/stores/fences);
// only the mnemonics differ, which no analysis here depends on.
var X86TSO = &Mapping{
	Name:        "x86-tso",
	Description: "C11 → x86: bare accesses, mfence after SC stores",
	Arch:        isa.RISCV,
	LoadRlx:     Recipe{Access()},
	LoadAcq:     Recipe{Access()},
	LoadSC:      Recipe{Access()},
	StoreRlx:    Recipe{Access()},
	StoreRel:    Recipe{Access()},
	StoreSC:     Recipe{Access(), F(isa.ClassRW, isa.ClassRW)}, // st; mfence
	FenceAcq:    Recipe{F(isa.ClassR, isa.ClassRW)},
	FenceRel:    Recipe{F(isa.ClassRW, isa.ClassW)},
	FenceAcqRel: Recipe{F(isa.ClassRW, isa.ClassRW)},
	FenceSC:     Recipe{F(isa.ClassRW, isa.ClassRW)},
}
