// Package report renders TriCheck results as text: Figure 15-style
// bug/strict/equivalent charts per litmus family and µspec model, the
// Table 7 model matrix, mapping tables, and CSV for external plotting.
package report

import (
	"fmt"
	"io"
	"strings"

	"tricheck/internal/compile"
	"tricheck/internal/core"
	"tricheck/internal/isa"
	"tricheck/internal/uspec"
)

// Bar renders n as a proportional bar of width w against total.
func Bar(n, total, w int) string {
	if total == 0 {
		return ""
	}
	k := n * w / total
	if n > 0 && k == 0 {
		k = 1
	}
	return strings.Repeat("#", k)
}

// Figure15 writes the per-family verdict chart for a set of suite results
// (one per stack), mirroring the paper's Figure 15 panels.
func Figure15(w io.Writer, results []*core.SuiteResult) {
	if len(results) == 0 {
		return
	}
	var families []string
	seen := map[string]bool{}
	for _, res := range results {
		for _, f := range res.FamilyNames() {
			if !seen[f] {
				seen[f] = true
				families = append(families, f)
			}
		}
	}
	for _, fam := range families {
		fmt.Fprintf(w, "── %s ──\n", fam)
		fmt.Fprintf(w, "%-45s %6s %6s %6s %6s  %s\n", "stack", "bugs", "strict", "equiv", "total", "bugs-by-specified-outcome")
		for _, res := range results {
			t := res.ByFamily[fam]
			if t == nil {
				continue
			}
			fmt.Fprintf(w, "%-45s %6d %6d %6d %6d  %d\n",
				res.Stack.Name(), t.Bugs, t.Strict, t.Equivalent, t.Total, t.SpecifiedBugs)
		}
	}
	fmt.Fprintf(w, "── aggregate ──\n")
	fmt.Fprintf(w, "%-45s %6s %6s %6s %6s   %s\n", "stack", "bugs", "strict", "equiv", "total", "chart (bugs #, strict +, equiv .)")
	for _, res := range results {
		t := res.Tally
		chart := strings.Repeat("#", scale(t.Bugs, t.Total)) +
			strings.Repeat("+", scale(t.Strict, t.Total)) +
			strings.Repeat(".", scale(t.Equivalent, t.Total))
		fmt.Fprintf(w, "%-45s %6d %6d %6d %6d   %s\n",
			res.Stack.Name(), t.Bugs, t.Strict, t.Equivalent, t.Total, chart)
	}
}

func scale(n, total int) int {
	if total == 0 {
		return 0
	}
	k := n * 40 / total
	if n > 0 && k == 0 {
		k = 1
	}
	return k
}

// CSV writes one row per (stack, family) with verdict counts.
func CSV(w io.Writer, results []*core.SuiteResult) {
	fmt.Fprintln(w, "stack,family,bugs,strict,equivalent,total,specified_bugs")
	for _, res := range results {
		for _, fam := range res.FamilyNames() {
			t := res.ByFamily[fam]
			fmt.Fprintf(w, "%s,%s,%d,%d,%d,%d,%d\n",
				res.Stack.Name(), fam, t.Bugs, t.Strict, t.Equivalent, t.Total, t.SpecifiedBugs)
		}
		t := res.Tally
		fmt.Fprintf(w, "%s,ALL,%d,%d,%d,%d,%d\n",
			res.Stack.Name(), t.Bugs, t.Strict, t.Equivalent, t.Total, t.SpecifiedBugs)
	}
}

// Table7 renders the µspec model matrix (paper Figure 7).
func Table7(w io.Writer, variant uspec.Variant) {
	fmt.Fprintf(w, "µSpec models (%s) — relaxed program order and store atomicity\n", variant)
	fmt.Fprintf(w, "%-8s %-4s %-4s %-4s %-5s %-5s %-5s %-12s %s\n",
		"model", "W→R", "W→W", "R→M", "MCA", "rMCA", "nMCA", "same-addr-RR", "notes")
	mark := func(b bool) string {
		if b {
			return "✓"
		}
		return ""
	}
	for _, r := range uspec.Table7(variant) {
		notes := ""
		if r.ViaCacheProtocol {
			notes = "write-back caches + non-stalling directory"
		}
		sar := "ordered"
		if r.SameAddrRRRelaxed {
			sar = "relaxed"
		}
		fmt.Fprintf(w, "%-8s %-4s %-4s %-4s %-5s %-5s %-5s %-12s %s\n",
			r.Name, mark(r.WR), mark(r.WW), mark(r.RM), mark(r.MCA), mark(r.RMCA), mark(r.NMCA), sar, notes)
	}
}

// MappingTable renders a compiler mapping like the paper's Tables 1–3.
func MappingTable(w io.Writer, m *compile.Mapping) {
	fmt.Fprintf(w, "%s (%s)\n", m.Name, m.Description)
	rows := []struct {
		c11    string
		recipe compile.Recipe
	}{
		{"ld rlx", m.LoadRlx}, {"ld acq", m.LoadAcq}, {"ld sc", m.LoadSC},
		{"st rlx", m.StoreRlx}, {"st rel", m.StoreRel}, {"st sc", m.StoreSC},
	}
	for _, r := range rows {
		fmt.Fprintf(w, "  %-7s → %s\n", r.c11, RecipeString(r.recipe, r.c11[:2] == "ld"))
	}
}

// RecipeString renders a recipe in the paper's notation.
func RecipeString(r compile.Recipe, isLoad bool) string {
	var parts []string
	for _, it := range r {
		switch it.Kind {
		case compile.KFence:
			switch it.Cum {
			case isa.CumLW:
				parts = append(parts, "lwf")
			case isa.CumHW:
				parts = append(parts, "hwf")
			default:
				parts = append(parts, fmt.Sprintf("f[%s,%s]", it.Pred, it.Succ))
			}
		case compile.KAccess:
			if isLoad {
				parts = append(parts, "ld")
			} else {
				parts = append(parts, "st")
			}
		case compile.KAMO:
			s := "AMO"
			if it.Aq {
				s += ".aq"
			}
			if it.Rl {
				s += ".rl"
			}
			if it.SC {
				s += ".sc"
			}
			parts = append(parts, s)
		}
	}
	return strings.Join(parts, "; ")
}
