package report

import (
	"strings"
	"testing"

	"tricheck/internal/core"
)

// feed streams the given events and returns StreamProgress's output.
func feed(every int, evs ...core.Progress) string {
	var b strings.Builder
	events := make(chan core.Progress, len(evs))
	for _, ev := range evs {
		events <- ev
	}
	close(events)
	StreamProgress(&b, events, every)
	return b.String()
}

func ev(done, total int, v core.Verdict, cached bool) core.Progress {
	return core.Progress{Done: done, Total: total, Verdict: v, Cached: cached, Test: "t", Stack: "s"}
}

func TestStreamProgressAbortedSweep(t *testing.T) {
	// The events channel closes with done < total (the sweep errored or
	// was cancelled): the final line must report the partial count, not
	// pretend completion.
	out := feed(1,
		ev(1, 10, core.Bug, false),
		ev(2, 10, core.Equivalent, true),
	)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	last := lines[len(lines)-1]
	if !strings.Contains(last, "2/10 done") {
		t.Fatalf("final line %q does not report the aborted 2/10 state", last)
	}
	if !strings.Contains(last, "bugs=1") || !strings.Contains(last, "equiv=1") || !strings.Contains(last, "cached=1") {
		t.Fatalf("final line %q lost the partial tallies", last)
	}
}

func TestStreamProgressEveryZeroPicksAStep(t *testing.T) {
	// every=0 derives a step from the total (~2%); with a tiny total the
	// derived step must clamp to 1 instead of dividing by zero or never
	// printing.
	out := feed(0,
		ev(1, 3, core.Equivalent, false),
		ev(2, 3, core.OverlyStrict, false),
		ev(3, 3, core.Equivalent, false),
	)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Progress lines for 1 and 2 (3 == total is left to the summary).
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 2 progress + 1 summary:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[len(lines)-1], "3/3 done") {
		t.Fatalf("missing completion summary:\n%s", out)
	}
}

func TestStreamProgressEveryZeroLargeTotal(t *testing.T) {
	// With a large total, every=0 prints roughly every 2% — so 3 events
	// into a 1000-job sweep print nothing but the summary.
	out := feed(0,
		ev(1, 1000, core.Equivalent, false),
		ev(2, 1000, core.Equivalent, false),
		ev(3, 1000, core.Equivalent, false),
	)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 1 || !strings.Contains(lines[0], "3/1000 done") {
		t.Fatalf("want only the aborted summary line, got:\n%s", out)
	}
}

func TestStreamProgressNoEvents(t *testing.T) {
	// A sweep that dies before producing anything: no output at all
	// (total is unknown, a "0/0" line would be noise).
	if out := feed(0); out != "" {
		t.Fatalf("empty stream produced output %q", out)
	}
	if out := feed(5); out != "" {
		t.Fatalf("empty stream with every=5 produced output %q", out)
	}
}

func TestStreamProgressCompletedSweepSummary(t *testing.T) {
	out := feed(2,
		ev(1, 4, core.Bug, false),
		ev(2, 4, core.Bug, true),
		ev(3, 4, core.OverlyStrict, false),
		ev(4, 4, core.Equivalent, true),
	)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// every=2: a line at done=2 only (done=4 == total), plus the summary.
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "4/4 done in ") {
		t.Fatalf("summary line %q lacks elapsed time", lines[1])
	}
	if !strings.Contains(lines[1], "tests/sec") {
		t.Fatalf("summary line %q lacks throughput", lines[1])
	}
	if !strings.Contains(lines[1], "bugs=2 strict=1 equiv=1 cached=2") {
		t.Fatalf("summary line %q", lines[1])
	}
}
