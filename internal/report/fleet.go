package report

import (
	"fmt"
	"io"

	"tricheck/api"
)

// This file renders coordinator-merged sweep summaries — an
// api.SummaryRecord is all a fleet client has (the per-result
// core.SuiteResult matrix lives on the workers), so the renderers here
// mirror CSV and the Figure 15 totals from the wire form.

// SummaryCSV writes the merged summary in exactly the CSV schema of
// report.CSV — one row per (stack, family) plus a per-stack ALL row —
// so a fleet sweep's CSV diffs cleanly against a single node's.
func SummaryCSV(w io.Writer, sum *api.SummaryRecord) {
	fmt.Fprintln(w, "stack,family,bugs,strict,equivalent,total,specified_bugs")
	for _, ss := range sum.Stacks {
		for _, fam := range ss.Families {
			fmt.Fprintf(w, "%s,%s,%d,%d,%d,%d,%d\n",
				ss.Stack, fam.Family, fam.Bugs, fam.Strict, fam.Equivalent, fam.Total, fam.SpecifiedBugs)
		}
		t := ss.Tally
		fmt.Fprintf(w, "%s,ALL,%d,%d,%d,%d,%d\n",
			ss.Stack, t.Bugs, t.Strict, t.Equivalent, t.Total, t.SpecifiedBugs)
	}
}

// SummaryTable renders the merged summary's per-stack totals plus the
// fleet dispatch accounting as a human-readable report.
func SummaryTable(w io.Writer, sum *api.SummaryRecord) {
	fmt.Fprintf(w, "%-40s %8s %8s %8s %10s %8s\n", "STACK", "BUGS", "STRICT", "EQUIV", "DIVERGENT", "TOTAL")
	for _, ss := range sum.Stacks {
		t := ss.Tally
		fmt.Fprintf(w, "%-40s %8d %8d %8d %10d %8d\n", ss.Stack, t.Bugs, t.Strict, t.Equivalent, t.Divergent, t.Total)
		if ss.OpsimSkipped != "" {
			fmt.Fprintf(w, "  (opsim skipped: %s)\n", ss.OpsimSkipped)
		}
	}
	fmt.Fprintf(w, "%-40s %8d %8d %8d %10d %8d\n", "ALL", sum.Bugs, sum.Strict, sum.Equivalent, sum.Divergent, sum.Done)
	if sum.ElapsedSeconds > 0 {
		fmt.Fprintf(w, "\n%d/%d verdicts in %.2fs (%.0f tests/sec, %d cached)\n",
			sum.Done, sum.Total, sum.ElapsedSeconds, sum.TestsPerSecond, sum.Cached)
	}
	if sum.Fleet != nil {
		fmt.Fprintf(w, "\nfleet: %d workers, %d hedges, %d deduped\n", len(sum.Fleet.Workers), sum.Fleet.Hedges, sum.Fleet.Deduped)
		for _, ws := range sum.Fleet.Workers {
			note := ""
			if ws.Failed {
				note = "  FAILED mid-sweep"
			}
			fmt.Fprintf(w, "  %-32s dispatched %6d  completed %6d%s\n", ws.Worker, ws.Dispatched, ws.Completed, note)
		}
	}
}

// FleetStats renders a coordinator's /v1/stats fleet block — the
// `tricheck top -fleet` view of a running fleet.
func FleetStats(w io.Writer, st *api.FleetStatsJSON) {
	fmt.Fprintf(w, "fleet: %d/%d workers healthy, %d sweeps, %d hedges, %d deduped, %d rebalances\n",
		st.Healthy, st.Workers, st.Sweeps, st.Hedges, st.Deduped, st.Rebalances)
	if len(st.PerWorker) == 0 {
		return
	}
	fmt.Fprintf(w, "%-32s %-9s %12s %12s %8s %8s\n", "WORKER", "HEALTH", "DISPATCHED", "COMPLETED", "HEDGED", "RETRIED")
	for _, ws := range st.PerWorker {
		health := "healthy"
		if !ws.Healthy {
			health = "DOWN"
		}
		fmt.Fprintf(w, "%-32s %-9s %12d %12d %8d %8d\n", ws.URL, health, ws.Dispatched, ws.Completed, ws.Hedged, ws.Retried)
	}
}
