package report

import (
	"fmt"
	"io"

	"tricheck/internal/core"
)

// Tracker accumulates SweepStream progress events into the running
// tallies that StreamProgress logs and that tricheckd's terminal NDJSON
// summary record mirrors. The zero value is ready to use; it is not
// concurrency-safe (feed it from the single goroutine draining the
// events channel).
type Tracker struct {
	// Bugs/Strict/Equivalent count observed verdicts; Cached counts
	// results served from the memo cache or by deduplication.
	Bugs, Strict, Equivalent, Cached int
	// Done is the last event's delivered-result count and Total the
	// sweep size; Done < Total after draining means the sweep aborted.
	Done, Total int
}

// Observe accumulates one event.
func (t *Tracker) Observe(ev core.Progress) {
	t.Done, t.Total = ev.Done, ev.Total
	switch ev.Verdict {
	case core.Bug:
		t.Bugs++
	case core.OverlyStrict:
		t.Strict++
	default:
		t.Equivalent++
	}
	if ev.Cached {
		t.Cached++
	}
}

// StreamProgress drains a SweepStream event channel, writing periodic
// progress lines to w — one every `every` results (0 picks roughly 2%
// of the total) plus a final summary. It returns when the channel
// closes, so it is normally run on its own goroutine:
//
//	events := make(chan core.Progress, 256)
//	done := make(chan struct{})
//	go func() { report.StreamProgress(os.Stderr, events, 0); close(done) }()
//	results, err := eng.SweepStream(tests, stacks, 0, events)
//	<-done
//
// The farm delivers results in completion order; each line shows the
// running verdict tallies and how much of the sweep was served from the
// memo cache.
func StreamProgress(w io.Writer, events <-chan core.Progress, every int) {
	var t Tracker
	for ev := range events {
		t.Observe(ev)
		step := every
		if step <= 0 {
			step = ev.Total / 50
			if step == 0 {
				step = 1
			}
		}
		if ev.Done%step == 0 && ev.Done != ev.Total {
			fmt.Fprintf(w, "farm: %d/%d (%d%%) bugs=%d strict=%d equiv=%d cached=%d  last=%s on %s\n",
				ev.Done, ev.Total, 100*ev.Done/ev.Total, t.Bugs, t.Strict, t.Equivalent, t.Cached, ev.Test, ev.Stack)
		}
	}
	// done < total happens when the sweep aborted on an error.
	if t.Total > 0 {
		fmt.Fprintf(w, "farm: %d/%d done — bugs=%d strict=%d equiv=%d cached=%d\n",
			t.Done, t.Total, t.Bugs, t.Strict, t.Equivalent, t.Cached)
	}
}
