package report

import (
	"fmt"
	"io"
	"time"

	"tricheck/internal/core"
)

// Tracker accumulates SweepStream progress events into the running
// tallies that StreamProgress logs and that tricheckd's terminal NDJSON
// summary record mirrors. The zero value is ready to use; it is not
// concurrency-safe (feed it from the single goroutine draining the
// events channel).
type Tracker struct {
	// Bugs/Strict/Equivalent count observed verdicts; Cached counts
	// results served from the memo cache or by deduplication.
	Bugs, Strict, Equivalent, Cached int
	// Divergent counts backend=both cross-check disagreements (always
	// zero on single-backend sweeps).
	Divergent int
	// Done is the last event's delivered-result count and Total the
	// sweep size; Done < Total after draining means the sweep aborted.
	Done, Total int

	// start is stamped on the first Observe (or an explicit Begin), last
	// on every Observe, so Elapsed measures first-to-last result without
	// requiring callers to thread a clock through.
	start, last time.Time
}

// Begin stamps the tracker's start time explicitly. Optional: without
// it the first Observe starts the clock, which under-counts by the
// first job's latency on sweeps but needs no caller wiring.
func (t *Tracker) Begin() { t.start = time.Now() }

// Observe accumulates one event.
func (t *Tracker) Observe(ev core.Progress) {
	t.last = time.Now()
	if t.start.IsZero() {
		t.start = t.last
	}
	t.Done, t.Total = ev.Done, ev.Total
	switch ev.Verdict {
	case core.Divergence:
		t.Divergent++
	case core.Bug:
		t.Bugs++
	case core.OverlyStrict:
		t.Strict++
	default:
		t.Equivalent++
	}
	if ev.Cached {
		t.Cached++
	}
}

// divergentNote renders " divergent=N" only when cross-checking found
// disagreements, keeping single-backend progress lines byte-stable.
func (t *Tracker) divergentNote() string {
	if t.Divergent == 0 {
		return ""
	}
	return fmt.Sprintf(" divergent=%d", t.Divergent)
}

// Elapsed is the wall time from Begin (or the first Observe) to the
// last Observe; zero before any result arrives.
func (t *Tracker) Elapsed() time.Duration {
	if t.start.IsZero() || t.last.IsZero() {
		return 0
	}
	return t.last.Sub(t.start)
}

// Rate is the observed throughput in results per second (0 when the
// elapsed window is too small to be meaningful).
func (t *Tracker) Rate() float64 {
	if sec := t.Elapsed().Seconds(); sec > 0 {
		return float64(t.Done) / sec
	}
	return 0
}

// StreamProgress drains a SweepStream event channel, writing periodic
// progress lines to w — one every `every` results (0 picks roughly 2%
// of the total) plus a final summary with elapsed time and throughput.
// It returns when the channel closes, so it is normally run on its own
// goroutine:
//
//	events := make(chan core.Progress, 256)
//	done := make(chan struct{})
//	go func() { report.StreamProgress(os.Stderr, events, 0); close(done) }()
//	results, err := eng.SweepStream(tests, stacks, 0, events)
//	<-done
//
// The farm delivers results in completion order; each line shows the
// running verdict tallies and how much of the sweep was served from the
// memo cache.
func StreamProgress(w io.Writer, events <-chan core.Progress, every int) {
	var t Tracker
	t.Begin()
	for ev := range events {
		t.Observe(ev)
		step := every
		if step <= 0 {
			step = ev.Total / 50
			if step == 0 {
				step = 1
			}
		}
		if ev.Done%step == 0 && ev.Done != ev.Total {
			fmt.Fprintf(w, "farm: %d/%d (%d%%) bugs=%d strict=%d equiv=%d%s cached=%d  last=%s on %s\n",
				ev.Done, ev.Total, 100*ev.Done/ev.Total, t.Bugs, t.Strict, t.Equivalent, t.divergentNote(), t.Cached, ev.Test, ev.Stack)
		}
	}
	// done < total happens when the sweep aborted on an error.
	if t.Total > 0 {
		fmt.Fprintf(w, "farm: %d/%d done in %s (%.0f tests/sec) — bugs=%d strict=%d equiv=%d%s cached=%d\n",
			t.Done, t.Total, t.Elapsed().Round(time.Millisecond), t.Rate(),
			t.Bugs, t.Strict, t.Equivalent, t.divergentNote(), t.Cached)
	}
}
