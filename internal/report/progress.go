package report

import (
	"fmt"
	"io"

	"tricheck/internal/core"
)

// StreamProgress drains a SweepStream event channel, writing periodic
// progress lines to w — one every `every` results (0 picks roughly 2%
// of the total) plus a final summary. It returns when the channel
// closes, so it is normally run on its own goroutine:
//
//	events := make(chan core.Progress, 256)
//	done := make(chan struct{})
//	go func() { report.StreamProgress(os.Stderr, events, 0); close(done) }()
//	results, err := eng.SweepStream(tests, stacks, 0, events)
//	<-done
//
// The farm delivers results in completion order; each line shows the
// running verdict tallies and how much of the sweep was served from the
// memo cache.
func StreamProgress(w io.Writer, events <-chan core.Progress, every int) {
	var bugs, strict, equiv, cached, done, total int
	for ev := range events {
		done = ev.Done
		switch ev.Verdict {
		case core.Bug:
			bugs++
		case core.OverlyStrict:
			strict++
		default:
			equiv++
		}
		if ev.Cached {
			cached++
		}
		total = ev.Total
		step := every
		if step <= 0 {
			step = ev.Total / 50
			if step == 0 {
				step = 1
			}
		}
		if ev.Done%step == 0 && ev.Done != ev.Total {
			fmt.Fprintf(w, "farm: %d/%d (%d%%) bugs=%d strict=%d equiv=%d cached=%d  last=%s on %s\n",
				ev.Done, ev.Total, 100*ev.Done/ev.Total, bugs, strict, equiv, cached, ev.Test, ev.Stack)
		}
	}
	// done < total happens when the sweep aborted on an error.
	if total > 0 {
		fmt.Fprintf(w, "farm: %d/%d done — bugs=%d strict=%d equiv=%d cached=%d\n",
			done, total, bugs, strict, equiv, cached)
	}
}
