package report

import (
	"fmt"
	"strings"

	"tricheck/internal/isa"
	"tricheck/internal/isa/power"
	"tricheck/internal/isa/riscv"
	"tricheck/internal/mem"
	"tricheck/internal/uspec"
)

// Witness renders a human-readable explanation of how an outcome happens
// (or why it cannot): for an observable outcome, a global timeline of µhb
// events taken from a topological order of an acyclic witness graph; for a
// forbidden outcome, the µhb cycle.
func Witness(model *uspec.Model, p *isa.Program, outcome mem.Outcome) (string, error) {
	g, found, err := model.ObservableGraph(p, outcome)
	if err != nil {
		return "", err
	}
	if !found {
		return fmt.Sprintf("outcome %q is not a candidate final state", outcome), nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "outcome %q on %s\n", outcome, model.FullName())
	asm := riscv.Asm
	if p.Arch != isa.RISCV {
		asm = power.Asm
	}
	for t, th := range p.Instrs {
		fmt.Fprintf(&b, "T%d:", t)
		for _, ins := range th {
			fmt.Fprintf(&b, "  %s;", asm(p, ins))
		}
		b.WriteByte('\n')
	}
	if cycle := g.FindCycle(); cycle != nil {
		fmt.Fprintf(&b, "FORBIDDEN — µhb cycle:\n  %s\n", g.ExplainCycle(cycle))
		return b.String(), nil
	}
	fmt.Fprintf(&b, "OBSERVABLE — one µhb-consistent timeline:\n")
	order := g.TopoOrder()
	step := 1
	for _, node := range order {
		label := g.Label(node)
		if !interestingNode(label) || g.IsIsolated(node) {
			continue
		}
		fmt.Fprintf(&b, "  %2d. %s\n", step, label)
		step++
	}
	return b.String(), nil
}

// interestingNode filters the timeline to externally meaningful events:
// performs and visibility points (fetch/execute/commit noise omitted).
func interestingNode(label string) bool {
	return strings.Contains(label, "Perform") || strings.Contains(label, "Visible") ||
		strings.Contains(label, "GetM")
}

// WitnessGraphDOT renders the witness (or forbidding) graph in Graphviz
// format for external visualization.
func WitnessGraphDOT(model *uspec.Model, p *isa.Program, outcome mem.Outcome) (string, error) {
	g, found, err := model.ObservableGraph(p, outcome)
	if err != nil {
		return "", err
	}
	if !found {
		return "", fmt.Errorf("report: outcome %q is not a candidate", outcome)
	}
	return g.DOT(string(outcome)), nil
}

// ExplainVerdictDiff renders the difference between the C11-allowed set
// and the observable set for one test — the step-4 comparison as a
// human-readable table.
func ExplainVerdictDiff(allowed, observable, all map[mem.Outcome]bool) string {
	var rows []string
	for o := range all {
		var cls string
		switch {
		case observable[o] && !allowed[o]:
			cls = "BUG      forbidden by C11, observable on hardware"
		case !observable[o] && allowed[o]:
			cls = "STRICT   allowed by C11, unobservable on hardware"
		case observable[o]:
			cls = "ok       allowed and observable"
		default:
			cls = "ok       forbidden and unobservable"
		}
		rows = append(rows, fmt.Sprintf("  %-28q %s", o, cls))
	}
	sortStrings(rows)
	return strings.Join(rows, "\n")
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
