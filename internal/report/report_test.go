package report

import (
	"strings"
	"testing"

	"tricheck/internal/compile"
	"tricheck/internal/core"
	"tricheck/internal/litmus"
	"tricheck/internal/uspec"
)

func sampleResults(t *testing.T) []*core.SuiteResult {
	t.Helper()
	eng := core.NewEngine()
	tests := litmus.CoRR.Generate()
	var out []*core.SuiteResult
	for _, m := range []*uspec.Model{uspec.RWR(uspec.Curr), uspec.RMM(uspec.Curr)} {
		res, err := eng.RunSuite(tests, core.Stack{Mapping: compile.RISCVBaseIntuitive, Model: m}, 0)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, res)
	}
	return out
}

func TestFigure15Rendering(t *testing.T) {
	results := sampleResults(t)
	var b strings.Builder
	Figure15(&b, results)
	s := b.String()
	for _, want := range []string{"corr", "aggregate", "rWR/riscv-curr", "rMM/riscv-curr", "bugs"} {
		if !strings.Contains(s, want) {
			t.Errorf("Figure15 output missing %q", want)
		}
	}
	// rMM has 18 corr bugs; the bug glyph must appear in its chart row.
	if !strings.Contains(s, "#") {
		t.Error("no bug bar rendered")
	}
	// Empty input: no panic, no output.
	var e strings.Builder
	Figure15(&e, nil)
	if e.Len() != 0 {
		t.Error("empty results should render nothing")
	}
}

func TestCSVRendering(t *testing.T) {
	results := sampleResults(t)
	var b strings.Builder
	CSV(&b, results)
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if lines[0] != "stack,family,bugs,strict,equivalent,total,specified_bugs" {
		t.Errorf("bad CSV header: %q", lines[0])
	}
	// One family row plus one ALL row per stack, plus the header.
	if len(lines) != 1+2*2 {
		t.Errorf("%d CSV lines, want 5", len(lines))
	}
	if !strings.Contains(b.String(), "rMM/riscv-curr,corr,18,") {
		t.Errorf("CSV missing the 18-bug corr row:\n%s", b.String())
	}
}

func TestTable7Rendering(t *testing.T) {
	var b strings.Builder
	Table7(&b, uspec.Curr)
	s := b.String()
	for _, want := range []string{"WR", "rWR", "rWM", "rMM", "nWR", "nMM", "A9like", "relaxed", "directory"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table7 missing %q:\n%s", want, s)
		}
	}
	// riscv-curr relaxes same-address R→R on 3 models (4 rows "ordered").
	if got := strings.Count(s, "ordered"); got != 4 {
		t.Errorf("riscv-curr table has %d ordered rows, want 4", got)
	}
	var o strings.Builder
	Table7(&o, uspec.Ours)
	if got := strings.Count(o.String(), "ordered"); got != 7 {
		t.Errorf("riscv-ours table must order same-address R→R on all 7 models, got %d", got)
	}
}

func TestMappingTableRendering(t *testing.T) {
	var b strings.Builder
	MappingTable(&b, compile.RISCVBaseIntuitive)
	s := b.String()
	// Table 2's intuitive column in the paper's notation.
	for _, want := range []string{"ld rlx", "ld; f[r,rw]", "f[rw,rw]; ld; f[rw,rw]", "f[rw,w]; st"} {
		if !strings.Contains(s, want) {
			t.Errorf("mapping table missing %q:\n%s", want, s)
		}
	}
	var r strings.Builder
	MappingTable(&r, compile.RISCVBaseRefined)
	if !strings.Contains(r.String(), "lwf; st") || !strings.Contains(r.String(), "hwf; st") {
		t.Errorf("refined table missing cumulative fences:\n%s", r.String())
	}
	var a strings.Builder
	MappingTable(&a, compile.RISCVAtomicsRefined)
	if !strings.Contains(a.String(), "AMO.aq.sc") || !strings.Contains(a.String(), "AMO.rl.sc") {
		t.Errorf("atomics table missing .sc AMOs:\n%s", a.String())
	}
}

func TestBar(t *testing.T) {
	if Bar(0, 10, 40) != "" {
		t.Error("zero bar should be empty")
	}
	if Bar(1, 1000, 40) == "" {
		t.Error("nonzero count must render at least one glyph")
	}
	if len(Bar(10, 10, 40)) != 40 {
		t.Errorf("full bar length %d, want 40", len(Bar(10, 10, 40)))
	}
	if Bar(5, 0, 40) != "" {
		t.Error("zero total should render nothing")
	}
}
