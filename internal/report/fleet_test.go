package report

import (
	"strings"
	"testing"

	"tricheck/api"
)

// SummaryCSV must emit the same schema as CSV so fleet output diffs
// byte-for-byte against a single node's for identical tallies.
func TestSummaryCSVMatchesCSVSchema(t *testing.T) {
	sum := &api.SummaryRecord{
		Type: "summary",
		Done: 4, Total: 4, Bugs: 1, Strict: 1, Equivalent: 2,
		Stacks: []api.StackSummary{
			{
				Stack: "rMM/riscv-curr",
				Tally: api.TallyJSON{Bugs: 1, Strict: 1, Equivalent: 2, Total: 4, SpecifiedBugs: 1},
				Families: []api.FamilyTally{
					{Family: "corr", TallyJSON: api.TallyJSON{Bugs: 1, Total: 2, Equivalent: 1, SpecifiedBugs: 1}},
					{Family: "mp", TallyJSON: api.TallyJSON{Strict: 1, Equivalent: 1, Total: 2}},
				},
			},
		},
	}
	var b strings.Builder
	SummaryCSV(&b, sum)
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if lines[0] != "stack,family,bugs,strict,equivalent,total,specified_bugs" {
		t.Errorf("bad CSV header: %q", lines[0])
	}
	if len(lines) != 4 {
		t.Fatalf("%d CSV lines, want 4:\n%s", len(lines), b.String())
	}
	if lines[1] != "rMM/riscv-curr,corr,1,0,1,2,1" {
		t.Errorf("bad family row: %q", lines[1])
	}
	if lines[3] != "rMM/riscv-curr,ALL,1,1,2,4,1" {
		t.Errorf("bad ALL row: %q", lines[3])
	}
}

func TestSummaryTableAndFleetStatsRender(t *testing.T) {
	sum := &api.SummaryRecord{
		Done: 2, Total: 2, Bugs: 1, Equivalent: 1,
		ElapsedSeconds: 0.5, TestsPerSecond: 4,
		Stacks: []api.StackSummary{{Stack: "WR/riscv-curr", Tally: api.TallyJSON{Bugs: 1, Equivalent: 1, Total: 2}}},
		Fleet: &api.FleetSummary{
			Workers: []api.WorkerSummary{
				{Worker: "http://w1", Dispatched: 2, Completed: 1},
				{Worker: "http://w2", Dispatched: 1, Completed: 1, Failed: true},
			},
			Hedges: 1,
		},
	}
	var b strings.Builder
	SummaryTable(&b, sum)
	out := b.String()
	for _, want := range []string{"WR/riscv-curr", "ALL", "1 hedges", "http://w2", "FAILED mid-sweep"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary table missing %q:\n%s", want, out)
		}
	}

	var s strings.Builder
	FleetStats(&s, &api.FleetStatsJSON{
		Workers: 2, Healthy: 1, Sweeps: 3, Hedges: 1,
		PerWorker: []api.WorkerStatsJSON{
			{URL: "http://w1", Healthy: true, Dispatched: 10, Completed: 10},
			{URL: "http://w2", Healthy: false, Hedged: 1},
		},
	})
	out = s.String()
	for _, want := range []string{"1/2 workers healthy", "http://w1", "healthy", "DOWN"} {
		if !strings.Contains(out, want) {
			t.Errorf("fleet stats missing %q:\n%s", want, out)
		}
	}
}
