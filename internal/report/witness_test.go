package report

import (
	"strings"
	"testing"

	"tricheck/internal/c11"
	"tricheck/internal/compile"
	"tricheck/internal/litmus"
	"tricheck/internal/mem"
	"tricheck/internal/uspec"
)

func wrcProgram(t *testing.T) (*litmus.Test, *compile.Mapping) {
	t.Helper()
	return litmus.WRC.Instantiate([]c11.Order{c11.Rlx, c11.Rlx, c11.Rel, c11.Acq, c11.Rlx}),
		compile.RISCVBaseIntuitive
}

func TestWitnessObservable(t *testing.T) {
	tst, m := wrcProgram(t)
	prog, err := compile.Compile(m, tst.Prog)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Witness(uspec.NMM(uspec.Curr), prog, tst.Specified)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"OBSERVABLE", "timeline", "Perform", "Visible", "lw r0, (x)"} {
		if !strings.Contains(out, want) {
			t.Errorf("witness missing %q:\n%s", want, out)
		}
	}
}

func TestWitnessForbidden(t *testing.T) {
	tst, m := wrcProgram(t)
	prog, err := compile.Compile(m, tst.Prog)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Witness(uspec.WR(uspec.Curr), prog, tst.Specified)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "FORBIDDEN") || !strings.Contains(out, "cycle") {
		t.Errorf("forbidden witness malformed:\n%s", out)
	}
}

func TestWitnessNonCandidate(t *testing.T) {
	tst, m := wrcProgram(t)
	prog, err := compile.Compile(m, tst.Prog)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Witness(uspec.NMM(uspec.Curr), prog, mem.Outcome("r0=99"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "not a candidate") {
		t.Errorf("non-candidate witness: %s", out)
	}
	if _, err := WitnessGraphDOT(uspec.NMM(uspec.Curr), prog, mem.Outcome("r0=99")); err == nil {
		t.Error("DOT for non-candidate should error")
	}
}

func TestWitnessGraphDOT(t *testing.T) {
	tst, m := wrcProgram(t)
	prog, err := compile.Compile(m, tst.Prog)
	if err != nil {
		t.Fatal(err)
	}
	dot, err := WitnessGraphDOT(uspec.NMM(uspec.Curr), prog, tst.Specified)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dot, "digraph") || !strings.Contains(dot, "rf") {
		t.Errorf("DOT output malformed:\n%s", dot)
	}
}

func TestExplainVerdictDiff(t *testing.T) {
	allowed := map[mem.Outcome]bool{"a=0": true}
	observable := map[mem.Outcome]bool{"a=0": true, "a=1": true}
	all := map[mem.Outcome]bool{"a=0": true, "a=1": true, "a=2": true}
	s := ExplainVerdictDiff(allowed, observable, all)
	if !strings.Contains(s, "BUG") {
		t.Errorf("missing BUG row:\n%s", s)
	}
	if !strings.Contains(s, "forbidden and unobservable") {
		t.Errorf("missing ok row:\n%s", s)
	}
	lines := strings.Split(s, "\n")
	if len(lines) != 3 {
		t.Errorf("%d rows, want 3", len(lines))
	}
	// Sorted deterministically.
	if !strings.Contains(lines[0], "a=0") {
		t.Errorf("rows unsorted:\n%s", s)
	}
}
