package litmus

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"tricheck/internal/c11"
	"tricheck/internal/mem"
)

// This file implements a line-oriented textual litmus format so users can
// author C11 tests outside Go (cmd/herdc11 -file reads it):
//
//	test my-wrc
//	locations x y
//	thread 0
//	  st x 1 rlx
//	thread 1
//	  ld r0 x rlx
//	  st y 1 rel
//	thread 2
//	  ld r1 y acq
//	  ld r2 [r1] rlx      # address dependency on r1
//	  st y r1 rlx after r1  # data dependency + control dependency on r1
//	  fence sc
//	observe 1 r0 a
//	observe 2 r1 b
//	interesting a=1; b=0
//
// Registers are symbolic per-thread names; `[reg]` addresses create
// address dependencies, register value operands create data dependencies,
// and `after reg...` suffixes add control dependencies. Lines starting
// with '#' are comments.

// ParseError reports a syntax problem with its line number.
type ParseError struct {
	Line int
	Msg  string
}

// Error implements the error interface.
func (e *ParseError) Error() string { return fmt.Sprintf("litmus: line %d: %s", e.Line, e.Msg) }

type parser struct {
	name      string
	locs      []string
	locOf     map[string]int
	thread    int
	started   bool
	prog      *c11.Program
	regOf     map[int]map[string]int // thread → name → reg index
	loadIdx   map[int]map[string]int // thread → name → op index of defining load
	observers []mem.Observer
	obsLabels []string
	interest  mem.Outcome
}

// Parse reads one test in the textual litmus format.
func Parse(r io.Reader) (*Test, error) {
	p := &parser{
		locOf:   map[string]int{},
		thread:  -1,
		regOf:   map[int]map[string]int{},
		loadIdx: map[int]map[string]int{},
	}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		if err := p.line(line); err != nil {
			return nil, &ParseError{Line: lineNo, Msg: err.Error()}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if p.prog == nil {
		return nil, &ParseError{Line: lineNo, Msg: "no thread bodies"}
	}
	for i, o := range p.observers {
		p.prog.Observe(o.Thread, o.Reg, p.obsLabels[i])
	}
	name := p.name
	if name == "" {
		name = "unnamed"
	}
	shape := &Shape{
		Name:        name,
		Description: "parsed from textual litmus format",
		Specified:   p.interest,
	}
	return &Test{Name: name, Shape: shape, Prog: p.prog, Specified: p.interest}, nil
}

// ParseString parses a test from a string.
func ParseString(s string) (*Test, error) { return Parse(strings.NewReader(s)) }

func (p *parser) line(line string) error {
	f := strings.Fields(line)
	switch f[0] {
	case "test":
		if len(f) != 2 {
			return fmt.Errorf("usage: test <name>")
		}
		p.name = f[1]
	case "locations":
		if p.started {
			return fmt.Errorf("locations must precede thread bodies")
		}
		for _, l := range f[1:] {
			if _, dup := p.locOf[l]; dup {
				return fmt.Errorf("duplicate location %q", l)
			}
			p.locOf[l] = len(p.locs)
			p.locs = append(p.locs, l)
		}
	case "thread":
		if len(f) != 2 {
			return fmt.Errorf("usage: thread <index>")
		}
		n, err := strconv.Atoi(f[1])
		if err != nil || n < 0 {
			return fmt.Errorf("bad thread index %q", f[1])
		}
		p.ensureProg()
		p.thread = n
	case "ld", "st", "fence", "rmw":
		if p.thread < 0 {
			return fmt.Errorf("%s before any thread declaration", f[0])
		}
		p.ensureProg()
		return p.op(f)
	case "observe":
		if len(f) != 4 {
			return fmt.Errorf("usage: observe <thread> <reg> <label>")
		}
		t, err := strconv.Atoi(f[1])
		if err != nil {
			return fmt.Errorf("bad thread %q", f[1])
		}
		reg, ok := p.regOf[t][f[2]]
		if !ok {
			return fmt.Errorf("register %q not defined on thread %d", f[2], t)
		}
		p.observers = append(p.observers, mem.Observer{Thread: t, Reg: reg})
		p.obsLabels = append(p.obsLabels, f[3])
	case "interesting":
		p.interest = mem.Outcome(strings.TrimSpace(strings.TrimPrefix(line, "interesting")))
	default:
		return fmt.Errorf("unknown directive %q", f[0])
	}
	return nil
}

func (p *parser) ensureProg() {
	if p.prog == nil {
		p.prog = c11.New(len(p.locs), p.locs...)
		p.started = true
	}
}

func (p *parser) order(s string) (c11.Order, error) {
	switch s {
	case "na":
		return c11.NA, nil
	case "rlx":
		return c11.Rlx, nil
	case "acq":
		return c11.Acq, nil
	case "rel":
		return c11.Rel, nil
	case "acq_rel":
		return c11.AcqRel, nil
	case "sc":
		return c11.SC, nil
	}
	return 0, fmt.Errorf("unknown memory order %q", s)
}

// addr parses a location name or "[reg]" address-dependency operand.
func (p *parser) addr(s string) (mem.Operand, error) {
	if strings.HasPrefix(s, "[") && strings.HasSuffix(s, "]") {
		reg, ok := p.regOf[p.thread][s[1:len(s)-1]]
		if !ok {
			return mem.Operand{}, fmt.Errorf("register %q not defined", s[1:len(s)-1])
		}
		return mem.FromReg(reg), nil
	}
	loc, ok := p.locOf[s]
	if !ok {
		return mem.Operand{}, fmt.Errorf("unknown location %q", s)
	}
	return mem.Const(int64(loc)), nil
}

// value parses an integer constant, a location name (its id, for storing
// pointers) or a register name (a data dependency).
func (p *parser) value(s string) (mem.Operand, error) {
	if v, err := strconv.ParseInt(s, 10, 64); err == nil {
		return mem.Const(v), nil
	}
	if loc, ok := p.locOf[s]; ok {
		return mem.Const(int64(loc)), nil
	}
	if reg, ok := p.regOf[p.thread][s]; ok {
		return mem.FromReg(reg), nil
	}
	return mem.Operand{}, fmt.Errorf("cannot parse value %q", s)
}

// ctrlDeps parses a trailing "after r1 r2 ..." clause.
func (p *parser) ctrlDeps(f []string) ([]string, []int, error) {
	for i, tok := range f {
		if tok == "after" {
			var deps []int
			for _, r := range f[i+1:] {
				idx, ok := p.loadIdx[p.thread][r]
				if !ok {
					return nil, nil, fmt.Errorf("control dependency on undefined register %q", r)
				}
				deps = append(deps, idx)
			}
			if len(deps) == 0 {
				return nil, nil, fmt.Errorf("empty after clause")
			}
			return f[:i], deps, nil
		}
	}
	return f, nil, nil
}

func (p *parser) defineReg(name string, opIdx int) int {
	if p.regOf[p.thread] == nil {
		p.regOf[p.thread] = map[string]int{}
		p.loadIdx[p.thread] = map[string]int{}
	}
	reg, ok := p.regOf[p.thread][name]
	if !ok {
		reg = len(p.regOf[p.thread])
		p.regOf[p.thread][name] = reg
	}
	p.loadIdx[p.thread][name] = opIdx
	return reg
}

func (p *parser) op(f []string) error {
	f, ctrl, err := p.ctrlDeps(f)
	if err != nil {
		return err
	}
	nOps := 0
	if p.thread < len(p.prog.Ops) {
		nOps = len(p.prog.Ops[p.thread])
	}
	switch f[0] {
	case "ld":
		if len(f) != 4 {
			return fmt.Errorf("usage: ld <reg> <loc|[reg]> <order>")
		}
		addr, err := p.addr(f[2])
		if err != nil {
			return err
		}
		ord, err := p.order(f[3])
		if err != nil {
			return err
		}
		reg := p.defineReg(f[1], nOps)
		p.prog.LoadDep(p.thread, ord, addr, reg, ctrl)
	case "st":
		if len(f) != 4 {
			return fmt.Errorf("usage: st <loc|[reg]> <value|reg> <order>")
		}
		addr, err := p.addr(f[1])
		if err != nil {
			return err
		}
		val, err := p.value(f[2])
		if err != nil {
			return err
		}
		ord, err := p.order(f[3])
		if err != nil {
			return err
		}
		p.prog.StoreDep(p.thread, ord, addr, val, ctrl)
	case "rmw":
		if len(f) != 6 {
			return fmt.Errorf("usage: rmw <reg> <loc> <add|swap> <value> <order>")
		}
		addr, err := p.addr(f[2])
		if err != nil {
			return err
		}
		var fn mem.RMWKind
		switch f[3] {
		case "add":
			fn = mem.RMWAdd
		case "swap":
			fn = mem.RMWSwap
		default:
			return fmt.Errorf("unknown rmw function %q", f[3])
		}
		val, err := p.value(f[4])
		if err != nil {
			return err
		}
		ord, err := p.order(f[5])
		if err != nil {
			return err
		}
		reg := p.defineReg(f[1], nOps)
		p.prog.RMW(p.thread, ord, addr, val, reg, fn)
	case "fence":
		if len(f) != 2 {
			return fmt.Errorf("usage: fence <order>")
		}
		ord, err := p.order(f[1])
		if err != nil {
			return err
		}
		if ctrl != nil {
			return fmt.Errorf("fences cannot carry control dependencies")
		}
		p.prog.FenceOp(p.thread, ord)
	}
	return nil
}

// Format renders a test in the textual litmus format (the inverse of
// Parse, modulo register naming: registers render as r<index>).
func Format(w io.Writer, t *Test) error {
	mp := t.Prog.Mem()
	if _, err := fmt.Fprintf(w, "test %s\n", sanitizeName(t.Name)); err != nil {
		return err
	}
	fmt.Fprintf(w, "locations %s\n", strings.Join(mp.LocNames, " "))
	for th, ops := range t.Prog.Ops {
		fmt.Fprintf(w, "thread %d\n", th)
		for _, op := range ops {
			fmt.Fprintf(w, "  %s\n", formatOp(mp, ops, op))
		}
	}
	obs := append([]mem.Observer(nil), mp.Observers...)
	sort.Slice(obs, func(i, j int) bool {
		if obs[i].Thread != obs[j].Thread {
			return obs[i].Thread < obs[j].Thread
		}
		return obs[i].Reg < obs[j].Reg
	})
	for _, o := range obs {
		fmt.Fprintf(w, "observe %d r%d %s\n", o.Thread, o.Reg, o.Label)
	}
	if t.Specified != "" {
		fmt.Fprintf(w, "interesting %s\n", t.Specified)
	}
	return nil
}

func sanitizeName(s string) string {
	return strings.NewReplacer("[", "-", "]", "", ",", ".", " ", "").Replace(s)
}

func formatOp(mp *mem.Program, ops []c11.Op, op c11.Op) string {
	addr := func(o mem.Operand) string {
		if o.Kind == mem.OpReg {
			return fmt.Sprintf("[r%d]", o.Reg)
		}
		return mp.LocName(mem.Loc(o.Const))
	}
	val := func(o mem.Operand) string {
		if o.Kind == mem.OpReg {
			return fmt.Sprintf("r%d", o.Reg)
		}
		return strconv.FormatInt(o.Const, 10)
	}
	suffix := ""
	if len(op.CtrlDepOn) > 0 {
		regs := make([]string, len(op.CtrlDepOn))
		for i, d := range op.CtrlDepOn {
			regs[i] = fmt.Sprintf("r%d", ops[d].Dst)
		}
		suffix = " after " + strings.Join(regs, " ")
	}
	switch op.Kind {
	case c11.OpLoad:
		return fmt.Sprintf("ld r%d %s %s%s", op.Dst, addr(op.Addr), op.Ord, suffix)
	case c11.OpStore:
		return fmt.Sprintf("st %s %s %s%s", addr(op.Addr), val(op.Data), op.Ord, suffix)
	case c11.OpRMW:
		fn := "add"
		if op.RMWOp == mem.RMWSwap {
			fn = "swap"
		}
		return fmt.Sprintf("rmw r%d %s %s %s %s%s", op.Dst, addr(op.Addr), fn, val(op.Data), op.Ord, suffix)
	case c11.OpFence:
		return fmt.Sprintf("fence %s", op.Ord)
	}
	return "?"
}
