// Package litmus defines the litmus-test shapes used throughout the paper
// and the template generator of Figure 5: each shape is a template with
// placeholder memory orders, and Generate expands it into every permutation
// of C11 memory-order primitives (loads range over {rlx, acq, sc}; stores
// over {rlx, rel, sc}).
//
// The paper's evaluation suite (Section 6) consists of seven shapes whose
// expansions total exactly 1,701 tests:
//
//	mp 81 + sb 81 + wrc 243 + rwc 243 + iriw 729 + corr 81 + co-rsdwi 243
//
// Additional shapes (lb, isa2, mp-addr-dep) are provided for wider coverage
// and the Figure 13 discussion; they are excluded from PaperSuite.
package litmus

import (
	"fmt"
	"strings"
	"sync"

	"tricheck/internal/c11"
	"tricheck/internal/mem"
)

// SlotKind says whether a template placeholder is a load or a store, which
// determines its memory-order choices.
type SlotKind uint8

const (
	// LoadSlot placeholders range over {rlx, acq, sc}.
	LoadSlot SlotKind = iota
	// StoreSlot placeholders range over {rlx, rel, sc}.
	StoreSlot
)

// Choices returns the memory orders a slot of this kind ranges over.
func (k SlotKind) Choices() []c11.Order {
	switch k {
	case StoreSlot:
		return []c11.Order{c11.Rlx, c11.Rel, c11.SC}
	case FenceRelSlot, FenceAcqSlot:
		return fenceChoices(k)
	default:
		return []c11.Order{c11.Rlx, c11.Acq, c11.SC}
	}
}

// Shape is a litmus-test template (paper Figure 5): a program skeleton with
// memory-order placeholders.
type Shape struct {
	// Name is the shape's lower-case conventional name ("wrc", "iriw", ...).
	Name string
	// Description says what the shape exercises.
	Description string
	// Paper marks membership in the paper's 1,701-test evaluation suite.
	Paper bool
	// Slots lists the placeholders in the order Build consumes them.
	Slots []SlotKind
	// Build instantiates the shape with concrete memory orders.
	Build func(orders []c11.Order) *c11.Program
	// Specified is the shape's "interesting" final state — the outcome the
	// paper's figures assert about (forbidden or allowed per variant).
	Specified mem.Outcome
	// SpecifiedNote explains the interesting outcome.
	SpecifiedNote string
}

// Variants returns the number of memory-order permutations of the shape.
func (s *Shape) Variants() int {
	n := 1
	for range s.Slots {
		n *= 3
	}
	return n
}

// Test is one concrete expansion of a shape.
type Test struct {
	// Name is "<shape>[o1,o2,...]" with the slot orders.
	Name string
	// Shape points back at the template.
	Shape *Shape
	// Orders holds the slot assignment.
	Orders []c11.Order
	// Prog is the instantiated C11 program.
	Prog *c11.Program
	// Specified is the shape's interesting outcome.
	Specified mem.Outcome

	// fp caches the canonical fingerprint; the program is immutable
	// once the test is built.
	fpOnce sync.Once
	fp     string
}

// Generate expands the template into all memory-order permutations.
func (s *Shape) Generate() []*Test {
	var out []*Test
	orders := make([]c11.Order, len(s.Slots))
	var rec func(i int)
	rec = func(i int) {
		if i == len(s.Slots) {
			o := append([]c11.Order(nil), orders...)
			out = append(out, s.Instantiate(o))
			return
		}
		for _, ord := range s.Slots[i].Choices() {
			orders[i] = ord
			rec(i + 1)
		}
	}
	rec(0)
	return out
}

// Instantiate builds the single test with the given slot orders.
func (s *Shape) Instantiate(orders []c11.Order) *Test {
	if len(orders) != len(s.Slots) {
		panic(fmt.Sprintf("litmus: %s needs %d orders, got %d", s.Name, len(s.Slots), len(orders)))
	}
	names := make([]string, len(orders))
	for i, o := range orders {
		names[i] = o.String()
	}
	return &Test{
		Name:      fmt.Sprintf("%s[%s]", s.Name, strings.Join(names, ",")),
		Shape:     s,
		Orders:    orders,
		Prog:      s.Build(orders),
		Specified: s.Specified,
	}
}

var (
	locX = mem.Const(0)
	locY = mem.Const(1)
	one  = mem.Const(1)
	two  = mem.Const(2)
)

// MP is message passing: T0 publishes data x then flag y; T1 polls the flag
// then reads the data. Interesting outcome: flag seen, data stale.
var MP = &Shape{
	Name:        "mp",
	Description: "message passing: flag published after data",
	Paper:       true,
	Slots:       []SlotKind{StoreSlot, StoreSlot, LoadSlot, LoadSlot},
	Build: func(o []c11.Order) *c11.Program {
		p := c11.New(2, "x", "y")
		p.Store(0, o[0], locX, one)
		p.Store(0, o[1], locY, one)
		p.Load(1, o[2], locY, 0)
		p.Load(1, o[3], locX, 1)
		p.Observe(1, 0, "r0")
		p.Observe(1, 1, "r1")
		return p
	},
	Specified:     "r0=1; r1=0",
	SpecifiedNote: "flag observed but data stale",
}

// SB is store buffering (Dekker): both threads store then read the other's
// location. Interesting outcome: both loads miss both stores.
var SB = &Shape{
	Name:        "sb",
	Description: "store buffering / Dekker",
	Paper:       true,
	Slots:       []SlotKind{StoreSlot, LoadSlot, StoreSlot, LoadSlot},
	Build: func(o []c11.Order) *c11.Program {
		p := c11.New(2, "x", "y")
		p.Store(0, o[0], locX, one)
		p.Load(0, o[1], locY, 0)
		p.Store(1, o[2], locY, one)
		p.Load(1, o[3], locX, 1)
		p.Observe(0, 0, "r0")
		p.Observe(1, 1, "r1")
		return p
	},
	Specified:     "r0=0; r1=0",
	SpecifiedNote: "both stores buffered past both loads",
}

// WRC is write-to-read causality (paper Figure 3): T1 observes T0's write
// and publishes a flag; T2 acquires the flag but misses the write.
var WRC = &Shape{
	Name:        "wrc",
	Description: "write-to-read causality (Figure 3)",
	Paper:       true,
	Slots:       []SlotKind{StoreSlot, LoadSlot, StoreSlot, LoadSlot, LoadSlot},
	Build: func(o []c11.Order) *c11.Program {
		p := c11.New(2, "x", "y")
		p.Store(0, o[0], locX, one)
		p.Load(1, o[1], locX, 0)
		p.Store(1, o[2], locY, one)
		p.Load(2, o[3], locY, 1)
		p.Load(2, o[4], locX, 2)
		p.Observe(1, 0, "r0")
		p.Observe(2, 1, "r1")
		p.Observe(2, 2, "r2")
		return p
	},
	Specified:     "r0=1; r1=1; r2=0",
	SpecifiedNote: "causality chain broken: T2 sees flag but not the write it depends on",
}

// RWC is read-to-write causality: T1 sees T0's write to x but not T2's
// write to y, while T2 (after writing y) misses x.
var RWC = &Shape{
	Name:        "rwc",
	Description: "read-to-write causality",
	Paper:       true,
	Slots:       []SlotKind{StoreSlot, LoadSlot, LoadSlot, StoreSlot, LoadSlot},
	Build: func(o []c11.Order) *c11.Program {
		p := c11.New(2, "x", "y")
		p.Store(0, o[0], locX, one)
		p.Load(1, o[1], locX, 0)
		p.Load(1, o[2], locY, 1)
		p.Store(2, o[3], locY, one)
		p.Load(2, o[4], locX, 2)
		p.Observe(1, 0, "r0")
		p.Observe(1, 1, "r1")
		p.Observe(2, 2, "r2")
		return p
	},
	Specified:     "r0=1; r1=0; r2=0",
	SpecifiedNote: "T1 sees x but not y; T2 wrote y yet misses x",
}

// IRIW is independent reads of independent writes (paper Figure 4): two
// readers disagree on the order of two independent writes.
var IRIW = &Shape{
	Name:        "iriw",
	Description: "independent reads of independent writes (Figure 4)",
	Paper:       true,
	Slots:       []SlotKind{StoreSlot, StoreSlot, LoadSlot, LoadSlot, LoadSlot, LoadSlot},
	Build: func(o []c11.Order) *c11.Program {
		p := c11.New(2, "x", "y")
		p.Store(0, o[0], locX, one)
		p.Store(1, o[1], locY, one)
		p.Load(2, o[2], locX, 0)
		p.Load(2, o[3], locY, 1)
		p.Load(3, o[4], locY, 2)
		p.Load(3, o[5], locX, 3)
		p.Observe(2, 0, "r0")
		p.Observe(2, 1, "r1")
		p.Observe(3, 2, "r2")
		p.Observe(3, 3, "r3")
		return p
	},
	Specified:     "r0=1; r1=0; r2=1; r3=0",
	SpecifiedNote: "the two readers observe the writes in opposite orders",
}

// CoRR is coherence of same-address reads: one thread reads a location
// twice and must not observe a newer write before an older one. The paper
// does not print the shape; this reconstruction (two writes, two reads)
// matches its variant count (81) and buggy count (18) — see DESIGN.md §4.
var CoRR = &Shape{
	Name:        "corr",
	Description: "same-address read-read coherence (Section 5.1.3)",
	Paper:       true,
	Slots:       []SlotKind{StoreSlot, StoreSlot, LoadSlot, LoadSlot},
	Build: func(o []c11.Order) *c11.Program {
		p := c11.New(1, "x")
		p.Store(0, o[0], locX, one)
		p.Store(0, o[1], locX, two)
		p.Load(1, o[2], locX, 0)
		p.Load(1, o[3], locX, 1)
		p.Observe(1, 0, "r0")
		p.Observe(1, 1, "r1")
		return p
	},
	Specified:     "r0=2; r1=1",
	SpecifiedNote: "second read observes an older write than the first",
}

// CORSDWI extends CoRR with a delayed write to a second location between
// the two same-address writes (reconstructed; see DESIGN.md §4).
var CORSDWI = &Shape{
	Name:        "co-rsdwi",
	Description: "same-address coherence with a delayed interleaved write",
	Paper:       true,
	Slots:       []SlotKind{StoreSlot, StoreSlot, StoreSlot, LoadSlot, LoadSlot},
	Build: func(o []c11.Order) *c11.Program {
		p := c11.New(2, "x", "y")
		p.Store(0, o[0], locX, one)
		p.Store(0, o[1], locY, one)
		p.Store(0, o[2], locX, two)
		p.Load(1, o[3], locX, 0)
		p.Load(1, o[4], locX, 1)
		p.Observe(1, 0, "r0")
		p.Observe(1, 1, "r1")
		return p
	},
	Specified:     "r0=2; r1=1",
	SpecifiedNote: "second read observes an older write than the first",
}

// LB is load buffering: each thread loads one location then stores the
// other; both loads observing 1 requires reads to bypass program-order
// later stores. Extended suite only.
var LB = &Shape{
	Name:        "lb",
	Description: "load buffering (extended suite)",
	Paper:       false,
	Slots:       []SlotKind{LoadSlot, StoreSlot, LoadSlot, StoreSlot},
	Build: func(o []c11.Order) *c11.Program {
		p := c11.New(2, "x", "y")
		p.Load(0, o[0], locX, 0)
		p.Store(0, o[1], locY, one)
		p.Load(1, o[2], locY, 1)
		p.Store(1, o[3], locX, one)
		p.Observe(0, 0, "r0")
		p.Observe(1, 1, "r1")
		return p
	},
	Specified:     "r0=1; r1=1",
	SpecifiedNote: "both loads read the other thread's later store",
}

// ISA2 chains a release/acquire handoff across three threads.
var ISA2 = &Shape{
	Name:        "isa2",
	Description: "three-thread transitive handoff (extended suite)",
	Paper:       false,
	Slots:       []SlotKind{StoreSlot, StoreSlot, LoadSlot, StoreSlot, LoadSlot, LoadSlot},
	Build: func(o []c11.Order) *c11.Program {
		p := c11.New(3, "x", "y", "z")
		locZ := mem.Const(2)
		p.Store(0, o[0], locX, one)
		p.Store(0, o[1], locY, one)
		p.Load(1, o[2], locY, 0)
		p.Store(1, o[3], locZ, one)
		p.Load(2, o[4], locZ, 1)
		p.Load(2, o[5], locX, 2)
		p.Observe(1, 0, "r0")
		p.Observe(2, 1, "r1")
		p.Observe(2, 2, "r2")
		return p
	},
	Specified:     "r0=1; r1=1; r2=0",
	SpecifiedNote: "transitive chain broken at the last hop",
}

// MPAddrDep is the paper's Figure 13: the second location carries the
// address of the first, and T1's second load is address-dependent on its
// first. Location 0 is a dummy so that "address of x" (1) differs from the
// initial value 0.
var MPAddrDep = &Shape{
	Name:        "mp-addr-dep",
	Description: "message passing with an address dependency (Figure 13)",
	Paper:       false,
	Slots:       []SlotKind{StoreSlot, StoreSlot, LoadSlot, LoadSlot},
	Build: func(o []c11.Order) *c11.Program {
		p := c11.New(3, "dummy", "x", "y")
		x, y := mem.Const(1), mem.Const(2)
		p.Store(0, o[0], x, one)
		p.Store(0, o[1], y, one) // stores &x == location id 1
		p.Load(1, o[2], y, 0)
		p.Load(1, o[3], mem.FromReg(0), 1) // address dependency
		p.Observe(1, 0, "r0")
		p.Observe(1, 1, "r1")
		return p
	},
	Specified:     "r0=1; r1=0",
	SpecifiedNote: "pointer observed but pointee stale, despite the address dependency",
}

// PaperShapes returns the seven shapes of the paper's 1,701-test suite in
// presentation order.
func PaperShapes() []*Shape {
	return []*Shape{MP, SB, WRC, RWC, IRIW, CoRR, CORSDWI}
}

// ExtendedShapes returns the additional shapes outside the paper suite:
// lb/isa2/mp-addr-dep, the fence-mixing shapes of fences.go, and the
// coherence-order shapes of coherence.go.
func ExtendedShapes() []*Shape {
	out := append([]*Shape{LB, ISA2, MPAddrDep}, FenceShapes()...)
	return append(out, CoherenceShapes()...)
}

// AllShapes returns every shape, paper suite first.
func AllShapes() []*Shape {
	return append(PaperShapes(), ExtendedShapes()...)
}

// ShapeByName finds a shape by name, or nil.
func ShapeByName(name string) *Shape {
	for _, s := range AllShapes() {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// PaperSuite generates the paper's full 1,701-test evaluation suite.
func PaperSuite() []*Test {
	var out []*Test
	for _, s := range PaperShapes() {
		out = append(out, s.Generate()...)
	}
	return out
}

// ParseVariantName parses a test name of the form "shape[o1,o2,...]"
// (litgen/herdc11/uspeccheck syntax) and instantiates it.
func ParseVariantName(name string) (*Test, error) {
	open := strings.IndexByte(name, '[')
	if open < 0 || !strings.HasSuffix(name, "]") {
		return nil, fmt.Errorf("litmus: malformed test name %q (want shape[o1,o2,...])", name)
	}
	s := ShapeByName(name[:open])
	if s == nil {
		return nil, fmt.Errorf("litmus: unknown shape %q", name[:open])
	}
	parts := strings.Split(name[open+1:len(name)-1], ",")
	orders := make([]c11.Order, len(parts))
	for i, p := range parts {
		switch strings.TrimSpace(p) {
		case "na":
			orders[i] = c11.NA
		case "rlx":
			orders[i] = c11.Rlx
		case "acq":
			orders[i] = c11.Acq
		case "rel":
			orders[i] = c11.Rel
		case "acq_rel":
			orders[i] = c11.AcqRel
		case "sc":
			orders[i] = c11.SC
		default:
			return nil, fmt.Errorf("litmus: unknown memory order %q", p)
		}
	}
	if len(orders) != len(s.Slots) {
		return nil, fmt.Errorf("litmus: %s needs %d orders, got %d", s.Name, len(s.Slots), len(orders))
	}
	return s.Instantiate(orders), nil
}
