package litmus

import (
	"tricheck/internal/c11"
)

// Coherence-order shapes (extended suite): their interesting outcomes
// constrain the final memory state — i.e. the position of writes in the
// coherence order — rather than loaded values, exercising the
// memory-observer machinery and the ws-edge axioms.

// S is the classic "S" shape: T0 writes x=2 then publishes y; T1 sees the
// flag and writes x=1. The interesting outcome has the flag observed yet
// x=2 final — i.e. T1's write ordered before T0's earlier write, against
// the synchronization.
var S = &Shape{
	Name:        "s",
	Description: "write-after-observed-write coherence (extended suite)",
	Paper:       false,
	Slots:       []SlotKind{StoreSlot, StoreSlot, LoadSlot, StoreSlot},
	Build: func(o []c11.Order) *c11.Program {
		p := c11.New(2, "x", "y")
		p.Store(0, o[0], locX, two)
		p.Store(0, o[1], locY, one)
		p.Load(1, o[2], locY, 0)
		p.Store(1, o[3], locX, one)
		p.Observe(1, 0, "r0")
		p.ObserveMem(0, "x")
		return p
	},
	Specified:     "r0=1; x=2",
	SpecifiedNote: "flag observed, yet the observing thread's write lost the coherence race",
}

// R mixes a write race with an observation: T0 writes x then y; T1
// overwrites y and reads x. Interesting: T1's y-write wins coherence yet
// its x-read misses T0's write.
var R = &Shape{
	Name:        "r",
	Description: "write race plus stale read (extended suite)",
	Paper:       false,
	Slots:       []SlotKind{StoreSlot, StoreSlot, StoreSlot, LoadSlot},
	Build: func(o []c11.Order) *c11.Program {
		p := c11.New(2, "x", "y")
		p.Store(0, o[0], locX, one)
		p.Store(0, o[1], locY, one)
		p.Store(1, o[2], locY, two)
		p.Load(1, o[3], locX, 0)
		p.Observe(1, 0, "r0")
		p.ObserveMem(1, "y")
		return p
	},
	Specified:     "r0=0; y=2",
	SpecifiedNote: "T1 wins the y race but misses T0's earlier write to x",
}

// TwoPlusTwoW is 2+2W: both threads write both locations in opposite
// orders; the interesting outcome has each thread's FIRST write win, i.e.
// both coherence orders contradict some interleaving.
var TwoPlusTwoW = &Shape{
	Name:        "2+2w",
	Description: "two threads, two writes each, crossed coherence orders (extended suite)",
	Paper:       false,
	Slots:       []SlotKind{StoreSlot, StoreSlot, StoreSlot, StoreSlot},
	Build: func(o []c11.Order) *c11.Program {
		p := c11.New(2, "x", "y")
		p.Store(0, o[0], locX, one)
		p.Store(0, o[1], locY, two)
		p.Store(1, o[2], locY, one)
		p.Store(1, o[3], locX, two)
		p.ObserveMem(0, "x")
		p.ObserveMem(1, "y")
		return p
	},
	Specified:     "x=1; y=1",
	SpecifiedNote: "each thread's first write ends up coherence-last",
}

// CoherenceShapes returns the final-memory-observing shapes.
func CoherenceShapes() []*Shape {
	return []*Shape{S, R, TwoPlusTwoW}
}
