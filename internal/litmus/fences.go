package litmus

import (
	"tricheck/internal/c11"
)

// Fence-mixing shapes. The paper explicitly did not evaluate litmus tests
// that mix C11 atomic_thread_fence with atomic accesses ("Since we did not
// evaluate the mixing of C11 fences and atomic instructions in this work,
// we did not observe this bug", Section 7 — referring to the leading-sync
// counterexample found by concurrent work). These shapes extend the suite
// in exactly that direction: accesses stay relaxed and ordering comes from
// fence placeholders.
//
// Fence slots range over release-side orders {rel, acq_rel, sc} or
// acquire-side orders {acq, acq_rel, sc} — a relaxed fence would be a
// no-op, so it is excluded to keep variants meaningful.

// FenceRelSlot placeholders range over {rel, acq_rel, sc}.
const FenceRelSlot SlotKind = 2

// FenceAcqSlot placeholders range over {acq, acq_rel, sc}.
const FenceAcqSlot SlotKind = 3

func fenceChoices(k SlotKind) []c11.Order {
	switch k {
	case FenceRelSlot:
		return []c11.Order{c11.Rel, c11.AcqRel, c11.SC}
	case FenceAcqSlot:
		return []c11.Order{c11.Acq, c11.AcqRel, c11.SC}
	}
	return nil
}

// MPFences is message passing ordered purely by fences: relaxed accesses
// with a release-side fence between the stores and an acquire-side fence
// between the loads. Every variant forbids the stale read (C++11 29.8p2).
var MPFences = &Shape{
	Name:        "mp+fences",
	Description: "message passing through atomic_thread_fence (extended suite)",
	Paper:       false,
	Slots:       []SlotKind{FenceRelSlot, FenceAcqSlot},
	Build: func(o []c11.Order) *c11.Program {
		p := c11.New(2, "x", "y")
		p.Store(0, c11.Rlx, locX, one)
		p.FenceOp(0, o[0])
		p.Store(0, c11.Rlx, locY, one)
		p.Load(1, c11.Rlx, locY, 0)
		p.FenceOp(1, o[1])
		p.Load(1, c11.Rlx, locX, 1)
		p.Observe(1, 0, "r0")
		p.Observe(1, 1, "r1")
		return p
	},
	Specified:     "r0=1; r1=0",
	SpecifiedNote: "flag observed but data stale despite the fences",
}

// SBFences is store buffering with a fence between each thread's store and
// load. Only SC fences on both sides forbid the classic outcome
// (C++11 [atomics.order] p6).
var SBFences = &Shape{
	Name:        "sb+fences",
	Description: "store buffering through atomic_thread_fence (extended suite)",
	Paper:       false,
	Slots:       []SlotKind{FenceRelSlot, FenceRelSlot},
	Build: func(o []c11.Order) *c11.Program {
		p := c11.New(2, "x", "y")
		p.Store(0, c11.Rlx, locX, one)
		p.FenceOp(0, o[0])
		p.Load(0, c11.Rlx, locY, 0)
		p.Store(1, c11.Rlx, locY, one)
		p.FenceOp(1, o[1])
		p.Load(1, c11.Rlx, locX, 1)
		p.Observe(0, 0, "r0")
		p.Observe(1, 1, "r1")
		return p
	},
	Specified:     "r0=0; r1=0",
	SpecifiedNote: "both loads miss both stores despite the fences",
}

// WRCFences is WRC with fence-based synchronization on the middle and
// reading threads.
var WRCFences = &Shape{
	Name:        "wrc+fences",
	Description: "write-to-read causality through fences (extended suite)",
	Paper:       false,
	Slots:       []SlotKind{FenceRelSlot, FenceAcqSlot},
	Build: func(o []c11.Order) *c11.Program {
		p := c11.New(2, "x", "y")
		p.Store(0, c11.Rlx, locX, one)
		p.Load(1, c11.Rlx, locX, 0)
		p.FenceOp(1, o[0])
		p.Store(1, c11.Rlx, locY, one)
		p.Load(2, c11.Rlx, locY, 1)
		p.FenceOp(2, o[1])
		p.Load(2, c11.Rlx, locX, 2)
		p.Observe(1, 0, "r0")
		p.Observe(2, 1, "r1")
		p.Observe(2, 2, "r2")
		return p
	},
	Specified:     "r0=1; r1=1; r2=0",
	SpecifiedNote: "causality chain broken despite the fences",
}

// IRIWFences is IRIW with an SC-side fence between each reader's loads —
// the shape whose leading-sync subtleties concurrent work (reference [27])
// explored.
var IRIWFences = &Shape{
	Name:        "iriw+fences",
	Description: "IRIW with fences between the reads (extended suite)",
	Paper:       false,
	Slots:       []SlotKind{FenceAcqSlot, FenceAcqSlot},
	Build: func(o []c11.Order) *c11.Program {
		p := c11.New(2, "x", "y")
		p.Store(0, c11.Rlx, locX, one)
		p.Store(1, c11.Rlx, locY, one)
		p.Load(2, c11.Rlx, locX, 0)
		p.FenceOp(2, o[0])
		p.Load(2, c11.Rlx, locY, 1)
		p.Load(3, c11.Rlx, locY, 2)
		p.FenceOp(3, o[1])
		p.Load(3, c11.Rlx, locX, 3)
		p.Observe(2, 0, "r0")
		p.Observe(2, 1, "r1")
		p.Observe(3, 2, "r2")
		p.Observe(3, 3, "r3")
		return p
	},
	Specified:     "r0=1; r1=0; r2=1; r3=0",
	SpecifiedNote: "readers disagree on the write order despite the fences",
}

// FenceShapes returns the fence-mixing extended shapes.
func FenceShapes() []*Shape {
	return []*Shape{MPFences, SBFences, WRCFences, IRIWFences}
}
