package litmus

import (
	"testing"

	"tricheck/internal/c11"
	"tricheck/internal/mem"
)

// TestSShapeC11Verdicts: the S outcome is forbidden exactly when the flag
// synchronizes (release store to y read by an acquire load): the observing
// thread's write to x then happens-after T0's, forcing coherence order.
func TestSShapeC11Verdicts(t *testing.T) {
	forbidden := 0
	for _, tst := range S.Generate() {
		res, err := c11.Evaluate(tst.Prog)
		if err != nil {
			t.Fatalf("%s: %v", tst.Name, err)
		}
		if !res.All[tst.Specified] {
			t.Fatalf("%s: specified outcome not a candidate", tst.Name)
		}
		if !res.Allowed[tst.Specified] {
			forbidden++
			if !(tst.Orders[1].IsRelease() && tst.Orders[2].IsAcquire()) {
				t.Errorf("%s forbidden without a release/acquire pair", tst.Name)
			}
		}
	}
	// 2 release orders × 2 acquire orders × 3 × 3 free slots.
	if forbidden != 36 {
		t.Errorf("forbidden S variants = %d, want 36", forbidden)
	}
}

// TestRShapeAllSCForbidden: the R outcome needs SC on the racing writes
// and the read to be forbidden.
func TestRShapeAllSCForbidden(t *testing.T) {
	all := R.Instantiate([]c11.Order{c11.SC, c11.SC, c11.SC, c11.SC})
	res, err := c11.Evaluate(all.Prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.Allowed[all.Specified] {
		t.Error("all-SC R outcome must be forbidden (no consistent S order)")
	}
	rlx := R.Instantiate([]c11.Order{c11.Rlx, c11.Rlx, c11.Rlx, c11.Rlx})
	res2, err := c11.Evaluate(rlx.Prog)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Allowed[rlx.Specified] {
		t.Error("relaxed R outcome must be allowed")
	}
}

// TestTwoPlusTwoWRelaxedAllowed: C11 allows the crossed coherence orders
// for relaxed stores (coherence is per-location), and forbids them when
// both threads use SC stores (the total order would need a cycle).
func TestTwoPlusTwoWRelaxedAllowed(t *testing.T) {
	rlx := TwoPlusTwoW.Instantiate([]c11.Order{c11.Rlx, c11.Rlx, c11.Rlx, c11.Rlx})
	res, err := c11.Evaluate(rlx.Prog)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Allowed[rlx.Specified] {
		t.Error("relaxed 2+2W must be allowed by C11")
	}
	sc := TwoPlusTwoW.Instantiate([]c11.Order{c11.SC, c11.SC, c11.SC, c11.SC})
	res2, err := c11.Evaluate(sc.Prog)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Allowed[sc.Specified] {
		t.Error("all-SC 2+2W must be forbidden by C11")
	}
}

// TestMemObserverOutcomes: the outcome key includes final memory values in
// declaration order.
func TestMemObserverOutcomes(t *testing.T) {
	tst := TwoPlusTwoW.Instantiate([]c11.Order{c11.Rlx, c11.Rlx, c11.Rlx, c11.Rlx})
	outs, err := mem.Outcomes(tst.Prog.Mem())
	if err != nil {
		t.Fatal(err)
	}
	// Each location ends as 1 or 2: four outcomes.
	want := []mem.Outcome{"x=1; y=1", "x=1; y=2", "x=2; y=1", "x=2; y=2"}
	if len(outs) != len(want) {
		t.Fatalf("outcomes %v, want %d", outs, len(want))
	}
	for _, o := range want {
		if !outs[o] {
			t.Errorf("missing outcome %q", o)
		}
	}
}

// TestCoherenceShapesRegistered: registry and paper-suite invariants hold.
func TestCoherenceShapesRegistered(t *testing.T) {
	for _, s := range CoherenceShapes() {
		if s.Paper {
			t.Errorf("%s must not join the paper suite", s.Name)
		}
		if ShapeByName(s.Name) != s {
			t.Errorf("%s not registered", s.Name)
		}
	}
	if len(PaperSuite()) != 1701 {
		t.Error("paper suite size changed")
	}
}
