package litmus

import (
	"testing"

	"tricheck/internal/c11"
	"tricheck/internal/mem"
)

// TestPaperSuiteIs1701 pins the headline suite size from the paper's
// abstract: "out of 1,701 litmus tests examined".
func TestPaperSuiteIs1701(t *testing.T) {
	suite := PaperSuite()
	if len(suite) != 1701 {
		t.Fatalf("paper suite has %d tests, want 1701", len(suite))
	}
}

// TestVariantCountsPerShape pins the per-shape counts implied by the paper:
// mp/sb/corr 81, wrc/rwc/co-rsdwi 243, iriw 729.
func TestVariantCountsPerShape(t *testing.T) {
	want := map[string]int{
		"mp": 81, "sb": 81, "corr": 81,
		"wrc": 243, "rwc": 243, "co-rsdwi": 243,
		"iriw": 729,
	}
	for _, s := range PaperShapes() {
		if got := len(s.Generate()); got != want[s.Name] {
			t.Errorf("%s: %d variants, want %d", s.Name, got, want[s.Name])
		}
		if got := s.Variants(); got != want[s.Name] {
			t.Errorf("%s: Variants() = %d, want %d", s.Name, got, want[s.Name])
		}
	}
}

// TestTemplateExpansion checks the Figure 5 generator semantics: every
// permutation occurs exactly once, loads range over {rlx,acq,sc}, stores
// over {rlx,rel,sc}.
func TestTemplateExpansion(t *testing.T) {
	tests := WRC.Generate()
	seen := map[string]bool{}
	for _, tst := range tests {
		if seen[tst.Name] {
			t.Fatalf("duplicate variant %s", tst.Name)
		}
		seen[tst.Name] = true
		if len(tst.Orders) != len(WRC.Slots) {
			t.Fatalf("%s: %d orders, want %d", tst.Name, len(tst.Orders), len(WRC.Slots))
		}
		for i, o := range tst.Orders {
			switch WRC.Slots[i] {
			case StoreSlot:
				if o == c11.Acq {
					t.Errorf("%s: store slot %d has acquire order", tst.Name, i)
				}
			case LoadSlot:
				if o == c11.Rel {
					t.Errorf("%s: load slot %d has release order", tst.Name, i)
				}
			}
		}
	}
}

// TestSpecifiedOutcomeIsCandidate: every shape's interesting outcome must
// actually be producible by some execution candidate.
func TestSpecifiedOutcomeIsCandidate(t *testing.T) {
	for _, s := range AllShapes() {
		tst := s.Instantiate(relaxedOrders(s))
		outs, err := mem.Outcomes(tst.Prog.Mem())
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if !outs[tst.Specified] {
			t.Errorf("%s: specified outcome %q not among candidates %v", s.Name, tst.Specified, outs)
		}
	}
}

func relaxedOrders(s *Shape) []c11.Order {
	o := make([]c11.Order, len(s.Slots))
	for i := range o {
		o[i] = c11.Rlx
	}
	return o
}

// TestCoRRSpecifiedAlwaysForbidden: coherence violations are forbidden for
// every memory-order combination of the corr and co-rsdwi shapes.
func TestCoRRSpecifiedAlwaysForbidden(t *testing.T) {
	for _, s := range []*Shape{CoRR, CORSDWI} {
		for _, tst := range s.Generate() {
			res, err := c11.Evaluate(tst.Prog)
			if err != nil {
				t.Fatalf("%s: %v", tst.Name, err)
			}
			if res.Allowed[tst.Specified] {
				t.Errorf("%s: coherence-violating outcome %q allowed", tst.Name, tst.Specified)
			}
		}
	}
}

// TestMPForbiddenCount: of the 81 MP variants, exactly those with a
// release-or-stronger store to the flag and an acquire-or-stronger load of
// it (2×2×3×3 = 36) forbid the stale-read outcome.
func TestMPForbiddenCount(t *testing.T) {
	forbidden := 0
	for _, tst := range MP.Generate() {
		res, err := c11.Evaluate(tst.Prog)
		if err != nil {
			t.Fatalf("%s: %v", tst.Name, err)
		}
		if !res.Allowed[tst.Specified] {
			forbidden++
			if !(tst.Orders[1].IsRelease() && tst.Orders[2].IsAcquire()) {
				t.Errorf("%s forbidden without a release/acquire pair", tst.Name)
			}
		}
	}
	if forbidden != 36 {
		t.Errorf("forbidden MP variants = %d, want 36", forbidden)
	}
}

// TestSBForbiddenCount: only the all-SC SB variant is forbidden.
func TestSBForbiddenCount(t *testing.T) {
	var forbidden []string
	for _, tst := range SB.Generate() {
		res, err := c11.Evaluate(tst.Prog)
		if err != nil {
			t.Fatalf("%s: %v", tst.Name, err)
		}
		if !res.Allowed[tst.Specified] {
			forbidden = append(forbidden, tst.Name)
		}
	}
	if len(forbidden) != 1 || forbidden[0] != "sb[sc,sc,sc,sc]" {
		t.Errorf("forbidden SB variants = %v, want exactly the all-sc one", forbidden)
	}
}

// TestRWCForbiddenCount pins Section 6.1's "2 illegal outcomes out of the
// 243 variants of RWC": C11 forbids the RWC outcome in exactly 2 variants.
func TestRWCForbiddenCount(t *testing.T) {
	var forbidden []string
	for _, tst := range RWC.Generate() {
		res, err := c11.Evaluate(tst.Prog)
		if err != nil {
			t.Fatalf("%s: %v", tst.Name, err)
		}
		if !res.Allowed[tst.Specified] {
			forbidden = append(forbidden, tst.Name)
		}
	}
	if len(forbidden) != 2 {
		t.Errorf("forbidden RWC variants = %v (%d), want 2 (paper §6.1)", forbidden, len(forbidden))
	}
	// Both have everything SC except the first load, which is acq or sc.
	for _, name := range forbidden {
		if name != "rwc[sc,acq,sc,sc,sc]" && name != "rwc[sc,sc,sc,sc,sc]" {
			t.Errorf("unexpected forbidden RWC variant %s", name)
		}
	}
}

// TestWRCForbiddenCount108 pins Section 6.1's 108 forbidden WRC variants.
func TestWRCForbiddenCount108(t *testing.T) {
	if testing.Short() {
		t.Skip("243 C11 evaluations")
	}
	forbidden := 0
	for _, tst := range WRC.Generate() {
		res, err := c11.Evaluate(tst.Prog)
		if err != nil {
			t.Fatalf("%s: %v", tst.Name, err)
		}
		if !res.Allowed[tst.Specified] {
			forbidden++
		}
	}
	if forbidden != 108 {
		t.Errorf("forbidden WRC variants = %d, want 108 (paper §6.1)", forbidden)
	}
}

// TestIRIWForbiddenCount4 pins Section 6.1's 4 forbidden IRIW variants.
func TestIRIWForbiddenCount4(t *testing.T) {
	if testing.Short() {
		t.Skip("729 C11 evaluations")
	}
	forbidden := 0
	for _, tst := range IRIW.Generate() {
		res, err := c11.Evaluate(tst.Prog)
		if err != nil {
			t.Fatalf("%s: %v", tst.Name, err)
		}
		if !res.Allowed[tst.Specified] {
			forbidden++
		}
	}
	if forbidden != 4 {
		t.Errorf("forbidden IRIW variants = %d, want 4 (paper §6.1)", forbidden)
	}
}

func TestShapeByName(t *testing.T) {
	if ShapeByName("wrc") != WRC {
		t.Error("ShapeByName(wrc) != WRC")
	}
	if ShapeByName("nope") != nil {
		t.Error("ShapeByName(nope) should be nil")
	}
	for _, s := range AllShapes() {
		if ShapeByName(s.Name) != s {
			t.Errorf("ShapeByName(%s) broken", s.Name)
		}
	}
}

func TestInstantiatePanicsOnWrongArity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on wrong order count")
		}
	}()
	MP.Instantiate([]c11.Order{c11.Rlx})
}

// TestMPAddrDepFigure13 checks the Figure 13 shape end to end at the C11
// level: with release stores, a relaxed pointer load and an acquire
// dependent load, the stale outcome is allowed (lazy cumulativity is legal).
func TestMPAddrDepFigure13(t *testing.T) {
	tst := MPAddrDep.Instantiate([]c11.Order{c11.Rel, c11.Rel, c11.Rlx, c11.Acq})
	res, err := c11.Evaluate(tst.Prog)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Allowed[tst.Specified] {
		t.Errorf("Figure 13 outcome %q must be allowed by C11", tst.Specified)
	}
	// But with an acquire pointer load it synchronizes: forbidden.
	tst2 := MPAddrDep.Instantiate([]c11.Order{c11.Rel, c11.Rel, c11.Acq, c11.Acq})
	res2, err := c11.Evaluate(tst2.Prog)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Allowed[tst2.Specified] {
		t.Errorf("Figure 13 with acquire pointer load must be forbidden")
	}
}

// TestLBAllowedRelaxed: C11 famously allows load buffering for relaxed
// atomics (no out-of-thin-air check needed here: values are constants).
func TestLBAllowedRelaxed(t *testing.T) {
	tst := LB.Instantiate([]c11.Order{c11.Rlx, c11.Rlx, c11.Rlx, c11.Rlx})
	res, err := c11.Evaluate(tst.Prog)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Allowed[tst.Specified] {
		t.Error("LB with relaxed atomics must be allowed by C11")
	}
	// Acquire/release forbids it.
	tst2 := LB.Instantiate([]c11.Order{c11.Acq, c11.Rel, c11.Acq, c11.Rel})
	res2, err := c11.Evaluate(tst2.Prog)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Allowed[tst2.Specified] {
		t.Error("LB with acq/rel must be forbidden by C11")
	}
}
