package litmus

import (
	"strings"
	"testing"

	"tricheck/internal/c11"
	"tricheck/internal/mem"
)

const wrcText = `
test my-wrc
locations x y
thread 0
  st x 1 rlx
thread 1
  ld r0 x rlx
  st y 1 rel
thread 2
  ld r1 y acq
  ld r2 x rlx
observe 1 r0 a
observe 2 r1 b
observe 2 r2 c
interesting a=1; b=1; c=0
`

func TestParseWRC(t *testing.T) {
	tst, err := ParseString(wrcText)
	if err != nil {
		t.Fatal(err)
	}
	if tst.Name != "my-wrc" {
		t.Errorf("name = %q", tst.Name)
	}
	if tst.Specified != "a=1; b=1; c=0" {
		t.Errorf("interesting = %q", tst.Specified)
	}
	// The parsed test must behave exactly like the built-in WRC shape.
	res, err := c11.Evaluate(tst.Prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.Allowed[tst.Specified] {
		t.Error("parsed WRC: causality outcome should be forbidden (rel/acq pair)")
	}
	if !res.Allowed["a=1; b=1; c=1"] {
		t.Error("parsed WRC: benign outcome should be allowed")
	}
}

func TestParseAddressAndControlDeps(t *testing.T) {
	src := `
test deps
locations dummy x y
thread 0
  st x 1 rel
  st y x rel
thread 1
  ld r0 y rlx
  ld r1 [r0] acq
  st x r1 rlx after r0
observe 1 r0 p
observe 1 r1 q
`
	tst, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	ops := tst.Prog.Ops[1]
	if ops[1].Addr.Kind != mem.OpReg {
		t.Error("address dependency lost")
	}
	if ops[2].Data.Kind != mem.OpReg {
		t.Error("data dependency lost")
	}
	if len(ops[2].CtrlDepOn) != 1 || ops[2].CtrlDepOn[0] != 0 {
		t.Errorf("control dependency = %v, want [0]", ops[2].CtrlDepOn)
	}
	// "st y x rel" stores the location id of x (a pointer).
	if ops0 := tst.Prog.Ops[0]; ops0[1].Data.Const != 1 {
		t.Errorf("pointer store value = %d, want 1 (id of x)", ops0[1].Data.Const)
	}
}

func TestParseRMWAndFence(t *testing.T) {
	src := `
test rmwf
locations x
thread 0
  rmw r0 x add 5 acq_rel
  fence sc
  rmw r1 x swap 9 rlx
observe 0 r0 a
observe 0 r1 b
`
	tst, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	ops := tst.Prog.Ops[0]
	if ops[0].Kind != c11.OpRMW || ops[0].RMWOp != mem.RMWAdd || ops[0].Ord != c11.AcqRel {
		t.Errorf("rmw add parsed as %+v", ops[0])
	}
	if ops[1].Kind != c11.OpFence || ops[1].Ord != c11.SC {
		t.Errorf("fence parsed as %+v", ops[1])
	}
	if ops[2].RMWOp != mem.RMWSwap {
		t.Errorf("rmw swap parsed as %+v", ops[2])
	}
	res, err := c11.Evaluate(tst.Prog)
	if err != nil {
		t.Fatal(err)
	}
	// Single thread: r0 sees 0, r1 sees 5.
	if !res.Allowed["a=0; b=5"] || len(res.Allowed) != 1 {
		t.Errorf("allowed = %v, want exactly a=0; b=5", res.Allowed)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src, wantSub string
	}{
		{"bogus directive", "unknown directive"},
		{"thread x", "bad thread index"},
		{"ld r0 x rlx", "before any thread"},
		{"test a\nlocations x\nthread 0\n  ld r0 y rlx", "unknown location"},
		{"test a\nlocations x\nthread 0\n  ld r0 x weird", "unknown memory order"},
		{"test a\nlocations x\nthread 0\n  st x 1 rlx\nobserve 0 r9 l", "not defined"},
		{"test a\nlocations x\nthread 0\n  ld r0 [r9] rlx", "not defined"},
		{"test a\nlocations x x", "duplicate location"},
		{"test a\nlocations x\nthread 0\n  st x 1 rlx after r0", "undefined register"},
		{"test a\nlocations x\nthread 0\n  fence sc after r0", "undefined register"},
		{"test a", "no thread bodies"},
		{"test a\nlocations x\nthread 0\n  rmw r0 x mul 2 rlx", "unknown rmw function"},
	}
	for _, c := range cases {
		_, err := ParseString(c.src)
		if err == nil {
			t.Errorf("source %q: want error containing %q", c.src, c.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("source %q: error %q does not contain %q", c.src, err, c.wantSub)
		}
	}
}

// TestFormatParseRoundTrip: formatting a generated test and re-parsing it
// preserves the C11 verdict of the interesting outcome.
func TestFormatParseRoundTrip(t *testing.T) {
	shapes := []*Test{
		WRC.Instantiate([]c11.Order{c11.Rlx, c11.Rlx, c11.Rel, c11.Acq, c11.Rlx}),
		MP.Instantiate([]c11.Order{c11.SC, c11.Rlx, c11.SC, c11.SC}),
		MPAddrDep.Instantiate([]c11.Order{c11.Rel, c11.Rel, c11.Rlx, c11.Acq}),
		IRIW.Instantiate([]c11.Order{c11.SC, c11.SC, c11.SC, c11.SC, c11.SC, c11.SC}),
	}
	for _, orig := range shapes {
		var b strings.Builder
		if err := Format(&b, orig); err != nil {
			t.Fatalf("%s: %v", orig.Name, err)
		}
		back, err := ParseString(b.String())
		if err != nil {
			t.Fatalf("%s: re-parse: %v\n%s", orig.Name, err, b.String())
		}
		origRes, err := c11.Evaluate(orig.Prog)
		if err != nil {
			t.Fatal(err)
		}
		backRes, err := c11.Evaluate(back.Prog)
		if err != nil {
			t.Fatal(err)
		}
		if len(origRes.Allowed) != len(backRes.Allowed) {
			t.Errorf("%s: allowed sets differ after round trip: %v vs %v",
				orig.Name, origRes.Allowed, backRes.Allowed)
		}
		for o := range origRes.Allowed {
			if !backRes.Allowed[remapOutcome(o, orig, back)] {
				t.Errorf("%s: outcome %v lost in round trip", orig.Name, o)
			}
		}
	}
}

// remapOutcome is the identity here: observer labels survive Format.
func remapOutcome(o mem.Outcome, _, _ *Test) mem.Outcome { return o }

func TestFormatIncludesDeps(t *testing.T) {
	tst := MPAddrDep.Instantiate([]c11.Order{c11.Rel, c11.Rel, c11.Rlx, c11.Acq})
	var b strings.Builder
	if err := Format(&b, tst); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "[r0]") {
		t.Errorf("formatted output lost the address dependency:\n%s", b.String())
	}
}
