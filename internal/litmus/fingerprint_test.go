package litmus

import (
	"strings"
	"testing"

	"tricheck/internal/c11"
	"tricheck/internal/mem"
)

// TestFingerprintIgnoresNaming: location names, register numbering and
// test names are not part of the fingerprint; structure and labels are.
func TestFingerprintIgnoresNaming(t *testing.T) {
	build := func(locA, locB string, r0, r1 int) *Test {
		p := c11.New(2, locA, locB)
		p.Store(0, c11.Rlx, mem.Const(0), mem.Const(1))
		p.Store(0, c11.Rel, mem.Const(1), mem.Const(1))
		p.Load(1, c11.Acq, mem.Const(1), r0)
		p.Load(1, c11.Rlx, mem.Const(0), r1)
		p.Observe(1, r0, "r0")
		p.Observe(1, r1, "r1")
		return &Test{Name: locA + locB, Shape: MP, Prog: p, Specified: "r0=1; r1=0"}
	}
	a := build("x", "y", 0, 1)
	b := build("u", "v", 5, 9) // renamed locations, renumbered registers
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("fingerprint depends on location names or register numbering")
	}

	// Changing a memory order must change the fingerprint.
	c := build("x", "y", 0, 1)
	c.Prog = c11.New(2, "x", "y")
	c.Prog.Store(0, c11.Rlx, mem.Const(0), mem.Const(1))
	c.Prog.Store(0, c11.SC, mem.Const(1), mem.Const(1)) // rel → sc
	c.Prog.Load(1, c11.Acq, mem.Const(1), 0)
	c.Prog.Load(1, c11.Rlx, mem.Const(0), 1)
	c.Prog.Observe(1, 0, "r0")
	c.Prog.Observe(1, 1, "r1")
	if a.Fingerprint() == c.Fingerprint() {
		t.Error("fingerprint misses a memory-order change")
	}

	// Changing an outcome label must change the fingerprint (labels
	// define the outcome namespace results are keyed by).
	d := build("x", "y", 0, 1)
	d.Prog = c11.New(2, "x", "y")
	d.Prog.Store(0, c11.Rlx, mem.Const(0), mem.Const(1))
	d.Prog.Store(0, c11.Rel, mem.Const(1), mem.Const(1))
	d.Prog.Load(1, c11.Acq, mem.Const(1), 0)
	d.Prog.Load(1, c11.Rlx, mem.Const(0), 1)
	d.Prog.Observe(1, 0, "a")
	d.Prog.Observe(1, 1, "b")
	if a.Fingerprint() == d.Fingerprint() {
		t.Error("fingerprint misses an observer-label change")
	}
}

// TestFingerprintDistinguishesSuite: all 1,701 paper-suite tests have
// distinct fingerprints (no accidental dedup collisions).
func TestFingerprintDistinguishesSuite(t *testing.T) {
	seen := map[string]string{}
	for _, tst := range PaperSuite() {
		fp := tst.Fingerprint()
		if prev, ok := seen[fp]; ok {
			t.Fatalf("fingerprint collision: %s and %s", prev, tst.Name)
		}
		seen[fp] = tst.Name
	}
}

// TestFingerprintStableAcrossTextualFormat: the internal textual format
// (Format/Parse) also preserves fingerprints.
func TestFingerprintStableAcrossTextualFormat(t *testing.T) {
	for _, shape := range PaperShapes() {
		tst := shape.Generate()[0]
		var b strings.Builder
		if err := Format(&b, tst); err != nil {
			t.Fatal(err)
		}
		parsed, err := ParseString(b.String())
		if err != nil {
			t.Fatalf("%s: %v\n%s", tst.Name, err, b.String())
		}
		if parsed.Fingerprint() != tst.Fingerprint() {
			t.Errorf("%s: fingerprint changed across internal-format round trip", tst.Name)
		}
	}
}
