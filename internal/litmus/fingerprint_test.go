package litmus

import (
	"strings"
	"testing"

	"tricheck/internal/c11"
	"tricheck/internal/mem"
)

// TestFingerprintIgnoresNaming: location names, register numbering and
// test names are not part of the fingerprint; structure and labels are.
func TestFingerprintIgnoresNaming(t *testing.T) {
	build := func(locA, locB string, r0, r1 int) *Test {
		p := c11.New(2, locA, locB)
		p.Store(0, c11.Rlx, mem.Const(0), mem.Const(1))
		p.Store(0, c11.Rel, mem.Const(1), mem.Const(1))
		p.Load(1, c11.Acq, mem.Const(1), r0)
		p.Load(1, c11.Rlx, mem.Const(0), r1)
		p.Observe(1, r0, "r0")
		p.Observe(1, r1, "r1")
		return &Test{Name: locA + locB, Shape: MP, Prog: p, Specified: "r0=1; r1=0"}
	}
	a := build("x", "y", 0, 1)
	b := build("u", "v", 5, 9) // renamed locations, renumbered registers
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("fingerprint depends on location names or register numbering")
	}

	// Changing a memory order must change the fingerprint.
	c := build("x", "y", 0, 1)
	c.Prog = c11.New(2, "x", "y")
	c.Prog.Store(0, c11.Rlx, mem.Const(0), mem.Const(1))
	c.Prog.Store(0, c11.SC, mem.Const(1), mem.Const(1)) // rel → sc
	c.Prog.Load(1, c11.Acq, mem.Const(1), 0)
	c.Prog.Load(1, c11.Rlx, mem.Const(0), 1)
	c.Prog.Observe(1, 0, "r0")
	c.Prog.Observe(1, 1, "r1")
	if a.Fingerprint() == c.Fingerprint() {
		t.Error("fingerprint misses a memory-order change")
	}

	// Changing an outcome label must change the fingerprint (labels
	// define the outcome namespace results are keyed by).
	d := build("x", "y", 0, 1)
	d.Prog = c11.New(2, "x", "y")
	d.Prog.Store(0, c11.Rlx, mem.Const(0), mem.Const(1))
	d.Prog.Store(0, c11.Rel, mem.Const(1), mem.Const(1))
	d.Prog.Load(1, c11.Acq, mem.Const(1), 0)
	d.Prog.Load(1, c11.Rlx, mem.Const(0), 1)
	d.Prog.Observe(1, 0, "a")
	d.Prog.Observe(1, 1, "b")
	if a.Fingerprint() == d.Fingerprint() {
		t.Error("fingerprint misses an observer-label change")
	}
}

// TestFingerprintThreadPermutationInvariance: renumbering the threads of
// a program (keeping each outcome label attached to the same logical
// load) must not change the fingerprint — the farm may then share
// results between a generated test and a rotated synthesis of the same
// cycle. Every paper shape is checked under full thread reversal.
func TestFingerprintThreadPermutationInvariance(t *testing.T) {
	for _, shape := range PaperShapes() {
		orig := shape.Generate()[0]
		perm := permuteThreads(orig.Prog, reversePerm(orig.Prog.NumThreads()))
		if FingerprintProgram(perm) != orig.Fingerprint() {
			t.Errorf("%s: fingerprint changed under thread permutation", orig.Name)
		}
		if StructuralFingerprintProgram(perm) != orig.StructuralFingerprint() {
			t.Errorf("%s: structural fingerprint changed under thread permutation", orig.Name)
		}
	}
}

// TestFingerprintLocationRenumberingInvariance: renumbering the shared
// locations (x=1,y=0 instead of x=0,y=1) must not change the
// fingerprint.
func TestFingerprintLocationRenumberingInvariance(t *testing.T) {
	build := func(x, y int64) *c11.Program {
		p := c11.New(2, "a", "b")
		p.Store(0, c11.Rlx, mem.Const(x), mem.Const(1))
		p.Store(0, c11.Rel, mem.Const(y), mem.Const(1))
		p.Load(1, c11.Acq, mem.Const(y), 0)
		p.Load(1, c11.Rlx, mem.Const(x), 1)
		p.Observe(1, 0, "r0")
		p.Observe(1, 1, "r1")
		return p
	}
	if FingerprintProgram(build(0, 1)) != FingerprintProgram(build(1, 0)) {
		t.Error("fingerprint depends on location numbering")
	}
}

// TestFingerprintRegisterRenamingInvariance: the same program authored
// with arbitrary register numbers fingerprints identically — already
// exercised by TestFingerprintIgnoresNaming, pinned here for the
// synthesizer's global-counter numbering against per-thread numbering.
func TestFingerprintRegisterRenamingInvariance(t *testing.T) {
	build := func(r0, r1, r2 int) *c11.Program {
		p := c11.New(2, "x", "y")
		p.Store(0, c11.Rlx, mem.Const(0), mem.Const(1))
		p.Load(1, c11.Acq, mem.Const(1), r0)
		p.Load(1, c11.Rlx, mem.Const(0), r1)
		p.Load(2, c11.Rlx, mem.Const(1), r2)
		p.Observe(1, r0, "r0")
		p.Observe(1, r1, "r1")
		p.Observe(2, r2, "r2")
		return p
	}
	if FingerprintProgram(build(0, 1, 2)) != FingerprintProgram(build(7, 3, 0)) {
		t.Error("fingerprint depends on register numbering")
	}
}

// TestStructuralFingerprintAnonymizesLabels: relabeling the observers
// changes the full fingerprint (outcome namespace) but not the
// structural one (same skeleton) — synthesized duplicates that differ
// only in how the cycle rotation numbered the observers must collapse
// to one canonical shape.
func TestStructuralFingerprintAnonymizesLabels(t *testing.T) {
	build := func(l0, l1 string) *Test {
		p := c11.New(2, "x", "y")
		p.Store(0, c11.Rlx, mem.Const(0), mem.Const(1))
		p.Store(0, c11.Rel, mem.Const(1), mem.Const(1))
		p.Load(1, c11.Acq, mem.Const(1), 0)
		p.Load(1, c11.Rlx, mem.Const(0), 1)
		p.Observe(1, 0, l0)
		p.Observe(1, 1, l1)
		return &Test{Name: "t", Shape: MP, Prog: p}
	}
	a, b := build("r0", "r1"), build("obs_a", "obs_b")
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("full fingerprint must distinguish observer labels")
	}
	if a.StructuralFingerprint() != b.StructuralFingerprint() {
		t.Error("structural fingerprint must ignore observer labels")
	}
}

// TestStructuralFingerprintValueRenaming: swapping the written values
// must not change the structural fingerprint, even when the swap
// changes how the raw thread renderings would sort (the canonical form
// minimizes over block orders with value renumbering applied per
// candidate, not as a post-pass).
func TestStructuralFingerprintValueRenaming(t *testing.T) {
	build := func(v0, v1 int64) *c11.Program {
		p := c11.New(2, "x", "y")
		p.Store(0, c11.Rlx, mem.Const(0), mem.Const(v0))
		p.FenceOp(0, c11.SC)
		p.Store(1, c11.Rlx, mem.Const(0), mem.Const(v1))
		p.Load(1, c11.Rlx, mem.Const(1), 0)
		p.Observe(1, 0, "r0")
		p.ObserveMem(0, "x")
		return p
	}
	a, b := build(1, 2), build(2, 1)
	if StructuralFingerprintProgram(a) != StructuralFingerprintProgram(b) {
		t.Error("structural fingerprint depends on value numbering")
	}
	if FingerprintProgram(a) == FingerprintProgram(b) {
		t.Error("full fingerprint must distinguish written values (outcomes reference them)")
	}
}

// permuteThreads rebuilds a program with thread t moved to perm[t],
// keeping op order, registers and observer labels intact.
func permuteThreads(p *c11.Program, perm []int) *c11.Program {
	mp := p.Mem()
	q := c11.New(mp.NumLocs, mp.LocNames...)
	type slot struct {
		th  int
		ops []c11.Op
	}
	slots := make([]slot, len(p.Ops))
	for th, ops := range p.Ops {
		slots[perm[th]] = slot{th: th, ops: ops}
	}
	for _, s := range slots {
		for _, op := range s.ops {
			switch op.Kind {
			case c11.OpLoad:
				q.LoadDep(perm[s.th], op.Ord, op.Addr, op.Dst, op.CtrlDepOn)
			case c11.OpStore:
				q.StoreDep(perm[s.th], op.Ord, op.Addr, op.Data, op.CtrlDepOn)
			case c11.OpRMW:
				q.RMW(perm[s.th], op.Ord, op.Addr, op.Data, op.Dst, op.RMWOp)
			case c11.OpFence:
				q.FenceOp(perm[s.th], op.Ord)
			}
		}
	}
	for _, o := range mp.Observers {
		q.Observe(perm[o.Thread], o.Reg, o.Label)
	}
	for _, o := range mp.MemObservers {
		q.ObserveMem(o.Loc, o.Label)
	}
	return q
}

func reversePerm(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = n - 1 - i
	}
	return out
}

// TestFingerprintDistinguishesSuite: all 1,701 paper-suite tests have
// distinct fingerprints (no accidental dedup collisions).
func TestFingerprintDistinguishesSuite(t *testing.T) {
	seen := map[string]string{}
	for _, tst := range PaperSuite() {
		fp := tst.Fingerprint()
		if prev, ok := seen[fp]; ok {
			t.Fatalf("fingerprint collision: %s and %s", prev, tst.Name)
		}
		seen[fp] = tst.Name
	}
}

// TestFingerprintStableAcrossTextualFormat: the internal textual format
// (Format/Parse) also preserves fingerprints.
func TestFingerprintStableAcrossTextualFormat(t *testing.T) {
	for _, shape := range PaperShapes() {
		tst := shape.Generate()[0]
		var b strings.Builder
		if err := Format(&b, tst); err != nil {
			t.Fatal(err)
		}
		parsed, err := ParseString(b.String())
		if err != nil {
			t.Fatalf("%s: %v\n%s", tst.Name, err, b.String())
		}
		if parsed.Fingerprint() != tst.Fingerprint() {
			t.Errorf("%s: fingerprint changed across internal-format round trip", tst.Name)
		}
	}
}
