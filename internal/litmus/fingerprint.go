package litmus

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"tricheck/internal/c11"
	"tricheck/internal/mem"
)

// This file implements canonical test fingerprints: a content hash of a
// test's program that is independent of every piece of surface syntax —
// test and shape names, location names, register numbering, and the
// textual format the test was authored in. Two tests with the same
// fingerprint have identical semantics at every layer of the toolflow
// (same candidate executions, same outcome namespace), so the
// verification farm can deduplicate and memoize (test, stack) jobs by
// fingerprint, and a corpus round trip through any emitter/parser pair
// leaves the fingerprint unchanged.
//
// What IS part of the fingerprint:
//   - the thread structure and per-thread operation sequences,
//   - each operation's kind, memory order, and RMW function,
//   - address/data operands with locations as dense ids (names dropped)
//     and registers renumbered per thread in definition order,
//   - control-dependency edges (as per-thread op indices),
//   - observers and their outcome labels (they define the outcome
//     namespace, so results keyed by them are only shareable when the
//     labels agree).
//
// What is NOT part of the fingerprint: the test name, the shape name, the
// location display names, the concrete register numbers, and the
// designated "interesting" outcome (everything derived from it is
// recomputed when a memoized result is rebound to a test).

// Fingerprint returns the canonical content hash of the test's program.
// The hash is a 64-bit-collision-safe 128-bit hex string (the first 16
// bytes of a SHA-256). It is computed once per test: a cold sweep asks
// for it once per (test, stack) job, so caching saves tens of
// thousands of canonicalization passes per paper sweep.
func (t *Test) Fingerprint() string {
	t.fpOnce.Do(func() { t.fp = FingerprintProgram(t.Prog) })
	return t.fp
}

// FingerprintProgram computes the canonical fingerprint of a C11 program.
func FingerprintProgram(p *c11.Program) string {
	var b strings.Builder
	mp := p.Mem()
	fmt.Fprintf(&b, "locs=%d;", mp.NumLocs)
	for th, ops := range p.Ops {
		// Registers renumber per thread in definition order, so the
		// builder's global numbering and a parser's local numbering
		// fingerprint identically.
		canon := map[int]int{}
		reg := func(r int) int {
			c, ok := canon[r]
			if !ok {
				c = len(canon)
				canon[r] = c
			}
			return c
		}
		operand := func(o mem.Operand) string {
			if o.Kind == mem.OpReg {
				return fmt.Sprintf("r%d", reg(o.Reg))
			}
			return fmt.Sprintf("#%d", o.Const)
		}
		fmt.Fprintf(&b, "T%d:", th)
		for _, op := range ops {
			switch op.Kind {
			case c11.OpLoad:
				fmt.Fprintf(&b, "ld,%s,%s,r%d", op.Ord, operand(op.Addr), reg(op.Dst))
			case c11.OpStore:
				fmt.Fprintf(&b, "st,%s,%s,%s", op.Ord, operand(op.Addr), operand(op.Data))
			case c11.OpRMW:
				fmt.Fprintf(&b, "rmw%d,%s,%s,%s,r%d", op.RMWOp, op.Ord, operand(op.Addr), operand(op.Data), reg(op.Dst))
			case c11.OpFence:
				fmt.Fprintf(&b, "f,%s", op.Ord)
			}
			if len(op.CtrlDepOn) > 0 {
				deps := append([]int(nil), op.CtrlDepOn...)
				sort.Ints(deps)
				fmt.Fprintf(&b, ",ctrl%v", deps)
			}
			b.WriteByte(';')
		}
		// Observers for this thread, in (register, label) order. The
		// canonical register map is thread-local, so they are rendered
		// inside the thread block.
		var obs []mem.Observer
		for _, o := range mp.Observers {
			if o.Thread == th {
				obs = append(obs, o)
			}
		}
		sort.Slice(obs, func(i, j int) bool {
			if obs[i].Reg != obs[j].Reg {
				return obs[i].Reg < obs[j].Reg
			}
			return obs[i].Label < obs[j].Label
		})
		for _, o := range obs {
			c, ok := canon[o.Reg]
			if !ok {
				// An observer of a never-written register: keep the raw
				// number, prefixed so it cannot collide with canon ids.
				fmt.Fprintf(&b, "obs:?%d=%s;", o.Reg, o.Label)
				continue
			}
			fmt.Fprintf(&b, "obs:r%d=%s;", c, o.Label)
		}
	}
	memObs := append([]mem.MemObserver(nil), mp.MemObservers...)
	sort.Slice(memObs, func(i, j int) bool {
		if memObs[i].Loc != memObs[j].Loc {
			return memObs[i].Loc < memObs[j].Loc
		}
		return memObs[i].Label < memObs[j].Label
	})
	for _, o := range memObs {
		fmt.Fprintf(&b, "memobs:%d=%s;", o.Loc, o.Label)
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:16])
}
