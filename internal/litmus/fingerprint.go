package litmus

import (
	"crypto/sha256"
	"encoding/hex"
	"sort"
	"strconv"

	"tricheck/internal/c11"
	"tricheck/internal/mem"
)

// This file implements canonical test fingerprints: a content hash of a
// test's program that is independent of every piece of surface syntax —
// test and shape names, location names, register numbering, thread
// ordering, location numbering, and the textual format the test was
// authored in. Two tests with the same fingerprint have identical
// semantics at every layer of the toolflow (same candidate executions,
// same outcome namespace), so the verification farm can deduplicate and
// memoize (test, stack) jobs by fingerprint, and a corpus round trip
// through any emitter/parser pair leaves the fingerprint unchanged.
//
// What IS part of the fingerprint:
//   - the thread structure and per-thread operation sequences (but not
//     which dense thread id a thread carries: thread blocks are sorted),
//   - each operation's kind, memory order, and RMW function,
//   - address/data operands with locations canonicalized (the hash is
//     minimized over location renumberings, so renumbering the shared
//     variables does not change it) and registers renumbered per thread
//     in definition order,
//   - control-dependency edges (as per-thread op indices),
//   - observers and their outcome labels (they define the outcome
//     namespace, so results keyed by them are only shareable when the
//     labels agree).
//
// What is NOT part of the fingerprint: the test name, the shape name, the
// location display names, the concrete register numbers, the order in
// which threads and locations happen to be numbered, and the designated
// "interesting" outcome (everything derived from it is recomputed when a
// memoized result is rebound to a test).
//
// The STRUCTURAL fingerprint additionally anonymizes observer labels
// and canonicalizes written constants (renumbered by order of
// appearance, so writing {1,2} or {2,1} to a location is the same
// skeleton): it identifies tests that are the same program modulo
// outcome naming and value numbering. Two tests with equal structural
// fingerprints describe the same cycle skeleton — the synthesizer uses
// it to collapse duplicate shapes and to decide whether a synthesized
// shape is genuinely novel — but their results are NOT interchangeable
// (the outcome strings differ), so the memo cache must keep using the
// full fingerprint.

// maxCanonLocs bounds the location-permutation search: up to this many
// locations the canonical form is the exact minimum over all location
// renumberings; beyond it (no shipped or synthesized test comes close)
// the identity numbering is used, which is still deterministic.
const maxCanonLocs = 5

// maxCanonThreads bounds the thread-permutation search of the
// STRUCTURAL fingerprint. Value renumbering depends on the order thread
// blocks are visited, so the exact canonical form minimizes over block
// orders; beyond this many threads the blocks are sorted on their raw
// rendering instead (deterministic, but value-renamed duplicates of
// such oversized programs may not collapse).
const maxCanonThreads = 6

// Fingerprint returns the canonical content hash of the test's program.
// The hash is a 64-bit-collision-safe 128-bit hex string (the first 16
// bytes of a SHA-256). It is computed once per test: a cold sweep asks
// for it once per (test, stack) job, so caching saves tens of
// thousands of canonicalization passes per paper sweep.
func (t *Test) Fingerprint() string {
	t.fpOnce.Do(func() { t.fp = FingerprintProgram(t.Prog) })
	return t.fp
}

// FingerprintProgram computes the canonical fingerprint of a C11 program.
func FingerprintProgram(p *c11.Program) string {
	return hashCanonical(canonicalString(p, false))
}

// StructuralFingerprintProgram computes the label-anonymized canonical
// fingerprint: equal for two programs that coincide modulo thread order,
// location numbering, register numbering and observer-label naming. Use
// it for shape-level dedup (is this the same litmus skeleton?), never
// for result memoization.
func StructuralFingerprintProgram(p *c11.Program) string {
	return hashCanonical(canonicalString(p, true))
}

// StructuralFingerprint returns the label-anonymized fingerprint of the
// test's program (see StructuralFingerprintProgram).
func (t *Test) StructuralFingerprint() string {
	return StructuralFingerprintProgram(t.Prog)
}

func hashCanonical(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:16])
}

// canonicalString renders the program minimally over every location
// renumbering (exact up to maxCanonLocs locations) with thread blocks
// sorted, so the result is invariant under thread permutation and
// location renaming/renumbering. With anonLabels set, observer labels
// are dropped from the rendering.
func canonicalString(p *c11.Program, anonLabels bool) string {
	nlocs := p.Mem().NumLocs
	best := ""
	have := false
	permutations(nlocs, maxCanonLocs, func(sigma []int) {
		s := renderProgram(p, sigma, anonLabels)
		if !have || s < best {
			best, have = s, true
		}
	})
	return best
}

// permutations calls fn with every permutation of [0,n) when n <= limit,
// or just the identity otherwise (Heap's algorithm, iterative; the slice
// is reused across calls).
func permutations(n, limit int, fn func([]int)) {
	sigma := make([]int, n)
	for i := range sigma {
		sigma[i] = i
	}
	fn(sigma)
	if n > limit {
		return
	}
	c := make([]int, n)
	i := 0
	for i < n {
		if c[i] < i {
			if i%2 == 0 {
				sigma[0], sigma[i] = sigma[i], sigma[0]
			} else {
				sigma[c[i]], sigma[i] = sigma[i], sigma[c[i]]
			}
			fn(sigma)
			c[i]++
			i = 0
		} else {
			c[i] = 0
			i++
		}
	}
}

// renderProgram renders the canonical string for one location
// renumbering: per-thread blocks (ops with thread-local canonical
// registers, then the thread's observers) followed by the memory
// observers. The full fingerprint sorts the blocks (value-exact
// renderings sort identically for thread-permuted programs); the
// structural fingerprint instead minimizes over block orders with the
// value renumbering applied per candidate, so value-renamed duplicates
// collapse no matter how the renaming reorders the raw renderings.
func renderProgram(p *c11.Program, sigma []int, anonLabels bool) string {
	blocks := renderBlocks(p, sigma, anonLabels)
	prefix := "locs=" + strconv.Itoa(p.Mem().NumLocs) + ";"
	memObs := renderMemObs(p, sigma, anonLabels)
	if !anonLabels || len(blocks) > maxCanonThreads {
		sorted := append([]string(nil), blocks...)
		sort.Strings(sorted)
		s := assembleRendering(prefix, sorted, memObs)
		if anonLabels {
			s = canonValues(s)
		}
		return s
	}
	best := ""
	have := false
	ordered := make([]string, len(blocks))
	permutations(len(blocks), maxCanonThreads, func(pi []int) {
		for i, bi := range pi {
			ordered[i] = blocks[bi]
		}
		s := canonValues(assembleRendering(prefix, ordered, memObs))
		if !have || s < best {
			best, have = s, true
		}
	})
	return best
}

func assembleRendering(prefix string, blocks []string, memObs string) string {
	n := len(prefix) + len(memObs)
	for _, blk := range blocks {
		n += len(blk) + 4
	}
	out := make([]byte, 0, n)
	out = append(out, prefix...)
	for i, blk := range blocks {
		out = append(out, 'T')
		out = strconv.AppendInt(out, int64(i), 10)
		out = append(out, ':')
		out = append(out, blk...)
	}
	out = append(out, memObs...)
	return string(out)
}

// renderBlocks renders each thread's operations and observers. The
// rendering is hot — a cold sweep fingerprints every job's test, and the
// canonical form re-renders per location permutation — so each block is
// assembled by direct byte appends instead of fmt.
func renderBlocks(p *c11.Program, sigma []int, anonLabels bool) []string {
	mp := p.Mem()
	blocks := make([]string, 0, len(p.Ops))
	var b []byte
	var depsBuf []int
	// Registers renumber per thread in definition order, so the
	// builder's global numbering and a parser's local numbering
	// fingerprint identically. The map is reused (cleared) per thread —
	// canonicalization re-renders per location permutation, and a fresh
	// map per thread per permutation dominated fingerprint allocations.
	canon := make(map[int]int, 8)
	for th, ops := range p.Ops {
		b = b[:0]
		clear(canon)
		reg := func(r int) int {
			c, ok := canon[r]
			if !ok {
				c = len(canon)
				canon[r] = c
			}
			return c
		}
		operand := func(o mem.Operand, isLoc bool) {
			if o.Kind == mem.OpReg {
				b = append(b, 'r')
				b = strconv.AppendInt(b, int64(reg(o.Reg)), 10)
				return
			}
			if isLoc {
				c := o.Const
				if c >= 0 && int(c) < len(sigma) {
					c = int64(sigma[c])
				}
				b = append(b, '#')
				b = strconv.AppendInt(b, c, 10)
				return
			}
			// Data constants use a distinct marker so the structural
			// canonicalization can renumber them without touching
			// location ids.
			b = append(b, '$')
			b = strconv.AppendInt(b, o.Const, 10)
		}
		for _, op := range ops {
			switch op.Kind {
			case c11.OpLoad:
				b = append(b, "ld,"...)
				b = append(b, op.Ord.String()...)
				b = append(b, ',')
				operand(op.Addr, true)
				b = append(b, ",r"...)
				b = strconv.AppendInt(b, int64(reg(op.Dst)), 10)
			case c11.OpStore:
				b = append(b, "st,"...)
				b = append(b, op.Ord.String()...)
				b = append(b, ',')
				operand(op.Addr, true)
				b = append(b, ',')
				operand(op.Data, false)
			case c11.OpRMW:
				b = append(b, "rmw"...)
				b = strconv.AppendInt(b, int64(op.RMWOp), 10)
				b = append(b, ',')
				b = append(b, op.Ord.String()...)
				b = append(b, ',')
				operand(op.Addr, true)
				b = append(b, ',')
				operand(op.Data, false)
				b = append(b, ",r"...)
				b = strconv.AppendInt(b, int64(reg(op.Dst)), 10)
			case c11.OpFence:
				b = append(b, "f,"...)
				b = append(b, op.Ord.String()...)
			}
			if len(op.CtrlDepOn) > 0 {
				deps := append(depsBuf[:0], op.CtrlDepOn...)
				depsBuf = deps
				sort.Ints(deps)
				// fmt's %v rendering of []int: "[a b c]".
				b = append(b, ",ctrl["...)
				for i, d := range deps {
					if i > 0 {
						b = append(b, ' ')
					}
					b = strconv.AppendInt(b, int64(d), 10)
				}
				b = append(b, ']')
			}
			b = append(b, ';')
		}
		// Observers for this thread, in (register, label) order. The
		// canonical register map is thread-local, so they are rendered
		// inside the thread block.
		type canonObs struct {
			rendered string // "r<canon>" or "?<raw>" for never-written registers
			label    string
		}
		var obs []canonObs
		for _, o := range mp.Observers {
			if o.Thread != th {
				continue
			}
			label := o.Label
			if anonLabels {
				label = "*"
			}
			if c, ok := canon[o.Reg]; ok {
				obs = append(obs, canonObs{"r" + strconv.Itoa(c), label})
			} else {
				// An observer of a never-written register: keep the raw
				// number, prefixed so it cannot collide with canon ids.
				obs = append(obs, canonObs{"?" + strconv.Itoa(o.Reg), label})
			}
		}
		sort.Slice(obs, func(i, j int) bool {
			if obs[i].rendered != obs[j].rendered {
				return obs[i].rendered < obs[j].rendered
			}
			return obs[i].label < obs[j].label
		})
		for _, o := range obs {
			b = append(b, "obs:"...)
			b = append(b, o.rendered...)
			b = append(b, '=')
			b = append(b, o.label...)
			b = append(b, ';')
		}
		blocks = append(blocks, string(b))
	}
	return blocks
}

// renderMemObs renders the program-wide memory observers.
func renderMemObs(p *c11.Program, sigma []int, anonLabels bool) string {
	mp := p.Mem()
	if len(mp.MemObservers) == 0 {
		return ""
	}
	memObs := make([]mem.MemObserver, len(mp.MemObservers))
	for i, o := range mp.MemObservers {
		loc := o.Loc
		if loc >= 0 && int(loc) < len(sigma) {
			loc = mem.Loc(sigma[loc])
		}
		memObs[i] = mem.MemObserver{Loc: loc, Label: o.Label}
	}
	sort.Slice(memObs, func(i, j int) bool {
		if memObs[i].Loc != memObs[j].Loc {
			return memObs[i].Loc < memObs[j].Loc
		}
		return memObs[i].Label < memObs[j].Label
	})
	var out []byte
	for _, o := range memObs {
		label := o.Label
		if anonLabels {
			label = "*"
		}
		out = append(out, "memobs:"...)
		out = strconv.AppendInt(out, int64(o.Loc), 10)
		out = append(out, '=')
		out = append(out, label...)
		out = append(out, ';')
	}
	return string(out)
}

// canonValues renumbers the data constants of a rendered program ($N
// markers) by order of appearance, making the structural fingerprint
// independent of which concrete integers a test writes. The map is
// injective, so distinct values stay distinct.
func canonValues(s string) string {
	out := make([]byte, 0, len(s)+8)
	canon := map[string]int{}
	for i := 0; i < len(s); i++ {
		if s[i] != '$' {
			out = append(out, s[i])
			continue
		}
		j := i + 1
		if j < len(s) && s[j] == '-' {
			j++
		}
		for j < len(s) && s[j] >= '0' && s[j] <= '9' {
			j++
		}
		tok := s[i:j]
		c, ok := canon[tok]
		if !ok {
			c = len(canon)
			canon[tok] = c
		}
		out = append(out, "$v"...)
		out = strconv.AppendInt(out, int64(c), 10)
		i = j - 1
	}
	return string(out)
}
