package litmus

import (
	"testing"

	"tricheck/internal/c11"
)

// TestMPFencesAllForbidden: release/acquire fence pairs synchronize MP for
// every fence-order combination (C++11 29.8p2).
func TestMPFencesAllForbidden(t *testing.T) {
	for _, tst := range MPFences.Generate() {
		res, err := c11.Evaluate(tst.Prog)
		if err != nil {
			t.Fatalf("%s: %v", tst.Name, err)
		}
		if res.Allowed[tst.Specified] {
			t.Errorf("%s: stale read allowed despite fence pair", tst.Name)
		}
	}
}

// TestSBFencesOnlySCForbidden: of the 9 sb+fences variants, exactly the
// sc/sc pair forbids the classic outcome ([atomics.order] p6).
func TestSBFencesOnlySCForbidden(t *testing.T) {
	var forbidden []string
	for _, tst := range SBFences.Generate() {
		res, err := c11.Evaluate(tst.Prog)
		if err != nil {
			t.Fatalf("%s: %v", tst.Name, err)
		}
		if !res.Allowed[tst.Specified] {
			forbidden = append(forbidden, tst.Name)
		}
	}
	if len(forbidden) != 1 || forbidden[0] != "sb+fences[sc,sc]" {
		t.Errorf("forbidden sb+fences variants = %v, want only [sc,sc]", forbidden)
	}
}

// TestWRCFencesAllForbidden: fence cumulativity at the C11 level makes the
// causality outcome forbidden for every rel/acq-side fence combination.
func TestWRCFencesAllForbidden(t *testing.T) {
	for _, tst := range WRCFences.Generate() {
		res, err := c11.Evaluate(tst.Prog)
		if err != nil {
			t.Fatalf("%s: %v", tst.Name, err)
		}
		if res.Allowed[tst.Specified] {
			t.Errorf("%s: causality violation allowed", tst.Name)
		}
	}
}

// TestIRIWFencesAllAllowed documents a famous weakness of the ORIGINAL
// C11/C++11 SC-fence semantics that this model faithfully reproduces: IRIW
// with relaxed accesses is allowed even with SC fences between both
// readers' loads, because the fence rules ([atomics.order] p4–p6) all
// require an SC event on the writer side and the writes are relaxed. This
// is the deficiency Batty et al.'s "Overhauling SC atomics" (paper
// reference [6]) repaired in C++20/RC11.
func TestIRIWFencesAllAllowed(t *testing.T) {
	for _, tst := range IRIWFences.Generate() {
		res, err := c11.Evaluate(tst.Prog)
		if err != nil {
			t.Fatalf("%s: %v", tst.Name, err)
		}
		if !res.Allowed[tst.Specified] {
			t.Errorf("%s: original C11 allows IRIW through SC fences (the known C++11 weakness)", tst.Name)
		}
	}
}

// TestFenceSlotChoices: fence slots exclude meaningless relaxed fences.
func TestFenceSlotChoices(t *testing.T) {
	for _, o := range FenceRelSlot.Choices() {
		if !o.IsRelease() {
			t.Errorf("release fence slot offers non-release order %v", o)
		}
	}
	for _, o := range FenceAcqSlot.Choices() {
		if !o.IsAcquire() {
			t.Errorf("acquire fence slot offers non-acquire order %v", o)
		}
	}
	if MPFences.Variants() != 9 || IRIWFences.Variants() != 9 {
		t.Errorf("fence shapes should have 9 variants")
	}
}

// TestFenceShapesExcludedFromPaperSuite: the 1,701 count is preserved.
func TestFenceShapesExcludedFromPaperSuite(t *testing.T) {
	if len(PaperSuite()) != 1701 {
		t.Fatalf("paper suite changed size: %d", len(PaperSuite()))
	}
	for _, s := range FenceShapes() {
		if s.Paper {
			t.Errorf("%s must not be in the paper suite", s.Name)
		}
		if ShapeByName(s.Name) != s {
			t.Errorf("%s not registered in AllShapes", s.Name)
		}
	}
}
