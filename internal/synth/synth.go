// Package synth synthesizes litmus-test shapes from first principles:
// it enumerates every critical cycle over the relational alphabet
// {po, pos, dep, rfe, coe, fre} up to a bounded size, lowers each
// canonical cycle to a litmus.Shape (threads, events, shared locations,
// expected-outcome predicate), and deduplicates the results against the
// shipped shapes and each other via the canonical structural
// fingerprints of internal/litmus.
//
// The paper's evaluation (Section 6) sweeps a fixed suite expanded from
// seven hand-written shapes, so it can only rediscover bugs those
// shapes happen to exercise. Following the cycle-enumeration idea
// behind the herd/diy tool family the paper builds on, every critical
// cycle is a candidate test shape: a cyclic word of relations in which
//
//   - program-order edges never appear twice in a row (po;po merges to
//     po, so each thread contributes at most two accesses),
//   - communication edges are external (they cross threads) and
//     adjacent pairs that compose into a single relation (rf;fr, co;co,
//     fr;co) are excluded,
//   - same-location edges tie their endpoints to one shared variable
//     and different-location program-order edges separate them.
//
// Each surviving cycle lowers to a template shape that expands through
// the Figure 5 memory-order generator, compiles through
// internal/compile, runs on the verification farm via core.Engine.Sweep
// and exports to the on-disk corpus — exactly like the shipped shapes.
// The enumerator rediscovers all seven paper shapes as specific cycles
// (see TestRediscoversPaperShapes) and, beyond them, produces the
// classic diy family (S, R, 2+2W, 3.SB, 3.LB, W+RWC, Z6.*, ...) plus
// shapes with no conventional name at all.
package synth

import (
	"fmt"
	"sort"

	"tricheck/internal/c11"
	"tricheck/internal/litmus"
)

// Options bounds an enumeration. The zero value is not useful; set at
// least MaxLen.
type Options struct {
	// MinLen and MaxLen bound the cycle length (edges = events). MinLen
	// defaults to 3, the smallest well-formed critical cycle.
	MinLen, MaxLen int
	// MaxThreads drops cycles spanning more threads (0 = unbounded).
	MaxThreads int
	// MaxLocs drops cycles over more shared locations (0 = unbounded).
	MaxLocs int
	// Deps includes dependency-flavoured program-order edges.
	Deps bool
	// KeepDegenerate keeps shapes whose specified outcome is not even a
	// candidate execution outcome (normally pruned: such a shape can
	// never witness its cycle at any layer of the stack).
	KeepDegenerate bool
	// KeepDuplicates keeps shapes that are structurally identical to a
	// previously enumerated one (normally collapsed to the first, which
	// has the canonically smallest word).
	KeepDuplicates bool
}

// Synthesized is one enumerated shape with its provenance.
type Synthesized struct {
	// Cycle is the canonical critical cycle.
	Cycle *Cycle
	// Shape is the lowered litmus template.
	Shape *litmus.Shape
	// Fingerprint is the structural fingerprint of the shape's
	// first-choice instantiation — the shape-level dedup key.
	Fingerprint string
	// Novel reports that the shape is not structurally identical to
	// any shipped shape (litmus.AllShapes).
	Novel bool
}

// Enumerate generates every critical cycle within the bounds, lowers
// each to a shape, prunes degenerate ones and collapses structural
// duplicates (the first — canonically smallest — word wins). Results
// are ordered by (cycle length, word); the enumeration is fully
// deterministic.
func Enumerate(opts Options) ([]*Synthesized, error) {
	if opts.MaxLen <= 0 {
		return nil, fmt.Errorf("synth: MaxLen must be positive")
	}
	minLen := opts.MinLen
	if minLen < 3 {
		minLen = 3
	}
	shipped := shippedFingerprints()
	seen := map[string]bool{}
	var out []*Synthesized
	for n := minLen; n <= opts.MaxLen; n++ {
		word := make([]EdgeKind, n)
		var rec func(i int) error
		rec = func(i int) error {
			if i == n {
				if !adjacentOK(word[n-1], word[0]) || !minimalRotation(word) {
					return nil
				}
				s, err := build(word, opts, shipped, seen)
				if err != nil {
					return err
				}
				if s != nil {
					out = append(out, s)
				}
				return nil
			}
			for k := EdgeKind(0); k < numEdgeKinds; k++ {
				if k == Dep && !opts.Deps {
					continue
				}
				if i > 0 && !adjacentOK(word[i-1], k) {
					continue
				}
				word[i] = k
				if err := rec(i + 1); err != nil {
					return err
				}
			}
			return nil
		}
		if err := rec(0); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// adjacentOK applies the critical-cycle adjacency rules: no two
// program-order edges in a row, no kind-incompatible endpoint, and no
// composable communication pair.
func adjacentOK(a, b EdgeKind) bool {
	if a.IsProgramOrder() && b.IsProgramOrder() {
		return false
	}
	if mergeKind(a.tgtKind(), b.srcKind()) == evConflict {
		return false
	}
	return !composable(a, b)
}

// build resolves, bounds-checks, lowers and dedups one canonical word.
// A nil, nil return means the word was filtered.
func build(word []EdgeKind, opts Options, shipped map[string]bool, seen map[string]bool) (*Synthesized, error) {
	c, err := resolve(word)
	if err != nil {
		return nil, nil // not a well-formed critical cycle
	}
	if opts.MaxThreads > 0 && c.NThreads > opts.MaxThreads {
		return nil, nil
	}
	if opts.MaxLocs > 0 && c.NLocs > opts.MaxLocs {
		return nil, nil
	}
	shape, err := Shape(c)
	if err != nil {
		return nil, nil // contradictory coherence constraints
	}
	probe := FirstChoiceInstance(shape)
	if err := probe.Prog.Mem().Validate(); err != nil {
		return nil, fmt.Errorf("synth: %s lowers to an invalid program: %w", c.Word(), err)
	}
	if !opts.KeepDegenerate {
		// The specified outcome must be a candidate execution outcome;
		// candidates are memory-order independent, so one probe
		// instantiation decides for every variant.
		res, err := c11.Evaluate(probe.Prog)
		if err != nil {
			return nil, fmt.Errorf("synth: evaluating %s: %w", c.Word(), err)
		}
		if !res.All[probe.Specified] {
			return nil, nil
		}
	}
	fp := probe.StructuralFingerprint()
	if seen[fp] && !opts.KeepDuplicates {
		return nil, nil
	}
	seen[fp] = true
	return &Synthesized{Cycle: c, Shape: shape, Fingerprint: fp, Novel: !shipped[fp]}, nil
}

// FirstChoiceInstance instantiates a shape with every slot's first
// memory-order choice (rlx for loads and stores) — the canonical probe
// used for shape-level fingerprints (two shapes with the same skeleton
// have identical probes regardless of the order sweep) and the CLI's
// one-representative-per-shape export.
func FirstChoiceInstance(s *litmus.Shape) *litmus.Test {
	orders := make([]c11.Order, len(s.Slots))
	for i, k := range s.Slots {
		orders[i] = k.Choices()[0]
	}
	return s.Instantiate(orders)
}

// shippedFingerprints collects the structural fingerprints of every
// shipped shape, the novelty reference set.
func shippedFingerprints() map[string]bool {
	out := map[string]bool{}
	for _, s := range litmus.AllShapes() {
		out[FirstChoiceInstance(s).StructuralFingerprint()] = true
	}
	return out
}

// ShippedShapeKey returns the structural dedup key of a shipped shape —
// what Enumerate compares synthesized shapes against.
func ShippedShapeKey(s *litmus.Shape) string {
	return FirstChoiceInstance(s).StructuralFingerprint()
}

// NovelOnly filters an enumeration down to the shapes not shipped.
func NovelOnly(in []*Synthesized) []*Synthesized {
	var out []*Synthesized
	for _, s := range in {
		if s.Novel {
			out = append(out, s)
		}
	}
	return out
}

// Shapes projects an enumeration to its litmus templates.
func Shapes(in []*Synthesized) []*litmus.Shape {
	out := make([]*litmus.Shape, len(in))
	for i, s := range in {
		out[i] = s.Shape
	}
	return out
}

// ByName finds an enumerated shape by cycle word or shape name.
func ByName(in []*Synthesized, name string) *Synthesized {
	for _, s := range in {
		if s.Shape.Name == name || s.Cycle.Word() == name {
			return s
		}
	}
	return nil
}

// Stats summarizes an enumeration for reports.
type Stats struct {
	// Cycles is the number of shapes, Novel the subset not shipped.
	Cycles, Novel int
	// Variants is the total memory-order expansion size.
	Variants int
	// ByLen counts shapes per cycle length.
	ByLen map[int]int
}

// Summarize tallies an enumeration.
func Summarize(in []*Synthesized) Stats {
	st := Stats{ByLen: map[int]int{}}
	for _, s := range in {
		st.Cycles++
		if s.Novel {
			st.Novel++
		}
		st.Variants += s.Shape.Variants()
		st.ByLen[s.Cycle.Len()]++
	}
	return st
}

// Lengths returns the sorted cycle lengths present in a Stats.ByLen.
func (st Stats) Lengths() []int {
	var out []int
	for n := range st.ByLen {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}
