package synth

import (
	"fmt"
	"strings"

	"tricheck/internal/c11"
	"tricheck/internal/litmus"
	"tricheck/internal/mem"
)

// This file lowers a resolved critical cycle to a litmus.Shape: a
// concrete program skeleton (threads, events, shared locations, values)
// plus the specified outcome that witnesses the cycle, with memory-order
// placeholders for every access so the shape expands through the
// Figure 5 generator exactly like the hand-written ones.
//
// The lowering picks values so that the specified outcome pins the
// cycle's relations:
//
//   - every write to a location gets a distinct value, 1..k in the
//     coherence order the cycle demands, so a read's observed value pins
//     its reads-from edge;
//   - a read that is an rfe target observes its source's value; a read
//     po-after its own thread's same-location write (a W-pos->R edge)
//     observes that write (CoWR allows nothing older, and the cycle's
//     from-read then demands that write be coherence-before the fre
//     target); any other fre source observes the initial value 0 (the
//     initial write is coherence-before every write, so the from-read
//     edge to the cycle's target write always holds);
//   - a location written more than once gets a final-state memory
//     observer, so the outcome also pins which write is coherence-last
//     (for the common two-writes case this pins the whole coherence
//     order; with three or more writes the interior order is pinned
//     only as far as the cycle's own constraints reach).

// locNames names synthesized locations like the shipped shapes do.
var locNames = []string{"x", "y", "z", "w", "u", "v"}

func locName(i int) string {
	if i < len(locNames) {
		return locNames[i]
	}
	return fmt.Sprintf("v%d", i)
}

// lowered holds the value/coherence solution of a cycle, shared between
// Shape (computed once) and the Build closure (replayed per variant).
type lowered struct {
	c *Cycle
	// value[ev] is the written value for writes, the expected observed
	// value for reads.
	value []int64
	// coByLoc lists, per location, the write events in coherence order.
	coByLoc [][]int
	// opIndex[ev] is the event's program-order index within its thread.
	opIndex []int
	// regOf[ev] is the destination register of each read (-1 for
	// writes); registers number loads globally in lowering order, like
	// the shipped shapes.
	regOf []int
	// specified is the outcome witnessing the cycle.
	specified mem.Outcome
}

// lower solves values and coherence for a resolved cycle. It fails when
// the cycle's coherence constraints are contradictory (e.g. a read both
// observing a write and from-reading to a coherence-earlier one).
func lower(c *Cycle) (*lowered, error) {
	n := c.Len()
	lw := &lowered{c: c}

	// Coherence constraints: explicit coe edges, same-location
	// program-order write pairs (CoWW), and the implied source-before-
	// target constraint of a read that observes some write — an rfe
	// source, or the read's own thread's po-earlier write to the same
	// location (CoWR forces the read to see at least that write, so a
	// W-pos->R read observes it) — and from-reads to another write.
	type pair struct{ a, b int }
	var coLess []pair
	readsFrom := make([]int, n) // the write each read observes, or -1 (init)
	freTgt := make([]int, n)
	for i := range readsFrom {
		readsFrom[i], freTgt[i] = -1, -1
	}
	for i, e := range c.Edges {
		j := (i + 1) % n
		switch e {
		case Coe:
			coLess = append(coLess, pair{i, j})
		case Rfe:
			readsFrom[j] = i
		case Fre:
			freTgt[i] = j
		case Pos:
			switch {
			case c.isWrite[i] && c.isWrite[j]:
				coLess = append(coLess, pair{i, j}) // CoWW
			case c.isWrite[i] && !c.isWrite[j]:
				readsFrom[j] = i // CoWR: the read sees its own thread's write
			}
		}
	}
	for r := 0; r < n; r++ {
		if readsFrom[r] >= 0 && freTgt[r] >= 0 {
			coLess = append(coLess, pair{readsFrom[r], freTgt[r]})
		}
	}

	// Per-location coherence order: Kahn's toposort over the cycle's
	// writes, preferring lowering order among unconstrained writes so
	// the result is deterministic.
	lw.coByLoc = make([][]int, c.NLocs)
	succs := map[int][]int{}
	indeg := make([]int, n)
	for _, p := range coLess {
		succs[p.a] = append(succs[p.a], p.b)
		indeg[p.b]++
	}
	lw.value = make([]int64, n)
	for l := 0; l < c.NLocs; l++ {
		var avail, rest []int
		for ev := 0; ev < n; ev++ {
			if c.loc[ev] == l && c.isWrite[ev] {
				rest = append(rest, ev)
			}
		}
		total := len(rest)
		deg := map[int]int{}
		for _, ev := range rest {
			deg[ev] = indeg[ev]
		}
		for _, ev := range rest {
			if deg[ev] == 0 {
				avail = append(avail, ev)
			}
		}
		var co []int
		for len(avail) > 0 {
			ev := avail[0]
			avail = avail[1:]
			co = append(co, ev)
			lw.value[ev] = int64(len(co))
			for _, s := range succs[ev] {
				deg[s]--
				if deg[s] == 0 {
					avail = append(avail, s)
				}
			}
		}
		if len(co) != total {
			return nil, fmt.Errorf("coherence constraints of %s are cyclic on %s", c.Word(), locName(l))
		}
		lw.coByLoc[l] = co
	}

	// Read values: the observed write's value, or the initial 0.
	for r := 0; r < n; r++ {
		if c.isWrite[r] {
			continue
		}
		if s := readsFrom[r]; s >= 0 {
			lw.value[r] = lw.value[s]
		}
	}

	// Program-order op indices and global load registers. Event order
	// is already thread-by-thread program order (see the lowering-order
	// note in cycle.go).
	lw.opIndex = make([]int, n)
	lw.regOf = make([]int, n)
	perThread := map[int]int{}
	reg := 0
	for ev := 0; ev < n; ev++ {
		lw.opIndex[ev] = perThread[c.thread[ev]]
		perThread[c.thread[ev]]++
		lw.regOf[ev] = -1
		if !c.isWrite[ev] {
			lw.regOf[ev] = reg
			reg++
		}
	}

	// The specified outcome, in observer declaration order: loads
	// first, then the multi-write locations' final values.
	var parts []string
	for ev := 0; ev < n; ev++ {
		if !c.isWrite[ev] {
			parts = append(parts, fmt.Sprintf("r%d=%d", lw.regOf[ev], lw.value[ev]))
		}
	}
	for l := 0; l < c.NLocs; l++ {
		if co := lw.coByLoc[l]; len(co) > 1 {
			parts = append(parts, fmt.Sprintf("%s=%d", locName(l), lw.value[co[len(co)-1]]))
		}
	}
	lw.specified = mem.Outcome(strings.Join(parts, "; "))
	return lw, nil
}

// program instantiates the skeleton with one memory order per event, in
// lowering order (the Shape's slot order).
func (lw *lowered) program(orders []c11.Order) *c11.Program {
	c := lw.c
	names := make([]string, c.NLocs)
	for i := range names {
		names[i] = locName(i)
	}
	p := c11.New(c.NLocs, names...)
	for ev := 0; ev < c.Len(); ev++ {
		th := c.thread[ev]
		addr := mem.Const(int64(c.loc[ev]))
		var ctrl []int
		if c.Edges[(ev-1+c.Len())%c.Len()] == Dep {
			// The incoming dep edge's source is the same thread's
			// previous op, always a load.
			ctrl = []int{lw.opIndex[ev] - 1}
		}
		if c.isWrite[ev] {
			p.StoreDep(th, orders[ev], addr, mem.Const(lw.value[ev]), ctrl)
		} else {
			p.LoadDep(th, orders[ev], addr, lw.regOf[ev], ctrl)
		}
	}
	for ev := 0; ev < c.Len(); ev++ {
		if !c.isWrite[ev] {
			p.Observe(c.thread[ev], lw.regOf[ev], fmt.Sprintf("r%d", lw.regOf[ev]))
		}
	}
	for l := 0; l < c.NLocs; l++ {
		if len(lw.coByLoc[l]) > 1 {
			p.ObserveMem(mem.Loc(l), locName(l))
		}
	}
	return p
}

// Shape lowers the cycle to a litmus template: one memory-order
// placeholder per access, a Build that replays the lowering, and the
// cycle-witnessing outcome as the specified outcome. It fails when the
// cycle's coherence constraints are contradictory.
func Shape(c *Cycle) (*litmus.Shape, error) {
	lw, err := lower(c)
	if err != nil {
		return nil, err
	}
	slots := make([]litmus.SlotKind, c.Len())
	for ev := 0; ev < c.Len(); ev++ {
		if c.isWrite[ev] {
			slots[ev] = litmus.StoreSlot
		} else {
			slots[ev] = litmus.LoadSlot
		}
	}
	return &litmus.Shape{
		Name: c.Name(),
		Description: fmt.Sprintf("synthesized critical cycle %s (%d threads, %d locations)",
			c.Word(), c.NThreads, c.NLocs),
		Paper:         false,
		Slots:         slots,
		Build:         lw.program,
		Specified:     lw.specified,
		SpecifiedNote: "the synthesized critical cycle is witnessed",
	}, nil
}
