package synth

import (
	"reflect"
	"sort"
	"testing"

	"tricheck/internal/c11"
	"tricheck/internal/compile"
	"tricheck/internal/litmus"
)

// TestRediscoversPaperShapes is the regression gate demanded by the
// synthesizer's design: the enumerator must rediscover the paper's own
// shapes as specific critical cycles. For the shapes whose lowering is
// value-for-value identical to the hand-written template (mp, sb, lb,
// wrc, rwc, iriw, and the coherence shapes s, r, 2+2w) the synthesized
// rlx instance must carry the SAME canonical fingerprint as the shipped
// one — the farm would share memoized results between them. CoRR is
// rediscovered in its classic one-write form (the shipped template uses
// a two-write variant), checked structurally.
func TestRediscoversPaperShapes(t *testing.T) {
	res, err := Enumerate(Options{MaxLen: 6, Deps: true})
	if err != nil {
		t.Fatal(err)
	}
	exact := []struct{ word, shipped string }{
		{"po.rfe.po.fre", "mp"},
		{"po.fre.po.fre", "sb"},
		{"po.rfe.po.rfe", "lb"},
		{"po.rfe.po.fre.rfe", "wrc"},
		{"po.fre.po.fre.rfe", "rwc"},
		{"po.fre.rfe.po.fre.rfe", "iriw"},
		{"po.rfe.po.coe", "s"},
		{"po.coe.po.fre", "r"},
		{"po.coe.po.coe", "2+2w"},
	}
	for _, want := range exact {
		s := ByName(res, want.word)
		if s == nil {
			t.Errorf("cycle %s (%s) not enumerated", want.word, want.shipped)
			continue
		}
		shipped := litmus.ShapeByName(want.shipped)
		if shipped == nil {
			t.Fatalf("shipped shape %s missing", want.shipped)
		}
		if s.Novel {
			t.Errorf("%s: rediscovered %s marked novel", want.word, want.shipped)
		}
		synthFP := FirstChoiceInstance(s.Shape).Fingerprint()
		shippedFP := FirstChoiceInstance(shipped).Fingerprint()
		if want.shipped == "s" || want.shipped == "r" || want.shipped == "2+2w" {
			// The coherence shapes number their written values by
			// authoring convention, not coherence position: identical
			// modulo value numbering (structural), not value-for-value.
			synthFP = FirstChoiceInstance(s.Shape).StructuralFingerprint()
			shippedFP = ShippedShapeKey(shipped)
		}
		if synthFP != shippedFP {
			t.Errorf("%s: fingerprint differs from shipped %s\n synth: %s\n shipped: %s",
				want.word, want.shipped, FirstChoiceInstance(s.Shape).Prog, FirstChoiceInstance(shipped).Prog)
		}
		// The slot multiset must agree too (synth orders slots by its
		// own thread walk), so the Figure 5 expansion visits the same
		// variant space.
		if want.shipped != "s" && want.shipped != "r" && want.shipped != "2+2w" {
			if !reflect.DeepEqual(sortedSlots(s.Shape.Slots), sortedSlots(shipped.Slots)) {
				t.Errorf("%s: slots %v, shipped %s has %v", want.word, s.Shape.Slots, want.shipped, shipped.Slots)
			}
			if s.Shape.Specified != shipped.Specified {
				t.Errorf("%s: specified %q, shipped %s has %q", want.word, s.Shape.Specified, want.shipped, shipped.Specified)
			}
		}
	}

	// W-pos->R lowering (CoWR): a read po-after its own thread's
	// same-location write observes that write, so cycles with such
	// edges lower to satisfiable outcomes instead of being pruned...
	cowr := ByName(res, "pos.fre.pos.fre.rfe")
	if cowr == nil {
		t.Error("cycle pos.fre.pos.fre.rfe (W-pos->R class) not enumerated")
	} else if cowr.Shape.Specified != "r0=2; r1=0; r2=1; x=2" {
		t.Errorf("pos.fre.pos.fre.rfe specified %q, want the CoWR-pinned outcome", cowr.Shape.Specified)
	}
	// ...while genuinely contradictory ones (both reads observing their
	// own write and from-reading the other's) stay rejected.
	if ByName(res, "pos.fre.pos.fre") != nil {
		t.Error("pos.fre.pos.fre has a coherence cycle and must be rejected")
	}

	// CoRR: the classic one-write read-read coherence cycle.
	corr := ByName(res, "pos.fre.rfe")
	if corr == nil {
		t.Fatal("cycle pos.fre.rfe (corr) not enumerated")
	}
	if corr.Cycle.NThreads != 2 || corr.Cycle.NLocs != 1 || corr.Cycle.Len() != 3 {
		t.Errorf("corr cycle: threads=%d locs=%d len=%d, want 2/1/3",
			corr.Cycle.NThreads, corr.Cycle.NLocs, corr.Cycle.Len())
	}
	if corr.Shape.Specified != "r0=1; r1=0" {
		t.Errorf("corr specified %q, want the stale second read", corr.Shape.Specified)
	}
}

// TestEnumerationDeterministic: two enumerations yield the same words in
// the same order, and every word is its own minimal rotation and unique.
func TestEnumerationDeterministic(t *testing.T) {
	a, err := Enumerate(Options{MaxLen: 5, Deps: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Enumerate(Options{MaxLen: 5, Deps: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("enumeration size changed across runs: %d vs %d", len(a), len(b))
	}
	seen := map[string]bool{}
	for i := range a {
		if a[i].Cycle.Word() != b[i].Cycle.Word() {
			t.Fatalf("enumeration order changed at %d: %s vs %s", i, a[i].Cycle.Word(), b[i].Cycle.Word())
		}
		w := a[i].Cycle.Word()
		if seen[w] {
			t.Errorf("duplicate word %s", w)
		}
		seen[w] = true
		if !minimalRotation(a[i].Cycle.Edges) {
			t.Errorf("%s is not a minimal rotation", w)
		}
	}
}

// TestBounds: thread/location/length bounds filter as documented.
func TestBounds(t *testing.T) {
	res, err := Enumerate(Options{MaxLen: 6, MaxThreads: 2, MaxLocs: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res {
		if s.Cycle.NThreads > 2 || s.Cycle.NLocs > 2 || s.Cycle.Len() > 6 {
			t.Errorf("%s exceeds bounds: threads=%d locs=%d len=%d",
				s.Cycle.Word(), s.Cycle.NThreads, s.Cycle.NLocs, s.Cycle.Len())
		}
	}
	if ByName(res, "po.fre.rfe.po.fre.rfe") != nil {
		t.Error("iriw (4 threads) survived MaxThreads=2")
	}
	if ByName(res, "po.fre.po.fre") == nil {
		t.Error("sb (2 threads, 2 locs) filtered out")
	}
}

// TestShapesAreCriticalCycles: every synthesized shape's specified
// outcome is (a) a candidate execution outcome — it can be reached at
// the enumeration layer — and (b) forbidden by C11 when every access is
// seq_cst — i.e. the shape witnesses a genuine SC-violating cycle, like
// each of the paper's hand-written shapes.
func TestShapesAreCriticalCycles(t *testing.T) {
	res, err := Enumerate(Options{MaxLen: 5, Deps: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("empty enumeration")
	}
	for _, s := range res {
		probe := FirstChoiceInstance(s.Shape)
		if err := probe.Prog.Mem().Validate(); err != nil {
			t.Errorf("%s: invalid program: %v", s.Cycle.Word(), err)
			continue
		}
		r, err := c11.Evaluate(probe.Prog)
		if err != nil {
			t.Fatalf("%s: %v", s.Cycle.Word(), err)
		}
		if !r.All[probe.Specified] {
			t.Errorf("%s: specified %q is not a candidate outcome", s.Cycle.Word(), probe.Specified)
		}
		sc := make([]c11.Order, len(s.Shape.Slots))
		for i := range sc {
			sc[i] = c11.SC
		}
		scInst := s.Shape.Instantiate(sc)
		rsc, err := c11.Evaluate(scInst.Prog)
		if err != nil {
			t.Fatalf("%s: %v", s.Cycle.Word(), err)
		}
		if rsc.Allowed[scInst.Specified] {
			t.Errorf("%s: specified %q allowed under all-seq_cst — not a critical cycle",
				s.Cycle.Word(), scInst.Specified)
		}
	}
}

// TestExpandsAndCompiles: synthesized shapes expand through the
// Figure 5 generator (3^slots variants) and lower through a compiler
// mapping — toolflow step 2 — without error.
func TestExpandsAndCompiles(t *testing.T) {
	res, err := Enumerate(Options{MaxLen: 4, Deps: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res {
		tests := s.Shape.Generate()
		want := 1
		for range s.Shape.Slots {
			want *= 3
		}
		if len(tests) != want {
			t.Errorf("%s: %d variants, want %d", s.Cycle.Word(), len(tests), want)
		}
		for _, m := range []*compile.Mapping{compile.RISCVBaseIntuitive, compile.RISCVBaseRefined} {
			if _, err := compile.Compile(m, tests[0].Prog); err != nil {
				t.Errorf("%s: compile with %s: %v", s.Cycle.Word(), m.Name, err)
			}
		}
	}
}

// TestDuplicateCollapse: a rotation of an enumerated word lowers to a
// structurally identical shape (the fingerprint collapses it onto the
// canonical form), the rotation filter rejects non-minimal words, and
// the deduplicated enumeration has pairwise-distinct fingerprints.
func TestDuplicateCollapse(t *testing.T) {
	// mp rotated to start at its other run boundary.
	rotated := []EdgeKind{Po, Fre, Po, Rfe}
	if minimalRotation(rotated) {
		t.Error("po.fre.po.rfe should not be a minimal rotation (po.rfe.po.fre is smaller)")
	}
	c, err := resolve(rotated)
	if err != nil {
		t.Fatal(err)
	}
	rotShape, err := Shape(c)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Enumerate(Options{MaxLen: 4})
	if err != nil {
		t.Fatal(err)
	}
	mp := ByName(res, "po.rfe.po.fre")
	if mp == nil {
		t.Fatal("mp cycle missing")
	}
	if got := FirstChoiceInstance(rotShape).StructuralFingerprint(); got != mp.Fingerprint {
		t.Error("rotated mp cycle does not collapse onto the canonical word")
	}

	seen := map[string]string{}
	all, err := Enumerate(Options{MaxLen: 6, Deps: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range all {
		if prev, ok := seen[s.Fingerprint]; ok {
			t.Errorf("shapes %s and %s share a structural fingerprint after dedup", prev, s.Cycle.Word())
		}
		seen[s.Fingerprint] = s.Cycle.Word()
	}
}

func sortedSlots(in []litmus.SlotKind) []litmus.SlotKind {
	out := append([]litmus.SlotKind(nil), in...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
