package synth

import (
	"os"
	"path/filepath"
	"testing"

	"tricheck/internal/compile"
	"tricheck/internal/core"
	"tricheck/internal/corpus"
	"tricheck/internal/litmus"
	"tricheck/internal/uspec"
)

// TestSynthesizedSweepFindsNMCABugs is the end-to-end acceptance gate:
// a bounded synthesized sweep through the verification farm must
// reproduce the paper's known nMCA bugs on the riscv-curr Base stack
// AND report Bug verdicts on shapes outside the shipped set — i.e. the
// synthesizer finds real full-stack bugs on tests nobody wrote — with
// results identical across farm worker counts.
func TestSynthesizedSweepFindsNMCABugs(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-thousand-test synthesized sweep")
	}
	res, err := Enumerate(Options{MaxLen: 5, Deps: true})
	if err != nil {
		t.Fatal(err)
	}
	var tests []*litmus.Test
	byShape := map[string]*Synthesized{}
	for _, s := range res {
		byShape[s.Shape.Name] = s
		tests = append(tests, s.Shape.Generate()...)
	}
	stack := core.Stack{Mapping: compile.RISCVBaseIntuitive, Model: uspec.NMM(uspec.Curr)}

	run := func(workers int) *core.SuiteResult {
		t.Helper()
		eng := core.NewEngine()
		sr, err := eng.RunSuite(tests, stack, workers)
		if err != nil {
			t.Fatal(err)
		}
		return sr
	}
	sr := run(0)

	// Known nMCA bugs, rediscovered through synthesized shapes: the
	// wrc cycle hits the paper's 108 buggy Base/nMM variants, the rwc
	// cycle its 2 (Section 6.1); both lower to programs fingerprint-
	// identical to the shipped suite's.
	wantKnown := map[string]int{
		"syn-po.rfe.po.fre.rfe": 108, // wrc
		"syn-po.fre.po.fre.rfe": 2,   // rwc
	}
	for fam, want := range wantKnown {
		got, ok := sr.ByFamily[fam]
		if !ok {
			t.Fatalf("family %s missing from sweep", fam)
		}
		if got.SpecifiedBugs != want {
			t.Errorf("%s: %d specified bugs, want %d", fam, got.SpecifiedBugs, want)
		}
	}

	// Novel shapes — outside the shipped ten — with Bug verdicts. The
	// exact counts are pinned so a toolflow regression cannot silently
	// shrink the finding: the one-write CoRR cycle (6), the CO-RSDWI-
	// like coherence cycle (54), and W+RWC (2), a named diy shape the
	// paper never evaluated.
	wantNovel := map[string]int{
		"syn-pos.fre.rfe":         6,
		"syn-pos.coe.rfe.pos.fre": 54,
		"syn-pos.fre.pos.fre.rfe": 54, // W-pos->R (CoWR) class
		"syn-po.coe.po.fre.rfe":   2,  // W+RWC
	}
	novelBugShapes := 0
	for fam, tally := range sr.ByFamily {
		s := byShape[fam]
		if s == nil {
			t.Fatalf("unexpected family %s", fam)
		}
		if s.Novel && tally.Bugs > 0 {
			novelBugShapes++
		}
	}
	if novelBugShapes == 0 {
		t.Error("no Bug verdict on any shape outside the shipped set")
	}
	for fam, want := range wantNovel {
		s := byShape[fam]
		if s == nil || !s.Novel {
			t.Errorf("%s missing or not novel", fam)
			continue
		}
		if got := sr.ByFamily[fam].SpecifiedBugs; got != want {
			t.Errorf("%s: %d specified bugs, want %d", fam, got, want)
		}
	}

	// Determinism across worker counts: single-threaded and heavily
	// sharded farm runs must agree verdict for verdict.
	for _, workers := range []int{1, 7} {
		other := run(workers)
		for i, r := range sr.Results {
			o := other.Results[i]
			if r.Verdict != o.Verdict || r.SpecifiedBug != o.SpecifiedBug {
				t.Fatalf("workers=%d: verdict for %s diverged (%s vs %s)",
					workers, r.Test.Name, r.Verdict, o.Verdict)
			}
		}
	}
}

// TestSynthesizedCorpusRoundTrip: synthesized shapes export to the
// on-disk corpus, reload, and keep their canonical fingerprints — so a
// synthesized corpus can be re-verified later (or elsewhere) with full
// memo-cache reuse.
func TestSynthesizedCorpusRoundTrip(t *testing.T) {
	res, err := Enumerate(Options{MaxLen: 4, Deps: true})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	var tests []*litmus.Test
	for _, s := range res {
		// One representative variant per shape keeps the test quick
		// while covering every lowering feature (deps, memobs, ...).
		tests = append(tests, s.Shape.Generate()[0])
	}
	n, err := corpus.Export(dir, tests)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(tests) {
		t.Fatalf("exported %d files, want %d", n, len(tests))
	}
	c, err := corpus.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != len(tests) {
		t.Fatalf("corpus has %d tests, want %d", c.Len(), len(tests))
	}
	want := map[string]string{}
	for _, tst := range tests {
		want[tst.Name] = tst.Fingerprint()
	}
	for _, e := range c.Entries {
		if fp, ok := want[e.Name]; !ok {
			t.Errorf("unexpected corpus test %s", e.Name)
		} else if e.Test.Fingerprint() != fp {
			t.Errorf("%s: fingerprint drifted across corpus round trip", e.Name)
		}
		// Families nest one directory per shape.
		if filepath.Dir(e.Path) == "." {
			t.Errorf("%s: exported flat, want <family>/<name>.litmus", e.Path)
		}
	}
	// The exported files are real herd-format files on disk.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != len(res) {
		t.Errorf("%d family directories, want %d", len(ents), len(res))
	}
}
