package synth

import (
	"fmt"
	"strings"
)

// EdgeKind is one relation of the critical-cycle alphabet. Program-order
// edges relate two events of the same thread; communication edges relate
// events of different threads ("external" in herd terminology) accessing
// the same location.
type EdgeKind uint8

// The alphabet, in canonical order (cycle words are deduplicated by
// minimal rotation under this order, so the order is part of the
// enumerator's output contract).
const (
	// Po is program order between accesses to different locations.
	Po EdgeKind = iota
	// Pos is program order between accesses to the same location (the
	// coherence-test edge: CoRR's two reads, CoWW's two writes, ...).
	Pos
	// Dep is program order to a different location carrying a
	// dependency: the target is control-dependent on the source load.
	Dep
	// Rfe is external reads-from: a write to the read observing it on
	// another thread.
	Rfe
	// Coe is external coherence order: a write to a coherence-later
	// write on another thread.
	Coe
	// Fre is external from-reads: a read to a write (on another thread)
	// that is coherence-after the read's source.
	Fre

	numEdgeKinds
)

// String returns the edge's conventional lower-case name.
func (k EdgeKind) String() string {
	switch k {
	case Po:
		return "po"
	case Pos:
		return "pos"
	case Dep:
		return "dep"
	case Rfe:
		return "rfe"
	case Coe:
		return "coe"
	case Fre:
		return "fre"
	}
	return fmt.Sprintf("EdgeKind(%d)", uint8(k))
}

// IsProgramOrder reports whether the edge stays within one thread.
func (k EdgeKind) IsProgramOrder() bool { return k <= Dep }

// IsComm reports whether the edge is a communication (external) edge.
func (k EdgeKind) IsComm() bool { return k >= Rfe }

// SameLoc reports whether the edge's endpoints access the same location.
func (k EdgeKind) SameLoc() bool { return k == Pos || k.IsComm() }

// evKind constrains what an event can be while a word is being resolved.
type evKind uint8

const (
	evAny evKind = iota
	evRead
	evWrite
	evConflict
)

// srcKind returns the event kind an edge requires of its source.
func (k EdgeKind) srcKind() evKind {
	switch k {
	case Rfe, Coe:
		return evWrite
	case Fre, Dep:
		// A from-read starts at a read; a dependency is carried by a
		// loaded value.
		return evRead
	}
	return evAny
}

// tgtKind returns the event kind an edge requires of its target.
func (k EdgeKind) tgtKind() evKind {
	switch k {
	case Rfe:
		return evRead
	case Coe, Fre:
		return evWrite
	}
	return evAny
}

func mergeKind(a, b evKind) evKind {
	switch {
	case a == evAny:
		return b
	case b == evAny || a == b:
		return a
	}
	return evConflict
}

// composable reports whether edge a immediately followed by edge b is
// redundant because the pair composes into a single alphabet edge — in
// which case the cycle is not critical (dropping the middle event gives
// a shorter cycle with the same meaning):
//
//	rf;fr ⊆ co    co;co ⊆ co    fr;co ⊆ fr
//
// The two non-composable communication adjacencies, co;rf and fr;rf,
// remain allowed — they are the diy generators' Ws;Rf and Fr;Rf pairs
// (IRIW needs fr;rf).
func composable(a, b EdgeKind) bool {
	switch {
	case a == Rfe && b == Fre:
		return true
	case a == Coe && b == Coe:
		return true
	case a == Fre && b == Coe:
		return true
	}
	return false
}

// Cycle is one resolved critical cycle: a canonical edge word plus the
// event structure it induces. Event i is the source of Edges[i] and the
// target of Edges[i-1] (cyclically).
type Cycle struct {
	// Edges is the canonical (minimal-rotation) edge word.
	Edges []EdgeKind

	// isWrite classifies each event (false = read).
	isWrite []bool
	// thread assigns each event its dense thread id; threads are
	// maximal program-order runs along the cycle.
	thread []int
	// loc assigns each event its dense location id; locations are the
	// equivalence classes of the same-location edges.
	loc []int

	// NThreads and NLocs are the derived counts.
	NThreads, NLocs int
}

// Lowering order note: because canonical words start at a run boundary
// and runs are contiguous along the cycle, event order 0..n-1 already
// IS thread-by-thread program order — the lowering iterates events in
// cycle order directly.

// Len returns the number of edges (= events) in the cycle.
func (c *Cycle) Len() int { return len(c.Edges) }

// Word renders the canonical edge word, e.g. "po.rfe.po.fre".
func (c *Cycle) Word() string {
	parts := make([]string, len(c.Edges))
	for i, e := range c.Edges {
		parts[i] = e.String()
	}
	return strings.Join(parts, ".")
}

// Name returns the shape name derived from the word ("syn-po.rfe.po.fre").
func (c *Cycle) Name() string { return "syn-" + c.Word() }

// minimalRotation reports whether w is lexicographically minimal among
// its rotations (ties with a rotation of itself are fine: the word IS
// the canonical form).
func minimalRotation(w []EdgeKind) bool {
	n := len(w)
	for s := 1; s < n; s++ {
		for i := 0; i < n; i++ {
			a, b := w[(s+i)%n], w[i]
			if a < b {
				return false
			}
			if a > b {
				break
			}
		}
	}
	return true
}

// resolve derives the event structure of an edge word, or reports why
// the word is not a well-formed critical cycle. The word must already
// satisfy the adjacency constraints enforced by the enumerator.
func resolve(word []EdgeKind) (*Cycle, error) {
	n := len(word)
	if n < 3 {
		return nil, fmt.Errorf("cycle too short")
	}
	c := &Cycle{Edges: append([]EdgeKind(nil), word...)}

	// Event kinds: each event is the target of the previous edge and
	// the source of its own. The no-adjacent-po rule guarantees every
	// event touches at least one communication edge, so no kind is
	// left unconstrained.
	c.isWrite = make([]bool, n)
	for i := 0; i < n; i++ {
		in := word[(i-1+n)%n]
		k := mergeKind(in.tgtKind(), word[i].srcKind())
		switch k {
		case evConflict:
			return nil, fmt.Errorf("event %d: incompatible edge kinds %s→%s", i, in, word[i])
		case evAny:
			return nil, fmt.Errorf("event %d: unconstrained kind (adjacent po edges?)", i)
		}
		c.isWrite[i] = k == evWrite
	}

	// Threads: maximal program-order runs. The canonical word starts
	// with its minimal edge; a cycle with any po-family edge therefore
	// starts with one, and its first event's incoming edge (the last
	// edge) is communication — so event 0 always starts a run. All-comm
	// words trivially start runs everywhere.
	if word[n-1].IsProgramOrder() && word[0].IsProgramOrder() {
		return nil, fmt.Errorf("adjacent program-order edges across the seam")
	}
	c.thread = make([]int, n)
	th := -1
	for i := 0; i < n; i++ {
		if !word[(i-1+n)%n].IsProgramOrder() {
			th++ // incoming communication edge: new thread
		}
		if th < 0 {
			return nil, fmt.Errorf("cycle has no communication edge")
		}
		c.thread[i] = th
	}
	c.NThreads = th + 1
	if c.NThreads < 2 {
		return nil, fmt.Errorf("single-thread cycle")
	}
	// Externality: every communication edge must cross threads. Runs
	// partition the cycle, so this can only fail when one run wraps the
	// whole cycle (exactly one communication edge).
	for i, e := range word {
		if e.IsComm() && c.thread[i] == c.thread[(i+1)%n] {
			return nil, fmt.Errorf("communication edge %d is internal", i)
		}
	}

	// Locations: union same-location edge endpoints, then demand that
	// po/dep edges (different-location by definition) cross classes.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for i, e := range word {
		if e.SameLoc() {
			a, b := find(i), find((i+1)%n)
			if a != b {
				parent[a] = b
			}
		}
	}
	for i, e := range word {
		if e.IsProgramOrder() && !e.SameLoc() && find(i) == find((i+1)%n) {
			return nil, fmt.Errorf("different-location edge %d collapsed to one location", i)
		}
	}
	c.loc = make([]int, n)
	classID := map[int]int{}
	for ev := 0; ev < n; ev++ {
		root := find(ev)
		id, ok := classID[root]
		if !ok {
			id = len(classID)
			classID[root] = id
		}
		c.loc[ev] = id
	}
	c.NLocs = len(classID)
	return c, nil
}
