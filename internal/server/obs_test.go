package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"tricheck/internal/obs"
)

// TestVerifyStreamCarriesTraceID pins the correlation contract: every
// record of one /v1/verify stream — verdicts and summary — carries the
// same non-empty request trace ID, and distinct requests get distinct
// IDs.
func TestVerifyStreamCarriesTraceID(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := VerifyRequest{Family: "corr", ISA: "base", Variant: "curr"}

	verdicts, summary, err := drainStreamE(postVerify(t, ts.URL, req))
	if err != nil {
		t.Fatal(err)
	}
	if len(verdicts) == 0 || summary == nil {
		t.Fatalf("stream: %d verdicts, summary %v", len(verdicts), summary)
	}
	trace := summary.Trace
	if len(trace) != 16 {
		t.Fatalf("summary trace %q, want 16 hex chars", trace)
	}
	for _, v := range verdicts {
		if v.Trace != trace {
			t.Fatalf("verdict trace %q != summary trace %q", v.Trace, trace)
		}
	}
	if summary.ElapsedSeconds < 0 {
		t.Errorf("negative elapsed %v", summary.ElapsedSeconds)
	}
	if summary.TestsPerSecond <= 0 {
		t.Errorf("tests/sec = %v, want > 0 on a completed sweep", summary.TestsPerSecond)
	}

	_, summary2, err := drainStreamE(postVerify(t, ts.URL, req))
	if err != nil {
		t.Fatal(err)
	}
	if summary2.Trace == trace {
		t.Error("two requests shared a trace ID")
	}
}

// TestMetricsEndpoint pins the exposition: valid content type, the
// process registry's farm/verdict families present after a sweep, and
// the server's own counters rendered alongside.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	drainStream(t, postVerify(t, ts.URL, VerifyRequest{Family: "corr", ISA: "base", Variant: "curr"}))

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		"# TYPE tricheck_farm_jobs_total counter",
		"# TYPE tricheck_verdict_phase_seconds histogram",
		`tricheck_verdict_phase_seconds_bucket{phase="enumerate",le="+Inf"}`,
		"# TYPE tricheckd_requests_total counter",
		"tricheckd_requests_total 1",
		"# TYPE tricheckd_requests_inflight gauge",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics lacks %q", want)
		}
	}
}

// TestTracesEndpoint pins /v1/traces: a JSON array that, after a
// request, contains that request's root verify span.
func TestTracesEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, summary := drainStream(t, postVerify(t, ts.URL, VerifyRequest{Family: "corr", ISA: "base", Variant: "curr"}))

	resp, err := http.Get(ts.URL + "/v1/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s", resp.Status)
	}
	var traces []obs.TraceRecord
	if err := json.NewDecoder(resp.Body).Decode(&traces); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, tr := range traces {
		if tr.TraceS == summary.Trace && tr.Name == "verify" {
			found = true
			if tr.Dur <= 0 {
				t.Errorf("verify span duration %v", tr.Dur)
			}
		}
	}
	if !found {
		t.Errorf("request trace %s not in the slow-span ring (%d spans)", summary.Trace, len(traces))
	}
}

// TestPprofGate pins that /debug/pprof/ is 404 by default and live only
// with Config.EnablePprof.
func TestPprofGate(t *testing.T) {
	_, off := newTestServer(t, Config{})
	resp, err := http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof off: status %s, want 404", resp.Status)
	}

	_, on := newTestServer(t, Config{EnablePprof: true})
	resp, err = http.Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof on: status %s, want 200", resp.Status)
	}
}
