package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"tricheck/api"
	"tricheck/internal/core"
	"tricheck/internal/fleet"
	"tricheck/internal/obs"
)

// This file is the server's fleet face: coordinator-mode /v1/verify
// (resolve locally, shard by memo key, stream the coordinator's merged
// records) and the memo-replication endpoints every worker serves so a
// coordinator can warm-start (re)joining peers.

// maxSnapshotBytes bounds a /v1/memo/load body. Memo snapshots are far
// larger than request bodies — a full paper sweep's cache serializes to
// tens of MB — so they get their own cap.
const maxSnapshotBytes = 256 << 20

// keyFilter turns a request's Keys allowlist into the sweep's keep
// predicate (nil = keep everything).
func keyFilter(keys []string) func(string) bool {
	if len(keys) == 0 {
		return nil
	}
	set := make(map[string]bool, len(keys))
	for _, k := range keys {
		set[k] = true
	}
	return func(key string) bool { return set[key] }
}

// handleFleetVerify is coordinator-mode /v1/verify: resolve the request
// against the same builtin corpus/model matrix the workers hold,
// compute each (test, stack) pair's content-addressed memo key, and let
// the coordinator shard, hedge and merge. The merged stream is
// byte-compatible with a single node's: same record schema, done/total
// renumbered to the merged frame, this coordinator's trace ID stamped
// on every record.
func (s *Server) handleFleetVerify(w http.ResponseWriter, r *http.Request) {
	var req VerifyRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeBadRequest(w, fmt.Errorf("bad request body: %w", err))
		return
	}
	tests, stacks, backend, err := resolve(&req)
	if err != nil {
		writeBadRequest(w, err)
		return
	}
	keep := keyFilter(req.Keys)

	// Jobs in the same stack-major order the engine sweeps in, so the
	// merged summary's stack order matches a single node's.
	var jobs []fleet.Job
	for _, st := range stacks {
		for _, t := range tests {
			key := core.JobKeyBackend(t, st, backend)
			if keep != nil && !keep(key) {
				continue
			}
			jobs = append(jobs, fleet.Job{
				Key:    key,
				Test:   t.Name,
				Stack:  st.Name(),
				Family: t.Shape.Name,
			})
		}
	}

	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	span := obs.DefaultTraces.Start(0, 0, "fleet-verify")
	traceHex := span.Trace().String()
	span.Attr("tests", fmt.Sprint(len(tests)))
	span.Attr("stacks", fmt.Sprint(len(stacks)))
	span.Attr("workers", fmt.Sprint(len(s.fleet.Workers())))
	defer span.End()

	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	case <-ctx.Done():
		return
	}
	s.requests.Add(1)
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	begin := time.Now()
	s.mu.Lock()
	s.nextSweepID++
	sweepID := s.nextSweepID
	s.sweepStarts[sweepID] = begin
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.sweepStarts, sweepID)
		s.mu.Unlock()
		s.busyNanos.Add(time.Since(begin).Nanoseconds())
	}()
	s.log.Printf("verify[%s]: fleet sweep, %d jobs over %d workers", traceHex, len(jobs), len(s.fleet.Workers()))

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	enc := json.NewEncoder(w)
	rc := http.NewResponseController(w)
	var armedAt time.Time
	arm := func() {
		if time.Since(armedAt) > writeTimeout/4 {
			armedAt = time.Now()
			rc.SetWriteDeadline(armedAt.Add(writeTimeout))
		}
	}

	// The coordinator serializes emit calls under its merge lock, so the
	// encoder needs no extra locking. A failed write aborts the sweep
	// through the returned error, exactly like a local disconnect.
	pending := 0
	sum, err := s.fleet.Sweep(ctx, req, jobs, func(v *api.VerdictRecord) error {
		arm()
		v.Trace = traceHex
		if err := enc.Encode(v); err != nil {
			cancel()
			return err
		}
		s.verdicts.Add(1)
		if pending++; pending >= 256 {
			pending = 0
			flush()
		}
		return nil
	})
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			s.cancels.Add(1)
		} else {
			s.errors.Add(1)
		}
		s.log.Printf("verify[%s]: fleet sweep aborted: %v", traceHex, err)
		rc.SetWriteDeadline(time.Now().Add(writeTimeout))
		enc.Encode(ErrorRecord{Type: "error", Error: err.Error()})
		flush()
		return
	}
	sum.Trace = traceHex
	rc.SetWriteDeadline(time.Now().Add(writeTimeout))
	enc.Encode(sum)
	flush()
	s.log.Printf("verify[%s]: fleet sweep %d/%d done in %s (bugs=%d strict=%d equiv=%d divergent=%d)",
		traceHex, sum.Done, sum.Total, time.Since(begin).Round(time.Millisecond), sum.Bugs, sum.Strict, sum.Equivalent, sum.Divergent)
}

// handleMemoSnapshot serves a slice of this worker's memo cache as a
// farm snapshot. Without parameters it is the whole cache; with
// ?owner=<url>&ring=<url,url,...>&vnodes=<n> only the entries the
// consistent-hash ring assigns to owner — the coordinator's rebalance
// primitive (each donor computes the joiner's slice locally, so the
// coordinator never holds a full cache in memory).
func (s *Server) handleMemoSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	q := r.URL.Query()
	var keep func(string) bool
	if owner := q.Get("owner"); owner != "" {
		nodes := strings.Split(q.Get("ring"), ",")
		vnodes := 0
		if v := q.Get("vnodes"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				http.Error(w, "bad vnodes", http.StatusBadRequest)
				return
			}
			vnodes = n
		}
		ring := fleet.NewRing(nodes, vnodes)
		if ring.Len() == 0 {
			http.Error(w, "owner requires a non-empty ring", http.StatusBadRequest)
			return
		}
		keep = func(key string) bool { return ring.Owner(key) == owner }
	}
	data, err := s.eng.MemoSnapshotSlice(keep)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

// handleMemoLoad merges a posted memo snapshot into this worker's cache
// (last write wins per key; disjoint keys all survive — the farm
// snapshot merge semantics the coordinator's rebalance relies on).
func (s *Server) handleMemoLoad(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSnapshotBytes))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := s.eng.MergeMemoSnapshot(data); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if st, ok := s.eng.MemoStats(); ok {
		s.log.Printf("memo load: cache now %d entries", st.Len)
	}
	fmt.Fprintln(w, "ok")
}
