package server

import (
	"fmt"

	"tricheck/api"
	"tricheck/internal/core"
	"tricheck/internal/corpus"
	"tricheck/internal/litmus"
	"tricheck/internal/uspec"
)

// This file is the one place a /v1/verify request body is validated and
// resolved into a sweep. The request's fields constrain each other:
//
//	litmus / suite / family   exactly one selects the tests
//	suite                     "paper" or "all"
//	family                    a known shape name (mp, sb, wrc, ...)
//	isa                       "base", "base+a" or "both" (default both)
//	variant                   "curr", "ours" or "both" (default both);
//	                          mutually exclusive with models — an inline
//	                          spec carries its own variant directive
//	models                    each entry a valid µspec spec; display
//	                          names must be unique
//	backend                   "uhb" (default), "opsim" or "both"; under
//	                          "opsim" every resolved model must be within
//	                          the simulators' capability (under "both" an
//	                          unsupported model degrades to a per-stack
//	                          skip note instead)
//
// Every violation is reported as a *BadRequestError carrying an
// api.ErrorResponse that names the offending field(s), so clients can
// point at the exact input instead of parsing prose.

// BadRequestError is a 400 with a structured body.
type BadRequestError struct {
	Resp api.ErrorResponse
}

func (e *BadRequestError) Error() string { return e.Resp.Error }

// badField builds a single-field BadRequestError.
func badField(field, format string, args ...any) *BadRequestError {
	msg := fmt.Sprintf(format, args...)
	return &BadRequestError{Resp: api.ErrorResponse{
		Error:  msg,
		Fields: []api.FieldError{{Field: field, Message: msg}},
	}}
}

// badFields builds a BadRequestError naming several mutually-conflicting
// fields with one shared message.
func badFields(fields []string, format string, args ...any) *BadRequestError {
	msg := fmt.Sprintf(format, args...)
	e := &BadRequestError{Resp: api.ErrorResponse{Error: msg}}
	for _, f := range fields {
		e.Resp.Fields = append(e.Resp.Fields, api.FieldError{Field: f, Message: msg})
	}
	return e
}

// resolve validates a request against the constraint matrix above and
// returns the sweep's tests, stacks and backend. Any error is a
// *BadRequestError.
func resolve(req *VerifyRequest) ([]*litmus.Test, []core.Stack, core.Backend, error) {
	backend, err := core.ParseBackend(req.Backend)
	if err != nil {
		return nil, nil, 0, badField("backend", "%v", err)
	}
	tests, rerr := resolveTests(req)
	if rerr != nil {
		return nil, nil, 0, rerr
	}
	stacks, rerr := resolveStacks(req)
	if rerr != nil {
		return nil, nil, 0, rerr
	}
	if backend == core.BackendOpsim {
		if err := core.ValidateBackendStacks(backend, stacks); err != nil {
			return nil, nil, 0, badField("backend", "backend \"opsim\": %v (use backend \"both\" to cross-check where possible)", err)
		}
	}
	return tests, stacks, backend, nil
}

// resolveTests applies the litmus/suite/family selector rules.
func resolveTests(req *VerifyRequest) ([]*litmus.Test, *BadRequestError) {
	var set []string
	if len(req.Litmus) > 0 {
		set = append(set, "litmus")
	}
	if req.Suite != "" {
		set = append(set, "suite")
	}
	if req.Family != "" {
		set = append(set, "family")
	}
	if len(set) == 0 {
		return nil, badFields([]string{"litmus", "suite", "family"}, "exactly one of litmus, suite or family must be set")
	}
	if len(set) > 1 {
		return nil, badFields(set, "exactly one of litmus, suite or family must be set")
	}
	switch set[0] {
	case "litmus":
		tests, err := corpus.ParseStrings(req.Litmus)
		if err != nil {
			return nil, badField("litmus", "%v", err)
		}
		return tests, nil
	case "suite":
		switch req.Suite {
		case "paper":
			return litmus.PaperSuite(), nil
		case "all":
			var tests []*litmus.Test
			for _, shape := range litmus.AllShapes() {
				tests = append(tests, shape.Generate()...)
			}
			return tests, nil
		}
		return nil, badField("suite", "unknown suite %q (want paper or all)", req.Suite)
	default:
		shape := litmus.ShapeByName(req.Family)
		if shape == nil {
			return nil, badField("family", "unknown family %q", req.Family)
		}
		return shape.Generate(), nil
	}
}

// resolveStacks applies the isa/variant/models selector rules.
func resolveStacks(req *VerifyRequest) ([]core.Stack, *BadRequestError) {
	isa := req.ISA
	if isa == "" {
		isa = "both"
	}
	switch isa {
	case "base", "base+a", "both":
	default:
		return nil, badField("isa", "unknown ISA flavour %q (want base, base+a or both)", req.ISA)
	}
	if len(req.Models) > 0 {
		if req.Variant != "" {
			return nil, badFields([]string{"models", "variant"},
				"variant selects builtin models; inline model specs carry their own variant — drop one of the two")
		}
		models := make([]*uspec.Model, 0, len(req.Models))
		for i, src := range req.Models {
			s, perr := uspec.ParseSpec(src)
			if perr != nil {
				return nil, badField(fmt.Sprintf("models[%d]", i), "%v", perr)
			}
			models = append(models, uspec.New(*s))
		}
		stacks, err := core.SelectStacksModels(isa, models)
		if err != nil {
			return nil, badField("models", "%v", err)
		}
		return stacks, nil
	}
	variant := req.Variant
	if variant == "" {
		variant = "both"
	}
	switch variant {
	case "curr", "ours", "both":
	default:
		return nil, badField("variant", "unknown MCM version %q (want curr, ours or both)", req.Variant)
	}
	stacks, err := core.SelectStacks(isa, variant)
	if err != nil {
		return nil, badField("variant", "%v", err)
	}
	return stacks, nil
}

// opsimSkipNote extracts the per-stack capability skip note from a
// backend=both sweep's results (empty when the stack was cross-checked
// or the sweep ran a single backend). The note is config-level, so the
// first result speaks for the stack.
func opsimSkipNote(sr *core.SuiteResult) string {
	if len(sr.Results) == 0 || sr.Results[0].Opsim == nil {
		return ""
	}
	return sr.Results[0].Opsim.Skipped
}
