// Package server implements tricheckd: a long-running HTTP verification
// service over the TriCheck farm. One shared core.Engine stays warm
// across requests — its memo cache is loaded from and snapshotted to
// disk, its HLL evaluations are singleflighted, and its two-tier µhb
// overlays are pooled — so a request pays only for jobs nobody has
// verified before.
//
// Endpoints:
//
//	POST /v1/verify  stream per-(test, stack) verdicts as NDJSON in farm
//	                 completion order, terminated by a summary record;
//	                 every record carries the request's trace ID
//	GET  /v1/stats   service + engine + memo-cache counters as JSON
//	GET  /v1/traces  the N slowest retained spans (requests and sampled
//	                 verdict jobs), slowest first, as JSON
//	GET  /v1/coverage the engine's verification-coverage ledger as JSON:
//	                 per-(model, axiom) fired/edges/cycles matrix,
//	                 (test, config) verdict vectors (?vectors=0 omits
//	                 them) and totals
//	GET  /metrics    the process obs registry plus the service counters
//	                 in Prometheus text exposition format
//	GET  /debug/vars expvar (process globals plus the tricheckd map)
//	GET  /debug/pprof/* runtime profiles, only with Config.EnablePprof
//	GET  /healthz    liveness probe
//
// A disconnected or cancelled client aborts its sweep via request
// context: remaining farm jobs are never scheduled, finished jobs stay
// in the shared memo cache (an abort cannot poison it), and concurrent
// requests are unaffected. A buffered-channel limiter bounds concurrent
// sweeps for backpressure, and each sweep's farm worker count is clamped
// to a per-request budget.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
	"sync"
	"time"

	"tricheck/api"
	"tricheck/internal/core"
	"tricheck/internal/fleet"
	"tricheck/internal/mem"
	"tricheck/internal/obs"
	"tricheck/internal/report"
	"tricheck/internal/uspec"
)

// maxRequestBytes bounds a /v1/verify body (inline litmus sources).
const maxRequestBytes = 16 << 20

// writeTimeout is the per-record deadline for streaming writes. A
// client that stops reading mid-stream (connection open, kernel buffer
// full) would otherwise block enc.Encode forever with the request
// context never cancelled — pinning a limiter slot and the sweep's farm
// workers until restart. A missed deadline fails the write, which
// cancels the sweep like a disconnect.
const writeTimeout = 30 * time.Second

// Config configures a Server.
type Config struct {
	// Engine, when non-nil, is used (and kept warm) instead of a fresh
	// one — embedders can share it with in-process sweeps.
	Engine *core.Engine
	// CachePath, when non-empty, warm-starts the engine's memo cache
	// from this JSON snapshot at construction and is where SaveSnapshot
	// flushes it (tricheckd does so on graceful shutdown).
	CachePath string
	// MaxInFlight bounds concurrently-sweeping verify requests; further
	// requests queue on the limiter until a slot frees or their context
	// is cancelled (0 = 4).
	MaxInFlight int
	// MaxWorkers is the per-request farm worker budget; a request asking
	// for more (or not asking) gets exactly this many (0 = GOMAXPROCS).
	MaxWorkers int
	// MemoCapacity bounds the engine's memo cache when this server
	// enables it (0 = the engine default, which comfortably holds
	// several full paper sweeps). A long-lived service fed arbitrary
	// inline litmus sources needs the LRU bound; without it the cache —
	// and every shutdown snapshot — grows without limit. Ignored when
	// Config.Engine already has a memo cache.
	MemoCapacity int
	// EnablePprof mounts net/http/pprof under /debug/pprof/. Off by
	// default: profiles expose process internals and a CPU profile
	// perturbs in-flight sweeps, so the operator opts in per deployment.
	EnablePprof bool
	// Fleet, when non-nil, runs this server as a fleet coordinator:
	// /v1/verify shards sweeps across the configured worker tricheckds
	// instead of the local engine (which still serves memo endpoints and
	// stays available to embedders).
	Fleet *fleet.Config
	// Log, when non-nil, receives request/shutdown notes.
	Log *log.Logger
}

// Server is the tricheckd HTTP service. Create it with New and mount
// Handler.
type Server struct {
	eng        *core.Engine
	cachePath  string
	maxWorkers int
	pprofOn    bool
	sem        chan struct{}
	log        *log.Logger
	start      time.Time
	fleet      *fleet.Coordinator

	// Counters are expvar values so /debug/vars exposes them; they are
	// per-server (not globally registered), keeping tests and multiple
	// instances independent.
	vars      *expvar.Map
	requests  *expvar.Int
	inflight  *expvar.Int
	errors    *expvar.Int
	cancels   *expvar.Int
	verdicts  *expvar.Int
	busyNanos *expvar.Int

	// sweepStarts tracks in-flight sweeps' start times so Stats can
	// include their elapsed time in the throughput denominator —
	// otherwise tests/sec reads 0 for the whole duration of a long cold
	// sweep and jumps only on completion.
	mu          sync.Mutex
	sweepStarts map[uint64]time.Time
	nextSweepID uint64
}

// New builds a Server, warm-starting the memo cache from
// Config.CachePath when set (a missing or version-stale snapshot is a
// cold start, not an error).
func New(cfg Config) (*Server, error) {
	eng := cfg.Engine
	if eng == nil {
		eng = core.NewEngine()
	}
	eng.EnableMemoIfAbsent(cfg.MemoCapacity)
	maxInFlight := cfg.MaxInFlight
	if maxInFlight <= 0 {
		maxInFlight = 4
	}
	maxWorkers := cfg.MaxWorkers
	if maxWorkers <= 0 {
		maxWorkers = runtime.GOMAXPROCS(0)
	}
	logger := cfg.Log
	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}
	s := &Server{
		eng:         eng,
		cachePath:   cfg.CachePath,
		maxWorkers:  maxWorkers,
		pprofOn:     cfg.EnablePprof,
		sem:         make(chan struct{}, maxInFlight),
		log:         logger,
		start:       time.Now(),
		vars:        new(expvar.Map).Init(),
		requests:    new(expvar.Int),
		inflight:    new(expvar.Int),
		errors:      new(expvar.Int),
		cancels:     new(expvar.Int),
		verdicts:    new(expvar.Int),
		busyNanos:   new(expvar.Int),
		sweepStarts: map[uint64]time.Time{},
	}
	s.vars.Set("requests_total", s.requests)
	s.vars.Set("requests_inflight", s.inflight)
	s.vars.Set("request_errors", s.errors)
	s.vars.Set("requests_cancelled", s.cancels)
	s.vars.Set("verdicts_streamed", s.verdicts)
	s.vars.Set("busy_nanos", s.busyNanos)
	if s.cachePath != "" {
		if err := core.LoadMemoSnapshotLenient(eng, s.cachePath, logWriter{logger}); err != nil {
			return nil, fmt.Errorf("server: loading cache %s: %w", s.cachePath, err)
		}
		if st, ok := eng.MemoStats(); ok {
			logger.Printf("cache %s: %d warm entries", s.cachePath, st.Len)
		}
	}
	if cfg.Fleet != nil {
		fcfg := *cfg.Fleet
		if fcfg.Log == nil {
			fcfg.Log = logger
		}
		coord, err := fleet.New(fcfg)
		if err != nil {
			return nil, err
		}
		s.fleet = coord
	}
	return s, nil
}

// Fleet returns the coordinator when the server runs in fleet mode
// (nil otherwise). tricheckd starts its health-probe loop.
func (s *Server) Fleet() *fleet.Coordinator { return s.fleet }

// Engine returns the server's (shared) verification engine.
func (s *Server) Engine() *core.Engine { return s.eng }

// SaveSnapshot flushes the memo cache to Config.CachePath; it is a
// no-op without one. tricheckd calls it after graceful HTTP shutdown so
// the next boot starts warm.
func (s *Server) SaveSnapshot() error {
	if s.cachePath == "" {
		return nil
	}
	if err := s.eng.SaveMemoSnapshot(s.cachePath); err != nil {
		return err
	}
	if st, ok := s.eng.MemoStats(); ok {
		s.log.Printf("cache %s: flushed %d entries", s.cachePath, st.Len)
	}
	return nil
}

// InFlight reports the number of requests currently sweeping.
func (s *Server) InFlight() int64 { return s.inflight.Value() }

// Handler returns the service's HTTP mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/verify", s.handleVerify)
	mux.HandleFunc("/v1/memo/snapshot", s.handleMemoSnapshot)
	mux.HandleFunc("/v1/memo/load", s.handleMemoLoad)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/traces", s.handleTraces)
	mux.HandleFunc("/v1/coverage", s.handleCoverage)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/vars", s.handleDebugVars)
	if s.pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// handleMetrics renders the process obs registry (farm, memo,
// verdict-phase and prof metrics) followed by this server's own
// counters in Prometheus text exposition format. The per-server
// counters stay expvar values (see the struct comment) and are
// formatted here rather than double-registered in the global registry.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	obs.Default.WritePrometheus(w)
	writePromCounter(w, "tricheckd_requests_total", "Verify requests accepted.", s.requests.Value())
	writePromGauge(w, "tricheckd_requests_inflight", "Verify requests currently sweeping.", s.inflight.Value())
	writePromCounter(w, "tricheckd_request_errors_total", "Verify requests failed by a service error.", s.errors.Value())
	writePromCounter(w, "tricheckd_requests_cancelled_total", "Verify requests aborted by client disconnect/cancel.", s.cancels.Value())
	writePromCounter(w, "tricheckd_verdicts_streamed_total", "NDJSON verdict records written to clients.", s.verdicts.Value())
	writePromGauge(w, "tricheckd_uptime_seconds", "Seconds since server construction.", int64(time.Since(s.start).Seconds()))
}

func writePromCounter(w io.Writer, name, help string, v int64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}

func writePromGauge(w io.Writer, name, help string, v int64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
}

// handleCoverage serves the engine coverage ledger's snapshot: engine
// lifetime state, deterministic down to the marshaled bytes for a fixed
// ledger state, so two scrapes with no sweep in between are
// byte-identical and an in-process ledger comparison can be exact.
// ?vectors=0 omits the (test, config) verdict vectors, which dominate
// the payload after large sweeps.
func (s *Server) handleCoverage(w http.ResponseWriter, r *http.Request) {
	snap := s.eng.Coverage().Snapshot()
	if r.URL.Query().Get("vectors") == "0" {
		snap.Vectors = nil
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(snap)
}

// handleTraces serves the slow-span ring, slowest first.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	traces := obs.DefaultTraces.Slowest()
	if traces == nil {
		traces = []obs.TraceRecord{}
	}
	enc.Encode(traces)
}

func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if s.fleet != nil {
		s.handleFleetVerify(w, r)
		return
	}
	var req VerifyRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeBadRequest(w, fmt.Errorf("bad request body: %w", err))
		return
	}
	tests, stacks, backend, err := resolve(&req)
	if err != nil {
		writeBadRequest(w, err)
		return
	}
	keep := keyFilter(req.Keys)
	workers := req.Workers
	if workers <= 0 || workers > s.maxWorkers {
		workers = s.maxWorkers
	}

	// Global backpressure: wait for a sweep slot or for the client to
	// give up. The derived ctx lets a failed stream write abort the
	// sweep even while the connection is technically still open.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()

	// Every request gets a trace: a root span in the slow-span ring, and
	// the trace ID threaded through the sweep context (sampled verdict
	// jobs become child spans) and echoed in every NDJSON record.
	span := obs.DefaultTraces.Start(0, 0, "verify")
	trace := span.Trace()
	traceHex := trace.String()
	if req.Suite != "" {
		span.Attr("suite", req.Suite)
	}
	span.Attr("tests", fmt.Sprint(len(tests)))
	span.Attr("stacks", fmt.Sprint(len(stacks)))
	defer span.End()
	ctx = obs.ContextWithTrace(ctx, trace, span.ID())
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	case <-ctx.Done():
		return
	}
	s.requests.Add(1)
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	begin := time.Now()
	s.mu.Lock()
	s.nextSweepID++
	sweepID := s.nextSweepID
	s.sweepStarts[sweepID] = begin
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.sweepStarts, sweepID)
		s.mu.Unlock()
		s.busyNanos.Add(time.Since(begin).Nanoseconds())
	}()
	s.log.Printf("verify[%s]: %d tests × %d stacks, %d workers", traceHex, len(tests), len(stacks), workers)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}

	events := make(chan core.Progress, 256)
	type sweepOut struct {
		results []*core.SuiteResult
		err     error
	}
	outc := make(chan sweepOut, 1)
	go func() {
		results, err := s.eng.SweepStreamBackendKeys(ctx, tests, stacks, workers, backend, keep, events)
		outc <- sweepOut{results, err}
	}()

	// Stream every event; when the client goes away (or stalls past the
	// write deadline) the write fails, cancel() aborts the farm, and we
	// keep draining so the sweep's OnResult sender can finish.
	enc := json.NewEncoder(w)
	rc := http.NewResponseController(w)
	// arm keeps a write deadline recent enough that any connection
	// write — a coalesced flush or a mid-burst buffer spill — fails
	// within ~writeTimeout of a client stall, without paying a deadline
	// update per record. Best-effort: ErrNotSupported is fine.
	var armedAt time.Time
	arm := func() {
		if time.Since(armedAt) > writeTimeout/4 {
			armedAt = time.Now()
			rc.SetWriteDeadline(armedAt.Add(writeTimeout))
		}
	}
	var tr report.Tracker
	clientOK := true
	pending := 0
	for ev := range events {
		tr.Observe(ev)
		if !clientOK {
			continue
		}
		arm()
		rec := VerdictRecord{
			Type:         "verdict",
			Trace:        traceHex,
			Done:         ev.Done,
			Total:        ev.Total,
			Test:         ev.Test,
			Stack:        ev.Stack,
			Verdict:      ev.Verdict.String(),
			Key:          ev.Key,
			Cached:       ev.Cached,
			SpecifiedBug: ev.SpecifiedBug,
		}
		if backend != core.BackendUHB {
			rec.Backend = backend.String()
		}
		if ev.Verdict == core.Divergence && ev.Opsim != nil {
			// The uhb observable set is reconstructible from the diff:
			// (opsim ∖ opsim-only) ∪ uhb-only, already sorted inputs.
			rec.Divergence = divergenceJSON(ev.Opsim, uhbObservableOf(ev.Opsim))
		}
		if err := enc.Encode(rec); err != nil {
			clientOK = false
			cancel()
			continue
		}
		s.verdicts.Add(1)
		// Coalesce flushes: one chunk per burst (channel momentarily
		// drained) or per 256 records, not one TCP packet per ~150-byte
		// verdict — warm sweeps stream tens of thousands of records.
		if pending++; len(events) == 0 || pending >= 256 {
			pending = 0
			flush()
		}
	}
	out := <-outc
	if out.err != nil {
		// A cancelled request context is the client exercising the
		// documented disconnect contract, not a service failure — keep
		// the error counter meaningful for alerting.
		if errors.Is(out.err, context.Canceled) || errors.Is(out.err, context.DeadlineExceeded) {
			s.cancels.Add(1)
		} else {
			s.errors.Add(1)
		}
		s.log.Printf("verify[%s]: aborted after %d/%d: %v", traceHex, tr.Done, tr.Total, out.err)
		if clientOK {
			rc.SetWriteDeadline(time.Now().Add(writeTimeout))
			enc.Encode(ErrorRecord{Type: "error", Error: out.err.Error()})
			flush()
		}
		return
	}
	if !clientOK {
		return
	}
	rc.SetWriteDeadline(time.Now().Add(writeTimeout))
	enc.Encode(summarize(out.results, &tr, traceHex, backend, s.eng.Coverage().TotalsNow()))
	flush()
	s.log.Printf("verify[%s]: %d/%d done in %s (bugs=%d strict=%d equiv=%d divergent=%d cached=%d)",
		traceHex, tr.Done, tr.Total, time.Since(begin).Round(time.Millisecond), tr.Bugs, tr.Strict, tr.Equivalent, tr.Divergent, tr.Cached)
}

// writeBadRequest writes a structured 400 body: the resolver's typed
// field errors when available, else a bare error message in the same
// shape.
func writeBadRequest(w http.ResponseWriter, err error) {
	var bad *BadRequestError
	resp := api.ErrorResponse{Error: err.Error()}
	if errors.As(err, &bad) {
		resp = bad.Resp
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusBadRequest)
	json.NewEncoder(w).Encode(resp)
}

// uhbObservableOf reconstructs the axiomatic observable set from a
// cross-check diff: (opsim observable ∖ opsim-only) ∪ uhb-only.
func uhbObservableOf(op *core.OpsimMemo) []string {
	only := make(map[mem.Outcome]bool, len(op.OpsimOnly))
	for _, o := range op.OpsimOnly {
		only[o] = true
	}
	out := make([]mem.Outcome, 0, len(op.Observable)+len(op.UhbOnly))
	for _, o := range op.Observable {
		if !only[o] {
			out = append(out, o)
		}
	}
	out = append(out, op.UhbOnly...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return outcomeStrings(out)
}

// Stats returns the service counter snapshot /v1/stats serves.
func (s *Server) Stats() StatsRecord {
	st := StatsRecord{
		UptimeSeconds:    time.Since(s.start).Seconds(),
		RequestsTotal:    s.requests.Value(),
		RequestsInFlight: s.inflight.Value(),
		RequestErrors:    s.errors.Value(),
		RequestCancels:   s.cancels.Value(),
		VerdictsStreamed: s.verdicts.Value(),
		JobsExecuted:     s.eng.Executions(),
		Divergences:      s.eng.Divergences(),
	}
	// Busy time includes in-flight sweeps' elapsed time so the rate is
	// live during a long sweep instead of jumping on completion. Sweep
	// start times carry Go's monotonic clock reading, but clamp each
	// contribution anyway: a start time that round-tripped through
	// serialization (tests, future snapshots) loses the monotonic part,
	// and a wall-clock step backwards would otherwise subtract from busy
	// time and inflate — or NaN — the rate.
	busy := time.Duration(s.busyNanos.Value())
	s.mu.Lock()
	for _, begin := range s.sweepStarts {
		if d := time.Since(begin); d > 0 {
			busy += d
		}
	}
	s.mu.Unlock()
	st.TestsPerSecond = streamRate(st.VerdictsStreamed, busy)
	if ms, ok := s.eng.MemoStats(); ok {
		m := &MemoStatsJSON{Hits: ms.Hits, Misses: ms.Misses, Len: ms.Len, Cap: ms.Cap}
		if lookups := ms.Hits + ms.Misses; lookups > 0 {
			m.HitRate = float64(ms.Hits) / float64(lookups)
		}
		st.Memo = m
	}
	if reuse, rebuild := uspec.IncrementalStats(); reuse+rebuild > 0 {
		st.Incremental = &IncrementalStatsJSON{
			Reuse:      reuse,
			Rebuild:    rebuild,
			ReuseRatio: float64(reuse) / float64(reuse+rebuild),
		}
	}
	if s.fleet != nil {
		st.Fleet = s.fleet.StatsJSON()
	}
	return st
}

// streamRate computes verdicts-per-second over the busy window, with
// the degenerate cases pinned to 0: zero or negative busy time (no
// sweep has run, or a clamped clock anomaly) must read as "no rate",
// never as a division blow-up — /v1/stats is scraped by dashboards that
// choke on NaN/Inf in JSON.
func streamRate(verdicts int64, busy time.Duration) float64 {
	if sec := busy.Seconds(); sec > 0 && verdicts >= 0 {
		return float64(verdicts) / sec
	}
	return 0
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.Stats())
}

// handleDebugVars serves the standard expvar globals (memstats,
// cmdline, anything else the process published) plus this server's
// counters under the "tricheckd" key. The stock expvar.Handler only
// serves the global registry, and registering per-server vars there
// would panic on the second Server in a process.
func (s *Server) handleDebugVars(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	fmt.Fprintf(w, "{\n")
	expvar.Do(func(kv expvar.KeyValue) {
		fmt.Fprintf(w, "%q: %s,\n", kv.Key, kv.Value.String())
	})
	fmt.Fprintf(w, "%q: %s\n}\n", "tricheckd", s.vars.String())
}

// logWriter adapts a *log.Logger to io.Writer for the lenient cache
// loader's warning output.
type logWriter struct{ l *log.Logger }

func (w logWriter) Write(p []byte) (int, error) {
	w.l.Printf("%s", p)
	return len(p), nil
}
