package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"tricheck/internal/core"
	"tricheck/internal/corpus"
	"tricheck/internal/litmus"
	"tricheck/internal/uspec"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postVerify(t *testing.T, url string, req VerifyRequest) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/verify", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// drainStreamE decodes a full NDJSON response into its verdicts and
// terminal summary. It is error-returning (no t.Fatal) so goroutines
// other than the test's may use it.
func drainStreamE(resp *http.Response) ([]VerdictRecord, *SummaryRecord, error) {
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, nil, fmt.Errorf("status %s", resp.Status)
	}
	var verdicts []VerdictRecord
	var summary *SummaryRecord
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 64<<20)
	for sc.Scan() {
		var probe struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
			return nil, nil, fmt.Errorf("bad record %q: %v", sc.Text(), err)
		}
		switch probe.Type {
		case "verdict":
			var v VerdictRecord
			if err := json.Unmarshal(sc.Bytes(), &v); err != nil {
				return nil, nil, err
			}
			verdicts = append(verdicts, v)
		case "summary":
			summary = new(SummaryRecord)
			if err := json.Unmarshal(sc.Bytes(), summary); err != nil {
				return nil, nil, err
			}
		default:
			return nil, nil, fmt.Errorf("unexpected record type %q", probe.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	return verdicts, summary, nil
}

func drainStream(t *testing.T, resp *http.Response) ([]VerdictRecord, *SummaryRecord) {
	t.Helper()
	verdicts, summary, err := drainStreamE(resp)
	if err != nil {
		t.Fatal(err)
	}
	return verdicts, summary
}

func TestVerifyRejectsBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	get, err := http.Get(ts.URL + "/v1/verify")
	if err != nil {
		t.Fatal(err)
	}
	get.Body.Close()
	if get.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/verify → %d, want 405", get.StatusCode)
	}
	for name, req := range map[string]VerifyRequest{
		"no selector":      {},
		"two selectors":    {Family: "mp", Suite: "paper"},
		"unknown family":   {Family: "nope"},
		"unknown suite":    {Suite: "nope"},
		"bad isa":          {Family: "mp", ISA: "nope"},
		"bad variant":      {Family: "mp", Variant: "nope"},
		"bad litmus batch": {Litmus: []string{"not litmus at all"}},
	} {
		resp := postVerify(t, ts.URL, req)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s → %d, want 400", name, resp.StatusCode)
		}
	}
	raw, err := http.Post(ts.URL+"/v1/verify", "application/json", strings.NewReader(`{"family":`))
	if err != nil {
		t.Fatal(err)
	}
	raw.Body.Close()
	if raw.StatusCode != http.StatusBadRequest {
		t.Fatalf("truncated JSON → %d, want 400", raw.StatusCode)
	}
}

func TestVerifyInlineLitmusSources(t *testing.T) {
	var srcs []string
	for _, tst := range litmus.MP.Generate()[:3] {
		src, err := corpus.EmitString(tst)
		if err != nil {
			t.Fatal(err)
		}
		srcs = append(srcs, src)
	}
	_, ts := newTestServer(t, Config{})
	resp := postVerify(t, ts.URL, VerifyRequest{Litmus: srcs, ISA: "base", Variant: "curr"})
	verdicts, summary := drainStream(t, resp)
	want := 3 * 7 // 3 tests × 7 base/curr stacks
	if len(verdicts) != want || summary == nil || summary.Total != want || summary.Done != want {
		t.Fatalf("got %d verdicts, summary %+v; want %d", len(verdicts), summary, want)
	}
	for _, v := range verdicts {
		if v.Key == "" || v.Test == "" || v.Stack == "" {
			t.Fatalf("incomplete verdict record %+v", v)
		}
	}
}

// TestVerifyInlineModelSpec: a request may carry its own µspec model as
// data. The custom model sweeps independently of a same-named builtin —
// different verdicts, disjoint memo fingerprints — and illegal or
// conflicting specs are 400s.
func TestVerifyInlineModelSpec(t *testing.T) {
	// An SC machine wearing the builtin's name: same display name as
	// Table 7's nMM, completely different ordering semantics.
	impostor := uspec.Config{
		Name: "nMM", Description: "SC machine named nMM",
		OrderSameAddrRR: true, RespectDeps: true, Variant: uspec.Curr,
	}
	_, ts := newTestServer(t, Config{})
	resp := postVerify(t, ts.URL, VerifyRequest{Family: "wrc", ISA: "base", Models: []string{impostor.EmitSpec()}})
	custom, customSum := drainStream(t, resp)
	wantStack := "riscv-base-intuitive+nMM/riscv-curr"
	if len(customSum.Stacks) != 1 || customSum.Stacks[0].Stack != wantStack {
		t.Fatalf("custom sweep stacks %+v, want one %s", customSum.Stacks, wantStack)
	}
	if customSum.Bugs != 0 || customSum.Strict == 0 {
		t.Fatalf("SC impostor tallies %+v, want bug-free and strict", customSum)
	}

	resp = postVerify(t, ts.URL, VerifyRequest{Family: "wrc", ISA: "base", Variant: "curr"})
	builtin, builtinSum := drainStream(t, resp)
	builtinKeys := map[string]bool{}
	builtinBugs := 0
	for _, v := range builtin {
		if v.Stack == wantStack {
			builtinKeys[v.Key] = true
			if v.Verdict == "Bug" {
				builtinBugs++
			}
		}
	}
	if len(builtinKeys) != len(custom) {
		t.Fatalf("builtin nMM streamed %d keys, custom %d", len(builtinKeys), len(custom))
	}
	if builtinBugs == 0 {
		t.Fatal("builtin nMM shows no bugs on wrc (test premise broken)")
	}
	for _, v := range custom {
		if builtinKeys[v.Key] {
			t.Fatalf("custom model shares memo fingerprint %s with the same-named builtin", v.Key)
		}
	}
	_ = builtinSum

	for name, req := range map[string]VerifyRequest{
		"bad spec syntax":     {Family: "mp", Models: []string{"uarch nope"}},
		"illegal spec":        {Family: "mp", Models: []string{"uspec x\nforwarding\norder-same-addr-rr\nrespect-deps\n"}},
		"models plus variant": {Family: "mp", Variant: "curr", Models: []string{impostor.EmitSpec()}},
		"models with bad isa": {Family: "mp", ISA: "nope", Models: []string{impostor.EmitSpec()}},
		"same-named models":   {Family: "mp", Models: []string{impostor.EmitSpec(), impostor.EmitSpec()}},
	} {
		resp := postVerify(t, ts.URL, req)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s → %d, want 400", name, resp.StatusCode)
		}
	}
}

func TestStatsAndDebugVars(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp := postVerify(t, ts.URL, VerifyRequest{Family: "corr", ISA: "base", Variant: "curr"})
	verdicts, _ := drainStream(t, resp)

	st := s.Stats()
	if st.RequestsTotal != 1 || st.VerdictsStreamed != int64(len(verdicts)) || st.JobsExecuted == 0 {
		t.Fatalf("stats %+v after one sweep of %d verdicts", st, len(verdicts))
	}
	if st.Memo == nil || st.Memo.Len == 0 {
		t.Fatalf("stats missing memo counters: %+v", st)
	}
	if st.TestsPerSecond <= 0 {
		t.Fatalf("tests/sec = %v, want > 0", st.TestsPerSecond)
	}
	// The sweep evaluated µhb candidates, so the incremental engine's
	// reuse/rebuild counters (process-wide) must be populated and the
	// precomputed ratio consistent with them.
	if st.Incremental == nil || st.Incremental.Reuse+st.Incremental.Rebuild == 0 {
		t.Fatalf("stats missing incremental engine counters: %+v", st)
	}
	inc := st.Incremental
	if want := float64(inc.Reuse) / float64(inc.Reuse+inc.Rebuild); inc.ReuseRatio != want {
		t.Fatalf("incremental reuse ratio %v, want %v", inc.ReuseRatio, want)
	}

	httpStats, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var wire StatsRecord
	if err := json.NewDecoder(httpStats.Body).Decode(&wire); err != nil {
		t.Fatal(err)
	}
	httpStats.Body.Close()
	if wire.RequestsTotal != 1 || wire.VerdictsStreamed != int64(len(verdicts)) {
		t.Fatalf("/v1/stats %+v disagrees with Stats()", wire)
	}

	dv, err := http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	var vars map[string]json.RawMessage
	if err := json.NewDecoder(dv.Body).Decode(&vars); err != nil {
		t.Fatalf("/debug/vars is not valid JSON: %v", err)
	}
	dv.Body.Close()
	var own struct {
		Requests int64 `json:"requests_total"`
	}
	if err := json.Unmarshal(vars["tricheckd"], &own); err != nil || own.Requests != 1 {
		t.Fatalf("/debug/vars tricheckd map = %s (err %v)", vars["tricheckd"], err)
	}
	if _, ok := vars["memstats"]; !ok {
		t.Fatal("/debug/vars missing the expvar globals")
	}
}

// TestClientDisconnectStopsScheduling is the cancellation acceptance
// test: a client that goes away mid-stream stops its sweep's remaining
// farm jobs (observed via the engine's verifier-execution counter)
// without corrupting the shared cache for later requests.
func TestClientDisconnectStopsScheduling(t *testing.T) {
	eng := core.NewEngine()
	isa := "both"
	if testing.Short() {
		isa = "base"
	}
	s, ts := newTestServer(t, Config{Engine: eng, MaxWorkers: 1})

	// The widest builtin family: the cancellation window is the sweep's
	// runtime, and on a single-core host the busy farm goroutine can
	// starve this client goroutine for tens of milliseconds — a small
	// family's sweep can finish before the disconnect propagates.
	tests := litmus.IRIW.Generate()
	stacks, err := core.SelectStacks(isa, "both")
	if err != nil {
		t.Fatal(err)
	}
	total := len(tests) * len(stacks)

	ctx, cancel := context.WithCancel(context.Background())
	body, _ := json.Marshal(VerifyRequest{Family: "iriw", ISA: isa, Variant: "both", Workers: 1})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/verify", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read one streamed verdict, then vanish.
	if _, err := bufio.NewReader(resp.Body).ReadString('\n'); err != nil {
		t.Fatal(err)
	}
	cancel()
	resp.Body.Close()

	// The handler notices, aborts the farm, and drains.
	deadline := time.Now().Add(30 * time.Second)
	for s.InFlight() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("request still in flight long after disconnect")
		}
		time.Sleep(5 * time.Millisecond)
	}
	aborted := int(eng.Executions())
	if aborted >= total {
		t.Fatalf("disconnected sweep still executed all %d jobs", total)
	}
	if stats := eng.LastFarmStats(); stats.Skipped == 0 {
		t.Fatalf("no farm jobs skipped after disconnect: %+v", stats)
	}
	// The abort is the supported client flow: counted as a cancel, not
	// as a service error.
	if st := s.Stats(); st.RequestCancels != 1 || st.RequestErrors != 0 {
		t.Fatalf("disconnect accounted as cancels=%d errors=%d, want 1/0", st.RequestCancels, st.RequestErrors)
	}

	// A follow-up full request completes, reuses the aborted run's
	// memos, and matches a fresh engine bit for bit.
	resp2 := postVerify(t, ts.URL, VerifyRequest{Family: "iriw", ISA: isa, Variant: "both"})
	verdicts, summary := drainStream(t, resp2)
	if len(verdicts) != total || summary == nil || summary.Done != total {
		t.Fatalf("follow-up request: %d verdicts, summary %+v", len(verdicts), summary)
	}
	if got := int(eng.Executions()); got != total {
		t.Fatalf("abort + completion executed %d jobs, want exactly the %d unique jobs", got, total)
	}
	ref, err := core.NewEngine().Sweep(tests, stacks, 0)
	if err != nil {
		t.Fatal(err)
	}
	assertSummaryMatches(t, summary, ref)
}

// TestConcurrentRequestsSurviveACancelledPeer runs a full sweep
// concurrently with one that disconnects; the surviving request's
// results must be complete and correct.
func TestConcurrentRequestsSurviveACancelledPeer(t *testing.T) {
	eng := core.NewEngine()
	s, ts := newTestServer(t, Config{Engine: eng, MaxInFlight: 2, MaxWorkers: 2})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // the doomed request
		defer wg.Done()
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		body, _ := json.Marshal(VerifyRequest{Family: "sb", Workers: 1})
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/verify", bytes.NewReader(body))
		if err != nil {
			t.Error(err)
			return
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Error(err)
			return
		}
		bufio.NewReader(resp.Body).ReadString('\n')
		cancel()
		resp.Body.Close()
	}()

	resp := postVerify(t, ts.URL, VerifyRequest{Family: "mp", ISA: "base", Variant: "both"})
	verdicts, summary := drainStream(t, resp)
	wg.Wait()

	tests := litmus.MP.Generate()
	stacks, err := core.SelectStacks("base", "both")
	if err != nil {
		t.Fatal(err)
	}
	if want := len(tests) * len(stacks); len(verdicts) != want {
		t.Fatalf("surviving request streamed %d verdicts, want %d", len(verdicts), want)
	}
	ref, err := core.NewEngine().Sweep(tests, stacks, 0)
	if err != nil {
		t.Fatal(err)
	}
	assertSummaryMatches(t, summary, ref)

	deadline := time.Now().Add(30 * time.Second)
	for s.InFlight() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("cancelled peer still in flight")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// assertSummaryMatches checks a wire summary against in-process suite
// results: same stack order, same overall and per-family tallies.
func assertSummaryMatches(t *testing.T, summary *SummaryRecord, ref []*core.SuiteResult) {
	t.Helper()
	if summary == nil {
		t.Fatal("no summary record")
	}
	if len(summary.Stacks) != len(ref) {
		t.Fatalf("summary has %d stacks, want %d", len(summary.Stacks), len(ref))
	}
	for i, sr := range ref {
		ss := summary.Stacks[i]
		if ss.Stack != sr.Stack.Name() {
			t.Fatalf("stack %d: %q, want %q", i, ss.Stack, sr.Stack.Name())
		}
		if ss.Tally != tallyJSON(sr.Tally) {
			t.Fatalf("stack %s tally %+v, want %+v", ss.Stack, ss.Tally, sr.Tally)
		}
		fams := sr.FamilyNames()
		if len(ss.Families) != len(fams) {
			t.Fatalf("stack %s: %d families, want %d", ss.Stack, len(ss.Families), len(fams))
		}
		for j, fam := range fams {
			want := FamilyTally{Family: fam, TallyJSON: tallyJSON(*sr.ByFamily[fam])}
			if ss.Families[j] != want {
				t.Fatalf("stack %s family %s: %+v, want %+v", ss.Stack, fam, ss.Families[j], want)
			}
		}
	}
}

// TestLimiterQueuesRequests pins the backpressure contract: with one
// sweep slot, two concurrent requests serialize but both complete.
func TestLimiterQueuesRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxInFlight: 1})
	var wg sync.WaitGroup
	totals := make([]int, 2)
	errs := make([]error, 2)
	for i := range totals {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, err := json.Marshal(VerifyRequest{Family: "corr", ISA: "base", Variant: "curr"})
			if err != nil {
				errs[i] = err
				return
			}
			resp, err := http.Post(ts.URL+"/v1/verify", "application/json", bytes.NewReader(body))
			if err != nil {
				errs[i] = err
				return
			}
			verdicts, summary, err := drainStreamE(resp)
			if err != nil {
				errs[i] = err
				return
			}
			if summary != nil {
				totals[i] = len(verdicts)
			}
		}(i)
	}
	wg.Wait()
	want := len(litmus.CoRR.Generate()) * 7
	for i, n := range totals {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if n != want {
			t.Fatalf("request %d streamed %d verdicts, want %d", i, n, want)
		}
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz → %s", resp.Status)
	}
}

func TestResolveSuitePaper(t *testing.T) {
	tests, stacks, backend, err := resolve(&VerifyRequest{Suite: "paper", ISA: "base", Variant: "curr"})
	if err != nil {
		t.Fatal(err)
	}
	if len(tests) != len(litmus.PaperSuite()) || len(stacks) != 7 {
		t.Fatalf("paper suite resolved to %d tests × %d stacks", len(tests), len(stacks))
	}
	if backend != core.BackendUHB {
		t.Fatalf("default backend = %v, want uhb", backend)
	}
}
