package server

import (
	"math"
	"testing"
	"time"
)

// Regression tests for the /v1/stats throughput rate: the denominator
// is accumulated busy time plus in-flight sweeps' elapsed time, and
// both halves must survive degenerate clocks — a zero-elapsed window
// must read 0, and a sweep start time without a monotonic reading (or
// behind a stepped wall clock) must never subtract from the window.

func TestStreamRateGuardsDegenerateWindows(t *testing.T) {
	cases := []struct {
		name     string
		verdicts int64
		busy     time.Duration
		want     float64
	}{
		{"zero busy", 100, 0, 0},
		{"negative busy", 100, -time.Second, 0},
		{"no verdicts", 0, time.Second, 0},
		{"steady", 100, 2 * time.Second, 50},
	}
	for _, c := range cases {
		got := streamRate(c.verdicts, c.busy)
		if got != c.want {
			t.Errorf("%s: streamRate(%d, %v) = %v, want %v", c.name, c.verdicts, c.busy, got, c.want)
		}
		if math.IsNaN(got) || math.IsInf(got, 0) {
			t.Errorf("%s: streamRate(%d, %v) = %v, not finite", c.name, c.verdicts, c.busy, got)
		}
	}
}

func TestStatsRateNeverNegativeFromFutureSweepStart(t *testing.T) {
	s, err := New(Config{MaxWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a sweep whose recorded start is ahead of the current wall
	// clock — what a backwards clock step (or a start time that lost its
	// monotonic reading in a round-trip) looks like to Stats. The bogus
	// in-flight window must be clamped out, not subtracted from the
	// accumulated busy time.
	s.busyNanos.Add((2 * time.Second).Nanoseconds())
	s.verdicts.Add(100)
	s.mu.Lock()
	s.sweepStarts[1] = time.Now().Add(time.Hour)
	s.mu.Unlock()
	st := s.Stats()
	if st.TestsPerSecond <= 0 {
		t.Fatalf("tests_per_sec = %v with 100 verdicts over ~2s busy, want > 0", st.TestsPerSecond)
	}
	// 100 verdicts / ~2s busy: anything near 50 is right; a negative or
	// wildly inflated rate means the future start leaked into the window.
	if st.TestsPerSecond > 51 {
		t.Fatalf("tests_per_sec = %v, want ≈50 (future sweep start must not shrink the window)", st.TestsPerSecond)
	}
	if math.IsNaN(st.TestsPerSecond) || math.IsInf(st.TestsPerSecond, 0) {
		t.Fatalf("tests_per_sec = %v, not finite", st.TestsPerSecond)
	}
}

func TestStatsRateZeroBeforeFirstSweep(t *testing.T) {
	s, err := New(Config{MaxWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().TestsPerSecond; got != 0 {
		t.Fatalf("tests_per_sec = %v on a fresh server, want 0", got)
	}
}
