package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"tricheck/api"
	"tricheck/internal/opsim"
	"tricheck/internal/uspec"
)

// scSpec is an inline no-relaxations µspec config (an SC machine) for
// backend tests; the miswire hook routes exactly this profile to the
// wrong simulator.
var scSpec = uspec.Config{Name: "SCtest", OrderSameAddrRR: true, RespectDeps: true, Variant: uspec.Curr}.EmitSpec()

// decode400 asserts a structured JSON 400 and returns its body.
func decode400(t *testing.T, resp *http.Response) api.ErrorResponse {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %s, want 400", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type %q, want application/json", ct)
	}
	var er api.ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatalf("400 body is not an ErrorResponse: %v", err)
	}
	if er.Error == "" {
		t.Fatal("400 body has an empty error")
	}
	return er
}

// fieldNames flattens the field errors for assertion.
func fieldNames(er api.ErrorResponse) string {
	names := make([]string, len(er.Fields))
	for i, f := range er.Fields {
		names[i] = f.Field
	}
	return strings.Join(names, ",")
}

// TestVerify400NamesOffendingField: every rejection names the field(s)
// that caused it in a structured JSON body.
func TestVerify400NamesOffendingField(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, c := range []struct {
		name   string
		req    VerifyRequest
		fields string
	}{
		{"no selector", VerifyRequest{}, "litmus,suite,family"},
		{"two selectors", VerifyRequest{Family: "mp", Suite: "paper"}, "suite,family"},
		{"unknown suite", VerifyRequest{Suite: "nope"}, "suite"},
		{"unknown family", VerifyRequest{Family: "nope"}, "family"},
		{"bad isa", VerifyRequest{Family: "mp", ISA: "nope"}, "isa"},
		{"bad variant", VerifyRequest{Family: "mp", Variant: "nope"}, "variant"},
		{"bad litmus", VerifyRequest{Litmus: []string{"not litmus"}}, "litmus"},
		{"bad backend", VerifyRequest{Family: "mp", Backend: "axiomatic"}, "backend"},
		{"models+variant", VerifyRequest{Family: "mp", Variant: "curr", Models: []string{scSpec}}, "models,variant"},
		{"bad model spec", VerifyRequest{Family: "mp", Models: []string{"uspec ???"}}, "models[0]"},
		{"opsim unsupported", VerifyRequest{Family: "mp", Backend: "opsim", Variant: "curr"}, "backend"},
	} {
		er := decode400(t, postVerify(t, ts.URL, c.req))
		if got := fieldNames(er); got != c.fields {
			t.Errorf("%s: fields %q, want %q (error: %s)", c.name, got, c.fields, er.Error)
		}
	}
}

// TestVerifyBackendOpsim: an opsim-only sweep over a supported inline
// model streams backend-tagged records and agrees with the axiomatic
// verdicts on the same family.
func TestVerifyBackendOpsim(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	uhbV, _ := drainStream(t, postVerify(t, ts.URL, VerifyRequest{Family: "sb", ISA: "base", Models: []string{scSpec}}))
	execsAfterUhb := s.Engine().Executions()
	opV, opSum := drainStream(t, postVerify(t, ts.URL, VerifyRequest{Family: "sb", ISA: "base", Models: []string{scSpec}, Backend: "opsim"}))
	if len(opV) != len(uhbV) {
		t.Fatalf("opsim streamed %d records, uhb %d", len(opV), len(uhbV))
	}
	// Backend-tagged memo keys: the warm uhb cache must not satisfy the
	// opsim sweep — every opsim job executes.
	if got := s.Engine().Executions() - execsAfterUhb; got != uint64(len(opV)) {
		t.Errorf("opsim sweep executed %d jobs, want %d (uhb cache crosstalk)", got, len(opV))
	}
	uhbByTest := map[string]VerdictRecord{}
	for _, v := range uhbV {
		if v.Backend != "" {
			t.Fatalf("uhb record carries backend %q", v.Backend)
		}
		uhbByTest[v.Test] = v
	}
	for _, v := range opV {
		if v.Backend != "opsim" {
			t.Fatalf("opsim record backend %q, want opsim", v.Backend)
		}
		u := uhbByTest[v.Test]
		if v.Key == u.Key || !strings.HasSuffix(v.Key, "+opsim") {
			t.Fatalf("opsim key %q not backend-tagged (uhb key %q)", v.Key, u.Key)
		}
		if v.Verdict != u.Verdict {
			t.Errorf("%s: opsim verdict %s, uhb %s", v.Test, v.Verdict, u.Verdict)
		}
		if v.Cached {
			t.Errorf("%s: cold opsim record claims cached", v.Test)
		}
	}
	if opSum.Backend != "opsim" || opSum.Divergent != 0 {
		t.Errorf("opsim summary: backend=%q divergent=%d", opSum.Backend, opSum.Divergent)
	}
}

// TestVerifyBackendBothCleanAndSkip: backend=both over the builtin curr
// matrix cross-checks the supported configs with zero divergences and
// marks the unsupported ones skipped in the summary.
func TestVerifyBackendBothCleanAndSkip(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	verdicts, sum := drainStream(t, postVerify(t, ts.URL, VerifyRequest{Family: "sb", ISA: "base", Variant: "curr", Backend: "both"}))
	for _, v := range verdicts {
		if v.Verdict == "Divergence" {
			t.Fatalf("%s on %s diverged: %+v", v.Test, v.Stack, v.Divergence)
		}
	}
	if sum.Divergent != 0 || sum.Backend != "both" {
		t.Fatalf("summary: backend=%q divergent=%d", sum.Backend, sum.Divergent)
	}
	skips := map[string]bool{}
	for _, ss := range sum.Stacks {
		skips[ss.Stack] = ss.OpsimSkipped != ""
	}
	for stack, skipped := range skips {
		supported := strings.Contains(stack, "+SC/") || strings.Contains(stack, "+WR/") ||
			strings.Contains(stack, "+rWR/") || strings.Contains(stack, "+TSO/") || strings.Contains(stack, "+nWR/")
		if skipped == supported {
			t.Errorf("stack %s: opsim_skipped=%v, want %v", stack, skipped, !supported)
		}
	}
}

// TestVerifyBackendBothDivergence is the service half of the
// divergence-path e2e: with the driver deliberately miswired, a
// backend=both sweep must stream Divergence records carrying the
// symmetric difference and a trace witness — and terminate with a
// summary, not an error record.
func TestVerifyBackendBothDivergence(t *testing.T) {
	opsim.SetMiswired(true)
	defer opsim.SetMiswired(false)
	s, ts := newTestServer(t, Config{})
	verdicts, sum := drainStream(t, postVerify(t, ts.URL, VerifyRequest{Family: "sb", ISA: "base", Models: []string{scSpec}, Backend: "both"}))
	var diverged int
	for _, v := range verdicts {
		if v.Verdict != "Divergence" {
			continue
		}
		diverged++
		d := v.Divergence
		if d == nil {
			t.Fatalf("%s: Divergence verdict without a payload", v.Test)
		}
		if len(d.OpsimOnly) == 0 || len(d.UhbObservable) == 0 || len(d.OpsimObservable) == 0 {
			t.Fatalf("%s: incomplete divergence payload: %+v", v.Test, d)
		}
		if d.WitnessOutcome == "" || len(d.Witness) == 0 {
			t.Fatalf("%s: divergence payload has no trace witness", v.Test)
		}
	}
	if diverged == 0 {
		t.Fatal("miswired both-backend sweep streamed no Divergence records")
	}
	if sum.Divergent != diverged {
		t.Errorf("summary divergent=%d, stream had %d", sum.Divergent, diverged)
	}
	if got := s.Stats().Divergences; got == 0 {
		t.Error("stats do not count the divergences")
	}
}
