package server

import (
	"fmt"

	"tricheck/internal/core"
	"tricheck/internal/corpus"
	"tricheck/internal/cover"
	"tricheck/internal/litmus"
	"tricheck/internal/obs"
	"tricheck/internal/report"
	"tricheck/internal/uspec"
)

// This file is the service's wire format: the /v1/verify request body,
// the NDJSON records it streams back, and the /v1/stats snapshot. The
// client package aliases these types, so the Go client and the server
// can never disagree about the schema.

// VerifyRequest is the JSON body of POST /v1/verify. Exactly one of
// Litmus, Suite or Family selects the tests; ISA and Variant select the
// stacks (empty = "both").
type VerifyRequest struct {
	// Litmus holds inline herd C litmus sources to verify.
	Litmus []string `json:"litmus,omitempty"`
	// Suite selects a built-in suite: "paper" (the 1,701-test Figure 15
	// suite) or "all" (every shipped shape, fully expanded).
	Suite string `json:"suite,omitempty"`
	// Family selects one built-in litmus family by shape name (mp, sb,
	// wrc, ...), fully expanded over the memory orders.
	Family string `json:"family,omitempty"`
	// ISA is the stack selector's ISA flavour: base, base+a or both
	// (default both).
	ISA string `json:"isa,omitempty"`
	// Variant is the MCM version: curr, ours or both (default both).
	// Mutually exclusive with Models (an inline model spec carries its
	// own variant).
	Variant string `json:"variant,omitempty"`
	// Models holds inline µspec model specs (the uspec spec text format)
	// to verify instead of the builtin Table 7 matrix. Each spec is
	// validated and paired with the Figure 15 mapping of its declared
	// variant over the selected ISA flavours; memo-cache identity comes
	// from the spec's config fingerprint, so a custom model never
	// collides with a same-named builtin.
	Models []string `json:"models,omitempty"`
	// Workers requests a farm worker count; the server clamps it to its
	// per-request budget (0 = the budget itself).
	Workers int `json:"workers,omitempty"`
}

// VerdictRecord is one streamed (test, stack) verdict, emitted in farm
// completion order.
type VerdictRecord struct {
	Type string `json:"type"` // "verdict"
	// Trace is the request's trace ID (hex): every record of one /v1/verify
	// stream carries the same ID, correlating it with /v1/traces spans and
	// server logs.
	Trace string `json:"trace,omitempty"`
	Done  int    `json:"done"`
	Total int    `json:"total"`
	Test  string `json:"test"`
	Stack string `json:"stack"`
	// Verdict is Bug, OverlyStrict or Equivalent.
	Verdict string `json:"verdict"`
	// Key is the job's memo fingerprint (core.JobKey): test content hash
	// + stack content hash, comparable across processes.
	Key string `json:"key"`
	// Cached reports a memo-cache hit or deduplicated job (no verifier
	// execution).
	Cached bool `json:"cached"`
}

// TallyJSON is a verdict tally in wire form.
type TallyJSON struct {
	Bugs          int `json:"bugs"`
	Strict        int `json:"strict"`
	Equivalent    int `json:"equivalent"`
	Total         int `json:"total"`
	SpecifiedBugs int `json:"specified_bugs"`
}

func tallyJSON(t core.Tally) TallyJSON {
	return TallyJSON{
		Bugs:          t.Bugs,
		Strict:        t.Strict,
		Equivalent:    t.Equivalent,
		Total:         t.Total,
		SpecifiedBugs: t.SpecifiedBugs,
	}
}

// FamilyTally is one litmus family's tally within a stack.
type FamilyTally struct {
	Family string `json:"family"`
	TallyJSON
}

// StackSummary is one stack's aggregated result, mirroring
// core.SuiteResult: the overall tally plus per-family tallies in sorted
// family order (the same order the CSV reporter emits).
type StackSummary struct {
	Stack    string        `json:"stack"`
	Tally    TallyJSON     `json:"tally"`
	Families []FamilyTally `json:"families"`
}

// SummaryRecord is the stream's terminal record: the running tallies of
// report.StreamProgress (done/total/bugs/strict/equivalent/cached) plus
// the per-stack aggregation. On an aborted sweep Done < Total and
// Stacks is empty.
type SummaryRecord struct {
	Type string `json:"type"` // "summary"
	// Trace is the request's trace ID (hex), matching every verdict
	// record of the same stream.
	Trace      string `json:"trace,omitempty"`
	Done       int    `json:"done"`
	Total      int    `json:"total"`
	Bugs       int    `json:"bugs"`
	Strict     int    `json:"strict"`
	Equivalent int    `json:"equivalent"`
	Cached     int    `json:"cached"`
	// ElapsedSeconds is first-to-last result wall time;
	// TestsPerSecond = Done / ElapsedSeconds (0 on a degenerate window).
	ElapsedSeconds float64        `json:"elapsed_seconds"`
	TestsPerSecond float64        `json:"tests_per_sec"`
	Stacks         []StackSummary `json:"stacks"`
	// Coverage is the engine ledger's totals at summary time — lifetime
	// engine state, not per-request (the shared memoizing engine makes a
	// per-request cut meaningless). The full per-(model, axiom) matrix
	// and verdict vectors live at GET /v1/coverage.
	Coverage CoverageTotals `json:"coverage"`
}

// CoverageSnapshot is the GET /v1/coverage response: the engine
// coverage ledger's deterministic JSON snapshot (cover.Snapshot) — the
// per-(model, axiom) fired/edges/cycles matrix, the (test, config)
// verdict vectors, and the totals.
type CoverageSnapshot = cover.Snapshot

// CoverageTotals is a coverage ledger's summary line (cover.Totals).
type CoverageTotals = cover.Totals

// TraceJSON is one retained slow span as GET /v1/traces serves it.
type TraceJSON = obs.TraceRecord

// ErrorRecord is the stream's terminal record when the sweep failed.
type ErrorRecord struct {
	Type  string `json:"type"` // "error"
	Error string `json:"error"`
}

// MemoStatsJSON is the engine memo cache's counter snapshot.
type MemoStatsJSON struct {
	Hits    uint64  `json:"hits"`
	Misses  uint64  `json:"misses"`
	Len     int     `json:"len"`
	Cap     int     `json:"cap"`
	HitRate float64 `json:"hit_rate"`
}

// StatsRecord is the GET /v1/stats response.
type StatsRecord struct {
	UptimeSeconds    float64 `json:"uptime_seconds"`
	RequestsTotal    int64   `json:"requests_total"`
	RequestsInFlight int64   `json:"requests_inflight"`
	RequestErrors    int64   `json:"request_errors"`
	// RequestCancels counts requests aborted by client disconnect or
	// context cancellation — the supported abort flow, kept separate
	// from RequestErrors so the error counter stays alertable.
	RequestCancels   int64 `json:"requests_cancelled"`
	VerdictsStreamed int64 `json:"verdicts_streamed"`
	// TestsPerSecond is the cumulative streaming rate: verdicts streamed
	// over the wall-clock seconds requests spent sweeping.
	TestsPerSecond float64 `json:"tests_per_sec"`
	// JobsExecuted counts actual verifier executions (neither memoized
	// nor deduplicated) over the server's lifetime.
	JobsExecuted uint64         `json:"jobs_executed"`
	Memo         *MemoStatsJSON `json:"memo,omitempty"`
	// Incremental reports the µhb incremental-acyclicity engine's
	// effectiveness: how often the per-candidate verdict reused the
	// maintained topological order vs. rebuilt it from scratch.
	Incremental *IncrementalStatsJSON `json:"incremental,omitempty"`
}

// IncrementalStatsJSON mirrors the tricheck_uhb_incremental_*_total
// counters in the stats payload, with the reuse ratio precomputed.
type IncrementalStatsJSON struct {
	Reuse      uint64  `json:"reuse"`
	Rebuild    uint64  `json:"rebuild"`
	ReuseRatio float64 `json:"reuse_ratio"`
}

// summarize builds the terminal summary record from the sweep's results,
// the tracker that observed its stream, and the engine ledger's totals.
func summarize(results []*core.SuiteResult, tr *report.Tracker, trace string, cov CoverageTotals) *SummaryRecord {
	sum := &SummaryRecord{
		Type:           "summary",
		Trace:          trace,
		Done:           tr.Done,
		Total:          tr.Total,
		Bugs:           tr.Bugs,
		Strict:         tr.Strict,
		Equivalent:     tr.Equivalent,
		Cached:         tr.Cached,
		ElapsedSeconds: tr.Elapsed().Seconds(),
		TestsPerSecond: tr.Rate(),
		Coverage:       cov,
	}
	for _, sr := range results {
		ss := StackSummary{Stack: sr.Stack.Name(), Tally: tallyJSON(sr.Tally)}
		for _, fam := range sr.FamilyNames() {
			ss.Families = append(ss.Families, FamilyTally{Family: fam, TallyJSON: tallyJSON(*sr.ByFamily[fam])})
		}
		sum.Stacks = append(sum.Stacks, ss)
	}
	return sum
}

// resolve turns a request into the sweep's tests and stacks.
func resolve(req *VerifyRequest) ([]*litmus.Test, []core.Stack, error) {
	selectors := 0
	if len(req.Litmus) > 0 {
		selectors++
	}
	if req.Suite != "" {
		selectors++
	}
	if req.Family != "" {
		selectors++
	}
	if selectors != 1 {
		return nil, nil, fmt.Errorf("exactly one of litmus, suite or family must be set")
	}
	var tests []*litmus.Test
	switch {
	case len(req.Litmus) > 0:
		var err error
		if tests, err = corpus.ParseStrings(req.Litmus); err != nil {
			return nil, nil, err
		}
	case req.Suite != "":
		switch req.Suite {
		case "paper":
			tests = litmus.PaperSuite()
		case "all":
			for _, shape := range litmus.AllShapes() {
				tests = append(tests, shape.Generate()...)
			}
		default:
			return nil, nil, fmt.Errorf("unknown suite %q (want paper or all)", req.Suite)
		}
	default:
		shape := litmus.ShapeByName(req.Family)
		if shape == nil {
			return nil, nil, fmt.Errorf("unknown family %q", req.Family)
		}
		tests = shape.Generate()
	}
	isa := req.ISA
	if isa == "" {
		isa = "both"
	}
	var stacks []core.Stack
	var err error
	if len(req.Models) > 0 {
		if req.Variant != "" {
			return nil, nil, fmt.Errorf("variant selects builtin models; inline model specs carry their own variant — drop one of the two")
		}
		models := make([]*uspec.Model, 0, len(req.Models))
		for i, src := range req.Models {
			s, perr := uspec.ParseSpec(src)
			if perr != nil {
				return nil, nil, fmt.Errorf("model spec %d: %w", i, perr)
			}
			models = append(models, uspec.New(*s))
		}
		stacks, err = core.SelectStacksModels(isa, models)
	} else {
		variant := req.Variant
		if variant == "" {
			variant = "both"
		}
		stacks, err = core.SelectStacks(isa, variant)
	}
	if err != nil {
		return nil, nil, err
	}
	return tests, stacks, nil
}
