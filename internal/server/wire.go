package server

import (
	"tricheck/api"
	"tricheck/internal/core"
	"tricheck/internal/cover"
	"tricheck/internal/obs"
	"tricheck/internal/report"
)

// The service's wire format lives in the versioned tricheck/api package,
// which both this server and the Go client import — the two sides can
// never disagree about the schema, and external consumers depend on api
// without touching server internals. The aliases below keep this
// package's historical names working; this file owns only the
// core→wire conversions.

type (
	VerifyRequest        = api.VerifyRequest
	VerdictRecord        = api.VerdictRecord
	TallyJSON            = api.TallyJSON
	FamilyTally          = api.FamilyTally
	StackSummary         = api.StackSummary
	SummaryRecord        = api.SummaryRecord
	ErrorRecord          = api.ErrorRecord
	MemoStatsJSON        = api.MemoStatsJSON
	StatsRecord          = api.StatsRecord
	IncrementalStatsJSON = api.IncrementalStatsJSON
	CoverageTotals       = api.CoverageTotals
)

// CoverageSnapshot is the GET /v1/coverage response. The handler serves
// the engine ledger's own snapshot (cover.Snapshot); its JSON encoding
// is locked field-for-field to api.CoverageSnapshot by the wire tests.
type CoverageSnapshot = cover.Snapshot

// TraceJSON is one retained slow span as GET /v1/traces serves it.
type TraceJSON = obs.TraceRecord

func tallyJSON(t core.Tally) TallyJSON {
	return TallyJSON{
		Bugs:          t.Bugs,
		Strict:        t.Strict,
		Equivalent:    t.Equivalent,
		Divergent:     t.Divergent,
		Total:         t.Total,
		SpecifiedBugs: t.SpecifiedBugs,
	}
}

func coverageTotals(t cover.Totals) CoverageTotals {
	return CoverageTotals{
		Models:       t.Models,
		Jobs:         t.Jobs,
		AxiomsFired:  t.AxiomsFired,
		AxiomsEdged:  t.AxiomsEdged,
		AxiomsCycled: t.AxiomsCycled,
		Vectors:      t.Vectors,
	}
}

// divergenceJSON converts a cross-check diff into its wire payload.
func divergenceJSON(op *core.OpsimMemo, uhbObservable []string) *api.Divergence {
	d := &api.Divergence{
		UhbObservable:   uhbObservable,
		OpsimObservable: outcomeStrings(op.Observable),
		UhbOnly:         outcomeStrings(op.UhbOnly),
		OpsimOnly:       outcomeStrings(op.OpsimOnly),
		WitnessOutcome:  string(op.WitnessOutcome),
		Witness:         op.Witness,
	}
	return d
}

func outcomeStrings[T ~string](os []T) []string {
	if os == nil {
		return nil
	}
	out := make([]string, len(os))
	for i, o := range os {
		out[i] = string(o)
	}
	return out
}

// summarize builds the terminal summary record from the sweep's results,
// the tracker that observed its stream, and the engine ledger's totals.
func summarize(results []*core.SuiteResult, tr *report.Tracker, trace string, backend core.Backend, cov cover.Totals) *SummaryRecord {
	sum := &SummaryRecord{
		Type:           "summary",
		Trace:          trace,
		Done:           tr.Done,
		Total:          tr.Total,
		Bugs:           tr.Bugs,
		Strict:         tr.Strict,
		Equivalent:     tr.Equivalent,
		Divergent:      tr.Divergent,
		Cached:         tr.Cached,
		ElapsedSeconds: tr.Elapsed().Seconds(),
		TestsPerSecond: tr.Rate(),
		Coverage:       coverageTotals(cov),
	}
	if backend != core.BackendUHB {
		sum.Backend = backend.String()
	}
	for _, sr := range results {
		ss := StackSummary{
			Stack:        sr.Stack.Name(),
			Tally:        tallyJSON(sr.Tally),
			OpsimSkipped: opsimSkipNote(sr),
		}
		for _, fam := range sr.FamilyNames() {
			ss.Families = append(ss.Families, FamilyTally{Family: fam, TallyJSON: tallyJSON(*sr.ByFamily[fam])})
		}
		sum.Stacks = append(sum.Stacks, ss)
	}
	return sum
}
