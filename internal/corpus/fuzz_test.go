package corpus

import (
	"strings"
	"testing"

	"tricheck/internal/litmus"
)

// FuzzParseLitmus fuzzes the herd .litmus parser with the invariant the
// verification farm's memo cache relies on: for ANY input the parser
// accepts, emit→parse→emit must be a byte fixed point with a stable
// canonical fingerprint — and nothing may panic. Seeds cover every
// paper-suite shape (first, middle and last memory-order variant, so
// relaxed, mixed and seq_cst spellings all appear), the extended shapes
// with fences, dependencies and memory observers, plus hand-written
// format corner cases.
func FuzzParseLitmus(f *testing.F) {
	for _, shape := range litmus.AllShapes() {
		tests := shape.Generate()
		for _, i := range []int{0, len(tests) / 2, len(tests) - 1} {
			src, err := EmitString(tests[i])
			if err != nil {
				f.Fatalf("seed %s: %v", tests[i].Name, err)
			}
			f.Add(src)
		}
	}
	f.Add("C t\n{}\nP0 (atomic_int* x) {\n  atomic_store_explicit(x, 1, memory_order_seq_cst);\n}\n\nexists (x=1)\n")
	f.Add("C t\n{ x=0; y=0 }\nP0 (atomic_int* x) {\n  *x = 1;\n}\nP1 (atomic_int* x, atomic_int* y) {\n  int r0 = *x;\n  if (r0) atomic_store_explicit(y, 1, memory_order_relaxed);\n}\n\nexists (1:r0=1)\n")
	f.Add("C t\n(* tricheck: name=t[rlx] family=t observers=0:r0 *)\n{}\nP0 (atomic_int* x) {\n  int r0 = atomic_fetch_add_explicit(x, 0, memory_order_acq_rel);\n}\n\n~exists (0:r0=0)\n")
	f.Add("C deep\n{}\nP0 (atomic_int* x, atomic_int* y) {\n  int r0 = atomic_load_explicit(y, memory_order_acquire);\n  int r1 = atomic_load_explicit((atomic_int*)r0, memory_order_relaxed);\n}\n\nexists (0:r1=0)\n")

	f.Fuzz(func(t *testing.T, src string) {
		parsed, err := ParseString(src) // must never panic
		if err != nil {
			return // rejected input: fine
		}
		first, err := EmitString(parsed)
		if err != nil {
			t.Fatalf("accepted input failed to emit: %v\ninput:\n%s", err, src)
		}
		reparsed, err := ParseString(first)
		if err != nil {
			t.Fatalf("emitted output failed to re-parse: %v\nemitted:\n%s", err, first)
		}
		second, err := EmitString(reparsed)
		if err != nil {
			t.Fatalf("re-emit failed: %v", err)
		}
		if first != second {
			t.Fatalf("emit→parse→emit is not a fixed point:\nfirst:\n%s\nsecond:\n%s", first, second)
		}
		if parsed.Fingerprint() != reparsed.Fingerprint() {
			t.Fatalf("canonical fingerprint drifted across round trip:\n%s", first)
		}
	})
}

// TestParseRejectsDanglingLocations pins the hardening the fuzzer
// motivated: locations declared after thread bodies, non-identifier
// location names and empty test names are rejected rather than
// producing programs that break downstream.
func TestParseRejectsDanglingLocations(t *testing.T) {
	cases := []struct{ name, src, wantErr string }{
		{
			"late init block",
			"C t\nP0 (atomic_int* x) {\n  *x = 1;\n}\n{ y=0 }\n",
			"after the thread bodies",
		},
		{
			"non-identifier location",
			"C t\n{ a b=0 }\nP0 (atomic_int* x) {\n  *x = 1;\n}\n",
			"not an identifier",
		},
		{
			"empty name",
			"C  \n{}\nP0 (atomic_int* x) {\n  *x = 1;\n}\n",
			"want header",
		},
	}
	for _, c := range cases {
		_, err := ParseString(c.src)
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error %v, want substring %q", c.name, err, c.wantErr)
		}
	}
}

// TestParseAsymmetricParams: herd permits thread headers with differing
// parameter lists; the pre-scan makes every location visible to every
// thread.
func TestParseAsymmetricParams(t *testing.T) {
	src := "C t\n{}\nP0 (atomic_int* x) {\n  atomic_store_explicit(y, 1, memory_order_relaxed);\n}\nP1 (atomic_int* y) {\n  int r0 = atomic_load_explicit(y, memory_order_relaxed);\n}\n\nexists (1:r0=1)\n"
	parsed, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := parsed.Prog.Mem().NumLocs; got != 2 {
		t.Errorf("NumLocs = %d, want 2", got)
	}
}

// TestEmitHostileNames: emitting a test whose name could corrupt the
// file format degrades to a sanitized name and still round-trips to a
// byte fixed point.
func TestEmitHostileNames(t *testing.T) {
	base := litmus.MP.Generate()[0]
	hostile := &litmus.Test{
		Name:      "evil *) (* name",
		Shape:     &litmus.Shape{Name: "fam *)"},
		Prog:      base.Prog,
		Specified: base.Specified,
	}
	first, err := EmitString(hostile)
	if err != nil {
		t.Fatal(err)
	}
	reparsed, err := ParseString(first)
	if err != nil {
		t.Fatalf("hostile-name emission is unparseable: %v\n%s", err, first)
	}
	second, err := EmitString(reparsed)
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Errorf("hostile name broke the emit fixed point:\nfirst:\n%s\nsecond:\n%s", first, second)
	}
	if reparsed.Fingerprint() != litmus.FingerprintProgram(base.Prog) {
		t.Error("fingerprint drifted under name sanitization")
	}
}

// TestParseRejectsAmbiguousLabels: outcome labels are program-wide
// keys, so the same register name observed on two threads (herd allows
// per-thread register namespaces; TriCheck outcomes do not) and
// register/location label collisions are rejected instead of silently
// binding every clause to one thread.
func TestParseRejectsAmbiguousLabels(t *testing.T) {
	twoThreads := "C t\n{}\nP0 (atomic_int* x) {\n  int r0 = atomic_load_explicit(x, memory_order_relaxed);\n}\nP1 (atomic_int* x) {\n  int r0 = atomic_load_explicit(x, memory_order_relaxed);\n}\n\nexists (0:r0=1 /\\ 1:r0=1)\n"
	if _, err := ParseString(twoThreads); err == nil || !strings.Contains(err.Error(), "observed on both") {
		t.Errorf("cross-thread duplicate label: error %v, want 'observed on both'", err)
	}
	metaDup := "C t\n(* tricheck: observers=0:r0,1:r0 *)\n{}\nP0 (atomic_int* x) {\n  int r0 = atomic_load_explicit(x, memory_order_relaxed);\n}\nP1 (atomic_int* x) {\n  int r0 = atomic_load_explicit(x, memory_order_relaxed);\n}\n\nexists (0:r0=1)\n"
	if _, err := ParseString(metaDup); err == nil || !strings.Contains(err.Error(), "duplicate observer label") {
		t.Errorf("metadata duplicate label: error %v, want 'duplicate observer label'", err)
	}
}
