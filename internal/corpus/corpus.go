// Package corpus gives TriCheck an on-disk litmus-test corpus: a
// herd-compatible .litmus parser and emitter (herd.go) plus a
// directory-tree loader/registry, so the generator's suites can be
// exported to files, external corpora imported, and named subsets
// addressed from the CLI.
//
// Layout convention: a corpus is a directory tree whose .litmus files
// each hold one test in the herd C litmus format. The first path
// component below the corpus root names the test's family (subset), so
//
//	corpus/
//	  mp/mp-rlx.rlx.rlx.rlx.litmus
//	  mp/mp-rlx.rlx.rlx.acq.litmus
//	  iriw/iriw-sc.sc.sc.sc.sc.sc.litmus
//
// loads as families "mp" and "iriw". A `(* tricheck: family=... *)`
// metadata comment inside a file overrides the directory-derived
// family. Export writes this layout.
package corpus

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"tricheck/internal/litmus"
)

// Entry is one corpus test with its provenance.
type Entry struct {
	// Name is the test's full name (generator syntax when the file
	// carries tricheck metadata).
	Name string
	// Family is the subset the test belongs to.
	Family string
	// Path is the file path relative to the corpus root.
	Path string
	// Test is the parsed test.
	Test *litmus.Test
}

// Corpus is a registry of litmus tests loaded from a directory tree.
type Corpus struct {
	// Dir is the corpus root.
	Dir string
	// Entries lists the tests in deterministic (path) order.
	Entries []*Entry

	byName map[string]*Entry
}

// Load reads every .litmus file under dir (recursively, in lexical
// order) into a registry. A file that fails to parse aborts the load
// with its path in the error.
func Load(dir string) (*Corpus, error) {
	c := &Corpus{Dir: dir, byName: map[string]*Entry{}}
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".litmus") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		t, familyFromMeta, err := parseWithMeta(string(data))
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			rel = path
		}
		e := &Entry{Name: t.Name, Family: familyOfEntry(t, rel, familyFromMeta), Path: rel, Test: t}
		// The family may come from the directory rather than file
		// metadata; keep the Shape consistent so per-family tallies and
		// reports agree with the registry.
		if t.Shape != nil && t.Shape.Name != e.Family {
			t.Shape.Name = e.Family
		}
		c.Entries = append(c.Entries, e)
		if dup, ok := c.byName[e.Name]; ok {
			return fmt.Errorf("%s: duplicate test name %q (also in %s)", path, e.Name, dup.Path)
		}
		c.byName[e.Name] = e
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("corpus: loading %s: %w", dir, err)
	}
	return c, nil
}

// familyOfEntry resolves a test's family with the documented
// precedence: an explicit tricheck metadata family wins, then the first
// directory component of the relative path, then the parser's guess
// from the test name.
func familyOfEntry(t *litmus.Test, rel string, familyFromMeta bool) string {
	if familyFromMeta && t.Shape != nil && t.Shape.Name != "" {
		return t.Shape.Name
	}
	if i := strings.IndexByte(rel, filepath.Separator); i > 0 {
		return rel[:i]
	}
	if t.Shape != nil && t.Shape.Name != "" {
		return t.Shape.Name
	}
	return "corpus"
}

// Len returns the number of tests.
func (c *Corpus) Len() int { return len(c.Entries) }

// Tests returns every test in registry order.
func (c *Corpus) Tests() []*litmus.Test {
	out := make([]*litmus.Test, len(c.Entries))
	for i, e := range c.Entries {
		out[i] = e.Test
	}
	return out
}

// Lookup finds a test by name, or nil.
func (c *Corpus) Lookup(name string) *Entry { return c.byName[name] }

// Families returns the family names in sorted order.
func (c *Corpus) Families() []string {
	seen := map[string]bool{}
	var out []string
	for _, e := range c.Entries {
		if !seen[e.Family] {
			seen[e.Family] = true
			out = append(out, e.Family)
		}
	}
	sort.Strings(out)
	return out
}

// Subset returns the tests of one family, in registry order.
func (c *Corpus) Subset(family string) []*litmus.Test {
	var out []*litmus.Test
	for _, e := range c.Entries {
		if e.Family == family {
			out = append(out, e.Test)
		}
	}
	return out
}

// Export writes tests to dir as <family>/<sanitized-name>.litmus files
// in the herd C litmus format, creating directories as needed and
// overwriting existing files. It returns the number of files written.
// Files from a previous export that are no longer in the selection are
// NOT removed; export into a fresh directory when the corpus must
// mirror the selection exactly.
func Export(dir string, tests []*litmus.Test) (int, error) {
	n := 0
	for _, t := range tests {
		family := "corpus"
		if t.Shape != nil && t.Shape.Name != "" {
			family = t.Shape.Name
		}
		sub := filepath.Join(dir, family)
		if err := os.MkdirAll(sub, 0o755); err != nil {
			return n, fmt.Errorf("corpus: export: %w", err)
		}
		src, err := EmitString(t)
		if err != nil {
			return n, fmt.Errorf("corpus: export %s: %w", t.Name, err)
		}
		path := filepath.Join(sub, SanitizeName(t.Name)+".litmus")
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			return n, fmt.Errorf("corpus: export %s: %w", t.Name, err)
		}
		n++
	}
	return n, nil
}
