package corpus

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tricheck/internal/c11"
	"tricheck/internal/litmus"
)

// TestRoundTripPaperSuite checks the satellite requirement: parse →
// emit → parse is a fixed point on the full PaperSuite(), and canonical
// fingerprints are stable across the round trip.
func TestRoundTripPaperSuite(t *testing.T) {
	suite := litmus.PaperSuite()
	if len(suite) != 1701 {
		t.Fatalf("paper suite has %d tests, want 1701", len(suite))
	}
	for _, tst := range suite {
		first, err := EmitString(tst)
		if err != nil {
			t.Fatalf("%s: emit: %v", tst.Name, err)
		}
		parsed, err := ParseString(first)
		if err != nil {
			t.Fatalf("%s: parse: %v\n%s", tst.Name, err, first)
		}
		second, err := EmitString(parsed)
		if err != nil {
			t.Fatalf("%s: re-emit: %v", tst.Name, err)
		}
		if first != second {
			t.Fatalf("%s: emit/parse/emit is not a fixed point\nfirst:\n%s\nsecond:\n%s", tst.Name, first, second)
		}
		if got, want := parsed.Fingerprint(), tst.Fingerprint(); got != want {
			t.Fatalf("%s: fingerprint changed across round trip: %s → %s", tst.Name, want, got)
		}
		if parsed.Name != tst.Name {
			t.Errorf("round trip renamed %s to %s", tst.Name, parsed.Name)
		}
		if parsed.Specified != tst.Specified {
			t.Errorf("%s: specified outcome changed: %q → %q", tst.Name, tst.Specified, parsed.Specified)
		}
		if parsed.Shape.Name != tst.Shape.Name {
			t.Errorf("%s: family changed: %q → %q", tst.Name, tst.Shape.Name, parsed.Shape.Name)
		}
	}
}

// TestRoundTripExtendedShapes covers dependencies (address and
// control), fences and RMWs on shapes outside the paper suite, where
// the emitter supports them.
func TestRoundTripExtendedShapes(t *testing.T) {
	for _, shape := range litmus.ExtendedShapes() {
		tests := shape.Generate()
		// One instantiation per shape keeps the test fast; the paper
		// suite already covers every memory order combination.
		tst := tests[0]
		first, err := EmitString(tst)
		if err != nil {
			t.Logf("%s: emit unsupported (%v), skipping", tst.Name, err)
			continue
		}
		parsed, err := ParseString(first)
		if err != nil {
			t.Fatalf("%s: parse: %v\n%s", tst.Name, err, first)
		}
		second, err := EmitString(parsed)
		if err != nil {
			t.Fatalf("%s: re-emit: %v", tst.Name, err)
		}
		if first != second {
			t.Fatalf("%s: emit/parse/emit is not a fixed point\nfirst:\n%s\nsecond:\n%s", tst.Name, first, second)
		}
		if got, want := parsed.Fingerprint(), tst.Fingerprint(); got != want {
			t.Fatalf("%s: fingerprint changed across round trip", tst.Name)
		}
	}
}

// TestParsePlainHerd parses a metadata-free herd C file, deriving
// observers from the exists clause.
func TestParsePlainHerd(t *testing.T) {
	src := `C MP+rel+acq
{ x=0; y=0; }

P0 (atomic_int* x, atomic_int* y) {
  atomic_store_explicit(x, 1, memory_order_relaxed);
  atomic_store_explicit(y, 1, memory_order_release);
}

P1 (atomic_int* x, atomic_int* y) {
  int r0 = atomic_load_explicit(y, memory_order_acquire);
  int r1 = atomic_load_explicit(x, memory_order_relaxed);
}

exists (1:r0=1 /\ 1:r1=0)
`
	tst, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if tst.Name != "MP+rel+acq" {
		t.Errorf("name = %q", tst.Name)
	}
	if string(tst.Specified) != "r0=1; r1=0" {
		t.Errorf("specified = %q", tst.Specified)
	}
	// The parsed test must fingerprint identically to the equivalent
	// generated test (canonical fingerprints ignore naming).
	gen := litmus.MP.Instantiate([]c11.Order{c11.Rlx, c11.Rel, c11.Acq, c11.Rlx})
	if got, want := tst.Fingerprint(), gen.Fingerprint(); got != want {
		t.Errorf("parsed fingerprint %s != generated %s", got, want)
	}
}

// TestExportLoad exercises the directory registry: export a few
// families, load them back, and check names, families and subsets.
func TestExportLoad(t *testing.T) {
	dir := t.TempDir()
	var tests []*litmus.Test
	tests = append(tests, litmus.MP.Generate()[:5]...)
	tests = append(tests, litmus.SB.Generate()[:3]...)
	n, err := Export(dir, tests)
	if err != nil {
		t.Fatal(err)
	}
	if n != 8 {
		t.Fatalf("exported %d files, want 8", n)
	}
	c, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 8 {
		t.Fatalf("loaded %d tests, want 8", c.Len())
	}
	if got := c.Families(); len(got) != 2 || got[0] != "mp" || got[1] != "sb" {
		t.Fatalf("families = %v", got)
	}
	if got := len(c.Subset("mp")); got != 5 {
		t.Fatalf("mp subset has %d tests, want 5", got)
	}
	for _, orig := range tests {
		e := c.Lookup(orig.Name)
		if e == nil {
			t.Fatalf("lookup %q failed", orig.Name)
		}
		if e.Test.Fingerprint() != orig.Fingerprint() {
			t.Errorf("%s: fingerprint changed across export/load", orig.Name)
		}
	}
	// Files land in family subdirectories.
	if _, err := os.Stat(filepath.Join(dir, "mp")); err != nil {
		t.Errorf("missing mp family dir: %v", err)
	}
}

// TestParseMultilineComment: herd corpora routinely carry block
// comments spanning lines; they must be stripped before parsing.
func TestParseMultilineComment(t *testing.T) {
	src := `C mp-commented
(* a multi-line
   header comment, as emitted by diy
 *)
{}
P0 (atomic_int* x) {
  atomic_store_explicit(x, 1, memory_order_relaxed);
}
P1 (atomic_int* x) {
  int r0 = atomic_load_explicit(x, memory_order_relaxed);
}
exists (1:r0=1)
`
	tst, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if string(tst.Specified) != "r0=1" {
		t.Errorf("specified = %q", tst.Specified)
	}
}

// TestParseForallRejected: forall final-state conditions have inverted
// semantics and must not be silently treated as exists.
func TestParseForallRejected(t *testing.T) {
	src := `C bad
{}
P0 (atomic_int* x) {
  atomic_store_explicit(x, 1, memory_order_relaxed);
}
P1 (atomic_int* x) {
  int r0 = atomic_load_explicit(x, memory_order_relaxed);
}
forall (1:r0=1)
`
	if _, err := ParseString(src); err == nil || !strings.Contains(err.Error(), "forall") {
		t.Fatalf("err = %v, want forall rejection", err)
	}
}

// TestDirectoryFamilyBeatsNameGuess: without metadata, the directory
// component wins over the family guessed from a dashed test name.
func TestDirectoryFamilyBeatsNameGuess(t *testing.T) {
	dir := t.TempDir()
	src := `C mp-custom-variant
{}
P0 (atomic_int* x) {
  atomic_store_explicit(x, 1, memory_order_seq_cst);
}
P1 (atomic_int* x) {
  int r0 = atomic_load_explicit(x, memory_order_seq_cst);
}
exists (1:r0=0)
`
	if err := os.MkdirAll(filepath.Join(dir, "custom"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "custom", "mp-custom-variant.litmus"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Entries[0].Family; got != "custom" {
		t.Errorf("family = %q, want custom (directory over name guess)", got)
	}
	if len(c.Subset("custom")) != 1 {
		t.Error("Subset(custom) is empty")
	}
}

// TestFamilyFromDirectory derives the family from the path when a file
// has no metadata comment and an opaque name.
func TestFamilyFromDirectory(t *testing.T) {
	dir := t.TempDir()
	src := `C weirdname
{}
P0 (atomic_int* x) {
  atomic_store_explicit(x, 1, memory_order_seq_cst);
}
P1 (atomic_int* x) {
  int r0 = atomic_load_explicit(x, memory_order_seq_cst);
}
exists (1:r0=0)
`
	if err := os.MkdirAll(filepath.Join(dir, "myfam"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "myfam", "weirdname.litmus"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Entries[0].Family; got != "myfam" {
		t.Errorf("family = %q, want myfam", got)
	}
}
