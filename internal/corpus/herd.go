package corpus

import (
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"

	"tricheck/internal/c11"
	"tricheck/internal/litmus"
	"tricheck/internal/mem"
)

// This file implements the on-disk .litmus exchange format: the C
// flavour of the herd litmus format (as consumed by herd7 and produced
// by the diy generators), which is the lingua franca for machine-checked
// memory-model test corpora. A generated test renders as:
//
//	C mp-rlx.rlx.rlx.rlx
//	(* tricheck: name=mp[rlx,rlx,rlx,rlx] family=mp observers=1:r0,1:r1 *)
//	{}
//
//	P0 (atomic_int* x, atomic_int* y) {
//	  atomic_store_explicit(x, 1, memory_order_relaxed);
//	  atomic_store_explicit(y, 1, memory_order_relaxed);
//	}
//
//	P1 (atomic_int* x, atomic_int* y) {
//	  int r0 = atomic_load_explicit(y, memory_order_relaxed);
//	  int r1 = atomic_load_explicit(x, memory_order_relaxed);
//	}
//
//	exists (1:r0=1 /\ 1:r1=0)
//
// The `(* tricheck: ... *)` comment is optional metadata that preserves
// the exact generator name, litmus family and observer list across a
// round trip; herd tools ignore it as a comment, and Parse reconstructs
// all three from the surrounding file when it is absent.
//
// Supported statement subset: atomic_{load,store}_explicit,
// atomic_fetch_add_explicit, atomic_exchange_explicit,
// atomic_thread_fence, non-atomic *x accesses, register data operands
// (data dependencies), `(atomic_int*)r` addresses (address
// dependencies), and `if (r)` statement prefixes (control
// dependencies; note herd gives these genuine conditional semantics
// while TriCheck's evaluators treat them as dependency edges only).

// orderName maps a C11 order to its <stdatomic.h> spelling.
func orderName(o c11.Order) (string, error) {
	switch o {
	case c11.Rlx:
		return "memory_order_relaxed", nil
	case c11.Acq:
		return "memory_order_acquire", nil
	case c11.Rel:
		return "memory_order_release", nil
	case c11.AcqRel:
		return "memory_order_acq_rel", nil
	case c11.SC:
		return "memory_order_seq_cst", nil
	}
	return "", fmt.Errorf("corpus: order %s has no memory_order spelling", o)
}

func orderOf(s string) (c11.Order, error) {
	switch s {
	case "memory_order_relaxed":
		return c11.Rlx, nil
	case "memory_order_acquire":
		return c11.Acq, nil
	case "memory_order_release":
		return c11.Rel, nil
	case "memory_order_acq_rel":
		return c11.AcqRel, nil
	case "memory_order_seq_cst":
		return c11.SC, nil
	}
	return 0, fmt.Errorf("corpus: unknown memory order %q", s)
}

// SanitizeName renders a generator test name ("mp[rlx,sc]") as a
// herd-friendly identifier ("mp-rlx.sc"), also used for file names.
func SanitizeName(s string) string {
	return strings.NewReplacer("[", "-", "]", "", ",", ".", " ", "").Replace(s)
}

var (
	// unsafeNameChars is what safeName strips from emitted headers: a
	// header name containing "(*" or "*)" would corrupt the comment
	// structure of the emitted file.
	unsafeNameChars = regexp.MustCompile(`[^\w.+-]`)
	// metaSafeRe bounds what may appear as a metadata value: generator
	// names ("mp[rlx,sc]") pass through exactly; anything that could
	// break the whitespace-split key=value metadata syntax (or the
	// comment itself) is sanitized first.
	metaSafeRe = regexp.MustCompile(`^[\w.\[\],+-]+$`)
	// identRe is a herd identifier (location and register names).
	identRe = regexp.MustCompile(`^\w+$`)
)

// safeName renders any test name as a herd-safe identifier: the
// SanitizeName rewriting plus replacement of every remaining character
// that could corrupt the emitted file. Idempotent, so emit→parse→emit
// reaches a byte fixed point even for hostile names.
func safeName(s string) string {
	s = unsafeNameChars.ReplaceAllString(SanitizeName(s), "-")
	if s == "" {
		return "test"
	}
	return s
}

// metaValue returns a value safe to embed in the tricheck metadata
// comment, preserving it exactly when possible.
func metaValue(s string) string {
	if s == "" || metaSafeRe.MatchString(s) {
		return s
	}
	return safeName(s)
}

// Emit writes a test in the herd C litmus format.
func Emit(w io.Writer, t *litmus.Test) error {
	s, err := EmitString(t)
	if err != nil {
		return err
	}
	_, err = io.WriteString(w, s)
	return err
}

// EmitString renders a test in the herd C litmus format. The rendering
// is deterministic: emitting, parsing and emitting again yields
// byte-identical output.
func EmitString(t *litmus.Test) (string, error) {
	mp := t.Prog.Mem()
	// Location names and observer labels become C identifiers in the
	// emitted file; anything else would silently produce an unparseable
	// (or differently-parsed) file.
	for _, l := range mp.LocNames {
		if !identRe.MatchString(l) {
			return "", fmt.Errorf("corpus: %s: location name %q is not an identifier", t.Name, l)
		}
	}
	for _, o := range mp.Observers {
		if !identRe.MatchString(o.Label) {
			return "", fmt.Errorf("corpus: %s: observer label %q is not an identifier", t.Name, o.Label)
		}
	}
	var b strings.Builder

	// Variable names: observed registers take their outcome label, the
	// rest get a positional name.
	varName := map[[2]int]string{}
	for _, o := range mp.Observers {
		varName[[2]int{o.Thread, o.Reg}] = o.Label
	}
	name := func(th int, reg int) string {
		if n, ok := varName[[2]int{th, reg}]; ok {
			return n
		}
		n := fmt.Sprintf("t%dr%d", th, reg)
		varName[[2]int{th, reg}] = n
		return n
	}

	fmt.Fprintf(&b, "C %s\n", safeName(t.Name))
	var obsMeta []string
	for _, o := range mp.Observers {
		obsMeta = append(obsMeta, fmt.Sprintf("%d:%s", o.Thread, o.Label))
	}
	for _, o := range mp.MemObservers {
		if mp.LocName(o.Loc) != o.Label {
			return "", fmt.Errorf("corpus: memory observer label %q differs from location name %q", o.Label, mp.LocName(o.Loc))
		}
		obsMeta = append(obsMeta, "m:"+o.Label)
	}
	family := ""
	if t.Shape != nil {
		family = t.Shape.Name
	}
	fmt.Fprintf(&b, "(* tricheck: name=%s family=%s observers=%s *)\n",
		metaValue(t.Name), metaValue(family), strings.Join(obsMeta, ","))
	b.WriteString("{}\n")

	params := make([]string, len(mp.LocNames))
	for i, l := range mp.LocNames {
		params[i] = "atomic_int* " + l
	}
	for th, ops := range t.Prog.Ops {
		fmt.Fprintf(&b, "\nP%d (%s) {\n", th, strings.Join(params, ", "))
		for _, op := range ops {
			stmt, err := emitStmt(mp, th, op, name)
			if err != nil {
				return "", fmt.Errorf("corpus: %s: %w", t.Name, err)
			}
			fmt.Fprintf(&b, "  %s\n", stmt)
		}
		b.WriteString("}\n")
	}

	exists, err := emitExists(t, mp)
	if err != nil {
		return "", err
	}
	if exists != "" {
		fmt.Fprintf(&b, "\nexists (%s)\n", exists)
	}
	return b.String(), nil
}

func emitStmt(mp *mem.Program, th int, op c11.Op, name func(int, int) string) (string, error) {
	addr := func(o mem.Operand, atomic bool) string {
		if o.Kind == mem.OpReg {
			if atomic {
				return "(atomic_int*)" + name(th, o.Reg)
			}
			return "(int*)" + name(th, o.Reg)
		}
		return mp.LocName(mem.Loc(o.Const))
	}
	val := func(o mem.Operand) string {
		if o.Kind == mem.OpReg {
			return name(th, o.Reg)
		}
		return strconv.FormatInt(o.Const, 10)
	}
	var stmt string
	switch op.Kind {
	case c11.OpLoad:
		if op.Ord == c11.NA {
			if op.Addr.Kind == mem.OpReg {
				stmt = fmt.Sprintf("int %s = *%s;", name(th, op.Dst), addr(op.Addr, false))
			} else {
				stmt = fmt.Sprintf("int %s = *%s;", name(th, op.Dst), addr(op.Addr, true))
			}
		} else {
			mo, err := orderName(op.Ord)
			if err != nil {
				return "", err
			}
			stmt = fmt.Sprintf("int %s = atomic_load_explicit(%s, %s);", name(th, op.Dst), addr(op.Addr, true), mo)
		}
	case c11.OpStore:
		if op.Ord == c11.NA {
			stmt = fmt.Sprintf("*%s = %s;", addr(op.Addr, true), val(op.Data))
		} else {
			mo, err := orderName(op.Ord)
			if err != nil {
				return "", err
			}
			stmt = fmt.Sprintf("atomic_store_explicit(%s, %s, %s);", addr(op.Addr, true), val(op.Data), mo)
		}
	case c11.OpRMW:
		mo, err := orderName(op.Ord)
		if err != nil {
			return "", err
		}
		fn := "atomic_fetch_add_explicit"
		if op.RMWOp == mem.RMWSwap {
			fn = "atomic_exchange_explicit"
		}
		stmt = fmt.Sprintf("int %s = %s(%s, %s, %s);", name(th, op.Dst), fn, addr(op.Addr, true), val(op.Data), mo)
	case c11.OpFence:
		mo, err := orderName(op.Ord)
		if err != nil {
			return "", err
		}
		stmt = fmt.Sprintf("atomic_thread_fence(%s);", mo)
	default:
		return "", fmt.Errorf("unsupported op kind %d", op.Kind)
	}
	if len(op.CtrlDepOn) > 0 {
		prefix := ""
		for _, dep := range op.CtrlDepOn {
			prefix += fmt.Sprintf("if (%s) ", name(th, mp.Threads[th][dep].Dst))
		}
		stmt = prefix + stmt
	}
	return stmt, nil
}

// emitExists renders the test's specified outcome as a herd exists
// clause, resolving each outcome label to its observer.
func emitExists(t *litmus.Test, mp *mem.Program) (string, error) {
	if t.Specified == "" {
		return "", nil
	}
	threadOf := map[string]int{}
	for _, o := range mp.Observers {
		threadOf[o.Label] = o.Thread
	}
	memLabel := map[string]bool{}
	for _, o := range mp.MemObservers {
		memLabel[o.Label] = true
	}
	var clauses []string
	for _, part := range strings.Split(string(t.Specified), ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		label, value, ok := strings.Cut(part, "=")
		if !ok {
			return "", fmt.Errorf("corpus: %s: malformed outcome clause %q", t.Name, part)
		}
		label, value = strings.TrimSpace(label), strings.TrimSpace(value)
		switch {
		case memLabel[label]:
			clauses = append(clauses, fmt.Sprintf("%s=%s", label, value))
		default:
			th, ok := threadOf[label]
			if !ok {
				return "", fmt.Errorf("corpus: %s: outcome label %q has no observer", t.Name, label)
			}
			clauses = append(clauses, fmt.Sprintf("%d:%s=%s", th, label, value))
		}
	}
	return strings.Join(clauses, " /\\ "), nil
}

var (
	procRe     = regexp.MustCompile(`^P(\d+)\s*\((.*)\)\s*\{$`)
	loadRe     = regexp.MustCompile(`^int\s+(\w+)\s*=\s*atomic_load_explicit\(\s*(.+?)\s*,\s*(\w+)\s*\)\s*;$`)
	storeRe    = regexp.MustCompile(`^atomic_store_explicit\(\s*(.+?)\s*,\s*(\w+)\s*,\s*(\w+)\s*\)\s*;$`)
	rmwRe      = regexp.MustCompile(`^int\s+(\w+)\s*=\s*(atomic_fetch_add_explicit|atomic_exchange_explicit)\(\s*(.+?)\s*,\s*(\w+)\s*,\s*(\w+)\s*\)\s*;$`)
	fenceRe    = regexp.MustCompile(`^atomic_thread_fence\(\s*(\w+)\s*\)\s*;$`)
	naLoadRe   = regexp.MustCompile(`^int\s+(\w+)\s*=\s*\*\s*(.+?)\s*;$`)
	naStoreRe  = regexp.MustCompile(`^\*\s*(.+?)\s*=\s*(\w+)\s*;$`)
	ifRe       = regexp.MustCompile(`^if\s*\(\s*(\w+)\s*\)\s*(.*)$`)
	regClause  = regexp.MustCompile(`^(\d+):(\w+)=(-?\d+)$`)
	memClause  = regexp.MustCompile(`^(\w+)=(-?\d+)$`)
	commentRe  = regexp.MustCompile(`(?s)\(\*.*?\*\)`)
	tricheckRe = regexp.MustCompile(`(?s)\(\*\s*tricheck:\s*(.*?)\s*\*\)`)
)

// parseState accumulates one test while scanning a .litmus file.
type herdParser struct {
	name     string
	family   string
	obsMeta  []string
	locs     []string
	locOf    map[string]int
	prog     *c11.Program
	thread   int
	nextProc int
	regOf    map[int]map[string]int // thread → var name → register
	regOpIdx map[int]map[string]int // thread → var name → defining op index
	nextReg  map[int]int
	exists   []string // raw clauses in file order
}

// Parse reads one herd C litmus test.
func Parse(r io.Reader) (*litmus.Test, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return ParseString(string(data))
}

// ParseString parses a herd C litmus test from a string. Both `exists`
// and `~exists` final-state conditions become the test's designated
// interesting outcome (TriCheck classifies the outcome on each side of
// the stack rather than asserting the quantifier); `forall` conditions
// are rejected.
func ParseString(src string) (*litmus.Test, error) {
	t, _, err := parseWithMeta(src)
	return t, err
}

// ParseStrings parses a batch of independent herd C litmus sources — a
// verification request's payload — attributing any error to its index
// in the batch.
func ParseStrings(srcs []string) ([]*litmus.Test, error) {
	tests := make([]*litmus.Test, 0, len(srcs))
	for i, src := range srcs {
		t, err := ParseString(src)
		if err != nil {
			return nil, fmt.Errorf("corpus: litmus source %d: %w", i, err)
		}
		tests = append(tests, t)
	}
	return tests, nil
}

// parseWithMeta additionally reports whether the family came from an
// explicit tricheck metadata comment (the corpus loader gives an
// explicit family precedence over the directory layout; a guessed one
// yields to it).
func parseWithMeta(src string) (*litmus.Test, bool, error) {
	p := &herdParser{
		locOf:    map[string]int{},
		thread:   -1,
		regOf:    map[int]map[string]int{},
		regOpIdx: map[int]map[string]int{},
		nextReg:  map[int]int{},
	}
	meta := map[string]string{}
	if m := tricheckRe.FindStringSubmatch(src); m != nil {
		for _, kv := range strings.Fields(m[1]) {
			if k, v, ok := strings.Cut(kv, "="); ok {
				meta[k] = v
			}
		}
	}
	src = commentRe.ReplaceAllString(src, "")

	lines := strings.Split(src, "\n")
	i := 0
	next := func() (string, bool) {
		for i < len(lines) {
			l := strings.TrimSpace(lines[i])
			i++
			if l != "" {
				return l, true
			}
		}
		return "", false
	}

	// Header: "C <name>" (other arch headers are not C11 tests).
	l, ok := next()
	if !ok {
		return nil, false, fmt.Errorf("corpus: empty litmus file")
	}
	arch, name, ok := strings.Cut(l, " ")
	if !ok || arch != "C" {
		return nil, false, fmt.Errorf("corpus: want header \"C <name>\", got %q", l)
	}
	p.name = strings.TrimSpace(name)
	if p.name == "" {
		return nil, false, fmt.Errorf("corpus: empty test name")
	}

	// Pre-scan every thread header so all parameter locations exist
	// before the first body is parsed — threads need not repeat an
	// identical parameter list (herd permits asymmetric ones).
	for _, pl := range lines[i:] {
		if m := procRe.FindStringSubmatch(strings.TrimSpace(pl)); m != nil {
			if err := p.declareParams(m[2]); err != nil {
				return nil, false, err
			}
		}
	}

	for {
		l, ok := next()
		if !ok {
			break
		}
		switch {
		case strings.HasPrefix(l, "{"):
			// Init block; possibly spanning lines until the closing '}'.
			body := strings.TrimPrefix(l, "{")
			for !strings.Contains(body, "}") {
				nl, ok := next()
				if !ok {
					return nil, false, fmt.Errorf("corpus: unterminated init block")
				}
				body += " " + nl
			}
			body = body[:strings.Index(body, "}")]
			if err := p.init(body); err != nil {
				return nil, false, err
			}
		case procRe.MatchString(l):
			m := procRe.FindStringSubmatch(l)
			th, _ := strconv.Atoi(m[1])
			if err := p.beginProc(th, m[2]); err != nil {
				return nil, false, err
			}
			for {
				sl, ok := next()
				if !ok {
					return nil, false, fmt.Errorf("corpus: unterminated P%d body", th)
				}
				if sl == "}" {
					break
				}
				if err := p.stmt(sl); err != nil {
					return nil, false, fmt.Errorf("corpus: P%d: %w", th, err)
				}
			}
			if th >= len(p.prog.Ops) || len(p.prog.Ops[th]) == 0 {
				return nil, false, fmt.Errorf("corpus: thread P%d has no statements", th)
			}
		case strings.HasPrefix(l, "forall"):
			return nil, false, fmt.Errorf("corpus: forall final-state conditions are not supported (only exists/~exists)")
		case strings.HasPrefix(l, "exists"), strings.HasPrefix(l, "~exists"):
			clause := l[strings.Index(l, "exists")+len("exists"):]
			for !strings.Contains(clause, ")") && i < len(lines) {
				nl, _ := next()
				clause += " " + nl
			}
			clause = strings.TrimSpace(clause)
			clause = strings.TrimPrefix(clause, "(")
			if j := strings.LastIndex(clause, ")"); j >= 0 {
				clause = clause[:j]
			}
			for _, c := range strings.Split(clause, "/\\") {
				if c = strings.TrimSpace(c); c != "" {
					p.exists = append(p.exists, c)
				}
			}
		case strings.HasPrefix(l, "locations"):
			// herd final-state location listings: ignored.
		default:
			return nil, false, fmt.Errorf("corpus: unrecognised line %q", l)
		}
	}
	return p.finish(meta)
}

func (p *herdParser) init(body string) error {
	for _, item := range strings.Split(body, ";") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		item = strings.TrimPrefix(item, "int ")
		item = strings.TrimPrefix(item, "atomic_int ")
		name, value, ok := strings.Cut(item, "=")
		if !ok {
			return fmt.Errorf("corpus: malformed init %q", item)
		}
		name, value = strings.TrimSpace(name), strings.TrimSpace(value)
		if strings.Contains(name, ":") {
			return fmt.Errorf("corpus: register init %q is not supported", item)
		}
		if value != "0" {
			return fmt.Errorf("corpus: non-zero init %q is not supported (TriCheck memory starts zeroed)", item)
		}
		if _, err := p.declareLoc(name); err != nil {
			return err
		}
	}
	return nil
}

func (p *herdParser) declareLoc(name string) (int, error) {
	if !identRe.MatchString(name) {
		return 0, fmt.Errorf("corpus: location name %q is not an identifier", name)
	}
	if id, ok := p.locOf[name]; ok {
		return id, nil
	}
	p.locOf[name] = len(p.locs)
	p.locs = append(p.locs, name)
	return len(p.locs) - 1, nil
}

// declareParams declares every location named by a thread header's
// parameter list.
func (p *herdParser) declareParams(params string) error {
	for _, prm := range strings.Split(params, ",") {
		prm = strings.TrimSpace(prm)
		if prm == "" {
			continue
		}
		fields := strings.Fields(prm)
		if _, err := p.declareLoc(strings.TrimPrefix(fields[len(fields)-1], "*")); err != nil {
			return err
		}
	}
	return nil
}

func (p *herdParser) beginProc(th int, params string) error {
	if th != p.nextProc {
		return fmt.Errorf("corpus: thread header P%d out of order (want P%d: threads number densely from 0)", th, p.nextProc)
	}
	p.nextProc++
	if err := p.declareParams(params); err != nil {
		return err
	}
	if p.prog == nil {
		p.prog = c11.New(len(p.locs), p.locs...)
	}
	p.thread = th
	if p.regOf[th] == nil {
		p.regOf[th] = map[string]int{}
		p.regOpIdx[th] = map[string]int{}
	}
	return nil
}

// addr parses a location-pointer argument: "x", "&x", "(atomic_int*)r0"
// or "(int*)r0".
func (p *herdParser) addr(s string) (mem.Operand, error) {
	s = strings.TrimSpace(s)
	for _, cast := range []string{"(atomic_int*)", "(int*)"} {
		if rest, ok := strings.CutPrefix(s, cast); ok {
			reg, ok := p.regOf[p.thread][strings.TrimSpace(rest)]
			if !ok {
				return mem.Operand{}, fmt.Errorf("address register %q not defined", rest)
			}
			return mem.FromReg(reg), nil
		}
	}
	s = strings.TrimPrefix(s, "&")
	if id, ok := p.locOf[s]; ok {
		return mem.Const(int64(id)), nil
	}
	return mem.Operand{}, fmt.Errorf("unknown location %q", s)
}

// value parses a data argument: an integer literal or a register name.
func (p *herdParser) value(s string) (mem.Operand, error) {
	if v, err := strconv.ParseInt(s, 10, 64); err == nil {
		return mem.Const(v), nil
	}
	if reg, ok := p.regOf[p.thread][s]; ok {
		return mem.FromReg(reg), nil
	}
	return mem.Operand{}, fmt.Errorf("cannot parse value %q", s)
}

func (p *herdParser) defineReg(name string) int {
	th := p.thread
	reg, ok := p.regOf[th][name]
	if !ok {
		reg = p.nextReg[th]
		p.nextReg[th]++
		p.regOf[th][name] = reg
	}
	opIdx := 0
	if th < len(p.prog.Ops) {
		opIdx = len(p.prog.Ops[th])
	}
	p.regOpIdx[th][name] = opIdx
	return reg
}

func (p *herdParser) stmt(l string) error {
	var ctrl []int
	for {
		m := ifRe.FindStringSubmatch(l)
		if m == nil {
			break
		}
		opIdx, ok := p.regOpIdx[p.thread][m[1]]
		if !ok {
			return fmt.Errorf("control dependency on undefined register %q", m[1])
		}
		ctrl = append(ctrl, opIdx)
		l = strings.TrimSpace(m[2])
	}
	th := p.thread
	switch {
	case loadRe.MatchString(l):
		m := loadRe.FindStringSubmatch(l)
		addr, err := p.addr(m[2])
		if err != nil {
			return err
		}
		ord, err := orderOf(m[3])
		if err != nil {
			return err
		}
		reg := p.defineReg(m[1])
		p.prog.LoadDep(th, ord, addr, reg, ctrl)
	case storeRe.MatchString(l):
		m := storeRe.FindStringSubmatch(l)
		addr, err := p.addr(m[1])
		if err != nil {
			return err
		}
		val, err := p.value(m[2])
		if err != nil {
			return err
		}
		ord, err := orderOf(m[3])
		if err != nil {
			return err
		}
		p.prog.StoreDep(th, ord, addr, val, ctrl)
	case rmwRe.MatchString(l):
		m := rmwRe.FindStringSubmatch(l)
		addr, err := p.addr(m[3])
		if err != nil {
			return err
		}
		val, err := p.value(m[4])
		if err != nil {
			return err
		}
		ord, err := orderOf(m[5])
		if err != nil {
			return err
		}
		fn := mem.RMWAdd
		if m[2] == "atomic_exchange_explicit" {
			fn = mem.RMWSwap
		}
		if len(ctrl) > 0 {
			return fmt.Errorf("control dependencies on RMWs are not supported")
		}
		reg := p.defineReg(m[1])
		p.prog.RMW(th, ord, addr, val, reg, fn)
	case fenceRe.MatchString(l):
		m := fenceRe.FindStringSubmatch(l)
		ord, err := orderOf(m[1])
		if err != nil {
			return err
		}
		if len(ctrl) > 0 {
			return fmt.Errorf("control dependencies on fences are not supported")
		}
		p.prog.FenceOp(th, ord)
	case naLoadRe.MatchString(l):
		m := naLoadRe.FindStringSubmatch(l)
		addr, err := p.addr(m[2])
		if err != nil {
			return err
		}
		reg := p.defineReg(m[1])
		p.prog.LoadDep(th, c11.NA, addr, reg, ctrl)
	case naStoreRe.MatchString(l):
		m := naStoreRe.FindStringSubmatch(l)
		addr, err := p.addr(m[1])
		if err != nil {
			return err
		}
		val, err := p.value(m[2])
		if err != nil {
			return err
		}
		p.prog.StoreDep(th, c11.NA, addr, val, ctrl)
	default:
		return fmt.Errorf("unsupported statement %q", l)
	}
	return nil
}

func (p *herdParser) finish(meta map[string]string) (*litmus.Test, bool, error) {
	if p.prog == nil {
		return nil, false, fmt.Errorf("corpus: no thread bodies")
	}
	if len(p.locs) != p.prog.Mem().NumLocs {
		// Locations declared after the first thread body (e.g. a late
		// init block) would dangle past the program's location space.
		return nil, false, fmt.Errorf("corpus: %d locations declared after the thread bodies began", len(p.locs)-p.prog.Mem().NumLocs)
	}
	if err := p.prog.Mem().Validate(); err != nil {
		return nil, false, fmt.Errorf("corpus: %w", err)
	}
	name := p.name
	if meta["name"] != "" {
		name = meta["name"]
	}
	family, familyFromMeta := meta["family"], meta["family"] != ""
	if family == "" {
		family = familyOf(name)
	}

	// Observers: the metadata list when present, else every register
	// and location referenced by the exists clause, in clause order.
	type regObs struct {
		th    int
		label string
	}
	var regObservers []regObs
	var memObservers []string
	if obs := meta["observers"]; obs != "" {
		// Outcome labels must be unique program-wide: outcomes are
		// "label=value" strings, so a duplicated label (across threads,
		// or shared between a register and a location) is ambiguous.
		seenOn := map[string]int{}
		for _, o := range strings.Split(obs, ",") {
			if rest, ok := strings.CutPrefix(o, "m:"); ok {
				if _, dup := seenOn[rest]; dup {
					return nil, false, fmt.Errorf("corpus: duplicate observer label %q", rest)
				}
				seenOn[rest] = -1
				memObservers = append(memObservers, rest)
				continue
			}
			thStr, label, ok := strings.Cut(o, ":")
			if !ok {
				return nil, false, fmt.Errorf("corpus: malformed observer %q", o)
			}
			th, err := strconv.Atoi(thStr)
			if err != nil {
				return nil, false, fmt.Errorf("corpus: malformed observer %q", o)
			}
			if _, dup := seenOn[label]; dup {
				return nil, false, fmt.Errorf("corpus: duplicate observer label %q", label)
			}
			seenOn[label] = th
			regObservers = append(regObservers, regObs{th, label})
		}
	} else {
		seenOn := map[string]int{}
		for _, c := range p.exists {
			if m := regClause.FindStringSubmatch(c); m != nil {
				th, _ := strconv.Atoi(m[1])
				if prev, ok := seenOn[m[2]]; ok {
					if prev == -1 {
						return nil, false, fmt.Errorf("corpus: label %q names both a register and a location", m[2])
					}
					if prev != th {
						// Outcomes are keyed by bare label, so the same
						// register name observed on two threads would
						// silently bind both clauses to one register.
						return nil, false, fmt.Errorf("corpus: register %q observed on both P%d and P%d; outcome labels must be unique across threads", m[2], prev, th)
					}
					continue
				}
				seenOn[m[2]] = th
				regObservers = append(regObservers, regObs{th, m[2]})
			} else if m := memClause.FindStringSubmatch(c); m != nil {
				if _, ok := p.locOf[m[1]]; ok {
					if prev, seen := seenOn[m[1]]; seen {
						if prev != -1 {
							return nil, false, fmt.Errorf("corpus: label %q names both a register and a location", m[1])
						}
						continue
					}
					seenOn[m[1]] = -1
					memObservers = append(memObservers, m[1])
				}
			}
		}
	}
	for _, o := range regObservers {
		reg, ok := p.regOf[o.th][o.label]
		if !ok {
			return nil, false, fmt.Errorf("corpus: observed register %q not defined on P%d", o.label, o.th)
		}
		p.prog.Observe(o.th, reg, o.label)
	}
	for _, l := range memObservers {
		id, ok := p.locOf[l]
		if !ok {
			return nil, false, fmt.Errorf("corpus: observed location %q not declared", l)
		}
		p.prog.ObserveMem(mem.Loc(id), l)
	}

	// Specified outcome: the exists clauses with thread prefixes
	// stripped, in file order. Every clause label must be covered by a
	// registered observer (an explicit metadata observer list may name
	// fewer than the clauses do) — otherwise the emitted file could not
	// express the outcome and the round trip would break.
	obsLabel := map[string]bool{}
	for _, o := range regObservers {
		obsLabel[o.label] = true
	}
	for _, l := range memObservers {
		obsLabel[l] = true
	}
	var parts []string
	for _, c := range p.exists {
		if m := regClause.FindStringSubmatch(c); m != nil {
			if !obsLabel[m[2]] {
				return nil, false, fmt.Errorf("corpus: exists clause %q has no observer", c)
			}
			parts = append(parts, m[2]+"="+m[3])
		} else if m := memClause.FindStringSubmatch(c); m != nil {
			if !obsLabel[m[1]] {
				return nil, false, fmt.Errorf("corpus: exists clause %q has no observer", c)
			}
			parts = append(parts, m[1]+"="+m[2])
		} else {
			return nil, false, fmt.Errorf("corpus: unsupported exists clause %q", c)
		}
	}
	specified := mem.Outcome(strings.Join(parts, "; "))

	shape := &litmus.Shape{
		Name:        family,
		Description: "parsed from herd C litmus format",
		Specified:   specified,
	}
	return &litmus.Test{Name: name, Shape: shape, Prog: p.prog, Specified: specified}, familyFromMeta, nil
}

// familyOf guesses a litmus family from a test name like "mp-rlx.sc" or
// "mp[rlx,sc]": the prefix before the first bracket or dash.
func familyOf(name string) string {
	if i := strings.IndexAny(name, "[-"); i > 0 {
		return name[:i]
	}
	return name
}
