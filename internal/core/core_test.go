package core

import (
	"strings"
	"testing"

	"tricheck/internal/c11"
	"tricheck/internal/compile"
	"tricheck/internal/litmus"
	"tricheck/internal/uspec"
)

func runOne(t *testing.T, tst *litmus.Test, s Stack) *TestResult {
	t.Helper()
	e := NewEngine()
	r, err := e.Run(tst, s)
	if err != nil {
		t.Fatalf("Run(%s, %s): %v", tst.Name, s.Name(), err)
	}
	return r
}

func TestFigure3WRCBugVerdict(t *testing.T) {
	tst := litmus.WRC.Instantiate([]c11.Order{c11.Rlx, c11.Rlx, c11.Rel, c11.Acq, c11.Rlx})
	// riscv-curr on nMM: bug.
	r := runOne(t, tst, Stack{Mapping: compile.RISCVBaseIntuitive, Model: uspec.NMM(uspec.Curr)})
	if r.Verdict != Bug || !r.SpecifiedBug {
		t.Fatalf("verdict = %v specifiedBug=%v, want Bug/true", r.Verdict, r.SpecifiedBug)
	}
	// riscv-ours on nMM: no bug.
	r2 := runOne(t, tst, Stack{Mapping: compile.RISCVBaseRefined, Model: uspec.NMM(uspec.Ours)})
	if r2.Verdict == Bug {
		t.Fatalf("riscv-ours verdict = Bug; bug outcomes: %v", r2.BugOutcomes)
	}
	// On the strong WR model the outcome is forbidden: equivalent or strict.
	r3 := runOne(t, tst, Stack{Mapping: compile.RISCVBaseIntuitive, Model: uspec.WR(uspec.Curr)})
	if r3.Verdict == Bug {
		t.Fatalf("WR model shows WRC bug: %v", r3.BugOutcomes)
	}
}

// TestSection61WRCCount reproduces §6.1: 108 of the 243 WRC variants are
// buggy on each Base riscv-curr nMCA model (counted by specified outcome).
func TestSection61WRCCount(t *testing.T) {
	e := NewEngine()
	tests := litmus.WRC.Generate()
	for _, model := range []*uspec.Model{uspec.NWR(uspec.Curr), uspec.NMM(uspec.Curr), uspec.A9like(uspec.Curr)} {
		res, err := e.RunSuite(tests, Stack{Mapping: compile.RISCVBaseIntuitive, Model: model}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Tally.SpecifiedBugs != 108 {
			t.Errorf("%s: WRC specified bugs = %d, want 108", model.FullName(), res.Tally.SpecifiedBugs)
		}
	}
	// MCA/rMCA models show none.
	for _, model := range []*uspec.Model{uspec.WR(uspec.Curr), uspec.RWR(uspec.Curr), uspec.RWM(uspec.Curr), uspec.RMM(uspec.Curr)} {
		res, err := e.RunSuite(tests, Stack{Mapping: compile.RISCVBaseIntuitive, Model: model}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Tally.SpecifiedBugs != 0 {
			t.Errorf("%s: WRC specified bugs = %d, want 0", model.FullName(), res.Tally.SpecifiedBugs)
		}
	}
}

// TestSection61RWCCount reproduces §6.1: 2 buggy RWC variants on Base
// riscv-curr nMCA models.
func TestSection61RWCCount(t *testing.T) {
	e := NewEngine()
	tests := litmus.RWC.Generate()
	res, err := e.RunSuite(tests, Stack{Mapping: compile.RISCVBaseIntuitive, Model: uspec.NMM(uspec.Curr)}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tally.SpecifiedBugs != 2 {
		t.Errorf("RWC specified bugs = %d, want 2", res.Tally.SpecifiedBugs)
	}
}

// TestSection61CoRRCounts reproduces §6.1's same-address coherence bug
// counts on the R→R-relaxing riscv-curr models, for both ISAs: CoRR 18/81
// and CO-RSDWI 54/243 (first load rlx, second load rlx-or-acq, any store
// orders). The Base+A counts rely on AMO-load write-backs being modelled
// as silent stores (see isa.OpAMOLoad); with coherence-visible write-backs
// the acquire-load variants become architecturally unobservable and the
// counts halve.
func TestSection61CoRRCounts(t *testing.T) {
	e := NewEngine()
	type want struct{ corr, rsdwi int }
	expect := map[*compile.Mapping]want{
		compile.RISCVBaseIntuitive:    {18, 54},
		compile.RISCVAtomicsIntuitive: {18, 54},
	}
	for mapping, w := range expect {
		for _, model := range []*uspec.Model{uspec.RMM(uspec.Curr), uspec.NMM(uspec.Curr), uspec.A9like(uspec.Curr)} {
			s := Stack{Mapping: mapping, Model: model}
			corr, err := e.RunSuite(litmus.CoRR.Generate(), s, 0)
			if err != nil {
				t.Fatal(err)
			}
			if corr.Tally.SpecifiedBugs != w.corr {
				t.Errorf("%s: CoRR specified bugs = %d, want %d", s.Name(), corr.Tally.SpecifiedBugs, w.corr)
			}
			rsdwi, err := e.RunSuite(litmus.CORSDWI.Generate(), s, 0)
			if err != nil {
				t.Fatal(err)
			}
			if rsdwi.Tally.SpecifiedBugs != w.rsdwi {
				t.Errorf("%s: CO-RSDWI specified bugs = %d, want %d", s.Name(), rsdwi.Tally.SpecifiedBugs, w.rsdwi)
			}
		}
		// Models that keep R→R in order show none.
		s := Stack{Mapping: mapping, Model: uspec.NWR(uspec.Curr)}
		corr, err := e.RunSuite(litmus.CoRR.Generate(), s, 0)
		if err != nil {
			t.Fatal(err)
		}
		if corr.Tally.SpecifiedBugs != 0 {
			t.Errorf("%s: CoRR specified bugs = %d, want 0", s.Name(), corr.Tally.SpecifiedBugs)
		}
	}
}

// TestSection61IRIWCount reproduces §6.1: 4 buggy IRIW variants on Base
// riscv-curr nMCA models.
func TestSection61IRIWCount(t *testing.T) {
	if testing.Short() {
		t.Skip("729 tests × µspec evaluation")
	}
	e := NewEngine()
	tests := litmus.IRIW.Generate()
	res, err := e.RunSuite(tests, Stack{Mapping: compile.RISCVBaseIntuitive, Model: uspec.NWR(uspec.Curr)}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tally.SpecifiedBugs != 4 {
		t.Errorf("IRIW specified bugs = %d, want 4", res.Tally.SpecifiedBugs)
	}
}

// TestRiscvOursNoBugs: the refined stack eliminates every bug across the
// smaller paper families on the weakest models (full-suite check lives in
// the benchmark harness / EXPERIMENTS.md).
func TestRiscvOursNoBugs(t *testing.T) {
	e := NewEngine()
	families := []*litmus.Shape{litmus.MP, litmus.SB, litmus.CoRR, litmus.WRC, litmus.RWC, litmus.CORSDWI}
	for _, base := range []bool{true, false} {
		for _, s := range RISCVStacks(base, uspec.Ours) {
			if s.Model.Name != "nMM" && s.Model.Name != "A9like" {
				continue // weakest models are the interesting ones
			}
			for _, fam := range families {
				res, err := e.RunSuite(fam.Generate(), s, 0)
				if err != nil {
					t.Fatal(err)
				}
				if res.Tally.Bugs != 0 {
					t.Errorf("%s on %s: %d bugs, want 0", fam.Name, s.Name(), res.Tally.Bugs)
				}
			}
		}
	}
}

// TestEngineSoundnessFailureInjection: a deliberately broken mapping
// (release stores compiled with no fence at all) must be flagged as a bug
// by the engine on weak hardware — the engine's own bug-finding soundness.
func TestEngineSoundnessFailureInjection(t *testing.T) {
	broken := &compile.Mapping{
		Name: "riscv-base-broken", Arch: compile.RISCVBaseIntuitive.Arch,
		LoadRlx:  compile.Recipe{compile.Access()},
		LoadAcq:  compile.Recipe{compile.Access()}, // missing fence!
		LoadSC:   compile.Recipe{compile.Access()},
		StoreRlx: compile.Recipe{compile.Access()},
		StoreRel: compile.Recipe{compile.Access()}, // missing fence!
		StoreSC:  compile.Recipe{compile.Access()},
	}
	tst := litmus.MP.Instantiate([]c11.Order{c11.Rlx, c11.Rel, c11.Acq, c11.Rlx})
	r := runOne(t, tst, Stack{Mapping: broken, Model: uspec.NMM(uspec.Curr)})
	if r.Verdict != Bug {
		t.Fatalf("broken mapping not flagged: verdict %v", r.Verdict)
	}
	diag, err := NewEngine().Diagnose(r)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(diag, "bug") {
		t.Errorf("diagnosis %q does not mention the bug", diag)
	}
}

// TestVerdictMatrix exercises all three verdicts.
func TestVerdictMatrix(t *testing.T) {
	// Equivalent-ish: relaxed MP on a weak model (everything observable
	// and allowed).
	rlx := litmus.MP.Instantiate([]c11.Order{c11.Rlx, c11.Rlx, c11.Rlx, c11.Rlx})
	r := runOne(t, rlx, Stack{Mapping: compile.RISCVBaseIntuitive, Model: uspec.NMM(uspec.Curr)})
	if r.Verdict != Equivalent {
		t.Errorf("relaxed MP on nMM: verdict %v (strict: %v)", r.Verdict, r.StrictOutcomes)
	}
	// OverlyStrict: relaxed SB on the SC ablation model.
	sb := litmus.SB.Instantiate([]c11.Order{c11.Rlx, c11.Rlx, c11.Rlx, c11.Rlx})
	r2 := runOne(t, sb, Stack{Mapping: compile.RISCVBaseIntuitive, Model: uspec.SCProof()})
	if r2.Verdict != OverlyStrict {
		t.Errorf("relaxed SB on SC model: verdict %v, want OverlyStrict", r2.Verdict)
	}
	// Bug: CoRR relaxed on rMM/curr.
	corr := litmus.CoRR.Instantiate([]c11.Order{c11.Rlx, c11.Rlx, c11.Rlx, c11.Rlx})
	r3 := runOne(t, corr, Stack{Mapping: compile.RISCVBaseIntuitive, Model: uspec.RMM(uspec.Curr)})
	if r3.Verdict != Bug {
		t.Errorf("relaxed CoRR on rMM/curr: verdict %v, want Bug", r3.Verdict)
	}
}

// TestHLLCacheReuse: the engine caches step 1 across stacks.
func TestHLLCacheReuse(t *testing.T) {
	e := NewEngine()
	tst := litmus.MP.Instantiate([]c11.Order{c11.Rlx, c11.Rel, c11.Acq, c11.Rlx})
	a, err := e.HLL(tst)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.HLL(tst)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("HLL result not cached")
	}
}

// TestSuiteAggregation: family tallies sum to the total.
func TestSuiteAggregation(t *testing.T) {
	e := NewEngine()
	tests := append(litmus.MP.Generate(), litmus.SB.Generate()...)
	res, err := e.RunSuite(tests, Stack{Mapping: compile.RISCVBaseIntuitive, Model: uspec.RWR(uspec.Curr)}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tally.Total != 162 {
		t.Fatalf("total = %d, want 162", res.Tally.Total)
	}
	sum := 0
	for _, name := range res.FamilyNames() {
		sum += res.ByFamily[name].Total
	}
	if sum != res.Tally.Total {
		t.Errorf("family totals %d != %d", sum, res.Tally.Total)
	}
	if res.Tally.Bugs+res.Tally.Strict+res.Tally.Equivalent != res.Tally.Total {
		t.Error("verdict counts do not sum to total")
	}
	if res.Tally.Bugs != 0 {
		t.Errorf("MP/SB on rWR should have no bugs, got %d", res.Tally.Bugs)
	}
}

// TestStacksConstruction: RISCVStacks pairs mappings and model variants
// coherently.
func TestStacksConstruction(t *testing.T) {
	for _, base := range []bool{true, false} {
		for _, v := range []uspec.Variant{uspec.Curr, uspec.Ours} {
			stacks := RISCVStacks(base, v)
			if len(stacks) != 7 {
				t.Fatalf("want 7 stacks, got %d", len(stacks))
			}
			for _, s := range stacks {
				if s.Model.Variant != v {
					t.Errorf("stack %s has wrong variant", s.Name())
				}
			}
		}
	}
	if RISCVStacks(true, uspec.Curr)[0].Mapping != compile.RISCVBaseIntuitive {
		t.Error("base/curr should pair with the intuitive Base mapping")
	}
	if RISCVStacks(false, uspec.Ours)[0].Mapping != compile.RISCVAtomicsRefined {
		t.Error("base+a/ours should pair with the refined Base+A mapping")
	}
}
