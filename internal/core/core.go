// Package core implements the TriCheck engine: the four-step toolflow of
// the paper's Figure 6.
//
//  1. HLL AXIOMATIC EVALUATION — run the C11 litmus test on the C11 model
//     (internal/c11) to classify every candidate outcome as permitted or
//     forbidden.
//  2. HLL→ISA COMPILATION — lower the test through a compiler mapping
//     (internal/compile).
//  3. ISA µSPEC EVALUATION — run the compiled test on a microarchitecture
//     model (internal/uspec) to classify every outcome as observable or
//     unobservable.
//  4. EQUIVALENCE CHECK — compare: an outcome forbidden by the HLL yet
//     observable is a Bug; permitted yet unobservable is Overly Strict;
//     otherwise the stack is Equivalent on this test.
//
// The Engine caches step 1 per test so that sweeping many (mapping, model)
// stacks — as Figure 15 does — pays for the C11 evaluation once.
package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tricheck/internal/c11"
	"tricheck/internal/compile"
	"tricheck/internal/cover"
	"tricheck/internal/farm"
	"tricheck/internal/litmus"
	"tricheck/internal/mem"
	"tricheck/internal/obs"
	"tricheck/internal/uspec"
)

// Stack is one full-stack configuration: a compiler mapping plus a
// microarchitecture model (the ISA MCM is embodied in both).
type Stack struct {
	Mapping *compile.Mapping
	Model   *uspec.Model
}

// Name renders the stack for reports.
func (s Stack) Name() string {
	return fmt.Sprintf("%s+%s", s.Mapping.Name, s.Model.FullName())
}

// Verdict classifies a test against a stack (Figure 6's comparison matrix).
type Verdict uint8

// Verdicts, ordered by severity.
const (
	// Equivalent: observable outcomes exactly match C11-permitted ones.
	Equivalent Verdict = iota
	// OverlyStrict: no bug, but some C11-permitted outcome is
	// unobservable (lost performance/flexibility, not a correctness bug).
	OverlyStrict
	// Bug: some C11-forbidden outcome is observable on the implementation.
	Bug
	// Divergence: the axiomatic and operational backends disagree on the
	// observable set (BackendBoth only) — the implementations of the two
	// semantics contradict each other, which outranks any single-engine
	// verdict.
	Divergence
)

// String names the verdict like the paper's charts.
func (v Verdict) String() string {
	switch v {
	case Divergence:
		return "Divergence"
	case Bug:
		return "Bug"
	case OverlyStrict:
		return "OverlyStrict"
	default:
		return "Equivalent"
	}
}

// TestResult is the full-stack verdict for one litmus test.
type TestResult struct {
	Test  *litmus.Test
	Stack Stack
	// Allowed is C11's permitted outcome set; Observable the µspec model's.
	Allowed    map[mem.Outcome]bool
	Observable map[mem.Outcome]bool
	// BugOutcomes are forbidden-yet-observable; StrictOutcomes are
	// permitted-yet-unobservable. Sorted for determinism.
	BugOutcomes    []mem.Outcome
	StrictOutcomes []mem.Outcome
	Verdict        Verdict
	// SpecifiedBug reports whether the test's designated interesting
	// outcome is itself forbidden-yet-observable (the counting used for
	// the paper's headline "144 outcomes ... out of 1,701 tests").
	SpecifiedBug bool
	// SpecifiedAllowed / SpecifiedObservable classify the designated
	// outcome on each side.
	SpecifiedAllowed    bool
	SpecifiedObservable bool
	// Racy reports HLL undefined behaviour (every outcome then allowed).
	Racy bool
	// Opsim is the operational backend's side of the verdict: present for
	// BackendOpsim (the enumerated set) and BackendBoth (the cross-check
	// diff and witness); nil on the default uhb backend.
	Opsim *OpsimMemo
}

// Engine runs the toolflow. It caches HLL evaluations across stacks
// (keyed by canonical test fingerprint) and, when a memo cache is
// enabled, full (test, stack) verdicts across sweeps.
type Engine struct {
	mu  sync.Mutex
	hll map[string]*hllEntry
	// memo is the optional (test, stack) result cache shared with the
	// verification farm; nil until EnableMemo.
	memo *farm.Cache[string, *Memo]
	// execs counts actual verifier executions (toolflow steps 2–3), i.e.
	// jobs that were neither deduplicated nor satisfied from the cache.
	execs atomic.Uint64
	// divergences counts executed BackendBoth jobs whose axiomatic and
	// operational observable sets disagreed.
	divergences atomic.Uint64
	// lastFarm records the statistics of the most recent farm run.
	lastFarm farm.Stats
	// costs is the per-(test, stack) cost matrix, fed by every executed
	// job (see obs.go); costMu guards it.
	costMu sync.Mutex
	costs  map[costKey]*JobCost
	// ledger is the verification-coverage ledger (internal/cover): the
	// per-(model, axiom) fired/edge/cycle matrix fed by every executed
	// job, and the (test, config) verdict vectors fed by every result —
	// executed or memoized. It sits next to the cost matrix: costs say
	// where time went, the ledger says what the verification exercised.
	ledger *cover.Ledger
}

// NewEngine returns an Engine with an empty HLL cache and no memo cache.
func NewEngine() *Engine {
	return &Engine{
		hll:    map[string]*hllEntry{},
		costs:  map[costKey]*JobCost{},
		ledger: cover.NewLedger(uspec.AxiomNames(), verdictNames()).WithMetrics(coverMetrics),
	}
}

// Coverage returns the engine's verification-coverage ledger.
func (e *Engine) Coverage() *cover.Ledger { return e.ledger }

// hllEntry is one singleflight slot of the HLL cache: the first caller
// evaluates, concurrent callers for the same fingerprint wait on the
// same Once instead of re-running (and racing on) the shared program.
type hllEntry struct {
	once sync.Once
	r    *c11.Result
	err  error
}

// HLL returns the (cached) step-1 C11 evaluation of a test. The cache is
// keyed by the test's canonical fingerprint, so structurally identical
// tests — e.g. a generated test and its corpus round trip — share one
// evaluation regardless of naming, and concurrent farm workers hitting
// the same test evaluate it exactly once.
func (e *Engine) HLL(t *litmus.Test) (*c11.Result, error) {
	key := t.Fingerprint()
	e.mu.Lock()
	ent, ok := e.hll[key]
	if !ok {
		ent = &hllEntry{}
		e.hll[key] = ent
	}
	e.mu.Unlock()
	ent.once.Do(func() {
		r, err := c11.Evaluate(t.Prog)
		if err != nil {
			ent.err = fmt.Errorf("core: HLL evaluation of %s: %w", t.Name, err)
			return
		}
		ent.r = r
	})
	return ent.r, ent.err
}

// Run executes toolflow steps 1–4 for one test and stack, consulting the
// memo cache when one is enabled. Every result — executed or memoized —
// records its (test, config) verdict vector in the coverage ledger.
func (e *Engine) Run(t *litmus.Test, s Stack) (*TestResult, error) {
	return e.RunBackend(t, s, BackendUHB)
}

// RunBackend is Run on an explicit backend; memo keys are backend-tagged
// so the backends never share cache entries.
func (e *Engine) RunBackend(t *litmus.Test, s Stack, b Backend) (*TestResult, error) {
	m, err := e.run(t, s, b)
	if err != nil {
		return nil, err
	}
	e.ledger.RecordVector(t.Name, s.Name(), uint8(m.Verdict))
	return m.Bind(t, s), nil
}

func (e *Engine) run(t *litmus.Test, s Stack, b Backend) (*Memo, error) {
	if e.memo != nil {
		key := JobKeyBackend(t, s, b)
		if m, ok := e.memo.Get(key); ok {
			return m, nil
		}
		m, err := e.evaluateBackend(t, s, b, s.Name(), s.Model.FullName(), 0, 0)
		if err != nil {
			return nil, err
		}
		e.memo.Put(key, m)
		return m, nil
	}
	return e.evaluateBackend(t, s, b, s.Name(), s.Model.FullName(), 0, 0)
}

// evaluate runs toolflow steps 1–4 unconditionally and returns the
// portable verdict. It is the farm's job thunk; every call counts as one
// verifier execution.
//
// Step 3 uses the two-tier µhb core: the job prepares the compiled
// program's static skeleton exactly once and streams every candidate
// execution through a pooled overlay, so a sweep's per-execution cost is
// dynamic edges plus an allocation-free cycle check.
//
// Telemetry: each phase is wall-timed into the verdict-phase histograms
// and the engine's per-(test, stack) cost matrix; 1-in-N executed jobs
// (obs.SetVerdictSampling) additionally carry an obs.Span — tagged with
// the sweep's trace when one is on the context — that lands in the
// slow-trace ring. stackName and modelName are precomputed by the caller
// so the uninstrumented job path formats nothing.
//
// Coverage: the job's axiom bitsets (uspec.Coverage, accumulated by the
// Prepared across the skeleton build and every candidate execution) fold
// into the ledger's per-model matrix, cycle-witnessed bits included on
// every verdict. A witnessing (forbidding) cycle is what carves the
// observable set, so its axioms are the provenance of every outcome the
// model refused — note that the paper's buggy weak configs typically
// reach their Bug verdicts with *zero* cycles (they observe everything;
// that is the bug), so the cycle column is populated by the configs
// that still forbid something.
func (e *Engine) evaluate(t *litmus.Test, s Stack, stackName, modelName string, trace obs.TraceID, parent obs.SpanID) (*Memo, error) {
	var sp *obs.Span
	if obs.SampleVerdict() {
		sp = obs.DefaultTraces.Start(trace, parent, "verdict")
		sp.Attr("test", t.Name)
		sp.Attr("stack", stackName)
	}
	jobStart := time.Now()
	hll, err := e.HLL(t) // step 1
	dHLL := time.Since(jobStart)
	if err != nil {
		return nil, err
	}
	t1 := time.Now()
	prog, err := compile.Compile(s.Mapping, t.Prog) // step 2
	dCompile := time.Since(t1)
	if err != nil {
		return nil, fmt.Errorf("core: compiling %s with %s: %w", t.Name, s.Mapping.Name, err)
	}
	t2 := time.Now()
	pr := s.Model.Prepare(prog) // step 3: skeleton once per job
	dSkeleton := time.Since(t2)
	t3 := time.Now()
	isaRes, err := pr.Evaluate()
	dEnumerate := time.Since(t3)
	cov := pr.Coverage()
	pr.Close()
	// The verdict below uses only the outcome sets; the compiled program
	// is dead, so recycle its arenas for the next job.
	compile.ReleaseProgram(prog)
	if err != nil {
		return nil, fmt.Errorf("core: µspec evaluation of %s on %s: %w", t.Name, s.Model.FullName(), err)
	}
	e.execs.Add(1)
	phaseHLL.Observe(dHLL)
	phaseCompile.Observe(dCompile)
	m := compare(hll, isaRes)
	verdictCounters[m.Verdict].Inc()
	e.ledger.Model(modelName).Record(int(m.Verdict), cov.Fired, cov.Edges, cov.Cycle)
	e.recordCost(JobCost{
		Test: t.Name, Family: t.Shape.Name, Stack: stackName,
		Count: 1, Total: time.Since(jobStart),
		HLL: dHLL, Compile: dCompile, Skeleton: dSkeleton, Enumerate: dEnumerate,
		Candidates: isaRes.Candidates, Graphs: isaRes.Graphs,
	})
	if sp != nil {
		sp.Phase("hll", dHLL)
		sp.Phase("compile", dCompile)
		sp.Phase("skeleton", dSkeleton)
		sp.Phase("enumerate", dEnumerate)
		sp.Attr("verdict", m.Verdict.String())
		sp.End()
	}
	return m, nil
}

// Executions returns the number of verifier executions (toolflow steps
// 2–3 actually run) performed by this engine so far. Deduplicated jobs
// and memo-cache hits do not execute.
func (e *Engine) Executions() uint64 { return e.execs.Load() }

// Divergences returns the number of executed BackendBoth jobs whose
// axiomatic and operational observable sets disagreed.
func (e *Engine) Divergences() uint64 { return e.divergences.Load() }

// compare implements step 4, the equivalence check, in portable form.
func compare(hll *c11.Result, isaRes *uspec.Result) *Memo {
	return compareSets(hll, isaRes.Observable, isaRes.All)
}

// compareSets is step 4 against any ISA-side evaluation: observable is
// the outcomes the backend deems reachable, all the full candidate set
// it considered (for the axiomatic engine a superset of observable; for
// the operational one the two coincide — the simulators enumerate only
// reachable states, and the HLL remainder below covers the rest).
func compareSets(hll *c11.Result, observable, all map[mem.Outcome]bool) *Memo {
	m := &Memo{
		Allowed:    hll.Allowed,
		Observable: observable,
		Racy:       hll.Racy,
	}
	// Classify the union of both outcome sets without materializing it:
	// every ISA-side outcome, then the HLL-only remainder. compare runs
	// per job, and the union map dominated its cost in cold sweeps.
	classify := func(o mem.Outcome) {
		switch {
		case observable[o] && !hll.Allowed[o]:
			m.BugOutcomes = append(m.BugOutcomes, o)
		case hll.Allowed[o] && !observable[o]:
			m.StrictOutcomes = append(m.StrictOutcomes, o)
		}
	}
	for o := range all {
		classify(o)
	}
	for o := range hll.All {
		if !all[o] {
			classify(o)
		}
	}
	sortOutcomes(m.BugOutcomes)
	sortOutcomes(m.StrictOutcomes)
	switch {
	case len(m.BugOutcomes) > 0:
		m.Verdict = Bug
	case len(m.StrictOutcomes) > 0:
		m.Verdict = OverlyStrict
	default:
		m.Verdict = Equivalent
	}
	return m
}

func sortOutcomes(os []mem.Outcome) {
	// Insertion sort: verdict outcome lists hold a handful of entries,
	// and sort.Slice's reflection setup costs more than the sort.
	for i := 1; i < len(os); i++ {
		for j := i; j > 0 && os[j] < os[j-1]; j-- {
			os[j], os[j-1] = os[j-1], os[j]
		}
	}
}

// Tally counts verdicts.
type Tally struct {
	Total, Bugs, Strict, Equivalent int
	// Divergent counts BackendBoth cross-check disagreements (zero on
	// single-backend runs).
	Divergent int
	// SpecifiedBugs counts tests whose designated outcome was
	// forbidden-yet-observable (the paper's headline counting).
	SpecifiedBugs int
}

// Add accumulates one result.
func (t *Tally) Add(r *TestResult) {
	t.Total++
	switch r.Verdict {
	case Divergence:
		t.Divergent++
	case Bug:
		t.Bugs++
	case OverlyStrict:
		t.Strict++
	default:
		t.Equivalent++
	}
	if r.SpecifiedBug {
		t.SpecifiedBugs++
	}
}

// SuiteResult aggregates a suite run on one stack.
type SuiteResult struct {
	Stack    Stack
	Results  []*TestResult
	Tally    Tally
	ByFamily map[string]*Tally
}

// FamilyNames returns the family keys in sorted order.
func (s *SuiteResult) FamilyNames() []string {
	var names []string
	for n := range s.ByFamily {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// RunSuite runs every test against the stack on the verification farm
// with the given parallelism (0 = GOMAXPROCS). Results keep the input
// order.
func (e *Engine) RunSuite(tests []*litmus.Test, s Stack, workers int) (*SuiteResult, error) {
	rs, err := e.SweepStream(tests, []Stack{s}, workers, nil)
	if err != nil {
		return nil, err
	}
	return rs[0], nil
}

// Sweep runs the suite over many stacks as one farm run: all
// (test, stack) jobs are fingerprinted, deduplicated and sharded over
// the worker pool together, so a slow stack steals capacity from
// finished ones instead of serializing the sweep.
func (e *Engine) Sweep(tests []*litmus.Test, stacks []Stack, workers int) ([]*SuiteResult, error) {
	return e.SweepStream(tests, stacks, workers, nil)
}

// RISCVStacks builds the paper's Figure 15 stack matrix for one ISA flavour
// (base or Base+A) and MCM version (riscv-curr pairs the intuitive mapping
// with Curr models; riscv-ours pairs the refined mapping with Ours models).
// The models are the registry's shared Table 7 instances.
func RISCVStacks(base bool, variant uspec.Variant) []Stack {
	m := riscvMapping(base, variant)
	var out []Stack
	for _, model := range uspec.Models(variant) {
		out = append(out, Stack{Mapping: m, Model: model})
	}
	return out
}

// Diagnose explains a result's first bug (or strict) outcome by extracting
// a µhb witness or cycle — the information a designer uses in the
// REFINEMENT step of Figure 6.
func (e *Engine) Diagnose(r *TestResult) (string, error) {
	prog, err := compile.Compile(r.Stack.Mapping, r.Test.Prog)
	if err != nil {
		return "", err
	}
	var target mem.Outcome
	var kind string
	switch {
	case len(r.BugOutcomes) > 0:
		target, kind = r.BugOutcomes[0], "bug (forbidden by C11, observable on hardware)"
	case len(r.StrictOutcomes) > 0:
		target, kind = r.StrictOutcomes[0], "overly strict (allowed by C11, unobservable)"
	default:
		return fmt.Sprintf("%s on %s: equivalent", r.Test.Name, r.Stack.Name()), nil
	}
	t0 := time.Now()
	_, why, err := r.Stack.Model.Explain(prog, target)
	phaseDiagnostics.Observe(time.Since(t0))
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%s on %s: %s outcome %q\n  %s", r.Test.Name, r.Stack.Name(), kind, target, why), nil
}
