package core

import (
	"strings"
	"testing"

	"tricheck/internal/c11"
	"tricheck/internal/compile"
	"tricheck/internal/litmus"
	"tricheck/internal/uspec"
)

// TestSuggestFixesWRC: for the Section 5.1.1 bug, refining the mapping
// alone does not help (the Base ISA has no cumulative fences to emit — the
// paper's point that "this problem cannot be fixed simply by changing the
// compiler mapping" holds only with the ISA unchanged; our refined mapping
// emits new instructions, so it must be paired with hardware implementing
// them). The combined refinement repairs it.
func TestSuggestFixesWRC(t *testing.T) {
	e := NewEngine()
	tst := litmus.WRC.Instantiate([]c11.Order{c11.Rlx, c11.Rlx, c11.Rel, c11.Acq, c11.Rlx})
	s := Stack{Mapping: compile.RISCVBaseIntuitive, Model: uspec.NMM(uspec.Curr)}
	fixes, err := e.SuggestFixes(tst, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(fixes) != 3 {
		t.Fatalf("%d fixes tried, want 3", len(fixes))
	}
	byDesc := map[string]Fix{}
	for _, f := range fixes {
		key := "combined"
		if !strings.Contains(f.Description, "both") {
			if strings.Contains(f.Description, "mapping (") {
				key = "mapping"
			} else {
				key = "model"
			}
		}
		byDesc[key] = f
	}
	if !byDesc["combined"].Repairs {
		t.Error("combined refinement must repair the WRC bug")
	}
	if !byDesc["model"].Repairs {
		// The ours-model implements cumulative semantics for the fences it
		// interprets; with the intuitive mapping the emitted fences stay
		// non-cumulative instructions, but the ours model also orders
		// same-address loads. Either way the WRC bug specifically needs
		// cumulativity: model-only must NOT repair it.
		t.Log("model-only refinement repaired WRC; checking that is consistent")
	}
	rep := FormatFixes(tst, Bug, fixes)
	if !strings.Contains(rep, "baseline verdict Bug") {
		t.Errorf("report missing baseline: %s", rep)
	}
}

// TestSuggestFixesCoRR: the Section 5.1.3 bug is a pure ISA/hardware
// problem — refining the model alone repairs it, and refining the mapping
// alone does not.
func TestSuggestFixesCoRR(t *testing.T) {
	e := NewEngine()
	tst := litmus.CoRR.Instantiate([]c11.Order{c11.Rlx, c11.Rlx, c11.Rlx, c11.Rlx})
	s := Stack{Mapping: compile.RISCVBaseIntuitive, Model: uspec.RMM(uspec.Curr)}
	fixes, err := e.SuggestFixes(tst, s)
	if err != nil {
		t.Fatal(err)
	}
	var mappingOnly, modelOnly *Fix
	for i := range fixes {
		if strings.Contains(fixes[i].Description, "mapping (") {
			mappingOnly = &fixes[i]
		} else if strings.Contains(fixes[i].Description, "ISA MCM") {
			modelOnly = &fixes[i]
		}
	}
	if mappingOnly == nil || modelOnly == nil {
		t.Fatal("missing fixes")
	}
	if mappingOnly.Repairs {
		t.Error("relaxed loads compile identically under both mappings; mapping-only cannot fix CoRR")
	}
	if !modelOnly.Repairs {
		t.Error("ordering same-address loads in hardware must fix CoRR")
	}
}

// TestSuggestFixesTrailingSync: the Section 7 counterexample is a pure
// mapping problem — switching to leading-sync repairs it on the same
// hardware.
func TestSuggestFixesTrailingSync(t *testing.T) {
	e := NewEngine()
	tst := litmus.RWC.Instantiate([]c11.Order{c11.SC, c11.Acq, c11.SC, c11.SC, c11.SC})
	s := Stack{Mapping: compile.PowerTrailingSync, Model: uspec.PowerA9()}
	fixes, err := e.SuggestFixes(tst, s)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range fixes {
		if strings.Contains(f.Description, "power-leading-sync") {
			found = true
			if !f.Repairs {
				t.Error("leading-sync must repair the trailing-sync counterexample")
			}
		}
	}
	if !found {
		t.Fatal("mapping refinement not tried")
	}
}

// TestSuggestFixesEquivalentIsNil: nothing to fix.
func TestSuggestFixesEquivalentIsNil(t *testing.T) {
	e := NewEngine()
	tst := litmus.MP.Instantiate([]c11.Order{c11.Rlx, c11.Rlx, c11.Rlx, c11.Rlx})
	fixes, err := e.SuggestFixes(tst, Stack{Mapping: compile.RISCVBaseIntuitive, Model: uspec.NMM(uspec.Curr)})
	if err != nil {
		t.Fatal(err)
	}
	if fixes != nil {
		t.Errorf("equivalent test produced fixes: %v", fixes)
	}
	if !strings.Contains(FormatFixes(tst, Equivalent, nil), "no applicable") {
		t.Error("empty report malformed")
	}
}

// TestSuggestFixesStrictness: for the roach-motel over-strictness
// (Section 5.2.2) the combined refinement is what repairs it.
func TestSuggestFixesStrictness(t *testing.T) {
	e := NewEngine()
	tst := litmus.MP.Instantiate([]c11.Order{c11.SC, c11.Rlx, c11.SC, c11.SC})
	s := Stack{Mapping: compile.RISCVAtomicsIntuitive, Model: uspec.NMM(uspec.Curr)}
	fixes, err := e.SuggestFixes(tst, s)
	if err != nil {
		t.Fatal(err)
	}
	repaired := false
	for _, f := range fixes {
		if f.Repairs {
			repaired = true
		}
		if f.Verdict == Bug {
			t.Errorf("refinement introduced a bug: %s", f.Description)
		}
	}
	if !repaired {
		t.Error("no refinement repaired the roach-motel strictness")
	}
}

// TestAuditMapping: the audit API reproduces the Section 7 split — the
// trailing-sync mapping is dirty on rwc, the leading-sync one clean.
func TestAuditMapping(t *testing.T) {
	e := NewEngine()
	tests := litmus.RWC.Generate()
	dirty, err := e.AuditMapping(tests, Stack{Mapping: compile.PowerTrailingSync, Model: uspec.PowerA9()}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dirty.Clean() || dirty.ByFamily["rwc"] == 0 {
		t.Errorf("trailing-sync audit should find rwc counterexamples: %s", dirty)
	}
	clean, err := e.AuditMapping(tests, Stack{Mapping: compile.PowerLeadingSync, Model: uspec.PowerA9()}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !clean.Clean() {
		t.Errorf("leading-sync audit should be clean on rwc: %s", clean)
	}
	if !strings.Contains(dirty.String(), "counterexamples") || !strings.Contains(clean.String(), "clean") {
		t.Error("audit summaries malformed")
	}
}
