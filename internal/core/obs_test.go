package core

import (
	"testing"

	"tricheck/internal/litmus"
)

// TestCostMatrixAccumulates pins the per-(test, stack) cost matrix the
// `tricheck top` report ranks: every executed job lands exactly one
// costed cell, cells carry a phase split that sums below the job total,
// and the matrix comes back sorted most-expensive-first.
func TestCostMatrixAccumulates(t *testing.T) {
	tests := litmus.CoRR.Generate()
	stacks, err := SelectStacks("base", "curr")
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine()
	eng.EnableMemoIfAbsent(0) // memoize so the warm rerun below executes nothing
	if _, err := eng.SweepStream(tests, stacks, 0, nil); err != nil {
		t.Fatal(err)
	}

	costs := eng.CostMatrix()
	if want := len(tests) * len(stacks); len(costs) != want {
		t.Fatalf("cost matrix has %d cells, want %d (every job executed once)", len(costs), want)
	}
	for i, c := range costs {
		if c.Count != 1 {
			t.Errorf("%s/%s: count = %d, want 1", c.Test, c.Stack, c.Count)
		}
		if c.Total <= 0 {
			t.Errorf("%s/%s: non-positive total %v", c.Test, c.Stack, c.Total)
		}
		if split := c.HLL + c.Compile + c.Skeleton + c.Enumerate; split > c.Total {
			t.Errorf("%s/%s: phase split %v exceeds total %v", c.Test, c.Stack, split, c.Total)
		}
		if c.Candidates <= 0 {
			t.Errorf("%s/%s: no enumeration candidates recorded", c.Test, c.Stack)
		}
		if c.Family != litmus.CoRR.Name {
			t.Errorf("%s/%s: family %q", c.Test, c.Stack, c.Family)
		}
		if i > 0 && costs[i-1].Total < c.Total {
			t.Errorf("matrix not sorted: cell %d (%v) after %v", i, c.Total, costs[i-1].Total)
		}
	}

	// A warm rerun on the same engine is all memo hits: cost cells must
	// not accumulate phantom executions.
	if _, err := eng.SweepStream(tests, stacks, 0, nil); err != nil {
		t.Fatal(err)
	}
	for _, c := range eng.CostMatrix() {
		if c.Count != 1 {
			t.Errorf("%s/%s: warm rerun bumped count to %d", c.Test, c.Stack, c.Count)
		}
	}
}

// TestCostMatrixEmptyEngine pins the no-work shape (nil, not a panic).
func TestCostMatrixEmptyEngine(t *testing.T) {
	if costs := NewEngine().CostMatrix(); len(costs) != 0 {
		t.Errorf("fresh engine has %d cost cells", len(costs))
	}
}
