package core

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"

	"tricheck/internal/compile"
	"tricheck/internal/farm"
	"tricheck/internal/litmus"
	"tricheck/internal/mem"
	"tricheck/internal/uspec"
)

// This file is the engine's verification-farm frontend: it turns suites
// and sweeps into fingerprinted (test, stack) jobs for internal/farm,
// memoizes their portable verdicts, and reassembles deterministic
// SuiteResults from the streamed results.

// Memo is the portable (pointer-free) verdict of one (test, stack) job:
// everything step 4 derives except the per-test "specified outcome"
// classification, which Bind recomputes. Memos are what the farm's memo
// cache stores and what cache snapshots serialize; the maps and slices
// are shared between the cache and every bound TestResult, so treat
// them as read-only.
type Memo struct {
	Allowed        map[mem.Outcome]bool `json:"allowed"`
	Observable     map[mem.Outcome]bool `json:"observable"`
	BugOutcomes    []mem.Outcome        `json:"bugs,omitempty"`
	StrictOutcomes []mem.Outcome        `json:"strict,omitempty"`
	Verdict        Verdict              `json:"verdict"`
	Racy           bool                 `json:"racy,omitempty"`
}

// Bind rebinds a portable verdict to a concrete test and stack,
// recomputing the specified-outcome classification from the test's
// designated interesting outcome.
func (m *Memo) Bind(t *litmus.Test, s Stack) *TestResult {
	r := &TestResult{
		Test:           t,
		Stack:          s,
		Allowed:        m.Allowed,
		Observable:     m.Observable,
		BugOutcomes:    m.BugOutcomes,
		StrictOutcomes: m.StrictOutcomes,
		Verdict:        m.Verdict,
		Racy:           m.Racy,
	}
	r.SpecifiedAllowed = m.Allowed[t.Specified]
	r.SpecifiedObservable = m.Observable[t.Specified]
	r.SpecifiedBug = r.SpecifiedObservable && !r.SpecifiedAllowed
	return r
}

// StackFingerprint returns a canonical content hash of a stack: the
// compiler mapping's recipes and the µspec model's configuration bits,
// with display names excluded. Editing a single mapping recipe or model
// axiom therefore changes the fingerprint — and invalidates exactly the
// memo entries that depend on it — while renaming does not.
func StackFingerprint(s Stack) string {
	var b strings.Builder
	m := s.Mapping
	fmt.Fprintf(&b, "arch=%d;", m.Arch)
	recipe := func(tag string, r compile.Recipe) {
		fmt.Fprintf(&b, "%s:", tag)
		for _, it := range r {
			fmt.Fprintf(&b, "%d.%d.%d.%d.%t.%t.%t,", it.Kind, it.Pred, it.Succ, it.Cum, it.Aq, it.Rl, it.SC)
		}
		b.WriteByte(';')
	}
	recipe("lr", m.LoadRlx)
	recipe("la", m.LoadAcq)
	recipe("ls", m.LoadSC)
	recipe("sr", m.StoreRlx)
	recipe("se", m.StoreRel)
	recipe("ss", m.StoreSC)
	recipe("fa", m.FenceAcq)
	recipe("fr", m.FenceRel)
	recipe("far", m.FenceAcqRel)
	recipe("fs", m.FenceSC)
	c := s.Model.Config
	fmt.Fprintf(&b, "wr=%t;fwd=%t;ww=%t;rr=%t;sarr=%t;nmca=%t;cp=%t;deps=%t;var=%d",
		c.RelaxWR, c.Forwarding, c.RelaxWW, c.RelaxRR, c.OrderSameAddrRR,
		c.NMCA, c.CacheProtocol, c.RespectDeps, c.Variant)
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:16])
}

// JobKey is the farm/cache key of one (test, stack) verification job.
func JobKey(t *litmus.Test, s Stack) string {
	return jobKeyFromFPs(t.Fingerprint(), StackFingerprint(s))
}

// jobKeyFromFPs combines precomputed fingerprints into the one key
// format shared by Run, SweepStream and cache snapshots.
func jobKeyFromFPs(testFP, stackFP string) string {
	return testFP + "+" + stackFP
}

// defaultMemoCapacity holds three full 28-stack paper sweeps with room
// to spare.
const defaultMemoCapacity = 1 << 18

// EnableMemo attaches a memoized (test, stack) result cache of the
// given capacity (0 = default) to the engine. Subsequent RunSuite/Sweep
// runs only execute jobs whose fingerprints are not yet cached. Call it
// before the first run; it is not safe concurrently with runs.
func (e *Engine) EnableMemo(capacity int) {
	if capacity <= 0 {
		capacity = defaultMemoCapacity
	}
	e.memo = farm.NewCache[string, *Memo](capacity)
}

// EnableMemoIfAbsent attaches a memo cache of the given capacity
// (0 = default) unless one is already enabled — for services that
// require memoization but must not clobber an embedder's configured
// cache.
func (e *Engine) EnableMemoIfAbsent(capacity int) {
	if e.memo == nil {
		e.EnableMemo(capacity)
	}
}

// MemoStats returns the memo-cache counters; ok is false when no memo
// cache is enabled.
func (e *Engine) MemoStats() (stats farm.CacheStats, ok bool) {
	if e.memo == nil {
		return farm.CacheStats{}, false
	}
	return e.memo.Stats(), true
}

// LoadMemoSnapshot merges a JSON snapshot (written by SaveMemoSnapshot)
// into the memo cache, enabling the cache first if needed. A missing
// file satisfies os.IsNotExist.
func (e *Engine) LoadMemoSnapshot(path string) error {
	if e.memo == nil {
		e.EnableMemo(0)
	}
	return farm.LoadSnapshot(path, e.memo)
}

// SaveMemoSnapshot writes the memo cache to path as JSON, atomically.
func (e *Engine) SaveMemoSnapshot(path string) error {
	if e.memo == nil {
		return fmt.Errorf("core: no memo cache enabled")
	}
	return farm.SaveSnapshot(path, e.memo)
}

// LoadMemoSnapshotLenient loads a memo-cache snapshot, tolerating the
// recoverable cases: a missing file is a silent cold start, and an
// incompatible-version snapshot warns on w and cold-starts (the next
// SaveMemoSnapshot overwrites it). Any other error is returned.
func LoadMemoSnapshotLenient(eng *Engine, path string, w io.Writer) error {
	switch err := eng.LoadMemoSnapshot(path); {
	case err == nil, os.IsNotExist(err):
		return nil
	case errors.Is(err, farm.ErrSnapshotVersion):
		fmt.Fprintf(w, "ignoring stale cache (will be rewritten): %v\n", err)
		return nil
	default:
		return err
	}
}

// LastFarmStats returns the scheduler statistics of the most recent
// RunSuite/Sweep/SweepStream call.
func (e *Engine) LastFarmStats() farm.Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.lastFarm
}

// Progress is one streamed farm result, delivered as soon as the job
// lands (in completion order, not submission order).
type Progress struct {
	// Done counts delivered results so far; Total is the sweep size.
	Done, Total int
	// Stack and Test identify the job; Verdict is its outcome.
	Stack, Test string
	Verdict     Verdict
	// Key is the job's memo fingerprint (JobKey): the canonical identity
	// a remote consumer can compare against its own JobKey computation.
	Key string
	// Cached reports that the result came from the memo cache or from
	// deduplication rather than an execution.
	Cached bool
}

// SweepStream runs tests × stacks as a single verification-farm run and
// returns one SuiteResult per stack, in stack order with per-stack
// results in test order. When events is non-nil every result is
// additionally streamed to it for progressive reporting; the channel is
// closed before SweepStream returns. A slow consumer backpressures the
// farm, so buffer the channel or drain it promptly.
func (e *Engine) SweepStream(tests []*litmus.Test, stacks []Stack, workers int, events chan<- Progress) ([]*SuiteResult, error) {
	return e.SweepStreamContext(context.Background(), tests, stacks, workers, events)
}

// SweepStreamContext is SweepStream under a context: cancelling ctx
// stops scheduling the sweep's remaining farm jobs (in-flight jobs
// finish, are streamed, and stay in the memo cache — an aborted sweep
// never poisons it) and returns ctx's error. The events channel, when
// non-nil, is closed before returning in every case.
func (e *Engine) SweepStreamContext(ctx context.Context, tests []*litmus.Test, stacks []Stack, workers int, events chan<- Progress) ([]*SuiteResult, error) {
	if events != nil {
		defer close(events)
	}
	total := len(tests) * len(stacks)
	testFPs := make([]string, len(tests))
	for i, t := range tests {
		testFPs[i] = t.Fingerprint()
	}
	jobs := make([]farm.Job[string, *Memo], 0, total)
	for _, s := range stacks {
		s := s
		sfp := StackFingerprint(s)
		for ti, t := range tests {
			t := t
			jobs = append(jobs, farm.Job[string, *Memo]{
				Key: jobKeyFromFPs(testFPs[ti], sfp),
				Run: func() (*Memo, error) { return e.evaluate(t, s) },
			})
		}
	}
	done := 0
	opts := farm.Options[string, *Memo]{
		Workers: workers,
		Cache:   e.memo,
		Context: ctx,
		OnResult: func(i int, m *Memo, cached bool) {
			if events == nil {
				return
			}
			done++
			events <- Progress{
				Done:    done,
				Total:   total,
				Stack:   stacks[i/len(tests)].Name(),
				Test:    tests[i%len(tests)].Name,
				Verdict: m.Verdict,
				Key:     jobs[i].Key,
				Cached:  cached,
			}
		},
	}
	memos, stats, err := farm.Run(jobs, opts)
	e.mu.Lock()
	e.lastFarm = stats
	e.mu.Unlock()
	if err != nil {
		return nil, err
	}
	out := make([]*SuiteResult, len(stacks))
	for si, s := range stacks {
		sr := &SuiteResult{Stack: s, ByFamily: map[string]*Tally{}}
		for ti, t := range tests {
			r := memos[si*len(tests)+ti].Bind(t, s)
			sr.Results = append(sr.Results, r)
			sr.Tally.Add(r)
			fam := sr.ByFamily[t.Shape.Name]
			if fam == nil {
				fam = &Tally{}
				sr.ByFamily[t.Shape.Name] = fam
			}
			fam.Add(r)
		}
		out[si] = sr
	}
	return out, nil
}

// SelectStacks resolves the stack selectors shared by every frontend
// (tricheck, trisynth, tricheckd): an ISA flavour ("base", "base+a" or
// "both") and an MCM version ("curr", "ours" or "both") expand to the
// corresponding rows of the Figure 15 matrix, in the fixed order
// base-curr, base-ours, base+a-curr, base+a-ours so that every frontend
// reports the same sweep in the same order.
func SelectStacks(isaFlavour, variant string) ([]Stack, error) {
	var base, atomics bool
	switch isaFlavour {
	case "base":
		base = true
	case "base+a":
		atomics = true
	case "both":
		base, atomics = true, true
	default:
		return nil, fmt.Errorf("core: unknown ISA flavour %q (want base, base+a or both)", isaFlavour)
	}
	var curr, ours bool
	switch variant {
	case "curr":
		curr = true
	case "ours":
		ours = true
	case "both":
		curr, ours = true, true
	default:
		return nil, fmt.Errorf("core: unknown MCM version %q (want curr, ours or both)", variant)
	}
	var out []Stack
	add := func(isBase bool) {
		if curr {
			out = append(out, RISCVStacks(isBase, uspec.Curr)...)
		}
		if ours {
			out = append(out, RISCVStacks(isBase, uspec.Ours)...)
		}
	}
	if base {
		add(true)
	}
	if atomics {
		add(false)
	}
	return out, nil
}
