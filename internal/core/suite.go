package core

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"

	"tricheck/internal/compile"
	"tricheck/internal/farm"
	"tricheck/internal/litmus"
	"tricheck/internal/mem"
	"tricheck/internal/obs"
	"tricheck/internal/uspec"
)

// This file is the engine's verification-farm frontend: it turns suites
// and sweeps into fingerprinted (test, stack) jobs for internal/farm,
// memoizes their portable verdicts, and reassembles deterministic
// SuiteResults from the streamed results.

// Memo is the portable (pointer-free) verdict of one (test, stack) job:
// everything step 4 derives except the per-test "specified outcome"
// classification, which Bind recomputes. Memos are what the farm's memo
// cache stores and what cache snapshots serialize; the maps and slices
// are shared between the cache and every bound TestResult, so treat
// them as read-only.
type Memo struct {
	Allowed        map[mem.Outcome]bool `json:"allowed"`
	Observable     map[mem.Outcome]bool `json:"observable"`
	BugOutcomes    []mem.Outcome        `json:"bugs,omitempty"`
	StrictOutcomes []mem.Outcome        `json:"strict,omitempty"`
	Verdict        Verdict              `json:"verdict"`
	Racy           bool                 `json:"racy,omitempty"`
	// Opsim carries the operational backend's enumeration (BackendOpsim)
	// or cross-check diff (BackendBoth); nil on uhb memos, so legacy
	// snapshots round-trip unchanged.
	Opsim *OpsimMemo `json:"opsim,omitempty"`
}

// Bind rebinds a portable verdict to a concrete test and stack,
// recomputing the specified-outcome classification from the test's
// designated interesting outcome.
func (m *Memo) Bind(t *litmus.Test, s Stack) *TestResult {
	r := &TestResult{
		Test:           t,
		Stack:          s,
		Allowed:        m.Allowed,
		Observable:     m.Observable,
		BugOutcomes:    m.BugOutcomes,
		StrictOutcomes: m.StrictOutcomes,
		Verdict:        m.Verdict,
		Racy:           m.Racy,
		Opsim:          m.Opsim,
	}
	r.SpecifiedAllowed = m.Allowed[t.Specified]
	r.SpecifiedObservable = m.Observable[t.Specified]
	r.SpecifiedBug = r.SpecifiedObservable && !r.SpecifiedAllowed
	return r
}

// StackFingerprint returns a canonical content hash of a stack: the
// compiler mapping's recipes and the µspec model's configuration bits
// (uspec.Config.ContentKey — the model's config fingerprint input),
// with display names excluded. Editing a single mapping recipe or model
// axiom therefore changes the fingerprint — and invalidates exactly the
// memo entries that depend on it — while renaming does not: two
// different custom models that share a display name never share memo
// entries, and a renamed identical config still gets warm hits.
func StackFingerprint(s Stack) string {
	var b strings.Builder
	m := s.Mapping
	fmt.Fprintf(&b, "arch=%d;", m.Arch)
	recipe := func(tag string, r compile.Recipe) {
		fmt.Fprintf(&b, "%s:", tag)
		for _, it := range r {
			fmt.Fprintf(&b, "%d.%d.%d.%d.%t.%t.%t,", it.Kind, it.Pred, it.Succ, it.Cum, it.Aq, it.Rl, it.SC)
		}
		b.WriteByte(';')
	}
	recipe("lr", m.LoadRlx)
	recipe("la", m.LoadAcq)
	recipe("ls", m.LoadSC)
	recipe("sr", m.StoreRlx)
	recipe("se", m.StoreRel)
	recipe("ss", m.StoreSC)
	recipe("fa", m.FenceAcq)
	recipe("fr", m.FenceRel)
	recipe("far", m.FenceAcqRel)
	recipe("fs", m.FenceSC)
	b.WriteString(s.Model.Config.ContentKey())
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:16])
}

// JobKey is the farm/cache key of one (test, stack) verification job.
func JobKey(t *litmus.Test, s Stack) string {
	return jobKeyFromFPs(t.Fingerprint(), StackFingerprint(s))
}

// jobKeyFromFPs combines precomputed fingerprints into the one key
// format shared by Run, SweepStream and cache snapshots.
func jobKeyFromFPs(testFP, stackFP string) string {
	return testFP + "+" + stackFP
}

// defaultMemoCapacity holds three full 28-stack paper sweeps with room
// to spare.
const defaultMemoCapacity = 1 << 18

// EnableMemo attaches a memoized (test, stack) result cache of the
// given capacity (0 = default) to the engine. Subsequent RunSuite/Sweep
// runs only execute jobs whose fingerprints are not yet cached. Call it
// before the first run; it is not safe concurrently with runs.
func (e *Engine) EnableMemo(capacity int) {
	if capacity <= 0 {
		capacity = defaultMemoCapacity
	}
	e.memo = farm.NewCache[string, *Memo](capacity)
}

// EnableMemoIfAbsent attaches a memo cache of the given capacity
// (0 = default) unless one is already enabled — for services that
// require memoization but must not clobber an embedder's configured
// cache.
func (e *Engine) EnableMemoIfAbsent(capacity int) {
	if e.memo == nil {
		e.EnableMemo(capacity)
	}
}

// MemoStats returns the memo-cache counters; ok is false when no memo
// cache is enabled.
func (e *Engine) MemoStats() (stats farm.CacheStats, ok bool) {
	if e.memo == nil {
		return farm.CacheStats{}, false
	}
	return e.memo.Stats(), true
}

// LoadMemoSnapshot merges a JSON snapshot (written by SaveMemoSnapshot)
// into the memo cache, enabling the cache first if needed. A missing
// file satisfies os.IsNotExist.
func (e *Engine) LoadMemoSnapshot(path string) error {
	if e.memo == nil {
		e.EnableMemo(0)
	}
	return farm.LoadSnapshot(path, e.memo)
}

// SaveMemoSnapshot writes the memo cache to path as JSON, atomically.
func (e *Engine) SaveMemoSnapshot(path string) error {
	if e.memo == nil {
		return fmt.Errorf("core: no memo cache enabled")
	}
	return farm.SaveSnapshot(path, e.memo)
}

// MemoSnapshotSlice encodes the memo cache — filtered to the keys keep
// accepts when keep is non-nil — in the snapshot envelope. The fleet's
// memo-replication path serves consistent-hash slices of a worker's
// cache with it; DecodeSnapshot-compatible, so a slice loads anywhere a
// snapshot file does. An engine without a memo cache yields an empty
// (but valid) snapshot.
func (e *Engine) MemoSnapshotSlice(keep func(key string) bool) ([]byte, error) {
	if e.memo == nil {
		return farm.EncodeSnapshot(farm.NewCache[string, *Memo](0), nil)
	}
	return farm.EncodeSnapshot(e.memo, keep)
}

// MergeMemoSnapshot merges snapshot bytes (a MemoSnapshotSlice or a
// snapshot file's contents) into the memo cache, enabling the cache
// first if needed. Last-write-wins per key; existing entries outside
// the snapshot are untouched.
func (e *Engine) MergeMemoSnapshot(data []byte) error {
	if e.memo == nil {
		e.EnableMemo(0)
	}
	return farm.DecodeSnapshot(data, e.memo)
}

// LoadMemoSnapshotLenient loads a memo-cache snapshot, tolerating the
// recoverable cases: a missing file is a silent cold start, and an
// incompatible-version snapshot warns on w and cold-starts (the next
// SaveMemoSnapshot overwrites it). Any other error is returned.
func LoadMemoSnapshotLenient(eng *Engine, path string, w io.Writer) error {
	switch err := eng.LoadMemoSnapshot(path); {
	case err == nil, os.IsNotExist(err):
		return nil
	case errors.Is(err, farm.ErrSnapshotVersion):
		fmt.Fprintf(w, "ignoring stale cache (will be rewritten): %v\n", err)
		return nil
	default:
		return err
	}
}

// LastFarmStats returns the scheduler statistics of the most recent
// RunSuite/Sweep/SweepStream call.
func (e *Engine) LastFarmStats() farm.Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.lastFarm
}

// Progress is one streamed farm result, delivered as soon as the job
// lands (in completion order, not submission order).
type Progress struct {
	// Done counts delivered results so far; Total is the sweep size.
	Done, Total int
	// Stack and Test identify the job; Verdict is its outcome.
	Stack, Test string
	Verdict     Verdict
	// Key is the job's memo fingerprint (JobKey): the canonical identity
	// a remote consumer can compare against its own JobKey computation.
	Key string
	// Cached reports that the result came from the memo cache or from
	// deduplication rather than an execution.
	Cached bool
	// SpecifiedBug marks the test's designated interesting outcome as
	// forbidden-yet-observable on this stack (the paper's headline
	// counting), precomputed here so remote stream consumers — the fleet
	// coordinator aggregating per-stack tallies from merged records —
	// never need the test definition.
	SpecifiedBug bool
	// Opsim carries the operational backend's side of the result (nil on
	// uhb sweeps): the cross-check diff and witness for a Divergence
	// verdict, or the skip note for an out-of-capability config.
	Opsim *OpsimMemo
}

// SweepStream runs tests × stacks as a single verification-farm run and
// returns one SuiteResult per stack, in stack order with per-stack
// results in test order. When events is non-nil every result is
// additionally streamed to it for progressive reporting; the channel is
// closed before SweepStream returns. A slow consumer backpressures the
// farm, so buffer the channel or drain it promptly.
func (e *Engine) SweepStream(tests []*litmus.Test, stacks []Stack, workers int, events chan<- Progress) ([]*SuiteResult, error) {
	return e.SweepStreamContext(context.Background(), tests, stacks, workers, events)
}

// SweepStreamContext is SweepStream under a context: cancelling ctx
// stops scheduling the sweep's remaining farm jobs (in-flight jobs
// finish, are streamed, and stay in the memo cache — an aborted sweep
// never poisons it) and returns ctx's error. The events channel, when
// non-nil, is closed before returning in every case.
func (e *Engine) SweepStreamContext(ctx context.Context, tests []*litmus.Test, stacks []Stack, workers int, events chan<- Progress) ([]*SuiteResult, error) {
	return e.SweepStreamBackend(ctx, tests, stacks, workers, BackendUHB, events)
}

// SweepStreamBackend is SweepStreamContext on an explicit backend: jobs
// carry backend-tagged memo keys (so a warm uhb cache never satisfies an
// opsim or cross-check sweep) and run the backend's evaluation thunk.
func (e *Engine) SweepStreamBackend(ctx context.Context, tests []*litmus.Test, stacks []Stack, workers int, backend Backend, events chan<- Progress) ([]*SuiteResult, error) {
	return e.SweepStreamBackendKeys(ctx, tests, stacks, workers, backend, nil, events)
}

// SweepStreamBackendKeys is SweepStreamBackend restricted to the
// (test, stack) pairs whose backend-tagged memo keys keep returns true
// for (nil keeps everything). This is the fleet's shard primitive: a
// coordinator resolves the same selectors, partitions the
// content-addressed keys over its ring, and each worker sweeps exactly
// its slice — Total, the streamed Done counts and the returned
// SuiteResults all cover only the kept pairs, and a stack with no kept
// pair contributes no SuiteResult.
func (e *Engine) SweepStreamBackendKeys(ctx context.Context, tests []*litmus.Test, stacks []Stack, workers int, backend Backend, keep func(key string) bool, events chan<- Progress) ([]*SuiteResult, error) {
	if events != nil {
		defer close(events)
	}
	if err := ValidateBackendStacks(backend, stacks); err != nil {
		return nil, err
	}
	testFPs := make([]string, len(tests))
	for i, t := range tests {
		testFPs[i] = t.Fingerprint()
	}
	// The sweep inherits the caller's trace (e.g. a /v1/verify request
	// span) so sampled verdict spans correlate with it; stack display
	// names are precomputed so job thunks never format.
	trace, parentSpan := obs.TraceFromContext(ctx)
	// pairs maps each scheduled job index back to its (stack, test)
	// coordinates; under a keep filter job index arithmetic no longer
	// encodes them.
	type pair struct{ si, ti int }
	pairs := make([]pair, 0, len(tests)*len(stacks))
	jobs := make([]farm.Job[string, *Memo], 0, len(tests)*len(stacks))
	stackNames := make([]string, len(stacks))
	for si, s := range stacks {
		s := s
		sfp := StackFingerprint(s)
		sname := s.Name()
		mname := s.Model.FullName()
		stackNames[si] = sname
		for ti, t := range tests {
			t := t
			key := jobKeyFromFPs(testFPs[ti], sfp) + backend.keySuffix()
			if keep != nil && !keep(key) {
				continue
			}
			pairs = append(pairs, pair{si, ti})
			jobs = append(jobs, farm.Job[string, *Memo]{
				Key: key,
				Run: func() (*Memo, error) {
					return e.evaluateBackend(t, s, backend, sname, mname, trace, parentSpan)
				},
			})
		}
	}
	total := len(jobs)
	done := 0
	opts := farm.Options[string, *Memo]{
		Workers: workers,
		Cache:   e.memo,
		Context: ctx,
		Metrics: farmMetrics,
		OnResult: func(i int, m *Memo, cached bool) {
			t := tests[pairs[i].ti]
			// Discrimination vectors record here — the one point that sees
			// every result, memoized or executed, so warm all-cached reruns
			// still populate the ledger's verdict-vector matrix.
			e.ledger.RecordVector(t.Name, stackNames[pairs[i].si], uint8(m.Verdict))
			if events == nil {
				return
			}
			done++
			events <- Progress{
				Done:         done,
				Total:        total,
				Stack:        stackNames[pairs[i].si],
				Test:         t.Name,
				Verdict:      m.Verdict,
				Key:          jobs[i].Key,
				Cached:       cached,
				SpecifiedBug: m.Observable[t.Specified] && !m.Allowed[t.Specified],
				Opsim:        m.Opsim,
			}
		},
	}
	memos, stats, err := farm.Run(jobs, opts)
	e.mu.Lock()
	e.lastFarm = stats
	e.mu.Unlock()
	if err != nil {
		return nil, err
	}
	// Reassemble per-stack results from the kept pairs, which were
	// appended stack-major in test order — so each SuiteResult keeps the
	// historical test ordering.
	perStack := make([]*SuiteResult, len(stacks))
	for i, p := range pairs {
		sr := perStack[p.si]
		if sr == nil {
			sr = &SuiteResult{Stack: stacks[p.si], ByFamily: map[string]*Tally{}}
			perStack[p.si] = sr
		}
		t := tests[p.ti]
		r := memos[i].Bind(t, stacks[p.si])
		sr.Results = append(sr.Results, r)
		sr.Tally.Add(r)
		fam := sr.ByFamily[t.Shape.Name]
		if fam == nil {
			fam = &Tally{}
			sr.ByFamily[t.Shape.Name] = fam
		}
		fam.Add(r)
	}
	out := make([]*SuiteResult, 0, len(stacks))
	for _, sr := range perStack {
		if sr != nil {
			out = append(out, sr)
		}
	}
	return out, nil
}

// isaFlavours expands an ISA flavour selector into the (base, base+a)
// pair, base first.
func isaFlavours(isaFlavour string) (flavours []bool, err error) {
	switch isaFlavour {
	case "base":
		return []bool{true}, nil
	case "base+a":
		return []bool{false}, nil
	case "both":
		return []bool{true, false}, nil
	}
	return nil, fmt.Errorf("core: unknown ISA flavour %q (want base, base+a or both)", isaFlavour)
}

// riscvMapping returns the Figure 15 RISC-V mapping for an ISA flavour
// and MCM variant: the intuitive mapping pairs with Curr models, the
// refined one with Ours.
func riscvMapping(base bool, v uspec.Variant) *compile.Mapping {
	switch {
	case base && v == uspec.Curr:
		return compile.RISCVBaseIntuitive
	case base && v == uspec.Ours:
		return compile.RISCVBaseRefined
	case !base && v == uspec.Curr:
		return compile.RISCVAtomicsIntuitive
	default:
		return compile.RISCVAtomicsRefined
	}
}

// SelectStacksModels pairs an explicit model list — registry builtins,
// -model-file specs, or enumerated lattice configs — with the Figure 15
// RISC-V mapping matching each model's variant, over the selected ISA
// flavours (base first, models in input order within a flavour). Every
// model must be non-nil and pass µspec validation: a frontend that lets
// an unknown name or an illegal spec through gets a named error here
// rather than a meaningless sweep.
func SelectStacksModels(isaFlavour string, models []*uspec.Model) ([]Stack, error) {
	flavours, err := isaFlavours(isaFlavour)
	if err != nil {
		return nil, err
	}
	if len(models) == 0 {
		return nil, fmt.Errorf("core: no models selected")
	}
	seen := map[string]int{}
	for i, m := range models {
		if m == nil {
			return nil, fmt.Errorf("core: unknown model at position %d", i)
		}
		if m.Name == "" {
			return nil, fmt.Errorf("core: model at position %d has no name", i)
		}
		if err := m.Config.Validate(); err != nil {
			return nil, fmt.Errorf("core: illegal model %q: %w", m.Name, err)
		}
		// Stacks are reported by display name, so two models sharing a
		// (name, variant) would be indistinguishable in every stream,
		// summary and CSV row even though their memo keys differ.
		full := m.FullName()
		if j, dup := seen[full]; dup {
			return nil, fmt.Errorf("core: models %d and %d share the display name %s; rename one", j, i, full)
		}
		seen[full] = i
	}
	out := make([]Stack, 0, len(flavours)*len(models))
	for _, base := range flavours {
		for _, m := range models {
			out = append(out, Stack{Mapping: riscvMapping(base, m.Variant), Model: m})
		}
	}
	return out, nil
}

// ResolveModels expands an MCM version selector ("curr", "ours" or
// "both") to the registry's Table 7 models, built once and shared — the
// model half of SelectStacks.
func ResolveModels(variant string) ([]*uspec.Model, error) {
	switch variant {
	case "curr":
		return uspec.Models(uspec.Curr), nil
	case "ours":
		return uspec.Models(uspec.Ours), nil
	case "both":
		return append(uspec.Models(uspec.Curr), uspec.Models(uspec.Ours)...), nil
	}
	return nil, fmt.Errorf("core: unknown MCM version %q (want curr, ours or both)", variant)
}

// ResolveModel finds one builtin model by name under a single-variant
// selector ("curr" or "ours"), with an error naming the known set when
// the lookup misses — the frontends' -model flag resolution.
func ResolveModel(name, variant string) (*uspec.Model, error) {
	var v uspec.Variant
	switch variant {
	case "curr":
		v = uspec.Curr
	case "ours":
		v = uspec.Ours
	default:
		return nil, fmt.Errorf("core: unknown MCM version %q (want curr or ours)", variant)
	}
	if m := uspec.ModelByName(name, v); m != nil {
		return m, nil
	}
	return nil, fmt.Errorf("core: unknown model %q under %s (known: %s)",
		name, variant, strings.Join(uspec.Builtins().Names(), ", "))
}

// LoadModels reads and validates µspec model spec files (the frontends'
// repeatable -model-file flag).
func LoadModels(paths []string) ([]*uspec.Model, error) {
	models := make([]*uspec.Model, 0, len(paths))
	for _, path := range paths {
		s, err := uspec.LoadSpecFile(path)
		if err != nil {
			return nil, fmt.Errorf("core: model file %w", err)
		}
		models = append(models, uspec.New(*s))
	}
	return models, nil
}

// SelectStacksFiles resolves stacks for -model-file frontends: it loads
// and validates the spec files and pairs each model with its variant's
// mapping. variantSet reports whether the caller's -variant flag was
// explicitly given — model specs carry their own variant, so combining
// the two is rejected here once, with the same contract the service
// enforces for inline models.
func SelectStacksFiles(isaFlavour string, modelFiles []string, variantSet bool) ([]Stack, error) {
	if variantSet {
		return nil, fmt.Errorf("core: -variant selects builtin models; a -model-file spec carries its own variant — drop one of the two")
	}
	models, err := LoadModels(modelFiles)
	if err != nil {
		return nil, err
	}
	return SelectStacksModels(isaFlavour, models)
}

// SelectStacks resolves the stack selectors shared by every frontend
// (tricheck, trisynth, tricheckd): an ISA flavour ("base", "base+a" or
// "both") and an MCM version ("curr", "ours" or "both") expand to the
// corresponding rows of the Figure 15 matrix, in the fixed order
// base-curr, base-ours, base+a-curr, base+a-ours so that every frontend
// reports the same sweep in the same order. The models come from the
// builtin registry: built once, shared across every call.
func SelectStacks(isaFlavour, variant string) ([]Stack, error) {
	models, err := ResolveModels(variant)
	if err != nil {
		// Surface the ISA-flavour error first when both are bad, matching
		// the historical check order.
		if _, ferr := isaFlavours(isaFlavour); ferr != nil {
			return nil, ferr
		}
		return nil, err
	}
	return SelectStacksModels(isaFlavour, models)
}
