package core

import (
	"testing"

	"tricheck/internal/c11"
	"tricheck/internal/compile"
	"tricheck/internal/litmus"
	"tricheck/internal/uspec"
)

// TestHeadline1701 pins the paper's abstract headline: "we find that a
// RISC-V-compliant microarchitecture allows 144 outcomes forbidden by C11
// to be observed out of 1,701 litmus tests examined". That
// microarchitecture is nMM (equivalently A9like) running the intuitive
// Base+A mapping under the current RISC-V MCM: 72 WRC + 18 CoRR + 54
// CO-RSDWI buggy variants.
func TestHeadline1701(t *testing.T) {
	if testing.Short() {
		t.Skip("full 1701-test sweep")
	}
	e := NewEngine()
	suite := litmus.PaperSuite()
	if len(suite) != 1701 {
		t.Fatalf("suite size %d, want 1701", len(suite))
	}
	res, err := e.RunSuite(suite, Stack{Mapping: compile.RISCVAtomicsIntuitive, Model: uspec.NMM(uspec.Curr)}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tally.SpecifiedBugs != 144 {
		t.Errorf("headline: %d forbidden-yet-observed outcomes, want 144", res.Tally.SpecifiedBugs)
	}
	want := map[string]int{"wrc": 72, "corr": 18, "co-rsdwi": 54, "mp": 0, "sb": 0, "rwc": 0, "iriw": 0}
	for fam, n := range want {
		if got := res.ByFamily[fam].SpecifiedBugs; got != n {
			t.Errorf("family %s: %d specified bugs, want %d", fam, got, n)
		}
	}
	// And the refined stack eliminates all of them.
	res2, err := e.RunSuite(suite, Stack{Mapping: compile.RISCVAtomicsRefined, Model: uspec.NMM(uspec.Ours)}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Tally.Bugs != 0 {
		t.Errorf("riscv-ours: %d bugs, want 0", res2.Tally.Bugs)
	}
}

// TestHeadlineBaseCounts pins the Base-ISA per-model totals implied by
// Section 6.1: nWR = 108 WRC + 2 RWC + 4 IRIW = 114; nMM and A9like add
// 18 CoRR + 54 CO-RSDWI = 186.
func TestHeadlineBaseCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("full 1701-test sweeps")
	}
	e := NewEngine()
	suite := litmus.PaperSuite()
	cases := []struct {
		model *uspec.Model
		want  int
	}{
		{uspec.NWR(uspec.Curr), 114},
		{uspec.NMM(uspec.Curr), 186},
		{uspec.A9like(uspec.Curr), 186},
	}
	for _, c := range cases {
		res, err := e.RunSuite(suite, Stack{Mapping: compile.RISCVBaseIntuitive, Model: c.model}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Tally.SpecifiedBugs != c.want {
			t.Errorf("Base riscv-curr on %s: %d specified bugs, want %d", c.model.FullName(), res.Tally.SpecifiedBugs, c.want)
		}
	}
}

// TestSection7TrailingSync reproduces the compiler-mapping study: on the
// PowerA9 model, the leading-sync mapping (Table 1) has no mapping bugs on
// the rwc family, while the trailing-sync mapping admits counterexamples —
// C11-forbidden outcomes observable because the SC load's sync comes too
// late to propagate writes observed by an earlier acquire. These are the
// counterexamples that invalidated the "proven-correct" trailing-sync
// mapping (Manerkar et al., reference [36]).
func TestSection7TrailingSync(t *testing.T) {
	e := NewEngine()
	m := uspec.PowerA9()
	rwc := litmus.RWC.Generate()
	lead, err := e.RunSuite(rwc, Stack{Mapping: compile.PowerLeadingSync, Model: m}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if lead.Tally.Bugs != 0 {
		t.Errorf("leading-sync on rwc: %d bugs, want 0", lead.Tally.Bugs)
	}
	trail, err := e.RunSuite(rwc, Stack{Mapping: compile.PowerTrailingSync, Model: m}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if trail.Tally.Bugs == 0 {
		t.Fatal("trailing-sync on rwc: no counterexamples found")
	}
	// The canonical counterexample shape: everything SC except an acquire
	// first load.
	found := false
	for _, r := range trail.Results {
		if r.Verdict == Bug && r.Test.Name == "rwc[sc,acq,sc,sc,sc]" {
			found = true
		}
	}
	if !found {
		t.Error("rwc[sc,acq,sc,sc,sc] counterexample not found")
	}
}

// TestSection7LoadLoadHazardBugs: both Power mappings exhibit the ARM
// load→load hazard (Figure 1) on the corr family — a hardware bug no
// mapping fixes — and the repaired model clears it. Leading-sync exposes
// 18 variants (first load rlx, second rlx-or-acq); trailing-sync exposes
// 27 because its SC loads carry no leading fence either.
func TestSection7LoadLoadHazardBugs(t *testing.T) {
	e := NewEngine()
	corr := litmus.CoRR.Generate()
	for _, c := range []struct {
		mapping *compile.Mapping
		want    int
	}{
		{compile.PowerLeadingSync, 18},
		{compile.PowerTrailingSync, 27},
	} {
		mapping := c.mapping
		res, err := e.RunSuite(corr, Stack{Mapping: mapping, Model: uspec.PowerA9()}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Tally.SpecifiedBugs != c.want {
			t.Errorf("%s on PowerA9: corr specified bugs = %d, want %d", mapping.Name, res.Tally.SpecifiedBugs, c.want)
		}
		fixed, err := e.RunSuite(corr, Stack{Mapping: mapping, Model: uspec.PowerA9Fixed()}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if fixed.Tally.Bugs != 0 {
			t.Errorf("%s on PowerA9Fixed: %d bugs, want 0", mapping.Name, fixed.Tally.Bugs)
		}
	}
}

// TestFigure1LoadLoadHazard replays the paper's opening example end to
// end: a C11 program with relaxed same-address loads, compiled with the
// standard ARMv7 mapping, intermittently shows a C11-forbidden outcome on
// Cortex-A9-like hardware. ARM's compiler fix (dmb after atomic loads)
// hides the hazard — at the cost Figure 2 measures — and repairing the
// hardware instead also clears it.
func TestFigure1LoadLoadHazard(t *testing.T) {
	e := NewEngine()
	corr := litmus.CoRR.Generate()
	a9 := uspec.PowerA9()
	broken, err := e.RunSuite(corr, Stack{Mapping: compile.ARMv7Standard, Model: a9}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if broken.Tally.SpecifiedBugs == 0 {
		t.Fatal("Figure 1: hazard not reproduced under the standard ARMv7 mapping")
	}
	fixedSW, err := e.RunSuite(corr, Stack{Mapping: compile.ARMv7HazardFix, Model: a9}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fixedSW.Tally.Bugs != 0 {
		t.Errorf("ARM's dmb-after-load fix leaves %d bugs", fixedSW.Tally.Bugs)
	}
	fixedHW, err := e.RunSuite(corr, Stack{Mapping: compile.ARMv7Standard, Model: uspec.PowerA9Fixed()}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fixedHW.Tally.Bugs != 0 {
		t.Errorf("hardware same-address R→R fix leaves %d bugs", fixedHW.Tally.Bugs)
	}
	// The software fix over-synchronizes relative to the hardware fix:
	// strictly more OverlyStrict verdicts on the mp family.
	mp := litmus.MP.Generate()
	sw, err := e.RunSuite(mp, Stack{Mapping: compile.ARMv7HazardFix, Model: a9}, 0)
	if err != nil {
		t.Fatal(err)
	}
	hw, err := e.RunSuite(mp, Stack{Mapping: compile.ARMv7Standard, Model: uspec.PowerA9Fixed()}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sw.Tally.Strict <= hw.Tally.Strict {
		t.Errorf("dmb-after-load fix should over-synchronize: strict %d (sw) vs %d (hw)",
			sw.Tally.Strict, hw.Tally.Strict)
	}
}

// TestX86TSOClassicResult: with the standard C11→x86 mapping on the TSO
// model, the entire 1,701-test paper suite is bug-free, and the only
// families with any Overly Strict slack are those whose weak outcomes need
// relaxations TSO does not have — the folklore "x86 only does store
// buffering" result, derived here from first principles.
func TestX86TSOClassicResult(t *testing.T) {
	if testing.Short() {
		t.Skip("full 1701-test sweep")
	}
	e := NewEngine()
	res, err := e.RunSuite(litmus.PaperSuite(), Stack{Mapping: compile.X86TSO, Model: uspec.TSO()}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tally.Bugs != 0 {
		t.Errorf("x86-TSO stack shows %d bugs, want 0", res.Tally.Bugs)
	}
	// SB's weak outcome must remain observable (no mfence on relaxed code).
	sbRlx := litmus.SB.Instantiate([]c11.Order{c11.Rlx, c11.Rlx, c11.Rlx, c11.Rlx})
	r, err := e.Run(sbRlx, Stack{Mapping: compile.X86TSO, Model: uspec.TSO()})
	if err != nil {
		t.Fatal(err)
	}
	if !r.SpecifiedObservable {
		t.Error("store buffering must be observable on TSO")
	}
	// And all-SC SB must be forbidden (the trailing mfence works).
	sbSC := litmus.SB.Instantiate([]c11.Order{c11.SC, c11.SC, c11.SC, c11.SC})
	r2, err := e.Run(sbSC, Stack{Mapping: compile.X86TSO, Model: uspec.TSO()})
	if err != nil {
		t.Fatal(err)
	}
	if r2.SpecifiedObservable {
		t.Error("SC store buffering must be forbidden under st;mfence")
	}
}

// TestRefinementLoopNarrative walks the Section 5.1 refinement loop on the
// Figure 3 WRC test: bug found under riscv-curr on nMM → apply the
// proposed fix (cumulative fences: refined mapping + ours model) → rerun →
// fixed, and stronger hardware was never buggy.
func TestRefinementLoopNarrative(t *testing.T) {
	e := NewEngine()
	tst := litmus.WRC.Instantiate([]c11.Order{c11.Rlx, c11.Rlx, c11.Rel, c11.Acq, c11.Rlx})
	step1, err := e.Run(tst, Stack{Mapping: compile.RISCVBaseIntuitive, Model: uspec.NMM(uspec.Curr)})
	if err != nil {
		t.Fatal(err)
	}
	if step1.Verdict != Bug {
		t.Fatalf("step 1: verdict %v, want Bug", step1.Verdict)
	}
	step2, err := e.Run(tst, Stack{Mapping: compile.RISCVBaseRefined, Model: uspec.NMM(uspec.Ours)})
	if err != nil {
		t.Fatal(err)
	}
	if step2.Verdict == Bug {
		t.Fatalf("step 2: fix did not eliminate the bug")
	}
}
