package core

import (
	"fmt"
	"sort"
	"strings"

	"tricheck/internal/compile"
	"tricheck/internal/litmus"
	"tricheck/internal/uspec"
)

// This file automates the REFINEMENT step of the paper's Figure 6: when a
// bug (or over-strictness) is found, the designer modifies the HLL model,
// the compiler mapping, the ISA MCM or the implementation and reruns.
// SuggestFixes tries the repository's refinement lattice — the paper's
// proposed mapping and ISA/model changes, individually and combined — and
// reports which ones repair the finding.

// Fix describes one candidate refinement and its effect.
type Fix struct {
	// Description says what was changed, in the paper's terms.
	Description string
	// Stack is the refined configuration.
	Stack Stack
	// Verdict is the test's verdict after the refinement.
	Verdict Verdict
	// Repairs reports whether the refinement eliminated the original
	// problem (the bug, or for strict findings the strictness) without
	// introducing a bug.
	Repairs bool
}

// refinedMapping returns the paper's refined counterpart of a mapping, or
// nil if none is shipped.
func refinedMapping(m *compile.Mapping) *compile.Mapping {
	switch m {
	case compile.RISCVBaseIntuitive:
		return compile.RISCVBaseRefined
	case compile.RISCVAtomicsIntuitive:
		return compile.RISCVAtomicsRefined
	case compile.PowerTrailingSync:
		return compile.PowerLeadingSync
	case compile.ARMv7Standard:
		return compile.ARMv7HazardFix
	}
	return nil
}

// refinedModel returns the riscv-ours counterpart of a Table 7 model, or a
// hardware-repaired counterpart for the Power/ARM models.
func refinedModel(m *uspec.Model) *uspec.Model {
	if m.Variant == uspec.Curr {
		if r := uspec.ModelByName(m.Name, uspec.Ours); r != nil {
			return r
		}
	}
	if m.Name == "PowerA9" {
		return uspec.PowerA9Fixed()
	}
	return nil
}

// SuggestFixes runs the refinement lattice for a finding. It returns the
// candidate fixes in the order tried: mapping-only, model-only, combined.
func (e *Engine) SuggestFixes(t *litmus.Test, s Stack) ([]Fix, error) {
	baseline, err := e.Run(t, s)
	if err != nil {
		return nil, err
	}
	if baseline.Verdict == Equivalent {
		return nil, nil
	}
	repairs := func(r *TestResult) bool {
		if baseline.Verdict == Bug {
			return r.Verdict != Bug
		}
		return r.Verdict == Equivalent
	}
	var fixes []Fix
	try := func(desc string, stack Stack) error {
		r, err := e.Run(t, stack)
		if err != nil {
			return err
		}
		fixes = append(fixes, Fix{
			Description: desc,
			Stack:       stack,
			Verdict:     r.Verdict,
			Repairs:     repairs(r),
		})
		return nil
	}
	rm := refinedMapping(s.Mapping)
	rmod := refinedModel(s.Model)
	if rm != nil {
		if err := try(fmt.Sprintf("refine the compiler mapping (%s → %s)", s.Mapping.Name, rm.Name),
			Stack{Mapping: rm, Model: s.Model}); err != nil {
			return nil, err
		}
	}
	if rmod != nil {
		if err := try(fmt.Sprintf("refine the ISA MCM / hardware (%s → %s)", s.Model.FullName(), rmod.FullName()),
			Stack{Mapping: s.Mapping, Model: rmod}); err != nil {
			return nil, err
		}
	}
	if rm != nil && rmod != nil {
		if err := try("refine both the mapping and the ISA MCM / hardware",
			Stack{Mapping: rm, Model: rmod}); err != nil {
			return nil, err
		}
	}
	return fixes, nil
}

// MappingAudit is the result of auditing one compiler mapping against one
// microarchitecture over a test suite (the Section 7 workflow).
type MappingAudit struct {
	Stack Stack
	// Counterexamples are the tests whose verdict is Bug.
	Counterexamples []*TestResult
	// ByFamily tallies counterexamples per litmus family.
	ByFamily map[string]int
	// Total is the number of tests audited.
	Total int
}

// AuditMapping sweeps the suite and collects every Bug verdict — the
// counterexample list a compiler-mapping proof would have to explain away.
func (e *Engine) AuditMapping(tests []*litmus.Test, s Stack, workers int) (*MappingAudit, error) {
	res, err := e.RunSuite(tests, s, workers)
	if err != nil {
		return nil, err
	}
	audit := &MappingAudit{Stack: s, ByFamily: map[string]int{}, Total: len(tests)}
	for _, r := range res.Results {
		if r.Verdict == Bug {
			audit.Counterexamples = append(audit.Counterexamples, r)
			audit.ByFamily[r.Test.Shape.Name]++
		}
	}
	return audit, nil
}

// Clean reports whether the audit found no counterexamples.
func (a *MappingAudit) Clean() bool { return len(a.Counterexamples) == 0 }

// String summarises the audit.
func (a *MappingAudit) String() string {
	if a.Clean() {
		return fmt.Sprintf("%s: clean on %d tests", a.Stack.Name(), a.Total)
	}
	var fams []string
	for f, n := range a.ByFamily {
		fams = append(fams, fmt.Sprintf("%s:%d", f, n))
	}
	sort.Strings(fams)
	return fmt.Sprintf("%s: %d counterexamples on %d tests (%s)",
		a.Stack.Name(), len(a.Counterexamples), a.Total, strings.Join(fams, ", "))
}

// FormatFixes renders a fix report.
func FormatFixes(t *litmus.Test, baseline Verdict, fixes []Fix) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: baseline verdict %v\n", t.Name, baseline)
	if len(fixes) == 0 {
		b.WriteString("  no applicable refinements shipped\n")
		return b.String()
	}
	for _, f := range fixes {
		status := "does NOT repair"
		if f.Repairs {
			status = "repairs"
		}
		fmt.Fprintf(&b, "  %-11s → %-13v %s\n", status, f.Verdict, f.Description)
	}
	return b.String()
}
