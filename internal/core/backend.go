// Backend selection: the engine can produce verdicts from the axiomatic
// µhb models (uhb), from the operational simulators (opsim), or from both
// with a per-(test, stack) cross-check that reports any disagreement
// between the two semantics as a Divergence verdict.
package core

import (
	"errors"
	"fmt"
	"time"

	"tricheck/internal/compile"
	"tricheck/internal/litmus"
	"tricheck/internal/mem"
	"tricheck/internal/obs"
	"tricheck/internal/opsim"
)

// Backend selects which verdict engine(s) a run uses.
type Backend uint8

const (
	// BackendUHB is the default axiomatic µhb engine.
	BackendUHB Backend = iota
	// BackendOpsim replaces the µhb evaluation with operational
	// enumeration. Only opsim-supported configs are allowed (see
	// ValidateBackendStacks).
	BackendOpsim
	// BackendBoth runs uhb as the verdict source and opsim as a second
	// opinion, diffing the observable sets; a non-empty symmetric
	// difference yields the Divergence verdict.
	BackendBoth
)

// String returns the wire spelling ("uhb", "opsim", "both").
func (b Backend) String() string {
	switch b {
	case BackendOpsim:
		return "opsim"
	case BackendBoth:
		return "both"
	default:
		return "uhb"
	}
}

// ParseBackend parses the wire spelling; the empty string selects the
// default uhb backend.
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "", "uhb":
		return BackendUHB, nil
	case "opsim":
		return BackendOpsim, nil
	case "both":
		return BackendBoth, nil
	default:
		return BackendUHB, fmt.Errorf("unknown backend %q (want uhb, opsim or both)", s)
	}
}

// keySuffix tags memo keys so cached results from one backend never
// masquerade as another's. The uhb suffix is empty to keep existing
// snapshots and keys valid.
func (b Backend) keySuffix() string {
	switch b {
	case BackendOpsim:
		return "+opsim"
	case BackendBoth:
		return "+both"
	default:
		return ""
	}
}

// JobKeyBackend is JobKey tagged with the backend (identical to JobKey
// for BackendUHB).
func JobKeyBackend(t *litmus.Test, s Stack, b Backend) string {
	return JobKey(t, s) + b.keySuffix()
}

// ValidateBackendStacks checks that every stack's model is within the
// chosen backend's capabilities. Only BackendOpsim hard-fails on an
// unsupported config — BackendBoth degrades per-job to a skip note, and
// BackendUHB supports everything.
func ValidateBackendStacks(b Backend, stacks []Stack) error {
	if b != BackendOpsim {
		return nil
	}
	for _, s := range stacks {
		if err := opsim.Supports(s.Model.Config); err != nil {
			return err
		}
	}
	return nil
}

// OpsimMemo is the operational side-channel of a verdict: the enumerated
// outcome set and, under BackendBoth, the cross-check diff against the
// µhb observable set plus a trace witness for one divergent outcome.
type OpsimMemo struct {
	// Observable is the operationally reachable outcome set (sorted).
	Observable []mem.Outcome `json:"observable,omitempty"`
	// UhbOnly lists outcomes the µhb model observes that the simulator
	// never reaches (sorted; BackendBoth only).
	UhbOnly []mem.Outcome `json:"uhb_only,omitempty"`
	// OpsimOnly lists outcomes the simulator reaches that the µhb model
	// forbids (sorted; BackendBoth only).
	OpsimOnly []mem.Outcome `json:"opsim_only,omitempty"`
	// WitnessOutcome is the divergent outcome the witness below reaches.
	WitnessOutcome mem.Outcome `json:"witness_outcome,omitempty"`
	// Witness is an operational interleaving reaching WitnessOutcome —
	// concrete evidence for one side of the divergence.
	Witness []string `json:"witness,omitempty"`
	// States counts distinct machine configurations the simulator
	// explored (diagnostics).
	States int `json:"states,omitempty"`
	// Skipped carries the capability reason when BackendBoth could not
	// run the operational side for this stack's config.
	Skipped string `json:"skipped,omitempty"`
}

// Divergent reports whether the cross-check found a disagreement.
func (o *OpsimMemo) Divergent() bool {
	return o != nil && (len(o.UhbOnly) > 0 || len(o.OpsimOnly) > 0)
}

// evaluateBackend dispatches the farm job thunk on the backend axis.
func (e *Engine) evaluateBackend(t *litmus.Test, s Stack, b Backend, stackName, modelName string, trace obs.TraceID, parent obs.SpanID) (*Memo, error) {
	switch b {
	case BackendOpsim:
		return e.evaluateOpsim(t, s, stackName, modelName)
	case BackendBoth:
		return e.evaluateBoth(t, s, stackName, modelName, trace, parent)
	default:
		return e.evaluate(t, s, stackName, modelName, trace, parent)
	}
}

// evaluateOpsim runs the toolflow with operational enumeration as step 3:
// HLL evaluation and compilation as usual, then the config-matched
// simulator explores every interleaving and its reachable set stands in
// for the µhb observable set in the step-4 comparison.
func (e *Engine) evaluateOpsim(t *litmus.Test, s Stack, stackName, modelName string) (*Memo, error) {
	jobStart := time.Now()
	hll, err := e.HLL(t) // step 1
	dHLL := time.Since(jobStart)
	if err != nil {
		return nil, err
	}
	t1 := time.Now()
	prog, err := compile.Compile(s.Mapping, t.Prog) // step 2
	dCompile := time.Since(t1)
	if err != nil {
		return nil, fmt.Errorf("core: compiling %s with %s: %w", t.Name, s.Mapping.Name, err)
	}
	t2 := time.Now()
	sim, err := opsim.ForConfig(s.Model.Config, prog)
	if err != nil {
		compile.ReleaseProgram(prog)
		return nil, err
	}
	out := sim.Outcomes() // step 3, operationally
	dEnumerate := time.Since(t2)
	compile.ReleaseProgram(prog)
	e.execs.Add(1)
	phaseHLL.Observe(dHLL)
	phaseCompile.Observe(dCompile)
	phaseOpsim.Observe(dEnumerate)
	m := compareSets(hll, out, out)
	m.Opsim = &OpsimMemo{Observable: sortedOutcomeSet(out), States: sim.StateCount()}
	verdictCounters[m.Verdict].Inc()
	// No µhb axioms fire on the operational path; only the verdict column
	// of the per-model coverage matrix moves.
	e.ledger.Model(modelName).Record(int(m.Verdict), 0, 0, 0)
	e.recordCost(JobCost{
		Test: t.Name, Family: t.Shape.Name, Stack: stackName,
		Count: 1, Total: time.Since(jobStart),
		HLL: dHLL, Compile: dCompile, Enumerate: dEnumerate,
		Candidates: sim.StateCount(),
	})
	return m, nil
}

// evaluateBoth runs the full axiomatic toolflow for the verdict, then the
// operational backend as a second opinion: the two observable sets are
// diffed, and any disagreement upgrades the verdict to Divergence with
// both sets, the symmetric difference, and — when the simulator reaches
// an outcome the µhb model forbids — an interleaving witness attached.
// A config outside the simulators' capability degrades to a skip note on
// the memo rather than an error: `both` means "cross-check where you
// can", and the caller can see exactly which stacks were second-opinioned.
func (e *Engine) evaluateBoth(t *litmus.Test, s Stack, stackName, modelName string, trace obs.TraceID, parent obs.SpanID) (*Memo, error) {
	m, err := e.evaluate(t, s, stackName, modelName, trace, parent)
	if err != nil {
		return nil, err
	}
	var capErr *opsim.CapabilityError
	if err := opsim.Supports(s.Model.Config); errors.As(err, &capErr) {
		m.Opsim = &OpsimMemo{Skipped: capErr.Reason}
		return m, nil
	} else if err != nil {
		return nil, err
	}
	t0 := time.Now()
	prog, err := compile.Compile(s.Mapping, t.Prog)
	if err != nil {
		return nil, fmt.Errorf("core: compiling %s with %s: %w", t.Name, s.Mapping.Name, err)
	}
	sim, err := opsim.ForConfig(s.Model.Config, prog)
	if err != nil {
		compile.ReleaseProgram(prog)
		return nil, err
	}
	out := sim.Outcomes()
	op := &OpsimMemo{Observable: sortedOutcomeSet(out), States: sim.StateCount()}
	for o := range m.Observable {
		if !out[o] {
			op.UhbOnly = append(op.UhbOnly, o)
		}
	}
	for o := range out {
		if !m.Observable[o] {
			op.OpsimOnly = append(op.OpsimOnly, o)
		}
	}
	sortOutcomes(op.UhbOnly)
	sortOutcomes(op.OpsimOnly)
	if op.Divergent() {
		// Witness one operational-only outcome when there is one: a
		// concrete interleaving the axiomatic side claims impossible.
		// (A uhb-only outcome has no operational witness by definition.)
		if len(op.OpsimOnly) > 0 {
			op.WitnessOutcome = op.OpsimOnly[0]
			op.Witness = sim.Trace(op.WitnessOutcome)
		}
		m.Verdict = Divergence
		e.divergences.Add(1)
		verdictCounters[Divergence].Inc()
	}
	compile.ReleaseProgram(prog)
	phaseOpsim.Observe(time.Since(t0))
	m.Opsim = op
	return m, nil
}

// sortedOutcomeSet flattens an outcome set into a sorted slice.
func sortedOutcomeSet(set map[mem.Outcome]bool) []mem.Outcome {
	out := make([]mem.Outcome, 0, len(set))
	for o := range set {
		out = append(out, o)
	}
	sortOutcomes(out)
	return out
}
