package core

import (
	"context"
	"errors"
	"testing"

	"tricheck/internal/c11"
	"tricheck/internal/compile"
	"tricheck/internal/litmus"
	"tricheck/internal/opsim"
	"tricheck/internal/uspec"
)

func TestParseBackend(t *testing.T) {
	for in, want := range map[string]Backend{
		"": BackendUHB, "uhb": BackendUHB, "opsim": BackendOpsim, "both": BackendBoth,
	} {
		got, err := ParseBackend(in)
		if err != nil || got != want {
			t.Errorf("ParseBackend(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseBackend("axiomatic"); err == nil {
		t.Error("ParseBackend accepted an unknown backend")
	}
}

// TestJobKeyBackendDisjoint: the three backends never share memo keys,
// and the uhb key is the legacy untagged JobKey so existing snapshots
// stay warm.
func TestJobKeyBackendDisjoint(t *testing.T) {
	tst := litmus.SB.Instantiate([]c11.Order{c11.Rlx, c11.Rlx, c11.Rlx, c11.Rlx})
	s := Stack{Mapping: compile.RISCVBaseIntuitive, Model: uspec.SCProof()}
	keys := map[string]Backend{}
	for _, b := range []Backend{BackendUHB, BackendOpsim, BackendBoth} {
		k := JobKeyBackend(tst, s, b)
		if prev, dup := keys[k]; dup {
			t.Fatalf("backends %v and %v share memo key %q", prev, b, k)
		}
		keys[k] = b
	}
	if JobKeyBackend(tst, s, BackendUHB) != JobKey(tst, s) {
		t.Error("uhb backend key differs from the legacy JobKey")
	}
}

// TestBackendMemoIsolation: a warm uhb cache must not satisfy opsim or
// cross-check jobs for the same (test, stack), and each backend's own
// rerun must hit its cache.
func TestBackendMemoIsolation(t *testing.T) {
	eng := NewEngine()
	eng.EnableMemo(0)
	tst := litmus.MP.Instantiate([]c11.Order{c11.Rlx, c11.Rel, c11.Acq, c11.Rlx})
	s := Stack{Mapping: compile.RISCVBaseIntuitive, Model: uspec.TSO()}
	for i, b := range []Backend{BackendUHB, BackendOpsim, BackendBoth} {
		if _, err := eng.RunBackend(tst, s, b); err != nil {
			t.Fatal(err)
		}
		if got := eng.Executions(); got != uint64(i+1) {
			t.Fatalf("after cold %v run: %d executions, want %d (cache crosstalk)", b, got, i+1)
		}
	}
	for _, b := range []Backend{BackendUHB, BackendOpsim, BackendBoth} {
		if _, err := eng.RunBackend(tst, s, b); err != nil {
			t.Fatal(err)
		}
	}
	if got := eng.Executions(); got != 3 {
		t.Errorf("warm reruns executed: %d executions, want 3", got)
	}
}

// TestBackendBothAgrees: on every opsim-supported riscv-curr profile the
// cross-check over the full SB and MP instantiations finds no
// divergence, and every result carries the operational set.
func TestBackendBothAgrees(t *testing.T) {
	eng := NewEngine()
	var tests []*litmus.Test
	tests = append(tests, litmus.SB.Generate()...)
	tests = append(tests, litmus.MP.Generate()...)
	var stacks []Stack
	for _, m := range []*uspec.Model{uspec.SCProof(), uspec.WR(uspec.Curr), uspec.TSO(), uspec.NWR(uspec.Curr)} {
		stacks = append(stacks, Stack{Mapping: compile.RISCVBaseIntuitive, Model: m})
	}
	rs, err := eng.SweepStreamBackend(context.Background(), tests, stacks, 0, BackendBoth, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, sr := range rs {
		if sr.Tally.Divergent != 0 {
			t.Errorf("%s: %d divergences between uhb and opsim", sr.Stack.Name(), sr.Tally.Divergent)
		}
		for _, r := range sr.Results {
			if r.Opsim == nil {
				t.Fatalf("%s on %s: no operational side on a both-backend result", r.Test.Name, sr.Stack.Name())
			}
			if r.Opsim.Skipped != "" {
				t.Errorf("%s skipped on a supported config: %s", sr.Stack.Name(), r.Opsim.Skipped)
			}
		}
	}
	if eng.Divergences() != 0 {
		t.Errorf("engine counted %d divergences", eng.Divergences())
	}
}

// TestBackendBothSkipsUnsupported: a config beyond the simulators'
// capability degrades to a per-result skip note under both, keeping the
// uhb verdict — and hard-fails under backend=opsim.
func TestBackendBothSkipsUnsupported(t *testing.T) {
	eng := NewEngine()
	tst := litmus.SB.Instantiate([]c11.Order{c11.SC, c11.SC, c11.SC, c11.SC})
	s := Stack{Mapping: compile.RISCVBaseIntuitive, Model: uspec.NMM(uspec.Curr)}
	r, err := eng.RunBackend(tst, s, BackendBoth)
	if err != nil {
		t.Fatal(err)
	}
	if r.Verdict == Divergence {
		t.Error("skip was reported as a divergence")
	}
	if r.Opsim == nil || r.Opsim.Skipped == "" {
		t.Fatal("no skip note on an unsupported config under backend=both")
	}
	_, err = eng.SweepStreamBackend(context.Background(), []*litmus.Test{tst}, []Stack{s}, 0, BackendOpsim, nil)
	var capErr *opsim.CapabilityError
	if !errors.As(err, &capErr) {
		t.Fatalf("backend=opsim on nMM: err = %v, want a *opsim.CapabilityError", err)
	}
}

// TestBackendMiswiredDivergence is the divergence path itself: with the
// driver deliberately miswired (SC profile → TSO machine), the
// cross-check must report a Divergence verdict carrying the symmetric
// difference and an operational trace witness — not crash, and not
// return a plain uhb verdict.
func TestBackendMiswiredDivergence(t *testing.T) {
	opsim.SetMiswired(true)
	defer opsim.SetMiswired(false)
	eng := NewEngine()
	// Relaxed SB: the SC model forbids the store-buffering outcome
	// axiomatically, and with no fences compiled in, the miswired-in TSO
	// machine reaches it operationally.
	tst := litmus.SB.Instantiate([]c11.Order{c11.Rlx, c11.Rlx, c11.Rlx, c11.Rlx})
	s := Stack{Mapping: compile.RISCVBaseIntuitive, Model: uspec.SCProof()}
	r, err := eng.RunBackend(tst, s, BackendBoth)
	if err != nil {
		t.Fatal(err)
	}
	if r.Verdict != Divergence {
		t.Fatalf("verdict = %v, want Divergence", r.Verdict)
	}
	op := r.Opsim
	if op == nil || len(op.OpsimOnly) == 0 {
		t.Fatal("divergence record carries no opsim-only outcomes")
	}
	if op.WitnessOutcome == "" || len(op.Witness) == 0 {
		t.Fatal("divergence record carries no trace witness")
	}
	if op.WitnessOutcome != tst.Specified {
		t.Errorf("witness outcome %q, want the SB outcome %q", op.WitnessOutcome, tst.Specified)
	}
	if eng.Divergences() != 1 {
		t.Errorf("engine counted %d divergences, want 1", eng.Divergences())
	}
	var tally Tally
	tally.Add(r)
	if tally.Divergent != 1 || tally.Equivalent != 0 {
		t.Errorf("tally miscounts divergence: %+v", tally)
	}
}
