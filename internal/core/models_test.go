package core

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tricheck/internal/compile"
	"tricheck/internal/litmus"
	"tricheck/internal/uspec"
)

// These tests cover the custom-model plumbing: memo keys built from
// config fingerprints (not display names), the registry-backed stack
// resolvers and their error paths, and -model-file loading.

// customModel builds a validated custom model for tests.
func customModel(t *testing.T, c uspec.Config) *uspec.Model {
	t.Helper()
	m, err := c.Model()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestMemoKeysDistinguishSameNamedConfigs is the memo-key fragility
// regression: two different configs that share the display name "WR"
// must never share a memo entry.
func TestMemoKeysDistinguishSameNamedConfigs(t *testing.T) {
	builtin := uspec.WR(uspec.Curr)
	impostor := customModel(t, uspec.Config{
		Name:        "WR", // same display name, very different machine
		Description: "an nMM in WR's clothing",
		RelaxWR:     true, Forwarding: true, RelaxWW: true, RelaxRR: true,
		NMCA: true, RespectDeps: true, Variant: uspec.Curr,
	})
	mapping := compile.RISCVBaseIntuitive
	sA := Stack{Mapping: mapping, Model: builtin}
	sB := Stack{Mapping: mapping, Model: impostor}
	if sA.Name() != sB.Name() {
		t.Fatalf("test premise broken: stack names differ (%s vs %s)", sA.Name(), sB.Name())
	}
	tst := litmus.MP.Generate()[0]
	if JobKey(tst, sA) == JobKey(tst, sB) {
		t.Fatal("same-named models with different configs share a memo key")
	}

	eng := NewEngine()
	eng.EnableMemo(0)
	tests := litmus.WRC.Generate()
	rs, err := eng.Sweep(tests, []Stack{sA, sB}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Both stacks executed: nothing was satisfied from the other's memo.
	if got, want := eng.Executions(), uint64(2*len(tests)); got != want {
		t.Fatalf("executed %d jobs, want %d (no cross-model memo sharing)", got, want)
	}
	// And the verdicts genuinely differ (WR is bug-free on wrc; the
	// impostor is an nMM, which is not).
	if rs[0].Tally.Bugs != 0 {
		t.Fatalf("builtin WR shows %d bugs on wrc", rs[0].Tally.Bugs)
	}
	if rs[1].Tally.Bugs == 0 {
		t.Fatal("impostor nMM config shows no bugs on wrc")
	}
}

// TestRenamedIdenticalConfigGetsWarmHit: renaming a model (display-only
// change) must keep hitting the same memo entries.
func TestRenamedIdenticalConfigGetsWarmHit(t *testing.T) {
	eng := NewEngine()
	eng.EnableMemo(0)
	tests := litmus.MP.Generate()
	base := Stack{Mapping: compile.RISCVBaseIntuitive, Model: uspec.NMM(uspec.Curr)}
	cold, err := eng.RunSuite(tests, base, 0)
	if err != nil {
		t.Fatal(err)
	}
	coldExecs := eng.Executions()

	cfg := uspec.NMM(uspec.Curr).Config
	cfg.Name = "totally-renamed"
	cfg.Description = "same machine, new sticker"
	renamed := Stack{Mapping: compile.RISCVBaseIntuitive, Model: customModel(t, cfg)}
	if JobKey(tests[0], base) != JobKey(tests[0], renamed) {
		t.Fatal("renamed identical config has a different memo key")
	}
	warm, err := eng.RunSuite(tests, renamed, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := eng.Executions() - coldExecs; got != 0 {
		t.Fatalf("renamed identical config executed %d jobs, want 0 (warm hits)", got)
	}
	if cold.Tally != warm.Tally {
		t.Fatalf("renamed config tally %+v differs from original %+v", warm.Tally, cold.Tally)
	}
}

// TestSelectStacksModels checks mapping pairing and ordering for custom
// model lists.
func TestSelectStacksModels(t *testing.T) {
	models := []*uspec.Model{uspec.WR(uspec.Curr), uspec.NMM(uspec.Ours)}
	stacks, err := SelectStacksModels("both", models)
	if err != nil {
		t.Fatal(err)
	}
	wantNames := []string{
		"riscv-base-intuitive+WR/riscv-curr",
		"riscv-base-refined+nMM/riscv-ours",
		"riscv-base+a-intuitive+WR/riscv-curr",
		"riscv-base+a-refined+nMM/riscv-ours",
	}
	if len(stacks) != len(wantNames) {
		t.Fatalf("got %d stacks, want %d", len(stacks), len(wantNames))
	}
	for i, s := range stacks {
		if s.Name() != wantNames[i] {
			t.Errorf("stack %d = %s, want %s", i, s.Name(), wantNames[i])
		}
	}
	one, err := SelectStacksModels("base+a", models[:1])
	if err != nil || len(one) != 1 || one[0].Mapping != compile.RISCVAtomicsIntuitive {
		t.Fatalf("base+a single model: %v stacks, err %v", len(one), err)
	}
}

// TestSelectStacksErrorPaths: unknown ISA flavour, unknown variant,
// unknown (nil) model and illegal model each fail loudly.
func TestSelectStacksErrorPaths(t *testing.T) {
	if _, err := SelectStacks("riscv128", "curr"); err == nil || !strings.Contains(err.Error(), "unknown ISA flavour") {
		t.Errorf("unknown ISA flavour: err = %v", err)
	}
	if _, err := SelectStacks("base", "theirs"); err == nil || !strings.Contains(err.Error(), "unknown MCM version") {
		t.Errorf("unknown variant: err = %v", err)
	}
	// Both bad: the ISA-flavour error wins (historical check order).
	if _, err := SelectStacks("riscv128", "theirs"); err == nil || !strings.Contains(err.Error(), "unknown ISA flavour") {
		t.Errorf("both bad: err = %v", err)
	}
	if _, err := SelectStacksModels("bogus", []*uspec.Model{uspec.TSO()}); err == nil || !strings.Contains(err.Error(), "unknown ISA flavour") {
		t.Errorf("models with bad flavour: err = %v", err)
	}
	if _, err := SelectStacksModels("base", nil); err == nil || !strings.Contains(err.Error(), "no models") {
		t.Errorf("empty models: err = %v", err)
	}
	if _, err := SelectStacksModels("base", []*uspec.Model{nil}); err == nil || !strings.Contains(err.Error(), "unknown model") {
		t.Errorf("nil model: err = %v", err)
	}
	illegal := uspec.New(uspec.Config{Name: "broken", Forwarding: true, OrderSameAddrRR: true, RespectDeps: true})
	if _, err := SelectStacksModels("base", []*uspec.Model{illegal}); !errors.Is(err, uspec.ErrForwardingWithoutRelaxWR) {
		t.Errorf("illegal model: err = %v, want ErrForwardingWithoutRelaxWR", err)
	}
	if _, err := ResolveModel("Itanium", "curr"); err == nil || !strings.Contains(err.Error(), "unknown model") {
		t.Errorf("unknown model name: err = %v", err)
	}
	if _, err := ResolveModel("WR", "both"); err == nil || !strings.Contains(err.Error(), "unknown MCM version") {
		t.Errorf("multi-variant ResolveModel: err = %v", err)
	}
	if m, err := ResolveModel("PowerA9", "curr"); err != nil || m != uspec.PowerA9() {
		t.Errorf("ResolveModel(PowerA9) = %v, %v", m, err)
	}
	// Two models sharing a (name, variant) would be indistinguishable in
	// every report even though their memo keys differ: rejected.
	dup := customModel(t, uspec.Config{Name: "WR", OrderSameAddrRR: true, RespectDeps: true, Variant: uspec.Curr})
	if _, err := SelectStacksModels("base", []*uspec.Model{uspec.WR(uspec.Curr), dup}); err == nil || !strings.Contains(err.Error(), "share the display name") {
		t.Errorf("duplicate display name: err = %v", err)
	}
}

// TestLoadModels: -model-file loading surfaces parse and validation
// errors with the file path, and round-trips a custom spec into a
// sweepable model.
func TestLoadModels(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.uspec")
	custom := uspec.Config{
		Name: "my-machine", RelaxWR: true, Forwarding: true,
		OrderSameAddrRR: true, RespectDeps: true, Variant: uspec.Ours,
	}
	if err := os.WriteFile(good, []byte(custom.EmitSpec()), 0o644); err != nil {
		t.Fatal(err)
	}
	models, err := LoadModels([]string{good})
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 1 || models[0].Name != "my-machine" || models[0].Variant != uspec.Ours {
		t.Fatalf("loaded %+v", models)
	}
	stacks, err := SelectStacksModels("base", models)
	if err != nil || len(stacks) != 1 || stacks[0].Mapping != compile.RISCVBaseRefined {
		t.Fatalf("custom ours model stacks: %v, err %v", stacks, err)
	}

	bad := filepath.Join(dir, "bad.uspec")
	if err := os.WriteFile(bad, []byte("uspec bad\nforwarding\norder-same-addr-rr\nrespect-deps\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModels([]string{bad}); !errors.Is(err, uspec.ErrForwardingWithoutRelaxWR) {
		t.Errorf("illegal spec file: err = %v", err)
	}
	if _, err := LoadModels([]string{filepath.Join(dir, "absent.uspec")}); err == nil {
		t.Error("missing spec file accepted")
	}
}

// TestSelectStacksReturnsRegistryInstances: stack resolution must not
// reconstruct models — every resolved model is the shared registry
// instance (built once, immutable).
func TestSelectStacksReturnsRegistryInstances(t *testing.T) {
	a, err := SelectStacks("both", "both")
	if err != nil {
		t.Fatal(err)
	}
	b, err := SelectStacks("both", "both")
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Model != b[i].Model {
			t.Fatalf("stack %d model reconstructed between calls", i)
		}
		if uspec.ModelByName(a[i].Model.Name, a[i].Model.Variant) != a[i].Model {
			t.Fatalf("stack %d model is not the registry instance", i)
		}
	}
}

// BenchmarkSelectStacks micro-benchmarks the stack-resolution path the
// frontends hit per request — registry lookups, no reconstruction.
func BenchmarkSelectStacks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := SelectStacks("both", "both"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStackFingerprint measures the memo-key stack hash (computed
// once per stack per sweep).
func BenchmarkStackFingerprint(b *testing.B) {
	s := Stack{Mapping: compile.RISCVAtomicsIntuitive, Model: uspec.NMM(uspec.Curr)}
	for i := 0; i < b.N; i++ {
		StackFingerprint(s)
	}
}
