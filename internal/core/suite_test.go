package core

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"tricheck/internal/litmus"
	"tricheck/internal/uspec"
)

// renderSuites serializes sweep results completely enough that two
// byte-identical renderings imply identical verdicts, outcome sets and
// tallies.
func renderSuites(results []*SuiteResult) string {
	var b strings.Builder
	for _, sr := range results {
		fmt.Fprintf(&b, "== %s ==\n", sr.Stack.Name())
		for _, r := range sr.Results {
			fmt.Fprintf(&b, "%s %s racy=%t bugs=%v strict=%v spec=%t/%t/%t\n",
				r.Test.Name, r.Verdict, r.Racy, r.BugOutcomes, r.StrictOutcomes,
				r.SpecifiedAllowed, r.SpecifiedObservable, r.SpecifiedBug)
			var allowed, observable []string
			for o := range r.Allowed {
				allowed = append(allowed, string(o))
			}
			for o := range r.Observable {
				observable = append(observable, string(o))
			}
			sort.Strings(allowed)
			sort.Strings(observable)
			fmt.Fprintf(&b, "  allowed=%v observable=%v\n", allowed, observable)
		}
		fmt.Fprintf(&b, "tally=%+v\n", sr.Tally)
		for _, f := range sr.FamilyNames() {
			fmt.Fprintf(&b, "  %s=%+v\n", f, *sr.ByFamily[f])
		}
	}
	return b.String()
}

func testStacks() []Stack {
	return append(RISCVStacks(true, uspec.Curr)[:2], RISCVStacks(true, uspec.Ours)[:2]...)
}

func testSuite() []*litmus.Test {
	return append(litmus.MP.Generate(), litmus.SB.Generate()...)
}

// TestWarmSweepIsByteIdenticalWithZeroExecutions is the satellite farm
// test: an identical second sweep is served entirely from the memo
// cache — zero verifier executions, byte-identical SuiteResults.
func TestWarmSweepIsByteIdenticalWithZeroExecutions(t *testing.T) {
	eng := NewEngine()
	eng.EnableMemo(0)
	tests := testSuite()
	stacks := testStacks()

	cold, err := eng.Sweep(tests, stacks, 0)
	if err != nil {
		t.Fatal(err)
	}
	coldExecs := eng.Executions()
	if want := uint64(len(tests) * len(stacks)); coldExecs != want {
		t.Fatalf("cold sweep executed %d jobs, want %d", coldExecs, want)
	}

	warm, err := eng.Sweep(tests, stacks, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := eng.Executions() - coldExecs; got != 0 {
		t.Fatalf("warm sweep executed %d jobs, want 0 (all cache hits)", got)
	}
	stats := eng.LastFarmStats()
	if stats.CacheHits != len(tests)*len(stacks) || stats.Executed != 0 {
		t.Fatalf("warm farm stats %+v", stats)
	}
	if renderSuites(cold) != renderSuites(warm) {
		t.Fatal("warm sweep results are not byte-identical to cold sweep")
	}
}

// TestSweepDeterministicAcrossWorkerCounts checks that worker count and
// steal schedule never leak into results.
func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	tests := testSuite()
	stacks := testStacks()
	var want string
	for _, workers := range []int{1, 2, 5, 16} {
		eng := NewEngine()
		rs, err := eng.Sweep(tests, stacks, workers)
		if err != nil {
			t.Fatal(err)
		}
		got := renderSuites(rs)
		if want == "" {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("results with %d workers differ from 1 worker", workers)
		}
	}
}

// TestMemoSnapshotWarmsAFreshEngine checks the on-disk cache: a new
// engine loading the snapshot re-verifies nothing and reproduces the
// same results.
func TestMemoSnapshotWarmsAFreshEngine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "memo.json")
	tests := litmus.MP.Generate()
	stacks := testStacks()[:2]

	first := NewEngine()
	first.EnableMemo(0)
	cold, err := first.Sweep(tests, stacks, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := first.SaveMemoSnapshot(path); err != nil {
		t.Fatal(err)
	}

	second := NewEngine()
	if err := second.LoadMemoSnapshot(path); err != nil {
		t.Fatal(err)
	}
	warm, err := second.Sweep(tests, stacks, 0)
	if err != nil {
		t.Fatal(err)
	}
	if second.Executions() != 0 {
		t.Fatalf("snapshot-warmed engine executed %d jobs, want 0", second.Executions())
	}
	if renderSuites(cold) != renderSuites(warm) {
		t.Fatal("snapshot-warmed results differ")
	}
}

// TestSweepDedupAcrossStacks: submitting the same stack twice in one
// sweep verifies each (test, stack) job once.
func TestSweepDedupAcrossStacks(t *testing.T) {
	eng := NewEngine()
	tests := litmus.MP.Generate()
	s := RISCVStacks(true, uspec.Curr)[0]
	rs, err := eng.Sweep(tests, []Stack{s, s}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Executions() != uint64(len(tests)) {
		t.Fatalf("executed %d, want %d (duplicate stack deduplicated)", eng.Executions(), len(tests))
	}
	if renderSuites(rs[:1]) != renderSuites(rs[1:]) {
		t.Fatal("duplicate stacks produced different suite results")
	}
}

// TestSweepStreamDeliversEveryResult checks the streaming channel.
func TestSweepStreamDeliversEveryResult(t *testing.T) {
	eng := NewEngine()
	tests := litmus.MP.Generate()
	stacks := testStacks()[:2]
	events := make(chan Progress, len(tests)*len(stacks))
	if _, err := eng.SweepStream(tests, stacks, 0, events); err != nil {
		t.Fatal(err)
	}
	n := 0
	var last Progress
	for ev := range events {
		n++
		last = ev
		if ev.Total != len(tests)*len(stacks) {
			t.Fatalf("event total = %d", ev.Total)
		}
	}
	if n != len(tests)*len(stacks) {
		t.Fatalf("streamed %d events, want %d", n, len(tests)*len(stacks))
	}
	if last.Done != n {
		t.Fatalf("last event Done = %d, want %d", last.Done, n)
	}
}

// TestStackFingerprintSensitivity: editing one model axiom or one
// mapping recipe changes the fingerprint; renaming does not.
func TestStackFingerprintSensitivity(t *testing.T) {
	s := RISCVStacks(true, uspec.Curr)[0]
	base := StackFingerprint(s)

	renamed := s
	m := *s.Model
	m.Name = "renamed"
	renamed.Model = &m
	if StackFingerprint(renamed) != base {
		t.Error("renaming the model changed the stack fingerprint")
	}

	edited := s
	m2 := *s.Model
	m2.RelaxRR = !m2.RelaxRR
	edited.Model = &m2
	if StackFingerprint(edited) == base {
		t.Error("editing a model axiom did not change the stack fingerprint")
	}

	remapped := s
	mp := *s.Mapping
	mp.StoreSC = append(mp.StoreSC[:len(mp.StoreSC):len(mp.StoreSC)], mp.StoreSC[len(mp.StoreSC)-1])
	remapped.Mapping = &mp
	if StackFingerprint(remapped) == base {
		t.Error("editing a mapping recipe did not change the stack fingerprint")
	}
}

func TestSweepStreamContextCancellationStopsScheduling(t *testing.T) {
	eng := NewEngine()
	eng.EnableMemo(0)
	tests := testSuite()
	stacks := testStacks()
	total := len(tests) * len(stacks)

	ctx, cancel := context.WithCancel(context.Background())
	events := make(chan Progress, 1)
	var got []Progress
	done := make(chan struct{})
	go func() {
		defer close(done)
		for ev := range events {
			got = append(got, ev)
			if len(got) == 3 {
				cancel()
			}
		}
	}()
	// Single worker + unbuffered-ish channel: the farm cannot race far
	// ahead of the consumer, so cancelling after 3 events leaves most of
	// the sweep unscheduled.
	results, err := eng.SweepStreamContext(ctx, tests, stacks, 1, events)
	<-done
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if results != nil {
		t.Fatal("aborted sweep returned results")
	}
	if int(eng.Executions()) >= total {
		t.Fatalf("aborted sweep executed all %d jobs", total)
	}
	if stats := eng.LastFarmStats(); stats.Skipped == 0 {
		t.Fatalf("no jobs skipped after cancellation: %+v", stats)
	}
	for _, ev := range got {
		if ev.Key == "" {
			t.Fatal("streamed event missing job key")
		}
	}

	// The cache was not poisoned: a fresh full sweep on the same engine
	// reuses the aborted run's memos and its results are identical to an
	// untouched engine's.
	warm, err := eng.Sweep(tests, stacks, 0)
	if err != nil {
		t.Fatal(err)
	}
	ref := NewEngine()
	want, err := ref.Sweep(tests, stacks, 0)
	if err != nil {
		t.Fatal(err)
	}
	if renderSuites(warm) != renderSuites(want) {
		t.Fatal("post-abort sweep differs from a fresh engine's")
	}
	if int(eng.Executions()) != len(canonKeys(tests, stacks)) {
		t.Fatalf("executions = %d, want %d unique jobs across abort + completion",
			eng.Executions(), len(canonKeys(tests, stacks)))
	}
}

// canonKeys returns the distinct job keys of a sweep.
func canonKeys(tests []*litmus.Test, stacks []Stack) map[string]bool {
	keys := map[string]bool{}
	for _, s := range stacks {
		for _, tst := range tests {
			keys[JobKey(tst, s)] = true
		}
	}
	return keys
}

func TestSweepStreamEventKeysMatchJobKeys(t *testing.T) {
	eng := NewEngine()
	tests := testSuite()[:6]
	stacks := testStacks()[:2]
	events := make(chan Progress, len(tests)*len(stacks))
	if _, err := eng.SweepStream(tests, stacks, 0, events); err != nil {
		t.Fatal(err)
	}
	want := canonKeys(tests, stacks)
	n := 0
	for ev := range events {
		if !want[ev.Key] {
			t.Fatalf("event key %q is not a JobKey of the sweep", ev.Key)
		}
		n++
	}
	if n != len(tests)*len(stacks) {
		t.Fatalf("streamed %d events, want %d", n, len(tests)*len(stacks))
	}
}

func TestSelectStacks(t *testing.T) {
	both, err := SelectStacks("both", "both")
	if err != nil || len(both) != 28 {
		t.Fatalf("both/both: %d stacks, err %v (want 28)", len(both), err)
	}
	base, err := SelectStacks("base", "curr")
	if err != nil || len(base) != 7 {
		t.Fatalf("base/curr: %d stacks, err %v (want 7)", len(base), err)
	}
	// Fixed frontend-shared order: base-curr, base-ours, base+a-curr,
	// base+a-ours.
	var names []string
	for _, s := range both {
		names = append(names, s.Name())
	}
	wantOrder := append(append(append(
		stackNames(RISCVStacks(true, uspec.Curr)),
		stackNames(RISCVStacks(true, uspec.Ours))...),
		stackNames(RISCVStacks(false, uspec.Curr))...),
		stackNames(RISCVStacks(false, uspec.Ours))...)
	if !reflect.DeepEqual(names, wantOrder) {
		t.Fatalf("stack order:\n got %v\nwant %v", names, wantOrder)
	}
	if _, err := SelectStacks("bogus", "curr"); err == nil {
		t.Fatal("bogus ISA flavour accepted")
	}
	if _, err := SelectStacks("base", "bogus"); err == nil {
		t.Fatal("bogus variant accepted")
	}
}

func stackNames(ss []Stack) []string {
	var out []string
	for _, s := range ss {
		out = append(out, s.Name())
	}
	return out
}
