package core

import (
	"encoding/json"
	"testing"

	"tricheck/internal/litmus"
)

// runFamilySweep sweeps one litmus family over the base/curr Figure 15
// stacks on a fresh memoized engine and returns it.
func runFamilySweep(t *testing.T, family string) *Engine {
	t.Helper()
	tests := litmus.ShapeByName(family).Generate()
	stacks, err := SelectStacks("base", "curr")
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine()
	e.EnableMemo(0)
	if _, err := e.Sweep(tests, stacks, 0); err != nil {
		t.Fatal(err)
	}
	return e
}

// TestSweepPopulatesCoverageLedger: a Bug-producing sweep (wrc on the
// base/curr matrix: 108 specified bugs per buggy model) fills the
// per-(model, axiom) matrix and the verdict-vector store, with the
// structural invariants the ledger promises — per-model job counts match
// verdict tallies, edges never exceed fired, and at least one axiom is
// cycle-witnessed (by the configs that forbid; the buggy weak models
// reach their Bug verdicts with zero cycles, which is the bug).
func TestSweepPopulatesCoverageLedger(t *testing.T) {
	e := runFamilySweep(t, "wrc")
	tests := litmus.ShapeByName("wrc").Generate()
	stacks, _ := SelectStacks("base", "curr")

	snap := e.Coverage().Snapshot()
	if len(snap.Models) != len(stacks) {
		t.Fatalf("%d model blocks, want %d (one per base/curr model)", len(snap.Models), len(stacks))
	}
	if snap.Totals.Vectors != len(tests)*len(stacks) {
		t.Fatalf("%d vectors, want %d", snap.Totals.Vectors, len(tests)*len(stacks))
	}
	if snap.Totals.Jobs != e.Executions() {
		t.Fatalf("ledger jobs %d != engine executions %d", snap.Totals.Jobs, e.Executions())
	}
	cycled, bugs := 0, uint64(0)
	for _, mm := range snap.Models {
		if len(mm.Axioms) == 0 {
			t.Errorf("model %s has an empty axiom matrix", mm.Model)
		}
		var verdictSum uint64
		for _, n := range mm.Verdicts {
			verdictSum += n
		}
		if verdictSum != mm.Jobs {
			t.Errorf("model %s: verdict counts sum to %d, jobs %d", mm.Model, verdictSum, mm.Jobs)
		}
		bugs += mm.Verdicts["Bug"]
		for _, row := range mm.Axioms {
			if row.Edges > row.Fired {
				t.Errorf("model %s axiom %s: edges %d > fired %d", mm.Model, row.Axiom, row.Edges, row.Fired)
			}
			if row.Cycles > 0 {
				cycled++
			}
		}
	}
	if bugs == 0 {
		t.Fatal("wrc on base/curr produced no Bug verdicts; the sweep is supposed to be Bug-producing")
	}
	if cycled == 0 {
		t.Fatal("no (model, axiom) cell was cycle-witnessed in a Bug-producing sweep")
	}
	if snap.Totals.AxiomsCycled == 0 {
		t.Fatal("totals report zero cycle-witnessed axioms")
	}

	// Every vector verdict matches a re-run of the engine (memoized).
	seen := map[string]string{}
	for _, v := range snap.Vectors {
		seen[v.Test+"|"+v.Stack] = v.Verdict
	}
	r, err := e.Run(tests[0], stacks[0])
	if err != nil {
		t.Fatal(err)
	}
	if got := seen[tests[0].Name+"|"+stacks[0].Name()]; got != r.Verdict.String() {
		t.Fatalf("vector verdict %q != engine verdict %q", got, r.Verdict)
	}
}

// TestCoverageWarmRerunAndDeterminism: a warm all-memoized rerun must
// leave the matrix untouched (no executions → no Record calls) while
// still re-recording every discrimination vector; and two fresh engines
// running the identical sweep produce byte-identical snapshots — the
// in-process half of the service's bit-for-bit e2e contract.
func TestCoverageWarmRerunAndDeterminism(t *testing.T) {
	tests := litmus.ShapeByName("mp").Generate()
	stacks, err := SelectStacks("base", "curr")
	if err != nil {
		t.Fatal(err)
	}
	e := runFamilySweep(t, "mp")
	cold, _ := json.Marshal(e.Coverage().Snapshot())
	execs := e.Executions()

	if _, err := e.Sweep(tests, stacks, 0); err != nil {
		t.Fatal(err)
	}
	if e.Executions() != execs {
		t.Fatalf("warm rerun executed %d jobs, want 0", e.Executions()-execs)
	}
	warm, _ := json.Marshal(e.Coverage().Snapshot())
	if string(cold) != string(warm) {
		t.Fatal("warm all-memoized rerun changed the coverage snapshot")
	}

	e2 := runFamilySweep(t, "mp")
	fresh, _ := json.Marshal(e2.Coverage().Snapshot())
	if string(cold) != string(fresh) {
		t.Fatal("fresh engines produced different coverage snapshots for the identical sweep")
	}

	// The discrimination matrix over the warm ledger still has full
	// vectors and a non-trivial minimal suite: the base/curr models are
	// not all verdict-equivalent on mp.
	d := e.Coverage().Discrimination()
	if len(d.Tests) != len(tests) || len(d.Stacks) != len(stacks) {
		t.Fatalf("matrix %dx%d, want %dx%d", len(d.Tests), len(d.Stacks), len(tests), len(stacks))
	}
	for i := range d.Tests {
		for j := range d.Stacks {
			if d.Verdict[i][j] < 0 {
				t.Fatalf("missing vector entry (%s, %s)", d.Tests[i], d.Stacks[j])
			}
		}
	}
	s := d.MinimalSuite()
	if len(s.Picks) == 0 || s.SeparablePairs == 0 {
		t.Fatalf("degenerate minimal suite: %+v", s)
	}
	covered := 0
	for _, p := range s.Picks {
		covered += p.Separated
	}
	if covered != s.SeparablePairs {
		t.Fatalf("suite separates %d of %d pairs", covered, s.SeparablePairs)
	}
}
