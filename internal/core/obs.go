package core

import (
	"sort"
	"time"

	"tricheck/internal/cover"
	"tricheck/internal/farm"
	"tricheck/internal/obs"
	"tricheck/internal/uspec"
)

// Engine-level telemetry: the toolflow phase histograms core owns (µspec
// owns skeleton/enumerate/cycle_check), the shared farm scheduler
// metrics, and the per-(test, stack) cost matrix behind `tricheck top`
// and the fleet coordinator's hedging decisions.

var (
	// farmMetrics is the scheduler telemetry every engine's sweeps record
	// into (process-global, like the metrics themselves).
	farmMetrics = farm.NewMetrics(obs.Default)

	phaseHLL         = obs.Default.Histogram("tricheck_verdict_phase_seconds", "Per-verdict toolflow phase durations.", nil, obs.L("phase", "hll"))
	phaseCompile     = obs.Default.Histogram("tricheck_verdict_phase_seconds", "Per-verdict toolflow phase durations.", nil, obs.L("phase", "compile"))
	phaseOpsim       = obs.Default.Histogram("tricheck_verdict_phase_seconds", "Per-verdict toolflow phase durations.", nil, obs.L("phase", "opsim"))
	phaseDiagnostics = obs.Default.Histogram("tricheck_verdict_phase_seconds", "Per-verdict toolflow phase durations.", nil, obs.L("phase", "diagnostics"))

	verdictCounters = [...]*obs.Counter{
		Equivalent:   obs.Default.Counter("tricheck_verdicts_total", "Executed verdicts by outcome.", obs.L("verdict", "Equivalent")),
		OverlyStrict: obs.Default.Counter("tricheck_verdicts_total", "Executed verdicts by outcome.", obs.L("verdict", "OverlyStrict")),
		Bug:          obs.Default.Counter("tricheck_verdicts_total", "Executed verdicts by outcome.", obs.L("verdict", "Bug")),
		Divergence:   obs.Default.Counter("tricheck_verdicts_total", "Executed verdicts by outcome.", obs.L("verdict", "Divergence")),
	}

	// coverMetrics mirrors every engine's coverage ledger into the shared
	// registry as per-axiom counters (aggregated over models; the full
	// per-model matrix is served as JSON by Engine.Coverage).
	coverMetrics = cover.NewMetrics(obs.Default, uspec.AxiomNames())
)

// verdictNames is the ledger's verdict catalogue, in ordinal order.
func verdictNames() []string {
	return []string{Equivalent.String(), OverlyStrict.String(), Bug.String(), Divergence.String()}
}

// costKey identifies one cost-matrix cell.
type costKey struct {
	test, stack string
}

// JobCost is one cell of the engine's per-(test, stack) cost matrix:
// cumulative wall time of every executed verification of that pair,
// split by toolflow phase. Memo hits and deduplicated jobs cost nothing
// and are not recorded.
type JobCost struct {
	Test   string
	Family string
	Stack  string
	// Count is the number of executed evaluations accumulated here
	// (usually 1 per engine unless the memo cache is disabled).
	Count int
	// Total is the end-to-end job wall time; the phase fields split it.
	Total     time.Duration
	HLL       time.Duration
	Compile   time.Duration
	Skeleton  time.Duration
	Enumerate time.Duration
	// Candidates / Graphs are the evaluation's enumeration counters
	// (executions visited, overlay cycle checks run).
	Candidates int
	Graphs     int
}

// recordCost folds one executed job into the cost matrix.
func (e *Engine) recordCost(c JobCost) {
	k := costKey{c.Test, c.Stack}
	e.costMu.Lock()
	cell := e.costs[k]
	if cell == nil {
		cell = &JobCost{Test: c.Test, Family: c.Family, Stack: c.Stack}
		e.costs[k] = cell
	}
	cell.Count += c.Count
	cell.Total += c.Total
	cell.HLL += c.HLL
	cell.Compile += c.Compile
	cell.Skeleton += c.Skeleton
	cell.Enumerate += c.Enumerate
	cell.Candidates += c.Candidates
	cell.Graphs += c.Graphs
	e.costMu.Unlock()
}

// CostMatrix returns a copy of the per-(test, stack) cost matrix,
// sorted most expensive first (ties broken by stack then test for
// deterministic reports).
func (e *Engine) CostMatrix() []JobCost {
	e.costMu.Lock()
	out := make([]JobCost, 0, len(e.costs))
	for _, c := range e.costs {
		out = append(out, *c)
	}
	e.costMu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		if out[i].Stack != out[j].Stack {
			return out[i].Stack < out[j].Stack
		}
		return out[i].Test < out[j].Test
	})
	return out
}
