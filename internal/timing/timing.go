// Package timing provides a deterministic first-order timing model of a
// multicore with relaxed atomics and dmb-style fences. It substitutes for
// the paper's Figure 2 hardware platform (a Samsung Galaxy S7 / Exynos
// 8890): we cannot run on phone silicon, so we charge simulated cycles per
// operation and reproduce the figure's shape rather than its absolute
// numbers (see DESIGN.md §4).
//
// The model captures the three first-order effects Figure 2 depends on:
//
//   - memory contention: per-access cost scales with the number of active
//     cores (Contention(n) = 1 + Alpha·(n-1));
//   - fence serialization: a dmb flushes the pipeline — a cost proportional
//     to the contention-scaled access cost that is never hidden. This is
//     what keeps the "relaxed + fix" variant permanently slower than the
//     relaxed one (the paper measures 15.3% at 8 threads);
//   - store-buffer drain overlap: a dmb also waits for the store buffer to
//     drain, but that latency overlaps with the memory-contention stalls of
//     neighbouring instructions. With more cores there is more stall to
//     hide under, so the *exposed* drain cost shrinks — which is why the SC
//     variant converges to the fixed variant at 8 threads.
package timing

// Config holds the cost model. DefaultConfig is calibrated so the paper's
// Figure 2 shape holds (see the package test).
type Config struct {
	// LoadCost and StoreCost are base access costs in cycles.
	LoadCost, StoreCost float64
	// Alpha is the per-extra-core contention slope.
	Alpha float64
	// LoadFenceSerial is the pipeline-serialization cost of a dmb issued
	// after a load, in units of the contention factor.
	LoadFenceSerial float64
	// StoreFenceSerial is the (cheaper) serialization cost of a dmb
	// adjacent to a store.
	StoreFenceSerial float64
	// DrainUnit is the store-buffer drain latency per occupied entry.
	DrainUnit float64
	// HideFactor scales how much drain latency hides under contention
	// stalls: exposed = max(0, occ·DrainUnit − (c(n)−1)·HideFactor).
	HideFactor float64
	// BarrierCost is charged at each global barrier.
	BarrierCost float64
	// SBSize caps store-buffer occupancy.
	SBSize int
}

// DefaultConfig returns the calibrated cost model.
func DefaultConfig() Config {
	return Config{
		LoadCost:         10,
		StoreCost:        10,
		Alpha:            0.15,
		LoadFenceSerial:  2.3,
		StoreFenceSerial: 0.5,
		DrainUnit:        12,
		HideFactor:       12,
		BarrierCost:      30,
		SBSize:           8,
	}
}

// Machine is a simulated multicore. It is not safe for concurrent use; the
// sieve drives all cores from one goroutine (the concurrency being
// simulated, not real).
type Machine struct {
	cfg   Config
	n     int
	clock []float64
	sb    []int
}

// NewMachine returns a machine with n active cores.
func NewMachine(n int, cfg Config) *Machine {
	return &Machine{cfg: cfg, n: n, clock: make([]float64, n), sb: make([]int, n)}
}

// Cores returns the active core count.
func (m *Machine) Cores() int { return m.n }

// Contention returns the shared-memory slowdown factor for the current
// core count.
func (m *Machine) Contention() float64 { return 1 + m.cfg.Alpha*float64(m.n-1) }

// Load charges one shared-memory load on core c. Background store-buffer
// drain retires one entry per access.
func (m *Machine) Load(c int) {
	m.clock[c] += m.cfg.LoadCost * m.Contention()
	m.drainOne(c)
}

// Store charges one shared-memory store on core c; it occupies a
// store-buffer entry (stalling for a drain if the buffer is full).
func (m *Machine) Store(c int) {
	m.clock[c] += m.cfg.StoreCost * m.Contention()
	if m.sb[c] >= m.cfg.SBSize {
		m.clock[c] += m.cfg.DrainUnit
		m.sb[c]--
	}
	m.sb[c]++
}

func (m *Machine) drainOne(c int) {
	if m.sb[c] > 0 {
		m.sb[c]--
	}
}

// FenceAfterLoad charges a dmb issued after a load (ARM's load→load hazard
// fix): full pipeline serialization plus any exposed drain latency.
func (m *Machine) FenceAfterLoad(c int) {
	m.fence(c, m.cfg.LoadFenceSerial)
}

// FenceNearStore charges a dmb adjacent to a store (the SC-atomics
// recipe): cheaper serialization, same drain exposure.
func (m *Machine) FenceNearStore(c int) {
	m.fence(c, m.cfg.StoreFenceSerial)
}

func (m *Machine) fence(c int, serial float64) {
	cc := m.Contention()
	m.clock[c] += serial * cc
	drain := float64(m.sb[c]) * m.cfg.DrainUnit
	exposed := drain - (cc-1)*m.cfg.HideFactor
	if exposed > 0 {
		m.clock[c] += exposed
	}
	m.sb[c] = 0
}

// Local charges a non-memory (register/ALU) cycle on core c.
func (m *Machine) Local(c int, cycles float64) { m.clock[c] += cycles }

// Barrier synchronizes all cores: every clock advances to the maximum plus
// the barrier cost.
func (m *Machine) Barrier() {
	max := 0.0
	for _, t := range m.clock {
		if t > max {
			max = t
		}
	}
	max += m.cfg.BarrierCost * m.Contention()
	for i := range m.clock {
		m.clock[i] = max
	}
}

// Elapsed returns the simulated runtime: the maximum core clock.
func (m *Machine) Elapsed() float64 {
	max := 0.0
	for _, t := range m.clock {
		if t > max {
			max = t
		}
	}
	return max
}

// CoreClock returns core c's local clock (for load-imbalance diagnostics).
func (m *Machine) CoreClock(c int) float64 { return m.clock[c] }
