package timing

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestContentionScaling(t *testing.T) {
	cfg := DefaultConfig()
	m1 := NewMachine(1, cfg)
	m8 := NewMachine(8, cfg)
	if m1.Contention() != 1 {
		t.Errorf("single-core contention = %v, want 1", m1.Contention())
	}
	if m8.Contention() <= m1.Contention() {
		t.Error("contention must grow with cores")
	}
	m1.Load(0)
	m8.Load(0)
	if m8.Elapsed() <= m1.Elapsed() {
		t.Error("contended load must cost more")
	}
}

func TestStoreBufferDrainExposure(t *testing.T) {
	cfg := DefaultConfig()
	// On one core the full drain latency is exposed at a fence.
	m := NewMachine(1, cfg)
	m.Store(0)
	base := m.Elapsed()
	m.FenceNearStore(0)
	exposed := m.Elapsed() - base
	want := cfg.StoreFenceSerial + cfg.DrainUnit // contention factor is 1
	if !approx(exposed, want) {
		t.Errorf("exposed fence cost = %v, want %v", exposed, want)
	}
	// On many cores the drain hides under contention stalls.
	m8 := NewMachine(8, cfg)
	m8.Store(0)
	base8 := m8.Elapsed()
	m8.FenceNearStore(0)
	exposed8 := m8.Elapsed() - base8
	if exposed8 >= exposed {
		t.Errorf("fence exposure at 8 cores (%v) should be below 1 core (%v)", exposed8, exposed)
	}
}

func TestFenceClearsStoreBuffer(t *testing.T) {
	cfg := DefaultConfig()
	m := NewMachine(1, cfg)
	for i := 0; i < 4; i++ {
		m.Store(0)
	}
	m.FenceAfterLoad(0)
	before := m.Elapsed()
	m.FenceAfterLoad(0) // buffer now empty: only serialization cost
	if got := m.Elapsed() - before; !approx(got, cfg.LoadFenceSerial) {
		t.Errorf("second fence cost %v, want serialization only (%v)", got, cfg.LoadFenceSerial)
	}
}

func TestStoreBufferCapStalls(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SBSize = 2
	m := NewMachine(1, cfg)
	m.Store(0)
	m.Store(0)
	two := m.Elapsed()
	m.Store(0) // full: must stall one drain
	if got := m.Elapsed() - two; !approx(got, cfg.StoreCost+cfg.DrainUnit) {
		t.Errorf("overflowing store cost %v, want %v", got, cfg.StoreCost+cfg.DrainUnit)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	cfg := DefaultConfig()
	m := NewMachine(2, cfg)
	m.Load(0)
	m.Load(0)
	m.Load(1)
	m.Barrier()
	if m.CoreClock(0) != m.CoreClock(1) {
		t.Error("barrier did not equalize clocks")
	}
	if m.CoreClock(0) <= 2*cfg.LoadCost {
		t.Error("barrier cost missing")
	}
}

// TestQuickClocksMonotone: no operation sequence ever decreases a clock.
func TestQuickClocksMonotone(t *testing.T) {
	cfg := DefaultConfig()
	f := func(ops []uint8) bool {
		m := NewMachine(4, cfg)
		prev := make([]float64, 4)
		for i, op := range ops {
			c := i % 4
			switch op % 5 {
			case 0:
				m.Load(c)
			case 1:
				m.Store(c)
			case 2:
				m.FenceAfterLoad(c)
			case 3:
				m.FenceNearStore(c)
			case 4:
				m.Barrier()
			}
			for cc := 0; cc < 4; cc++ {
				if m.CoreClock(cc) < prev[cc] {
					return false
				}
				prev[cc] = m.CoreClock(cc)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
