package uspec

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// This file makes a µspec model *data, not code*: a Config is a
// serializable Spec with a herd-style text format (ParseSpec/EmitSpec
// round-trip to a byte fixed point), semantic validation encoding the
// legality rules that were previously implicit in the Table 7
// constructors, and a canonical content fingerprint that identifies a
// model by its ordering semantics rather than its display name. The
// shipped builtins live in specs/*.uspec (see registry.go); custom
// models arrive through -model-file flags and the tricheckd wire format.
//
// A spec file looks like:
//
//	uspec nMM
//	(* any comment *)
//	description "rMM with shared store buffers (nMCA stores)"
//	variant curr
//	relax WR
//	relax WW
//	relax RM
//	forwarding
//	nmca
//	respect-deps
//
// Directives (one per line; `(* ... *)` comments are ignored):
//
//	uspec <name>          required header; name matches [A-Za-z0-9_.+-]+
//	description "<text>"  optional quoted description
//	variant curr|ours     MCM variant (default curr)
//	relax WR|WW|RM        relax a program order (RM = the paper's R→M)
//	forwarding            store-buffer forwarding (rMCA)
//	nmca                  per-core store visibility (nMCA)
//	cache-protocol        nMCA via write-back caches + directory (A9like)
//	order-same-addr-rr    keep same-address loads in program order
//	respect-deps          enforce syntactic address/data/control deps
//
// Each directive may appear at most once; EmitSpec always renders them
// in the order above, so emit→parse→emit is a byte fixed point.

// Spec is the declarative, serializable form of a µspec model — exactly
// the Config fields, named for their role as data. Parse one with
// ParseSpec, render one with Config.EmitSpec.
type Spec = Config

// Named validation errors: each encodes one legality rule of the
// relaxation lattice that the Table 7 constructors obeyed implicitly.
// Validate (and therefore ParseSpec) wraps them with the offending
// model's name; test with errors.Is.
var (
	// ErrForwardingWithoutRelaxWR: store-buffer forwarding presumes a
	// store buffer, i.e. the W→R order must be relaxed.
	ErrForwardingWithoutRelaxWR = errors.New("uspec: forwarding requires a store buffer (relax WR)")
	// ErrNMCAWithoutForwarding: per-core visibility arises from shared
	// store buffers (or a non-stalling directory), both of which forward
	// to the writing core early.
	ErrNMCAWithoutForwarding = errors.New("uspec: nmca requires forwarding (shared store buffers forward to their own cores)")
	// ErrCacheProtocolWithoutNMCA: routing visibility through coherence-
	// protocol events is per-core visibility by construction.
	ErrCacheProtocolWithoutNMCA = errors.New("uspec: cache-protocol requires nmca (per-core invalidations are nMCA by construction)")
	// ErrSameAddrRRWithoutRelaxRR: when loads perform in program order
	// (RM not relaxed), same-address loads are trivially ordered — a spec
	// claiming otherwise is contradictory. Set order-same-addr-rr.
	ErrSameAddrRRWithoutRelaxRR = errors.New("uspec: order-same-addr-rr must be set when RM is not relaxed (in-order loads are same-address-ordered by construction)")
	// ErrNoDepsWithoutRelaxRR: dependency order only constrains anything
	// once loads may perform out of order; an in-order-load spec dropping
	// respect-deps is contradictory.
	ErrNoDepsWithoutRelaxRR = errors.New("uspec: respect-deps must be set when RM is not relaxed (in-order loads subsume dependency order)")
	// ErrInvalidName: a non-empty model name must be a spec identifier —
	// otherwise EmitSpec's output would not reparse to the same model
	// (a name containing a newline could even inject directives).
	ErrInvalidName = errors.New("uspec: model name is not an identifier ([A-Za-z0-9_.+-]+)")
)

// Validate checks the config's relaxation profile against the legality
// rules of the lattice, and — for the EmitSpec→ParseSpec round trip —
// that a non-empty Name is a spec identifier. An empty Name is allowed
// (EnumerateConfigs validates configs before naming them); Description
// is unconstrained (EmitSpec quotes it).
func (c Config) Validate() error {
	fail := func(err error) error {
		if c.Name != "" {
			return fmt.Errorf("uspec: model %q: %w", c.Name, err)
		}
		return err
	}
	if c.Name != "" && !specNameRe.MatchString(c.Name) {
		return fmt.Errorf("uspec: model %q: %w", c.Name, ErrInvalidName)
	}
	if c.Forwarding && !c.RelaxWR {
		return fail(ErrForwardingWithoutRelaxWR)
	}
	if c.NMCA && !c.Forwarding {
		return fail(ErrNMCAWithoutForwarding)
	}
	if c.CacheProtocol && !c.NMCA {
		return fail(ErrCacheProtocolWithoutNMCA)
	}
	if !c.RelaxRR && !c.OrderSameAddrRR {
		return fail(ErrSameAddrRRWithoutRelaxRR)
	}
	if !c.RelaxRR && !c.RespectDeps {
		return fail(ErrNoDepsWithoutRelaxRR)
	}
	return nil
}

// ContentKey serializes the config's semantic fields — the relaxation
// bits and the MCM variant, never the display name or description — in
// the canonical key format shared with core.StackFingerprint. Two
// configs with equal ContentKeys are the same microarchitecture.
func (c Config) ContentKey() string {
	return fmt.Sprintf("wr=%t;fwd=%t;ww=%t;rr=%t;sarr=%t;nmca=%t;cp=%t;deps=%t;var=%d",
		c.RelaxWR, c.Forwarding, c.RelaxWW, c.RelaxRR, c.OrderSameAddrRR,
		c.NMCA, c.CacheProtocol, c.RespectDeps, c.Variant)
}

// Fingerprint returns the canonical content hash of the config: a hex
// digest of ContentKey. Renaming a model never changes its fingerprint;
// flipping any relaxation bit or the variant always does. Memo-cache
// stack identity is built from this (see core.StackFingerprint).
func (c Config) Fingerprint() string {
	sum := sha256.Sum256([]byte(c.ContentKey()))
	return hex.EncodeToString(sum[:16])
}

// specNameRe bounds model names to herd-safe identifiers (the same
// character set corpus metadata values allow), so a spec name can pass
// through file names, wire records and report tables unescaped.
var specNameRe = regexp.MustCompile(`^[\w.+-]+$`)

// stripSpecComments removes `(* ... *)` comments (possibly multi-line)
// outside quoted strings, so a description containing comment delimiters
// survives the round trip intact.
func stripSpecComments(src string) (string, error) {
	var b strings.Builder
	inStr := false
	for i := 0; i < len(src); i++ {
		c := src[i]
		switch {
		case inStr:
			b.WriteByte(c)
			if c == '\\' && i+1 < len(src) {
				i++
				b.WriteByte(src[i])
			} else if c == '"' || c == '\n' {
				// A newline ends the (malformed) string too: quoted values
				// are single-line, and letting one swallow the rest of the
				// file would hide every later comment from stripping.
				inStr = false
			}
		case c == '"':
			inStr = true
			b.WriteByte(c)
		case c == '(' && i+1 < len(src) && src[i+1] == '*':
			end := strings.Index(src[i+2:], "*)")
			if end < 0 {
				return "", fmt.Errorf("uspec: unterminated (* comment")
			}
			i += 2 + end + 1 // resume after "*)"
		default:
			b.WriteByte(c)
		}
	}
	return b.String(), nil
}

// EmitSpec renders the config in the spec text format. The rendering is
// canonical: parsing it and emitting again yields byte-identical text.
func (c Config) EmitSpec() string {
	var b strings.Builder
	fmt.Fprintf(&b, "uspec %s\n", c.Name)
	if c.Description != "" {
		fmt.Fprintf(&b, "description %q\n", c.Description)
	}
	fmt.Fprintf(&b, "variant %s\n", variantToken(c.Variant))
	if c.RelaxWR {
		b.WriteString("relax WR\n")
	}
	if c.RelaxWW {
		b.WriteString("relax WW\n")
	}
	if c.RelaxRR {
		b.WriteString("relax RM\n")
	}
	if c.Forwarding {
		b.WriteString("forwarding\n")
	}
	if c.NMCA {
		b.WriteString("nmca\n")
	}
	if c.CacheProtocol {
		b.WriteString("cache-protocol\n")
	}
	if c.OrderSameAddrRR {
		b.WriteString("order-same-addr-rr\n")
	}
	if c.RespectDeps {
		b.WriteString("respect-deps\n")
	}
	return b.String()
}

// variantToken renders a variant as its spec-format token.
func variantToken(v Variant) string {
	if v == Ours {
		return "ours"
	}
	return "curr"
}

// ParseSpec parses a model spec from its text format and validates it.
// The returned Spec is a plain value; wrap it with New (or Model) to
// evaluate it.
func ParseSpec(src string) (*Spec, error) {
	var c Config
	src, err := stripSpecComments(src)
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	once := func(directive string) error {
		if seen[directive] {
			return fmt.Errorf("uspec: duplicate %q directive", directive)
		}
		seen[directive] = true
		return nil
	}
	sawHeader := false
	for _, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		word, rest, _ := strings.Cut(line, " ")
		rest = strings.TrimSpace(rest)
		if !sawHeader {
			if word != "uspec" {
				return nil, fmt.Errorf("uspec: want header \"uspec <name>\", got %q", line)
			}
			if !specNameRe.MatchString(rest) {
				return nil, fmt.Errorf("uspec: model name %q is not an identifier", rest)
			}
			c.Name = rest
			sawHeader = true
			continue
		}
		switch word {
		case "uspec":
			return nil, fmt.Errorf("uspec: duplicate %q directive", "uspec")
		case "description":
			if err := once("description"); err != nil {
				return nil, err
			}
			d, err := strconv.Unquote(rest)
			if err != nil {
				return nil, fmt.Errorf("uspec: description must be a quoted string, got %q", rest)
			}
			if d == "" {
				return nil, fmt.Errorf("uspec: description must not be empty (omit the directive instead)")
			}
			c.Description = d
		case "variant":
			if err := once("variant"); err != nil {
				return nil, err
			}
			switch rest {
			case "curr":
				c.Variant = Curr
			case "ours":
				c.Variant = Ours
			default:
				return nil, fmt.Errorf("uspec: unknown variant %q (want curr or ours)", rest)
			}
		case "relax":
			var field *bool
			switch rest {
			case "WR":
				field = &c.RelaxWR
			case "WW":
				field = &c.RelaxWW
			case "RM":
				field = &c.RelaxRR
			default:
				return nil, fmt.Errorf("uspec: unknown program order %q (want WR, WW or RM)", rest)
			}
			if err := once("relax " + rest); err != nil {
				return nil, err
			}
			*field = true
		case "forwarding", "nmca", "cache-protocol", "order-same-addr-rr", "respect-deps":
			if rest != "" {
				return nil, fmt.Errorf("uspec: directive %q takes no argument, got %q", word, rest)
			}
			if err := once(word); err != nil {
				return nil, err
			}
			switch word {
			case "forwarding":
				c.Forwarding = true
			case "nmca":
				c.NMCA = true
			case "cache-protocol":
				c.CacheProtocol = true
			case "order-same-addr-rr":
				c.OrderSameAddrRR = true
			case "respect-deps":
				c.RespectDeps = true
			}
		default:
			return nil, fmt.Errorf("uspec: unknown directive %q", line)
		}
	}
	if !sawHeader {
		return nil, fmt.Errorf("uspec: empty spec (want \"uspec <name>\" header)")
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// LoadSpecFile reads and parses one model spec file.
func LoadSpecFile(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := ParseSpec(string(data))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Model wraps the spec as an evaluable model after validating it. Unlike
// bare Validate (which EnumerateConfigs runs before naming configs), a
// usable model must be named: stacks report by display name and EmitSpec
// output must reparse.
func (c Config) Model() (*Model, error) {
	if c.Name == "" {
		return nil, fmt.Errorf("uspec: %w (a model needs a name)", ErrInvalidName)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return New(c), nil
}
