package uspec

import (
	"testing"

	"tricheck/internal/c11"
	"tricheck/internal/compile"
	"tricheck/internal/isa"
	"tricheck/internal/litmus"
	"tricheck/internal/mem"
)

// compileVariant lowers a litmus test with the mapping matching (isaKind,
// variant): base/atomics × intuitive/refined.
func mapFor(base bool, v Variant) *compile.Mapping {
	switch {
	case base && v == Curr:
		return compile.RISCVBaseIntuitive
	case base && v == Ours:
		return compile.RISCVBaseRefined
	case !base && v == Curr:
		return compile.RISCVAtomicsIntuitive
	default:
		return compile.RISCVAtomicsRefined
	}
}

func observable(t *testing.T, m *Model, mp *compile.Mapping, tst *litmus.Test) bool {
	t.Helper()
	prog, err := compile.Compile(mp, tst.Prog)
	if err != nil {
		t.Fatalf("compile %s: %v", tst.Name, err)
	}
	obs, err := m.Observable(prog, tst.Specified)
	if err != nil {
		t.Fatalf("observable %s on %s: %v", tst.Name, m.FullName(), err)
	}
	return obs
}

// figure3WRC is the paper's exact Figure 3 variant.
func figure3WRC() *litmus.Test {
	return litmus.WRC.Instantiate([]c11.Order{c11.Rlx, c11.Rlx, c11.Rel, c11.Acq, c11.Rlx})
}

// TestWRCBaseCurrBuggyOnNMCAOnly reproduces Section 5.1.1: under the
// intuitive Base mapping the Figure 3 outcome is observable (a bug) exactly
// on the nMCA models (nWR, nMM, A9like) and unobservable on the MCA/rMCA
// ones.
func TestWRCBaseCurrBuggyOnNMCAOnly(t *testing.T) {
	tst := figure3WRC()
	for _, m := range Models(Curr) {
		got := observable(t, m, compile.RISCVBaseIntuitive, tst)
		want := m.NMCA
		if got != want {
			t.Errorf("%s: WRC observable = %v, want %v", m.FullName(), got, want)
		}
	}
}

// TestWRCBaseOursFixed reproduces the Section 5.1.1 fix: with cumulative
// lightweight fences (refined mapping + riscv-ours models) the Figure 3
// outcome is forbidden everywhere.
func TestWRCBaseOursFixed(t *testing.T) {
	tst := figure3WRC()
	for _, m := range Models(Ours) {
		if observable(t, m, compile.RISCVBaseRefined, tst) {
			t.Errorf("%s: WRC still observable under the refined mapping", m.FullName())
		}
	}
}

// TestWRCAtomicsCurrBuggy reproduces Section 5.2.1: non-cumulative AMO
// releases leave the Figure 10 outcome observable on nMCA models.
func TestWRCAtomicsCurrBuggy(t *testing.T) {
	tst := figure3WRC()
	for _, m := range Models(Curr) {
		got := observable(t, m, compile.RISCVAtomicsIntuitive, tst)
		want := m.NMCA
		if got != want {
			t.Errorf("%s: Base+A WRC observable = %v, want %v", m.FullName(), got, want)
		}
	}
}

// TestWRCAtomicsOursFixed: lazy cumulative releases restore WRC.
func TestWRCAtomicsOursFixed(t *testing.T) {
	tst := figure3WRC()
	for _, m := range Models(Ours) {
		if observable(t, m, compile.RISCVAtomicsRefined, tst) {
			t.Errorf("%s: Base+A WRC still observable under refined mapping", m.FullName())
		}
	}
}

// figure4IRIW is the all-SC IRIW variant of Figure 4.
func figure4IRIW() *litmus.Test {
	return litmus.IRIW.Instantiate([]c11.Order{c11.SC, c11.SC, c11.SC, c11.SC, c11.SC, c11.SC})
}

// TestIRIWBaseCurrBuggyOnNMCA reproduces Section 5.1.2: the intuitive Base
// mapping (non-cumulative fences, Figure 9) cannot forbid IRIW on nMCA
// hardware.
func TestIRIWBaseCurrBuggyOnNMCA(t *testing.T) {
	tst := figure4IRIW()
	for _, m := range Models(Curr) {
		got := observable(t, m, compile.RISCVBaseIntuitive, tst)
		want := m.NMCA
		if got != want {
			t.Errorf("%s: IRIW observable = %v, want %v", m.FullName(), got, want)
		}
	}
}

// TestIRIWBaseOursFixed: cumulative heavyweight fences forbid IRIW.
func TestIRIWBaseOursFixed(t *testing.T) {
	tst := figure4IRIW()
	for _, m := range Models(Ours) {
		if observable(t, m, compile.RISCVBaseRefined, tst) {
			t.Errorf("%s: IRIW still observable with hwf", m.FullName())
		}
	}
}

// TestIRIWLwfInsufficient verifies the paper's Section 5.1.2 claim that
// cumulative lightweight fences are NOT sufficient for IRIW: mapping SC
// loads with lwf between them leaves the outcome observable on nMCA.
func TestIRIWLwfInsufficient(t *testing.T) {
	lwfOnly := &compile.Mapping{
		Name: "base-lwf-everywhere", Arch: isa.RISCV,
		LoadRlx:  compile.Recipe{compile.Access()},
		LoadAcq:  compile.Recipe{compile.Access(), compile.LWF()},
		LoadSC:   compile.Recipe{compile.LWF(), compile.Access(), compile.LWF()},
		StoreRlx: compile.Recipe{compile.Access()},
		StoreRel: compile.Recipe{compile.LWF(), compile.Access()},
		StoreSC:  compile.Recipe{compile.LWF(), compile.Access()},
	}
	tst := figure4IRIW()
	m := NMM(Ours)
	if !observable(t, m, lwfOnly, tst) {
		t.Error("IRIW must remain observable when only cumulative lightweight fences are used")
	}
}

// TestIRIWAtomicsCurrOK: in Base+A, SC atomics are AMO.aq.rl which the
// current spec already makes store-atomic and globally ordered, so IRIW is
// correctly forbidden (Section 6.1 lists IRIW bugs only for Base).
func TestIRIWAtomicsCurrOK(t *testing.T) {
	tst := figure4IRIW()
	for _, m := range Models(Curr) {
		if observable(t, m, compile.RISCVAtomicsIntuitive, tst) {
			t.Errorf("%s: Base+A IRIW should be forbidden (aq.rl is store atomic)", m.FullName())
		}
	}
}

// TestCoRRSection513 reproduces Section 5.1.3: with relaxed loads, the CoRR
// coherence violation is observable exactly on the models that relax
// same-address R→R (rMM, nMM, A9like) under riscv-curr, and on none under
// riscv-ours.
func TestCoRRSection513(t *testing.T) {
	tst := litmus.CoRR.Instantiate([]c11.Order{c11.Rlx, c11.Rlx, c11.Rlx, c11.Rlx})
	for _, base := range []bool{true, false} {
		for _, m := range Models(Curr) {
			got := observable(t, m, mapFor(base, Curr), tst)
			want := m.RelaxRR // rMM, nMM, A9like
			if got != want {
				t.Errorf("%s (base=%v): CoRR observable = %v, want %v", m.FullName(), base, got, want)
			}
		}
		for _, m := range Models(Ours) {
			if observable(t, m, mapFor(base, Ours), tst) {
				t.Errorf("%s (base=%v): CoRR observable under riscv-ours", m.FullName(), base)
			}
		}
	}
}

// TestCoRRFencedVariantsNotBuggy: an acquire first load (trailing fence)
// orders the pair even on rMM/curr — only rlx+rlx/acq variants are buggy,
// giving the paper's 18-of-81 count.
func TestCoRRFencedVariantsNotBuggy(t *testing.T) {
	m := RMM(Curr)
	cases := []struct {
		l1, l2 c11.Order
		buggy  bool
	}{
		{c11.Rlx, c11.Rlx, true},
		{c11.Rlx, c11.Acq, true},
		{c11.Rlx, c11.SC, false}, // leading fence on the SC load orders the pair
		{c11.Acq, c11.Rlx, false},
		{c11.Acq, c11.Acq, false},
		{c11.SC, c11.Rlx, false},
	}
	for _, cse := range cases {
		tst := litmus.CoRR.Instantiate([]c11.Order{c11.Rlx, c11.Rlx, cse.l1, cse.l2})
		if got := observable(t, m, compile.RISCVBaseIntuitive, tst); got != cse.buggy {
			t.Errorf("CoRR loads (%v,%v): observable = %v, want %v", cse.l1, cse.l2, got, cse.buggy)
		}
	}
}

// TestFigure11RoachMotel reproduces Section 5.2.2: C11 allows the Figure 11
// outcome; the intuitive Base+A mapping (AMO.aq.rl for the SC store)
// forbids it on every model (overly strict), while the refined mapping
// (AMO.rl.sc) allows it on the W→W-relaxing models (rWM, rMM, nMM, A9like)
// — WR and rWR "are not relaxed enough to exploit the difference"
// (Section 6.1). Note the SC store's RMW read part still obeys the
// maintained R→W order; with its read treated as an ordinary AMO read this
// does not block the later relaxed store.
func TestFigure11RoachMotel(t *testing.T) {
	tst := litmus.MP.Instantiate([]c11.Order{c11.SC, c11.Rlx, c11.SC, c11.SC})
	for _, m := range Models(Curr) {
		if observable(t, m, compile.RISCVAtomicsIntuitive, tst) {
			t.Errorf("%s: Figure 11 outcome observable under intuitive mapping (aq bit should block roach motel)", m.FullName())
		}
	}
	for _, m := range Models(Ours) {
		got := observable(t, m, compile.RISCVAtomicsRefined, tst)
		want := m.RelaxWW // rWM, rMM, nMM, A9like
		if got != want {
			t.Errorf("%s: Figure 11 outcome observable = %v, want %v under refined mapping", m.FullName(), got, want)
		}
	}
}

// TestFigure13LazyCumulativity reproduces Section 5.2.3: the Figure 13
// outcome (relaxed pointer load, dependent acquire load) is C11-allowed.
// riscv-curr's eager releases forbid it (overly strict); riscv-ours' lazy
// releases allow it on nMCA hardware.
func TestFigure13LazyCumulativity(t *testing.T) {
	tst := litmus.MPAddrDep.Instantiate([]c11.Order{c11.Rel, c11.Rel, c11.Rlx, c11.Acq})
	currModel := NMM(Curr)
	if observable(t, currModel, compile.RISCVAtomicsIntuitive, tst) {
		t.Error("riscv-curr eager releases must forbid the Figure 13 outcome")
	}
	oursModel := NMM(Ours)
	if !observable(t, oursModel, compile.RISCVAtomicsRefined, tst) {
		t.Error("riscv-ours lazy releases must allow the Figure 13 outcome")
	}
	// With an acquire pointer load the sync must kick in again.
	tst2 := litmus.MPAddrDep.Instantiate([]c11.Order{c11.Rel, c11.Rel, c11.Acq, c11.Acq})
	if observable(t, oursModel, compile.RISCVAtomicsRefined, tst2) {
		t.Error("riscv-ours: acquire observation of a release must synchronize")
	}
}

// TestMPSBNeverBuggy: message passing and store buffering with their
// forbidden variants are correctly forbidden on every model and mapping —
// Section 6.1 reports no mp/sb bugs.
func TestMPSBNeverBuggy(t *testing.T) {
	mpRelAcq := litmus.MP.Instantiate([]c11.Order{c11.Rlx, c11.Rel, c11.Acq, c11.Rlx})
	sbAllSC := litmus.SB.Instantiate([]c11.Order{c11.SC, c11.SC, c11.SC, c11.SC})
	for _, v := range []Variant{Curr, Ours} {
		for _, base := range []bool{true, false} {
			for _, m := range Models(v) {
				if observable(t, m, mapFor(base, v), mpRelAcq) {
					t.Errorf("%s (base=%v): MP rel/acq observable — would be a bug", m.FullName(), base)
				}
				if observable(t, m, mapFor(base, v), sbAllSC) {
					t.Errorf("%s (base=%v): SB all-SC observable — would be a bug", m.FullName(), base)
				}
			}
		}
	}
}

// TestRWCBaseCurrBuggy: the two C11-forbidden RWC variants are observable
// on nMCA models under the intuitive Base mapping (Section 6.1: "each model
// exhibited 2 illegal outcomes"), and fixed by riscv-ours.
func TestRWCBaseCurrBuggy(t *testing.T) {
	for _, l1 := range []c11.Order{c11.Acq, c11.SC} {
		tst := litmus.RWC.Instantiate([]c11.Order{c11.SC, l1, c11.SC, c11.SC, c11.SC})
		for _, m := range Models(Curr) {
			got := observable(t, m, compile.RISCVBaseIntuitive, tst)
			if got != m.NMCA {
				t.Errorf("%s: RWC(l1=%v) observable = %v, want %v", m.FullName(), l1, got, m.NMCA)
			}
		}
		for _, m := range Models(Ours) {
			if observable(t, m, compile.RISCVBaseRefined, tst) {
				t.Errorf("%s: RWC(l1=%v) still observable under riscv-ours", m.FullName(), l1)
			}
		}
		// Base+A: aq.rl SC AMOs already forbid it (no Base+A RWC bugs in §6.1).
		for _, m := range Models(Curr) {
			if observable(t, m, compile.RISCVAtomicsIntuitive, tst) {
				t.Errorf("%s: Base+A RWC(l1=%v) observable — §6.1 reports no Base+A RWC bugs", m.FullName(), l1)
			}
		}
	}
}

// TestA9likeMatchesNMM: the cache-protocol topology must be ISA-visibly
// equivalent to the shared-store-buffer nMM on a cross-section of tests.
func TestA9likeMatchesNMM(t *testing.T) {
	tests := []*litmus.Test{
		figure3WRC(), figure4IRIW(),
		litmus.MP.Instantiate([]c11.Order{c11.Rlx, c11.Rel, c11.Acq, c11.Rlx}),
		litmus.SB.Instantiate([]c11.Order{c11.Rlx, c11.Rlx, c11.Rlx, c11.Rlx}),
		litmus.CoRR.Instantiate([]c11.Order{c11.Rlx, c11.Rlx, c11.Rlx, c11.Acq}),
		litmus.RWC.Instantiate([]c11.Order{c11.SC, c11.Acq, c11.SC, c11.SC, c11.SC}),
	}
	for _, v := range []Variant{Curr, Ours} {
		a9, nmm := A9like(v), NMM(v)
		for _, base := range []bool{true, false} {
			for _, tst := range tests {
				got := observable(t, a9, mapFor(base, v), tst)
				want := observable(t, nmm, mapFor(base, v), tst)
				if got != want {
					t.Errorf("%s vs nMM (%v, base=%v) on %s: %v != %v", a9.FullName(), v, base, tst.Name, got, want)
				}
			}
		}
	}
}

// TestSCModelForbidsEverything: the SC ablation model forbids every weak
// outcome.
func TestSCModelForbidsEverything(t *testing.T) {
	m := SCProof()
	weak := []*litmus.Test{
		litmus.MP.Instantiate([]c11.Order{c11.Rlx, c11.Rlx, c11.Rlx, c11.Rlx}),
		litmus.SB.Instantiate([]c11.Order{c11.Rlx, c11.Rlx, c11.Rlx, c11.Rlx}),
		figure3WRC(), figure4IRIW(),
		litmus.CoRR.Instantiate([]c11.Order{c11.Rlx, c11.Rlx, c11.Rlx, c11.Rlx}),
	}
	for _, tst := range weak {
		if observable(t, m, compile.RISCVBaseIntuitive, tst) {
			t.Errorf("SC model observes %s", tst.Name)
		}
	}
}

// TestSBObservableOnStoreBufferModels: the SB relaxed outcome (allowed by
// C11) must be observable on every Table 7 model — they all have store
// buffers. Unobservable would be overly strict.
func TestSBObservableOnStoreBufferModels(t *testing.T) {
	tst := litmus.SB.Instantiate([]c11.Order{c11.Rlx, c11.Rlx, c11.Rlx, c11.Rlx})
	for _, v := range []Variant{Curr, Ours} {
		for _, m := range Models(v) {
			if !observable(t, m, mapFor(true, v), tst) {
				t.Errorf("%s: relaxed SB unobservable — store buffer missing?", m.FullName())
			}
		}
	}
}

// TestLBObservabilityTracksRWRelaxation: load buffering is C11-allowed for
// relaxed atomics. It requires a store to become visible before a
// program-order-earlier load performs, so it is unobservable on the models
// that maintain R→W (WR, rWR, rWM, nWR — a legal strictness) and
// observable on the R→M-relaxing ones (rMM, nMM, A9like).
func TestLBObservabilityTracksRWRelaxation(t *testing.T) {
	tst := litmus.LB.Instantiate([]c11.Order{c11.Rlx, c11.Rlx, c11.Rlx, c11.Rlx})
	for _, m := range Models(Curr) {
		got := observable(t, m, compile.RISCVBaseIntuitive, tst)
		if got != m.RelaxRR {
			t.Errorf("%s: LB observable = %v, want %v", m.FullName(), got, m.RelaxRR)
		}
	}
}

// TestAlphaLikeNeedsDependencies: without dependency ordering (Section
// 4.1.3's read_barrier_depends discussion) the Figure 13 outcome becomes
// observable even where nMM forbids it.
func TestAlphaLikeNeedsDependencies(t *testing.T) {
	tst := litmus.MPAddrDep.Instantiate([]c11.Order{c11.Rel, c11.Rel, c11.Rlx, c11.Rlx})
	alpha := AlphaLike()
	nmm := NMM(Curr)
	if !observable(t, alpha, compile.RISCVBaseIntuitive, tst) {
		t.Error("AlphaLike should observe the dependency-ordered MP outcome")
	}
	if observable(t, nmm, compile.RISCVBaseIntuitive, tst) {
		t.Error("nMM respects dependencies and must forbid it")
	}
}

// TestTable7ModelMatrix pins Figure 7's relaxation matrix.
func TestTable7ModelMatrix(t *testing.T) {
	rows := Table7(Curr)
	want := []TableRow{
		{Name: "WR", WR: true, MCA: true},
		{Name: "rWR", WR: true, RMCA: true},
		{Name: "rWM", WR: true, WW: true, RMCA: true},
		{Name: "rMM", WR: true, WW: true, RM: true, RMCA: true, SameAddrRRRelaxed: true},
		{Name: "nWR", WR: true, NMCA: true},
		{Name: "nMM", WR: true, WW: true, RM: true, NMCA: true, SameAddrRRRelaxed: true},
		{Name: "A9like", WR: true, WW: true, RM: true, NMCA: true, SameAddrRRRelaxed: true, ViaCacheProtocol: true},
	}
	if len(rows) != len(want) {
		t.Fatalf("%d rows, want %d", len(rows), len(want))
	}
	for i, r := range rows {
		if r != want[i] {
			t.Errorf("row %d = %+v, want %+v", i, r, want[i])
		}
	}
	// riscv-ours restores same-address R→R everywhere.
	for _, r := range Table7(Ours) {
		if r.SameAddrRRRelaxed {
			t.Errorf("riscv-ours %s still relaxes same-address R→R", r.Name)
		}
	}
}

// TestEvaluateOutcomeSets: Evaluate's observable set is a subset of All
// and contains every individually-Observable outcome.
func TestEvaluateOutcomeSets(t *testing.T) {
	tst := figure3WRC()
	prog, err := compile.Compile(compile.RISCVBaseIntuitive, tst.Prog)
	if err != nil {
		t.Fatal(err)
	}
	m := NMM(Curr)
	res, err := m.Evaluate(prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Observable) == 0 || len(res.All) == 0 {
		t.Fatal("empty outcome sets")
	}
	for o := range res.Observable {
		if !res.All[o] {
			t.Errorf("observable outcome %q not in All", o)
		}
	}
	for o := range res.All {
		single, err := m.Observable(prog, o)
		if err != nil {
			t.Fatal(err)
		}
		if single != res.Observable[o] {
			t.Errorf("outcome %q: Observable=%v, Evaluate=%v", o, single, res.Observable[o])
		}
	}
	if res.Graphs > res.Candidates {
		t.Errorf("graphs built (%d) exceeds candidates (%d)", res.Graphs, res.Candidates)
	}
}

// TestExplainProducesCycle: a forbidden outcome's explanation names a µhb
// cycle with rf/fr edges in it.
func TestExplainProducesCycle(t *testing.T) {
	tst := figure3WRC()
	prog, err := compile.Compile(compile.RISCVBaseIntuitive, tst.Prog)
	if err != nil {
		t.Fatal(err)
	}
	m := WR(Curr) // forbids WRC
	obs, why, err := m.Explain(prog, tst.Specified)
	if err != nil {
		t.Fatal(err)
	}
	if obs {
		t.Fatal("WR must forbid WRC")
	}
	if why == "" {
		t.Fatal("empty explanation")
	}
	g, found, err := m.ObservableGraph(prog, tst.Specified)
	if err != nil || !found {
		t.Fatalf("ObservableGraph: %v found=%v", err, found)
	}
	if g.Acyclic() {
		t.Error("graph for forbidden outcome should be cyclic")
	}
}

// TestMonotonicityStrongerModelObservesLess: every outcome observable on WR
// is observable on rWR, and so on down the strength order, for a sample of
// programs (relaxation monotonicity).
func TestMonotonicityStrongerModelObservesLess(t *testing.T) {
	chain := []*Model{WR(Curr), RWR(Curr), RWM(Curr), RMM(Curr)}
	tests := []*litmus.Test{
		litmus.MP.Instantiate([]c11.Order{c11.Rlx, c11.Rlx, c11.Rlx, c11.Rlx}),
		litmus.SB.Instantiate([]c11.Order{c11.Rlx, c11.Rlx, c11.Rlx, c11.Rlx}),
		figure3WRC(),
		litmus.CoRR.Instantiate([]c11.Order{c11.Rlx, c11.Rlx, c11.Rlx, c11.Rlx}),
	}
	for _, tst := range tests {
		prog, err := compile.Compile(compile.RISCVBaseIntuitive, tst.Prog)
		if err != nil {
			t.Fatal(err)
		}
		var prev *Result
		for _, m := range chain {
			res, err := m.Evaluate(prog)
			if err != nil {
				t.Fatal(err)
			}
			if prev != nil {
				for o := range prev.Observable {
					if !res.Observable[o] {
						t.Errorf("%s: outcome %q observable on stronger model but not on %s", tst.Name, o, m.FullName())
					}
				}
			}
			prev = res
		}
	}
}

// TestAMOAtomicity: two concurrent fetch-and-adds never lose an update on
// any model (RMW atomicity is architectural).
func TestAMOAtomicity(t *testing.T) {
	p := isa.NewProgram(isa.RISCV, 1, "x")
	p.Add(0, isa.Instr{Op: isa.OpAMOAdd, Addr: mem.Const(0), Data: mem.Const(1), Dst: 0})
	p.Add(1, isa.Instr{Op: isa.OpAMOAdd, Addr: mem.Const(0), Data: mem.Const(1), Dst: 0})
	p.Observe(0, 0, "a")
	p.Observe(1, 0, "b")
	for _, m := range Models(Curr) {
		res, err := m.Evaluate(p)
		if err != nil {
			t.Fatal(err)
		}
		if res.Observable["a=0; b=0"] {
			t.Errorf("%s: lost AMO update", m.FullName())
		}
		if !res.Observable["a=0; b=1"] && !res.Observable["a=1; b=0"] {
			t.Errorf("%s: no serialization order observable", m.FullName())
		}
	}
}

// TestPowerA9LoadLoadHazard reproduces Figure 1's mechanism: the PowerA9
// model reorders same-address loads (CoRR observable), while the "fixed"
// variant does not.
func TestPowerA9LoadLoadHazard(t *testing.T) {
	tst := litmus.CoRR.Instantiate([]c11.Order{c11.Rlx, c11.Rlx, c11.Rlx, c11.Rlx})
	if !observable(t, PowerA9(), compile.PowerLeadingSync, tst) {
		t.Error("PowerA9 must exhibit the load→load hazard on relaxed atomics")
	}
	if observable(t, PowerA9Fixed(), compile.PowerLeadingSync, tst) {
		t.Error("PowerA9Fixed must order same-address loads")
	}
	// ARM's software fix: a dmb after each relaxed load. Emulate by
	// mapping relaxed loads as acquire loads would be too strong; instead
	// verify the acquire-load variant is hazard-free on PowerA9.
	tst2 := litmus.CoRR.Instantiate([]c11.Order{c11.Rlx, c11.Rlx, c11.Acq, c11.Rlx})
	if observable(t, PowerA9(), compile.PowerLeadingSync, tst2) {
		t.Error("ctrlisync after the first load must hide the hazard")
	}
}

// TestPowerLeadingSyncCleanOnSuiteSamples: the leading-sync mapping must
// forbid all the classic C11-forbidden variants on PowerA9.
func TestPowerLeadingSyncCleanOnSuiteSamples(t *testing.T) {
	m := PowerA9()
	tests := []*litmus.Test{
		figure3WRC(), figure4IRIW(),
		litmus.MP.Instantiate([]c11.Order{c11.Rlx, c11.Rel, c11.Acq, c11.Rlx}),
		litmus.RWC.Instantiate([]c11.Order{c11.SC, c11.Acq, c11.SC, c11.SC, c11.SC}),
		litmus.SB.Instantiate([]c11.Order{c11.SC, c11.SC, c11.SC, c11.SC}),
	}
	for _, tst := range tests {
		if observable(t, m, compile.PowerLeadingSync, tst) {
			t.Errorf("leading-sync: %s observable on PowerA9 — would be a mapping bug", tst.Name)
		}
	}
}

func TestModelByNameAndNames(t *testing.T) {
	if ModelByName("nMM", Curr) == nil || ModelByName("zzz", Curr) != nil {
		t.Error("ModelByName broken")
	}
	if WR(Curr).FullName() != "WR/riscv-curr" || WR(Ours).FullName() != "WR/riscv-ours" {
		t.Error("FullName broken")
	}
}

// TestTSOClassicBehaviours pins the folklore x86-TSO facts on the TSO
// model with the bare x86 mapping: store buffering is the only weak
// behaviour — MP, LB, CoRR and IRIW all stay strong without any fences.
func TestTSOClassicBehaviours(t *testing.T) {
	tso := TSO()
	cases := []struct {
		tst        *litmus.Test
		observable bool
	}{
		{litmus.SB.Instantiate([]c11.Order{c11.Rlx, c11.Rlx, c11.Rlx, c11.Rlx}), true},
		{litmus.MP.Instantiate([]c11.Order{c11.Rlx, c11.Rlx, c11.Rlx, c11.Rlx}), false},
		{litmus.LB.Instantiate([]c11.Order{c11.Rlx, c11.Rlx, c11.Rlx, c11.Rlx}), false},
		{litmus.CoRR.Instantiate([]c11.Order{c11.Rlx, c11.Rlx, c11.Rlx, c11.Rlx}), false},
		{litmus.IRIW.Instantiate([]c11.Order{c11.Rlx, c11.Rlx, c11.Rlx, c11.Rlx, c11.Rlx, c11.Rlx}), false},
		{litmus.WRC.Instantiate([]c11.Order{c11.Rlx, c11.Rlx, c11.Rlx, c11.Rlx, c11.Rlx}), false},
	}
	for _, c := range cases {
		got := observable(t, tso, compile.X86TSO, c.tst)
		if got != c.observable {
			t.Errorf("TSO %s: observable = %v, want %v", c.tst.Name, got, c.observable)
		}
	}
	// And st;mfence kills store buffering for SC atomics.
	sc := litmus.SB.Instantiate([]c11.Order{c11.SC, c11.SC, c11.SC, c11.SC})
	if observable(t, tso, compile.X86TSO, sc) {
		t.Error("TSO: SB with mfence must be forbidden")
	}
}
