package uspec

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"tricheck/internal/compile"
	"tricheck/internal/litmus"
)

// The golden file pins the pre-refactor evaluation core: it was generated
// from the original single-graph builder (one uhb.Graph rebuilt per
// execution candidate) before the skeleton/overlay split, with
//
//	go test ./internal/uspec -run TestGoldenEvaluation -update-golden
//
// and must never be regenerated casually — matching it is the proof that
// the two-tier core computes bit-identical observable sets, candidate and
// graph counts, and Explain strings.
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_eval.json from the current evaluator")

type goldenRecord struct {
	Test       string   `json:"test"`
	Mapping    string   `json:"mapping"`
	Model      string   `json:"model"`
	Observable []string `json:"observable"`
	Candidates int      `json:"candidates"`
	Graphs     int      `json:"graphs"`
	SpecObs    bool     `json:"specObs"`
	Explain    string   `json:"explain"`
}

// goldenWorkload samples the paper suite (every 97th test of the 1,701)
// and pairs each sample with a spread of Table 7 models on both MCM
// variants — strong in-order, the CoRR-relaxing rMM, the nMCA nMM, and
// the cache-protocol A9like topology.
func goldenWorkload() (tests []*litmus.Test, stacks []struct {
	mapping *compile.Mapping
	model   *Model
}) {
	suite := litmus.PaperSuite()
	for i := 0; i < len(suite); i += 97 {
		tests = append(tests, suite[i])
	}
	add := func(m *compile.Mapping, mod *Model) {
		stacks = append(stacks, struct {
			mapping *compile.Mapping
			model   *Model
		}{m, mod})
	}
	add(compile.RISCVBaseIntuitive, WR(Curr))
	add(compile.RISCVBaseIntuitive, RMM(Curr))
	add(compile.RISCVBaseIntuitive, NMM(Curr))
	add(compile.RISCVBaseIntuitive, A9like(Curr))
	add(compile.RISCVAtomicsIntuitive, NMM(Curr))
	add(compile.RISCVAtomicsRefined, NMM(Ours))
	return tests, stacks
}

func computeGolden(t *testing.T) []goldenRecord {
	t.Helper()
	tests, stacks := goldenWorkload()
	var out []goldenRecord
	for _, tst := range tests {
		for _, s := range stacks {
			prog, err := compile.Compile(s.mapping, tst.Prog)
			if err != nil {
				t.Fatalf("compile %s with %s: %v", tst.Name, s.mapping.Name, err)
			}
			res, err := s.model.Evaluate(prog)
			if err != nil {
				t.Fatalf("evaluate %s on %s: %v", tst.Name, s.model.FullName(), err)
			}
			var obs []string
			for o := range res.Observable {
				obs = append(obs, string(o))
			}
			sort.Strings(obs)
			specObs, why, err := s.model.Explain(prog, tst.Specified)
			if err != nil {
				t.Fatalf("explain %s on %s: %v", tst.Name, s.model.FullName(), err)
			}
			out = append(out, goldenRecord{
				Test:       tst.Name,
				Mapping:    s.mapping.Name,
				Model:      s.model.FullName(),
				Observable: obs,
				Candidates: res.Candidates,
				Graphs:     res.Graphs,
				SpecObs:    specObs,
				Explain:    why,
			})
		}
	}
	return out
}

// TestGoldenEvaluation compares the evaluation core against the retained
// pre-refactor golden results: observable outcome sets, enumeration
// counters, the specified outcome's observability and its Explain string
// must all be bit-identical.
func TestGoldenEvaluation(t *testing.T) {
	if testing.Short() {
		t.Skip("golden sweep is not short")
	}
	path := filepath.Join("testdata", "golden_eval.json")
	got := computeGolden(t)
	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d records to %s", len(got), path)
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden once): %v", err)
	}
	var want []goldenRecord
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("golden has %d records, evaluator produced %d", len(want), len(got))
	}
	for i := range want {
		w, g := want[i], got[i]
		if w.Test != g.Test || w.Mapping != g.Mapping || w.Model != g.Model {
			t.Fatalf("record %d identity mismatch: want %s/%s/%s got %s/%s/%s",
				i, w.Test, w.Mapping, w.Model, g.Test, g.Mapping, g.Model)
		}
		id := w.Test + " on " + w.Mapping + "+" + w.Model
		if len(w.Observable) != len(g.Observable) {
			t.Errorf("%s: observable set size %d, want %d", id, len(g.Observable), len(w.Observable))
			continue
		}
		for j := range w.Observable {
			if w.Observable[j] != g.Observable[j] {
				t.Errorf("%s: observable[%d] = %q, want %q", id, j, g.Observable[j], w.Observable[j])
			}
		}
		if w.Candidates != g.Candidates || w.Graphs != g.Graphs {
			t.Errorf("%s: counters (%d cand, %d graphs), want (%d, %d)",
				id, g.Candidates, g.Graphs, w.Candidates, w.Graphs)
		}
		if w.SpecObs != g.SpecObs {
			t.Errorf("%s: specified observable = %v, want %v", id, g.SpecObs, w.SpecObs)
		}
		if w.Explain != g.Explain {
			t.Errorf("%s: explain =\n  %q\nwant\n  %q", id, g.Explain, w.Explain)
		}
	}
}

// TestGoldenSpecifiedOutcomeIsMeaningful sanity-checks the sample: at
// least one record must be forbidden (exercising the cycle/Explain path)
// and one observable (exercising the witness path).
func TestGoldenSpecifiedOutcomeIsMeaningful(t *testing.T) {
	if testing.Short() {
		t.Skip("golden sweep is not short")
	}
	data, err := os.ReadFile(filepath.Join("testdata", "golden_eval.json"))
	if err != nil {
		t.Skipf("no golden file yet: %v", err)
	}
	var recs []goldenRecord
	if err := json.Unmarshal(data, &recs); err != nil {
		t.Fatal(err)
	}
	var obs, forb int
	for _, r := range recs {
		if r.SpecObs {
			obs++
		} else {
			forb++
		}
	}
	if obs == 0 || forb == 0 {
		t.Fatalf("degenerate golden sample: %d observable, %d forbidden", obs, forb)
	}
}
