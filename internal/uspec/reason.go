package uspec

import (
	"fmt"
	"sync/atomic"

	"tricheck/internal/isa"
)

// Reason is a compact, lazily rendered edge reason: the axiom that demanded
// a µhb edge, encoded as a code instead of a string so that the verdict
// path (skeleton and overlay construction, cycle checking) never formats
// or allocates diagnostics. Reasons resolve to the exact strings the
// original eager builder produced, but only on the Explain/DOT paths.
//
// Layout: bits 0–7 hold the base code; for fence reasons bits 8–9/10–11
// hold the predecessor/successor access classes, bits 12–13 the
// cumulativity level, and bits 14–15 the ordered access pair (RR/RW/WW/WR).
type Reason uint32

// Base reason codes, one per axiom label of the builder.
const (
	rPoFetch Reason = iota
	rInOrderExecute
	rInOrderCommit
	rPath
	rAmoReadBeforeWrite
	rCacheGetM
	rCacheInvOrForward
	rSbDrain
	rPpoRR
	rPpoRRSameAddr
	rPpoRW
	rPpoWR
	rAmoNotBuffered
	rSbSameAddrDrain
	rPpoWW
	rSbFifoSameAddr
	rDepAddr
	rDepData
	rDepCtrl
	rWs
	rRfForward
	rRf
	rFr
	rAmoAqR
	rAmoAqW
	rAmoAqVis
	rAmoRlLoadR
	rAmoRlLoadW
	rAmoRlR
	rAmoRlW
	rRelSyncR
	rRelSyncW
	rRelSyncCum
	rScOrder
	rFence // parameterized; never used bare
)

var reasonNames = [...]string{
	rPoFetch:            "po-fetch",
	rInOrderExecute:     "in-order-execute",
	rInOrderCommit:      "in-order-commit",
	rPath:               "path",
	rAmoReadBeforeWrite: "amo-read-before-write",
	rCacheGetM:          "cache-getM",
	rCacheInvOrForward:  "cache-inv-or-forward",
	rSbDrain:            "sb-drain",
	rPpoRR:              "ppo-RR",
	rPpoRRSameAddr:      "ppo-RR-same-addr",
	rPpoRW:              "ppo-RW",
	rPpoWR:              "ppo-WR",
	rAmoNotBuffered:     "amo-not-buffered",
	rSbSameAddrDrain:    "sb-same-addr-drain",
	rPpoWW:              "ppo-WW",
	rSbFifoSameAddr:     "sb-fifo-same-addr",
	rDepAddr:            "dep-addr",
	rDepData:            "dep-data",
	rDepCtrl:            "dep-ctrl",
	rWs:                 "ws",
	rRfForward:          "rf-forward",
	rRf:                 "rf",
	rFr:                 "fr",
	rAmoAqR:             "amo-aq-R",
	rAmoAqW:             "amo-aq-W",
	rAmoAqVis:           "amo-aq-vis",
	rAmoRlLoadR:         "amo-rl-load-R",
	rAmoRlLoadW:         "amo-rl-load-W",
	rAmoRlR:             "amo-rl-R",
	rAmoRlW:             "amo-rl-W",
	rRelSyncR:           "rel-sync-R",
	rRelSyncW:           "rel-sync-W",
	rRelSyncCum:         "rel-sync-cum",
	rScOrder:            "sc-order",
	rFence:              "fence",
}

// Fence-reason pair suffixes (bits 14–15).
const (
	fenceRR Reason = iota << 14
	fenceRW
	fenceWW
	fenceWR
)

var fencePairNames = [4]string{"RR", "RW", "WW", "WR"}

// fenceReason encodes a fence instruction's reason base; OR in one of the
// fence?? pair constants to select the ordered access pair.
func fenceReason(ins *isa.Instr) Reason {
	return rFence |
		Reason(ins.Pred&3)<<8 |
		Reason(ins.Succ&3)<<10 |
		Reason(ins.Cum&3)<<12
}

// diagFormats counts every diagnostic string rendered (reasons and node
// labels). The verdict path must never format diagnostics; the regression
// test in reason_test.go pins that by watching this counter across a full
// evaluation.
var diagFormats atomic.Uint64

// DiagnosticFormats returns the number of diagnostic strings (edge
// reasons, node labels) formatted so far, process-wide. Exposed for tests
// asserting the verdict path performs zero diagnostic formatting.
func DiagnosticFormats() uint64 { return diagFormats.Load() }

// String renders the reason exactly as the eager builder used to. Only
// Explain/DOT materialization calls it.
func (r Reason) String() string {
	diagFormats.Add(1)
	base := r & 0xff
	if base != rFence {
		if int(base) < len(reasonNames) {
			return reasonNames[base]
		}
		return fmt.Sprintf("reason(%d)", uint32(r))
	}
	pred := isa.Class(r >> 8 & 3)
	succ := isa.Class(r >> 10 & 3)
	cum := isa.Cumulativity(r >> 12 & 3)
	pair := fencePairNames[r>>14&3]
	return fmt.Sprintf("fence[%s,%s;%s]-%s", pred, succ, cum, pair)
}
