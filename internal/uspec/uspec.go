// Package uspec implements the microarchitecture-level half of TriCheck:
// µspec-style models of RISC-V (and Power/ARMv7) implementations, evaluated
// by building a µhb graph per execution candidate and testing acyclicity
// (the Check-tool decision procedure; see internal/uhb).
//
// The seven RISC-V models reproduce the paper's Table/Figure 7. All derive
// from a Rocket-chip-like in-order pipeline and differ in which program
// orders they relax and how store visibility propagates:
//
//	model   relaxes            store atomicity
//	WR      W→R                MCA   (single global visibility point)
//	rWR     W→R                rMCA  (store-buffer forwarding to own core)
//	rWM     W→R, W→W           rMCA
//	rMM     W→R, W→W, R→M      rMCA  (incl. same-address R→R — the CoRR bug)
//	nWR     W→R                nMCA  (per-core visibility; shared store buffer)
//	nMM     W→R, W→W, R→M      nMCA
//	A9like  W→R, W→W, R→M      nMCA via write-back caches + a non-stalling
//	                           directory (Section 4.3 point 7)
//
// Each model exists in two MCM variants: Curr implements the ordering
// semantics of the RISC-V spec the paper analysed (non-cumulative fences,
// eager non-cumulative releases, store atomicity implied by aq+rl);
// Ours implements the paper's proposed refinements (cumulative lw/hw
// fences, lazy cumulative releases that synchronize only with acquires,
// the .sc store-atomicity bit, and mandatory same-address load→load
// ordering).
//
// Evaluation runs on a two-tier µhb core: the execution-independent part
// of a model's obligations (pipeline/path order, unconditional preserved
// program order, dependencies, non-cumulative fence and AMO-annotation
// edges) is compiled once per (program, model) into a uhb.Skeleton, and
// each candidate execution only layers its dynamic edges (coherence,
// reads-from/from-reads, same-address refinements, cumulative closures)
// onto it through a pooled uhb.Overlay — see Prepared. Diagnostics
// (Explain, witness graphs, DOT) materialize a full uhb.Graph with string
// reasons and labels via BuildGraph; the verdict path never formats any.
package uspec

import (
	"fmt"

	"tricheck/internal/isa"
	"tricheck/internal/mem"
	"tricheck/internal/uhb"
)

// Variant selects the ISA MCM semantics a model implements.
type Variant uint8

// MCM variants.
const (
	// Curr is the RISC-V MCM as specified at the time of the paper
	// ("riscv-curr" in Figure 15).
	Curr Variant = iota
	// Ours is the paper's refined MCM proposal ("riscv-ours").
	Ours
)

// String names the variant like the paper's figures do.
func (v Variant) String() string {
	if v == Ours {
		return "riscv-ours"
	}
	return "riscv-curr"
}

// Config is a µspec model: an ordering-relaxation profile plus the MCM
// variant governing fence/AMO interpretation.
type Config struct {
	// Name is the Table 7 model name.
	Name string
	// Description summarises the microarchitecture.
	Description string
	// RelaxWR permits a younger load to perform before an older store is
	// visible (a store buffer). All Table 7 models set it.
	RelaxWR bool
	// Forwarding permits a load to read its own thread's store from the
	// store buffer before the store is visible elsewhere (rMCA).
	Forwarding bool
	// RelaxWW permits different-address stores to leave the store buffer
	// out of order.
	RelaxWW bool
	// RelaxRR permits loads to perform out of order with earlier loads and
	// (different-address) earlier-load→store pairs (the paper's R→M).
	RelaxRR bool
	// OrderSameAddrRR forces same-address loads to perform in program
	// order even when RelaxRR is set (the riscv-ours §5.1.3 requirement).
	OrderSameAddrRR bool
	// NMCA gives every store one visibility point per core (non-multiple-
	// copy-atomic stores).
	NMCA bool
	// CacheProtocol routes store visibility through coherence-protocol
	// events (GetM then per-core invalidation/forward), the A9like
	// topology. ISA-visible behaviour matches NMCA.
	CacheProtocol bool
	// RespectDeps enforces syntactic address/data/control dependencies
	// (true for all paper models; false models an Alpha-like machine for
	// the Section 4.1.3 discussion).
	RespectDeps bool
	// Variant selects riscv-curr or riscv-ours semantics.
	Variant Variant
}

// Model is an evaluable microarchitecture model. Models returned by the
// builtin registry (Models, ModelByName, the named constructors) are
// shared and immutable: to customize one, copy its Config, edit the
// copy, and wrap it with New.
type Model struct {
	Config
}

// New returns a model for the given configuration. It does not validate;
// use Config.Model (or ParseSpec) for checked construction.
func New(cfg Config) *Model { return &Model{Config: cfg} }

// FullName is "<name>/<variant>".
func (m *Model) FullName() string { return fmt.Sprintf("%s/%s", m.Name, m.Variant) }

// The builtin models are data, not code: each constructor below is a
// lookup of a shipped spec file (specs/<name>.<variant>.uspec) parsed
// into the registry once at init. See spec.go for the format and
// registry.go for the registry.

// WR is Table 7's strongest model: FIFO store buffer, no forwarding, MCA.
func WR(v Variant) *Model { return mustBuiltin("WR", v) }

// RWR adds store-buffer forwarding (rMCA).
func RWR(v Variant) *Model { return mustBuiltin("rWR", v) }

// RWM additionally drains the store buffer out of order.
func RWM(v Variant) *Model { return mustBuiltin("rWM", v) }

// RMM additionally lets loads perform out of order; under Curr this
// includes same-address load pairs (the Section 5.1.3 bug), under Ours
// same-address pairs stay ordered.
func RMM(v Variant) *Model { return mustBuiltin("rMM", v) }

// NWR is rWR with shared store buffers: nMCA visibility.
func NWR(v Variant) *Model { return mustBuiltin("nWR", v) }

// NMM is rMM with shared store buffers: nMCA visibility.
func NMM(v Variant) *Model { return mustBuiltin("nMM", v) }

// A9like reaches nMM's ISA-visible relaxations through write-back caches
// and a non-stalling directory protocol instead of shared store buffers
// (Section 4.3 point 7).
func A9like(v Variant) *Model { return mustBuiltin("A9like", v) }

// Models returns the seven Table 7 models for the given MCM variant, in the
// paper's strongest-to-weakest presentation order. The models are the
// shared registry instances, built once.
func Models(v Variant) []*Model { return builtins.Table7(v) }

// ModelByName finds a builtin model by name for the given variant, or
// nil. The Table 7 names exist under both variants; the companions
// (PowerA9, PowerA9-ldld-fixed, TSO, SC, AlphaLike) only under Curr.
func ModelByName(name string, v Variant) *Model { return builtins.Model(name, v) }

// PowerA9 models a Power/ARMv7 Cortex-A9-like machine for the Section 7
// compiler-mapping study: nMCA, all program orders relaxed including
// same-address load pairs (the ARM load→load hazard of Figure 1), with
// syntactic dependencies respected.
func PowerA9() *Model { return mustBuiltin("PowerA9", Curr) }

// PowerA9Fixed is PowerA9 with the ARM load→load hazard repaired in
// hardware (same-address loads ordered), for the Figure 1/2 discussion.
func PowerA9Fixed() *Model { return mustBuiltin("PowerA9-ldld-fixed", Curr) }

// TSO models an x86-TSO-like machine: a forwarding store buffer (W→R
// relaxed, rMCA) with every other program order preserved. It matches rWR
// in relaxation profile and exists as a named model for the x86 mapping
// study; on x86, fences are rare (mfence only after SC stores) because TSO
// itself provides acquire/release.
func TSO() *Model { return mustBuiltin("TSO", Curr) }

// SCProof is an ablation model with no relaxations at all: a sequentially
// consistent in-order machine. Useful as a sanity baseline (it can never be
// buggy, only overly strict).
func SCProof() *Model { return mustBuiltin("SC", Curr) }

// AlphaLike is nMM without dependency ordering — the machine the Linux
// read_barrier_depends discussion in Section 4.1.3 worries about.
func AlphaLike() *Model { return mustBuiltin("AlphaLike", Curr) }

// TableRow describes one row of the Table 7 matrix for rendering.
type TableRow struct {
	Name                     string
	WR, WW, RM               bool // relaxed program orders
	MCA, RMCA, NMCA          bool // store atomicity
	SameAddrRRRelaxed        bool
	ViaCacheProtocol, NoDeps bool
}

// Table7 returns the model matrix of Figure 7 for rendering and tests.
func Table7(v Variant) []TableRow {
	var rows []TableRow
	for _, m := range Models(v) {
		rows = append(rows, TableRow{
			Name:              m.Name,
			WR:                m.RelaxWR,
			WW:                m.RelaxWW,
			RM:                m.RelaxRR,
			MCA:               !m.Forwarding && !m.NMCA,
			RMCA:              m.Forwarding && !m.NMCA,
			NMCA:              m.NMCA,
			SameAddrRRRelaxed: m.RelaxRR && !m.OrderSameAddrRR,
			ViaCacheProtocol:  m.CacheProtocol,
			NoDeps:            !m.RespectDeps,
		})
	}
	return rows
}

// Result is a model evaluation over a program: which candidate outcomes are
// observable.
type Result struct {
	// Observable is the set of outcomes with at least one acyclic µhb graph.
	Observable map[mem.Outcome]bool
	// All is the full candidate outcome universe.
	All map[mem.Outcome]bool
	// Candidates counts enumerated executions; Graphs counts µhb
	// acyclicity checks actually run — overlay evaluations on the
	// two-tier core (early-exit per outcome keeps this below Candidates).
	Candidates, Graphs int
}

// Evaluate computes the observable outcome set of program p on the model.
// It runs on the two-tier verdict path: the static skeleton is built once
// and every candidate execution streams through a pooled overlay (see
// Prepared).
func (m *Model) Evaluate(p *isa.Program) (*Result, error) {
	pr := m.Prepare(p)
	defer pr.Close()
	return pr.Evaluate()
}

// Observable reports whether a specific outcome is observable on the model,
// stopping at the first acyclic witness.
func (m *Model) Observable(p *isa.Program, want mem.Outcome) (bool, error) {
	pr := m.Prepare(p)
	defer pr.Close()
	return pr.Observable(want)
}

// Explain returns a human-readable verdict for an outcome: either an
// acyclic witness summary or the µhb cycle forbidding the last candidate.
func (m *Model) Explain(p *isa.Program, want mem.Outcome) (observable bool, explanation string, err error) {
	explanation = "outcome is not a candidate final state"
	e := mem.Enumerate(p.Mem(), func(x *mem.Execution) bool {
		if x.OutcomeOf() != want {
			return true
		}
		g := m.BuildGraph(p, x)
		if cycle := g.FindCycle(); cycle != nil {
			explanation = fmt.Sprintf("forbidden on %s: cycle %s", m.FullName(), g.ExplainCycle(cycle))
			return true
		}
		observable = true
		explanation = fmt.Sprintf("observable on %s via execution %s", m.FullName(), x)
		return false
	})
	if e != nil && e != mem.ErrStopped {
		return false, "", e
	}
	return observable, explanation, nil
}

// ObservableGraph returns a µhb graph (preferring an acyclic witness) for
// the outcome, for DOT export and debugging; found is false if the outcome
// is not a candidate.
func (m *Model) ObservableGraph(p *isa.Program, want mem.Outcome) (g *uhb.Graph, found bool, err error) {
	e := mem.Enumerate(p.Mem(), func(x *mem.Execution) bool {
		if x.OutcomeOf() != want {
			return true
		}
		cand := m.BuildGraph(p, x)
		g, found = cand, true
		return !cand.Acyclic() // stop at the first acyclic witness
	})
	if e != nil && e != mem.ErrStopped {
		return nil, false, e
	}
	return g, found, nil
}
