package uspec

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"tricheck/internal/c11"
	"tricheck/internal/compile"
	"tricheck/internal/isa"
	"tricheck/internal/isa/riscv"
	"tricheck/internal/litmus"
	"tricheck/internal/mem"
)

// firstExecution returns the first candidate execution of a program.
func firstExecution(t *testing.T, p *isa.Program) *mem.Execution {
	t.Helper()
	var out *mem.Execution
	err := mem.Enumerate(p.Mem(), func(x *mem.Execution) bool {
		out = x.Clone()
		return false
	})
	if err != nil && err != mem.ErrStopped {
		t.Fatal(err)
	}
	if out == nil {
		t.Fatal("no executions")
	}
	return out
}

// executionWhere returns the first execution satisfying pred.
func executionWhere(t *testing.T, p *isa.Program, pred func(*mem.Execution) bool) *mem.Execution {
	t.Helper()
	var out *mem.Execution
	err := mem.Enumerate(p.Mem(), func(x *mem.Execution) bool {
		if pred(x) {
			out = x.Clone()
			return false
		}
		return true
	})
	if err != nil && err != mem.ErrStopped {
		t.Fatal(err)
	}
	if out == nil {
		t.Fatal("no execution matches predicate")
	}
	return out
}

// TestGraphPipelineEdges: the in-order skeleton is present and labelled.
func TestGraphPipelineEdges(t *testing.T) {
	p := isa.NewProgram(isa.RISCV, 1, "x")
	p.Add(0, riscv.LW(0, mem.Const(0)))
	p.Add(0, riscv.SW(mem.Const(1), mem.Const(0)))
	x := firstExecution(t, p)
	m := NMM(Curr)
	g := m.BuildGraph(p, x)
	if !g.Acyclic() {
		t.Fatal("trivial program must be acyclic")
	}
	// Fetch order between the two instructions.
	b := &builder{m: m, p: p, x: x, ev: p.Mem().Events(), C: 1, K: g.NumNodes() / len(p.Mem().Events())}
	if !g.HasEdge(b.fetch(0), b.fetch(1)) {
		t.Error("missing po-fetch edge")
	}
	if g.Reason(b.fetch(0), b.fetch(1)) != "po-fetch" {
		t.Errorf("fetch edge reason = %q", g.Reason(b.fetch(0), b.fetch(1)))
	}
	if !strings.Contains(g.Label(b.fetch(0)), "Fetch") {
		t.Errorf("fetch label = %q", g.Label(b.fetch(0)))
	}
}

// TestSameAddrWWPointwiseEdges: same-address stores get per-core pointwise
// visibility edges even on W→W-relaxing nMCA models.
func TestSameAddrWWPointwiseEdges(t *testing.T) {
	p := isa.NewProgram(isa.RISCV, 1, "x")
	p.Add(0, riscv.SW(mem.Const(1), mem.Const(0)))
	p.Add(0, riscv.SW(mem.Const(2), mem.Const(0)))
	p.Add(1, riscv.LW(0, mem.Const(0)))
	x := firstExecution(t, p)
	m := NMM(Curr) // RelaxWW
	g := m.BuildGraph(p, x)
	b := &builder{m: m, p: p, x: x, ev: p.Mem().Events(), C: 2, K: g.NumNodes() / len(p.Mem().Events())}
	for c := 0; c < 2; c++ {
		if !g.HasEdge(b.visTo(0, c), b.visTo(1, c)) {
			t.Errorf("missing same-address W→W visibility edge for core %d", c)
		}
	}
}

// TestDifferentAddrWWRelaxed: different-address stores are unordered on
// RelaxWW models and ordered on FIFO ones.
func TestDifferentAddrWWRelaxed(t *testing.T) {
	build := func(m *Model) (hasEdge bool) {
		p := isa.NewProgram(isa.RISCV, 2, "x", "y")
		p.Add(0, riscv.SW(mem.Const(1), mem.Const(0)))
		p.Add(0, riscv.SW(mem.Const(1), mem.Const(1)))
		x := firstExecution(t, p)
		g := m.BuildGraph(p, x)
		b := &builder{m: m, p: p, x: x, ev: p.Mem().Events(), C: 1, K: g.NumNodes() / len(p.Mem().Events())}
		return g.HasEdge(b.visTo(0, 0), b.visTo(1, 0))
	}
	if build(RWM(Curr)) {
		t.Error("rWM must not order different-address stores")
	}
	if !build(RWR(Curr)) {
		t.Error("rWR must order different-address stores (FIFO drain)")
	}
}

// TestDependencyEdges: address/data/control dependencies produce
// perform→execute edges, and AlphaLike drops them.
func TestDependencyEdges(t *testing.T) {
	p := isa.NewProgram(isa.RISCV, 2, "x", "y")
	p.Add(0, riscv.LW(0, mem.Const(1)))   // r0 = y
	p.Add(0, riscv.LW(1, mem.FromReg(0))) // r1 = [r0]: address dep
	ins := riscv.SW(mem.FromReg(1), mem.Const(1))
	ins.CtrlDepOn = []int{0}
	p.Add(0, ins) // data dep on r1, ctrl dep on instr 0
	x := executionWhere(t, p, func(x *mem.Execution) bool {
		return x.LocOf[1] != mem.LocNone // dependent load resolved
	})
	m := NMM(Curr)
	g := m.BuildGraph(p, x)
	K := g.NumNodes() / len(p.Mem().Events())
	b := &builder{m: m, p: p, x: x, ev: p.Mem().Events(), C: 1, K: K}
	if !g.HasEdge(b.perform(0), b.exec(1)) {
		t.Error("missing address-dependency edge")
	}
	if !g.HasEdge(b.perform(1), b.exec(2)) {
		t.Error("missing data-dependency edge")
	}
	if !g.HasEdge(b.perform(0), b.exec(2)) {
		t.Error("missing control-dependency edge")
	}
	alpha := AlphaLike()
	g2 := alpha.BuildGraph(p, x)
	if g2.HasEdge(b.perform(0), b.exec(1)) {
		t.Error("AlphaLike must not add dependency edges")
	}
}

// TestForwardingEdge: a same-thread load of a buffered store reads from
// SBEnter under forwarding models and from the visibility node otherwise.
func TestForwardingEdge(t *testing.T) {
	p := isa.NewProgram(isa.RISCV, 1, "x")
	p.Add(0, riscv.SW(mem.Const(1), mem.Const(0)))
	p.Add(0, riscv.LW(0, mem.Const(0)))
	x := firstExecution(t, p) // CoWR forces rf from the store
	fwd := RWR(Curr)
	g := fwd.BuildGraph(p, x)
	K := g.NumNodes() / len(p.Mem().Events())
	b := &builder{m: fwd, p: p, x: x, ev: p.Mem().Events(), C: 1, K: K}
	if !g.HasEdge(b.sbEnter(0), b.perform(1)) {
		t.Error("rWR: missing rf-forward edge")
	}
	nofwd := WR(Curr)
	g2 := nofwd.BuildGraph(p, x)
	b2 := &builder{m: nofwd, p: p, x: x, ev: p.Mem().Events(), C: 1, K: K}
	if g2.HasEdge(b2.sbEnter(0), b2.perform(1)) {
		t.Error("WR: must not forward from the store buffer")
	}
	if !g2.HasEdge(b2.visTo(0, 0), b2.perform(1)) {
		t.Error("WR: load must wait for the store's visibility")
	}
}

// TestAcumWritesComputation: the A-cumulative predecessor set of a fence
// contains rf-sources of pre-fence reads, closed over their threads'
// earlier reads.
func TestAcumWritesComputation(t *testing.T) {
	p := isa.NewProgram(isa.RISCV, 3, "x", "y", "z")
	p.Add(0, riscv.SW(mem.Const(1), mem.Const(0))) // gid 0: Wx on T0
	p.Add(1, riscv.LW(0, mem.Const(0)))            // gid 1: T1 reads x
	p.Add(1, riscv.SW(mem.Const(1), mem.Const(1))) // gid 2: Wy on T1
	p.Add(2, riscv.LW(0, mem.Const(1)))            // gid 3: T2 reads y
	p.Add(2, riscv.FenceLW())                      // gid 4: cumulative fence
	p.Add(2, riscv.SW(mem.Const(1), mem.Const(2))) // gid 5: Wz
	// Choose the execution where T1 reads Wx and T2 reads Wy.
	x := executionWhere(t, p, func(x *mem.Execution) bool {
		return x.RF[1] == 0 && x.RF[3] == 2
	})
	m := NMM(Ours)
	g := m.BuildGraph(p, x)
	K := g.NumNodes() / len(p.Mem().Events())
	b := &builder{m: m, p: p, x: x, ev: p.Mem().Events(), C: 3, K: K, g: g}
	acum := map[int]bool{}
	for _, w := range b.acumAppend(p.Mem().Threads[2], 1, nil) {
		acum[w] = true
	}
	if !acum[2] {
		t.Error("A-cum must contain the directly observed write Wy")
	}
	if !acum[0] {
		t.Error("A-cum must recursively contain Wx (observed by T1 before Wy)")
	}
	if acum[5] {
		t.Error("A-cum must not contain the fencing thread's own later store")
	}
}

// TestReleaseChainWalk: the ISA-level release sequence follows AMO
// write-backs to their sources.
func TestReleaseChainWalk(t *testing.T) {
	p := isa.NewProgram(isa.RISCV, 1, "x")
	p.Add(0, riscv.AMOStore(mem.Const(1), mem.Const(0), false, true, false)) // gid 0: release
	p.Add(1, riscv.AMOSwap(0, mem.Const(2), mem.Const(0), false, false, false))
	// gid 1 swaps, reading gid 0's write.
	x := executionWhere(t, p, func(x *mem.Execution) bool { return x.RF[1] == 0 })
	m := NMM(Ours)
	g := m.BuildGraph(p, x)
	K := g.NumNodes() / len(p.Mem().Events())
	b := &builder{m: m, p: p, x: x, ev: p.Mem().Events(), C: 2, K: K, g: g}
	chain := b.releaseChain(1)
	if len(chain) != 2 || chain[0] != 1 || chain[1] != 0 {
		t.Errorf("release chain = %v, want [1 0]", chain)
	}
}

// TestA9likeCacheNodes: the A9like topology routes store visibility through
// GetM nodes.
func TestA9likeCacheNodes(t *testing.T) {
	p := isa.NewProgram(isa.RISCV, 1, "x")
	p.Add(0, riscv.SW(mem.Const(1), mem.Const(0)))
	p.Add(1, riscv.LW(0, mem.Const(0)))
	x := firstExecution(t, p)
	m := A9like(Curr)
	g := m.BuildGraph(p, x)
	K := g.NumNodes() / len(p.Mem().Events())
	b := &builder{m: m, p: p, x: x, ev: p.Mem().Events(), C: 2, K: K}
	if !g.HasEdge(b.sbEnter(0), b.getM(0)) {
		t.Error("A9like: missing SBEnter→GetM edge")
	}
	if !g.HasEdge(b.getM(0), b.visTo(0, 1)) {
		t.Error("A9like: missing GetM→visibility edge")
	}
	nmm := NMM(Curr)
	g2 := nmm.BuildGraph(p, x)
	if g2.HasEdge(b.sbEnter(0), b.getM(0)) {
		t.Error("nMM must not use cache-protocol nodes")
	}
}

// TestQuickOrderStrengtheningMonotone: strengthening one memory-order slot
// of a litmus variant never makes new outcomes observable — a cross-layer
// monotonicity property tying compile and uspec together.
func TestQuickOrderStrengtheningMonotone(t *testing.T) {
	shapes := []*litmus.Shape{litmus.MP, litmus.SB, litmus.CoRR}
	stronger := func(o c11.Order, k litmus.SlotKind) c11.Order {
		switch o {
		case c11.Rlx:
			if k == litmus.StoreSlot {
				return c11.Rel
			}
			return c11.Acq
		default:
			return c11.SC
		}
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		shape := shapes[rng.Intn(len(shapes))]
		orders := make([]c11.Order, len(shape.Slots))
		for i, k := range shape.Slots {
			cs := k.Choices()
			orders[i] = cs[rng.Intn(len(cs))]
		}
		slot := rng.Intn(len(orders))
		strengthened := append([]c11.Order(nil), orders...)
		strengthened[slot] = stronger(orders[slot], shape.Slots[slot])
		model := Models(Curr)[rng.Intn(7)]
		weakTest := shape.Instantiate(orders)
		strongTest := shape.Instantiate(strengthened)
		wp, err := compile.Compile(compile.RISCVBaseIntuitive, weakTest.Prog)
		if err != nil {
			return false
		}
		sp, err := compile.Compile(compile.RISCVBaseIntuitive, strongTest.Prog)
		if err != nil {
			return false
		}
		wres, err := model.Evaluate(wp)
		if err != nil {
			return false
		}
		sres, err := model.Evaluate(sp)
		if err != nil {
			return false
		}
		for o := range sres.Observable {
			if !wres.Observable[o] {
				t.Logf("shape %s orders %v slot %d model %s: outcome %s observable only when stronger",
					shape.Name, orders, slot, model.FullName(), o)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
