package uspec

import (
	"testing"

	"tricheck/internal/c11"
	"tricheck/internal/compile"
	"tricheck/internal/litmus"
	"tricheck/internal/mem"
)

// sampledSuite returns every stride-th test of the paper suite.
func sampledSuite(stride int) []*litmus.Test {
	suite := litmus.PaperSuite()
	var out []*litmus.Test
	for i := 0; i < len(suite); i += stride {
		out = append(out, suite[i])
	}
	return out
}

// oracleModels is the model spread the equivalence tests sweep: every
// relaxation axis and both MCM variants, including the cache-protocol
// topology and the cumulative-fence/lazy-release (Ours) semantics.
func oracleModels() []*Model {
	return []*Model{
		WR(Curr), RWR(Curr), RWM(Curr), RMM(Curr), NWR(Curr), NMM(Curr), A9like(Curr),
		RMM(Ours), NMM(Ours), A9like(Ours),
		SCProof(), AlphaLike(), PowerA9(),
	}
}

// TestTwoTierMatchesMaterializedGraph is the skeleton/overlay equivalence
// property: for every candidate execution of a sampled paper-suite slice,
// on every model, the two-tier verdict (static skeleton + pooled dynamic
// overlay) must equal the single-graph oracle — the fully materialized
// uhb.Graph built by the historical one-pass path, whose edge set is the
// union of both tiers by construction.
func TestTwoTierMatchesMaterializedGraph(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive execution sweep is not short")
	}
	tests := sampledSuite(131)
	mappings := []*compile.Mapping{compile.RISCVBaseIntuitive, compile.RISCVAtomicsRefined}
	for _, tst := range tests {
		for _, mp := range mappings {
			prog, err := compile.Compile(mp, tst.Prog)
			if err != nil {
				t.Fatalf("compile %s: %v", tst.Name, err)
			}
			for _, m := range oracleModels() {
				pr := m.Prepare(prog)
				execs := 0
				err := mem.Enumerate(prog.Mem(), func(x *mem.Execution) bool {
					execs++
					fast := pr.ExecutionObservable(x)
					slow := m.BuildGraph(prog, x).Acyclic()
					if fast != slow {
						t.Errorf("%s on %s+%s, execution %s: two-tier=%v oracle=%v",
							tst.Name, mp.Name, m.FullName(), x, fast, slow)
						return false
					}
					return true
				})
				pr.Close()
				if err != nil && err != mem.ErrStopped {
					t.Fatalf("%s on %s: %v", tst.Name, m.FullName(), err)
				}
				if execs == 0 {
					t.Fatalf("%s on %s: no executions enumerated", tst.Name, m.FullName())
				}
			}
		}
	}
}

// TestTwoTierEdgeUnionMatchesGraph checks the stronger structural
// property on a dependency-carrying test under cumulative-fence
// semantics: the skeleton's edges plus an execution's overlay edges are
// exactly the materialized graph's edges, and reason codes resolve to the
// graph's reason strings.
func TestTwoTierEdgeUnionMatchesGraph(t *testing.T) {
	tst := litmus.MPAddrDep.Instantiate([]c11.Order{c11.Rel, c11.Rel, c11.Rlx, c11.Acq})
	prog, err := compile.Compile(compile.RISCVAtomicsRefined, tst.Prog)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []*Model{NMM(Ours), A9like(Curr), WR(Curr)} {
		pr := m.Prepare(prog)
		checked := 0
		err := mem.Enumerate(prog.Mem(), func(x *mem.Execution) bool {
			checked++
			_ = pr.ExecutionObservable(x) // leaves the overlay populated for x
			g := m.BuildGraph(prog, x)
			type edge struct{ from, to int }
			union := map[edge]string{}
			pr.Skeleton().ForEachEdge(func(from, to int, reason uint32) {
				if _, dup := union[edge{from, to}]; !dup {
					union[edge{from, to}] = Reason(reason).String()
				}
			})
			dynEdges := 0
			pr.ov.ForEachDynamicEdge(func(from, to int, reason uint32) {
				dynEdges++
				if _, dup := union[edge{from, to}]; !dup {
					union[edge{from, to}] = Reason(reason).String()
				}
			})
			if dynEdges == 0 {
				t.Errorf("%s: execution produced no dynamic edges", m.FullName())
			}
			if len(union) != g.NumEdges() {
				t.Errorf("%s: union has %d distinct edges, graph %d", m.FullName(), len(union), g.NumEdges())
				return false
			}
			for e := range union {
				if !g.HasEdge(e.from, e.to) {
					t.Errorf("%s: tiered edge (%d,%d) missing from graph", m.FullName(), e.from, e.to)
					return false
				}
			}
			return checked < 40 // bound the exhaustive sweep
		})
		pr.Close()
		if err != nil && err != mem.ErrStopped {
			t.Fatal(err)
		}
		if checked == 0 {
			t.Fatalf("%s: no executions", m.FullName())
		}
	}
}

// TestVerdictPathFormatsNoDiagnostics pins the lazy-diagnostics contract:
// a full Evaluate — skeleton construction included — must not format a
// single reason or label string. Explain, by contrast, must.
func TestVerdictPathFormatsNoDiagnostics(t *testing.T) {
	// Cover cumulative fences, AMO annotations and nMCA visibility: the
	// refined atomics mapping on NMM(Ours) exercises every dynamic pass.
	tst := litmus.WRC.Instantiate([]c11.Order{c11.SC, c11.SC, c11.Rel, c11.Acq, c11.Rlx})
	prog, err := compile.Compile(compile.RISCVAtomicsRefined, tst.Prog)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []*Model{NMM(Ours), A9like(Curr), WR(Curr)} {
		before := DiagnosticFormats()
		if _, err := m.Evaluate(prog); err != nil {
			t.Fatal(err)
		}
		if got := DiagnosticFormats() - before; got != 0 {
			t.Errorf("%s: verdict path formatted %d diagnostic strings, want 0", m.FullName(), got)
		}
	}
	// Sanity: the diagnostics path does format.
	before := DiagnosticFormats()
	if _, _, err := NMM(Ours).Explain(prog, tst.Specified); err != nil {
		t.Fatal(err)
	}
	if DiagnosticFormats() == before {
		t.Error("Explain formatted no diagnostics — counter not wired")
	}
}

// TestExplainPinnedCycle pins the deterministic cycle FindCycle reports
// for a known forbidden execution: mp with all-relaxed orders is forbidden
// on the strong WR pipeline, and the explanation must name exactly the
// rf → ppo-RR → fr → ppo-WW cycle.
func TestExplainPinnedCycle(t *testing.T) {
	tst := litmus.MP.Instantiate([]c11.Order{c11.Rlx, c11.Rlx, c11.Rlx, c11.Rlx})
	prog, err := compile.Compile(compile.RISCVBaseIntuitive, tst.Prog)
	if err != nil {
		t.Fatal(err)
	}
	obs, why, err := WR(Curr).Explain(prog, tst.Specified)
	if err != nil {
		t.Fatal(err)
	}
	if obs {
		t.Fatal("mp must be forbidden on WR")
	}
	const want = "forbidden on WR/riscv-curr: cycle " +
		"T0.i1.VisibleAll --[rf]--> T1.i0.Perform --[ppo-RR]--> " +
		"T1.i1.Perform --[fr]--> T0.i0.VisibleAll --[ppo-WW]--> T0.i1.VisibleAll"
	if why != want {
		t.Errorf("explanation drifted:\n got %q\nwant %q", why, want)
	}
}
