package uspec

import (
	"time"

	"tricheck/internal/isa"
	"tricheck/internal/mem"
	"tricheck/internal/obs"
	"tricheck/internal/uhb"
)

// Per-verdict phase timing histograms. Skeleton build and candidate
// enumeration are observed once per prepared evaluation (job
// granularity — two atomic-add observations against work that costs
// tens of microseconds to milliseconds). The overlay cycle check is the
// innermost loop: it is observed only under 1-in-N sampling
// (obs.SetCycleSampling), default off, so the PR-3 zero-allocation/
// zero-format verdict-path invariants hold with telemetry enabled.
const phaseHelp = "Per-verdict toolflow phase durations."

var (
	phaseSkeleton  = obs.Default.Histogram("tricheck_verdict_phase_seconds", phaseHelp, nil, obs.L("phase", "skeleton"))
	phaseEnumerate = obs.Default.Histogram("tricheck_verdict_phase_seconds", phaseHelp, nil, obs.L("phase", "enumerate"))
	phaseCycle     = obs.Default.Histogram("tricheck_verdict_phase_seconds", phaseHelp, nil, obs.L("phase", "cycle_check"))
)

// Prepared is a model × program pair compiled for repeated evaluation: the
// static µhb skeleton (node layout, pipeline/path order, execution-
// independent preserved program order, dependency and non-cumulative fence
// and AMO-annotation edges) is built exactly once, and every execution
// candidate is then checked by layering its dynamic edges (coherence,
// reads-from/from-reads, same-address refinements, cumulative closures)
// onto the skeleton through a pooled, resettable overlay.
//
// This is the verdict path: no uhb.Graph is materialized, no reason or
// label string is ever formatted, and steady-state evaluation performs no
// per-execution graph allocation. Diagnostics (Explain, witness graphs,
// DOT) still materialize a full Graph via Model.BuildGraph.
//
// A Prepared is NOT safe for concurrent use: the overlay and the dynamic
// builder's scratch buffers are shared across calls. Each worker of a
// sweep prepares (or borrows) its own.
type Prepared struct {
	m    *Model
	p    *isa.Program
	skel *uhb.Skeleton
	ov   *uhb.Overlay
	dyn  builder // tierDynamic template; x/ov bound per execution
}

// Prepare builds the static skeleton of p under the model's axioms and
// returns an evaluator that streams executions through it. Release the
// result with Close when the sweep is done so its overlay returns to the
// shared pool.
func (m *Model) Prepare(p *isa.Program) *Prepared {
	start := time.Now()
	C, K := m.layout(p)
	ev := p.Mem().Events()
	sb := builder{m: m, p: p, ev: ev, C: C, K: K, mode: tierStatic}
	sb.skel = uhb.NewSkeleton(len(ev) * K)
	sb.run()
	sb.skel.Freeze()
	phaseSkeleton.Observe(time.Since(start))
	return &Prepared{
		m:    m,
		p:    p,
		skel: sb.skel,
		ov:   uhb.AcquireOverlay(sb.skel),
		dyn:  builder{m: m, p: p, ev: ev, C: C, K: K, mode: tierDynamic},
	}
}

// Skeleton exposes the static tier (frozen; safe to share read-only).
func (pr *Prepared) Skeleton() *uhb.Skeleton { return pr.skel }

// ExecutionObservable reports whether execution x is observable on the
// model: whether skeleton + x's overlay is acyclic.
func (pr *Prepared) ExecutionObservable(x *mem.Execution) bool {
	pr.ov.Reset(pr.skel)
	b := &pr.dyn
	b.x = x
	b.ov = pr.ov
	b.run()
	b.x, b.ov = nil, nil
	return !pr.ov.HasCycle()
}

// Close returns the pooled overlay. The Prepared must not be used after.
func (pr *Prepared) Close() {
	if pr.ov != nil {
		uhb.ReleaseOverlay(pr.ov)
		pr.ov = nil
	}
}

// Evaluate computes the observable outcome set of the prepared program —
// the Figure 6 step 3 body, sharing one skeleton and one overlay across
// the whole candidate enumeration.
func (pr *Prepared) Evaluate() (*Result, error) {
	start := time.Now()
	res := &Result{
		Observable: map[mem.Outcome]bool{},
		All:        map[mem.Outcome]bool{},
	}
	// The innermost loop stays untimed unless cycle sampling is on: a
	// single atomic load per checked graph decides, and only every Nth
	// check pays for two monotonic clock reads.
	sampleN := uint64(obs.CycleSampling())
	err := mem.Enumerate(pr.p.Mem(), func(x *mem.Execution) bool {
		res.Candidates++
		o := x.OutcomeOf()
		res.All[o] = true
		if res.Observable[o] {
			return true // this outcome is already known observable
		}
		res.Graphs++
		if sampleN > 0 && uint64(res.Graphs)%sampleN == 0 {
			t0 := time.Now()
			ok := pr.ExecutionObservable(x)
			phaseCycle.Observe(time.Since(t0))
			if ok {
				res.Observable[o] = true
			}
			return true
		}
		if pr.ExecutionObservable(x) {
			res.Observable[o] = true
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	phaseEnumerate.Observe(time.Since(start))
	return res, nil
}

// Observable reports whether a specific outcome is observable, stopping at
// the first acyclic witness.
func (pr *Prepared) Observable(want mem.Outcome) (bool, error) {
	found := false
	err := mem.Enumerate(pr.p.Mem(), func(x *mem.Execution) bool {
		if x.OutcomeOf() != want {
			return true
		}
		if pr.ExecutionObservable(x) {
			found = true
			return false
		}
		return true
	})
	if err != nil && err != mem.ErrStopped {
		return false, err
	}
	return found, nil
}
