package uspec

import (
	"time"

	"tricheck/internal/isa"
	"tricheck/internal/mem"
	"tricheck/internal/obs"
	"tricheck/internal/uhb"
)

// Per-verdict phase timing histograms. Skeleton build and candidate
// enumeration are observed once per prepared evaluation (job
// granularity — two atomic-add observations against work that costs
// tens of microseconds to milliseconds). The overlay cycle check is the
// innermost loop: it is observed only under 1-in-N sampling
// (obs.SetCycleSampling), default off, so the PR-3 zero-allocation/
// zero-format verdict-path invariants hold with telemetry enabled.
const phaseHelp = "Per-verdict toolflow phase durations."

var (
	phaseSkeleton  = obs.Default.Histogram("tricheck_verdict_phase_seconds", phaseHelp, nil, obs.L("phase", "skeleton"))
	phaseEnumerate = obs.Default.Histogram("tricheck_verdict_phase_seconds", phaseHelp, nil, obs.L("phase", "enumerate"))
	phaseCycle     = obs.Default.Histogram("tricheck_verdict_phase_seconds", phaseHelp, nil, obs.L("phase", "cycle_check"))
)

// Prepared is a model × program pair compiled for repeated evaluation: the
// static µhb skeleton (node layout, pipeline/path order, execution-
// independent preserved program order, dependency and non-cumulative fence
// and AMO-annotation edges) is built exactly once, and every execution
// candidate is then checked by layering its dynamic edges (coherence,
// reads-from/from-reads, same-address refinements, cumulative closures)
// onto the skeleton through a pooled, resettable overlay.
//
// This is the verdict path: no uhb.Graph is materialized, no reason or
// label string is ever formatted, and steady-state evaluation performs no
// per-execution graph allocation. Diagnostics (Explain, witness graphs,
// DOT) still materialize a full Graph via Model.BuildGraph.
//
// A Prepared is NOT safe for concurrent use: the overlay and the dynamic
// builder's scratch buffers are shared across calls. Each worker of a
// sweep prepares (or borrows) its own.
type Prepared struct {
	m    *Model
	p    *isa.Program
	skel *uhb.Skeleton
	ov   *uhb.Overlay
	dyn  builder // tierDynamic template; x/ov bound per execution

	cov    Coverage // axiom attribution, accumulated across the evaluation
	cycBuf []uint32 // reused cycle-provenance buffer
}

// Prepare builds the static skeleton of p under the model's axioms and
// returns an evaluator that streams executions through it. Release the
// result with Close when the sweep is done so its overlay returns to the
// shared pool.
func (m *Model) Prepare(p *isa.Program) *Prepared {
	start := time.Now()
	C, K := m.layout(p)
	ev := p.Mem().Events()
	pr := &Prepared{m: m, p: p}
	sb := builder{m: m, p: p, ev: ev, C: C, K: K, mode: tierStatic, cov: &pr.cov}
	sb.skel = uhb.NewSkeleton(len(ev) * K)
	sb.run()
	sb.skel.Freeze()
	// Post-dedup static attribution: the reasons that survived Freeze own
	// the skeleton's edges (emission already set the Fired bits above).
	sb.skel.ForEachEdge(func(_, _ int, reason uint32) {
		pr.cov.Edges |= axiomBit(Reason(reason))
	})
	phaseSkeleton.Observe(time.Since(start))
	pr.skel = sb.skel
	pr.ov = uhb.AcquireOverlay(sb.skel)
	pr.dyn = builder{m: m, p: p, ev: ev, C: C, K: K, mode: tierDynamic, cov: &pr.cov}
	return pr
}

// Coverage returns the axiom-attribution bitsets accumulated so far:
// static edges since Prepare, dynamic edges and witnessing cycles across
// every execution checked through this Prepared.
func (pr *Prepared) Coverage() Coverage { return pr.cov }

// Skeleton exposes the static tier (frozen; safe to share read-only).
func (pr *Prepared) Skeleton() *uhb.Skeleton { return pr.skel }

// ExecutionObservable reports whether execution x is observable on the
// model: whether skeleton + x's overlay is acyclic. A forbidding cycle
// also records provenance: the axiom of every edge on the witnessing
// cycle joins the coverage Cycle bitset (a reused buffer and three-OR
// folds keep this on the zero-allocation path).
func (pr *Prepared) ExecutionObservable(x *mem.Execution) bool {
	pr.ov.Reset(pr.skel)
	b := &pr.dyn
	b.x = x
	b.ov = pr.ov
	b.run()
	b.x, b.ov = nil, nil
	reasons, cyclic := pr.ov.HasCycleReasons(pr.cycBuf[:0])
	for _, r := range reasons {
		pr.cov.Cycle |= axiomBit(Reason(r))
	}
	pr.cycBuf = reasons
	return !cyclic
}

// Close returns the pooled overlay. The Prepared must not be used after.
func (pr *Prepared) Close() {
	if pr.ov != nil {
		uhb.ReleaseOverlay(pr.ov)
		pr.ov = nil
	}
}

// Evaluate computes the observable outcome set of the prepared program —
// the Figure 6 step 3 body, sharing one skeleton and one overlay across
// the whole candidate enumeration.
func (pr *Prepared) Evaluate() (*Result, error) {
	start := time.Now()
	res := &Result{
		Observable: map[mem.Outcome]bool{},
		All:        map[mem.Outcome]bool{},
	}
	// The innermost loop stays untimed unless cycle sampling is on: a
	// single atomic load per checked graph decides, and only every Nth
	// check pays for two monotonic clock reads.
	sampleN := uint64(obs.CycleSampling())
	err := mem.Enumerate(pr.p.Mem(), func(x *mem.Execution) bool {
		res.Candidates++
		o := x.OutcomeOf()
		res.All[o] = true
		if res.Observable[o] {
			return true // this outcome is already known observable
		}
		res.Graphs++
		if sampleN > 0 && uint64(res.Graphs)%sampleN == 0 {
			t0 := time.Now()
			ok := pr.ExecutionObservable(x)
			phaseCycle.Observe(time.Since(t0))
			if ok {
				res.Observable[o] = true
			}
			return true
		}
		if pr.ExecutionObservable(x) {
			res.Observable[o] = true
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	phaseEnumerate.Observe(time.Since(start))
	return res, nil
}

// Observable reports whether a specific outcome is observable, stopping at
// the first acyclic witness.
func (pr *Prepared) Observable(want mem.Outcome) (bool, error) {
	found := false
	err := mem.Enumerate(pr.p.Mem(), func(x *mem.Execution) bool {
		if x.OutcomeOf() != want {
			return true
		}
		if pr.ExecutionObservable(x) {
			found = true
			return false
		}
		return true
	})
	if err != nil && err != mem.ErrStopped {
		return false, err
	}
	return found, nil
}
