package uspec

import (
	"time"

	"tricheck/internal/isa"
	"tricheck/internal/mem"
	"tricheck/internal/obs"
	"tricheck/internal/uhb"
)

// Per-verdict phase timing histograms. Skeleton build and candidate
// enumeration are observed once per prepared evaluation (job
// granularity — two atomic-add observations against work that costs
// tens of microseconds to milliseconds). The overlay cycle check is the
// innermost loop: it is observed only under 1-in-N sampling
// (obs.SetCycleSampling), default off, so the PR-3 zero-allocation/
// zero-format verdict-path invariants hold with telemetry enabled.
const phaseHelp = "Per-verdict toolflow phase durations."

var (
	phaseSkeleton  = obs.Default.Histogram("tricheck_verdict_phase_seconds", phaseHelp, nil, obs.L("phase", "skeleton"))
	phaseEnumerate = obs.Default.Histogram("tricheck_verdict_phase_seconds", phaseHelp, nil, obs.L("phase", "enumerate"))
	phaseCycle     = obs.Default.Histogram("tricheck_verdict_phase_seconds", phaseHelp, nil, obs.L("phase", "cycle_check"))

	// Incremental-engine effectiveness: how many candidate verdicts
	// reused the maintained topological order versus paid a from-scratch
	// rebuild (first candidate of each prepared evaluation). Accumulated
	// per Prepared and flushed on Close to keep the innermost loop free
	// of atomics.
	incrReuse   = obs.Default.Counter("tricheck_uhb_incremental_reuse_total", "Candidate acyclicity verdicts that reused the incremental topological order.")
	incrRebuild = obs.Default.Counter("tricheck_uhb_incremental_rebuild_total", "Candidate acyclicity verdicts that rebuilt the topological order from scratch.")
)

// IncrementalStats returns the process-wide incremental-engine counters
// (verdicts that reused the maintained order vs. rebuilt it), for the
// /v1/stats endpoint and the `tricheck top` report.
func IncrementalStats() (reuse, rebuild uint64) {
	return incrReuse.Value(), incrRebuild.Value()
}

// Prepared is a model × program pair compiled for repeated evaluation: the
// static µhb skeleton (node layout, pipeline/path order, execution-
// independent preserved program order, dependency and non-cumulative fence
// and AMO-annotation edges) is built exactly once, and every execution
// candidate is then checked by layering its dynamic edges (coherence,
// reads-from/from-reads, same-address refinements, cumulative closures)
// onto the skeleton through a pooled, resettable overlay.
//
// This is the verdict path: no uhb.Graph is materialized, no reason or
// label string is ever formatted, and steady-state evaluation performs no
// per-execution graph allocation. Diagnostics (Explain, witness graphs,
// DOT) still materialize a full Graph via Model.BuildGraph.
//
// A Prepared is NOT safe for concurrent use: the overlay and the dynamic
// builder's scratch buffers are shared across calls. Each worker of a
// sweep prepares (or borrows) its own.
type Prepared struct {
	m    *Model
	p    *isa.Program
	skel *uhb.Skeleton
	ov   *uhb.Overlay
	incr *uhb.Incr // incremental acyclicity tier, shared across candidates
	dyn  builder   // tierDynamic template; x/ov bound per execution

	cov    Coverage // axiom attribution, accumulated across the evaluation
	cycBuf []uint32 // reused cycle-provenance buffer

	// Local reuse/rebuild tallies, flushed to the obs counters on Close.
	reuse, rebuild uint64

	deltaOrder bool // Evaluate enumerates in minimal-change order
}

// SetDeltaOrder switches Evaluate to mem.EnumerateDelta's minimal-change
// candidate order, which maximizes how much of the incremental tier's
// topological order consecutive candidates reuse. Off by default: the
// verdict and outcome sets are identical either way, but order-derived
// statistics (the Graphs counter, which graphs feed coverage
// accumulation) follow the enumeration order, and the committed golden
// locks pin the natural backtracking order's values.
func (pr *Prepared) SetDeltaOrder(on bool) { pr.deltaOrder = on }

// Prepare builds the static skeleton of p under the model's axioms and
// returns an evaluator that streams executions through it. Release the
// result with Close when the sweep is done so its overlay returns to the
// shared pool.
func (m *Model) Prepare(p *isa.Program) *Prepared {
	start := time.Now()
	C, K := m.layout(p)
	ev := p.Mem().Events()
	pr := &Prepared{m: m, p: p}
	sb := builder{m: m, p: p, ev: ev, C: C, K: K, mode: tierStatic, cov: &pr.cov}
	sb.skel = uhb.AcquireSkeleton(len(ev) * K)
	sb.run()
	sb.skel.Freeze()
	// Post-dedup static attribution: the reasons that survived Freeze own
	// the skeleton's edges (emission already set the Fired bits above).
	sb.skel.ForEachEdge(func(_, _ int, reason uint32) {
		pr.cov.Edges |= axiomBit(Reason(reason))
	})
	phaseSkeleton.Observe(time.Since(start))
	pr.skel = sb.skel
	pr.ov = uhb.AcquireOverlay(sb.skel)
	pr.incr = uhb.AcquireIncr(sb.skel)
	pr.dyn = builder{m: m, p: p, ev: ev, C: C, K: K, mode: tierDynamic, cov: &pr.cov}
	return pr
}

// Coverage returns the axiom-attribution bitsets accumulated so far:
// static edges since Prepare, dynamic edges and witnessing cycles across
// every execution checked through this Prepared.
func (pr *Prepared) Coverage() Coverage { return pr.cov }

// Skeleton exposes the static tier (frozen; safe to share read-only).
func (pr *Prepared) Skeleton() *uhb.Skeleton { return pr.skel }

// ExecutionObservable reports whether execution x is observable on the
// model: whether skeleton + x's overlay is acyclic. The verdict comes
// from the incremental tier: the overlay is rebuilt per candidate as
// before (coverage attribution happens at emission), but instead of a
// full DFS the engine diffs the overlay's bitset rows against the edge
// set it already holds and repairs its maintained topological order
// edge by edge. A forbidding cycle still records provenance through the
// retained full DFS — the witnessing cycle, and therefore the axiom
// multiset OR-ed into the coverage Cycle bitset, is bit-identical to
// the pre-incremental path.
func (pr *Prepared) ExecutionObservable(x *mem.Execution) bool {
	pr.ov.Reset(pr.skel)
	b := &pr.dyn
	b.x = x
	b.ov = pr.ov
	b.run()
	b.x, b.ov = nil, nil
	cyclic, fresh := pr.incr.Sync(pr.ov)
	if fresh {
		pr.rebuild++
	} else {
		pr.reuse++
	}
	if cyclic {
		reasons, _ := pr.ov.HasCycleReasons(pr.cycBuf[:0])
		for _, r := range reasons {
			pr.cov.Cycle |= axiomBit(Reason(r))
		}
		pr.cycBuf = reasons
		return false
	}
	return true
}

// Close returns the pooled overlay and incremental engine, and flushes
// the reuse tallies. The Prepared must not be used after.
func (pr *Prepared) Close() {
	if pr.ov != nil {
		uhb.ReleaseOverlay(pr.ov)
		pr.ov = nil
	}
	if pr.incr != nil {
		uhb.ReleaseIncr(pr.incr)
		pr.incr = nil
	}
	if pr.skel != nil {
		uhb.ReleaseSkeleton(pr.skel)
		pr.skel = nil
	}
	if pr.reuse > 0 {
		incrReuse.Add(pr.reuse)
		pr.reuse = 0
	}
	if pr.rebuild > 0 {
		incrRebuild.Add(pr.rebuild)
		pr.rebuild = 0
	}
}

// Evaluate computes the observable outcome set of the prepared program —
// the Figure 6 step 3 body, sharing one skeleton and one overlay across
// the whole candidate enumeration.
func (pr *Prepared) Evaluate() (*Result, error) {
	start := time.Now()
	res := &Result{}
	// Outcomes are interned: the per-candidate bookkeeping runs on dense
	// ids against slices, and the outcome maps are built once at the end.
	// Ids are assigned in first-seen order, so the skip-if-known-
	// observable logic — and therefore the Graphs counter — is
	// bit-identical to the map-based loop.
	cache := mem.AcquireOutcomeCache(pr.p.Mem())
	defer mem.ReleaseOutcomeCache(cache)
	var obsv []bool
	// The innermost loop stays untimed unless cycle sampling is on: a
	// single atomic load per checked graph decides, and only every Nth
	// check pays for two monotonic clock reads.
	sampleN := uint64(obs.CycleSampling())
	enum := mem.Enumerate
	if pr.deltaOrder {
		enum = mem.EnumerateDelta
	}
	err := enum(pr.p.Mem(), func(x *mem.Execution) bool {
		res.Candidates++
		_, id := cache.Lookup(x)
		if id == len(obsv) {
			obsv = append(obsv, false)
		}
		if obsv[id] {
			return true // this outcome is already known observable
		}
		res.Graphs++
		if sampleN > 0 && uint64(res.Graphs)%sampleN == 0 {
			t0 := time.Now()
			ok := pr.ExecutionObservable(x)
			phaseCycle.Observe(time.Since(t0))
			if ok {
				obsv[id] = true
			}
			return true
		}
		if pr.ExecutionObservable(x) {
			obsv[id] = true
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	outs := cache.Outcomes()
	res.All = make(map[mem.Outcome]bool, len(outs))
	res.Observable = make(map[mem.Outcome]bool, len(outs))
	for id, o := range outs {
		res.All[o] = true
		if obsv[id] {
			res.Observable[o] = true
		}
	}
	phaseEnumerate.Observe(time.Since(start))
	return res, nil
}

// Observable reports whether a specific outcome is observable, stopping at
// the first acyclic witness.
func (pr *Prepared) Observable(want mem.Outcome) (bool, error) {
	found := false
	err := mem.Enumerate(pr.p.Mem(), func(x *mem.Execution) bool {
		if x.OutcomeOf() != want {
			return true
		}
		if pr.ExecutionObservable(x) {
			found = true
			return false
		}
		return true
	})
	if err != nil && err != mem.ErrStopped {
		return false, err
	}
	return found, nil
}
