package uspec

// Axiom coverage: every µhb edge's Reason code maps to a small dense
// axiom index, so a whole evaluation's attribution fits in three uint64
// bitsets (Coverage) and folds into per-model counters without touching
// the verdict path's allocation or formatting budget.
//
// The axiom space is the base reason codes plus the fence axiom split by
// ordered access pair (RR/RW/WW/WR). Fence parameterization beyond the
// pair — predecessor/successor access classes and cumulativity level,
// bits 8–13 of the Reason — intentionally collapses: those bits describe
// *which* fence instruction fired the axiom, not which ordering axiom
// fired, and keeping the space under 64 is what makes the per-verdict
// record three register-sized ORs.

// NumAxioms is the size of the axiom coverage space: one index per base
// reason code below rFence, then the four fence pairs.
const NumAxioms = int(rFence) + 4

// axiomIndex maps a reason code to its dense axiom index. Total and
// injective on the emitted reason space: every non-fence base code maps
// to itself, and the four fence pairs take the indices above rFence
// (axiom_test.go pins the catalogue against silent aliasing).
func axiomIndex(r Reason) int {
	base := r & 0xff
	if base != rFence {
		return int(base)
	}
	return int(rFence) + int(r>>14&3)
}

// axiomBit returns the Coverage bitset bit of a reason code.
func axiomBit(r Reason) uint64 { return 1 << axiomIndex(r) }

// AxiomName returns the display name of axiom index i. Unlike
// Reason.String this never counts as a diagnostic format: it renders
// from the static catalogue, for reports, not for verdicts.
func AxiomName(i int) string {
	if i >= 0 && i < int(rFence) {
		return reasonNames[i]
	}
	return "fence-" + fencePairNames[i-int(rFence)]
}

// AxiomNames returns the full axiom catalogue in index order — the
// schema of every Coverage bitset and of the coverage ledger built on
// top of them.
func AxiomNames() []string {
	out := make([]string, NumAxioms)
	for i := range out {
		out[i] = AxiomName(i)
	}
	return out
}

// Coverage is the axiom-attribution record of one prepared evaluation:
// three bitsets indexed by axiom index, accumulated across the job's
// skeleton build and every execution candidate. Recording is three OR
// instructions per edge and per cycle hop — safe on the zero-allocation
// verdict path.
type Coverage struct {
	// Fired: axioms that demanded at least one edge, counted at emission
	// time — before Skeleton/Graph first-reason-wins dedup — so an axiom
	// whose every edge collapsed onto an earlier axiom's still counts.
	Fired uint64
	// Edges: axioms owning at least one stored edge after dedup: the
	// reason on a frozen skeleton CSR entry or an overlay record (the
	// overlay keeps duplicates, so dynamic axioms own what they fire).
	Edges uint64
	// Cycle: axioms with an edge on at least one witnessing cycle — a
	// cycle that forbade a candidate execution during this evaluation.
	Cycle uint64
}

// Merge folds another coverage record into c.
func (c *Coverage) Merge(o Coverage) {
	c.Fired |= o.Fired
	c.Edges |= o.Edges
	c.Cycle |= o.Cycle
}
