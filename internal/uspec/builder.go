package uspec

import (
	"fmt"

	"tricheck/internal/isa"
	"tricheck/internal/mem"
	"tricheck/internal/uhb"
)

// Node slots per instruction. Every instruction reserves the full layout;
// unused slots remain isolated nodes and cannot affect acyclicity.
const (
	slotFetch = iota
	slotExec
	slotPerform // loads and AMO read parts perform here
	slotSBEnter // stores and AMO write parts enter the store buffer
	slotGetM    // A9like: write-permission request (cache protocol)
	slotVis0    // first visibility slot; nMCA uses one per core
)

// tier selects which half of the two-tier µhb graph a builder run emits.
//
// The axiom passes below are written once and shared by all three tiers:
// every edge-producing statement is annotated static (addS) or dynamic
// (addD) according to whether it consults the execution candidate
// (rf/mo/resolved locations) or only the compiled program and model
// configuration. A tierStatic run emits the static edges into a
// uhb.Skeleton (built once per program × model), a tierDynamic run emits
// the dynamic edges into a pooled uhb.Overlay (once per execution), and a
// tierBoth run emits everything, in the original single-graph order, into
// a fully materialized uhb.Graph for diagnostics (Explain, witnesses,
// DOT). tierBoth is the zero value so ad-hoc builders behave like the
// historical single-tier one.
type tier uint8

const (
	tierBoth    tier = iota // materialize: every edge into a diagnostics Graph
	tierStatic              // execution-independent edges into a Skeleton
	tierDynamic             // execution-dependent edges into an Overlay
)

// builder constructs (one tier of) the µhb graph of an execution candidate.
type builder struct {
	m *Model
	p *isa.Program
	x *mem.Execution // nil for tierStatic runs
	g *uhb.Graph     // tierBoth sink

	skel *uhb.Skeleton // tierStatic sink
	ov   *uhb.Overlay  // tierDynamic sink
	mode tier
	cov  *Coverage // optional axiom attribution (two-tier runs only)

	ev []*mem.Event
	C  int // cores (threads)
	K  int // node slots per instruction

	// Reusable scratch for the dynamic passes, so a Prepared evaluation
	// streams every execution of a sweep through one buffer set.
	predR, predW, succR, succW []int
	cumMark                    []bool
	cumFront                   []int
	cumBuf                     []int
	frBuf                      []int
}

// layout computes the node layout shared by all tiers of a (model,
// program) pair.
func (m *Model) layout(p *isa.Program) (C, K int) {
	C = p.NumThreads()
	if C < 1 {
		C = 1
	}
	maxV := 1
	if m.NMCA {
		maxV = C
	}
	K = slotVis0 + maxV + 1 // + Complete
	return C, K
}

// BuildGraph constructs the fully materialized µhb graph of execution x of
// program p under the model's axioms — the diagnostics path, with string
// reasons and node labels. The graph is acyclic iff the execution is
// observable. The verdict path does not use it; see Model.Prepare.
func (m *Model) BuildGraph(p *isa.Program, x *mem.Execution) *uhb.Graph {
	C, K := m.layout(p)
	b := &builder{m: m, p: p, x: x, ev: p.Mem().Events(), C: C, K: K, mode: tierBoth}
	b.g = uhb.NewGraph(len(b.ev) * K)
	b.label()
	b.run()
	return b.g
}

// run executes the axiom passes in the historical single-graph order; each
// pass emits only the edges belonging to the builder's tier.
func (b *builder) run() {
	b.pipeline()
	b.ppo()
	b.deps()
	b.coherence()
	b.values()
	b.fences()
	b.amoBits()
}

// dyn reports whether this run may consult the execution candidate.
func (b *builder) dyn() bool { return b.mode != tierStatic }

// addS emits an execution-independent edge. Coverage attribution happens
// here, at emission — before Skeleton dedup — so every contributing
// axiom's Fired bit survives even when its edge collapses onto an
// earlier axiom's (first-reason-wins keeps only one stored reason; the
// Edges bits are recomputed from the frozen CSR in Prepare).
func (b *builder) addS(from, to int, r Reason) {
	switch b.mode {
	case tierBoth:
		b.g.AddEdge(from, to, r.String())
	case tierStatic:
		if b.cov != nil {
			b.cov.Fired |= axiomBit(r)
		}
		b.skel.AddEdge(from, to, uint32(r))
	}
}

// addD emits an execution-dependent edge. The overlay never dedups, so a
// fired dynamic axiom always owns a stored edge record too.
func (b *builder) addD(from, to int, r Reason) {
	switch b.mode {
	case tierBoth:
		b.g.AddEdge(from, to, r.String())
	case tierDynamic:
		if b.cov != nil {
			bit := axiomBit(r)
			b.cov.Fired |= bit
			b.cov.Edges |= bit
		}
		b.ov.AddEdge(from, to, uint32(r))
	}
}

// add dispatches on the static flag — for shared loops whose elements mix
// tiers (a fence's own-thread vs cumulative predecessor writes).
func (b *builder) add(from, to int, r Reason, static bool) {
	if static {
		b.addS(from, to, r)
	} else {
		b.addD(from, to, r)
	}
}

// Node accessors.
func (b *builder) node(gid, slot int) int { return gid*b.K + slot }
func (b *builder) fetch(gid int) int      { return b.node(gid, slotFetch) }
func (b *builder) exec(gid int) int       { return b.node(gid, slotExec) }
func (b *builder) perform(gid int) int    { return b.node(gid, slotPerform) }
func (b *builder) sbEnter(gid int) int    { return b.node(gid, slotSBEnter) }
func (b *builder) getM(gid int) int       { return b.node(gid, slotGetM) }
func (b *builder) complete(gid int) int   { return b.node(gid, b.K-1) }

// atomicWrite reports whether write w's visibility is a single multi-copy-
// atomic event: always for MCA/rMCA substrates, and for AMOs carrying the
// store-atomicity annotation (aq+rl under Curr, the .sc bit under Ours).
func (b *builder) atomicWrite(w int) bool {
	if !b.m.NMCA {
		return true
	}
	ins := b.p.InstrOf(w)
	if !ins.Op.IsAMO() {
		return false
	}
	if b.m.Variant == Curr {
		return ins.Aq && ins.Rl
	}
	return ins.SCBit
}

// visTo returns the node at which write w becomes visible to core c.
func (b *builder) visTo(w, c int) int {
	if b.atomicWrite(w) {
		return b.node(w, slotVis0)
	}
	return b.node(w, slotVis0+c)
}

// numVis returns the number of distinct visibility nodes of write w;
// visN(w, i) for i < numVis(w) enumerates them. The pair replaces the
// slice-returning visAll on the allocation-free paths.
func (b *builder) numVis(w int) int {
	if b.atomicWrite(w) {
		return 1
	}
	return b.C
}

// visN returns write w's i-th visibility node.
func (b *builder) visN(w, i int) int {
	if b.atomicWrite(w) {
		return b.node(w, slotVis0)
	}
	return b.node(w, slotVis0+i)
}

// visAll returns the distinct visibility nodes of write w (allocates; use
// numVis/visN on hot paths).
func (b *builder) visAll(w int) []int {
	out := make([]int, b.numVis(w))
	for i := range out {
		out[i] = b.visN(w, i)
	}
	return out
}

// scAMO reports whether the instruction is a "sequentially consistent" AMO:
// one that participates in the ISA's global SC total order (aq+rl under
// Curr; the .sc bit under Ours).
func (b *builder) scAMO(ins *isa.Instr) bool {
	if !ins.Op.IsAMO() {
		return false
	}
	if b.m.Variant == Curr {
		return ins.Aq && ins.Rl
	}
	return ins.SCBit
}

// label names every node for diagnostics (tierBoth only; the skeleton and
// overlay never carry labels).
func (b *builder) label() {
	for _, e := range b.ev {
		diagFormats.Add(1)
		base := fmt.Sprintf("T%d.i%d", e.Thread, e.Index)
		b.g.SetLabel(b.fetch(e.GID), base+".Fetch")
		b.g.SetLabel(b.exec(e.GID), base+".Execute")
		b.g.SetLabel(b.perform(e.GID), base+".Perform")
		b.g.SetLabel(b.sbEnter(e.GID), base+".SBEnter")
		b.g.SetLabel(b.getM(e.GID), base+".GetM")
		b.g.SetLabel(b.complete(e.GID), base+".Complete")
		if e.IsWrite() {
			for i, v := range b.visAll(e.GID) {
				if b.atomicWrite(e.GID) {
					b.g.SetLabel(v, base+".VisibleAll")
				} else if b.m.NMCA {
					diagFormats.Add(1)
					b.g.SetLabel(v, fmt.Sprintf("%s.Visible@C%d", base, i))
				} else {
					b.g.SetLabel(v, base+".Visible")
				}
			}
		}
	}
}

// pipeline adds the in-order front-end chains and per-instruction paths.
// Entirely static: it consults only the program and model configuration.
func (b *builder) pipeline() {
	if b.mode == tierDynamic {
		return
	}
	for _, th := range b.p.Mem().Threads {
		for i, e := range th {
			if i+1 < len(th) {
				nxt := th[i+1]
				b.addS(b.fetch(e.GID), b.fetch(nxt.GID), rPoFetch)
				b.addS(b.exec(e.GID), b.exec(nxt.GID), rInOrderExecute)
				b.addS(b.complete(e.GID), b.complete(nxt.GID), rInOrderCommit)
			}
			g := e.GID
			b.addS(b.fetch(g), b.exec(g), rPath)
			if e.IsRead() {
				b.addS(b.exec(g), b.perform(g), rPath)
				b.addS(b.perform(g), b.complete(g), rPath)
			}
			if e.IsWrite() {
				if e.IsRead() { // AMO: read before write
					b.addS(b.perform(g), b.sbEnter(g), rAmoReadBeforeWrite)
				} else {
					b.addS(b.exec(g), b.sbEnter(g), rPath)
				}
				b.addS(b.sbEnter(g), b.complete(g), rPath)
				if b.m.CacheProtocol {
					// A9like: the store requests write permission (GetM)
					// and then invalidations/forwards reach each core
					// independently (non-stalling directory).
					b.addS(b.sbEnter(g), b.getM(g), rCacheGetM)
					for i := 0; i < b.numVis(g); i++ {
						b.addS(b.getM(g), b.visN(g, i), rCacheInvOrForward)
					}
				} else {
					for i := 0; i < b.numVis(g); i++ {
						b.addS(b.sbEnter(g), b.visN(g, i), rSbDrain)
					}
				}
			}
			if e.Kind == mem.Fence {
				b.addS(b.exec(g), b.complete(g), rPath)
			}
		}
	}
}

// sameAddr reports whether two events resolved to the same location
// (dynamic: resolved locations can depend on register-carried addresses).
func (b *builder) sameAddr(a, bb int) bool { return b.x.SameLoc(a, bb) }

// ppo adds preserved-program-order edges according to the relaxation
// profile. Mixed tier: unconditional orders are static, same-address
// refinements consult the execution's resolved locations.
func (b *builder) ppo() {
	for _, th := range b.p.Mem().Threads {
		for i := 0; i < len(th); i++ {
			for j := i + 1; j < len(th); j++ {
				a, c := th[i], th[j]
				ag, cg := a.GID, c.GID
				// R → R
				if a.IsRead() && c.IsRead() {
					if !b.m.RelaxRR {
						b.addS(b.perform(ag), b.perform(cg), rPpoRR)
					} else if b.m.OrderSameAddrRR && b.dyn() && b.sameAddr(ag, cg) {
						b.addD(b.perform(ag), b.perform(cg), rPpoRRSameAddr)
					}
				}
				// R → W: maintained unless RelaxRR, always for same address.
				if a.IsRead() && c.IsWrite() {
					if !b.m.RelaxRR {
						for v := 0; v < b.numVis(cg); v++ {
							b.addS(b.perform(ag), b.visN(cg, v), rPpoRW)
						}
					} else if b.dyn() && b.sameAddr(ag, cg) {
						for v := 0; v < b.numVis(cg); v++ {
							b.addD(b.perform(ag), b.visN(cg, v), rPpoRW)
						}
					}
				}
				// W → R: relaxed on every Table 7 model (store buffer);
				// enforced only on the SC ablation. Same-address W→R with
				// no forwarding: the load stalls until the store drains.
				switch {
				case !a.IsWrite() || !c.IsRead():
				case !b.m.RelaxWR:
					for v := 0; v < b.numVis(ag); v++ {
						b.addS(b.visN(ag, v), b.perform(cg), rPpoWR)
					}
				case b.p.InstrOf(ag).Op.IsAMO() && !b.m.NMCA:
					// AMO writes execute at the memory system (they
					// need the old value), so they are never buffered:
					// on MCA/rMCA substrates — where at-memory means
					// visible — later loads perform after the AMO's
					// write. On nMCA substrates per-core visibility
					// may still lag (non-stalling directory), so no
					// such edge exists there.
					for v := 0; v < b.numVis(ag); v++ {
						b.addS(b.visN(ag, v), b.perform(cg), rAmoNotBuffered)
					}
				case b.dyn() && b.sameAddr(ag, cg) && b.x.RF[cg] != ag:
					// The load reads something other than the newest
					// same-address SB entry, so that entry must have
					// drained first.
					for v := 0; v < b.numVis(ag); v++ {
						b.addD(b.visN(ag, v), b.perform(cg), rSbSameAddrDrain)
					}
					// Reading the own store without forwarding means
					// waiting for it to reach memory (rf adds the
					// visibility edge; nothing extra needed there).
				}
				// W → W: FIFO drain unless RelaxWW; same address always.
				if a.IsWrite() && c.IsWrite() {
					if !b.m.RelaxWW {
						b.pointwiseVis(ag, cg, rPpoWW, true)
					} else if b.dyn() && b.sameAddr(ag, cg) {
						b.pointwiseVis(ag, cg, rPpoWW, false)
					}
					if b.dyn() && b.sameAddr(ag, cg) {
						b.addD(b.sbEnter(ag), b.sbEnter(cg), rSbFifoSameAddr)
					}
				}
			}
		}
	}
}

// pointwiseVis orders write a's visibility before write c's, per core.
func (b *builder) pointwiseVis(ag, cg int, r Reason, static bool) {
	for c := 0; c < b.C; c++ {
		b.add(b.visTo(ag, c), b.visTo(cg, c), r, static)
	}
}

// deps adds syntactic address/data/control dependency edges: the dependee
// cannot begin executing until the source load has performed. Static: the
// dependency structure is syntactic, not value-dependent.
func (b *builder) deps() {
	if !b.m.RespectDeps || b.mode == tierDynamic {
		return
	}
	for _, th := range b.p.Mem().Threads {
		for _, e := range th {
			add := func(srcIdx int, r Reason) {
				src := th[srcIdx]
				b.addS(b.perform(src.GID), b.exec(e.GID), r)
			}
			if e.Kind != mem.Fence {
				if e.Addr.Kind == mem.OpReg {
					if s := b.sourceLoad(th, e.Index, e.Addr.Reg); s >= 0 {
						add(s, rDepAddr)
					}
				}
				if e.IsWrite() && e.Data.Kind == mem.OpReg {
					if s := b.sourceLoad(th, e.Index, e.Data.Reg); s >= 0 {
						add(s, rDepData)
					}
				}
			}
			for _, d := range e.CtrlDepOn {
				add(d, rDepCtrl)
			}
		}
	}
}

// sourceLoad finds the latest load before idx writing register reg.
func (b *builder) sourceLoad(th []*mem.Event, idx, reg int) int {
	for i := idx - 1; i >= 0; i-- {
		if th[i].IsRead() && th[i].Dst == reg {
			return i
		}
	}
	return -1
}

// coherence adds per-core pointwise visibility edges along mo (the ws
// relation): all cores agree on the order of same-location stores.
// Dynamic: mo is the execution's coherence choice.
func (b *builder) coherence() {
	if !b.dyn() {
		return
	}
	for _, ws := range b.x.MO {
		for i := 0; i < len(ws); i++ {
			for j := i + 1; j < len(ws); j++ {
				b.pointwiseVis(ws[i], ws[j], rWs, false)
			}
		}
	}
}

// values adds reads-from and from-reads edges. Dynamic: rf/fr are the
// execution's value choices.
func (b *builder) values() {
	if !b.dyn() {
		return
	}
	for _, e := range b.ev {
		if !e.IsRead() {
			continue
		}
		r := e.GID
		src := b.x.RF[r]
		if src != mem.InitWrite {
			w := b.ev[src]
			plainLoad := !b.p.InstrOf(r).Op.IsAMO()
			forwardable := b.p.InstrOf(src).Op == isa.OpStore // AMOs execute at memory
			if w.Thread == e.Thread && b.m.Forwarding && forwardable && plainLoad {
				// Plain load forwarding from the local store buffer.
				b.addD(b.sbEnter(src), b.perform(r), rRfForward)
			} else {
				// Reads observe the write once visible to their core
				// (AMO reads always go to the memory system).
				b.addD(b.visTo(src, e.Thread), b.perform(r), rRf)
			}
		}
		b.frBuf = b.x.AppendFRSuccessors(r, b.frBuf[:0])
		for _, w2 := range b.frBuf {
			b.addD(b.perform(r), b.visTo(w2, e.Thread), rFr)
		}
	}
}

// accessParts reports whether the event participates in a fence class as a
// read and/or as a write.
func accessParts(e *mem.Event) (rd, wr bool) {
	return e.IsRead(), e.IsWrite()
}

// fences adds fence-ordering edges for every fence instruction, including
// cumulativity for the lwf/hwf proposals (and Power lwsync/sync). Mixed
// tier: same-thread predecessor/successor sets are static, the
// A-cumulative closure consults rf.
func (b *builder) fences() {
	for _, th := range b.p.Mem().Threads {
		for _, f := range th {
			if f.Kind != mem.Fence {
				continue
			}
			ins := b.p.InstrOf(f.GID)
			if ins.Op != isa.OpFence {
				continue
			}
			b.fenceEdges(th, f, ins)
		}
	}
}

func (b *builder) fenceEdges(th []*mem.Event, f *mem.Event, ins *isa.Instr) {
	if b.mode == tierDynamic && ins.Cum == isa.CumNone {
		return // a non-cumulative fence contributes no dynamic edges
	}
	// Same-thread predecessor/successor event GIDs by access part (static).
	b.predR, b.predW = b.predR[:0], b.predW[:0]
	b.succR, b.succW = b.succR[:0], b.succW[:0]
	for _, e := range th {
		if e.Kind == mem.Fence || e.GID == f.GID {
			continue
		}
		rd, wr := accessParts(e)
		if e.Index < f.Index {
			if rd && ins.Pred.HasR() {
				b.predR = append(b.predR, e.GID)
			}
			if wr && ins.Pred.HasW() {
				b.predW = append(b.predW, e.GID)
			}
		} else {
			if rd && ins.Succ.HasR() {
				b.succR = append(b.succR, e.GID)
			}
			if wr && ins.Succ.HasW() {
				b.succW = append(b.succW, e.GID)
			}
		}
	}
	// Cumulativity (dynamic): writes observed by the fencing thread before
	// the fence join the predecessor set (recursively through reads-from).
	nStatic := len(b.predW)
	if ins.Cum != isa.CumNone && b.dyn() {
		b.predW = b.acumAppend(th, f.Index, b.predW)
	}
	base := fenceReason(ins)
	// (R, R) and (R, W)
	for _, a := range b.predR {
		for _, c := range b.succR {
			b.addS(b.perform(a), b.perform(c), base|fenceRR)
		}
		for _, c := range b.succW {
			for v := 0; v < b.numVis(c); v++ {
				b.addS(b.perform(a), b.visN(c, v), base|fenceRW)
			}
		}
	}
	for i, a := range b.predW {
		static := i < nStatic
		// (W, W): per-core pointwise visibility order.
		for _, c := range b.succW {
			if a == c {
				continue
			}
			b.pointwiseVis(a, c, base|fenceWW, static)
		}
		// (W, R): full flush — the write must be visible to every core
		// before the successor load performs. Plain and heavyweight fences
		// order W→R; lightweight fences never do (Section 2.3.3).
		if ins.Cum != isa.CumLW {
			for _, c := range b.succR {
				if a == c {
					continue
				}
				for v := 0; v < b.numVis(a); v++ {
					b.add(b.visN(a, v), b.perform(c), base|fenceWR, static)
				}
			}
		}
	}
}

// acumAppend appends the A-cumulative predecessor writes of a fence (or of
// a release, under Ours semantics) at position idx of thread th to dst:
// writes read by the thread's earlier loads, closed recursively over writes
// that performed before those writes on their own threads. Allocation-free
// in steady state: dedup marks and the worklist live in builder scratch.
func (b *builder) acumAppend(th []*mem.Event, idx int, dst []int) []int {
	if len(b.cumMark) < len(b.ev) {
		b.cumMark = make([]bool, len(b.ev))
	}
	mark := b.cumMark
	start := len(dst)
	ownThread := -1
	if len(th) > 0 {
		ownThread = th[0].Thread
	}
	frontier := b.cumFront[:0]
	// Seed: sources of own pre-fence reads.
	for _, e := range th {
		if e.Index >= idx || !e.IsRead() {
			continue
		}
		if src := b.x.RF[e.GID]; src != mem.InitWrite && b.ev[src].Thread != ownThread && !mark[src] {
			mark[src] = true
			dst = append(dst, src)
			frontier = append(frontier, src)
		}
	}
	// Close over: reads program-order-before a member on the member's
	// thread (including an AMO member's own read part) contribute their
	// sources ("performed prior to an access in the predecessor set",
	// Section 2.3.2).
	for len(frontier) > 0 {
		w := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		we := b.ev[w]
		for _, e := range b.p.Mem().Threads[we.Thread] {
			if e.Index > we.Index || !e.IsRead() {
				continue
			}
			if src := b.x.RF[e.GID]; src != mem.InitWrite && !mark[src] && b.ev[src].Thread != ownThread {
				mark[src] = true
				dst = append(dst, src)
				frontier = append(frontier, src)
			}
		}
	}
	b.cumFront = frontier[:0]
	for _, w := range dst[start:] {
		mark[w] = false
	}
	return dst
}

// releaseChain walks an ISA-level release sequence backwards: starting from
// a write w, follow AMO write-backs to their read sources until a
// non-AMO write (or init) is reached; returns the chain of writes visited.
// An acquire reading any element of the chain synchronizes with releases
// earlier in the chain, mirroring C11 release sequences through RMWs.
func (b *builder) releaseChain(w int) []int {
	var chain []int
	for w != mem.InitWrite {
		chain = append(chain, w)
		e := b.ev[w]
		if e.Kind != mem.RMW {
			break
		}
		w = b.x.RF[w]
	}
	return chain
}

// releaseChainContains reports whether target is on the release chain
// ending at write w — the allocation-free membership test the lazy-release
// pass uses instead of materializing releaseChain.
func (b *builder) releaseChainContains(w, target int) bool {
	for w != mem.InitWrite {
		if w == target {
			return true
		}
		e := b.ev[w]
		if e.Kind != mem.RMW {
			return false
		}
		w = b.x.RF[w]
	}
	return false
}

// amoBits adds the acquire/release/SC-annotation semantics of AMOs.
// Mixed tier: acquire, eager-release and SC-pair edges are static; lazy
// (cumulative) release synchronization consults rf.
func (b *builder) amoBits() {
	for _, th := range b.p.Mem().Threads {
		for _, e := range th {
			ins := b.p.InstrOf(e.GID)
			if !ins.Op.IsAMO() {
				continue
			}
			if ins.Aq && b.mode != tierDynamic {
				b.acquireEdges(th, e)
			}
			if ins.Rl {
				if b.m.Variant == Curr {
					if b.mode != tierDynamic {
						b.eagerReleaseEdges(th, e)
					}
				} else if b.dyn() {
					b.lazyReleaseEdges(th, e)
				}
			}
			if b.scAMO(ins) && b.mode != tierDynamic {
				b.scPairEdges(th, e)
			}
		}
	}
}

// acquireEdges: "no following memory operation can be observed to take
// place before the Acq operation" — the AMO's read performs, and its write
// becomes visible (per core), before later accesses do.
func (b *builder) acquireEdges(th []*mem.Event, a *mem.Event) {
	for _, c := range th {
		if c.Index <= a.Index || c.Kind == mem.Fence {
			continue
		}
		if c.IsRead() {
			b.addS(b.perform(a.GID), b.perform(c.GID), rAmoAqR)
		}
		if c.IsWrite() {
			for v := 0; v < b.numVis(c.GID); v++ {
				b.addS(b.perform(a.GID), b.visN(c.GID, v), rAmoAqW)
			}
			if a.IsWrite() {
				b.pointwiseVis(a.GID, c.GID, rAmoAqVis, true)
			}
		}
	}
}

// eagerReleaseEdges (riscv-curr): "the Rel operation cannot be observed to
// take place before any earlier memory operation" — earlier own reads
// perform, and earlier own writes become visible (per core), before the
// AMO's write does. Non-cumulative: observed remote writes are NOT ordered,
// which is exactly the Section 5.2.1 bug.
//
// For an AMO without a coherence-visible write (an AMO-load carrying rl,
// i.e. the intuitive mapping's SC load AMO.aq.rl), the spec's "cannot be
// observed to happen before any earlier memory operations in the same
// RISC-V thread" orders the AMO's read after earlier reads' performs and
// earlier writes' full visibility.
func (b *builder) eagerReleaseEdges(th []*mem.Event, a *mem.Event) {
	if !a.IsWrite() {
		for _, p := range th {
			if p.Index >= a.Index || p.Kind == mem.Fence {
				continue
			}
			if p.IsRead() {
				b.addS(b.perform(p.GID), b.perform(a.GID), rAmoRlLoadR)
			}
			if p.IsWrite() {
				for v := 0; v < b.numVis(p.GID); v++ {
					b.addS(b.visN(p.GID, v), b.perform(a.GID), rAmoRlLoadW)
				}
			}
		}
		return
	}
	for _, p := range th {
		if p.Index >= a.Index || p.Kind == mem.Fence {
			continue
		}
		if p.IsRead() {
			for v := 0; v < b.numVis(a.GID); v++ {
				b.addS(b.perform(p.GID), b.visN(a.GID, v), rAmoRlR)
			}
		}
		if p.IsWrite() {
			b.pointwiseVis(p.GID, a.GID, rAmoRlW, true)
		}
	}
}

// lazyReleaseEdges (riscv-ours, Section 5.2.3): the release imposes no
// unconditional visibility order. When an acquire on another core reads
// from the release, the release's cumulative predecessor set must be
// visible to that core before the acquire performs.
func (b *builder) lazyReleaseEdges(th []*mem.Event, a *mem.Event) {
	for _, r := range b.ev {
		if !r.IsRead() || r.Thread == a.Thread {
			continue
		}
		rIns := b.p.InstrOf(r.GID)
		if !rIns.Op.IsAMO() || !rIns.Aq {
			continue // only acquires synchronize (lazy cumulativity)
		}
		// The acquire must read the release's write, possibly through a
		// chain of intervening AMO write-backs (a release sequence).
		if !b.releaseChainContains(b.x.RF[r.GID], a.GID) {
			continue
		}
		// Predecessor set: own earlier accesses plus A-cumulative writes.
		for _, p := range th {
			if p.Index >= a.Index || p.Kind == mem.Fence {
				continue
			}
			if p.IsRead() {
				b.addD(b.perform(p.GID), b.perform(r.GID), rRelSyncR)
			}
			if p.IsWrite() {
				b.addD(b.visTo(p.GID, r.Thread), b.perform(r.GID), rRelSyncW)
			}
		}
		b.cumBuf = b.acumAppend(th, a.Index, b.cumBuf[:0])
		for _, w := range b.cumBuf {
			b.addD(b.visTo(w, r.Thread), b.perform(r.GID), rRelSyncCum)
		}
	}
}

// scPairEdges: SC AMOs appear in a global order consistent with program
// order ("observed by any other thread in the same global order of all
// sequentially consistent atomic memory operations"): two same-thread SC
// AMOs are fully ordered, read performs and write visibility alike.
func (b *builder) scPairEdges(th []*mem.Event, a *mem.Event) {
	for _, c := range th {
		if c.Index <= a.Index {
			continue
		}
		cIns := b.p.InstrOf(c.GID)
		if !b.scAMO(cIns) {
			continue
		}
		b.addS(b.perform(a.GID), b.perform(c.GID), rScOrder)
		if a.IsWrite() {
			for i := 0; i < b.numVis(a.GID); i++ {
				va := b.visN(a.GID, i)
				b.addS(va, b.perform(c.GID), rScOrder)
				if c.IsWrite() {
					for j := 0; j < b.numVis(c.GID); j++ {
						b.addS(va, b.visN(c.GID, j), rScOrder)
					}
				}
			}
		}
		if c.IsWrite() {
			for j := 0; j < b.numVis(c.GID); j++ {
				b.addS(b.perform(a.GID), b.visN(c.GID, j), rScOrder)
			}
		}
	}
}
