package uspec

import (
	"fmt"

	"tricheck/internal/isa"
	"tricheck/internal/mem"
	"tricheck/internal/uhb"
)

// Node slots per instruction. Every instruction reserves the full layout;
// unused slots remain isolated nodes and cannot affect acyclicity.
const (
	slotFetch = iota
	slotExec
	slotPerform // loads and AMO read parts perform here
	slotSBEnter // stores and AMO write parts enter the store buffer
	slotGetM    // A9like: write-permission request (cache protocol)
	slotVis0    // first visibility slot; nMCA uses one per core
)

// builder constructs the µhb graph of one execution candidate.
type builder struct {
	m *Model
	p *isa.Program
	x *mem.Execution
	g *uhb.Graph

	ev []*mem.Event
	C  int // cores (threads)
	K  int // node slots per instruction
}

// BuildGraph constructs the µhb graph of execution x of program p under the
// model's axioms. The graph is acyclic iff the execution is observable.
func (m *Model) BuildGraph(p *isa.Program, x *mem.Execution) *uhb.Graph {
	C := p.NumThreads()
	if C < 1 {
		C = 1
	}
	maxV := 1
	if m.NMCA {
		maxV = C
	}
	K := slotVis0 + maxV + 1 // + Complete
	b := &builder{m: m, p: p, x: x, ev: p.Mem().Events(), C: C, K: K}
	b.g = uhb.NewGraph(len(b.ev) * K)
	b.label()
	b.pipeline()
	b.ppo()
	b.deps()
	b.coherence()
	b.values()
	b.fences()
	b.amoBits()
	return b.g
}

// Node accessors.
func (b *builder) node(gid, slot int) int { return gid*b.K + slot }
func (b *builder) fetch(gid int) int      { return b.node(gid, slotFetch) }
func (b *builder) exec(gid int) int       { return b.node(gid, slotExec) }
func (b *builder) perform(gid int) int    { return b.node(gid, slotPerform) }
func (b *builder) sbEnter(gid int) int    { return b.node(gid, slotSBEnter) }
func (b *builder) getM(gid int) int       { return b.node(gid, slotGetM) }
func (b *builder) complete(gid int) int   { return b.node(gid, b.K-1) }

// atomicWrite reports whether write w's visibility is a single multi-copy-
// atomic event: always for MCA/rMCA substrates, and for AMOs carrying the
// store-atomicity annotation (aq+rl under Curr, the .sc bit under Ours).
func (b *builder) atomicWrite(w int) bool {
	if !b.m.NMCA {
		return true
	}
	ins := b.p.InstrOf(w)
	if !ins.Op.IsAMO() {
		return false
	}
	if b.m.Variant == Curr {
		return ins.Aq && ins.Rl
	}
	return ins.SCBit
}

// visTo returns the node at which write w becomes visible to core c.
func (b *builder) visTo(w, c int) int {
	if b.atomicWrite(w) {
		return b.node(w, slotVis0)
	}
	return b.node(w, slotVis0+c)
}

// visAll returns the distinct visibility nodes of write w.
func (b *builder) visAll(w int) []int {
	if b.atomicWrite(w) {
		return []int{b.node(w, slotVis0)}
	}
	out := make([]int, b.C)
	for c := 0; c < b.C; c++ {
		out[c] = b.node(w, slotVis0+c)
	}
	return out
}

// scAMO reports whether the instruction is a "sequentially consistent" AMO:
// one that participates in the ISA's global SC total order (aq+rl under
// Curr; the .sc bit under Ours).
func (b *builder) scAMO(ins *isa.Instr) bool {
	if !ins.Op.IsAMO() {
		return false
	}
	if b.m.Variant == Curr {
		return ins.Aq && ins.Rl
	}
	return ins.SCBit
}

func (b *builder) label() {
	for _, e := range b.ev {
		base := fmt.Sprintf("T%d.i%d", e.Thread, e.Index)
		b.g.SetLabel(b.fetch(e.GID), base+".Fetch")
		b.g.SetLabel(b.exec(e.GID), base+".Execute")
		b.g.SetLabel(b.perform(e.GID), base+".Perform")
		b.g.SetLabel(b.sbEnter(e.GID), base+".SBEnter")
		b.g.SetLabel(b.getM(e.GID), base+".GetM")
		b.g.SetLabel(b.complete(e.GID), base+".Complete")
		if e.IsWrite() {
			for i, v := range b.visAll(e.GID) {
				if b.atomicWrite(e.GID) {
					b.g.SetLabel(v, base+".VisibleAll")
				} else if b.m.NMCA {
					b.g.SetLabel(v, fmt.Sprintf("%s.Visible@C%d", base, i))
				} else {
					b.g.SetLabel(v, base+".Visible")
				}
			}
		}
	}
}

// pipeline adds the in-order front-end chains and per-instruction paths.
func (b *builder) pipeline() {
	for _, th := range b.p.Mem().Threads {
		for i, e := range th {
			if i+1 < len(th) {
				nxt := th[i+1]
				b.g.AddEdge(b.fetch(e.GID), b.fetch(nxt.GID), "po-fetch")
				b.g.AddEdge(b.exec(e.GID), b.exec(nxt.GID), "in-order-execute")
				b.g.AddEdge(b.complete(e.GID), b.complete(nxt.GID), "in-order-commit")
			}
			g := e.GID
			b.g.AddEdge(b.fetch(g), b.exec(g), "path")
			if e.IsRead() {
				b.g.AddEdge(b.exec(g), b.perform(g), "path")
				b.g.AddEdge(b.perform(g), b.complete(g), "path")
			}
			if e.IsWrite() {
				if e.IsRead() { // AMO: read before write
					b.g.AddEdge(b.perform(g), b.sbEnter(g), "amo-read-before-write")
				} else {
					b.g.AddEdge(b.exec(g), b.sbEnter(g), "path")
				}
				b.g.AddEdge(b.sbEnter(g), b.complete(g), "path")
				if b.m.CacheProtocol {
					// A9like: the store requests write permission (GetM)
					// and then invalidations/forwards reach each core
					// independently (non-stalling directory).
					b.g.AddEdge(b.sbEnter(g), b.getM(g), "cache-getM")
					for _, v := range b.visAll(g) {
						b.g.AddEdge(b.getM(g), v, "cache-inv-or-forward")
					}
				} else {
					for _, v := range b.visAll(g) {
						b.g.AddEdge(b.sbEnter(g), v, "sb-drain")
					}
				}
			}
			if e.Kind == mem.Fence {
				b.g.AddEdge(b.exec(g), b.complete(g), "path")
			}
		}
	}
}

// sameAddr reports whether two events resolved to the same location.
func (b *builder) sameAddr(a, bb int) bool { return b.x.SameLoc(a, bb) }

// ppo adds preserved-program-order edges according to the relaxation
// profile.
func (b *builder) ppo() {
	for _, th := range b.p.Mem().Threads {
		for i := 0; i < len(th); i++ {
			for j := i + 1; j < len(th); j++ {
				a, c := th[i], th[j]
				ag, cg := a.GID, c.GID
				// R → R
				if a.IsRead() && c.IsRead() {
					if !b.m.RelaxRR {
						b.g.AddEdge(b.perform(ag), b.perform(cg), "ppo-RR")
					} else if b.m.OrderSameAddrRR && b.sameAddr(ag, cg) {
						b.g.AddEdge(b.perform(ag), b.perform(cg), "ppo-RR-same-addr")
					}
				}
				// R → W: maintained unless RelaxRR, always for same address.
				if a.IsRead() && c.IsWrite() {
					if !b.m.RelaxRR || b.sameAddr(ag, cg) {
						for _, v := range b.visAll(cg) {
							b.g.AddEdge(b.perform(ag), v, "ppo-RW")
						}
					}
				}
				// W → R: relaxed on every Table 7 model (store buffer);
				// enforced only on the SC ablation. Same-address W→R with
				// no forwarding: the load stalls until the store drains.
				if a.IsWrite() && c.IsRead() {
					switch {
					case !b.m.RelaxWR:
						for _, v := range b.visAll(ag) {
							b.g.AddEdge(v, b.perform(cg), "ppo-WR")
						}
					case b.p.InstrOf(ag).Op.IsAMO() && !b.m.NMCA:
						// AMO writes execute at the memory system (they
						// need the old value), so they are never buffered:
						// on MCA/rMCA substrates — where at-memory means
						// visible — later loads perform after the AMO's
						// write. On nMCA substrates per-core visibility
						// may still lag (non-stalling directory), so no
						// such edge exists there.
						for _, v := range b.visAll(ag) {
							b.g.AddEdge(v, b.perform(cg), "amo-not-buffered")
						}
					case b.sameAddr(ag, cg) && b.x.RF[cg] != ag:
						// The load reads something other than the newest
						// same-address SB entry, so that entry must have
						// drained first.
						for _, v := range b.visAll(ag) {
							b.g.AddEdge(v, b.perform(cg), "sb-same-addr-drain")
						}
					case b.sameAddr(ag, cg) && !b.m.Forwarding:
						// Reading the own store without forwarding means
						// waiting for it to reach memory (rf adds the
						// visibility edge; nothing extra needed here).
					}
				}
				// W → W: FIFO drain unless RelaxWW; same address always.
				if a.IsWrite() && c.IsWrite() {
					if !b.m.RelaxWW || b.sameAddr(ag, cg) {
						b.pointwiseVis(ag, cg, "ppo-WW")
						if b.sameAddr(ag, cg) {
							b.g.AddEdge(b.sbEnter(ag), b.sbEnter(cg), "sb-fifo-same-addr")
						}
					}
				}
			}
		}
	}
}

// pointwiseVis orders write a's visibility before write c's, per core.
func (b *builder) pointwiseVis(ag, cg int, reason string) {
	for c := 0; c < b.C; c++ {
		b.g.AddEdge(b.visTo(ag, c), b.visTo(cg, c), reason)
	}
}

// deps adds syntactic address/data/control dependency edges: the dependee
// cannot begin executing until the source load has performed.
func (b *builder) deps() {
	if !b.m.RespectDeps {
		return
	}
	for _, th := range b.p.Mem().Threads {
		for _, e := range th {
			add := func(srcIdx int, reason string) {
				src := th[srcIdx]
				b.g.AddEdge(b.perform(src.GID), b.exec(e.GID), reason)
			}
			if e.Kind != mem.Fence {
				if e.Addr.Kind == mem.OpReg {
					if s := b.sourceLoad(th, e.Index, e.Addr.Reg); s >= 0 {
						add(s, "dep-addr")
					}
				}
				if e.IsWrite() && e.Data.Kind == mem.OpReg {
					if s := b.sourceLoad(th, e.Index, e.Data.Reg); s >= 0 {
						add(s, "dep-data")
					}
				}
			}
			for _, d := range e.CtrlDepOn {
				add(d, "dep-ctrl")
			}
		}
	}
}

// sourceLoad finds the latest load before idx writing register reg.
func (b *builder) sourceLoad(th []*mem.Event, idx, reg int) int {
	for i := idx - 1; i >= 0; i-- {
		if th[i].IsRead() && th[i].Dst == reg {
			return i
		}
	}
	return -1
}

// coherence adds per-core pointwise visibility edges along mo (the ws
// relation): all cores agree on the order of same-location stores.
func (b *builder) coherence() {
	for _, ws := range b.x.MO {
		for i := 0; i < len(ws); i++ {
			for j := i + 1; j < len(ws); j++ {
				b.pointwiseVis(ws[i], ws[j], "ws")
			}
		}
	}
}

// values adds reads-from and from-reads edges.
func (b *builder) values() {
	for _, e := range b.ev {
		if !e.IsRead() {
			continue
		}
		r := e.GID
		src := b.x.RF[r]
		if src != mem.InitWrite {
			w := b.ev[src]
			plainLoad := !b.p.InstrOf(r).Op.IsAMO()
			forwardable := b.p.InstrOf(src).Op == isa.OpStore // AMOs execute at memory
			if w.Thread == e.Thread && b.m.Forwarding && forwardable && plainLoad {
				// Plain load forwarding from the local store buffer.
				b.g.AddEdge(b.sbEnter(src), b.perform(r), "rf-forward")
			} else {
				// Reads observe the write once visible to their core
				// (AMO reads always go to the memory system).
				b.g.AddEdge(b.visTo(src, e.Thread), b.perform(r), "rf")
			}
		}
		for _, w2 := range b.x.FRSuccessors(r) {
			b.g.AddEdge(b.perform(r), b.visTo(w2, e.Thread), "fr")
		}
	}
}

// accessParts reports whether the event participates in a fence class as a
// read and/or as a write.
func accessParts(e *mem.Event) (rd, wr bool) {
	return e.IsRead(), e.IsWrite()
}

// fences adds fence-ordering edges for every fence instruction, including
// cumulativity for the lwf/hwf proposals (and Power lwsync/sync).
func (b *builder) fences() {
	for _, th := range b.p.Mem().Threads {
		for _, f := range th {
			if f.Kind != mem.Fence {
				continue
			}
			ins := b.p.InstrOf(f.GID)
			if ins.Op != isa.OpFence {
				continue
			}
			b.fenceEdges(th, f, ins)
		}
	}
}

func (b *builder) fenceEdges(th []*mem.Event, f *mem.Event, ins *isa.Instr) {
	var predR, predW, succR, succW []int // event GIDs by part
	for _, e := range th {
		if e.Kind == mem.Fence || e.GID == f.GID {
			continue
		}
		rd, wr := accessParts(e)
		if e.Index < f.Index {
			if rd && ins.Pred.HasR() {
				predR = append(predR, e.GID)
			}
			if wr && ins.Pred.HasW() {
				predW = append(predW, e.GID)
			}
		} else {
			if rd && ins.Succ.HasR() {
				succR = append(succR, e.GID)
			}
			if wr && ins.Succ.HasW() {
				succW = append(succW, e.GID)
			}
		}
	}
	// Cumulativity: writes observed by the fencing thread before the fence
	// join the predecessor set (recursively through reads-from).
	if ins.Cum != isa.CumNone {
		for w := range b.acumWrites(th, f.Index) {
			predW = append(predW, w)
		}
	}
	reason := fmt.Sprintf("fence[%s,%s;%s]", ins.Pred, ins.Succ, ins.Cum)
	// (R, R) and (R, W)
	for _, a := range predR {
		for _, c := range succR {
			b.g.AddEdge(b.perform(a), b.perform(c), reason+"-RR")
		}
		for _, c := range succW {
			for _, v := range b.visAll(c) {
				b.g.AddEdge(b.perform(a), v, reason+"-RW")
			}
		}
	}
	for _, a := range predW {
		// (W, W): per-core pointwise visibility order.
		for _, c := range succW {
			if a == c {
				continue
			}
			b.pointwiseVis(a, c, reason+"-WW")
		}
		// (W, R): full flush — the write must be visible to every core
		// before the successor load performs. Plain and heavyweight fences
		// order W→R; lightweight fences never do (Section 2.3.3).
		if ins.Cum != isa.CumLW {
			for _, c := range succR {
				if a == c {
					continue
				}
				for _, v := range b.visAll(a) {
					b.g.AddEdge(v, b.perform(c), reason+"-WR")
				}
			}
		}
	}
}

// acumWrites computes the A-cumulative predecessor writes of a fence (or of
// a release, under Ours semantics) at position idx of thread th: writes
// read by the thread's earlier loads, closed recursively over writes that
// performed before those writes on their own threads.
func (b *builder) acumWrites(th []*mem.Event, idx int) map[int]bool {
	out := map[int]bool{}
	ownThread := -1
	if len(th) > 0 {
		ownThread = th[0].Thread
	}
	// Seed: sources of own pre-fence reads.
	var frontier []int
	for _, e := range th {
		if e.Index >= idx || !e.IsRead() {
			continue
		}
		if src := b.x.RF[e.GID]; src != mem.InitWrite && b.ev[src].Thread != ownThread {
			if !out[src] {
				out[src] = true
				frontier = append(frontier, src)
			}
		}
	}
	// Close over: reads program-order-before a member on the member's
	// thread (including an AMO member's own read part) contribute their
	// sources ("performed prior to an access in the predecessor set",
	// Section 2.3.2).
	for len(frontier) > 0 {
		w := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		we := b.ev[w]
		for _, e := range b.p.Mem().Threads[we.Thread] {
			if e.Index > we.Index || !e.IsRead() {
				continue
			}
			if src := b.x.RF[e.GID]; src != mem.InitWrite && !out[src] && b.ev[src].Thread != ownThread {
				out[src] = true
				frontier = append(frontier, src)
			}
		}
	}
	return out
}

// releaseOf walks an ISA-level release sequence backwards: starting from a
// write w, follow AMO write-backs to their read sources until a
// non-AMO write (or init) is reached; returns the chain of writes visited.
// An acquire reading any element of the chain synchronizes with releases
// earlier in the chain, mirroring C11 release sequences through RMWs.
func (b *builder) releaseChain(w int) []int {
	var chain []int
	for w != mem.InitWrite {
		chain = append(chain, w)
		e := b.ev[w]
		if e.Kind != mem.RMW {
			break
		}
		w = b.x.RF[w]
	}
	return chain
}

// amoBits adds the acquire/release/SC-annotation semantics of AMOs.
func (b *builder) amoBits() {
	for _, th := range b.p.Mem().Threads {
		for _, e := range th {
			ins := b.p.InstrOf(e.GID)
			if !ins.Op.IsAMO() {
				continue
			}
			if ins.Aq {
				b.acquireEdges(th, e)
			}
			if ins.Rl {
				if b.m.Variant == Curr {
					b.eagerReleaseEdges(th, e)
				} else {
					b.lazyReleaseEdges(th, e)
				}
			}
			if b.scAMO(ins) {
				b.scPairEdges(th, e)
			}
		}
	}
}

// acquireEdges: "no following memory operation can be observed to take
// place before the Acq operation" — the AMO's read performs, and its write
// becomes visible (per core), before later accesses do.
func (b *builder) acquireEdges(th []*mem.Event, a *mem.Event) {
	for _, c := range th {
		if c.Index <= a.Index || c.Kind == mem.Fence {
			continue
		}
		if c.IsRead() {
			b.g.AddEdge(b.perform(a.GID), b.perform(c.GID), "amo-aq-R")
		}
		if c.IsWrite() {
			for _, v := range b.visAll(c.GID) {
				b.g.AddEdge(b.perform(a.GID), v, "amo-aq-W")
			}
			if a.IsWrite() {
				b.pointwiseVis(a.GID, c.GID, "amo-aq-vis")
			}
		}
	}
}

// eagerReleaseEdges (riscv-curr): "the Rel operation cannot be observed to
// take place before any earlier memory operation" — earlier own reads
// perform, and earlier own writes become visible (per core), before the
// AMO's write does. Non-cumulative: observed remote writes are NOT ordered,
// which is exactly the Section 5.2.1 bug.
//
// For an AMO without a coherence-visible write (an AMO-load carrying rl,
// i.e. the intuitive mapping's SC load AMO.aq.rl), the spec's "cannot be
// observed to happen before any earlier memory operations in the same
// RISC-V thread" orders the AMO's read after earlier reads' performs and
// earlier writes' full visibility.
func (b *builder) eagerReleaseEdges(th []*mem.Event, a *mem.Event) {
	if !a.IsWrite() {
		for _, p := range th {
			if p.Index >= a.Index || p.Kind == mem.Fence {
				continue
			}
			if p.IsRead() {
				b.g.AddEdge(b.perform(p.GID), b.perform(a.GID), "amo-rl-load-R")
			}
			if p.IsWrite() {
				for _, v := range b.visAll(p.GID) {
					b.g.AddEdge(v, b.perform(a.GID), "amo-rl-load-W")
				}
			}
		}
		return
	}
	for _, p := range th {
		if p.Index >= a.Index || p.Kind == mem.Fence {
			continue
		}
		if p.IsRead() {
			for _, v := range b.visAll(a.GID) {
				b.g.AddEdge(b.perform(p.GID), v, "amo-rl-R")
			}
		}
		if p.IsWrite() {
			b.pointwiseVis(p.GID, a.GID, "amo-rl-W")
		}
	}
}

// lazyReleaseEdges (riscv-ours, Section 5.2.3): the release imposes no
// unconditional visibility order. When an acquire on another core reads
// from the release, the release's cumulative predecessor set must be
// visible to that core before the acquire performs.
func (b *builder) lazyReleaseEdges(th []*mem.Event, a *mem.Event) {
	for _, r := range b.ev {
		if !r.IsRead() || r.Thread == a.Thread {
			continue
		}
		rIns := b.p.InstrOf(r.GID)
		if !rIns.Op.IsAMO() || !rIns.Aq {
			continue // only acquires synchronize (lazy cumulativity)
		}
		// The acquire must read the release's write, possibly through a
		// chain of intervening AMO write-backs (a release sequence).
		inChain := false
		for _, w := range b.releaseChain(b.x.RF[r.GID]) {
			if w == a.GID {
				inChain = true
				break
			}
		}
		if !inChain {
			continue
		}
		// Predecessor set: own earlier accesses plus A-cumulative writes.
		for _, p := range th {
			if p.Index >= a.Index || p.Kind == mem.Fence {
				continue
			}
			if p.IsRead() {
				b.g.AddEdge(b.perform(p.GID), b.perform(r.GID), "rel-sync-R")
			}
			if p.IsWrite() {
				b.g.AddEdge(b.visTo(p.GID, r.Thread), b.perform(r.GID), "rel-sync-W")
			}
		}
		for w := range b.acumWrites(th, a.Index) {
			b.g.AddEdge(b.visTo(w, r.Thread), b.perform(r.GID), "rel-sync-cum")
		}
	}
}

// scPairEdges: SC AMOs appear in a global order consistent with program
// order ("observed by any other thread in the same global order of all
// sequentially consistent atomic memory operations"): two same-thread SC
// AMOs are fully ordered, read performs and write visibility alike.
func (b *builder) scPairEdges(th []*mem.Event, a *mem.Event) {
	for _, c := range th {
		if c.Index <= a.Index {
			continue
		}
		cIns := b.p.InstrOf(c.GID)
		if !b.scAMO(cIns) {
			continue
		}
		b.g.AddEdge(b.perform(a.GID), b.perform(c.GID), "sc-order")
		if a.IsWrite() {
			for _, va := range b.visAll(a.GID) {
				b.g.AddEdge(va, b.perform(c.GID), "sc-order")
				if c.IsWrite() {
					for _, vc := range b.visAll(c.GID) {
						b.g.AddEdge(va, vc, "sc-order")
					}
				}
			}
		}
		if c.IsWrite() {
			for _, vc := range b.visAll(c.GID) {
				b.g.AddEdge(b.perform(a.GID), vc, "sc-order")
			}
		}
	}
}
