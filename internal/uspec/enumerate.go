package uspec

import "strings"

// EnumerateConfigs walks the full legal relaxation lattice for one MCM
// variant: every combination of the Config relaxation bits that passes
// Validate, deduplicated by config fingerprint, in a deterministic
// order (bit-lexicographic over the field walk below). Each config is
// given a systematic lattice name derived from its semantics, so the
// whole lattice can be swept as stacks with distinguishable display
// names — Table 7 is seven points of this lattice; the rest are the
// microarchitectures nobody wrote down.
//
// The lattice has exactly 50 points per variant (pinned by test):
// every subset of {W→R, W→W, R→M} program-order relaxations crossed
// with the legal store-atomicity ladder (MCA → rMCA → nMCA → nMCA via
// cache protocol, available only once a store buffer exists) and, under
// R→M relaxation, the same-address-load-order and dependency-order
// choices.
func EnumerateConfigs(v Variant) []Config {
	var out []Config
	seen := map[string]bool{}
	// Walk bits most-significant-first so the order is stable and reads
	// strongest-to-weakest-ish: each bool iterates false then true.
	for i := 0; i < 1<<8; i++ {
		bit := func(n int) bool { return i&(1<<n) != 0 }
		c := Config{
			RelaxWR:         bit(7),
			Forwarding:      bit(6),
			RelaxWW:         bit(5),
			RelaxRR:         bit(4),
			NMCA:            bit(3),
			CacheProtocol:   bit(2),
			OrderSameAddrRR: !bit(1), // false bit = ordered (the stronger default first)
			RespectDeps:     !bit(0),
			Variant:         v,
		}
		if c.Validate() != nil {
			continue
		}
		// The legality rules pin every don't-care bit (e.g. same-address
		// load order when RM isn't relaxed), so distinct legal bit
		// patterns already have distinct fingerprints; the dedup is an
		// invariant guard in case a future rule introduces redundancy,
		// and the spec test asserts lattice-wide uniqueness.
		fp := c.Fingerprint()
		if seen[fp] {
			continue
		}
		seen[fp] = true
		c.Name = latticeName(c)
		c.Description = "lattice: " + c.ContentKey()
		out = append(out, c)
	}
	return out
}

// latticeName derives a systematic display name from a config's
// semantics: the relaxed program orders joined with '.', '+' the store
// atomicity class, '+nodeps' when dependencies are not respected.
// Examples: "none+mca" (the SC baseline), "WR+rmca" (TSO),
// "WR.WW.RMsa+nmca" (rMM-with-shared-buffers, same-address loads
// relaxed). Deterministic in the config bits, so equal-fingerprint
// configs share a name.
func latticeName(c Config) string {
	var po []string
	if c.RelaxWR {
		po = append(po, "WR")
	}
	if c.RelaxWW {
		po = append(po, "WW")
	}
	if c.RelaxRR {
		rm := "RM"
		if !c.OrderSameAddrRR {
			rm += "sa"
		}
		po = append(po, rm)
	}
	relaxed := strings.Join(po, ".")
	if relaxed == "" {
		relaxed = "none"
	}
	atom := "mca"
	switch {
	case c.CacheProtocol:
		atom = "cache"
	case c.NMCA:
		atom = "nmca"
	case c.Forwarding:
		atom = "rmca"
	}
	name := relaxed + "+" + atom
	if !c.RespectDeps {
		name += "+nodeps"
	}
	return name
}
