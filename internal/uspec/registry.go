package uspec

import (
	"embed"
	"fmt"
	"sort"
)

// The model registry: every shipped microarchitecture model is a spec
// file under specs/, parsed and validated exactly once at package
// initialization. The Table 7 constructors (WR, RWR, ..., A9like) and
// the companions (PowerA9, TSO, SCProof, AlphaLike) are thin lookups
// into it — a model is data; the Go functions only name entries.
//
// Registry models are shared and immutable: callers must never modify a
// returned *Model. To derive a variation, copy the Config, edit the
// copy, and wrap it with New (see core's renaming tests for the idiom).

//go:embed specs/*.uspec
var specFS embed.FS

// table7Names is the paper's strongest-to-weakest presentation order.
var table7Names = [...]string{"WR", "rWR", "rWM", "rMM", "nWR", "nMM", "A9like"}

// companionNames are the non-Table-7 builtins, registered under Curr.
var companionNames = [...]string{"PowerA9", "PowerA9-ldld-fixed", "TSO", "SC", "AlphaLike"}

// Registry is an immutable set of prebuilt models, keyed by
// (name, variant).
type Registry struct {
	byKey  map[registryKey]*Model
	table7 map[Variant][]*Model
	all    []*Model
}

type registryKey struct {
	name    string
	variant Variant
}

// builtins is the shipped registry, built once from the embedded spec
// files. Package init panics on a malformed shipped spec: the files are
// part of the build, so that is a programming error, not input.
var builtins = loadBuiltins()

// Builtins returns the shipped model registry.
func Builtins() *Registry { return builtins }

func loadBuiltins() *Registry {
	r := &Registry{
		byKey:  map[registryKey]*Model{},
		table7: map[Variant][]*Model{},
	}
	load := func(name string, v Variant) *Model {
		path := fmt.Sprintf("specs/%s.%s.uspec", name, variantToken(v))
		data, err := specFS.ReadFile(path)
		if err != nil {
			panic(fmt.Sprintf("uspec: missing builtin spec %s: %v", path, err))
		}
		s, err := ParseSpec(string(data))
		if err != nil {
			panic(fmt.Sprintf("uspec: builtin spec %s: %v", path, err))
		}
		if s.Name != name {
			panic(fmt.Sprintf("uspec: builtin spec %s declares name %q", path, s.Name))
		}
		if s.Variant != v {
			panic(fmt.Sprintf("uspec: builtin spec %s declares variant %s", path, s.Variant))
		}
		m := New(*s)
		r.byKey[registryKey{name, v}] = m
		r.all = append(r.all, m)
		return m
	}
	for _, v := range []Variant{Curr, Ours} {
		for _, name := range table7Names {
			r.table7[v] = append(r.table7[v], load(name, v))
		}
	}
	for _, name := range companionNames {
		load(name, Curr)
	}
	return r
}

// Model returns the registered model for (name, variant), or nil. The
// result is shared and must not be modified.
func (r *Registry) Model(name string, v Variant) *Model {
	return r.byKey[registryKey{name, v}]
}

// Table7 returns the seven Table 7 models for the variant in the
// paper's presentation order. The slice is fresh; the models are shared.
func (r *Registry) Table7(v Variant) []*Model {
	out := make([]*Model, len(r.table7[v]))
	copy(out, r.table7[v])
	return out
}

// All returns every registered model: Table 7 under Curr then Ours,
// then the companions. The slice is fresh; the models are shared.
func (r *Registry) All() []*Model {
	out := make([]*Model, len(r.all))
	copy(out, r.all)
	return out
}

// Names returns the sorted distinct model names in the registry.
func (r *Registry) Names() []string {
	seen := map[string]bool{}
	var out []string
	for _, m := range r.all {
		if !seen[m.Name] {
			seen[m.Name] = true
			out = append(out, m.Name)
		}
	}
	sort.Strings(out)
	return out
}

// mustBuiltin backs the legacy constructor functions.
func mustBuiltin(name string, v Variant) *Model {
	m := builtins.Model(name, v)
	if m == nil {
		panic(fmt.Sprintf("uspec: builtin %s/%s not registered", name, v))
	}
	return m
}
