package uspec

import (
	"errors"
	"io/fs"
	"reflect"
	"strings"
	"testing"
)

// legacyConfigs replicates the pre-refactor Go constructors verbatim (the
// code the shipped spec files replaced). The equivalence lock below holds
// the registry to these bit patterns: identical Config bits imply
// bit-identical verdicts, Explain strings and memo fingerprints, because
// every downstream consumer reads only the Config.
func legacyConfigs() map[string]map[Variant]Config {
	rocket := func(v Variant) Config {
		return Config{RelaxWR: true, RespectDeps: true, Variant: v}
	}
	out := map[string]map[Variant]Config{}
	add := func(name string, v Variant, c Config) {
		if out[name] == nil {
			out[name] = map[Variant]Config{}
		}
		c.Name = name
		out[name][v] = c
	}
	for _, v := range []Variant{Curr, Ours} {
		c := rocket(v)
		c.Description = "FIFO store buffer, no value forwarding, MCA stores"
		c.OrderSameAddrRR = true
		add("WR", v, c)

		c = rocket(v)
		c.Description = "store buffer with forwarding (read-own-write-early), rMCA"
		c.Forwarding = true
		c.OrderSameAddrRR = true
		add("rWR", v, c)

		c = rocket(v)
		c.Description = "rWR plus out-of-order store-buffer drain (W→W relaxed)"
		c.Forwarding = true
		c.RelaxWW = true
		c.OrderSameAddrRR = true
		add("rWM", v, c)

		c = rocket(v)
		c.Description = "rWM plus out-of-order loads (R→M relaxed)"
		c.Forwarding = true
		c.RelaxWW = true
		c.RelaxRR = true
		c.OrderSameAddrRR = v == Ours
		add("rMM", v, c)

		c = rocket(v)
		c.Description = "rWR with shared store buffers (nMCA stores)"
		c.Forwarding = true
		c.NMCA = true
		c.OrderSameAddrRR = true
		add("nWR", v, c)

		c = rocket(v)
		c.Description = "rMM with shared store buffers (nMCA stores)"
		c.Forwarding = true
		c.RelaxWW = true
		c.RelaxRR = true
		c.NMCA = true
		c.OrderSameAddrRR = v == Ours
		add("nMM", v, c)

		c = rocket(v)
		c.Description = "write-back caches + non-stalling directory (nMCA without shared buffers)"
		c.Forwarding = true
		c.RelaxWW = true
		c.RelaxRR = true
		c.NMCA = true
		c.CacheProtocol = true
		c.OrderSameAddrRR = v == Ours
		add("A9like", v, c)
	}
	add("PowerA9", Curr, Config{
		Description: "Power/ARMv7 Cortex-A9-like: nMCA, R→R relaxed incl. same address",
		RelaxWR:     true, Forwarding: true, RelaxWW: true, RelaxRR: true,
		NMCA: true, RespectDeps: true, Variant: Curr,
	})
	pf := out["PowerA9"][Curr]
	pf.Description = "PowerA9 with same-address load→load order restored"
	pf.OrderSameAddrRR = true
	add("PowerA9-ldld-fixed", Curr, pf)
	tso := rocket(Curr)
	tso.Description = "x86-TSO-like: forwarding store buffer, all other orders preserved"
	tso.Forwarding = true
	tso.OrderSameAddrRR = true
	add("TSO", Curr, tso)
	add("SC", Curr, Config{
		Description:     "no relaxations: sequentially consistent baseline",
		OrderSameAddrRR: true, RespectDeps: true, Variant: Curr,
	})
	alpha := out["nMM"][Curr]
	alpha.Description = "nMM without syntactic dependency ordering (Alpha-style)"
	alpha.RespectDeps = false
	add("AlphaLike", Curr, alpha)
	return out
}

// TestBuiltinSpecsMatchLegacyConstructors is the equivalence lock of the
// data-not-code refactor: every builtin model loaded from its shipped
// spec file must be bit-identical — every Config field, including name
// and description — to what the deleted Go constructor built. With the
// bits equal, verdicts, tallies, Explain output and memo fingerprints
// are necessarily equal too (golden_test.go additionally pins those
// end to end).
func TestBuiltinSpecsMatchLegacyConstructors(t *testing.T) {
	legacy := legacyConfigs()
	checked := 0
	for name, byVariant := range legacy {
		for v, want := range byVariant {
			m := ModelByName(name, v)
			if m == nil {
				t.Errorf("builtin %s/%s missing from registry", name, v)
				continue
			}
			if !reflect.DeepEqual(m.Config, want) {
				t.Errorf("builtin %s/%s config drifted from legacy constructor:\n got %+v\nwant %+v", name, v, m.Config, want)
			}
			checked++
		}
	}
	if checked != 19 {
		t.Fatalf("checked %d builtins, want 19", checked)
	}
	// The constructor functions must hand out the registry instances.
	ctors := map[string]*Model{
		"WR": WR(Curr), "rWR": RWR(Curr), "rWM": RWM(Curr), "rMM": RMM(Curr),
		"nWR": NWR(Curr), "nMM": NMM(Curr), "A9like": A9like(Curr),
		"PowerA9": PowerA9(), "PowerA9-ldld-fixed": PowerA9Fixed(),
		"TSO": TSO(), "SC": SCProof(), "AlphaLike": AlphaLike(),
	}
	for name, m := range ctors {
		if m != ModelByName(name, Curr) {
			t.Errorf("constructor for %s returns a different instance than the registry", name)
		}
	}
}

// TestBuiltinSpecFilesAreCanonical: every shipped spec file is the byte
// fixed point of its own parse→emit round trip, and parses to a valid
// config.
func TestBuiltinSpecFilesAreCanonical(t *testing.T) {
	entries, err := fs.Glob(specFS, "specs/*.uspec")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 19 {
		t.Fatalf("shipped %d spec files, want 19", len(entries))
	}
	for _, path := range entries {
		data, err := fs.ReadFile(specFS, path)
		if err != nil {
			t.Fatal(err)
		}
		s, err := ParseSpec(string(data))
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if got := s.EmitSpec(); got != string(data) {
			t.Errorf("%s is not canonical:\n got %q\nwant %q", path, got, string(data))
		}
		s2, err := ParseSpec(s.EmitSpec())
		if err != nil {
			t.Fatalf("%s: reparse: %v", path, err)
		}
		if !reflect.DeepEqual(s, s2) {
			t.Errorf("%s: round trip changed the config: %+v vs %+v", path, s, s2)
		}
	}
}

// TestSpecValidationNamedErrors: each illegal field combination is
// rejected with its named error, through Validate and through the text
// format alike.
func TestSpecValidationNamedErrors(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want error
	}{
		{"forwarding without WR", Config{Forwarding: true, OrderSameAddrRR: true, RespectDeps: true}, ErrForwardingWithoutRelaxWR},
		{"nmca without forwarding", Config{RelaxWR: true, NMCA: true, OrderSameAddrRR: true, RespectDeps: true}, ErrNMCAWithoutForwarding},
		{"cache-protocol without nmca", Config{RelaxWR: true, Forwarding: true, CacheProtocol: true, OrderSameAddrRR: true, RespectDeps: true}, ErrCacheProtocolWithoutNMCA},
		{"same-addr-RR unset without RM", Config{RelaxWR: true, RespectDeps: true}, ErrSameAddrRRWithoutRelaxRR},
		{"no deps without RM", Config{RelaxWR: true, OrderSameAddrRR: true}, ErrNoDepsWithoutRelaxRR},
	}
	for _, tc := range cases {
		tc.cfg.Name = "illegal"
		if err := tc.cfg.Validate(); !errors.Is(err, tc.want) {
			t.Errorf("%s: Validate = %v, want %v", tc.name, err, tc.want)
		}
		if _, err := tc.cfg.Model(); !errors.Is(err, tc.want) {
			t.Errorf("%s: Model() = %v, want %v", tc.name, err, tc.want)
		}
		// The same illegality must be caught when it arrives as text.
		if _, err := ParseSpec(tc.cfg.EmitSpec()); !errors.Is(err, tc.want) {
			t.Errorf("%s: ParseSpec(emitted) = %v, want %v", tc.name, err, tc.want)
		}
	}
	for _, m := range Builtins().All() {
		if err := m.Config.Validate(); err != nil {
			t.Errorf("builtin %s fails validation: %v", m.FullName(), err)
		}
	}
}

// TestSpecCommentsStayOutOfQuotedStrings: `(* ... *)` is a comment only
// outside quotes — a description containing comment delimiters survives
// the round trip byte-for-byte.
func TestSpecCommentsStayOutOfQuotedStrings(t *testing.T) {
	c := Config{
		Name: "commented", Description: "a (* not a comment *) c",
		OrderSameAddrRR: true, RespectDeps: true,
	}
	s, err := ParseSpec(c.EmitSpec())
	if err != nil {
		t.Fatal(err)
	}
	if s.Description != c.Description {
		t.Fatalf("description round-tripped as %q, want %q", s.Description, c.Description)
	}
	if got := s.EmitSpec(); got != c.EmitSpec() {
		t.Fatalf("emission not a fixed point:\n got %q\nwant %q", got, c.EmitSpec())
	}
	// Real comments are still stripped, wherever they sit.
	s2, err := ParseSpec("(* top *)\nuspec x (* trailing\nspans lines *)\nvariant ours\n(* solo *)\norder-same-addr-rr\nrespect-deps\n")
	if err != nil {
		t.Fatal(err)
	}
	if s2.Name != "x" || s2.Variant != Ours || !s2.OrderSameAddrRR {
		t.Fatalf("comment-laden spec parsed as %+v", s2)
	}
	if _, err := ParseSpec("uspec y\n(* never closed"); err == nil || !strings.Contains(err.Error(), "unterminated") {
		t.Fatalf("unterminated comment: err = %v", err)
	}
}

// TestValidateRejectsNonIdentifierNames: checked construction must not
// accept names the text format cannot round-trip — a newline in a name
// would otherwise inject directives into EmitSpec's output.
func TestValidateRejectsNonIdentifierNames(t *testing.T) {
	for _, name := range []string{"x\nrelax WR\nforwarding", "has space", "quo\"te"} {
		c := Config{Name: name, OrderSameAddrRR: true, RespectDeps: true}
		if err := c.Validate(); !errors.Is(err, ErrInvalidName) {
			t.Errorf("Validate(name %q) = %v, want ErrInvalidName", name, err)
		}
		if _, err := c.Model(); !errors.Is(err, ErrInvalidName) {
			t.Errorf("Model(name %q) = %v, want ErrInvalidName", name, err)
		}
	}
	// An empty name passes bare Validate (EnumerateConfigs validates
	// before naming) but not checked model construction: an unnamed
	// model's EmitSpec output could never reparse.
	unnamed := Config{OrderSameAddrRR: true, RespectDeps: true}
	if err := unnamed.Validate(); err != nil {
		t.Errorf("empty name rejected by Validate: %v", err)
	}
	if _, err := unnamed.Model(); !errors.Is(err, ErrInvalidName) {
		t.Errorf("Model() with empty name = %v, want ErrInvalidName", err)
	}
}

// TestParseSpecSyntaxErrors covers the parser's rejection paths.
func TestParseSpecSyntaxErrors(t *testing.T) {
	cases := []struct{ name, src, wantSub string }{
		{"empty", "", "empty spec"},
		{"comment only", "(* hi *)", "empty spec"},
		{"no header", "variant curr\n", "want header"},
		{"bad name", "uspec has space here\n", "not an identifier"},
		{"dup header", "uspec a\nuspec b\n", "duplicate"},
		{"bad variant", "uspec a\nvariant tso\n", "unknown variant"},
		{"dup variant", "uspec a\nvariant curr\nvariant ours\n", "duplicate"},
		{"bad order", "uspec a\nrelax RW\n", "unknown program order"},
		{"dup relax", "uspec a\nrelax WR\nrelax WR\n", "duplicate"},
		{"flag arg", "uspec a\nnmca yes\n", "takes no argument"},
		{"dup flag", "uspec a\nrespect-deps\nrespect-deps\n", "duplicate"},
		{"unquoted description", "uspec a\ndescription plain\n", "quoted string"},
		{"empty description", "uspec a\ndescription \"\"\n", "must not be empty"},
		{"unknown directive", "uspec a\nstore-buffer 12\n", "unknown directive"},
	}
	for _, tc := range cases {
		if _, err := ParseSpec(tc.src); err == nil || !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%s: ParseSpec = %v, want error containing %q", tc.name, err, tc.wantSub)
		}
	}
}

// TestConfigFingerprint: the fingerprint tracks semantics, never names.
func TestConfigFingerprint(t *testing.T) {
	base := NMM(Curr).Config
	renamed := base
	renamed.Name = "totally-different"
	renamed.Description = "still the same machine"
	if renamed.Fingerprint() != base.Fingerprint() {
		t.Error("renaming changed the config fingerprint")
	}
	for i, mutate := range []func(*Config){
		func(c *Config) { c.RelaxWR = !c.RelaxWR },
		func(c *Config) { c.Forwarding = !c.Forwarding },
		func(c *Config) { c.RelaxWW = !c.RelaxWW },
		func(c *Config) { c.RelaxRR = !c.RelaxRR },
		func(c *Config) { c.OrderSameAddrRR = !c.OrderSameAddrRR },
		func(c *Config) { c.NMCA = !c.NMCA },
		func(c *Config) { c.CacheProtocol = !c.CacheProtocol },
		func(c *Config) { c.RespectDeps = !c.RespectDeps },
		func(c *Config) { c.Variant = Ours },
	} {
		edited := base
		mutate(&edited)
		if edited.Fingerprint() == base.Fingerprint() {
			t.Errorf("mutation %d did not change the fingerprint", i)
		}
	}
}

// TestEnumerateConfigs pins the legal lattice: exactly 50 semantically
// distinct configs per variant (100 total), all valid, all distinct by
// fingerprint and by lattice name, containing every Table 7 config and
// every companion.
func TestEnumerateConfigs(t *testing.T) {
	total := 0
	for _, v := range []Variant{Curr, Ours} {
		cfgs := EnumerateConfigs(v)
		if len(cfgs) != 50 {
			t.Fatalf("EnumerateConfigs(%s) = %d configs, want 50", v, len(cfgs))
		}
		total += len(cfgs)
		fps := map[string]bool{}
		names := map[string]bool{}
		for _, c := range cfgs {
			if err := c.Validate(); err != nil {
				t.Errorf("enumerated config %s is invalid: %v", c.Name, err)
			}
			if c.Variant != v {
				t.Errorf("enumerated config %s has variant %s, want %s", c.Name, c.Variant, v)
			}
			if fps[c.Fingerprint()] {
				t.Errorf("duplicate fingerprint in lattice: %s", c.Name)
			}
			if names[c.Name] {
				t.Errorf("duplicate lattice name: %s", c.Name)
			}
			fps[c.Fingerprint()] = true
			names[c.Name] = true
		}
		for _, m := range Builtins().All() {
			if m.Variant != v {
				continue
			}
			if !fps[m.Fingerprint()] {
				t.Errorf("builtin %s missing from the %s lattice", m.FullName(), v)
			}
		}
	}
	if total != 100 {
		t.Fatalf("full lattice has %d configs, want 100", total)
	}
	// The enumeration order is deterministic.
	a, b := EnumerateConfigs(Curr), EnumerateConfigs(Curr)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("EnumerateConfigs is not deterministic")
	}
}

// TestRegistrySharedAndFresh: models are built exactly once (shared
// pointers) but returned slices are fresh, so callers cannot corrupt
// registry state by editing a slice.
func TestRegistrySharedAndFresh(t *testing.T) {
	a, b := Models(Curr), Models(Curr)
	if len(a) != 7 || len(b) != 7 {
		t.Fatalf("Models(Curr) sizes %d/%d, want 7", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Models(Curr)[%d] rebuilt instead of shared", i)
		}
	}
	a[0] = nil
	if c := Models(Curr); c[0] == nil {
		t.Fatal("editing a returned slice mutated the registry")
	}
	if got := len(Builtins().All()); got != 19 {
		t.Fatalf("registry has %d models, want 19", got)
	}
	if Builtins().Model("PowerA9", Ours) != nil {
		t.Fatal("companion PowerA9 unexpectedly registered under Ours")
	}
	names := Builtins().Names()
	if len(names) != 12 {
		t.Fatalf("registry names = %v, want 12 distinct", names)
	}
}
