package uspec

import (
	"testing"

	"tricheck/internal/c11"
	"tricheck/internal/compile"
	"tricheck/internal/isa"
	"tricheck/internal/litmus"
)

// TestAxiomCatalogueGolden pins the axiom coverage space: the exact
// index → name catalogue every Coverage bitset and ledger row is keyed
// by. Any new axiom pass in builder.go must extend this list (and any
// reordering of the Reason constants shows up here as a diff), so
// coverage attribution can never silently alias two axioms to one code.
func TestAxiomCatalogueGolden(t *testing.T) {
	want := []string{
		"po-fetch",
		"in-order-execute",
		"in-order-commit",
		"path",
		"amo-read-before-write",
		"cache-getM",
		"cache-inv-or-forward",
		"sb-drain",
		"ppo-RR",
		"ppo-RR-same-addr",
		"ppo-RW",
		"ppo-WR",
		"amo-not-buffered",
		"sb-same-addr-drain",
		"ppo-WW",
		"sb-fifo-same-addr",
		"dep-addr",
		"dep-data",
		"dep-ctrl",
		"ws",
		"rf-forward",
		"rf",
		"fr",
		"amo-aq-R",
		"amo-aq-W",
		"amo-aq-vis",
		"amo-rl-load-R",
		"amo-rl-load-W",
		"amo-rl-R",
		"amo-rl-W",
		"rel-sync-R",
		"rel-sync-W",
		"rel-sync-cum",
		"sc-order",
		"fence-RR",
		"fence-RW",
		"fence-WW",
		"fence-WR",
	}
	if NumAxioms != len(want) {
		t.Fatalf("NumAxioms = %d, want %d", NumAxioms, len(want))
	}
	if NumAxioms > 64 {
		t.Fatalf("NumAxioms = %d exceeds the uint64 bitset", NumAxioms)
	}
	got := AxiomNames()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("AxiomName(%d) = %q, want %q", i, got[i], want[i])
		}
	}
	seen := map[string]int{}
	for i, n := range got {
		if j, dup := seen[n]; dup {
			t.Errorf("axioms %d and %d share the name %q", j, i, n)
		}
		seen[n] = i
	}
}

// TestAxiomIndexInjective: every distinct axiom's reason codes map to
// distinct indices; fence parameterization beyond the ordered pair
// (pred/succ class, cumulativity) collapses onto the pair's axiom by
// design.
func TestAxiomIndexInjective(t *testing.T) {
	for r := Reason(0); r < rFence; r++ {
		if got := axiomIndex(r); got != int(r) {
			t.Errorf("axiomIndex(%s) = %d, want %d", reasonNames[r], got, int(r))
		}
	}
	pairs := []Reason{fenceRR, fenceRW, fenceWW, fenceWR}
	for i, p := range pairs {
		want := int(rFence) + i
		// The pair axiom is stable across every fence parameterization.
		variants := []*isa.Instr{
			{Op: isa.OpFence, Pred: isa.ClassR, Succ: isa.ClassRW},
			{Op: isa.OpFence, Pred: isa.ClassRW, Succ: isa.ClassRW},
			{Op: isa.OpFence, Pred: isa.ClassRW, Succ: isa.ClassW, Cum: isa.CumLW},
			{Op: isa.OpFence, Pred: isa.ClassRW, Succ: isa.ClassRW, Cum: isa.CumHW},
		}
		for _, ins := range variants {
			if got := axiomIndex(fenceReason(ins) | p); got != want {
				t.Errorf("axiomIndex(fence %v|%s) = %d, want %d",
					ins, fencePairNames[i], got, want)
			}
		}
	}
	// Bits are unique across the whole space.
	var union uint64
	for i := 0; i < NumAxioms; i++ {
		bit := uint64(1) << i
		if union&bit != 0 {
			t.Fatalf("axiom %d reuses an occupied bit", i)
		}
		union |= bit
	}
}

// TestCoverageSurvivesEdgeDedup is the duplicate-edge attribution lock:
// when a fence edge collapses onto an identical ppo edge in the skeleton
// (first-reason-wins dedup), the fence axiom's Fired bit must survive —
// attribution happens at emission, not at storage. Under MP compiled
// with the intuitive base mapping, the acquire's `fence r,rw` orders
// exactly the read pair that ppo-RR already ordered on a WR model.
func TestCoverageSurvivesEdgeDedup(t *testing.T) {
	tst := litmus.MP.Instantiate([]c11.Order{c11.Rlx, c11.Rel, c11.Acq, c11.Rlx})
	prog, err := compile.Compile(compile.RISCVBaseIntuitive, tst.Prog)
	if err != nil {
		t.Fatal(err)
	}
	bit := func(name string) uint64 {
		for i := 0; i < NumAxioms; i++ {
			if AxiomName(i) == name {
				return 1 << i
			}
		}
		t.Fatalf("no axiom named %q", name)
		return 0
	}
	ppoRR, fenceRRBit := bit("ppo-RR"), bit("fence-RR")

	// WR keeps R→R order: the ppo pass emits perform→perform first, the
	// fence pass emits the same edge, and Freeze keeps only ppo-RR.
	pr := WR(Curr).Prepare(prog)
	defer pr.Close()
	cov := pr.Coverage()
	if cov.Fired&ppoRR == 0 || cov.Fired&fenceRRBit == 0 {
		t.Fatalf("Fired = %b: both ppo-RR and fence-RR must fire", cov.Fired)
	}
	if cov.Edges&ppoRR == 0 {
		t.Errorf("Edges missing ppo-RR, the dedup winner")
	}
	if cov.Edges&fenceRRBit != 0 {
		t.Errorf("Edges contains fence-RR although its only edge deduped away")
	}

	// rMM relaxes R→R: the fence edge is now the only one and owns its
	// storage.
	pr2 := RMM(Curr).Prepare(prog)
	defer pr2.Close()
	cov2 := pr2.Coverage()
	if cov2.Fired&ppoRR != 0 {
		t.Errorf("ppo-RR fired on rMM, which relaxes R→R")
	}
	if cov2.Fired&fenceRRBit == 0 || cov2.Edges&fenceRRBit == 0 {
		t.Fatalf("Fired=%b Edges=%b: fence-RR must fire and own its edge on rMM",
			cov2.Fired, cov2.Edges)
	}
}

// TestCoverageCycleProvenance: evaluating MP on a model that forbids the
// mp reordering finds forbidding cycles, and every cycle-witnessed axiom
// is one that owns a stored edge.
func TestCoverageCycleProvenance(t *testing.T) {
	tst := litmus.MP.Instantiate([]c11.Order{c11.Rlx, c11.Rel, c11.Acq, c11.Rlx})
	prog, err := compile.Compile(compile.RISCVBaseIntuitive, tst.Prog)
	if err != nil {
		t.Fatal(err)
	}
	pr := WR(Curr).Prepare(prog)
	defer pr.Close()
	if _, err := pr.Evaluate(); err != nil {
		t.Fatal(err)
	}
	cov := pr.Coverage()
	if cov.Cycle == 0 {
		t.Fatal("no cycle-witnessed axioms although WR forbids candidate executions")
	}
	if stray := cov.Cycle &^ cov.Edges; stray != 0 {
		t.Errorf("cycle bits %b not backed by stored edges %b", stray, cov.Edges)
	}
	if stray := cov.Edges &^ cov.Fired; stray != 0 {
		t.Errorf("edge bits %b not backed by fired bits %b", stray, cov.Fired)
	}
}
