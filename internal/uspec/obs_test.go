package uspec

import (
	"testing"

	"tricheck/internal/c11"
	"tricheck/internal/compile"
	"tricheck/internal/litmus"
	"tricheck/internal/mem"
	"tricheck/internal/obs"
)

// TestVerdictHotPathZeroAllocWithMetrics is the PR-3 invariant
// regression under telemetry: with the metrics registry live and
// sampling at its defaults (verdict spans 1-in-16, cycle timing off),
// the per-execution overlay cycle check must still allocate nothing and
// format no diagnostic strings. The phase histograms are pure atomic
// adds and the innermost loop pays only one atomic load per graph, so
// enabling observability must not move allocs/op on the verdict path.
func TestVerdictHotPathZeroAllocWithMetrics(t *testing.T) {
	tst := litmus.WRC.Instantiate([]c11.Order{c11.SC, c11.SC, c11.Rel, c11.Acq, c11.Rlx})
	prog, err := compile.Compile(compile.RISCVAtomicsRefined, tst.Prog)
	if err != nil {
		t.Fatal(err)
	}
	m := NMM(Ours)
	pr := m.Prepare(prog)
	defer pr.Close()

	check := func(label string) {
		checked := false
		formatsBefore := DiagnosticFormats()
		err := mem.Enumerate(prog.Mem(), func(x *mem.Execution) bool {
			// x is only valid inside the callback; measure here.
			allocs := testing.AllocsPerRun(100, func() {
				pr.ExecutionObservable(x)
			})
			if allocs != 0 {
				t.Errorf("%s: ExecutionObservable allocates %.1f/op, want 0", label, allocs)
			}
			checked = true
			return false // one execution is enough
		})
		if err != nil && err != mem.ErrStopped {
			t.Fatal(err)
		}
		if !checked {
			t.Fatal("no executions enumerated")
		}
		if got := DiagnosticFormats() - formatsBefore; got != 0 {
			t.Errorf("%s: hot path formatted %d diagnostic strings, want 0", label, got)
		}
	}

	check("default sampling")

	// Even with innermost-loop cycle timing forced on (every check
	// timed), the record path is clock reads + atomic adds: still
	// alloc-free. This covers the phaseCycle.Observe branch too — it is
	// taken inside Evaluate, not ExecutionObservable, so exercise a full
	// Evaluate for the diagnostic-format half of the invariant.
	obs.SetCycleSampling(1)
	defer obs.SetCycleSampling(0)
	check("cycle sampling 1-in-1")
	formatsBefore := DiagnosticFormats()
	if _, err := pr.Evaluate(); err != nil {
		t.Fatal(err)
	}
	if got := DiagnosticFormats() - formatsBefore; got != 0 {
		t.Errorf("Evaluate with cycle timing on formatted %d diagnostic strings, want 0", got)
	}
	if phaseCycle.Count() == 0 {
		t.Error("cycle-phase histogram empty with sampling forced on")
	}
}
