package uspec

import (
	"io/fs"
	"reflect"
	"testing"
)

// FuzzParseSpec hardens the model-spec parser the same way
// FuzzParseLitmus hardens the litmus parser: any input may be rejected,
// but an accepted input must (a) produce a config that passes Validate
// (ParseSpec's contract), and (b) round-trip — its canonical emission
// reparses to the identical config and is a byte fixed point. Crashers
// get committed under testdata/fuzz/FuzzParseSpec.
//
//	go test -fuzz=FuzzParseSpec ./internal/uspec
func FuzzParseSpec(f *testing.F) {
	paths, err := fs.Glob(specFS, "specs/*.uspec")
	if err != nil {
		f.Fatal(err)
	}
	for _, path := range paths {
		data, err := fs.ReadFile(specFS, path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(data))
	}
	// A few shapes the builtins don't cover: comments between directives,
	// escaped descriptions, whitespace salad.
	f.Add("uspec x\n(* multi\nline *)\nvariant ours\nrelax RM\nrespect-deps\n")
	f.Add("uspec a.b+c-d\ndescription \"say \\\"hi\\\"\"\nvariant curr\n  order-same-addr-rr  \nrespect-deps")
	f.Fuzz(func(t *testing.T, src string) {
		s, err := ParseSpec(src)
		if err != nil {
			return
		}
		if verr := s.Validate(); verr != nil {
			t.Fatalf("ParseSpec accepted an invalid config: %v\ninput: %q", verr, src)
		}
		out := s.EmitSpec()
		s2, err := ParseSpec(out)
		if err != nil {
			t.Fatalf("emitted spec does not reparse: %v\nemitted: %q\ninput: %q", err, out, src)
		}
		if !reflect.DeepEqual(s, s2) {
			t.Fatalf("round trip changed the config:\n first %+v\nsecond %+v\ninput: %q", s, s2, src)
		}
		if out2 := s2.EmitSpec(); out2 != out {
			t.Fatalf("emission is not a fixed point:\n first %q\nsecond %q", out, out2)
		}
	})
}
