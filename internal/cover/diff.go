package cover

import "sort"

// Flip is one (test, config) whose verdict changed between two
// snapshots — the signal that a model or mapping edit moved a result.
type Flip struct {
	Test  string `json:"test"`
	Stack string `json:"stack"`
	Old   string `json:"old"`
	New   string `json:"new"`
}

// Regression is one (model, axiom, kind) matrix cell that lost all
// coverage: nonzero in the old snapshot, zero in the new one, for a
// model present in both. Kind is "fired", "edges" or "cycles".
type Regression struct {
	Model string `json:"model"`
	Axiom string `json:"axiom"`
	Kind  string `json:"kind"`
}

// DiffResult reports what changed between two coverage snapshots.
// OnlyOld/OnlyNew count vectors present on just one side (different
// sweep scopes rather than changed results).
type DiffResult struct {
	Flips       []Flip       `json:"flips,omitempty"`
	Regressions []Regression `json:"regressions,omitempty"`
	OnlyOld     int          `json:"only_old,omitempty"`
	OnlyNew     int          `json:"only_new,omitempty"`
}

// Clean reports whether the diff found no flips and no regressions.
func (d *DiffResult) Clean() bool {
	return len(d.Flips) == 0 && len(d.Regressions) == 0
}

// Diff compares two snapshots — typically before and after a model edit:
// verdict flips on shared (test, config) vectors, and axiom-coverage
// regressions on shared models. Results are deterministic: flips sorted
// by (test, stack), regressions by (model, axiom, kind).
func Diff(old, cur *Snapshot) *DiffResult {
	res := &DiffResult{}

	curVec := make(map[[2]string]string, len(cur.Vectors))
	for _, v := range cur.Vectors {
		curVec[[2]string{v.Test, v.Stack}] = v.Verdict
	}
	matched := 0
	for _, v := range old.Vectors {
		nv, ok := curVec[[2]string{v.Test, v.Stack}]
		if !ok {
			res.OnlyOld++
			continue
		}
		matched++
		if nv != v.Verdict {
			res.Flips = append(res.Flips, Flip{Test: v.Test, Stack: v.Stack, Old: v.Verdict, New: nv})
		}
	}
	res.OnlyNew = len(cur.Vectors) - matched
	sort.Slice(res.Flips, func(i, j int) bool {
		if res.Flips[i].Test != res.Flips[j].Test {
			return res.Flips[i].Test < res.Flips[j].Test
		}
		return res.Flips[i].Stack < res.Flips[j].Stack
	})

	curModels := make(map[string]map[string]AxiomRow, len(cur.Models))
	for _, mm := range cur.Models {
		rows := make(map[string]AxiomRow, len(mm.Axioms))
		for _, r := range mm.Axioms {
			rows[r.Axiom] = r
		}
		curModels[mm.Model] = rows
	}
	for _, mm := range old.Models {
		rows, ok := curModels[mm.Model]
		if !ok {
			continue // model absent from the new run: scope change, not regression
		}
		for _, r := range mm.Axioms {
			nr := rows[r.Axiom] // zero row when the axiom vanished entirely
			for _, k := range [...]struct {
				kind     string
				old, new uint64
			}{
				{"fired", r.Fired, nr.Fired},
				{"edges", r.Edges, nr.Edges},
				{"cycles", r.Cycles, nr.Cycles},
			} {
				if k.old > 0 && k.new == 0 {
					res.Regressions = append(res.Regressions, Regression{
						Model: mm.Model, Axiom: r.Axiom, Kind: k.kind,
					})
				}
			}
		}
	}
	sort.Slice(res.Regressions, func(i, j int) bool {
		a, b := res.Regressions[i], res.Regressions[j]
		if a.Model != b.Model {
			return a.Model < b.Model
		}
		if a.Axiom != b.Axiom {
			return a.Axiom < b.Axiom
		}
		return a.Kind < b.Kind
	})
	return res
}
