// Package cover is the verification-coverage ledger: the observability
// layer for the verification domain itself, as opposed to the process
// telemetry in internal/obs. It aggregates three things across a run:
//
//   - a per-(model, axiom) matrix counting the evaluations in which each
//     axiom fired an edge, owned a stored (post-dedup) edge, and had an
//     edge on a forbidding cycle — the evidence that a model's axioms
//     were actually exercised, not merely configured;
//   - per-(test, config) verdict vectors — the raw material for the
//     discrimination matrix and the greedy minimal-suite reducer
//     (discriminate.go);
//   - snapshot diffing between runs, flagging verdict flips and
//     axiom-coverage regressions after a model edit (diff.go).
//
// The package is generic over the axiom space: callers hand NewLedger
// the axiom and verdict name catalogues (in tricheck, uspec.AxiomNames
// and the core verdict names), and every record call passes bitsets
// indexed the same way. Recording is lock-free atomic adds on the matrix
// side, so it can sit on the engine's job completion path.
package cover

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Ledger is a process- or engine-scoped coverage accumulator. Safe for
// concurrent use.
type Ledger struct {
	axioms   []string
	verdicts []string
	metrics  *Metrics

	mu     sync.Mutex
	models map[string]*ModelCoverage

	vmu     sync.Mutex
	vectors map[string]map[string]uint8 // test → stack → verdict ordinal
}

// NewLedger returns a ledger over the given axiom and verdict name
// catalogues. Axiom indices must fit a uint64 bitset.
func NewLedger(axioms, verdicts []string) *Ledger {
	if len(axioms) > 64 {
		panic(fmt.Sprintf("cover: %d axioms exceed the uint64 bitset", len(axioms)))
	}
	return &Ledger{
		axioms:   append([]string(nil), axioms...),
		verdicts: append([]string(nil), verdicts...),
		models:   map[string]*ModelCoverage{},
		vectors:  map[string]map[string]uint8{},
	}
}

// WithMetrics mirrors matrix records into per-axiom obs counters
// (aggregated over models — the full per-model matrix stays JSON-only to
// bound the Prometheus series count). Returns l for chaining.
func (l *Ledger) WithMetrics(m *Metrics) *Ledger {
	l.metrics = m
	return l
}

// Axioms returns the axiom catalogue the ledger is keyed by.
func (l *Ledger) Axioms() []string { return l.axioms }

// ModelCoverage is one model's row block of the coverage matrix:
// per-axiom evaluation counts and per-verdict job tallies, all atomic.
type ModelCoverage struct {
	name   string
	ledger *Ledger

	jobs     atomic.Uint64
	verdicts []atomic.Uint64
	fired    []atomic.Uint64
	edges    []atomic.Uint64
	cycles   []atomic.Uint64
}

// Model returns (registering on first use) the named model's matrix rows.
func (l *Ledger) Model(name string) *ModelCoverage {
	l.mu.Lock()
	defer l.mu.Unlock()
	mc := l.models[name]
	if mc == nil {
		n := len(l.axioms)
		mc = &ModelCoverage{
			name:     name,
			ledger:   l,
			verdicts: make([]atomic.Uint64, len(l.verdicts)),
			fired:    make([]atomic.Uint64, n),
			edges:    make([]atomic.Uint64, n),
			cycles:   make([]atomic.Uint64, n),
		}
		l.models[name] = mc
	}
	return mc
}

// Record folds one executed evaluation into the matrix: fired/edges/
// cycles are axiom bitsets (the per-job uspec.Coverage), verdict the
// job's verdict ordinal. Each set bit increments that axiom's
// evaluation count; the bitset-to-counter fold is the only per-job cost.
func (mc *ModelCoverage) Record(verdict int, fired, edges, cycles uint64) {
	mc.jobs.Add(1)
	if verdict >= 0 && verdict < len(mc.verdicts) {
		mc.verdicts[verdict].Add(1)
	}
	for b := fired; b != 0; b &= b - 1 {
		mc.fired[bits.TrailingZeros64(b)].Add(1)
	}
	for b := edges; b != 0; b &= b - 1 {
		mc.edges[bits.TrailingZeros64(b)].Add(1)
	}
	for b := cycles; b != 0; b &= b - 1 {
		mc.cycles[bits.TrailingZeros64(b)].Add(1)
	}
	mc.ledger.metrics.record(fired, edges, cycles)
}

// RecordVector stores the verdict of one (test, config) pair — executed
// or memoized — for the discrimination matrix. Verdicts are
// deterministic, so repeated records of the same pair are idempotent.
func (l *Ledger) RecordVector(test, stack string, verdict uint8) {
	l.vmu.Lock()
	row := l.vectors[test]
	if row == nil {
		row = map[string]uint8{}
		l.vectors[test] = row
	}
	row[stack] = verdict
	l.vmu.Unlock()
}

// AxiomRow is one (model, axiom) matrix cell group in a snapshot.
type AxiomRow struct {
	Axiom  string `json:"axiom"`
	Fired  uint64 `json:"fired"`
	Edges  uint64 `json:"edges"`
	Cycles uint64 `json:"cycles"`
}

// ModelMatrix is one model's snapshot block. Axioms lists only rows with
// at least one nonzero count, in catalogue order.
type ModelMatrix struct {
	Model    string            `json:"model"`
	Jobs     uint64            `json:"jobs"`
	Verdicts map[string]uint64 `json:"verdicts,omitempty"`
	Axioms   []AxiomRow        `json:"axioms"`
}

// VectorRecord is one (test, config) verdict in a snapshot.
type VectorRecord struct {
	Test    string `json:"test"`
	Stack   string `json:"stack"`
	Verdict string `json:"verdict"`
}

// Totals summarizes a snapshot: distinct axioms covered per kind (union
// over models), recorded jobs, and vector count.
type Totals struct {
	Models       int    `json:"models"`
	Jobs         uint64 `json:"jobs"`
	AxiomsFired  int    `json:"axioms_fired"`
	AxiomsEdged  int    `json:"axioms_edged"`
	AxiomsCycled int    `json:"axioms_cycled"`
	Vectors      int    `json:"vectors"`
}

// Snapshot is the ledger's portable JSON form — the GET /v1/coverage
// body and the `-coverage-out` / `coverage diff` file format. Fully
// deterministic: models sorted by name, axiom rows in catalogue order,
// vectors sorted by (test, stack).
type Snapshot struct {
	Axioms  []string       `json:"axioms"`
	Models  []ModelMatrix  `json:"models"`
	Vectors []VectorRecord `json:"vectors,omitempty"`
	Totals  Totals         `json:"totals"`
}

// verdictName renders a verdict ordinal from the catalogue.
func (l *Ledger) verdictName(v uint8) string {
	if int(v) < len(l.verdicts) {
		return l.verdicts[v]
	}
	return fmt.Sprintf("verdict(%d)", v)
}

// Snapshot captures the ledger's current state.
func (l *Ledger) Snapshot() *Snapshot {
	s := &Snapshot{Axioms: append([]string(nil), l.axioms...)}
	var unionFired, unionEdges, unionCycles uint64

	l.mu.Lock()
	names := make([]string, 0, len(l.models))
	for name := range l.models {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		mc := l.models[name]
		mm := ModelMatrix{Model: name, Jobs: mc.jobs.Load()}
		for v := range mc.verdicts {
			if c := mc.verdicts[v].Load(); c > 0 {
				if mm.Verdicts == nil {
					mm.Verdicts = map[string]uint64{}
				}
				mm.Verdicts[l.verdictName(uint8(v))] = c
			}
		}
		for i := range l.axioms {
			row := AxiomRow{
				Axiom:  l.axioms[i],
				Fired:  mc.fired[i].Load(),
				Edges:  mc.edges[i].Load(),
				Cycles: mc.cycles[i].Load(),
			}
			if row.Fired == 0 && row.Edges == 0 && row.Cycles == 0 {
				continue
			}
			if row.Fired > 0 {
				unionFired |= 1 << i
			}
			if row.Edges > 0 {
				unionEdges |= 1 << i
			}
			if row.Cycles > 0 {
				unionCycles |= 1 << i
			}
			mm.Axioms = append(mm.Axioms, row)
		}
		s.Totals.Jobs += mm.Jobs
		s.Models = append(s.Models, mm)
	}
	l.mu.Unlock()

	l.vmu.Lock()
	for test, row := range l.vectors {
		for stack, v := range row {
			s.Vectors = append(s.Vectors, VectorRecord{
				Test: test, Stack: stack, Verdict: l.verdictName(v),
			})
		}
	}
	l.vmu.Unlock()
	sort.Slice(s.Vectors, func(i, j int) bool {
		if s.Vectors[i].Test != s.Vectors[j].Test {
			return s.Vectors[i].Test < s.Vectors[j].Test
		}
		return s.Vectors[i].Stack < s.Vectors[j].Stack
	})

	s.Totals.Models = len(s.Models)
	s.Totals.AxiomsFired = bits.OnesCount64(unionFired)
	s.Totals.AxiomsEdged = bits.OnesCount64(unionEdges)
	s.Totals.AxiomsCycled = bits.OnesCount64(unionCycles)
	s.Totals.Vectors = len(s.Vectors)
	return s
}

// TotalsNow computes the snapshot totals without materializing the full
// snapshot — the cheap form stamped onto NDJSON summary records.
func (l *Ledger) TotalsNow() Totals {
	var t Totals
	var unionFired, unionEdges, unionCycles uint64
	l.mu.Lock()
	t.Models = len(l.models)
	for _, mc := range l.models {
		t.Jobs += mc.jobs.Load()
		for i := range l.axioms {
			if mc.fired[i].Load() > 0 {
				unionFired |= 1 << i
			}
			if mc.edges[i].Load() > 0 {
				unionEdges |= 1 << i
			}
			if mc.cycles[i].Load() > 0 {
				unionCycles |= 1 << i
			}
		}
	}
	l.mu.Unlock()
	l.vmu.Lock()
	for _, row := range l.vectors {
		t.Vectors += len(row)
	}
	l.vmu.Unlock()
	t.AxiomsFired = bits.OnesCount64(unionFired)
	t.AxiomsEdged = bits.OnesCount64(unionEdges)
	t.AxiomsCycled = bits.OnesCount64(unionCycles)
	return t
}
