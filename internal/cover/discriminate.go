package cover

import (
	"math/bits"
	"sort"
)

// Discrimination is the per-(test, config) verdict-vector matrix
// assembled from a ledger's recorded vectors: Verdict[i][j] is test i's
// verdict ordinal on config j, or -1 when the pair was never recorded
// (e.g. a partial sweep).
type Discrimination struct {
	Tests   []string `json:"tests"`
	Stacks  []string `json:"stacks"`
	Verdict [][]int8 `json:"-"`
}

// Discrimination builds the matrix from the ledger's vectors, with tests
// and stacks in sorted order.
func (l *Ledger) Discrimination() *Discrimination {
	l.vmu.Lock()
	defer l.vmu.Unlock()
	d := &Discrimination{}
	stackSet := map[string]bool{}
	for test, row := range l.vectors {
		d.Tests = append(d.Tests, test)
		for stack := range row {
			if !stackSet[stack] {
				stackSet[stack] = true
				d.Stacks = append(d.Stacks, stack)
			}
		}
	}
	sort.Strings(d.Tests)
	sort.Strings(d.Stacks)
	d.Verdict = make([][]int8, len(d.Tests))
	for i, test := range d.Tests {
		row := make([]int8, len(d.Stacks))
		for j, stack := range d.Stacks {
			if v, ok := l.vectors[test][stack]; ok {
				row[j] = int8(v)
			} else {
				row[j] = -1
			}
		}
		d.Verdict[i] = row
	}
	return d
}

// Pick is one greedy suite selection: the test and the number of
// config pairs it newly separated when chosen.
type Pick struct {
	Test      string `json:"test"`
	Separated int    `json:"separated"`
}

// Suite is a minimal discriminating suite: the greedy set-cover
// reduction of a discrimination matrix. Picks (in selection order)
// jointly separate every separable config pair; Inseparable lists the
// pairs no recorded test distinguishes — configs whose verdict vectors
// are identical over the whole matrix.
type Suite struct {
	Configs        int         `json:"configs"`
	SeparablePairs int         `json:"separable_pairs"`
	Picks          []Pick      `json:"picks"`
	Inseparable    [][2]string `json:"inseparable,omitempty"`
}

// MinimalSuite runs greedy set cover over config pairs: repeatedly pick
// the test separating the most still-unseparated pairs (ties broken by
// test order, so the result is deterministic) until every separable pair
// is covered. Greedy set cover is a ln(n)-approximation of the true
// minimum — the standard bound; exact minimization is NP-hard.
//
// A test separates a pair (a, b) when it has a recorded verdict on both
// configs and the verdicts differ; missing entries never separate.
func (d *Discrimination) MinimalSuite() *Suite {
	s := &Suite{Configs: len(d.Stacks)}
	nPairs := len(d.Stacks) * (len(d.Stacks) - 1) / 2
	if nPairs == 0 {
		return s
	}
	words := (nPairs + 63) / 64

	// Per-test bitset over pair indices; pair (j, k), j<k, has index
	// j*(2n-j-1)/2 + (k-j-1) — the row-major upper triangle.
	n := len(d.Stacks)
	pairIdx := func(j, k int) int { return j*(2*n-j-1)/2 + (k - j - 1) }
	sep := make([][]uint64, len(d.Tests))
	for i, row := range d.Verdict {
		bs := make([]uint64, words)
		for j := 0; j < n; j++ {
			if row[j] < 0 {
				continue
			}
			for k := j + 1; k < n; k++ {
				if row[k] >= 0 && row[k] != row[j] {
					p := pairIdx(j, k)
					bs[p/64] |= 1 << (p % 64)
				}
			}
		}
		sep[i] = bs
	}

	// Universe: pairs some test separates. The rest are inseparable.
	universe := make([]uint64, words)
	for _, bs := range sep {
		for w := range universe {
			universe[w] |= bs[w]
		}
	}
	for j := 0; j < n; j++ {
		for k := j + 1; k < n; k++ {
			p := pairIdx(j, k)
			if universe[p/64]&(1<<(p%64)) == 0 {
				s.Inseparable = append(s.Inseparable, [2]string{d.Stacks[j], d.Stacks[k]})
			}
		}
	}
	remaining := 0
	for _, w := range universe {
		remaining += bits.OnesCount64(w)
	}
	s.SeparablePairs = remaining

	for remaining > 0 {
		best, bestGain := -1, 0
		for i, bs := range sep {
			gain := 0
			for w := range bs {
				gain += bits.OnesCount64(bs[w] & universe[w])
			}
			if gain > bestGain {
				best, bestGain = i, gain
			}
		}
		if best < 0 {
			break // unreachable: every universe pair is separable
		}
		for w := range universe {
			universe[w] &^= sep[best][w]
		}
		remaining -= bestGain
		s.Picks = append(s.Picks, Pick{Test: d.Tests[best], Separated: bestGain})
	}
	return s
}
