package cover

import (
	"math/bits"

	"tricheck/internal/obs"
)

// Metrics mirrors ledger matrix records into an obs registry as
// per-axiom counters aggregated over models: one series per (axiom,
// kind) — bounded by the axiom catalogue, never by the model count, so a
// 100-config lattice sweep cannot explode the Prometheus series space.
// The full per-model matrix is only in the JSON snapshot.
type Metrics struct {
	fired, edges, cycles []*obs.Counter
}

// NewMetrics registers (idempotently) the coverage counter family in r.
func NewMetrics(r *obs.Registry, axioms []string) *Metrics {
	const help = "Verification evaluations contributing axiom coverage, by axiom and kind (aggregated over models)."
	m := &Metrics{
		fired:  make([]*obs.Counter, len(axioms)),
		edges:  make([]*obs.Counter, len(axioms)),
		cycles: make([]*obs.Counter, len(axioms)),
	}
	for i, name := range axioms {
		m.fired[i] = r.Counter("tricheck_coverage_axioms_total", help, obs.L("axiom", name), obs.L("kind", "fired"))
		m.edges[i] = r.Counter("tricheck_coverage_axioms_total", help, obs.L("axiom", name), obs.L("kind", "edges"))
		m.cycles[i] = r.Counter("tricheck_coverage_axioms_total", help, obs.L("axiom", name), obs.L("kind", "cycles"))
	}
	return m
}

// record folds one evaluation's bitsets into the counters; nil-safe.
func (m *Metrics) record(fired, edges, cycles uint64) {
	if m == nil {
		return
	}
	for b := fired; b != 0; b &= b - 1 {
		m.fired[bits.TrailingZeros64(b)].Inc()
	}
	for b := edges; b != 0; b &= b - 1 {
		m.edges[bits.TrailingZeros64(b)].Inc()
	}
	for b := cycles; b != 0; b &= b - 1 {
		m.cycles[bits.TrailingZeros64(b)].Inc()
	}
}
