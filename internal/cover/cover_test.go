package cover

import (
	"encoding/json"
	"reflect"
	"sync"
	"testing"

	"tricheck/internal/obs"
)

var testAxioms = []string{"alpha", "beta", "gamma", "delta"}
var testVerdicts = []string{"Equivalent", "OverlyStrict", "Bug"}

func TestLedgerRecordAndSnapshot(t *testing.T) {
	l := NewLedger(testAxioms, testVerdicts)
	m := l.Model("m1")
	m.Record(2, 0b0011, 0b0001, 0b0001) // alpha+beta fired, alpha edged+cycled
	m.Record(0, 0b0010, 0b0010, 0)      // beta fired+edged
	l.Model("m0").Record(1, 0b1000, 0b1000, 0)
	l.RecordVector("t1", "s1", 2)
	l.RecordVector("t1", "s2", 0)
	l.RecordVector("t0", "s1", 0)
	l.RecordVector("t1", "s1", 2) // idempotent repeat

	s := l.Snapshot()
	if got := []string{s.Models[0].Model, s.Models[1].Model}; got[0] != "m0" || got[1] != "m1" {
		t.Fatalf("models not sorted: %v", got)
	}
	m1 := s.Models[1]
	if m1.Jobs != 2 || m1.Verdicts["Bug"] != 1 || m1.Verdicts["Equivalent"] != 1 {
		t.Fatalf("m1 block = %+v", m1)
	}
	wantRows := []AxiomRow{
		{Axiom: "alpha", Fired: 1, Edges: 1, Cycles: 1},
		{Axiom: "beta", Fired: 2, Edges: 1, Cycles: 0},
	}
	if !reflect.DeepEqual(m1.Axioms, wantRows) {
		t.Fatalf("m1 axiom rows = %+v, want %+v", m1.Axioms, wantRows)
	}
	wantVec := []VectorRecord{
		{Test: "t0", Stack: "s1", Verdict: "Equivalent"},
		{Test: "t1", Stack: "s1", Verdict: "Bug"},
		{Test: "t1", Stack: "s2", Verdict: "Equivalent"},
	}
	if !reflect.DeepEqual(s.Vectors, wantVec) {
		t.Fatalf("vectors = %+v, want %+v", s.Vectors, wantVec)
	}
	want := Totals{Models: 2, Jobs: 3, AxiomsFired: 3, AxiomsEdged: 3, AxiomsCycled: 1, Vectors: 3}
	if s.Totals != want {
		t.Fatalf("totals = %+v, want %+v", s.Totals, want)
	}
	if got := l.TotalsNow(); got != want {
		t.Fatalf("TotalsNow = %+v, want %+v", got, want)
	}

	// The snapshot is deterministic down to the marshaled bytes.
	b1, _ := json.Marshal(s)
	b2, _ := json.Marshal(l.Snapshot())
	if string(b1) != string(b2) {
		t.Fatal("repeated snapshots marshal differently")
	}
}

func TestLedgerConcurrentRecord(t *testing.T) {
	l := NewLedger(testAxioms, testVerdicts)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				l.Model("m").Record(i%3, 0b0101, 0b0001, 0b0100)
				l.RecordVector("t", "s", uint8(2))
			}
		}()
	}
	wg.Wait()
	s := l.Snapshot()
	if s.Totals.Jobs != 4000 {
		t.Fatalf("jobs = %d, want 4000", s.Totals.Jobs)
	}
	rows := s.Models[0].Axioms
	if len(rows) != 2 || rows[0].Fired != 4000 || rows[0].Edges != 4000 || rows[1].Cycles != 4000 {
		t.Fatalf("rows = %+v", rows)
	}
}

func TestMetricsMirrorsRecords(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg, testAxioms)
	l := NewLedger(testAxioms, testVerdicts).WithMetrics(m)
	l.Model("a").Record(0, 0b0011, 0b0001, 0)
	l.Model("b").Record(2, 0b0001, 0b0001, 0b0001)
	if got := m.fired[0].Value(); got != 2 {
		t.Errorf("fired[alpha] = %d, want 2 (aggregated over models)", got)
	}
	if got := m.edges[0].Value(); got != 2 {
		t.Errorf("edges[alpha] = %d, want 2", got)
	}
	if got := m.cycles[0].Value(); got != 1 {
		t.Errorf("cycles[alpha] = %d, want 1", got)
	}
	if got := m.fired[1].Value(); got != 1 {
		t.Errorf("fired[beta] = %d, want 1", got)
	}
}

// TestMinimalSuiteGreedy pins the reducer on a matrix with a known
// exact cover: t_broad separates most pairs, t_fine is required for one
// residual pair, t_redundant adds nothing and must not be picked.
func TestMinimalSuiteGreedy(t *testing.T) {
	l := NewLedger(testAxioms, testVerdicts)
	// Configs s0..s3. t_broad: s0,s1 = Bug; s2,s3 = Equivalent
	// (separates 01|23 pairs: 02 03 12 13). t_fine: s0 = Bug, rest
	// Equivalent (separates 01, 02, 03). t_redundant duplicates t_broad.
	// Pair (s2,s3) is separated by no test → inseparable.
	for _, v := range []struct {
		test  string
		verds [4]uint8
	}{
		{"t_broad", [4]uint8{2, 2, 0, 0}},
		{"t_fine", [4]uint8{2, 0, 0, 0}},
		{"t_redundant", [4]uint8{2, 2, 0, 0}},
	} {
		for j, verdict := range v.verds {
			l.RecordVector(v.test, []string{"s0", "s1", "s2", "s3"}[j], verdict)
		}
	}
	d := l.Discrimination()
	if len(d.Tests) != 3 || len(d.Stacks) != 4 {
		t.Fatalf("matrix %dx%d, want 3x4", len(d.Tests), len(d.Stacks))
	}
	s := d.MinimalSuite()
	if s.Configs != 4 || s.SeparablePairs != 5 {
		t.Fatalf("configs=%d separable=%d, want 4, 5", s.Configs, s.SeparablePairs)
	}
	wantPicks := []Pick{{Test: "t_broad", Separated: 4}, {Test: "t_fine", Separated: 1}}
	if !reflect.DeepEqual(s.Picks, wantPicks) {
		t.Fatalf("picks = %+v, want %+v", s.Picks, wantPicks)
	}
	if len(s.Inseparable) != 1 || s.Inseparable[0] != [2]string{"s2", "s3"} {
		t.Fatalf("inseparable = %v, want [[s2 s3]]", s.Inseparable)
	}

	// The picked suite must actually separate every separable pair.
	covered := map[[2]string]bool{}
	for _, p := range s.Picks {
		i := 0
		for ; d.Tests[i] != p.Test; i++ {
		}
		row := d.Verdict[i]
		for a := 0; a < len(d.Stacks); a++ {
			for b := a + 1; b < len(d.Stacks); b++ {
				if row[a] >= 0 && row[b] >= 0 && row[a] != row[b] {
					covered[[2]string{d.Stacks[a], d.Stacks[b]}] = true
				}
			}
		}
	}
	if len(covered) != s.SeparablePairs {
		t.Fatalf("suite covers %d pairs, want %d", len(covered), s.SeparablePairs)
	}
}

// TestMinimalSuiteMissingEntries: unknown verdicts (-1) never separate.
func TestMinimalSuiteMissingEntries(t *testing.T) {
	l := NewLedger(testAxioms, testVerdicts)
	l.RecordVector("t", "s0", 2)
	l.RecordVector("t", "s1", 2)
	l.RecordVector("u", "s1", 0) // u has no verdict on s0
	s := l.Discrimination().MinimalSuite()
	if s.SeparablePairs != 0 || len(s.Picks) != 0 {
		t.Fatalf("partial matrix separated pairs: %+v", s)
	}
	if len(s.Inseparable) != 1 {
		t.Fatalf("inseparable = %v, want the single (s0,s1) pair", s.Inseparable)
	}
}

func TestMinimalSuiteDeterministic(t *testing.T) {
	build := func() *Suite {
		l := NewLedger(testAxioms, testVerdicts)
		// Ties everywhere: three identical tests; selection must always
		// pick the lexicographically first.
		for _, test := range []string{"c", "a", "b"} {
			l.RecordVector(test, "s0", 2)
			l.RecordVector(test, "s1", 0)
		}
		return l.Discrimination().MinimalSuite()
	}
	s1, s2 := build(), build()
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("non-deterministic suites: %+v vs %+v", s1, s2)
	}
	if len(s1.Picks) != 1 || s1.Picks[0].Test != "a" {
		t.Fatalf("tie-break pick = %+v, want test a", s1.Picks)
	}
}

func TestDiff(t *testing.T) {
	mk := func(verdict string, fired uint64, withBeta bool) *Snapshot {
		l := NewLedger(testAxioms, testVerdicts)
		bits := fired
		if withBeta {
			bits |= 0b0010
		}
		l.Model("m").Record(0, bits, bits, 0)
		var v uint8
		for i, name := range testVerdicts {
			if name == verdict {
				v = uint8(i)
			}
		}
		l.RecordVector("t", "s", v)
		l.RecordVector("t_old_only", "s", 0)
		return l.Snapshot()
	}
	old := mk("Bug", 0b0001, true)
	cur := mk("Equivalent", 0b0001, false)
	cur.Vectors = cur.Vectors[:1] // drop t_old_only; add a new-only one
	cur.Vectors = append(cur.Vectors, VectorRecord{Test: "t_new_only", Stack: "s", Verdict: "Bug"})
	cur.Totals.Vectors = len(cur.Vectors)

	d := Diff(old, cur)
	if d.Clean() {
		t.Fatal("diff reported clean despite a flip and regressions")
	}
	wantFlips := []Flip{{Test: "t", Stack: "s", Old: "Bug", New: "Equivalent"}}
	if !reflect.DeepEqual(d.Flips, wantFlips) {
		t.Fatalf("flips = %+v, want %+v", d.Flips, wantFlips)
	}
	wantReg := []Regression{
		{Model: "m", Axiom: "beta", Kind: "edges"},
		{Model: "m", Axiom: "beta", Kind: "fired"},
	}
	if !reflect.DeepEqual(d.Regressions, wantReg) {
		t.Fatalf("regressions = %+v, want %+v", d.Regressions, wantReg)
	}
	if d.OnlyOld != 1 || d.OnlyNew != 1 {
		t.Fatalf("only_old=%d only_new=%d, want 1, 1", d.OnlyOld, d.OnlyNew)
	}
	if !Diff(old, old).Clean() {
		t.Fatal("self-diff must be clean")
	}
}
