package prof

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartEmptyPrefixIsNoop(t *testing.T) {
	stop, err := Start("")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestStartWritesBothProfiles(t *testing.T) {
	prefix := filepath.Join(t.TempDir(), "run")
	stop, err := Start(prefix)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has samples to encode.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, suffix := range []string{".cpu.pprof", ".mem.pprof"} {
		fi, err := os.Stat(prefix + suffix)
		if err != nil {
			t.Fatalf("missing %s: %v", suffix, err)
		}
		if fi.Size() == 0 {
			t.Errorf("%s is empty", suffix)
		}
	}
}

// TestSessionStopIdempotent pins the property the CLIs rely on around
// os.Exit paths: Stop can be called from the normal path, the fatal
// hook and a defer, in any combination, and only the first does work.
func TestSessionStopIdempotent(t *testing.T) {
	prefix := filepath.Join(t.TempDir(), "run")
	s, err := Begin(prefix)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}
	heap := prefix + ".mem.pprof"
	st1, err := os.Stat(heap)
	if err != nil {
		t.Fatal(err)
	}
	// Second and third stops: no error, no rewrite.
	if err := s.Stop(); err != nil {
		t.Errorf("second Stop: %v", err)
	}
	if err := s.Stop(); err != nil {
		t.Errorf("third Stop: %v", err)
	}
	st2, err := os.Stat(heap)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.ModTime().Equal(st1.ModTime()) || st2.Size() != st1.Size() {
		t.Error("repeated Stop rewrote the heap profile")
	}
	if sessionsActive.Value() != 0 {
		t.Errorf("active-sessions gauge = %d after stop, want 0", sessionsActive.Value())
	}
}

// TestInertSession pins the empty-prefix and nil cases: all no-ops.
func TestInertSession(t *testing.T) {
	s, err := Begin("")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Stop(); err != nil {
		t.Errorf("inert Stop: %v", err)
	}
	var nilSession *Session
	if err := nilSession.Stop(); err != nil {
		t.Errorf("nil Stop: %v", err)
	}
}
