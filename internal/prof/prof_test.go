package prof

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartEmptyPrefixIsNoop(t *testing.T) {
	stop, err := Start("")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestStartWritesBothProfiles(t *testing.T) {
	prefix := filepath.Join(t.TempDir(), "run")
	stop, err := Start(prefix)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has samples to encode.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, suffix := range []string{".cpu.pprof", ".mem.pprof"} {
		fi, err := os.Stat(prefix + suffix)
		if err != nil {
			t.Fatalf("missing %s: %v", suffix, err)
		}
		if fi.Size() == 0 {
			t.Errorf("%s is empty", suffix)
		}
	}
}
