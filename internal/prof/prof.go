// Package prof is the CLI profiling plumbing shared by the tricheck
// commands: a -profile flag value turns into a CPU profile captured for
// the lifetime of the run plus a heap profile snapshotted at the end, so
// performance work on the sweep paths can be grounded in real profiles
// (go tool pprof <binary> <prefix>.cpu.pprof).
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into <prefix>.cpu.pprof and returns a stop
// function that ends it and writes a heap profile to <prefix>.mem.pprof.
// An empty prefix is a no-op: Start returns a stop function that does
// nothing, so callers can wire the flag unconditionally.
func Start(prefix string) (stop func() error, err error) {
	if prefix == "" {
		return func() error { return nil }, nil
	}
	cpu, err := os.Create(prefix + ".cpu.pprof")
	if err != nil {
		return nil, fmt.Errorf("prof: %w", err)
	}
	if err := pprof.StartCPUProfile(cpu); err != nil {
		cpu.Close()
		return nil, fmt.Errorf("prof: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		if err := cpu.Close(); err != nil {
			return fmt.Errorf("prof: %w", err)
		}
		heap, err := os.Create(prefix + ".mem.pprof")
		if err != nil {
			return fmt.Errorf("prof: %w", err)
		}
		defer heap.Close()
		runtime.GC() // publish up-to-date allocation stats
		if err := pprof.Lookup("allocs").WriteTo(heap, 0); err != nil {
			return fmt.Errorf("prof: %w", err)
		}
		return nil
	}, nil
}
