// Package prof is the CLI profiling plumbing shared by the tricheck
// commands: a -profile flag value turns into a CPU profile captured for
// the lifetime of the run plus a heap profile snapshotted at the end, so
// performance work on the sweep paths can be grounded in real profiles
// (go tool pprof <binary> <prefix>.cpu.pprof).
//
// Stop is idempotent, which is the property the CLIs need: they stop
// the session on the normal exit path AND before every early os.Exit
// (-fail-on-bug, fatal errors) without once-guard boilerplate, and
// whichever call runs first wins. A deferred Stop alone is NOT enough —
// os.Exit skips defers, which is exactly how a -fail-on-bug exit would
// otherwise truncate the CPU profile and lose the heap profile.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"

	"tricheck/internal/obs"
)

// Session telemetry: starts/stops land in the process obs registry so a
// scrape (or -metrics-out dump) records whether a run was profiled —
// profiling overhead shows up in every duration histogram, and these
// markers keep that explicable.
var (
	sessionsStarted = obs.Default.Counter("tricheck_prof_sessions_total", "Profiling sessions by lifecycle event.", obs.L("event", "start"))
	sessionsStopped = obs.Default.Counter("tricheck_prof_sessions_total", "Profiling sessions by lifecycle event.", obs.L("event", "stop"))
	sessionsActive  = obs.Default.Gauge("tricheck_prof_active_sessions", "Profiling sessions currently recording.")
)

// Session is one active profiling capture. The zero/nil Session is
// inert: Begin("") returns one, so callers wire the -profile flag
// unconditionally and call Stop everywhere an exit can happen.
type Session struct {
	prefix string
	cpu    *os.File
	once   sync.Once
	err    error
}

// Begin starts CPU profiling into <prefix>.cpu.pprof. An empty prefix
// returns an inert session.
func Begin(prefix string) (*Session, error) {
	if prefix == "" {
		return &Session{}, nil
	}
	cpu, err := os.Create(prefix + ".cpu.pprof")
	if err != nil {
		return nil, fmt.Errorf("prof: %w", err)
	}
	if err := pprof.StartCPUProfile(cpu); err != nil {
		cpu.Close()
		return nil, fmt.Errorf("prof: %w", err)
	}
	sessionsStarted.Inc()
	sessionsActive.Add(1)
	return &Session{prefix: prefix, cpu: cpu}, nil
}

// Stop ends the CPU profile and snapshots the heap to
// <prefix>.mem.pprof. Idempotent and nil-safe: only the first call does
// the work (and its error is sticky); every later call returns that
// same error, so "defer s.Stop()" plus explicit Stops before os.Exit
// compose safely.
func (s *Session) Stop() error {
	if s == nil || s.prefix == "" {
		return nil
	}
	s.once.Do(func() {
		defer func() {
			sessionsStopped.Inc()
			sessionsActive.Add(-1)
		}()
		pprof.StopCPUProfile()
		if err := s.cpu.Close(); err != nil {
			s.err = fmt.Errorf("prof: %w", err)
			return
		}
		heap, err := os.Create(s.prefix + ".mem.pprof")
		if err != nil {
			s.err = fmt.Errorf("prof: %w", err)
			return
		}
		defer heap.Close()
		runtime.GC() // publish up-to-date allocation stats
		if err := pprof.Lookup("allocs").WriteTo(heap, 0); err != nil {
			s.err = fmt.Errorf("prof: %w", err)
		}
	})
	return s.err
}

// Start is the function-valued form of Begin/Stop kept for callers that
// want a stop closure; the closure is Session.Stop, so it inherits the
// idempotence.
func Start(prefix string) (stop func() error, err error) {
	s, err := Begin(prefix)
	if err != nil {
		return nil, err
	}
	return s.Stop, nil
}
