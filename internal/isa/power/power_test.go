package power

import (
	"testing"

	"tricheck/internal/isa"
	"tricheck/internal/mem"
)

func TestFenceCorrespondence(t *testing.T) {
	// Section 2.3.3's correspondence: sync = cumulative heavyweight,
	// lwsync = cumulative lightweight, ctrlisync = non-cumulative R→RW.
	if s := Sync(); s.Cum != isa.CumHW || s.Pred != isa.ClassRW || s.Succ != isa.ClassRW {
		t.Errorf("Sync = %+v", s)
	}
	if l := Lwsync(); l.Cum != isa.CumLW {
		t.Errorf("Lwsync = %+v", l)
	}
	if c := CtrlIsync(); c.Cum != isa.CumNone || c.Pred != isa.ClassR || c.Succ != isa.ClassRW {
		t.Errorf("CtrlIsync = %+v", c)
	}
}

func TestAccessConstructors(t *testing.T) {
	ld := LD(2, mem.Const(0))
	if ld.Op != isa.OpLoad || ld.Dst != 2 {
		t.Errorf("LD = %+v", ld)
	}
	st := ST(mem.Const(9), mem.Const(0))
	if st.Op != isa.OpStore || st.Data.Const != 9 {
		t.Errorf("ST = %+v", st)
	}
}

func TestAsmRendering(t *testing.T) {
	p := isa.NewProgram(isa.Power, 1, "x")
	cases := []struct {
		ins  isa.Instr
		want string
	}{
		{LD(0, mem.Const(0)), "ld r0, (x)"},
		{ST(mem.Const(1), mem.Const(0)), "st 1, (x)"},
		{Sync(), "hwsync"},
		{Lwsync(), "lwsync"},
		{CtrlIsync(), "ctrlisync"},
	}
	for _, c := range cases {
		ins := c.ins
		p.Add(0, ins)
		if got := Asm(p, &ins); got != c.want {
			t.Errorf("Asm = %q, want %q", got, c.want)
		}
	}
}
