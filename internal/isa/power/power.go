// Package power provides mnemonic constructors and assembly rendering for
// the Power (and, by modelling equivalence, ARMv7) instruction subset used
// in the paper's Section 7 compiler-mapping study.
//
// The fence correspondence (Section 2.3.3):
//
//	sync      = cumulative heavyweight fence   (ARMv7 dmb)
//	lwsync    = cumulative lightweight fence   (no ARMv7 equivalent)
//	ctrlisync = cmp;bc;isync — a non-cumulative load→R/W barrier, modelled
//	            as FENCE R,RW (ARMv7 ctrlisb = teq;beq;isb)
package power

import (
	"fmt"

	"tricheck/internal/isa"
	"tricheck/internal/mem"
)

// LD builds "ld dst, (addr)".
func LD(dst int, addr mem.Operand) isa.Instr {
	return isa.Instr{Op: isa.OpLoad, Addr: addr, Dst: dst}
}

// ST builds "st data, (addr)".
func ST(data, addr mem.Operand) isa.Instr {
	return isa.Instr{Op: isa.OpStore, Addr: addr, Data: data, Dst: mem.NoDst}
}

// Sync builds "hwsync" (cumulative heavyweight).
func Sync() isa.Instr {
	return isa.Instr{Op: isa.OpFence, Pred: isa.ClassRW, Succ: isa.ClassRW, Cum: isa.CumHW, Dst: mem.NoDst}
}

// Lwsync builds "lwsync" (cumulative lightweight).
func Lwsync() isa.Instr {
	return isa.Instr{Op: isa.OpFence, Pred: isa.ClassRW, Succ: isa.ClassRW, Cum: isa.CumLW, Dst: mem.NoDst}
}

// CtrlIsync builds the "cmp; bc; isync" sequence: a non-cumulative barrier
// ordering prior loads before all later accesses.
func CtrlIsync() isa.Instr {
	return isa.Instr{Op: isa.OpFence, Pred: isa.ClassR, Succ: isa.ClassRW, Cum: isa.CumNone, Dst: mem.NoDst}
}

// Asm renders one instruction in Power assembly style.
func Asm(p *isa.Program, ins *isa.Instr) string {
	loc := func(o mem.Operand) string {
		if o.Kind == mem.OpConst {
			return "(" + p.Mem().LocName(mem.Loc(o.Const)) + ")"
		}
		return fmt.Sprintf("(r%d)", o.Reg)
	}
	val := func(o mem.Operand) string {
		if o.Kind == mem.OpConst {
			return fmt.Sprintf("%d", o.Const)
		}
		return fmt.Sprintf("r%d", o.Reg)
	}
	switch ins.Op {
	case isa.OpLoad:
		return fmt.Sprintf("ld r%d, %s", ins.Dst, loc(ins.Addr))
	case isa.OpStore:
		return fmt.Sprintf("st %s, %s", val(ins.Data), loc(ins.Addr))
	case isa.OpFence:
		switch {
		case ins.Cum == isa.CumHW:
			return "hwsync"
		case ins.Cum == isa.CumLW:
			return "lwsync"
		default:
			return "ctrlisync"
		}
	}
	// Power has lwarx/stwcx loops rather than AMOs; render generically.
	return p.Render(ins)
}
