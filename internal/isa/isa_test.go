package isa

import (
	"strings"
	"testing"

	"tricheck/internal/mem"
)

func TestOpKindClassification(t *testing.T) {
	cases := []struct {
		op        OpKind
		amo       bool
		read, wrt bool
	}{
		{OpLoad, false, true, false},
		{OpStore, false, false, true},
		{OpAMOLoad, true, true, false}, // silent write-back
		{OpAMOStore, true, true, true},
		{OpAMOSwap, true, true, true},
		{OpAMOAdd, true, true, true},
	}
	for _, c := range cases {
		ins := Instr{Op: c.op}
		if c.op.IsAMO() != c.amo {
			t.Errorf("%v: IsAMO = %v, want %v", c.op, c.op.IsAMO(), c.amo)
		}
		if ins.HasReadPart() != c.read {
			t.Errorf("%v: HasReadPart = %v, want %v", c.op, ins.HasReadPart(), c.read)
		}
		if ins.HasWritePart() != c.wrt {
			t.Errorf("%v: HasWritePart = %v, want %v", c.op, ins.HasWritePart(), c.wrt)
		}
	}
}

func TestClassBits(t *testing.T) {
	if !ClassRW.HasR() || !ClassRW.HasW() {
		t.Error("ClassRW must include both")
	}
	if ClassR.HasW() || ClassW.HasR() {
		t.Error("single classes must not overlap")
	}
	if ClassR.String() != "r" || ClassW.String() != "w" || ClassRW.String() != "rw" {
		t.Errorf("class names: %s %s %s", ClassR, ClassW, ClassRW)
	}
	if Class(0).String() != "none" {
		t.Errorf("empty class renders %q", Class(0))
	}
}

func TestProgramEventMapping(t *testing.T) {
	p := NewProgram(RISCV, 2, "x", "y")
	p.Add(0, Instr{Op: OpStore, Addr: mem.Const(0), Data: mem.Const(1), Dst: mem.NoDst})
	p.Add(0, Instr{Op: OpFence, Pred: ClassRW, Succ: ClassW, Dst: mem.NoDst})
	p.Add(0, Instr{Op: OpAMOStore, Addr: mem.Const(1), Data: mem.Const(1), Dst: mem.NoDst, Rl: true})
	p.Add(1, Instr{Op: OpAMOLoad, Addr: mem.Const(1), Dst: 0, Aq: true})
	p.Add(1, Instr{Op: OpLoad, Addr: mem.Const(0), Dst: 1})
	events := p.Mem().Events()
	wantKinds := []mem.Kind{mem.Write, mem.Fence, mem.RMW, mem.Read, mem.Read}
	if len(events) != len(wantKinds) {
		t.Fatalf("%d events, want %d", len(events), len(wantKinds))
	}
	for i, e := range events {
		if e.Kind != wantKinds[i] {
			t.Errorf("event %d kind = %v, want %v", i, e.Kind, wantKinds[i])
		}
	}
	// InstrOf round-trips.
	for _, e := range events {
		ins := p.InstrOf(e.GID)
		if ins == nil {
			t.Fatalf("InstrOf(%d) nil", e.GID)
		}
	}
	if p.NumThreads() != 2 {
		t.Errorf("NumThreads = %d", p.NumThreads())
	}
}

func TestAMOStoreKeepsAtomicity(t *testing.T) {
	// Two AMO stores to one location must serialize through coherence
	// (their reads participate in RMW atomicity).
	p := NewProgram(RISCV, 1, "x")
	p.Add(0, Instr{Op: OpAMOStore, Addr: mem.Const(0), Data: mem.Const(1), Dst: mem.NoDst})
	p.Add(1, Instr{Op: OpAMOStore, Addr: mem.Const(0), Data: mem.Const(2), Dst: mem.NoDst})
	xs, err := mem.Executions(p.Mem())
	if err != nil {
		t.Fatal(err)
	}
	// Two serialization orders only.
	if len(xs) != 2 {
		t.Fatalf("%d executions, want 2", len(xs))
	}
}

func TestRenderCoversAllOps(t *testing.T) {
	p := NewProgram(RISCV, 1, "x")
	instrs := []Instr{
		{Op: OpLoad, Addr: mem.Const(0), Dst: 0},
		{Op: OpStore, Addr: mem.Const(0), Data: mem.Const(1), Dst: mem.NoDst},
		{Op: OpAMOLoad, Addr: mem.Const(0), Dst: 1, Aq: true},
		{Op: OpAMOStore, Addr: mem.Const(0), Data: mem.Const(2), Dst: mem.NoDst, Rl: true, SCBit: true},
		{Op: OpAMOSwap, Addr: mem.Const(0), Data: mem.Const(3), Dst: 2},
		{Op: OpAMOAdd, Addr: mem.Const(0), Data: mem.FromReg(0), Dst: 3},
		{Op: OpFence, Pred: ClassR, Succ: ClassRW, Dst: mem.NoDst},
		{Op: OpFence, Pred: ClassRW, Succ: ClassRW, Cum: CumLW, Dst: mem.NoDst},
		{Op: OpFence, Pred: ClassRW, Succ: ClassRW, Cum: CumHW, Dst: mem.NoDst},
	}
	for _, ins := range instrs {
		p.Add(0, ins)
	}
	out := p.String()
	for _, want := range []string{"load", "store", "amoload.aq", "amostore.rl.sc", "amoswap", "amoadd", "fence r, rw", "lightweight", "heavyweight"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
}

func TestArchAndCumulativityNames(t *testing.T) {
	for _, a := range []Arch{RISCV, Power, ARMv7} {
		if a.String() == "" || strings.HasPrefix(a.String(), "Arch(") {
			t.Errorf("arch %d has no name", a)
		}
	}
	for _, c := range []Cumulativity{CumNone, CumLW, CumHW} {
		if c.String() == "" || strings.HasPrefix(c.String(), "Cum(") {
			t.Errorf("cumulativity %d has no name", c)
		}
	}
}
