package riscv

import (
	"testing"

	"tricheck/internal/isa"
	"tricheck/internal/mem"
)

func TestConstructors(t *testing.T) {
	x := mem.Const(0)
	lw := LW(3, x)
	if lw.Op != isa.OpLoad || lw.Dst != 3 {
		t.Errorf("LW = %+v", lw)
	}
	sw := SW(mem.Const(7), x)
	if sw.Op != isa.OpStore || sw.Data.Const != 7 || sw.Dst != mem.NoDst {
		t.Errorf("SW = %+v", sw)
	}
	f := Fence(isa.ClassR, isa.ClassRW)
	if f.Op != isa.OpFence || f.Pred != isa.ClassR || f.Succ != isa.ClassRW || f.Cum != isa.CumNone {
		t.Errorf("Fence = %+v", f)
	}
	if FenceLW().Cum != isa.CumLW || FenceHW().Cum != isa.CumHW {
		t.Error("cumulative fence constructors broken")
	}
	amo := AMOLoad(1, x, true, false, true)
	if amo.Op != isa.OpAMOLoad || !amo.Aq || amo.Rl || !amo.SCBit {
		t.Errorf("AMOLoad = %+v", amo)
	}
	st := AMOStore(mem.Const(1), x, false, true, false)
	if st.Op != isa.OpAMOStore || st.Aq || !st.Rl {
		t.Errorf("AMOStore = %+v", st)
	}
	swp := AMOSwap(2, mem.Const(5), x, true, true, false)
	if swp.Op != isa.OpAMOSwap || swp.Dst != 2 {
		t.Errorf("AMOSwap = %+v", swp)
	}
	add := AMOAdd(2, mem.Const(5), x, false, false, false)
	if add.Op != isa.OpAMOAdd {
		t.Errorf("AMOAdd = %+v", add)
	}
}

func TestAsmRendering(t *testing.T) {
	p := isa.NewProgram(isa.RISCV, 2, "x", "y")
	cases := []struct {
		ins  isa.Instr
		want string
	}{
		{LW(0, mem.Const(0)), "lw r0, (x)"},
		{SW(mem.Const(1), mem.Const(1)), "sw 1, (y)"},
		{Fence(isa.ClassRW, isa.ClassW), "fence rw, w"},
		{FenceLW(), "fence.lwf"},
		{FenceHW(), "fence.hwf"},
		{AMOLoad(2, mem.Const(0), true, true, false), "amoadd.w.aq.rl r2, x0, (x)"},
		{AMOStore(mem.Const(3), mem.Const(1), false, true, true), "amoswap.w.rl.sc x0, 3, (y)"},
		{AMOSwap(1, mem.FromReg(0), mem.Const(0), false, false, false), "amoswap.w r1, r0, (x)"},
		{LW(1, mem.FromReg(0)), "lw r1, (r0)"},
	}
	for _, c := range cases {
		ins := c.ins
		p.Add(0, ins)
		got := Asm(p, &ins)
		if got != c.want {
			t.Errorf("Asm = %q, want %q", got, c.want)
		}
	}
}
