// Package riscv provides mnemonic constructors and assembly rendering for
// the RISC-V Base and Base+Atomics instruction subset used by TriCheck
// (paper Section 4), including the paper's proposed riscv-ours extensions:
// cumulative lightweight/heavyweight fences and the AMO ".sc" bit that
// decouples store atomicity from acquire/release semantics.
package riscv

import (
	"fmt"

	"tricheck/internal/isa"
	"tricheck/internal/mem"
)

// LW builds "lw dst, (addr)".
func LW(dst int, addr mem.Operand) isa.Instr {
	return isa.Instr{Op: isa.OpLoad, Addr: addr, Dst: dst}
}

// SW builds "sw data, (addr)".
func SW(data, addr mem.Operand) isa.Instr {
	return isa.Instr{Op: isa.OpStore, Addr: addr, Data: data, Dst: mem.NoDst}
}

// Fence builds the Base "fence pred, succ" (non-cumulative).
func Fence(pred, succ isa.Class) isa.Instr {
	return isa.Instr{Op: isa.OpFence, Pred: pred, Succ: succ, Cum: isa.CumNone, Dst: mem.NoDst}
}

// FenceLW builds the paper's proposed cumulative lightweight fence (lwf).
func FenceLW() isa.Instr {
	return isa.Instr{Op: isa.OpFence, Pred: isa.ClassRW, Succ: isa.ClassRW, Cum: isa.CumLW, Dst: mem.NoDst}
}

// FenceHW builds the paper's proposed cumulative heavyweight fence (hwf).
func FenceHW() isa.Instr {
	return isa.Instr{Op: isa.OpFence, Pred: isa.ClassRW, Succ: isa.ClassRW, Cum: isa.CumHW, Dst: mem.NoDst}
}

// AMOLoad builds "amoadd.w dst, x0, (addr)" with the given annotation bits:
// an atomic load implemented as a fetch-and-add of zero (Section 5.2).
func AMOLoad(dst int, addr mem.Operand, aq, rl, sc bool) isa.Instr {
	return isa.Instr{Op: isa.OpAMOLoad, Addr: addr, Dst: dst, Aq: aq, Rl: rl, SCBit: sc}
}

// AMOStore builds "amoswap.w x0, data, (addr)": an atomic store implemented
// as a swap discarding the old value.
func AMOStore(data, addr mem.Operand, aq, rl, sc bool) isa.Instr {
	return isa.Instr{Op: isa.OpAMOStore, Addr: addr, Data: data, Dst: mem.NoDst, Aq: aq, Rl: rl, SCBit: sc}
}

// AMOSwap builds a general "amoswap.w dst, data, (addr)".
func AMOSwap(dst int, data, addr mem.Operand, aq, rl, sc bool) isa.Instr {
	return isa.Instr{Op: isa.OpAMOSwap, Addr: addr, Data: data, Dst: dst, Aq: aq, Rl: rl, SCBit: sc}
}

// AMOAdd builds a general "amoadd.w dst, data, (addr)".
func AMOAdd(dst int, data, addr mem.Operand, aq, rl, sc bool) isa.Instr {
	return isa.Instr{Op: isa.OpAMOAdd, Addr: addr, Data: data, Dst: dst, Aq: aq, Rl: rl, SCBit: sc}
}

// Asm renders one instruction in RISC-V assembly style. Locations render
// symbolically: "(x)" stands for a register holding the address of x.
func Asm(p *isa.Program, ins *isa.Instr) string {
	loc := func(o mem.Operand) string {
		if o.Kind == mem.OpConst {
			return "(" + p.Mem().LocName(mem.Loc(o.Const)) + ")"
		}
		return fmt.Sprintf("(r%d)", o.Reg)
	}
	val := func(o mem.Operand) string {
		if o.Kind == mem.OpConst {
			return fmt.Sprintf("%d", o.Const)
		}
		return fmt.Sprintf("r%d", o.Reg)
	}
	bits := func() string {
		s := ""
		if ins.Aq {
			s += ".aq"
		}
		if ins.Rl {
			s += ".rl"
		}
		if ins.SCBit {
			s += ".sc"
		}
		return s
	}
	switch ins.Op {
	case isa.OpLoad:
		return fmt.Sprintf("lw r%d, %s", ins.Dst, loc(ins.Addr))
	case isa.OpStore:
		return fmt.Sprintf("sw %s, %s", val(ins.Data), loc(ins.Addr))
	case isa.OpAMOLoad:
		return fmt.Sprintf("amoadd.w%s r%d, x0, %s", bits(), ins.Dst, loc(ins.Addr))
	case isa.OpAMOStore:
		return fmt.Sprintf("amoswap.w%s x0, %s, %s", bits(), val(ins.Data), loc(ins.Addr))
	case isa.OpAMOSwap:
		return fmt.Sprintf("amoswap.w%s r%d, %s, %s", bits(), ins.Dst, val(ins.Data), loc(ins.Addr))
	case isa.OpAMOAdd:
		return fmt.Sprintf("amoadd.w%s r%d, %s, %s", bits(), ins.Dst, val(ins.Data), loc(ins.Addr))
	case isa.OpFence:
		switch ins.Cum {
		case isa.CumLW:
			return "fence.lwf"
		case isa.CumHW:
			return "fence.hwf"
		}
		return fmt.Sprintf("fence %s, %s", ins.Pred, ins.Succ)
	}
	return "?"
}
