// Package isa defines the instruction-level vocabulary shared by the
// RISC-V and Power/ARMv7 backends: loads, stores, atomic memory operations
// (AMOs) with acquire/release/store-atomicity annotations, and fences with
// predecessor/successor access classes and a cumulativity level.
//
// One vocabulary intentionally covers both ISAs (Section 2.3.3 of the paper
// makes the correspondence explicit): Power's sync is a cumulative
// heavyweight fence, lwsync a cumulative lightweight fence, and the
// ctrl+isync idiom is a non-cumulative FENCE R,RW. The per-ISA subpackages
// provide mnemonic constructors and assembly rendering.
package isa

import (
	"fmt"
	"strings"

	"tricheck/internal/mem"
)

// Arch identifies the target instruction set.
type Arch uint8

// Architectures.
const (
	// RISCV is the RISC-V Base or Base+A ISA (paper Section 4).
	RISCV Arch = iota
	// Power is the IBM Power subset used in Section 7.
	Power
	// ARMv7 shares the Power modelling (dmb ≈ sync, ctrlisb ≈ ctrlisync).
	ARMv7
)

// String returns the architecture name.
func (a Arch) String() string {
	switch a {
	case RISCV:
		return "riscv"
	case Power:
		return "power"
	case ARMv7:
		return "armv7"
	}
	return fmt.Sprintf("Arch(%d)", uint8(a))
}

// Class is a bitmask of access classes used in fence predecessor/successor
// sets (the RISC-V FENCE pr/pw/sr/sw bits).
type Class uint8

// Access classes.
const (
	// ClassR selects reads.
	ClassR Class = 1 << iota
	// ClassW selects writes.
	ClassW
	// ClassRW selects both.
	ClassRW = ClassR | ClassW
)

// HasR reports whether the class includes reads.
func (c Class) HasR() bool { return c&ClassR != 0 }

// HasW reports whether the class includes writes.
func (c Class) HasW() bool { return c&ClassW != 0 }

// String renders the class in RISC-V fence-operand style.
func (c Class) String() string {
	s := ""
	if c.HasR() {
		s += "r"
	}
	if c.HasW() {
		s += "w"
	}
	if s == "" {
		s = "none"
	}
	return s
}

// Cumulativity is a fence's cumulativity level (paper Section 2.3.2).
type Cumulativity uint8

// Cumulativity levels.
const (
	// CumNone is a plain fence ordering only the issuing thread's accesses
	// (the current RISC-V FENCE).
	CumNone Cumulativity = iota
	// CumLW is a cumulative lightweight fence (Power lwsync; the paper's
	// proposed RISC-V lwf): orders R→R, R→W and W→W including observed
	// remote writes, but never W→R.
	CumLW
	// CumHW is a cumulative heavyweight fence (Power sync / ARM dmb; the
	// proposed RISC-V hwf): all four orderings with full propagation.
	CumHW
)

// String names the cumulativity level.
func (c Cumulativity) String() string {
	switch c {
	case CumNone:
		return "plain"
	case CumLW:
		return "cum-lw"
	case CumHW:
		return "cum-hw"
	}
	return fmt.Sprintf("Cum(%d)", uint8(c))
}

// OpKind classifies an instruction.
type OpKind uint8

// Instruction kinds.
const (
	// OpLoad is an ordinary load.
	OpLoad OpKind = iota
	// OpStore is an ordinary store.
	OpStore
	// OpAMOLoad is an AMO used as an atomic load: AMOADD of zero returning
	// the old value (paper Section 5.2). Its write-back of the unchanged
	// value is modelled as a silent store — coherence-invisible — matching
	// the paper's AMO-as-load treatment; the instruction still carries AMO
	// ordering annotations and always reads at the memory system (never
	// forwarded from a store buffer).
	OpAMOLoad
	// OpAMOStore is an AMO used as an atomic store: AMOSWAP discarding the
	// old value.
	OpAMOStore
	// OpAMOSwap is a general AMOSWAP returning the old value.
	OpAMOSwap
	// OpAMOAdd is a general AMOADD returning the old value.
	OpAMOAdd
	// OpFence is a fence with Pred/Succ classes and a Cumulativity.
	OpFence
)

// IsAMO reports whether the kind is any read-modify-write.
func (k OpKind) IsAMO() bool {
	return k == OpAMOLoad || k == OpAMOStore || k == OpAMOSwap || k == OpAMOAdd
}

// Instr is a single instruction. Construct via the per-ISA subpackages or
// directly for tests.
type Instr struct {
	Op   OpKind
	Addr mem.Operand
	Data mem.Operand
	Dst  int
	// Pred and Succ are the fence's access classes (OpFence only).
	Pred, Succ Class
	// Cum is the fence's cumulativity (OpFence only).
	Cum Cumulativity
	// Aq, Rl and SCBit are the AMO annotation bits. SCBit is the paper's
	// proposed store-atomicity decoupling (Section 5.2.2); in the current
	// RISC-V MCM store atomicity is implied by Aq&&Rl instead.
	Aq, Rl, SCBit bool
	// CtrlDepOn lists same-thread instruction indices of loads this
	// instruction is control-dependent on.
	CtrlDepOn []int
}

// HasReadPart reports whether the instruction reads memory.
func (i *Instr) HasReadPart() bool { return i.Op == OpLoad || i.Op.IsAMO() }

// HasWritePart reports whether the instruction writes memory in a
// coherence-visible way (OpAMOLoad's same-value write-back is silent).
func (i *Instr) HasWritePart() bool {
	return i.Op == OpStore || (i.Op.IsAMO() && i.Op != OpAMOLoad)
}

// Program is an instruction-level litmus program over shared locations.
type Program struct {
	Arch Arch
	// Instrs holds per-thread instruction lists.
	Instrs [][]*Instr

	memp    *mem.Program
	instrOf []*Instr // by event GID
	// chunks batches Instr storage (stable pointers, one allocation per
	// chunk instead of one per instruction — compilation is per-job work
	// on cold sweeps). Reset rewinds cur so a recycled program refills
	// the same chunks.
	chunks [][]Instr
	cur    int
}

// NewProgram returns an empty program for the given architecture.
func NewProgram(arch Arch, nlocs int, names ...string) *Program {
	return &Program{Arch: arch, memp: mem.NewProgram(nlocs, names...)}
}

// Reset empties the program for reuse with a new architecture and
// location set, keeping instruction and event storage. The caller must
// not retain instructions or events from the previous generation.
func (p *Program) Reset(arch Arch, nlocs int, names ...string) {
	p.Arch = arch
	for i := range p.Instrs {
		p.Instrs[i] = p.Instrs[i][:0]
	}
	p.Instrs = p.Instrs[:0]
	p.instrOf = p.instrOf[:0]
	for i := range p.chunks {
		p.chunks[i] = p.chunks[i][:0]
	}
	p.cur = 0
	p.memp.Reset(nlocs, names...)
}

// Mem exposes the underlying event program.
func (p *Program) Mem() *mem.Program { return p.memp }

// InstrOf returns the instruction that produced the event with GID gid.
func (p *Program) InstrOf(gid int) *Instr { return p.instrOf[gid] }

// Add appends instruction ins to thread t and returns its per-thread index.
func (p *Program) Add(t int, ins Instr) int {
	var ev mem.Event
	switch ins.Op {
	case OpLoad:
		ev = mem.Event{Kind: mem.Read, Addr: ins.Addr, Dst: ins.Dst}
	case OpStore:
		ev = mem.Event{Kind: mem.Write, Addr: ins.Addr, Data: ins.Data, Dst: mem.NoDst}
	case OpAMOLoad:
		// Silent write-back: the event is a read at the memory system.
		ev = mem.Event{Kind: mem.Read, Addr: ins.Addr, Dst: ins.Dst}
	case OpAMOStore:
		ev = mem.Event{Kind: mem.RMW, Addr: ins.Addr, Data: ins.Data, Dst: mem.NoDst, RMWOp: mem.RMWSwap}
	case OpAMOSwap:
		ev = mem.Event{Kind: mem.RMW, Addr: ins.Addr, Data: ins.Data, Dst: ins.Dst, RMWOp: mem.RMWSwap}
	case OpAMOAdd:
		ev = mem.Event{Kind: mem.RMW, Addr: ins.Addr, Data: ins.Data, Dst: ins.Dst, RMWOp: mem.RMWAdd}
	case OpFence:
		ev = mem.Event{Kind: mem.Fence, Dst: mem.NoDst}
	}
	ev.CtrlDepOn = ins.CtrlDepOn
	var ch *[]Instr
	for {
		if p.cur == len(p.chunks) {
			p.chunks = append(p.chunks, make([]Instr, 0, 8))
		}
		ch = &p.chunks[p.cur]
		if len(*ch) < cap(*ch) {
			break
		}
		p.cur++
	}
	*ch = append(*ch, ins)
	pi := &(*ch)[len(*ch)-1]
	e := p.memp.Add(t, ev)
	for len(p.Instrs) <= t {
		if len(p.Instrs) < cap(p.Instrs) {
			// Re-expose a row truncated by Reset, keeping its capacity.
			p.Instrs = p.Instrs[:len(p.Instrs)+1]
		} else {
			p.Instrs = append(p.Instrs, nil)
		}
	}
	p.Instrs[t] = append(p.Instrs[t], pi)
	p.instrOf = append(p.instrOf, pi)
	return e.Index
}

// Observe registers an outcome observer (thread-local register + label).
func (p *Program) Observe(t, reg int, label string) { p.memp.AddObserver(t, reg, label) }

// NumThreads returns the thread count.
func (p *Program) NumThreads() int { return p.memp.NumThreads() }

// String renders the program as per-thread pseudo-assembly.
func (p *Program) String() string {
	var b strings.Builder
	for t, th := range p.Instrs {
		fmt.Fprintf(&b, "T%d:\n", t)
		for _, ins := range th {
			fmt.Fprintf(&b, "  %s\n", p.Render(ins))
		}
	}
	return b.String()
}

// Render pretty-prints one instruction using generic mnemonics; the per-ISA
// subpackages provide native spellings.
func (p *Program) Render(ins *Instr) string {
	loc := func(o mem.Operand) string {
		if o.Kind == mem.OpConst {
			return "(" + p.memp.LocName(mem.Loc(o.Const)) + ")"
		}
		return fmt.Sprintf("(r%d)", o.Reg)
	}
	val := func(o mem.Operand) string {
		if o.Kind == mem.OpConst {
			return fmt.Sprintf("%d", o.Const)
		}
		return fmt.Sprintf("r%d", o.Reg)
	}
	amoBits := func() string {
		s := ""
		if ins.Aq {
			s += ".aq"
		}
		if ins.Rl {
			s += ".rl"
		}
		if ins.SCBit {
			s += ".sc"
		}
		return s
	}
	switch ins.Op {
	case OpLoad:
		return fmt.Sprintf("load r%d, %s", ins.Dst, loc(ins.Addr))
	case OpStore:
		return fmt.Sprintf("store %s, %s", val(ins.Data), loc(ins.Addr))
	case OpAMOLoad:
		return fmt.Sprintf("amoload%s r%d, %s", amoBits(), ins.Dst, loc(ins.Addr))
	case OpAMOStore:
		return fmt.Sprintf("amostore%s %s, %s", amoBits(), val(ins.Data), loc(ins.Addr))
	case OpAMOSwap:
		return fmt.Sprintf("amoswap%s r%d, %s, %s", amoBits(), ins.Dst, val(ins.Data), loc(ins.Addr))
	case OpAMOAdd:
		return fmt.Sprintf("amoadd%s r%d, %s, %s", amoBits(), ins.Dst, val(ins.Data), loc(ins.Addr))
	case OpFence:
		switch ins.Cum {
		case CumLW:
			return "fence.lw (cumulative lightweight)"
		case CumHW:
			return "fence.hw (cumulative heavyweight)"
		}
		return fmt.Sprintf("fence %s, %s", ins.Pred, ins.Succ)
	}
	return "?"
}
