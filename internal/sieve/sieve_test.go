package sieve

import (
	"testing"

	"tricheck/internal/timing"
)

// knownPrimeCounts: π(n) reference values.
var knownPrimeCounts = map[int]int{
	100:     25,
	1000:    168,
	10000:   1229,
	100000:  9592,
	1000000: 78498,
}

// TestSieveCorrectness: the simulated sieve computes π(n) exactly for
// every variant and thread count — the benchmark's defining property is
// that synchronization strength cannot change its result.
func TestSieveCorrectness(t *testing.T) {
	cfg := timing.DefaultConfig()
	for _, n := range []int{100, 1000, 10000} {
		for _, v := range []Variant{Relaxed, RelaxedFixed, SCAtomics} {
			for _, threads := range []int{1, 2, 3, 8} {
				r := Run(v, threads, n, cfg)
				if r.Primes != knownPrimeCounts[n] {
					t.Errorf("%v t=%d n=%d: %d primes, want %d", v, threads, n, r.Primes, knownPrimeCounts[n])
				}
			}
		}
	}
}

// TestFigure2Shape pins the qualitative content of the paper's Figure 2:
//  1. every variant speeds up with threads,
//  2. the hazard fix is always slower than uncorrected relaxed atomics,
//  3. the fix costs roughly 15% at 8 threads (paper: 15.3%),
//  4. the fixed variant degrades to the level of SC atomics at 8 threads,
//     while SC is much slower than the fix at 1 thread.
func TestFigure2Shape(t *testing.T) {
	pts := Figure2(200000, 8, timing.DefaultConfig())
	if len(pts) != 8 {
		t.Fatalf("%d points, want 8", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Relaxed >= pts[i-1].Relaxed {
			t.Errorf("relaxed not scaling at %d threads", pts[i].Threads)
		}
		if pts[i].SC >= pts[i-1].SC {
			t.Errorf("SC not scaling at %d threads", pts[i].Threads)
		}
	}
	for _, p := range pts {
		if p.Fixed <= p.Relaxed {
			t.Errorf("fix not slower than relaxed at %d threads", p.Threads)
		}
		if p.SC < p.Fixed {
			t.Errorf("SC faster than fix at %d threads", p.Threads)
		}
	}
	at8 := pts[7]
	if at8.FixOverhead < 0.10 || at8.FixOverhead > 0.20 {
		t.Errorf("fix overhead at 8 threads = %.1f%%, want ~15%%", 100*at8.FixOverhead)
	}
	if at8.SCOverFixed > 0.06 {
		t.Errorf("SC-vs-fix gap at 8 threads = %.1f%%, want <6%% (convergence)", 100*at8.SCOverFixed)
	}
	at1 := pts[0]
	if at1.SCOverFixed < 0.15 {
		t.Errorf("SC-vs-fix gap at 1 thread = %.1f%%, want >15%%", 100*at1.SCOverFixed)
	}
	// The gap must narrow monotonically-ish: compare endpoints.
	if at8.SCOverFixed >= at1.SCOverFixed {
		t.Error("SC/fix gap does not narrow with threads")
	}
}

func TestVariantNames(t *testing.T) {
	for _, v := range []Variant{Relaxed, RelaxedFixed, SCAtomics} {
		if v.String() == "" {
			t.Error("empty variant name")
		}
	}
}

func TestDegenerateInputs(t *testing.T) {
	r := Run(Relaxed, 0, 100, timing.DefaultConfig())
	if r.Primes != 0 || r.Cycles != 0 {
		t.Errorf("zero threads should be a no-op, got %+v", r)
	}
	r2 := Run(Relaxed, 2, 1, timing.DefaultConfig())
	if r2.Primes != 0 {
		t.Errorf("n=1 has no primes, got %d", r2.Primes)
	}
}
