// Package sieve implements the parallel Sieve of Eratosthenes benchmark of
// the paper's Figure 2 (after Boehm, "Threads cannot be implemented as a
// library"): the algorithm is correct with any amount of synchronization,
// so its flag reads and writes can use relaxed atomics, relaxed atomics
// plus ARM's dmb-after-load hazard fix, or sequentially consistent
// atomics. The three variants run on the simulated multicore of
// internal/timing, and their simulated runtimes reproduce the shape of
// Figure 2.
package sieve

import (
	"fmt"
	"math"

	"tricheck/internal/timing"
)

// Variant selects the atomics flavour of Figure 2.
type Variant uint8

// Figure 2's three variants.
const (
	// Relaxed uses relaxed atomic loads and stores (plain ldr/str on ARM).
	Relaxed Variant = iota
	// RelaxedFixed is Relaxed plus a dmb after every atomic load — ARM's
	// recommended workaround for the Cortex-A9 load→load hazard.
	RelaxedFixed
	// SCAtomics uses sequentially consistent atomics: dmb fences
	// surrounding stores plus dmb after loads (the standard ARM recipe).
	SCAtomics
)

// String names the variant like the Figure 2 legend.
func (v Variant) String() string {
	switch v {
	case Relaxed:
		return "RLX atomics"
	case RelaxedFixed:
		return "RLX atomics (with ld-ld hazard fix)"
	case SCAtomics:
		return "SC atomics (DMB mapping)"
	}
	return fmt.Sprintf("Variant(%d)", uint8(v))
}

// Result is one simulated run.
type Result struct {
	Variant Variant
	Threads int
	N       int
	// Primes is the number of primes found (a correctness check).
	Primes int
	// Cycles is the simulated runtime.
	Cycles float64
}

// Run sieves the primes below n with the given thread count and atomics
// variant on a simulated machine, returning the prime count and simulated
// cycles. The marking work for each prime is strided across threads; a
// barrier separates primes, as in the usual parallel formulation.
func Run(variant Variant, threads, n int, cfg timing.Config) Result {
	if threads < 1 || n < 2 {
		return Result{Variant: variant, Threads: threads, N: n}
	}
	m := timing.NewMachine(threads, cfg)
	composite := make([]bool, n)
	limit := int(math.Sqrt(float64(n)))

	load := func(c, idx int) bool {
		m.Load(c)
		if variant == RelaxedFixed || variant == SCAtomics {
			m.FenceAfterLoad(c)
		}
		return composite[idx]
	}
	store := func(c, idx int) {
		if variant == SCAtomics {
			m.FenceNearStore(c)
		}
		m.Store(c)
		if variant == SCAtomics {
			m.FenceNearStore(c)
		}
		composite[idx] = true
	}

	for p := 2; p <= limit; p++ {
		// Every thread reads the flag to decide whether p is prime.
		prime := false
		for c := 0; c < threads; c++ {
			prime = !load(c, p)
		}
		if !prime {
			continue
		}
		// Mark multiples of p. Each thread owns a contiguous block of the
		// remaining range (the textbook partitioning — round-robin
		// assignment would correlate with the parity of the multiples and
		// skew store work across threads). Each thread checks the flag
		// before dirtying the line, as the benchmark's inner loop does
		// ("reading and marking of entries").
		span := (n - p*p + threads - 1) / threads
		if span < 1 {
			span = 1
		}
		for c := 0; c < threads; c++ {
			lo := p*p + c*span
			hi := lo + span
			if hi > n {
				hi = n
			}
			first := ((lo + p - 1) / p) * p
			for mult := first; mult < hi; mult += p {
				if !load(c, mult) {
					store(c, mult)
				}
				m.Local(c, 1)
			}
		}
		m.Barrier()
	}
	// Count primes (serial epilogue, not timed as shared traffic).
	count := 0
	for i := 2; i < n; i++ {
		if !composite[i] {
			count++
		}
	}
	return Result{Variant: variant, Threads: threads, N: n, Primes: count, Cycles: m.Elapsed()}
}

// Figure2Point holds the three variant runtimes at one thread count.
type Figure2Point struct {
	Threads                  int
	Relaxed, Fixed, SC       float64
	FixOverhead, SCOverFixed float64 // ratios − 1
}

// Figure2 sweeps thread counts 1..maxThreads for problem size n and
// returns the three runtime series — the data behind the paper's Figure 2.
func Figure2(n, maxThreads int, cfg timing.Config) []Figure2Point {
	var out []Figure2Point
	for t := 1; t <= maxThreads; t++ {
		rlx := Run(Relaxed, t, n, cfg)
		fix := Run(RelaxedFixed, t, n, cfg)
		sc := Run(SCAtomics, t, n, cfg)
		out = append(out, Figure2Point{
			Threads:     t,
			Relaxed:     rlx.Cycles,
			Fixed:       fix.Cycles,
			SC:          sc.Cycles,
			FixOverhead: fix.Cycles/rlx.Cycles - 1,
			SCOverFixed: sc.Cycles/fix.Cycles - 1,
		})
	}
	return out
}
