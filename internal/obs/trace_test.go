package obs

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestRingRetainsSlowest pins the bounded min-heap behavior: at
// capacity, a new span is retained only if it beats the current floor,
// and Slowest returns descending durations.
func TestRingRetainsSlowest(t *testing.T) {
	r := NewRing(3)
	for _, ms := range []int{5, 1, 9, 3, 7, 2} {
		r.add(TraceRecord{Name: "s", Dur: time.Duration(ms) * time.Millisecond})
	}
	if r.Len() != 3 {
		t.Fatalf("ring len = %d, want 3", r.Len())
	}
	got := r.Slowest()
	want := []time.Duration{9 * time.Millisecond, 7 * time.Millisecond, 5 * time.Millisecond}
	for i, w := range want {
		if got[i].Dur != w {
			t.Errorf("slowest[%d] = %v, want %v", i, got[i].Dur, w)
		}
	}
}

func TestSpanEndRetains(t *testing.T) {
	r := NewRing(4)
	sp := r.Start(0, 0, "job")
	if sp.Trace() == 0 {
		t.Error("zero trace not minted fresh")
	}
	sp.Attr("test", "mp")
	sp.Phase("skeleton", time.Millisecond)
	sp.Phase("skeleton", time.Millisecond) // accumulates, no duplicate entry
	sp.Phase("enumerate", 2*time.Millisecond)
	sp.End()

	got := r.Slowest()
	if len(got) != 1 {
		t.Fatalf("ring has %d spans, want 1", len(got))
	}
	rec := got[0]
	if rec.TraceS == "" || len(rec.TraceS) != 16 {
		t.Errorf("trace hex %q, want 16 hex chars", rec.TraceS)
	}
	if len(rec.Phases) != 2 || rec.Phases[0].Dur != 2*time.Millisecond {
		t.Errorf("phases %+v: want skeleton accumulated to 2ms", rec.Phases)
	}
	if len(rec.Attrs) != 1 || rec.Attrs[0] != (Label{"test", "mp"}) {
		t.Errorf("attrs %+v", rec.Attrs)
	}

	// Child spans inherit the parent's trace.
	child := r.Start(rec.Trace, rec.Span, "child")
	if child.Trace() != rec.Trace {
		t.Error("child span did not inherit trace")
	}
	child.End()
}

// TestSpanNilSafe pins the branchless-sampling contract: every method
// on a nil span is a no-op.
func TestSpanNilSafe(t *testing.T) {
	var sp *Span
	sp.Attr("k", "v")
	sp.Phase("p", time.Second)
	sp.End()
	if sp.Trace() != 0 || sp.ID() != 0 {
		t.Error("nil span has non-zero identity")
	}
}

func TestTraceRecordJSON(t *testing.T) {
	rec := TraceRecord{TraceS: "00000000000000ff", Name: "verify",
		Dur: time.Millisecond, Attrs: []Label{{"suite", "paper"}}}
	b, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"trace":"00000000000000ff"`, `"dur_ns":1000000`, `{"suite":"paper"}`} {
		if !strings.Contains(string(b), want) {
			t.Errorf("wire form lacks %s: %s", want, b)
		}
	}
}

func TestVerdictSampling(t *testing.T) {
	defer SetVerdictSampling(16) // restore the default
	SetVerdictSampling(1)
	if !SampleVerdict() || !SampleVerdict() {
		t.Error("1-in-1 sampling skipped a verdict")
	}
	SetVerdictSampling(0)
	for i := 0; i < 100; i++ {
		if SampleVerdict() {
			t.Fatal("disabled sampling sampled a verdict")
		}
	}
	SetVerdictSampling(4)
	hits := 0
	for i := 0; i < 400; i++ {
		if SampleVerdict() {
			hits++
		}
	}
	if hits != 100 {
		t.Errorf("1-in-4 sampling hit %d/400, want 100", hits)
	}
}

func TestCycleSamplingKnob(t *testing.T) {
	defer SetCycleSampling(0)
	if CycleSampling() != 0 {
		t.Error("cycle sampling not off by default")
	}
	SetCycleSampling(64)
	if CycleSampling() != 64 {
		t.Errorf("cycle sampling = %d, want 64", CycleSampling())
	}
}

func TestContextPlumbing(t *testing.T) {
	if tr, sp := TraceFromContext(context.Background()); tr != 0 || sp != 0 {
		t.Error("empty context carries a trace")
	}
	trace, span := NewTraceID(), newSpanID()
	ctx := ContextWithTrace(context.Background(), trace, span)
	gotT, gotS := TraceFromContext(ctx)
	if gotT != trace || gotS != span {
		t.Errorf("round trip: got (%v, %v), want (%v, %v)", gotT, gotS, trace, span)
	}
}

func TestNewTraceIDUnique(t *testing.T) {
	seen := map[TraceID]bool{}
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if seen[id] {
			t.Fatalf("duplicate trace ID %v", id)
		}
		seen[id] = true
	}
}
