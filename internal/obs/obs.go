// Package obs is the telemetry substrate of the verification farm: an
// allocation-conscious metrics registry (atomic counters, gauges and
// fixed-bucket histograms, rendered in the Prometheus text exposition
// format and publishable through expvar) plus a lightweight span/trace
// facility (trace ID + parent span, monotonic-clock durations, bounded
// retention of the N slowest traces).
//
// Design constraints, in order:
//
//   - The verdict hot path (per-execution overlay cycle checks) must stay
//     zero-allocation and zero-format. Every hot-path operation here is a
//     handful of atomic adds on pre-registered handles; name lookups,
//     label rendering and bucket math involving strings happen only at
//     registration and scrape time.
//   - One process, one default registry. The farm, the evaluation core
//     and the service all record into Default, so `GET /metrics`, the
//     CLI's -metrics-out dump and expvar agree by construction. Tests
//     that need isolation construct their own Registry.
//   - Registration is idempotent: asking for an existing (name, labels)
//     series returns the existing handle, so independently initialized
//     subsystems (multiple engines, multiple servers) share counters
//     instead of panicking.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// A Label is one metric label pair, fixed at registration time.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket duration histogram. Bucket upper bounds
// are in seconds (the Prometheus convention); observations are atomic
// adds — one bucket increment, one sum add, one count add — with no
// allocation and no formatting.
type Histogram struct {
	// bounds are the inclusive bucket upper bounds in seconds, ascending;
	// a final +Inf bucket is implicit.
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	sum    atomic.Int64    // nanoseconds
	count  atomic.Uint64
}

// DurationBuckets is the default bucket ladder for verification-farm
// latencies: 1µs to ~10s, quarter-decade steps. It spans everything from
// a single overlay cycle check (~µs) to a cold full-suite job (~100ms)
// to a whole request sweep (seconds).
var DurationBuckets = []float64{
	1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4,
	1e-3, 5e-3, 1e-2, 5e-2, 1e-1, 5e-1,
	1, 5, 10,
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.ObserveSeconds(d.Seconds())
}

// ObserveSeconds records one observation in seconds.
func (h *Histogram) ObserveSeconds(s float64) {
	i := 0
	for i < len(h.bounds) && s > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(int64(s * 1e9))
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the total observed time.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Snapshot returns the cumulative bucket counts (one per bound, plus the
// trailing +Inf bucket) alongside the bounds, for tests and JSON dumps.
func (h *Histogram) Snapshot() (bounds []float64, cumulative []uint64) {
	bounds = h.bounds
	cumulative = make([]uint64, len(h.counts))
	var acc uint64
	for i := range h.counts {
		acc += h.counts[i].Load()
		cumulative[i] = acc
	}
	return bounds, cumulative
}

// metricKind discriminates the registry's metric families.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one labeled instance of a metric family.
type series struct {
	labels    []Label
	labelsKey string // canonical render, for idempotent registration
	c         *Counter
	g         *Gauge
	h         *Histogram
}

// family is one named metric with all its label series.
type family struct {
	name   string
	help   string
	kind   metricKind
	series []*series
}

// Registry holds metric families. The zero value is not usable; call
// NewRegistry (or use Default).
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

// Default is the process-wide registry every subsystem records into.
var Default = NewRegistry()

// labelsKey renders labels canonically (sorted) for series identity.
func labelsKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	return b.String()
}

// lookup finds or creates the (name, labels) series of the given kind.
// Kind or help mismatches on an existing name panic: they are
// programming errors, and failing loud at init beats silently exporting
// a schizophrenic metric.
func (r *Registry) lookup(name, help string, kind metricKind, labels []Label) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	fam := r.byName[name]
	if fam == nil {
		fam = &family{name: name, help: help, kind: kind}
		r.byName[name] = fam
		r.families = append(r.families, fam)
	} else if fam.kind != kind {
		panic(fmt.Sprintf("obs: metric %s re-registered as %s (was %s)", name, kind, fam.kind))
	}
	key := labelsKey(labels)
	for _, s := range fam.series {
		if s.labelsKey == key {
			return s
		}
	}
	s := &series{labels: append([]Label(nil), labels...), labelsKey: key}
	fam.series = append(fam.series, s)
	return s
}

// Counter returns the counter registered under (name, labels), creating
// it on first use. Safe for concurrent use; idempotent.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.lookup(name, help, kindCounter, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.c == nil {
		s.c = &Counter{}
	}
	return s.c
}

// Gauge returns the gauge registered under (name, labels).
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.lookup(name, help, kindGauge, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.g == nil {
		s.g = &Gauge{}
	}
	return s.g
}

// Histogram returns the histogram registered under (name, labels) with
// the given bucket bounds (nil = DurationBuckets). Bounds are fixed at
// first registration; later callers share them.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	s := r.lookup(name, help, kindHistogram, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.h == nil {
		if bounds == nil {
			bounds = DurationBuckets
		}
		if !sort.Float64sAreSorted(bounds) {
			panic(fmt.Sprintf("obs: histogram %s bounds not ascending", name))
		}
		s.h = &Histogram{
			bounds: append([]float64(nil), bounds...),
			counts: make([]atomic.Uint64, len(bounds)+1),
		}
	}
	return s.h
}

// visit calls f under the lock with a stable snapshot of the families in
// registration order.
func (r *Registry) visit(f func(fam *family)) {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	for _, fam := range fams {
		f(fam)
	}
}

// formatBound renders a histogram bucket bound the way Prometheus
// clients do: shortest float representation, "+Inf" for the overflow
// bucket.
func formatBound(b float64) string {
	if math.IsInf(b, 1) {
		return "+Inf"
	}
	return fmt.Sprintf("%g", b)
}
