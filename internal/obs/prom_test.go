package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds a deterministic registry covering every metric
// kind, label shapes and the histogram bucket rendering.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("tricheck_jobs_total", "Jobs by disposition.", L("disposition", "executed")).Add(7)
	r.Counter("tricheck_jobs_total", "Jobs by disposition.", L("disposition", "stolen")).Add(2)
	r.Counter("tricheck_runs_total", "Runs started.").Inc()
	r.Gauge("tricheck_inflight", "Requests currently sweeping.").Set(3)
	h := r.Histogram("tricheck_job_seconds", "Job run time.", []float64{0.001, 0.01, 0.1}, L("phase", "enumerate"))
	h.ObserveSeconds(0.0005)
	h.ObserveSeconds(0.005)
	h.ObserveSeconds(0.05)
	h.ObserveSeconds(2)
	return r
}

// TestWritePrometheusGolden pins the exposition format byte-for-byte.
// Regenerate with `go test ./internal/obs -run Golden -update` after an
// intentional format change.
func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "exposition.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition drifted from golden:\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestWritePrometheusWellFormed checks the structural invariants a
// scraper relies on, independent of the exact golden bytes.
func TestWritePrometheusWellFormed(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE tricheck_jobs_total counter",
		"# TYPE tricheck_inflight gauge",
		"# TYPE tricheck_job_seconds histogram",
		`tricheck_job_seconds_bucket{phase="enumerate",le="+Inf"} 4`,
		`tricheck_job_seconds_count{phase="enumerate"} 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition lacks %q:\n%s", want, out)
		}
	}
	// Each HELP/TYPE pair appears once per family, not per series.
	if n := strings.Count(out, "# TYPE tricheck_jobs_total"); n != 1 {
		t.Errorf("TYPE line for tricheck_jobs_total appears %d times", n)
	}
}

func TestSnapshotJSONShape(t *testing.T) {
	fams := goldenRegistry().Snapshot()
	if len(fams) != 4 {
		t.Fatalf("got %d families, want 4", len(fams))
	}
	for i := 1; i < len(fams); i++ {
		if fams[i-1].Name > fams[i].Name {
			t.Errorf("families not sorted: %s > %s", fams[i-1].Name, fams[i].Name)
		}
	}
	for _, f := range fams {
		if f.Name == "tricheck_job_seconds" {
			s := f.Series[0]
			if s.Count == nil || *s.Count != 4 || len(s.Cumulative) != 4 {
				t.Errorf("histogram series payload: %+v", s)
			}
		}
	}
}
