package obs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// The span/trace facility. A Span is a named timed region with a trace
// ID, an optional parent span, attributes and a flat list of named phase
// durations. Completed root spans are offered to a Ring, which retains
// the N slowest — the "where did the time go" answer for /v1/traces and
// the CLI hot-spot report.
//
// Span methods are nil-receiver-safe so sampling call sites stay
// branchless:
//
//	var sp *obs.Span // nil unless this job was sampled
//	if obs.SampleVerdict() {
//		sp = obs.DefaultTraces.Start(trace, parent, "verify-job")
//	}
//	...
//	sp.Phase("skeleton", d) // no-op when not sampled
//	sp.End()

// TraceID identifies one logical trace (a request, a sampled job).
type TraceID uint64

// SpanID identifies one span within the process.
type SpanID uint64

// String renders the ID as fixed-width hex (the wire form).
func (t TraceID) String() string { return fmt.Sprintf("%016x", uint64(t)) }

// idCounter seeds trace/span IDs: a random 64-bit base (so IDs from
// different processes don't collide in aggregated logs) plus an atomic
// counter.
var idCounter = func() *atomic.Uint64 {
	var b [8]byte
	var c atomic.Uint64
	if _, err := rand.Read(b[:]); err == nil {
		c.Store(binary.LittleEndian.Uint64(b[:]))
	}
	return &c
}()

// NewTraceID returns a fresh process-unique trace ID.
func NewTraceID() TraceID { return TraceID(idCounter.Add(1)) }

func newSpanID() SpanID { return SpanID(idCounter.Add(1)) }

// PhaseTiming is one named duration inside a span.
type PhaseTiming struct {
	Name string        `json:"name"`
	Dur  time.Duration `json:"dur_ns"`
}

// TraceRecord is a completed span in retention/wire form.
type TraceRecord struct {
	Trace  TraceID       `json:"-"`
	TraceS string        `json:"trace"` // hex form, filled at completion
	Span   SpanID        `json:"span"`
	Parent SpanID        `json:"parent,omitempty"`
	Name   string        `json:"name"`
	Start  time.Time     `json:"start"`
	Dur    time.Duration `json:"dur_ns"`
	Phases []PhaseTiming `json:"phases,omitempty"`
	Attrs  []Label       `json:"attrs,omitempty"`
}

// MarshalJSON flattens attrs into a string map for readable wire output.
func (l Label) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf("{%q:%q}", l.Key, l.Value)), nil
}

// Span is an in-progress timed region. Create with Ring.Start; finish
// with End. Not safe for concurrent use (one span belongs to one
// goroutine, like a stack frame).
type Span struct {
	rec   TraceRecord
	ring  *Ring
	start time.Time
}

// Start begins a span. A zero trace mints a fresh trace ID; parent may
// be 0 for roots. The span is offered to the ring on End.
func (r *Ring) Start(trace TraceID, parent SpanID, name string) *Span {
	if trace == 0 {
		trace = NewTraceID()
	}
	now := time.Now()
	return &Span{
		rec: TraceRecord{
			Trace:  trace,
			Span:   newSpanID(),
			Parent: parent,
			Name:   name,
			Start:  now,
		},
		ring:  r,
		start: now,
	}
}

// Trace returns the span's trace ID (0 on a nil span).
func (s *Span) Trace() TraceID {
	if s == nil {
		return 0
	}
	return s.rec.Trace
}

// ID returns the span's ID (0 on a nil span).
func (s *Span) ID() SpanID {
	if s == nil {
		return 0
	}
	return s.rec.Span
}

// Attr attaches a key/value attribute.
func (s *Span) Attr(key, value string) {
	if s == nil {
		return
	}
	s.rec.Attrs = append(s.rec.Attrs, Label{key, value})
}

// Phase records a named sub-duration (monotonic-clock measured by the
// caller). Repeated names accumulate.
func (s *Span) Phase(name string, d time.Duration) {
	if s == nil {
		return
	}
	for i := range s.rec.Phases {
		if s.rec.Phases[i].Name == name {
			s.rec.Phases[i].Dur += d
			return
		}
	}
	s.rec.Phases = append(s.rec.Phases, PhaseTiming{name, d})
}

// End completes the span (duration = monotonic time since Start) and
// offers it to the ring. End on a nil span is a no-op; End twice is the
// caller's bug (the span would be retained twice).
func (s *Span) End() {
	if s == nil {
		return
	}
	s.rec.Dur = time.Since(s.start)
	s.rec.TraceS = s.rec.Trace.String()
	if s.ring != nil {
		s.ring.add(s.rec)
	}
}

// Ring retains the N slowest completed spans (a bounded min-heap keyed
// by duration, mutex-guarded: offers are O(log n) and only taken when a
// span beats the current floor).
type Ring struct {
	mu  sync.Mutex
	cap int
	// heap is a min-heap on Dur so the cheapest retained span is at the
	// root, ready to be displaced.
	heap []TraceRecord
}

// DefaultTraceCapacity is the default slow-trace retention.
const DefaultTraceCapacity = 64

// NewRing returns a ring retaining the capacity slowest spans
// (0 = DefaultTraceCapacity).
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Ring{cap: capacity}
}

// DefaultTraces is the process-wide slow-trace ring: the service's
// /v1/traces and the sampled verdict spans share it.
var DefaultTraces = NewRing(0)

func (r *Ring) add(rec TraceRecord) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.heap) < r.cap {
		r.heap = append(r.heap, rec)
		r.up(len(r.heap) - 1)
		return
	}
	if rec.Dur <= r.heap[0].Dur {
		return
	}
	r.heap[0] = rec
	r.down(0)
}

func (r *Ring) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if r.heap[p].Dur <= r.heap[i].Dur {
			return
		}
		r.heap[p], r.heap[i] = r.heap[i], r.heap[p]
		i = p
	}
}

func (r *Ring) down(i int) {
	n := len(r.heap)
	for {
		l, rr := 2*i+1, 2*i+2
		m := i
		if l < n && r.heap[l].Dur < r.heap[m].Dur {
			m = l
		}
		if rr < n && r.heap[rr].Dur < r.heap[m].Dur {
			m = rr
		}
		if m == i {
			return
		}
		r.heap[i], r.heap[m] = r.heap[m], r.heap[i]
		i = m
	}
}

// Slowest returns the retained spans, slowest first.
func (r *Ring) Slowest() []TraceRecord {
	r.mu.Lock()
	out := append([]TraceRecord(nil), r.heap...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Dur > out[j].Dur })
	return out
}

// Len returns the number of retained spans.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.heap)
}

// ── Sampling ────────────────────────────────────────────────────────────

// verdictSampleEvery is the 1-in-N sampling rate for per-verdict spans
// (0 disables). The default keeps span allocation off the common case
// while a sweep of any size still lands representatives in the ring.
var verdictSampleEvery atomic.Int64

// cycleSampleEvery is the 1-in-N sampling rate for per-execution overlay
// cycle-check timings — the innermost loop. Default OFF (0): the PR-3
// zero-allocation/zero-format invariant governs that loop, and even a
// bare monotonic clock read per execution is measurable there.
var cycleSampleEvery atomic.Int64

func init() { verdictSampleEvery.Store(16) }

// SetVerdictSampling sets the per-verdict span sampling to 1-in-n
// (n <= 0 disables).
func SetVerdictSampling(n int) { verdictSampleEvery.Store(int64(n)) }

// SetCycleSampling sets the innermost-loop cycle-check timing sampling
// to 1-in-n (n <= 0 disables, the default).
func SetCycleSampling(n int) { cycleSampleEvery.Store(int64(n)) }

// CycleSampling returns the current innermost-loop sampling rate
// (0 = off).
func CycleSampling() int { return int(cycleSampleEvery.Load()) }

var verdictSampleCounter atomic.Uint64

// SampleVerdict reports whether this verdict job should carry a span
// (1-in-N across the process; false when sampling is off).
func SampleVerdict() bool {
	n := verdictSampleEvery.Load()
	if n <= 0 {
		return false
	}
	return verdictSampleCounter.Add(1)%uint64(n) == 0
}

// ── Context plumbing ────────────────────────────────────────────────────

type ctxKey struct{}

type ctxTrace struct {
	trace TraceID
	span  SpanID
}

// ContextWithTrace attaches a trace ID and parent span to a context, so
// sweeps started under a request adopt its trace.
func ContextWithTrace(ctx context.Context, trace TraceID, span SpanID) context.Context {
	return context.WithValue(ctx, ctxKey{}, ctxTrace{trace, span})
}

// TraceFromContext extracts the attached trace/span (zero values when
// absent).
func TraceFromContext(ctx context.Context) (TraceID, SpanID) {
	if v, ok := ctx.Value(ctxKey{}).(ctxTrace); ok {
		return v.trace, v.span
	}
	return 0, 0
}
