package obs

import (
	"sync"
	"testing"
	"time"
)

// TestHistogramBucketBoundaries pins the le (inclusive upper bound)
// bucketing convention: an observation exactly on a bound lands in that
// bound's bucket, one epsilon above spills into the next, and anything
// beyond the last bound lands in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{0.001, 0.01, 0.1})
	h.ObserveSeconds(0.0005) // < first bound
	h.ObserveSeconds(0.001)  // exactly on the first bound: le semantics
	h.ObserveSeconds(0.0011) // just above: second bucket
	h.ObserveSeconds(0.1)    // exactly on the last bound
	h.ObserveSeconds(5)      // +Inf

	bounds, cum := h.Snapshot()
	if len(bounds) != 3 || len(cum) != 4 {
		t.Fatalf("snapshot shape: %d bounds, %d cumulative", len(bounds), len(cum))
	}
	// Cumulative counts per le bound: le 0.001 → 2, le 0.01 → 3,
	// le 0.1 → 4, +Inf → 5.
	want := []uint64{2, 3, 4, 5}
	for i, w := range want {
		if cum[i] != w {
			t.Errorf("cumulative[%d] = %d, want %d", i, cum[i], w)
		}
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", nil) // DurationBuckets
	h.Observe(2 * time.Millisecond)
	if got := h.Sum(); got < 1900*time.Microsecond || got > 2100*time.Microsecond {
		t.Errorf("sum = %v, want ~2ms", got)
	}
	_, cum := h.Snapshot()
	if cum[len(cum)-1] != 1 {
		t.Errorf("total count via buckets = %d, want 1", cum[len(cum)-1])
	}
}

// TestCounterConcurrent hammers one counter and one histogram from many
// goroutines; run under -race this doubles as the data-race check for
// the whole record path.
func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", nil)
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.ObserveSeconds(1e-4)
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Errorf("counter = %d, want %d", c.Value(), workers*per)
	}
	if g.Value() != workers*per {
		t.Errorf("gauge = %d, want %d", g.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*per)
	}
}

// TestRegistrationIdempotent pins the shared-handle contract: the same
// (name, labels) resolves to the same handle regardless of label order,
// distinct labels get distinct series, and re-registering a name as a
// different kind panics.
func TestRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("jobs", "", L("k", "x"), L("q", "y"))
	b := r.Counter("jobs", "", L("q", "y"), L("k", "x")) // order-insensitive
	if a != b {
		t.Error("same (name, labels) yielded distinct counters")
	}
	other := r.Counter("jobs", "", L("k", "z"))
	if other == a {
		t.Error("distinct labels shared a counter")
	}
	h1 := r.Histogram("lat", "", []float64{1, 2})
	h2 := r.Histogram("lat", "", []float64{3, 4, 5}) // bounds fixed at first registration
	if h1 != h2 {
		t.Error("histogram re-registration yielded a distinct handle")
	}
	if bounds, _ := h2.Snapshot(); len(bounds) != 2 {
		t.Errorf("bounds overridden on re-registration: %v", bounds)
	}

	defer func() {
		if recover() == nil {
			t.Error("kind mismatch did not panic")
		}
	}()
	r.Gauge("jobs", "")
}

func TestUnsortedBoundsPanic(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Error("descending bounds did not panic")
		}
	}()
	r.Histogram("bad", "", []float64{2, 1})
}
