package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"sort"
	"strings"
)

// This file is the registry's export surface: the Prometheus text
// exposition format (GET /metrics), a JSON dump (the CLI's -metrics-out
// and the expvar bridge), and the expvar.Var adapter. All rendering
// happens at scrape time; record paths never format anything.

// promLabels renders a series' label set for the exposition format,
// optionally with an extra trailing label (histograms' le).
func promLabels(labels []Label, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	if extraKey != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", extraKey, extraVal)
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus renders every family in the Prometheus text exposition
// format (version 0.0.4), in registration order with series in
// registration order — a stable scrape.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var err error
	pf := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	r.visit(func(fam *family) {
		if fam.help != "" {
			pf("# HELP %s %s\n", fam.name, fam.help)
		}
		pf("# TYPE %s %s\n", fam.name, fam.kind)
		for _, s := range fam.series {
			switch fam.kind {
			case kindCounter:
				pf("%s%s %d\n", fam.name, promLabels(s.labels, "", ""), s.c.Value())
			case kindGauge:
				pf("%s%s %d\n", fam.name, promLabels(s.labels, "", ""), s.g.Value())
			case kindHistogram:
				bounds, cum := s.h.Snapshot()
				for i, b := range bounds {
					pf("%s_bucket%s %d\n", fam.name, promLabels(s.labels, "le", formatBound(b)), cum[i])
				}
				pf("%s_bucket%s %d\n", fam.name, promLabels(s.labels, "le", "+Inf"), cum[len(cum)-1])
				pf("%s_sum%s %g\n", fam.name, promLabels(s.labels, "", ""), s.h.Sum().Seconds())
				pf("%s_count%s %d\n", fam.name, promLabels(s.labels, "", ""), s.h.Count())
			}
		}
	})
	return err
}

// SeriesJSON is one labeled series in the JSON dump.
type SeriesJSON struct {
	Labels map[string]string `json:"labels,omitempty"`
	// Value is the counter or gauge value.
	Value *int64 `json:"value,omitempty"`
	// Histogram payload: cumulative bucket counts per bound (plus +Inf),
	// total observation count and summed seconds.
	Bounds     []float64 `json:"bounds,omitempty"`
	Cumulative []uint64  `json:"cumulative,omitempty"`
	Count      *uint64   `json:"count,omitempty"`
	SumSeconds *float64  `json:"sum_seconds,omitempty"`
}

// FamilyJSON is one metric family in the JSON dump.
type FamilyJSON struct {
	Name   string       `json:"name"`
	Type   string       `json:"type"`
	Help   string       `json:"help,omitempty"`
	Series []SeriesJSON `json:"series"`
}

// Snapshot returns the registry as a JSON-marshalable document, families
// sorted by name (the dump is for humans and diffs, not for scrapes).
func (r *Registry) Snapshot() []FamilyJSON {
	var out []FamilyJSON
	r.visit(func(fam *family) {
		fj := FamilyJSON{Name: fam.name, Type: fam.kind.String(), Help: fam.help}
		for _, s := range fam.series {
			sj := SeriesJSON{}
			if len(s.labels) > 0 {
				sj.Labels = map[string]string{}
				for _, l := range s.labels {
					sj.Labels[l.Key] = l.Value
				}
			}
			switch fam.kind {
			case kindCounter:
				v := int64(s.c.Value())
				sj.Value = &v
			case kindGauge:
				v := s.g.Value()
				sj.Value = &v
			case kindHistogram:
				sj.Bounds, sj.Cumulative = s.h.Snapshot()
				cnt := s.h.Count()
				sum := s.h.Sum().Seconds()
				sj.Count = &cnt
				sj.SumSeconds = &sum
			}
			fj.Series = append(fj.Series, sj)
		}
		out = append(out, fj)
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// WriteJSON writes the indented JSON dump (the -metrics-out format).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// Expvar returns the registry as an expvar.Var rendering the JSON dump,
// so embedders can expvar.Publish it (or splice it into a custom
// /debug/vars like tricheckd does).
func (r *Registry) Expvar() expvar.Var {
	return expvar.Func(func() any { return r.Snapshot() })
}
