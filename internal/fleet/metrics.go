package fleet

import (
	"sync"

	"tricheck/internal/obs"
)

// Metrics is the coordinator's telemetry: per-worker dispatch/merge
// counters, a shard-size gauge, and a merge-latency histogram, all in
// the process obs registry so the coordinator's /metrics endpoint and
// `tricheck top` see them without extra wiring.
type Metrics struct {
	r *obs.Registry

	// MergeLatency is the time one merged record spends in the
	// coordinator — from the worker stream callback receiving it to the
	// downstream write completing (dedup check, renumbering, merger lock
	// wait and client write included).
	MergeLatency *obs.Histogram
	// Hedges counts shard re-dispatches (slow or dead worker);
	// Rebalances counts memo-slice pushes to (re)joining workers;
	// Deduped counts merged records dropped as hedged duplicates.
	Hedges     *obs.Counter
	Rebalances *obs.Counter
	Deduped    *obs.Counter
	// Sweeps counts merged fleet sweeps.
	Sweeps *obs.Counter

	mu      sync.Mutex
	workers map[string]*workerMetrics
}

// workerMetrics is one worker's label set.
type workerMetrics struct {
	Dispatched *obs.Counter
	Completed  *obs.Counter
	Hedged     *obs.Counter
	Retried    *obs.Counter
	ShardJobs  *obs.Gauge
}

// NewMetrics registers (idempotently) the fleet metric family in r.
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		r:            r,
		MergeLatency: r.Histogram("tricheck_fleet_merge_latency_seconds", "Coordinator time to merge one worker record into the client stream.", nil),
		Hedges:       r.Counter("tricheck_fleet_hedges_total", "Shard re-dispatches to a ring successor (slow or dead worker)."),
		Rebalances:   r.Counter("tricheck_fleet_rebalances_total", "Memo-cache slice pushes to (re)joining workers."),
		Deduped:      r.Counter("tricheck_fleet_deduped_records_total", "Merged records dropped as hedged duplicates of an already-delivered job."),
		Sweeps:       r.Counter("tricheck_fleet_sweeps_total", "Fleet sweeps merged by the coordinator."),
		workers:      map[string]*workerMetrics{},
	}
}

// worker resolves (registering on first use) the per-worker label set.
func (m *Metrics) worker(url string) *workerMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	wm := m.workers[url]
	if wm == nil {
		l := obs.L("worker", url)
		wm = &workerMetrics{
			Dispatched: m.r.Counter("tricheck_fleet_jobs_dispatched_total", "Jobs dispatched to a worker (hedged duplicates included).", l),
			Completed:  m.r.Counter("tricheck_fleet_records_completed_total", "Worker records accepted by the merger.", l),
			Hedged:     m.r.Counter("tricheck_fleet_worker_hedged_total", "Shards hedged away from a worker.", l),
			Retried:    m.r.Counter("tricheck_fleet_worker_retried_total", "Jobs re-assigned to a worker from a failed or slow peer.", l),
			ShardJobs:  m.r.Gauge("tricheck_fleet_shard_jobs", "Jobs in the worker's most recent shard dispatch.", l),
		}
		m.workers[url] = wm
	}
	return wm
}
