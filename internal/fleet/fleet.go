package fleet

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"sort"
	"sync"
	"time"

	"tricheck/api"
	"tricheck/client"
	"tricheck/internal/obs"
)

// Job is one (test, stack) verification job as the coordinator sees it:
// the content-addressed memo key it shards by, the display identity it
// deduplicates merged records by, and the family its tally lands in.
type Job struct {
	Key, Test, Stack, Family string
}

// Config configures a Coordinator.
type Config struct {
	// Workers are the worker tricheckd base URLs (at least one).
	Workers []string
	// Vnodes is the ring's virtual-node count per worker
	// (0 = DefaultVnodes).
	Vnodes int
	// HedgeAfter is how long a dispatched shard may go without
	// delivering a record before its remaining jobs are hedged to the
	// next ring node (0 = 10s). The original stream is not cancelled —
	// whichever copy delivers first wins, and the merger drops the
	// loser's duplicates.
	HedgeAfter time.Duration
	// ProbeInterval paces Run's /healthz sweep (0 = 3s).
	ProbeInterval time.Duration
	// Log, when non-nil, receives dispatch/hedge/rebalance notes.
	Log *log.Logger
	// NewClient overrides the worker client constructor (tests inject
	// fast-retry clients); nil uses client.New.
	NewClient func(baseURL string) *client.Client
	// Metrics overrides the obs.Default-backed bundle (tests isolate).
	Metrics *Metrics
}

// workerCounters are one worker's per-coordinator lifetime counters
// (the obs metrics are process-global; these back /v1/stats).
type workerCounters struct {
	dispatched, completed, hedged, retried uint64
}

// Coordinator owns a fleet of worker tricheckds: it health-probes them,
// shards sweeps across them by consistent-hashed memo key, hedges slow
// or dead shards, merges the result streams, and rebalances memo-cache
// slices to (re)joining workers.
type Coordinator struct {
	workers       []string
	vnodes        int
	hedgeAfter    time.Duration
	probeInterval time.Duration
	log           *log.Logger
	clients       map[string]*client.Client
	metrics       *Metrics

	mu       sync.Mutex
	healthy  map[string]bool
	probed   bool
	counters map[string]*workerCounters
	sweeps   int64
	hedges   uint64
	deduped  uint64
	rebal    uint64
}

// New builds a Coordinator over the given workers.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Workers) == 0 {
		return nil, errors.New("fleet: no workers configured")
	}
	newClient := cfg.NewClient
	if newClient == nil {
		newClient = client.New
	}
	logger := cfg.Log
	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}
	m := cfg.Metrics
	if m == nil {
		m = NewMetrics(obs.Default)
	}
	c := &Coordinator{
		workers:       append([]string(nil), cfg.Workers...),
		vnodes:        cfg.Vnodes,
		hedgeAfter:    cfg.HedgeAfter,
		probeInterval: cfg.ProbeInterval,
		log:           logger,
		clients:       map[string]*client.Client{},
		metrics:       m,
		healthy:       map[string]bool{},
		counters:      map[string]*workerCounters{},
	}
	if c.hedgeAfter <= 0 {
		c.hedgeAfter = 10 * time.Second
	}
	if c.probeInterval <= 0 {
		c.probeInterval = 3 * time.Second
	}
	seen := map[string]bool{}
	deduped := c.workers[:0]
	for _, w := range c.workers {
		if w == "" || seen[w] {
			continue
		}
		seen[w] = true
		deduped = append(deduped, w)
		c.clients[w] = newClient(w)
		c.counters[w] = &workerCounters{}
		c.healthy[w] = true // optimistic until the first probe
	}
	c.workers = deduped
	if len(c.workers) == 0 {
		return nil, errors.New("fleet: no workers configured")
	}
	return c, nil
}

// Workers returns the configured worker URLs.
func (c *Coordinator) Workers() []string { return c.workers }

// Run probes worker health every ProbeInterval until ctx is cancelled,
// rebalancing memo-cache slices to workers that transition back to
// healthy. tricheckd runs it on a background goroutine in coordinator
// mode.
func (c *Coordinator) Run(ctx context.Context) {
	c.CheckNow(ctx)
	t := time.NewTicker(c.probeInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			c.CheckNow(ctx)
		}
	}
}

// CheckNow probes every worker's /healthz once, concurrently. A worker
// transitioning unhealthy→healthy gets a memo-slice rebalance so it
// rejoins warm. The very first probe establishes the baseline without
// rebalancing (freshly-booted fleets have nothing to replicate yet).
func (c *Coordinator) CheckNow(ctx context.Context) {
	results := make([]bool, len(c.workers))
	var wg sync.WaitGroup
	for i, w := range c.workers {
		wg.Add(1)
		go func(i int, w string) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, 2*time.Second)
			defer cancel()
			results[i] = c.clients[w].Healthz(pctx) == nil
		}(i, w)
	}
	wg.Wait()
	var joiners []string
	c.mu.Lock()
	first := !c.probed
	c.probed = true
	for i, w := range c.workers {
		was := c.healthy[w]
		c.healthy[w] = results[i]
		if !first && !was && results[i] {
			joiners = append(joiners, w)
		}
	}
	c.mu.Unlock()
	for _, w := range joiners {
		c.log.Printf("fleet: worker %s back, rebalancing its cache slice", w)
		if err := c.Rebalance(ctx, w); err != nil {
			c.log.Printf("fleet: rebalance to %s: %v", w, err)
		}
	}
}

// ensureProbed runs the first health sweep lazily for coordinators used
// without Run (tests, one-shot embedding).
func (c *Coordinator) ensureProbed(ctx context.Context) {
	c.mu.Lock()
	probed := c.probed
	c.mu.Unlock()
	if !probed {
		c.CheckNow(ctx)
	}
}

// setHealthy records a mid-sweep health observation (a failed
// sub-request is better evidence than the last probe).
func (c *Coordinator) setHealthy(worker string, ok bool) {
	c.mu.Lock()
	c.healthy[worker] = ok
	c.mu.Unlock()
}

// healthyList snapshots the healthy workers, minus exclude.
func (c *Coordinator) healthyList(exclude map[string]bool) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []string
	for _, w := range c.workers {
		if c.healthy[w] && !exclude[w] {
			out = append(out, w)
		}
	}
	return out
}

// Healthy returns the currently-healthy worker URLs.
func (c *Coordinator) Healthy() []string { return c.healthyList(nil) }

// Rebalance pushes joiner's consistent-hash slice of every other
// healthy worker's memo cache to joiner — the warm-(re)start path. Slice
// fetch failures skip that donor; an error is returned only when no
// donor could be read at all (with one worker there is nothing to do).
func (c *Coordinator) Rebalance(ctx context.Context, joiner string) error {
	if c.clients[joiner] == nil {
		return fmt.Errorf("fleet: unknown worker %q", joiner)
	}
	ring := c.healthyList(nil)
	if !contains(ring, joiner) {
		ring = append(ring, joiner)
		sort.Strings(ring)
	}
	donors := 0
	var lastErr error
	for _, w := range ring {
		if w == joiner {
			continue
		}
		data, err := c.clients[w].MemoSnapshot(ctx, joiner, ring, c.vnodes)
		if err != nil {
			lastErr = err
			continue
		}
		if err := c.clients[joiner].MemoLoad(ctx, data); err != nil {
			lastErr = err
			continue
		}
		donors++
	}
	if donors == 0 && lastErr != nil {
		return lastErr
	}
	c.metrics.Rebalances.Inc()
	c.mu.Lock()
	c.rebal++
	c.mu.Unlock()
	return nil
}

func contains(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}

// StatsJSON snapshots the coordinator's /v1/stats fleet block.
func (c *Coordinator) StatsJSON() *api.FleetStatsJSON {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := &api.FleetStatsJSON{
		Workers:    len(c.workers),
		Sweeps:     c.sweeps,
		Hedges:     c.hedges,
		Deduped:    c.deduped,
		Rebalances: c.rebal,
	}
	for _, w := range c.workers {
		if c.healthy[w] {
			st.Healthy++
		}
		wc := c.counters[w]
		st.PerWorker = append(st.PerWorker, api.WorkerStatsJSON{
			URL:        w,
			Healthy:    c.healthy[w],
			Dispatched: wc.dispatched,
			Completed:  wc.completed,
			Hedged:     wc.hedged,
			Retried:    wc.retried,
		})
	}
	return st
}
