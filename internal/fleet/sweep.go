package fleet

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"tricheck/api"
)

// This file is the coordinator's sweep engine: partition the jobs over
// the healthy ring, run one sub-request per shard, merge the worker
// streams in completion order, hedge stalls, and re-partition whatever
// a dead worker left behind until every job has exactly one delivered
// record.

// pairKey is the merger's dedup identity: a hedged duplicate of an
// already-delivered job matches on all three coordinates. (The memo key
// alone is not enough — structurally identical tests submitted twice
// legitimately produce one record per name.)
type pairKey struct {
	key, test, stack string
}

// pendingJob tracks how many records a pair identity still owes the
// merged stream (usually 1; >1 when a request contains duplicate
// tests) plus the tally coordinates shared by all its copies.
type pendingJob struct {
	remaining int
	family    string
}

// stackAgg accumulates one stack's summary tallies from merged records.
type stackAgg struct {
	tally    api.TallyJSON
	families map[string]*api.TallyJSON
}

// sweepState is the shared merge state of one fleet sweep. The mutex
// serializes the worker stream callbacks; emit runs under it, so the
// downstream NDJSON writer needs no locking of its own.
type sweepState struct {
	metrics *Metrics

	mu       sync.Mutex
	pending  map[pairKey]*pendingJob
	byStack  map[string]*stackAgg
	stackOrd []string
	total    int
	done     int
	bugs     int
	strict   int
	equiv    int
	diverg   int
	cached   int
	dedup    int
	start    time.Time
	last     time.Time
	emit     func(*api.VerdictRecord) error
	emitErr  error
	multi    bool
	accepted map[string]int    // records accepted per worker
	progress map[int]time.Time // last record per dispatch id
}

func newSweepState(jobs []Job, multi bool, m *Metrics, emit func(*api.VerdictRecord) error) *sweepState {
	st := &sweepState{
		metrics:  m,
		pending:  make(map[pairKey]*pendingJob, len(jobs)),
		byStack:  map[string]*stackAgg{},
		total:    len(jobs),
		emit:     emit,
		multi:    multi,
		accepted: map[string]int{},
		progress: map[int]time.Time{},
	}
	for _, j := range jobs {
		pk := pairKey{j.Key, j.Test, j.Stack}
		p := st.pending[pk]
		if p == nil {
			p = &pendingJob{family: j.Family}
			st.pending[pk] = p
		}
		p.remaining++
		if _, ok := st.byStack[j.Stack]; !ok {
			st.byStack[j.Stack] = &stackAgg{families: map[string]*api.TallyJSON{}}
			st.stackOrd = append(st.stackOrd, j.Stack)
		}
	}
	return st
}

// accept merges one worker record: drop hedged duplicates, renumber the
// done/total counters to the merged stream's frame, tag the producing
// worker on multi-worker fleets, fold the verdict into the summary
// tallies, and write the record downstream. The returned error is the
// downstream write error, which aborts the worker stream delivering it.
func (st *sweepState) accept(worker string, dispatchID int, v api.VerdictRecord) error {
	begin := time.Now()
	st.mu.Lock()
	st.progress[dispatchID] = begin
	pk := pairKey{v.Key, v.Test, v.Stack}
	p := st.pending[pk]
	if p == nil || p.remaining == 0 {
		st.dedup++
		err := st.emitErr
		st.mu.Unlock()
		st.metrics.Deduped.Inc()
		return err
	}
	p.remaining--
	st.done++
	st.last = begin
	if st.start.IsZero() {
		st.start = begin
	}
	v.Done, v.Total = st.done, st.total
	if st.multi {
		v.Worker = worker
	} else {
		v.Worker = ""
	}
	st.accepted[worker]++
	agg := st.byStack[v.Stack]
	fam := agg.families[p.family]
	if fam == nil {
		fam = &api.TallyJSON{}
		agg.families[p.family] = fam
	}
	for _, t := range []*api.TallyJSON{&agg.tally, fam} {
		t.Total++
		switch v.Verdict {
		case "Divergence":
			t.Divergent++
		case "Bug":
			t.Bugs++
		case "OverlyStrict":
			t.Strict++
		default:
			t.Equivalent++
		}
		if v.SpecifiedBug {
			t.SpecifiedBugs++
		}
	}
	switch v.Verdict {
	case "Divergence":
		st.diverg++
	case "Bug":
		st.bugs++
	case "OverlyStrict":
		st.strict++
	default:
		st.equiv++
	}
	if v.Cached {
		st.cached++
	}
	if st.emitErr == nil {
		if err := st.emit(&v); err != nil {
			st.emitErr = err
		}
	}
	err := st.emitErr
	st.mu.Unlock()
	st.metrics.MergeLatency.Observe(time.Since(begin))
	return err
}

// remainingJobs filters jobs to those still owing records, one entry
// per pair identity (the worker streams every matching pair anyway).
func (st *sweepState) remainingJobs(jobs []Job) []Job {
	st.mu.Lock()
	defer st.mu.Unlock()
	seen := map[pairKey]bool{}
	var out []Job
	for _, j := range jobs {
		pk := pairKey{j.Key, j.Test, j.Stack}
		if p := st.pending[pk]; p != nil && p.remaining > 0 && !seen[pk] {
			seen[pk] = true
			out = append(out, j)
		}
	}
	return out
}

func (st *sweepState) remainingCount() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	n := 0
	for _, p := range st.pending {
		n += p.remaining
	}
	return n
}

func (st *sweepState) emitError() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.emitErr
}

func (st *sweepState) lastProgress(dispatchID int) time.Time {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.progress[dispatchID]
}

func (st *sweepState) markDispatch(dispatchID int) {
	st.mu.Lock()
	st.progress[dispatchID] = time.Now()
	st.mu.Unlock()
}

// dispatchResult is one sub-request's terminal outcome.
type dispatchResult struct {
	id      int
	worker  string
	summary *api.SummaryRecord
	err     error
}

// shardInfo tracks an in-flight dispatch for the hedging watchdog.
type shardInfo struct {
	worker string
	jobs   []Job
	hedged bool
}

// uniqueKeys extracts a shard's key allowlist.
func uniqueKeys(jobs []Job) []string {
	seen := make(map[string]bool, len(jobs))
	keys := make([]string, 0, len(jobs))
	for _, j := range jobs {
		if !seen[j.Key] {
			seen[j.Key] = true
			keys = append(keys, j.Key)
		}
	}
	return keys
}

// maxSweepRounds bounds re-partition rounds: every round either
// finishes the sweep or removes at least one failed worker from the
// ring, so a few extra rounds of headroom is plenty.
func (c *Coordinator) maxSweepRounds() int { return len(c.workers) + 3 }

// Sweep fans base out over the fleet as per-shard sub-requests
// restricted by key allowlists, merges the worker streams through emit
// in completion order (done/total renumbered to the merged frame), and
// returns the aggregated terminal summary. Worker failures and stalls
// are survived by hedged re-dispatch as long as at least one worker
// stays healthy; every job yields exactly one merged record. A non-nil
// error from emit aborts the sweep (like a disconnected client).
func (c *Coordinator) Sweep(ctx context.Context, base api.VerifyRequest, jobs []Job, emit func(*api.VerdictRecord) error) (*api.SummaryRecord, error) {
	c.metrics.Sweeps.Inc()
	c.mu.Lock()
	c.sweeps++
	c.mu.Unlock()
	c.ensureProbed(ctx)

	st := newSweepState(jobs, len(c.workers) > 1, c.metrics, emit)
	subCtx, subCancel := context.WithCancel(ctx)
	defer subCancel()

	results := make(chan dispatchResult, 2*len(c.workers)+4)
	shards := map[int]*shardInfo{}
	subSummaries := map[string]*api.SummaryRecord{}
	failed := map[string]bool{} // this sweep's failures
	dispatched := map[string]int{}
	failedEver := map[string]bool{}
	var workerOrder []string
	nextID := 0
	outstanding := 0
	singleClean := len(c.workers) == 1 // passthrough candidate

	launch := func(worker string, shard []Job, retried bool) {
		id := nextID
		nextID++
		shards[id] = &shardInfo{worker: worker, jobs: shard}
		st.markDispatch(id)
		if _, seen := dispatched[worker]; !seen {
			workerOrder = append(workerOrder, worker)
		}
		dispatched[worker] += len(shard)
		wm := c.metrics.worker(worker)
		wm.Dispatched.Add(uint64(len(shard)))
		wm.ShardJobs.Set(int64(len(shard)))
		c.mu.Lock()
		c.counters[worker].dispatched += uint64(len(shard))
		if retried {
			c.counters[worker].retried += uint64(len(shard))
		}
		c.mu.Unlock()
		if retried {
			wm.Retried.Add(uint64(len(shard)))
		}
		req := base
		req.Keys = uniqueKeys(shard)
		cl := c.clients[worker]
		outstanding++
		go func() {
			sum, err := cl.Verify(subCtx, req, func(v api.VerdictRecord) error {
				return st.accept(worker, id, v)
			})
			results <- dispatchResult{id: id, worker: worker, summary: sum, err: err}
		}()
	}

	// hedge re-dispatches a stalled or failed shard's remaining jobs to
	// ring successors (never back to the troubled worker).
	sweepHedges := 0
	hedge := func(ring *Ring, sh *shardInfo, reason string) {
		rem := st.remainingJobs(sh.jobs)
		if len(rem) == 0 {
			return
		}
		targets := map[string][]Job{}
		for _, j := range rem {
			t := ring.Owner(j.Key)
			if t == sh.worker || t == "" {
				t = ring.Successor(j.Key, map[string]bool{sh.worker: true})
			}
			if t == "" {
				continue
			}
			targets[t] = append(targets[t], j)
		}
		if len(targets) == 0 {
			return
		}
		sweepHedges++
		c.metrics.Hedges.Inc()
		c.metrics.worker(sh.worker).Hedged.Inc()
		c.mu.Lock()
		c.hedges++
		c.counters[sh.worker].hedged++
		c.mu.Unlock()
		for t, tjobs := range targets {
			c.log.Printf("fleet: hedging %d jobs of %s (%s) to %s", len(tjobs), sh.worker, reason, t)
			launch(t, tjobs, true)
		}
	}

	round := 0
	for {
		rem := st.remainingJobs(jobs)
		if len(rem) == 0 {
			break
		}
		if round >= c.maxSweepRounds() {
			return nil, fmt.Errorf("fleet: %d jobs undeliverable after %d dispatch rounds", st.remainingCount(), round)
		}
		healthy := c.healthyList(failed)
		if len(healthy) == 0 {
			// Everyone looks dead: reprobe from scratch — a restarted
			// worker may be back — and clear this sweep's failure marks.
			c.CheckNow(ctx)
			failed = map[string]bool{}
			if healthy = c.healthyList(nil); len(healthy) == 0 {
				return nil, errors.New("fleet: no healthy workers")
			}
		}
		ring := NewRing(healthy, c.vnodes)
		byWorker := map[string][]Job{}
		for _, j := range rem {
			byWorker[ring.Owner(j.Key)] = append(byWorker[ring.Owner(j.Key)], j)
		}
		if round > 0 || len(byWorker) > 1 {
			singleClean = false
		}
		for w, shard := range byWorker {
			launch(w, shard, round > 0)
		}

		tick := c.hedgeAfter / 8
		if tick < 25*time.Millisecond {
			tick = 25 * time.Millisecond
		}
		ticker := time.NewTicker(tick)
		for outstanding > 0 {
			select {
			case r := <-results:
				outstanding--
				sh := shards[r.id]
				delete(shards, r.id)
				if r.err != nil {
					if subCtx.Err() == nil {
						// A failed sub-request (after the client's own
						// retries) marks the worker down for this sweep;
						// its leftovers re-partition next round, but hedge
						// immediately when the ring still has capacity.
						singleClean = false
						failed[r.worker] = true
						failedEver[r.worker] = true
						c.setHealthy(r.worker, false)
						c.log.Printf("fleet: worker %s failed mid-sweep: %v", r.worker, r.err)
						if alive := c.healthyList(failed); len(alive) > 0 {
							hedge(NewRing(alive, c.vnodes), sh, "died")
						}
					}
				} else if r.summary != nil {
					subSummaries[r.worker] = r.summary
				}
			case <-ticker.C:
				if st.remainingCount() == 0 {
					// Everything delivered; lingering duplicate streams
					// (hedge losers) can stop — workers keep their memos.
					subCancel()
					continue
				}
				now := time.Now()
				for _, sh := range shards {
					if sh.hedged || now.Sub(st.lastProgress(idOf(shards, sh))) < c.hedgeAfter {
						continue
					}
					sh.hedged = true
					if alive := c.healthyList(map[string]bool{sh.worker: true}); len(alive) > 0 {
						singleClean = false
						hedge(NewRing(alive, c.vnodes), sh, "stalled")
					}
				}
			case <-ctx.Done():
				subCancel()
				for outstanding > 0 {
					<-results
					outstanding--
				}
				ticker.Stop()
				return nil, ctx.Err()
			}
			if err := st.emitError(); err != nil {
				subCancel()
				for outstanding > 0 {
					<-results
					outstanding--
				}
				ticker.Stop()
				return nil, err
			}
		}
		ticker.Stop()
		round++
	}

	st.mu.Lock()
	dedup := st.dedup
	st.mu.Unlock()
	c.mu.Lock()
	c.deduped += uint64(dedup)
	for w, n := range st.accepted {
		c.counters[w].completed += uint64(n)
		c.metrics.worker(w).Completed.Add(uint64(n))
	}
	c.mu.Unlock()

	// Single-worker fleets pass the worker's own summary through
	// (byte-compatible with a direct request) when nothing went wrong;
	// everything else gets the merged aggregate.
	if singleClean && dedup == 0 {
		if sum := subSummaries[c.workers[0]]; sum != nil {
			return sum, nil
		}
	}
	return st.summary(base, workerOrder, dispatched, failedEver, subSummaries, sweepHedges), nil
}

// idOf finds a shard's dispatch id (the watchdog iterates values).
func idOf(shards map[int]*shardInfo, target *shardInfo) int {
	for id, sh := range shards {
		if sh == target {
			return id
		}
	}
	return -1
}

// summary builds the merged terminal record: per-record tallies in the
// coordinator's frame, per-stack/family aggregation in job order,
// capability skip notes and coverage totals harvested from the worker
// sub-summaries, and the fleet dispatch block.
func (st *sweepState) summary(base api.VerifyRequest, workerOrder []string, dispatched map[string]int, failed map[string]bool, subs map[string]*api.SummaryRecord, hedges int) *api.SummaryRecord {
	st.mu.Lock()
	defer st.mu.Unlock()
	sum := &api.SummaryRecord{
		Type:       "summary",
		Done:       st.done,
		Total:      st.total,
		Bugs:       st.bugs,
		Strict:     st.strict,
		Equivalent: st.equiv,
		Divergent:  st.diverg,
		Cached:     st.cached,
	}
	if base.Backend != "" && base.Backend != "uhb" {
		sum.Backend = base.Backend
	}
	if !st.start.IsZero() && !st.last.IsZero() {
		sum.ElapsedSeconds = st.last.Sub(st.start).Seconds()
		if sum.ElapsedSeconds > 0 {
			sum.TestsPerSecond = float64(st.done) / sum.ElapsedSeconds
		}
	}
	// Capability skip notes are config-level; any worker that swept part
	// of a stack reported the same note.
	skips := map[string]string{}
	for _, sub := range subs {
		for _, ss := range sub.Stacks {
			if ss.OpsimSkipped != "" {
				skips[ss.Stack] = ss.OpsimSkipped
			}
		}
		// Coverage totals are per-worker-engine lifetime state: additive
		// counters sum across disjoint engines, set-like counts take the
		// max (every worker loads the same models and axioms).
		sum.Coverage.Jobs += sub.Coverage.Jobs
		sum.Coverage.Vectors += sub.Coverage.Vectors
		if sub.Coverage.Models > sum.Coverage.Models {
			sum.Coverage.Models = sub.Coverage.Models
		}
		if sub.Coverage.AxiomsFired > sum.Coverage.AxiomsFired {
			sum.Coverage.AxiomsFired = sub.Coverage.AxiomsFired
		}
		if sub.Coverage.AxiomsEdged > sum.Coverage.AxiomsEdged {
			sum.Coverage.AxiomsEdged = sub.Coverage.AxiomsEdged
		}
		if sub.Coverage.AxiomsCycled > sum.Coverage.AxiomsCycled {
			sum.Coverage.AxiomsCycled = sub.Coverage.AxiomsCycled
		}
	}
	for _, stack := range st.stackOrd {
		agg := st.byStack[stack]
		ss := api.StackSummary{Stack: stack, Tally: agg.tally, OpsimSkipped: skips[stack]}
		fams := make([]string, 0, len(agg.families))
		for f := range agg.families {
			fams = append(fams, f)
		}
		sort.Strings(fams)
		for _, f := range fams {
			ss.Families = append(ss.Families, api.FamilyTally{Family: f, TallyJSON: *agg.families[f]})
		}
		sum.Stacks = append(sum.Stacks, ss)
	}
	fleet := &api.FleetSummary{Hedges: hedges, Deduped: st.dedup}
	for _, w := range workerOrder {
		fleet.Workers = append(fleet.Workers, api.WorkerSummary{
			Worker:     w,
			Dispatched: dispatched[w],
			Completed:  st.accepted[w],
			Failed:     failed[w],
		})
	}
	sum.Fleet = fleet
	return sum
}
