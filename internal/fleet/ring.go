// Package fleet makes tricheckd horizontally scalable: a coordinator
// consistent-hashes the sweep's content-addressed memo keys
// (core.JobKeyBackend — the Key field of every verdict record) across N
// worker tricheckds, fans one /v1/verify request out as per-shard
// sub-requests carrying key allowlists, and merges the worker NDJSON
// streams back into one wire-compatible stream.
//
// Robustness is part of the perf story ("The Tail at Scale"): workers
// are health-probed, a slow or dead worker's remaining jobs are hedged
// to the next ring node — memoization makes duplicate execution free,
// and the merger deduplicates by memo key — and cache slices are
// rebalanced to (re)joining workers from farm.Cache snapshot slices so
// they start warm.
package fleet

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultVnodes is the virtual-node count per worker. 64 vnodes keep
// the per-worker share of a sweep within a few percent of even for
// small fleets while the ring stays tiny (hundreds of points).
const DefaultVnodes = 64

// Ring is a consistent-hash ring over worker URLs. Keys map to the
// first ring point clockwise of their hash; adding or removing a worker
// moves only the keys in the affected arcs, so a warm fleet keeps most
// of its cache locality across membership changes.
type Ring struct {
	points []ringPoint // sorted by hash
	nodes  []string    // sorted, deduplicated
}

type ringPoint struct {
	hash uint64
	node string
}

func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// NewRing builds a ring over nodes with the given virtual-node count
// per node (0 = DefaultVnodes). Node order is irrelevant: the ring is a
// pure function of the membership set, so a coordinator and a worker
// reconstructing the ring from a URL list agree on every key's owner.
func NewRing(nodes []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	seen := map[string]bool{}
	r := &Ring{}
	for _, n := range nodes {
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		r.nodes = append(r.nodes, n)
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hashKey(n + "#" + strconv.Itoa(v)), n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Ties (vanishingly rare with 64-bit FNV) break on node name so
		// the ring stays a pure function of the membership set.
		return r.points[i].node < r.points[j].node
	})
	sort.Strings(r.nodes)
	return r
}

// Nodes returns the ring's members, sorted.
func (r *Ring) Nodes() []string { return r.nodes }

// Len returns the member count.
func (r *Ring) Len() int { return len(r.nodes) }

// search returns the index of the first ring point clockwise of h.
func (r *Ring) search(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// Owner returns the worker owning key ("" on an empty ring).
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.search(hashKey(key))].node
}

// Successor returns the next distinct worker clockwise of key's owner,
// skipping members of exclude — the hedging target when the owner is
// slow or dead. It returns "" when every other worker is excluded.
func (r *Ring) Successor(key string, exclude map[string]bool) string {
	if len(r.points) == 0 {
		return ""
	}
	start := r.search(hashKey(key))
	owner := r.points[start].node
	for i := 1; i <= len(r.points); i++ {
		n := r.points[(start+i)%len(r.points)].node
		if n != owner && !exclude[n] {
			return n
		}
	}
	return ""
}
