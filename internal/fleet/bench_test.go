package fleet_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"runtime"
	"testing"
	"time"

	"tricheck/api"
	"tricheck/internal/server"
)

// The capstone measurements: the coordinator's merge/dispatch overhead
// in steady state (benchmarks), and the near-linear cold-sweep scaling
// claim, 1 worker vs 4 in-process workers each pinned to one farm
// worker (load test, gated by TRICHECK_FLEET_LOADTEST=1 since it pins
// four cores for seconds).

// sweepOnce drives one /v1/verify through base and counts the records.
func sweepOnce(t testing.TB, baseURL string, req api.VerifyRequest) int {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(baseURL+"/v1/verify", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("verify: HTTP %d", resp.StatusCode)
	}
	n := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	last := ""
	for sc.Scan() {
		last = sc.Text()
		n++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	var probe struct {
		Type  string `json:"type"`
		Error string `json:"error"`
	}
	if err := json.Unmarshal([]byte(last), &probe); err != nil || probe.Type != "summary" {
		t.Fatalf("sweep did not end in a summary: %q (%s)", last, probe.Error)
	}
	return n - 1
}

// bootFleet stands up n one-core workers under a coordinator and
// returns the coordinator's base URL.
func bootFleet(t testing.TB, n int) string {
	t.Helper()
	var urls []string
	for i := 0; i < n; i++ {
		_, ts := bootWorker(t, server.Config{MaxWorkers: 1})
		urls = append(urls, ts.URL)
	}
	_, coord := bootCoordinator(t, urls, 30*time.Second)
	return coord.URL
}

// benchmarkFleetMerge measures warm-sweep throughput through the
// coordinator: with every job memoized on the workers, the measured
// cost is dispatch, stream transport and merge — the fleet overhead a
// single node doesn't pay.
func benchmarkFleetMerge(b *testing.B, workers int) {
	coordURL := bootFleet(b, workers)
	records := sweepOnce(b, coordURL, fleetReq) // warm the worker memos
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sweepOnce(b, coordURL, fleetReq)
	}
	b.StopTimer()
	b.ReportMetric(float64(records*b.N)/b.Elapsed().Seconds(), "records/s")
}

func BenchmarkFleetMergeWorkers1(b *testing.B) { benchmarkFleetMerge(b, 1) }
func BenchmarkFleetMergeWorkers4(b *testing.B) { benchmarkFleetMerge(b, 4) }

// TestFleetLoadScalingColdSweep is the load test behind the tentpole's
// headline: a cold paper-family sweep over 4 one-core workers must run
// at least 3× the tests/sec of the same sweep over 1 one-core worker.
// Every boot is fresh (cold memos), so the measured work is real
// verification, sharded.
func TestFleetLoadScalingColdSweep(t *testing.T) {
	if os.Getenv("TRICHECK_FLEET_LOADTEST") == "" {
		t.Skip("set TRICHECK_FLEET_LOADTEST=1 to run the fleet scaling load test")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("need ≥4 CPUs for a meaningful scaling measurement, have %d", runtime.NumCPU())
	}
	// The paper suite over the base-ISA current-model stacks is enough
	// work (~12k jobs) that per-shard dispatch overhead is noise.
	req := api.VerifyRequest{Suite: "paper", ISA: "base", Variant: "curr"}

	rate := func(workers int) (float64, int) {
		url := bootFleet(t, workers)
		start := time.Now()
		n := sweepOnce(t, url, req)
		return float64(n) / time.Since(start).Seconds(), n
	}

	r1, n1 := rate(1)
	r4, n4 := rate(4)
	if n1 != n4 {
		t.Fatalf("record counts differ across fleet sizes: %d vs %d", n1, n4)
	}
	speedup := r4 / r1
	t.Logf("cold sweep: 1 worker %.0f tests/s, 4 workers %.0f tests/s, speedup %.2fx (%d records)", r1, r4, speedup, n1)
	if speedup < 3 {
		t.Fatalf("4-worker fleet speedup %.2fx, want ≥3x (1w=%.0f/s, 4w=%.0f/s)", speedup, r1, r4)
	}
}
