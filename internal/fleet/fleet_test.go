package fleet_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"tricheck/api"
	"tricheck/client"
	"tricheck/internal/fleet"
	"tricheck/internal/obs"
	"tricheck/internal/server"
)

// These are the tentpole's acceptance tests: a coordinator over N
// in-process worker tricheckds must stream exactly the records a single
// node streams (modulo completion order and trace IDs), survive a
// worker dying mid-sweep without losing or duplicating a verdict, and
// warm-start a joining worker from its peers' memo caches.

// bootWorker starts one in-process worker tricheckd.
func bootWorker(t testing.TB, cfg server.Config) (*server.Server, *httptest.Server) {
	t.Helper()
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// fastClient builds fleet worker clients with millisecond retry pacing.
func fastClient(u string) *client.Client {
	return &client.Client{BaseURL: u, MaxRetries: 2, RetryBase: time.Millisecond, RetryCap: 4 * time.Millisecond}
}

// bootCoordinator starts a coordinator tricheckd over the given worker
// URLs, with test-friendly pacing and an isolated metrics registry.
func bootCoordinator(t testing.TB, workers []string, hedgeAfter time.Duration) (*server.Server, *httptest.Server) {
	t.Helper()
	return bootWorker(t, server.Config{Fleet: &fleet.Config{
		Workers:    workers,
		HedgeAfter: hedgeAfter,
		NewClient:  fastClient,
		Metrics:    fleet.NewMetrics(obs.NewRegistry()),
	}})
}

// rawStream POSTs a verify request and returns the raw NDJSON lines.
func rawStream(t *testing.T, baseURL string, req api.VerifyRequest) []string {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(baseURL+"/v1/verify", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("verify: HTTP %d", resp.StatusCode)
	}
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines
}

// rawStreamSabotage is rawStream with a mid-flight trigger: once `after`
// lines have arrived the sabotage hook fires (exactly once), while the
// stream keeps being consumed to the end. This pins failure injection to
// sweep progress instead of wall-clock sleeps, which go wrong under
// -race slowdowns.
func rawStreamSabotage(t *testing.T, baseURL string, req api.VerifyRequest, after int, sabotage func()) []string {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(baseURL+"/v1/verify", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("verify: HTTP %d", resp.StatusCode)
	}
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	fired := false
	for sc.Scan() {
		lines = append(lines, sc.Text())
		if !fired && len(lines) >= after {
			fired = true
			sabotage()
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatalf("stream ended after %d lines, before the sabotage trigger at %d", len(lines), after)
	}
	return lines
}

// normalize strips the stream-specific fields (trace ID, completion
// ordinal, wall-clock timings) from an NDJSON line and re-marshals it
// with sorted keys, so two streams can be compared as sets.
func normalize(t *testing.T, line string) string {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal([]byte(line), &m); err != nil {
		t.Fatalf("bad NDJSON line %q: %v", line, err)
	}
	delete(m, "trace")
	delete(m, "done")
	delete(m, "elapsed_seconds")
	delete(m, "tests_per_sec")
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// lineType peeks at an NDJSON line's record type.
func lineType(t *testing.T, line string) string {
	t.Helper()
	var probe struct {
		Type string `json:"type"`
	}
	if err := json.Unmarshal([]byte(line), &probe); err != nil {
		t.Fatalf("bad NDJSON line %q: %v", line, err)
	}
	return probe.Type
}

func normalizedSet(t *testing.T, lines []string) []string {
	out := make([]string, len(lines))
	for i, l := range lines {
		out[i] = normalize(t, l)
	}
	sort.Strings(out)
	return out
}

var fleetReq = api.VerifyRequest{Family: "mp", ISA: "base", Variant: "curr"}

func TestFleetSingleWorkerPassthroughMatchesDirect(t *testing.T) {
	_, direct := bootWorker(t, server.Config{})
	_, worker := bootWorker(t, server.Config{})
	_, coord := bootCoordinator(t, []string{worker.URL}, 10*time.Second)

	want := normalizedSet(t, rawStream(t, direct.URL, fleetReq))
	got := normalizedSet(t, rawStream(t, coord.URL, fleetReq))
	if len(got) != len(want) {
		t.Fatalf("fleet stream has %d lines, direct %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fleet stream diverges from direct:\n fleet: %s\ndirect: %s", got[i], want[i])
		}
	}
	// A single-worker fleet must not stamp worker URLs or a fleet block —
	// the stream is indistinguishable from the worker's own.
	for _, l := range got {
		if strings.Contains(l, `"worker"`) || strings.Contains(l, `"fleet"`) {
			t.Fatalf("single-worker fleet stream leaks fleet fields: %s", l)
		}
	}
}

func TestFleetThreeWorkersMatchesDirect(t *testing.T) {
	_, direct := bootWorker(t, server.Config{})
	var urls []string
	for i := 0; i < 3; i++ {
		_, ts := bootWorker(t, server.Config{})
		urls = append(urls, ts.URL)
	}
	_, coord := bootCoordinator(t, urls, 10*time.Second)

	directLines := rawStream(t, direct.URL, fleetReq)
	fleetLines := rawStream(t, coord.URL, fleetReq)
	if len(fleetLines) != len(directLines) {
		t.Fatalf("fleet stream has %d lines, direct %d", len(fleetLines), len(directLines))
	}

	var directSum, fleetSum *api.SummaryRecord
	wantVerdicts := map[string]int{}
	for _, l := range directLines {
		if lineType(t, l) == "summary" {
			directSum = new(api.SummaryRecord)
			if err := json.Unmarshal([]byte(l), directSum); err != nil {
				t.Fatal(err)
			}
			continue
		}
		var v api.VerdictRecord
		if err := json.Unmarshal([]byte(l), &v); err != nil {
			t.Fatal(err)
		}
		wantVerdicts[v.Key+"|"+v.Test+"|"+v.Stack+"|"+v.Verdict+"|"+fmt.Sprint(v.SpecifiedBug)]++
	}
	seenWorkers := map[string]bool{}
	for _, l := range fleetLines {
		if lineType(t, l) == "summary" {
			fleetSum = new(api.SummaryRecord)
			if err := json.Unmarshal([]byte(l), fleetSum); err != nil {
				t.Fatal(err)
			}
			continue
		}
		var v api.VerdictRecord
		if err := json.Unmarshal([]byte(l), &v); err != nil {
			t.Fatal(err)
		}
		if v.Worker == "" {
			t.Fatalf("multi-worker fleet record missing worker tag: %s", l)
		}
		seenWorkers[v.Worker] = true
		k := v.Key + "|" + v.Test + "|" + v.Stack + "|" + v.Verdict + "|" + fmt.Sprint(v.SpecifiedBug)
		if wantVerdicts[k] == 0 {
			t.Fatalf("fleet stream has unexpected or duplicate record: %s", l)
		}
		wantVerdicts[k]--
	}
	for k, n := range wantVerdicts {
		if n != 0 {
			t.Fatalf("fleet stream missing %d records for %s", n, k)
		}
	}
	if len(seenWorkers) < 2 {
		t.Errorf("only %d of 3 workers produced records — sharding did not spread", len(seenWorkers))
	}

	// The merged summary's tallies must match the single node's.
	if directSum == nil || fleetSum == nil {
		t.Fatal("missing summary record")
	}
	if fleetSum.Done != directSum.Done || fleetSum.Total != directSum.Total ||
		fleetSum.Bugs != directSum.Bugs || fleetSum.Strict != directSum.Strict ||
		fleetSum.Equivalent != directSum.Equivalent || fleetSum.Divergent != directSum.Divergent {
		t.Fatalf("fleet summary tallies diverge:\n fleet: %+v\ndirect: %+v", fleetSum, directSum)
	}
	if len(fleetSum.Stacks) != len(directSum.Stacks) {
		t.Fatalf("fleet summary has %d stacks, direct %d", len(fleetSum.Stacks), len(directSum.Stacks))
	}
	for i := range directSum.Stacks {
		d, f := directSum.Stacks[i], fleetSum.Stacks[i]
		if f.Stack != d.Stack || f.Tally != d.Tally {
			t.Fatalf("stack %d tally diverges:\n fleet: %+v\ndirect: %+v", i, f, d)
		}
		if len(f.Families) != len(d.Families) {
			t.Fatalf("stack %s: fleet has %d families, direct %d", d.Stack, len(f.Families), len(d.Families))
		}
		for j := range d.Families {
			if f.Families[j] != d.Families[j] {
				t.Fatalf("stack %s family tally diverges:\n fleet: %+v\ndirect: %+v", d.Stack, f.Families[j], d.Families[j])
			}
		}
	}
	if fleetSum.Fleet == nil || len(fleetSum.Fleet.Workers) == 0 {
		t.Fatal("multi-worker fleet summary missing fleet block")
	}
	disp, comp := 0, 0
	for _, ws := range fleetSum.Fleet.Workers {
		disp += ws.Dispatched
		comp += ws.Completed
	}
	if comp != fleetSum.Done {
		t.Fatalf("fleet block completed=%d, summary done=%d", comp, fleetSum.Done)
	}
	if disp < fleetSum.Total {
		t.Fatalf("fleet block dispatched=%d < total=%d", disp, fleetSum.Total)
	}
}

// hangingWorker is a fake tricheckd that accepts /v1/verify, flushes
// headers, and never streams a record — the shape of a wedged worker.
// Its /healthz answers so the coordinator considers it alive.
func hangingWorker(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/healthz":
			fmt.Fprintln(w, "ok")
		case "/v1/verify":
			w.Header().Set("Content-Type", "application/x-ndjson")
			if f, ok := w.(http.Flusher); ok {
				f.Flush()
			}
			<-r.Context().Done()
		default:
			http.NotFound(w, r)
		}
	}))
	t.Cleanup(ts.Close)
	return ts
}

func TestFleetSurvivesStalledWorkerByHedging(t *testing.T) {
	_, direct := bootWorker(t, server.Config{})
	_, w1 := bootWorker(t, server.Config{})
	_, w2 := bootWorker(t, server.Config{})
	hang := hangingWorker(t)

	csrv, coord := bootCoordinator(t, []string{w1.URL, w2.URL, hang.URL}, 300*time.Millisecond)

	directLines := rawStream(t, direct.URL, fleetReq)
	fleetLines := rawStream(t, coord.URL, fleetReq)
	if len(fleetLines) != len(directLines) {
		t.Fatalf("fleet stream has %d lines, direct %d — a hedged sweep must deliver exactly one record per job", len(fleetLines), len(directLines))
	}
	seen := map[string]bool{}
	var sum *api.SummaryRecord
	for _, l := range fleetLines {
		if lineType(t, l) == "summary" {
			sum = new(api.SummaryRecord)
			if err := json.Unmarshal([]byte(l), sum); err != nil {
				t.Fatal(err)
			}
			continue
		}
		var v api.VerdictRecord
		if err := json.Unmarshal([]byte(l), &v); err != nil {
			t.Fatal(err)
		}
		id := v.Key + "|" + v.Test + "|" + v.Stack
		if seen[id] {
			t.Fatalf("duplicate record after hedging: %s", id)
		}
		seen[id] = true
		if v.Worker == hang.URL {
			t.Fatalf("record attributed to the wedged worker: %s", l)
		}
	}
	if sum == nil {
		t.Fatal("hedged sweep did not terminate with a summary")
	}
	if sum.Done != sum.Total || sum.Done != len(directLines)-1 {
		t.Fatalf("hedged sweep summary done=%d total=%d, want %d", sum.Done, sum.Total, len(directLines)-1)
	}
	if sum.Fleet == nil || sum.Fleet.Hedges == 0 {
		t.Fatalf("hedged sweep summary reports no hedges: %+v", sum.Fleet)
	}
	if st := csrv.Fleet().StatsJSON(); st.Hedges == 0 {
		t.Fatalf("coordinator stats report no hedges: %+v", st)
	}
}

func TestFleetSurvivesWorkerDeathMidSweep(t *testing.T) {
	_, direct := bootWorker(t, server.Config{})
	_, w1 := bootWorker(t, server.Config{})
	_, w2 := bootWorker(t, server.Config{})
	// The dying worker hangs first (so the sweep is provably mid-flight
	// when it goes away), then its listener is torn down, turning the
	// coordinator's open stream into a hard error. The teardown fires
	// once 50 records have streamed from the healthy shards — by then
	// the hanging worker's shard is dispatched and stuck, so the kill
	// always lands mid-sweep even under -race slowdowns.
	hang := hangingWorker(t)

	csrv, coord := bootCoordinator(t, []string{w1.URL, w2.URL, hang.URL}, 10*time.Second)

	directLines := rawStream(t, direct.URL, fleetReq)
	fleetLines := rawStreamSabotage(t, coord.URL, fleetReq, 50, func() {
		hang.CloseClientConnections()
		hang.Close()
	})
	if len(fleetLines) != len(directLines) {
		t.Fatalf("fleet stream has %d lines, direct %d — worker death must not lose or duplicate records", len(fleetLines), len(directLines))
	}
	seen := map[string]bool{}
	var sum *api.SummaryRecord
	for _, l := range fleetLines {
		if lineType(t, l) == "summary" {
			sum = new(api.SummaryRecord)
			if err := json.Unmarshal([]byte(l), sum); err != nil {
				t.Fatal(err)
			}
			continue
		}
		var v api.VerdictRecord
		if err := json.Unmarshal([]byte(l), &v); err != nil {
			t.Fatal(err)
		}
		id := v.Key + "|" + v.Test + "|" + v.Stack
		if seen[id] {
			t.Fatalf("duplicate record after worker death: %s", id)
		}
		seen[id] = true
	}
	if sum == nil || sum.Done != sum.Total {
		t.Fatalf("sweep did not terminate cleanly after worker death: %+v", sum)
	}
	st := csrv.Fleet().StatsJSON()
	if st.Hedges == 0 {
		t.Fatalf("worker death produced no hedge re-dispatch: %+v", st)
	}
}

func TestFleetRebalanceWarmStartsJoiner(t *testing.T) {
	srvA, wA := bootWorker(t, server.Config{})
	srvB, wB := bootWorker(t, server.Config{})

	coordCfg := fleet.Config{
		Workers:   []string{wA.URL, wB.URL},
		NewClient: fastClient,
		Metrics:   fleet.NewMetrics(obs.NewRegistry()),
	}
	coord, err := fleet.New(coordCfg)
	if err != nil {
		t.Fatal(err)
	}

	// Warm worker A with a direct sweep; B stays cold.
	rawStream(t, wA.URL, fleetReq)
	if st, ok := srvA.Engine().MemoStats(); !ok || st.Len == 0 {
		t.Fatal("worker A memo cache is cold after a sweep")
	}
	if st, ok := srvB.Engine().MemoStats(); ok && st.Len != 0 {
		t.Fatalf("worker B memo cache unexpectedly warm: %d entries", st.Len)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	coord.CheckNow(ctx)
	if err := coord.Rebalance(ctx, wB.URL); err != nil {
		t.Fatal(err)
	}
	stB, ok := srvB.Engine().MemoStats()
	if !ok || stB.Len == 0 {
		t.Fatal("rebalance left worker B cold — no memo slice arrived")
	}
	// B received only its ring slice, not A's whole cache.
	stA, _ := srvA.Engine().MemoStats()
	if stB.Len >= stA.Len {
		t.Errorf("worker B got %d entries, donor A has %d — expected a proper slice", stB.Len, stA.Len)
	}
	if st := coord.StatsJSON(); st.Rebalances == 0 {
		t.Fatalf("rebalance not counted: %+v", st)
	}
}
