package fleet

import (
	"fmt"
	"testing"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("test-fp-%04d+stack-fp-%d", i, i%7)
	}
	return out
}

func TestRingIsDeterministicAndOrderInvariant(t *testing.T) {
	a := NewRing([]string{"http://w1", "http://w2", "http://w3"}, 0)
	b := NewRing([]string{"http://w3", "http://w1", "http://w2", "http://w1"}, 0)
	for _, k := range keys(500) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("owner of %q depends on construction order: %q vs %q", k, a.Owner(k), b.Owner(k))
		}
	}
}

func TestRingSpreadsKeys(t *testing.T) {
	workers := []string{"http://w1", "http://w2", "http://w3", "http://w4"}
	r := NewRing(workers, 0)
	counts := map[string]int{}
	n := 4000
	for _, k := range keys(n) {
		counts[r.Owner(k)]++
	}
	for _, w := range workers {
		got := counts[w]
		// With 64 vnodes the per-worker share should be within a factor
		// of ~2 of even — the property hedging and scaling rely on.
		if got < n/8 || got > n/2 {
			t.Errorf("worker %s owns %d of %d keys (want roughly %d)", w, got, n, n/4)
		}
	}
}

func TestRemovingNodeMovesOnlyItsKeys(t *testing.T) {
	all := []string{"http://w1", "http://w2", "http://w3", "http://w4"}
	full := NewRing(all, 0)
	without := NewRing(all[:3], 0) // drop w4
	for _, k := range keys(2000) {
		before, after := full.Owner(k), without.Owner(k)
		if before != "http://w4" && before != after {
			t.Fatalf("key %q moved from %s to %s though its owner survived", k, before, after)
		}
		if before == "http://w4" && after == "http://w4" {
			t.Fatalf("key %q still owned by removed worker", k)
		}
	}
}

func TestSuccessorIsDistinctAndRespectsExclusion(t *testing.T) {
	r := NewRing([]string{"http://w1", "http://w2", "http://w3"}, 0)
	for _, k := range keys(200) {
		owner := r.Owner(k)
		succ := r.Successor(k, nil)
		if succ == "" || succ == owner {
			t.Fatalf("successor of %q is %q (owner %q)", k, succ, owner)
		}
		succ2 := r.Successor(k, map[string]bool{succ: true})
		if succ2 == "" || succ2 == owner || succ2 == succ {
			t.Fatalf("second successor of %q is %q (owner %q, first %q)", k, succ2, owner, succ)
		}
		if got := r.Successor(k, map[string]bool{succ: true, succ2: true}); got != "" {
			t.Fatalf("successor with everyone excluded = %q, want empty", got)
		}
	}
}

func TestEmptyAndSingleRing(t *testing.T) {
	if got := NewRing(nil, 0).Owner("k"); got != "" {
		t.Fatalf("empty ring owner = %q", got)
	}
	one := NewRing([]string{"http://solo"}, 0)
	if got := one.Owner("k"); got != "http://solo" {
		t.Fatalf("single ring owner = %q", got)
	}
	if got := one.Successor("k", nil); got != "" {
		t.Fatalf("single ring successor = %q, want empty", got)
	}
}
