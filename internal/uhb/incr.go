package uhb

import (
	"fmt"
	"math/bits"
	"sync"
)

// Incr is the incremental tier of the µhb evaluation core: it maintains
// a topological order of skeleton + committed dynamic edges across an
// entire enumeration sweep, so the per-candidate acyclicity verdict
// costs a word-parallel diff plus a bounded reorder per changed edge
// instead of a full-graph DFS.
//
// The algorithm is the one-sided incremental topological sort of
// Marchetti-Spaccamela/Nanni/Rohnert: inserting (x, y) with
// pos[y] < pos[x] runs a forward DFS from y restricted to positions
// ≤ pos[x]; if it reaches x the edge closes a cycle, otherwise the
// discovered set shifts to just after x, preserving relative order.
// Because every committed edge respects the order, retracting edges
// never invalidates it — removal is free.
//
// Cycles are represented as *deferred edges*: an insertion that fails
// is parked instead of committed, and the graph is cyclic exactly while
// the deferred set is non-empty. This makes the verdict independent of
// insertion order (an acyclic edge set admits an order in which every
// insertion succeeds; a cyclic one cannot commit all edges under any
// order) and lets a retraction resurrect parked edges cheaply.
//
// Committed dynamic adjacency is stored as per-node uint64 bitset rows,
// mirroring Overlay's rows, so Sync can diff an overlay's edge set
// against the engine state a word at a time.
type Incr struct {
	skel       *Skeleton
	n, words   int
	skelCyclic bool

	// Committed dynamic adjacency: row v is dyn[v*words:(v+1)*words].
	dyn []uint64
	// Deferred (cycle-witness) edges, insertion order, plus the same
	// set as bitset rows for the Sync diff.
	deferred []incrEdge
	defBits  []uint64
	// Rows with any committed or deferred bit, for sparse iteration.
	active    []int32
	activeRow []bool

	// pos[v] is node v's position in the maintained order; ord is the
	// inverse permutation.
	pos []int32
	ord []int32

	// DFS / shift scratch (epoch-stamped visited marks keep Sync
	// allocation-free).
	mark  []int32
	epoch int32
	stack []int32
	flist []int32

	synced bool // one Sync has run since Attach (reuse accounting)
}

type incrEdge struct{ from, to int32 }

// NewIncr returns an engine attached to skel.
func NewIncr(skel *Skeleton) *Incr {
	ic := &Incr{}
	ic.Attach(skel)
	return ic
}

// Attach binds the engine to a frozen skeleton, computes the initial
// topological order (Kahn over the static CSR), and discards all
// dynamic state, retaining buffer capacity.
func (ic *Incr) Attach(skel *Skeleton) {
	if !skel.frozen {
		panic("uhb: Incr.Attach on unfrozen Skeleton")
	}
	ic.skel = skel
	n := skel.n
	words := (n + 63) / 64
	ic.n, ic.words = n, words
	if cap(ic.pos) < n {
		ic.pos = make([]int32, n)
		ic.ord = make([]int32, n)
		ic.mark = make([]int32, n)
		ic.activeRow = make([]bool, n)
	}
	ic.pos = ic.pos[:n]
	ic.ord = ic.ord[:n]
	ic.mark = ic.mark[:n]
	ic.activeRow = ic.activeRow[:n]
	if cap(ic.dyn) < n*words {
		ic.dyn = make([]uint64, n*words)
		ic.defBits = make([]uint64, n*words)
	}
	ic.dyn = ic.dyn[:n*words]
	ic.defBits = ic.defBits[:n*words]
	for i := range ic.dyn {
		ic.dyn[i] = 0
		ic.defBits[i] = 0
	}
	for i := range ic.mark {
		ic.mark[i] = 0
	}
	for i := range ic.activeRow {
		ic.activeRow[i] = false
	}
	ic.epoch = 0
	ic.active = ic.active[:0]
	ic.deferred = ic.deferred[:0]
	ic.synced = false

	// Kahn: indeg in mark (reset above), FIFO in ord's backing storage
	// is unsafe (ord is the output), so reuse stack.
	indeg := ic.mark
	s := skel
	for i := range s.dst {
		indeg[s.dst[i]]++
	}
	queue := ic.stack[:0]
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, int32(v))
		}
	}
	placed := 0
	for qi := 0; qi < len(queue); qi++ {
		v := queue[qi]
		ic.ord[placed] = v
		ic.pos[v] = int32(placed)
		placed++
		for i := s.off[v]; i < s.off[v+1]; i++ {
			w := s.dst[i]
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	ic.stack = queue[:0]
	ic.skelCyclic = placed < n
	if ic.skelCyclic {
		// No valid order exists; every verdict is cyclic regardless of
		// dynamic edges. Fill the permutation arbitrarily so the
		// invariant len(ord) == n holds for diagnostics.
		for v := 0; v < n; v++ {
			ic.ord[v] = int32(v)
			ic.pos[v] = int32(v)
		}
	}
	for i := range ic.mark {
		ic.mark[i] = 0
	}
}

// Skeleton returns the attached static tier.
func (ic *Incr) Skeleton() *Skeleton { return ic.skel }

// HasCycle reports whether skeleton + current dynamic edge set is
// cyclic. O(1): cyclic exactly while an edge is deferred (or the
// skeleton itself is cyclic).
func (ic *Incr) HasCycle() bool { return ic.skelCyclic || len(ic.deferred) > 0 }

// AddEdge inserts a dynamic edge (set semantics: duplicates are
// no-ops) and reports whether the graph is now cyclic.
func (ic *Incr) AddEdge(from, to int) bool {
	if from < 0 || from >= ic.n || to < 0 || to >= ic.n {
		panic(fmt.Sprintf("uhb: incr edge (%d,%d) out of range [0,%d)", from, to, ic.n))
	}
	if ic.skelCyclic {
		return true
	}
	w := from*ic.words + to>>6
	bit := uint64(1) << (uint(to) & 63)
	if ic.dyn[w]&bit == 0 && ic.defBits[w]&bit == 0 {
		if !ic.tryInsert(int32(from), int32(to)) {
			ic.defer_(int32(from), int32(to))
		}
	}
	return ic.HasCycle()
}

// RetractEdge removes a dynamic edge previously passed to AddEdge (a
// no-op for unknown edges) and reports whether the graph is still
// cyclic. Removing a committed edge may unblock deferred ones, so the
// deferred set is retried.
func (ic *Incr) RetractEdge(from, to int) bool {
	if from < 0 || from >= ic.n || to < 0 || to >= ic.n || ic.skelCyclic {
		return ic.HasCycle()
	}
	w := from*ic.words + to>>6
	bit := uint64(1) << (uint(to) & 63)
	switch {
	case ic.defBits[w]&bit != 0:
		ic.defBits[w] &^= bit
		ic.dropDeferred(int32(from), int32(to))
	case ic.dyn[w]&bit != 0:
		ic.dyn[w] &^= bit
		ic.retryDeferred()
	}
	return ic.HasCycle()
}

// Sync reconciles the engine with an overlay's dynamic edge set —
// retracting committed/deferred edges the overlay no longer has,
// retrying deferred edges when a retraction may have unblocked them,
// and inserting new ones — then returns the acyclicity verdict for
// skeleton + overlay. fresh is true on the first Sync after Attach
// (the order was rebuilt rather than reused).
//
// The overlay must be bound to the same skeleton. Verdicts agree with
// Overlay.HasCycle by construction: acyclicity depends only on the
// edge *set*, and the deferred representation is insertion-order
// independent.
func (ic *Incr) Sync(ov *Overlay) (cyclic, fresh bool) {
	fresh = !ic.synced
	ic.synced = true
	if ic.skelCyclic {
		return true, fresh
	}
	if ov.skel != ic.skel {
		panic("uhb: Incr.Sync overlay bound to a different Skeleton")
	}
	words := ic.words

	// Pass 1: retractions, word-parallel over every row either side has
	// bits in. Committed removals keep the order valid; deferred
	// removals just shrink the witness set.
	removedCommitted := false
	droppedDeferred := false
	syncRow := func(v int32) {
		base := int(v) * words
		dynRow := ic.dyn[base : base+words]
		defRow := ic.defBits[base : base+words]
		wantRow := ov.bits[base : base+words]
		for j := 0; j < words; j++ {
			want := wantRow[j]
			if gone := dynRow[j] &^ want; gone != 0 {
				dynRow[j] &= want
				removedCommitted = true
			}
			if gone := defRow[j] &^ want; gone != 0 {
				defRow[j] &= want
				droppedDeferred = true
			}
		}
	}
	for _, v := range ic.active {
		syncRow(v)
	}
	for _, v := range ov.dirty {
		if !ic.activeRow[v] {
			// Row the engine has no bits in: nothing to retract, but
			// mark it active so additions below scan it.
			ic.activeRow[v] = true
			ic.active = append(ic.active, v)
		}
	}
	if droppedDeferred {
		ic.compactDeferred()
	}
	if removedCommitted && len(ic.deferred) > 0 {
		ic.retryDeferred()
	}

	// Pass 2: additions — bits the overlay has that the engine doesn't.
	for _, v := range ic.active {
		base := int(v) * words
		dynRow := ic.dyn[base : base+words]
		defRow := ic.defBits[base : base+words]
		wantRow := ov.bits[base : base+words]
		for j := 0; j < words; j++ {
			add := wantRow[j] &^ (dynRow[j] | defRow[j])
			for add != 0 {
				y := int32(j<<6 + bits.TrailingZeros64(add))
				add &= add - 1
				if !ic.tryInsert(v, y) {
					ic.defer_(v, y)
				}
			}
		}
	}
	return len(ic.deferred) > 0, fresh
}

// tryInsert commits edge (x, y), restoring the topological order with a
// bounded reorder, or reports false when the edge would close a cycle
// (leaving all state untouched).
func (ic *Incr) tryInsert(x, y int32) bool {
	if x == y {
		return false
	}
	px, py := ic.pos[x], ic.pos[y]
	if py > px {
		ic.commit(x, y)
		return true
	}
	// Discovery: nodes reachable from y at positions ≤ pos[x]. Every
	// existing edge respects the order, so the walk only moves forward.
	ic.epoch++
	epoch := ic.epoch
	stack := append(ic.stack[:0], y)
	flist := ic.flist[:0]
	ic.mark[y] = epoch
	s := ic.skel
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		flist = append(flist, v)
		// Static successors.
		for i := s.off[v]; i < s.off[v+1]; i++ {
			w := s.dst[i]
			if ic.pos[w] > px {
				continue
			}
			if w == x {
				ic.stack, ic.flist = stack[:0], flist[:0]
				return false
			}
			if ic.mark[w] != epoch {
				ic.mark[w] = epoch
				stack = append(stack, w)
			}
		}
		// Committed dynamic successors.
		base := int(v) * ic.words
		for j := 0; j < ic.words; j++ {
			row := ic.dyn[base+j]
			for row != 0 {
				w := int32(j<<6 + bits.TrailingZeros64(row))
				row &= row - 1
				if ic.pos[w] > px {
					continue
				}
				if w == x {
					ic.stack, ic.flist = stack[:0], flist[:0]
					return false
				}
				if ic.mark[w] != epoch {
					ic.mark[w] = epoch
					stack = append(stack, w)
				}
			}
		}
	}
	// Shift: move the discovered set to just after x, preserving its
	// relative order. Insertion sort by position — the set is small.
	for i := 1; i < len(flist); i++ {
		v := flist[i]
		j := i - 1
		for j >= 0 && ic.pos[flist[j]] > ic.pos[v] {
			flist[j+1] = flist[j]
			j--
		}
		flist[j+1] = v
	}
	w := py // == pos[flist[0]]: y has the smallest position in the set
	for i := py; i <= px; i++ {
		v := ic.ord[i]
		if ic.mark[v] == epoch {
			continue // in the discovered set; placed below
		}
		ic.ord[w] = v
		ic.pos[v] = w
		w++
	}
	for _, v := range flist {
		ic.ord[w] = v
		ic.pos[v] = w
		w++
	}
	ic.stack, ic.flist = stack[:0], flist[:0]
	ic.commit(x, y)
	return true
}

func (ic *Incr) commit(x, y int32) {
	ic.dyn[int(x)*ic.words+int(y)>>6] |= 1 << (uint(y) & 63)
	ic.touch(x)
}

func (ic *Incr) defer_(x, y int32) {
	ic.deferred = append(ic.deferred, incrEdge{x, y})
	ic.defBits[int(x)*ic.words+int(y)>>6] |= 1 << (uint(y) & 63)
	ic.touch(x)
}

func (ic *Incr) touch(v int32) {
	if !ic.activeRow[v] {
		ic.activeRow[v] = true
		ic.active = append(ic.active, v)
	}
}

// dropDeferred removes one (from, to) entry from the deferred list (its
// defBits bit is already cleared).
func (ic *Incr) dropDeferred(from, to int32) {
	for i, e := range ic.deferred {
		if e.from == from && e.to == to {
			ic.deferred = append(ic.deferred[:i], ic.deferred[i+1:]...)
			return
		}
	}
}

// compactDeferred drops every deferred entry whose defBits bit was
// cleared by a Sync retraction pass.
func (ic *Incr) compactDeferred() {
	kept := ic.deferred[:0]
	for _, e := range ic.deferred {
		if ic.defBits[int(e.from)*ic.words+int(e.to)>>6]&(1<<(uint(e.to)&63)) != 0 {
			kept = append(kept, e)
		}
	}
	ic.deferred = kept
}

// retryDeferred re-attempts every deferred edge after a committed
// retraction; successes move to the committed set.
func (ic *Incr) retryDeferred() {
	kept := ic.deferred[:0]
	for _, e := range ic.deferred {
		if ic.tryInsert(e.from, e.to) {
			ic.defBits[int(e.from)*ic.words+int(e.to)>>6] &^= 1 << (uint(e.to) & 63)
		} else {
			kept = append(kept, e)
		}
	}
	ic.deferred = kept
}

// incrPool recycles engines across evaluations, mirroring overlayPool:
// one engine per worker per sweep, buffers surviving release.
var incrPool = sync.Pool{New: func() any { return &Incr{} }}

// AcquireIncr returns a pooled engine attached to skel. Release it with
// ReleaseIncr when the sweep is done.
func AcquireIncr(skel *Skeleton) *Incr {
	ic := incrPool.Get().(*Incr)
	ic.Attach(skel)
	return ic
}

// ReleaseIncr returns an engine to the pool. The caller must not use it
// afterwards.
func ReleaseIncr(ic *Incr) {
	ic.skel = nil
	incrPool.Put(ic)
}
