// Package uhb implements microarchitectural happens-before (µhb) graphs,
// the decision structure of the PipeCheck/Check family of tools that
// TriCheck builds on. Nodes are (instruction, location) pairs — a location
// being a pipeline stage or a store-visibility point — and labelled edges
// are ordering obligations contributed by µspec axioms. An execution
// candidate is observable on a microarchitecture exactly when its µhb graph
// is acyclic; a cycle is a proof that the candidate cannot happen.
package uhb

import (
	"fmt"
	"sort"
	"strings"
)

// Graph is a directed graph over a fixed set of nodes with labelled edges.
// The zero value is not usable; call NewGraph.
//
// Graph is the fully materialized, diagnostics-grade representation: every
// edge carries a reason string and every node may carry a label. The
// verdict path of the µspec evaluator does not use Graph at all — it runs
// on the two-tier Skeleton/Overlay core (see skeleton.go and overlay.go),
// which stores compact reason codes and never formats a string. Graphs are
// built only when a human asks for an explanation, a witness, or DOT.
type Graph struct {
	n      int
	adj    [][]int32
	edgeOf map[int64]string // packed (from,to) → first reason recorded
	labels []string
	dirty  bool // adjacency lists not yet sorted for deterministic search
}

// NewGraph returns a graph with n nodes and no edges. Node labels are
// optional and used only for rendering cycles and DOT output.
func NewGraph(n int) *Graph {
	return &Graph{
		n:      n,
		adj:    make([][]int32, n),
		edgeOf: make(map[int64]string),
		labels: make([]string, n),
	}
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return g.n }

// SetLabel names a node for diagnostics.
func (g *Graph) SetLabel(node int, label string) { g.labels[node] = label }

// Label returns the diagnostic name of a node.
func (g *Graph) Label(node int) string {
	if g.labels[node] != "" {
		return g.labels[node]
	}
	return fmt.Sprintf("n%d", node)
}

func pack(from, to int) int64 { return int64(from)<<32 | int64(uint32(to)) }

// AddEdge adds a directed edge with a reason (the axiom that demanded it).
// Self-loops are recorded as edges and make the graph cyclic. Duplicate
// edges are ignored, keeping the first reason.
func (g *Graph) AddEdge(from, to int, reason string) {
	if from < 0 || from >= g.n || to < 0 || to >= g.n {
		panic(fmt.Sprintf("uhb: edge (%d,%d) out of range [0,%d)", from, to, g.n))
	}
	k := pack(from, to)
	if _, dup := g.edgeOf[k]; dup {
		return
	}
	g.edgeOf[k] = reason
	g.adj[from] = append(g.adj[from], int32(to))
	g.dirty = true
}

// sortAdj sorts every adjacency list by target node so that traversals are
// deterministic regardless of edge insertion order. Builders may insert
// edges in nondeterministic order (e.g. when a set of obligations comes out
// of a map); sorting here makes FindCycle — and therefore every cycle
// explanation — a pure function of the edge set.
func (g *Graph) sortAdj() {
	if !g.dirty {
		return
	}
	for _, outs := range g.adj {
		sort.Slice(outs, func(i, j int) bool { return outs[i] < outs[j] })
	}
	g.dirty = false
}

// HasEdge reports whether the edge exists.
func (g *Graph) HasEdge(from, to int) bool {
	_, ok := g.edgeOf[pack(from, to)]
	return ok
}

// Reason returns the axiom label recorded for an edge, or "".
func (g *Graph) Reason(from, to int) string { return g.edgeOf[pack(from, to)] }

// NumEdges returns the number of distinct edges.
func (g *Graph) NumEdges() int { return len(g.edgeOf) }

// Acyclic reports whether the graph has no directed cycle.
func (g *Graph) Acyclic() bool { return g.FindCycle() == nil }

// FindCycle returns the node sequence of some directed cycle
// (c[0] → c[1] → ... → c[len-1] → c[0]), or nil if the graph is acyclic.
// The search is iterative, so deep graphs cannot overflow the stack, and
// deterministic: neighbors are explored in increasing node order, so the
// reported cycle depends only on the edge set, never on insertion order.
func (g *Graph) FindCycle() []int {
	g.sortAdj()
	const (
		white = 0 // unvisited
		gray  = 1 // on stack
		black = 2 // done
	)
	color := make([]byte, g.n)
	parent := make([]int32, g.n)
	for i := range parent {
		parent[i] = -1
	}
	type frame struct {
		node int32
		next int
	}
	for start := 0; start < g.n; start++ {
		if color[start] != white {
			continue
		}
		stack := []frame{{node: int32(start)}}
		color[start] = gray
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.next < len(g.adj[f.node]) {
				to := g.adj[f.node][f.next]
				f.next++
				switch color[to] {
				case white:
					color[to] = gray
					parent[to] = f.node
					stack = append(stack, frame{node: to})
				case gray:
					// Found a cycle: walk parents from f.node back to "to".
					cycle := []int{int(to)}
					for v := f.node; v != to; v = parent[v] {
						cycle = append(cycle, int(v))
					}
					// Reverse so edges point forward.
					for i, j := 0, len(cycle)-1; i < j; i, j = i+1, j-1 {
						cycle[i], cycle[j] = cycle[j], cycle[i]
					}
					return cycle
				}
			} else {
				color[f.node] = black
				stack = stack[:len(stack)-1]
			}
		}
	}
	return nil
}

// ExplainCycle renders a cycle (as returned by FindCycle) with node labels
// and per-edge reasons — the counterexample explanation a designer reads.
func (g *Graph) ExplainCycle(cycle []int) string {
	if len(cycle) == 0 {
		return "acyclic"
	}
	var b strings.Builder
	for i, v := range cycle {
		w := cycle[(i+1)%len(cycle)]
		fmt.Fprintf(&b, "%s --[%s]--> ", g.Label(v), g.Reason(v, w))
		if i == len(cycle)-1 {
			b.WriteString(g.Label(w))
		}
	}
	return b.String()
}

// IsIsolated reports whether the node has no incident edges at all.
func (g *Graph) IsIsolated(node int) bool {
	if len(g.adj[node]) > 0 {
		return false
	}
	for k := range g.edgeOf {
		if int(uint32(k)) == node {
			return false
		}
	}
	return true
}

// Reachable reports whether to is reachable from from by one or more edges.
func (g *Graph) Reachable(from, to int) bool {
	seen := make([]bool, g.n)
	stack := []int32{int32(from)}
	first := true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if int(v) == to && !first {
			return true
		}
		first = false
		for _, w := range g.adj[v] {
			if int(w) == to {
				return true
			}
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return false
}

// TopoOrder returns a topological order of the nodes, or nil if cyclic.
func (g *Graph) TopoOrder() []int {
	indeg := make([]int, g.n)
	for _, outs := range g.adj {
		for _, w := range outs {
			indeg[w]++
		}
	}
	var queue []int
	for v := 0; v < g.n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	var order []int
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, w := range g.adj[v] {
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, int(w))
			}
		}
	}
	if len(order) != g.n {
		return nil
	}
	return order
}

// DOT renders the graph in Graphviz format, one edge per line with the
// axiom reason as edge label. Nodes without edges are omitted.
func (g *Graph) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	keys := make([]int64, 0, len(g.edgeOf))
	for k := range g.edgeOf {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		from, to := int(k>>32), int(uint32(k))
		fmt.Fprintf(&b, "  %q -> %q [label=%q];\n", g.Label(from), g.Label(to), g.edgeOf[k])
	}
	b.WriteString("}\n")
	return b.String()
}
