package uhb

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// refOverlay rebuilds a fresh overlay holding exactly the live edge
// multiset in edges and returns its full-DFS verdict — the reference
// the incremental engine is checked against.
func refVerdict(s *Skeleton, edges map[[2]int]int) bool {
	o := AcquireOverlay(s)
	defer ReleaseOverlay(o)
	for e, n := range edges {
		for i := 0; i < n; i++ {
			o.AddEdge(e[0], e[1], 7)
		}
	}
	return o.HasCycle()
}

// randomSkeleton builds a random (possibly cyclic) frozen skeleton.
func randomSkeleton(rng *rand.Rand, n int) *Skeleton {
	s := NewSkeleton(n)
	for i := 0; i < 2*n; i++ {
		s.AddEdge(rng.Intn(n), rng.Intn(n), uint32(i))
	}
	s.Freeze()
	return s
}

// TestQuickIncrMatchesFullDFS: the incremental engine's verdict after
// an arbitrary add/retract delta sequence always equals the retained
// full-DFS cycle() on an overlay holding the same edge set — the
// satellite-1 equivalence lock.
func TestQuickIncrMatchesFullDFS(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(14)
		s := randomSkeleton(rng, n)
		ic := AcquireIncr(s)
		defer ReleaseIncr(ic)
		live := map[[2]int]int{}
		for step := 0; step < 6*n; step++ {
			from, to := rng.Intn(n), rng.Intn(n)
			if rng.Intn(3) == 0 && len(live) > 0 {
				// Retract a random live edge (picked deterministically so
				// a failing seed replays).
				keys := make([][2]int, 0, len(live))
				for e := range live {
					keys = append(keys, e)
				}
				sort.Slice(keys, func(i, j int) bool {
					if keys[i][0] != keys[j][0] {
						return keys[i][0] < keys[j][0]
					}
					return keys[i][1] < keys[j][1]
				})
				e := keys[rng.Intn(len(keys))]
				from, to = e[0], e[1]
				live[[2]int{from, to}]--
				if live[[2]int{from, to}] == 0 {
					delete(live, [2]int{from, to})
					ic.RetractEdge(from, to)
				}
			} else {
				live[[2]int{from, to}]++
				ic.AddEdge(from, to)
			}
			if ic.HasCycle() != refVerdict(s, live) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickIncrSyncMatchesOverlay: across a sequence of overlay Resets
// with random edge sets over one skeleton — the per-candidate shape of
// an enumeration sweep — Sync's verdict always equals both
// Overlay.HasCycle and HasCycleReasons, and the provenance fallback on
// cyclic verdicts reports a non-empty reason multiset, identical to
// what the full DFS would have produced.
func TestQuickIncrSyncMatchesOverlay(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(14)
		s := randomSkeleton(rng, n)
		ic := AcquireIncr(s)
		defer ReleaseIncr(ic)
		ov := AcquireOverlay(s)
		defer ReleaseOverlay(ov)
		for cand := 0; cand < 12; cand++ {
			ov.Reset(s)
			for i := 0; i < rng.Intn(3*n); i++ {
				ov.AddEdge(rng.Intn(n), rng.Intn(n), uint32(1000+i))
			}
			cyclic, fresh := ic.Sync(ov)
			if fresh != (cand == 0) {
				return false
			}
			reasons, want := ov.HasCycleReasons(nil)
			if cyclic != want || cyclic != ov.HasCycle() {
				return false
			}
			if cyclic && len(reasons) == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickOverlayRetractRestore: RetractEdge and Checkpoint/Restore
// leave the overlay equivalent to one rebuilt from the surviving edge
// multiset — verdict, HasEdge, and NumDynamicEdges all agree.
func TestQuickOverlayRetractRestore(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		s := randomSkeleton(rng, n)
		ov := AcquireOverlay(s)
		defer ReleaseOverlay(ov)
		live := map[[2]int]int{}
		addRandom := func(k int) {
			for i := 0; i < k; i++ {
				from, to := rng.Intn(n), rng.Intn(n)
				ov.AddEdge(from, to, 3)
				live[[2]int{from, to}]++
			}
		}
		addRandom(rng.Intn(2 * n))
		// Checkpoint, push more edges (retracting some of the new ones),
		// then restore: only pre-mark edges must survive.
		mark := ov.Checkpoint()
		before := map[[2]int]int{}
		for e, c := range live {
			before[e] = c
		}
		var added [][2]int
		for i := 0; i < rng.Intn(2*n); i++ {
			from, to := rng.Intn(n), rng.Intn(n)
			ov.AddEdge(from, to, 4)
			added = append(added, [2]int{from, to})
		}
		for _, e := range added {
			if rng.Intn(3) == 0 {
				ov.RetractEdge(e[0], e[1])
			}
		}
		ov.Restore(mark)
		live = before
		count := 0
		for e, c := range live {
			count += c
			if !ov.HasEdge(e[0], e[1]) {
				return false
			}
		}
		if ov.NumDynamicEdges() != count {
			return false
		}
		if ov.HasCycle() != refVerdict(s, live) {
			return false
		}
		// And plain retraction of surviving edges keeps agreeing.
		for e := range live {
			ov.RetractEdge(e[0], e[1])
			live[e]--
			if live[e] == 0 {
				delete(live, e)
			}
			if ov.HasCycle() != refVerdict(s, live) {
				return false
			}
			break
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestIncrSelfLoopAndCyclicSkeleton: degenerate inputs — a dynamic
// self-loop is immediately cyclic and retractable; a cyclic skeleton
// pins every verdict to cyclic.
func TestIncrSelfLoopAndCyclicSkeleton(t *testing.T) {
	s := NewSkeleton(3)
	s.AddEdge(0, 1, 0)
	s.Freeze()
	ic := NewIncr(s)
	if ic.HasCycle() {
		t.Fatal("fresh engine on acyclic skeleton reports a cycle")
	}
	if !ic.AddEdge(2, 2) {
		t.Fatal("self-loop not reported cyclic")
	}
	if ic.RetractEdge(2, 2) {
		t.Fatal("retracting the self-loop did not clear the cycle")
	}

	cyc := NewSkeleton(2)
	cyc.AddEdge(0, 1, 0)
	cyc.AddEdge(1, 0, 0)
	cyc.Freeze()
	ic2 := NewIncr(cyc)
	if !ic2.HasCycle() {
		t.Fatal("cyclic skeleton not reported cyclic")
	}
	ov := AcquireOverlay(cyc)
	defer ReleaseOverlay(ov)
	cyclic, _ := ic2.Sync(ov)
	if !cyclic {
		t.Fatal("Sync on cyclic skeleton must stay cyclic with an empty overlay")
	}
}

// TestOverlayUseAfterReleasePanics: the pool invalidates a released
// overlay by dropping its skeleton binding; any further use must panic
// rather than corrupt a pooled buffer another worker may now own.
func TestOverlayUseAfterReleasePanics(t *testing.T) {
	s := NewSkeleton(2)
	s.AddEdge(0, 1, 0)
	s.Freeze()
	o := AcquireOverlay(s)
	ReleaseOverlay(o)
	defer func() {
		if recover() == nil {
			t.Fatal("AddEdge after ReleaseOverlay did not panic")
		}
	}()
	o.AddEdge(0, 1, 1)
}
