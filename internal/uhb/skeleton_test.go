package uhb

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSkeletonCSRAndDedup(t *testing.T) {
	s := NewSkeleton(4)
	s.AddEdge(0, 1, 7)
	s.AddEdge(0, 1, 9) // duplicate: first reason wins
	s.AddEdge(2, 3, 1)
	s.AddEdge(0, 2, 5)
	s.Freeze()
	if s.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3", s.NumEdges())
	}
	if !s.HasEdge(0, 1) || !s.HasEdge(0, 2) || !s.HasEdge(2, 3) {
		t.Fatal("missing edges after freeze")
	}
	if s.HasEdge(1, 0) {
		t.Fatal("phantom edge")
	}
	if r, ok := s.Reason(0, 1); !ok || r != 7 {
		t.Fatalf("Reason(0,1) = %d,%v, want 7,true", r, ok)
	}
	var got [][3]int
	s.ForEachEdge(func(from, to int, reason uint32) {
		got = append(got, [3]int{from, to, int(reason)})
	})
	want := [][3]int{{0, 1, 7}, {0, 2, 5}, {2, 3, 1}}
	if len(got) != len(want) {
		t.Fatalf("ForEachEdge visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEachEdge visited %v, want %v", got, want)
		}
	}
}

func TestOverlayCycleAcrossTiers(t *testing.T) {
	// Static chain 0→1→2; the overlay's back edge 2→0 closes the cycle.
	s := NewSkeleton(3)
	s.AddEdge(0, 1, 0)
	s.AddEdge(1, 2, 0)
	s.Freeze()
	o := NewOverlay(s)
	if o.HasCycle() {
		t.Fatal("static chain must be acyclic")
	}
	o.AddEdge(2, 0, 1)
	if !o.HasCycle() {
		t.Fatal("overlay back edge must close the cycle")
	}
	o.Reset(s)
	if o.HasCycle() {
		t.Fatal("reset must drop dynamic edges")
	}
	o.AddEdge(2, 2, 1) // self-loop
	if !o.HasCycle() {
		t.Fatal("dynamic self-loop must be cyclic")
	}
}

func TestOverlayHasEdgeBothTiers(t *testing.T) {
	s := NewSkeleton(3)
	s.AddEdge(0, 1, 0)
	s.Freeze()
	o := NewOverlay(s)
	o.AddEdge(1, 2, 3)
	if !o.HasEdge(0, 1) {
		t.Error("static edge must be visible through the overlay")
	}
	if !o.HasEdge(1, 2) {
		t.Error("dynamic edge missing")
	}
	if o.HasEdge(2, 0) {
		t.Error("phantom edge")
	}
	var dyn [][2]int
	o.ForEachDynamicEdge(func(from, to int, reason uint32) {
		dyn = append(dyn, [2]int{from, to})
	})
	if len(dyn) != 1 || dyn[0] != [2]int{1, 2} {
		t.Errorf("dynamic edges = %v, want [[1 2]]", dyn)
	}
}

// TestOverlayCycleReasons: the provenance variant returns the reason
// codes of the witnessing cycle — both tiers contribute, duplicates are
// preserved, and repeated calls with a reused buffer neither allocate
// nor disagree with HasCycle.
func TestOverlayCycleReasons(t *testing.T) {
	// Static chain 0→1→2 (reasons 10, 11); dynamic back edge 2→0
	// (reason 12) closes the only cycle. Node 3 dangles off the cycle so
	// the DFS has a non-cycle frame below the loop.
	s := NewSkeleton(4)
	s.AddEdge(0, 1, 10)
	s.AddEdge(1, 2, 11)
	s.AddEdge(0, 3, 99)
	s.Freeze()
	o := NewOverlay(s)

	reasons, cyclic := o.HasCycleReasons(nil)
	if cyclic || len(reasons) != 0 {
		t.Fatalf("acyclic graph reported cycle %v", reasons)
	}

	o.AddEdge(2, 0, 12)
	buf := make([]uint32, 0, 8)
	reasons, cyclic = o.HasCycleReasons(buf)
	if !cyclic {
		t.Fatal("cycle missed")
	}
	// The DFS enters the cycle at node 0, so the reasons arrive in edge
	// order around the loop: 0→1, 1→2, then the closing 2→0.
	want := []uint32{10, 11, 12}
	if len(reasons) != len(want) {
		t.Fatalf("cycle reasons = %v, want %v", reasons, want)
	}
	for i := range want {
		if reasons[i] != want[i] {
			t.Fatalf("cycle reasons = %v, want %v", reasons, want)
		}
	}

	// Self-loop: the cycle is a single edge; only its reason appears.
	o.Reset(s)
	o.AddEdge(2, 2, 7)
	reasons, cyclic = o.HasCycleReasons(reasons[:0])
	if !cyclic || len(reasons) != 1 || reasons[0] != 7 {
		t.Fatalf("self-loop reasons = %v (cyclic=%v), want [7]", reasons, cyclic)
	}

	// Duplicate reason codes on distinct edges stay a multiset.
	o.Reset(s)
	o.AddEdge(2, 1, 11) // same code as static 1→2
	reasons, cyclic = o.HasCycleReasons(reasons[:0])
	if !cyclic || len(reasons) != 2 || reasons[0] != 11 || reasons[1] != 11 {
		t.Fatalf("duplicate-code cycle reasons = %v (cyclic=%v), want [11 11]", reasons, cyclic)
	}

	// Steady state with a pre-grown buffer is allocation-free, and the
	// provenance path agrees with the plain check.
	o.Reset(s)
	o.AddEdge(2, 0, 12)
	allocs := testing.AllocsPerRun(100, func() {
		r, c := o.HasCycleReasons(reasons[:0])
		if !c || len(r) != 3 {
			t.Fatal("cycle lost under reuse")
		}
		reasons = r
	})
	if allocs != 0 {
		t.Errorf("HasCycleReasons allocates %.1f/op with reused buffer, want 0", allocs)
	}
	if !o.HasCycle() {
		t.Fatal("HasCycle disagrees with HasCycleReasons")
	}
}

// TestQuickOverlayCycleReasonsAgree: on random two-tier graphs the
// provenance check and the plain check always agree, and any reported
// reason multiset is non-empty exactly when a cycle exists.
func TestQuickOverlayCycleReasonsAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(14)
		s := NewSkeleton(n)
		var dyn [][2]int
		for i := 0; i < 3*n; i++ {
			from, to := rng.Intn(n), rng.Intn(n)
			if rng.Intn(2) == 0 {
				s.AddEdge(from, to, uint32(i))
			} else {
				dyn = append(dyn, [2]int{from, to})
			}
		}
		s.Freeze()
		o := AcquireOverlay(s)
		defer ReleaseOverlay(o)
		for i, e := range dyn {
			o.AddEdge(e[0], e[1], uint32(1000+i))
		}
		reasons, cyclic := o.HasCycleReasons(nil)
		return cyclic == o.HasCycle() && (len(reasons) > 0) == cyclic
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickOverlayMatchesGraph: splitting a random edge set arbitrarily
// into static and dynamic tiers never changes acyclicity — the two-tier
// verdict always equals the single-graph verdict over the union.
func TestQuickOverlayMatchesGraph(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(14)
		type edge struct{ from, to int }
		var edges []edge
		for i := 0; i < 3*n; i++ {
			edges = append(edges, edge{rng.Intn(n), rng.Intn(n)})
		}
		g := NewGraph(n)
		s := NewSkeleton(n)
		var dyn []edge
		for _, e := range edges {
			g.AddEdge(e.from, e.to, "e")
			if rng.Intn(2) == 0 {
				s.AddEdge(e.from, e.to, 0)
			} else {
				dyn = append(dyn, e)
			}
		}
		s.Freeze()
		o := AcquireOverlay(s)
		defer ReleaseOverlay(o)
		for _, e := range dyn {
			o.AddEdge(e.from, e.to, 0)
		}
		return o.HasCycle() == !g.Acyclic()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestOverlayReuseAcrossSkeletons: a pooled overlay rebinds cleanly to a
// skeleton of a different size.
func TestOverlayReuseAcrossSkeletons(t *testing.T) {
	small := NewSkeleton(2)
	small.AddEdge(0, 1, 0)
	small.Freeze()
	big := NewSkeleton(50)
	for i := 0; i < 49; i++ {
		big.AddEdge(i, i+1, 0)
	}
	big.Freeze()
	o := AcquireOverlay(small)
	o.AddEdge(1, 0, 0)
	if !o.HasCycle() {
		t.Fatal("small cycle missed")
	}
	o.Reset(big)
	if o.HasCycle() {
		t.Fatal("stale dynamic edges after rebind")
	}
	o.AddEdge(49, 0, 0)
	if !o.HasCycle() {
		t.Fatal("big cycle missed")
	}
	ReleaseOverlay(o)
}

// BenchmarkOverlayCheck measures the pooled per-execution cost: reset,
// add a handful of dynamic edges, run the cycle check. This is the inner
// loop of the µspec verdict path and must not allocate.
func BenchmarkOverlayCheck(b *testing.B) {
	const n = 120
	s := NewSkeleton(n)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 4*n; i++ {
		from, to := rng.Intn(n), rng.Intn(n)
		if from < to {
			s.AddEdge(from, to, 0)
		}
	}
	s.Freeze()
	o := AcquireOverlay(s)
	defer ReleaseOverlay(o)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Reset(s)
		for j := 0; j < 30; j++ {
			from, to := (j*7)%n, (j*13+1)%n
			if from < to {
				o.AddEdge(from, to, 0)
			}
		}
		if o.HasCycle() {
			b.Fatal("unexpected cycle")
		}
	}
}
