package uhb

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestAcyclicSimple(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1, "a")
	g.AddEdge(1, 2, "b")
	g.AddEdge(2, 3, "c")
	if !g.Acyclic() {
		t.Fatal("chain should be acyclic")
	}
	g.AddEdge(3, 0, "d")
	if g.Acyclic() {
		t.Fatal("closed chain should be cyclic")
	}
}

func TestSelfLoop(t *testing.T) {
	g := NewGraph(2)
	g.AddEdge(1, 1, "self")
	cycle := g.FindCycle()
	if len(cycle) != 1 || cycle[0] != 1 {
		t.Fatalf("self-loop cycle = %v, want [1]", cycle)
	}
}

func TestFindCycleIsRealCycle(t *testing.T) {
	g := NewGraph(6)
	g.AddEdge(0, 1, "po")
	g.AddEdge(1, 2, "po")
	g.AddEdge(2, 4, "rf")
	g.AddEdge(4, 5, "fence")
	g.AddEdge(5, 1, "fr")
	g.AddEdge(3, 0, "extra")
	cycle := g.FindCycle()
	if cycle == nil {
		t.Fatal("want a cycle")
	}
	for i, v := range cycle {
		w := cycle[(i+1)%len(cycle)]
		if !g.HasEdge(v, w) {
			t.Fatalf("cycle %v has non-edge %d->%d", cycle, v, w)
		}
	}
}

func TestDuplicateEdgesKeepFirstReason(t *testing.T) {
	g := NewGraph(2)
	g.AddEdge(0, 1, "first")
	g.AddEdge(0, 1, "second")
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
	if got := g.Reason(0, 1); got != "first" {
		t.Fatalf("Reason = %q, want first", got)
	}
}

func TestReachable(t *testing.T) {
	g := NewGraph(5)
	g.AddEdge(0, 1, "")
	g.AddEdge(1, 2, "")
	g.AddEdge(3, 4, "")
	if !g.Reachable(0, 2) {
		t.Error("0 should reach 2")
	}
	if g.Reachable(0, 3) {
		t.Error("0 should not reach 3")
	}
	if g.Reachable(0, 0) {
		t.Error("0 should not reach itself without a cycle")
	}
	g.AddEdge(2, 0, "")
	if !g.Reachable(0, 0) {
		t.Error("0 should reach itself through the cycle")
	}
}

func TestTopoOrder(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(2, 0, "")
	g.AddEdge(0, 1, "")
	g.AddEdge(1, 3, "")
	order := g.TopoOrder()
	if order == nil {
		t.Fatal("acyclic graph must have a topo order")
	}
	pos := make([]int, 4)
	for i, v := range order {
		pos[v] = i
	}
	if !(pos[2] < pos[0] && pos[0] < pos[1] && pos[1] < pos[3]) {
		t.Fatalf("order %v not topological", order)
	}
	g.AddEdge(3, 2, "")
	if g.TopoOrder() != nil {
		t.Fatal("cyclic graph must have no topo order")
	}
}

func TestExplainCycleAndDOT(t *testing.T) {
	g := NewGraph(3)
	g.SetLabel(0, "I0.Fetch")
	g.SetLabel(1, "I1.Perform")
	g.SetLabel(2, "I2.Visible@c1")
	g.AddEdge(0, 1, "program-order")
	g.AddEdge(1, 2, "rf")
	g.AddEdge(2, 0, "fr")
	s := g.ExplainCycle(g.FindCycle())
	for _, want := range []string{"I0.Fetch", "program-order", "rf", "fr"} {
		if !strings.Contains(s, want) {
			t.Errorf("explanation %q missing %q", s, want)
		}
	}
	dot := g.DOT("test")
	if !strings.Contains(dot, "digraph") || !strings.Contains(dot, "I1.Perform") {
		t.Errorf("DOT output malformed: %s", dot)
	}
}

// TestQuickAcyclicityMatchesTopo cross-checks FindCycle against TopoOrder on
// random graphs: exactly one of them must succeed.
func TestQuickAcyclicityMatchesTopo(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		g := NewGraph(n)
		edges := rng.Intn(3 * n)
		for i := 0; i < edges; i++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n), "e")
		}
		return g.Acyclic() == (g.TopoOrder() != nil)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEdgeMonotonicity: adding edges can only create cycles, never
// remove them.
func TestQuickEdgeMonotonicity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		g := NewGraph(n)
		cyclicAt := -1
		for i := 0; i < 4*n; i++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n), "e")
			if !g.Acyclic() {
				cyclicAt = i
				break
			}
		}
		if cyclicAt == -1 {
			return true
		}
		// Add more edges; must stay cyclic.
		for i := 0; i < n; i++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n), "e")
			if g.Acyclic() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCycleWitnessValid: any reported cycle consists of real edges.
func TestQuickCycleWitnessValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(14)
		g := NewGraph(n)
		for i := 0; i < 3*n; i++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n), "e")
		}
		cycle := g.FindCycle()
		if cycle == nil {
			return g.TopoOrder() != nil
		}
		for i, v := range cycle {
			if !g.HasEdge(v, cycle[(i+1)%len(cycle)]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestFindCycleInsertionOrderIndependent: the reported cycle is a pure
// function of the edge set — permuting edge insertion order cannot change
// it. This is what keeps cycle explanations deterministic even when a
// builder discovers ordering obligations in nondeterministic (map) order.
func TestFindCycleInsertionOrderIndependent(t *testing.T) {
	type edge struct{ from, to int }
	edges := []edge{
		{0, 1}, {1, 2}, {2, 0}, // one cycle
		{2, 3}, {3, 4}, {4, 2}, // another cycle
		{5, 0}, {1, 5}, // extra structure
	}
	build := func(perm []int) *Graph {
		g := NewGraph(6)
		for _, i := range perm {
			g.AddEdge(edges[i].from, edges[i].to, "e")
		}
		return g
	}
	base := build([]int{0, 1, 2, 3, 4, 5, 6, 7})
	want := base.FindCycle()
	if want == nil {
		t.Fatal("graph must be cyclic")
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		perm := rng.Perm(len(edges))
		got := build(perm).FindCycle()
		if len(got) != len(want) {
			t.Fatalf("insertion order changed cycle: got %v want %v", got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("insertion order changed cycle: got %v want %v", got, want)
			}
		}
	}
}

func TestAddEdgeOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for out-of-range edge")
		}
	}()
	g := NewGraph(1)
	g.AddEdge(0, 5, "bad")
}

func BenchmarkFindCycleDense(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := NewGraph(60)
	for i := 0; i < 400; i++ {
		from, to := rng.Intn(60), rng.Intn(60)
		if from < to { // keep acyclic: worst case for the search
			g.AddEdge(from, to, "e")
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !g.Acyclic() {
			b.Fatal("unexpected cycle")
		}
	}
}
