package uhb

import (
	"fmt"
	"sort"
	"sync"
)

// Skeleton is the static tier of a two-tier µhb graph: the node numbering
// and every execution-independent edge of one compiled program under one
// model configuration — pipeline and per-instruction path order, preserved
// program order that does not consult rf/mo, dependency edges, the
// non-cumulative part of fence semantics, and AMO annotation edges.
//
// A Skeleton is built once per (program, model) and then shared, read-only,
// by every execution candidate: per-execution edges (coherence, reads-from,
// from-reads, cumulative fence closures) layer on top via an Overlay.
// Edges carry opaque uint32 reason codes supplied by the builder; the
// Skeleton never formats or stores a string, keeping diagnostics entirely
// lazy.
//
// Construction is two-phase: AddEdge while building, then Freeze, after
// which the edge set is immutable and stored in CSR (compressed sparse
// row) form for allocation-free traversal.
type Skeleton struct {
	n      int
	frozen bool

	// Under construction: one entry per AddEdge call, in call order.
	bFrom, bTo []int32
	bReason    []uint32

	// Frozen CSR: node v's static successors are dst[off[v]:off[v+1]],
	// deduplicated (first reason per (from,to) wins) and sorted by target.
	off    []int32
	dst    []int32
	reason []uint32

	// Freeze scratch, kept across reuse via the skeleton pool.
	idxBuf, nextBuf []int32
}

// NewSkeleton returns an empty skeleton over n nodes, ready for AddEdge.
func NewSkeleton(n int) *Skeleton {
	return &Skeleton{n: n}
}

// skeletonPool recycles skeletons between prepared evaluations: one
// skeleton is built and frozen per verification job, and its edge and
// CSR arrays otherwise dominate the static tier's allocation profile on
// cold sweeps.
var skeletonPool sync.Pool

// AcquireSkeleton returns a pooled, empty skeleton over n nodes. Release
// with ReleaseSkeleton once no reader can still hold it.
func AcquireSkeleton(n int) *Skeleton {
	v := skeletonPool.Get()
	if v == nil {
		return NewSkeleton(n)
	}
	s := v.(*Skeleton)
	s.n = n
	s.frozen = false
	s.bFrom = s.bFrom[:0]
	s.bTo = s.bTo[:0]
	s.bReason = s.bReason[:0]
	s.off = s.off[:0]
	s.dst = s.dst[:0]
	s.reason = s.reason[:0]
	return s
}

// ReleaseSkeleton returns s to the pool. The caller must guarantee no
// overlay or reader still references it.
func ReleaseSkeleton(s *Skeleton) {
	if s != nil {
		skeletonPool.Put(s)
	}
}

// NumNodes returns the number of nodes.
func (s *Skeleton) NumNodes() int { return s.n }

// NumEdges returns the number of distinct static edges (valid after
// Freeze).
func (s *Skeleton) NumEdges() int { return len(s.dst) }

// AddEdge records a static edge with an opaque reason code. Panics if the
// skeleton is frozen or the edge is out of range. Duplicates are accepted
// and collapsed by Freeze, keeping the first reason — matching the
// first-reason-wins semantics of Graph.AddEdge.
func (s *Skeleton) AddEdge(from, to int, reason uint32) {
	if s.frozen {
		panic("uhb: AddEdge on frozen Skeleton")
	}
	if from < 0 || from >= s.n || to < 0 || to >= s.n {
		panic(fmt.Sprintf("uhb: skeleton edge (%d,%d) out of range [0,%d)", from, to, s.n))
	}
	s.bFrom = append(s.bFrom, int32(from))
	s.bTo = append(s.bTo, int32(to))
	s.bReason = append(s.bReason, reason)
}

// Freeze deduplicates the recorded edges and builds the CSR form. After
// Freeze the skeleton is immutable and safe for concurrent readers.
func (s *Skeleton) Freeze() {
	if s.frozen {
		return
	}
	s.frozen = true
	m := len(s.bFrom)
	// Sort edge indices by (from, to, insertion order) so duplicates are
	// adjacent with the first-recorded one leading: a stable counting
	// sort on `from` (one bucket per node), then an insertion sort by
	// `to` inside each bucket — out-degrees are small, and skeletons are
	// frozen once per prepared test, where the generic sort's comparator
	// overhead showed up in cold-sweep profiles.
	if cap(s.off) < s.n+1 {
		s.off = make([]int32, s.n+1)
	} else {
		s.off = s.off[:s.n+1]
		clear(s.off)
	}
	for _, f := range s.bFrom {
		s.off[f+1]++
	}
	for v := 0; v < s.n; v++ {
		s.off[v+1] += s.off[v]
	}
	if cap(s.idxBuf) < m {
		s.idxBuf = make([]int32, m)
	}
	idx := s.idxBuf[:m]
	if cap(s.nextBuf) < s.n {
		s.nextBuf = make([]int32, s.n)
	}
	next := s.nextBuf[:s.n]
	copy(next, s.off[:s.n])
	for i, f := range s.bFrom {
		idx[next[f]] = int32(i)
		next[f]++
	}
	for v := 0; v < s.n; v++ {
		bucket := idx[s.off[v]:s.off[v+1]]
		for i := 1; i < len(bucket); i++ {
			e := bucket[i]
			j := i
			for j > 0 && s.bTo[bucket[j-1]] > s.bTo[e] {
				bucket[j] = bucket[j-1]
				j--
			}
			bucket[j] = e
		}
	}
	clear(s.off)
	if cap(s.dst) < m {
		s.dst = make([]int32, 0, m)
	} else {
		s.dst = s.dst[:0]
	}
	if cap(s.reason) < m {
		s.reason = make([]uint32, 0, m)
	} else {
		s.reason = s.reason[:0]
	}
	prevFrom, prevTo := int32(-1), int32(-1)
	for _, i := range idx {
		f, t := s.bFrom[i], s.bTo[i]
		if f == prevFrom && t == prevTo {
			continue // duplicate; first reason already kept
		}
		prevFrom, prevTo = f, t
		s.dst = append(s.dst, t)
		s.reason = append(s.reason, s.bReason[i])
		s.off[f+1]++
	}
	for v := 0; v < s.n; v++ {
		s.off[v+1] += s.off[v]
	}
	// Truncate rather than drop the build arrays: a pooled skeleton
	// refills them on its next use.
	s.bFrom, s.bTo, s.bReason = s.bFrom[:0], s.bTo[:0], s.bReason[:0]
}

// HasEdge reports whether the static edge exists (valid after Freeze).
func (s *Skeleton) HasEdge(from, to int) bool {
	_, ok := s.findEdge(from, to)
	return ok
}

// Reason returns the reason code of a static edge and whether it exists
// (valid after Freeze).
func (s *Skeleton) Reason(from, to int) (uint32, bool) {
	return s.findEdge(from, to)
}

func (s *Skeleton) findEdge(from, to int) (uint32, bool) {
	if !s.frozen || from < 0 || from >= s.n {
		return 0, false
	}
	lo, hi := int(s.off[from]), int(s.off[from+1])
	row := s.dst[lo:hi]
	i := sort.Search(len(row), func(i int) bool { return row[i] >= int32(to) })
	if i < len(row) && row[i] == int32(to) {
		return s.reason[lo+i], true
	}
	return 0, false
}

// ForEachEdge visits every static edge in (from, to) order with its
// reason code (valid after Freeze).
func (s *Skeleton) ForEachEdge(fn func(from, to int, reason uint32)) {
	for v := 0; v < s.n; v++ {
		for i := s.off[v]; i < s.off[v+1]; i++ {
			fn(v, int(s.dst[i]), s.reason[i])
		}
	}
}
