package uhb

import (
	"fmt"
	"sync"
)

// Overlay is the dynamic tier of a two-tier µhb graph: the
// execution-dependent edges of one candidate execution (coherence order,
// reads-from, from-reads, dependency-sourced values, cumulative fence
// closures) layered over a frozen Skeleton.
//
// Overlays are resettable and allocation-free in steady state: all edge
// and traversal storage lives in reusable buffers that survive Reset, so
// one overlay can evaluate an entire enumeration sweep — acquire one per
// worker via AcquireOverlay, Reset it per execution, and release it when
// the sweep ends.
//
// Unlike Graph and Skeleton, an Overlay does not deduplicate edges:
// duplicates cannot change acyclicity, the number of AddEdge calls is
// already bounded by the builder's work, and skipping the lookup keeps
// the hot path branch-free. Reason codes are stored but never resolved
// here; diagnostics always go through the materialized Graph path.
type Overlay struct {
	skel *Skeleton

	// Dynamic adjacency as per-node singly linked lists threaded through
	// shared buffers: head[v] is the first edge index of node v or -1,
	// next[e] chains, from[e]/to[e]/reason[e] describe edge e. Lists are
	// built head-first; the cycle check does not depend on traversal order.
	// RetractEdge unlinks a record and tombstones it (to[e] = -1); the
	// arrays are append-only so edge indices stay stable for Checkpoint.
	head   []int32
	next   []int32
	from   []int32
	to     []int32
	reason []uint32
	live   int // non-tombstoned edge records

	// Dynamic adjacency as a bitset: row v is
	// bits[v*words : (v+1)*words], bit y set iff at least one live
	// (v, y) record exists. Backs O(1) HasEdge and the word-parallel
	// delta diff in Incr.Sync; dirty lists the rows with any bit ever
	// set since Reset so Reset clears only what was touched.
	words      int
	bits       []uint64
	dirty      []int32
	rowTouched []bool

	// Cycle-check scratch, sized to the node count.
	color []byte
	fnode []int32  // DFS stack: node per frame
	fsidx []int32  // next static-CSR index to explore
	fdyn  []int32  // next dynamic edge index to explore (-1 = done)
	fvia  []uint32 // reason code of the edge that entered each frame
}

// NewOverlay returns an overlay bound to skel, ready for AddEdge.
func NewOverlay(skel *Skeleton) *Overlay {
	o := &Overlay{}
	o.Reset(skel)
	return o
}

// Reset rebinds the overlay to skel (which may differ from the previous
// binding) and discards all dynamic edges, retaining buffer capacity.
func (o *Overlay) Reset(skel *Skeleton) {
	if !skel.frozen {
		panic("uhb: Overlay.Reset on unfrozen Skeleton")
	}
	sameShape := o.skel == skel
	o.skel = skel
	n := skel.n
	words := (n + 63) / 64
	if cap(o.head) < n {
		o.head = make([]int32, n)
		o.color = make([]byte, n)
		o.fnode = make([]int32, n)
		o.fsidx = make([]int32, n)
		o.fdyn = make([]int32, n)
		o.fvia = make([]uint32, n)
		o.rowTouched = make([]bool, n)
	}
	o.head = o.head[:n]
	o.color = o.color[:n]
	o.fnode = o.fnode[:n]
	o.fsidx = o.fsidx[:n]
	o.fdyn = o.fdyn[:n]
	o.fvia = o.fvia[:n]
	o.rowTouched = o.rowTouched[:n]
	for i := range o.head {
		o.head[i] = -1
	}
	if cap(o.bits) < n*words {
		o.bits = make([]uint64, n*words)
		sameShape = false // fresh buffer is already zero
	}
	o.bits = o.bits[:n*words]
	if sameShape && o.words == words {
		// Steady state within one sweep: clear only the rows the previous
		// candidate touched.
		for _, v := range o.dirty {
			row := o.bits[int(v)*words : (int(v)+1)*words]
			for j := range row {
				row[j] = 0
			}
			o.rowTouched[v] = false
		}
	} else {
		// Rebinding to a different skeleton (or a pooled overlay with a
		// stale buffer): start from a clean slate.
		for i := range o.bits {
			o.bits[i] = 0
		}
		for i := range o.rowTouched {
			o.rowTouched[i] = false
		}
	}
	o.words = words
	o.dirty = o.dirty[:0]
	o.next = o.next[:0]
	o.from = o.from[:0]
	o.to = o.to[:0]
	o.reason = o.reason[:0]
	o.live = 0
}

// NumNodes returns the node count of the bound skeleton.
func (o *Overlay) NumNodes() int { return o.skel.n }

// NumDynamicEdges returns the number of live dynamic edge records
// (duplicates included, retracted records excluded).
func (o *Overlay) NumDynamicEdges() int { return o.live }

// Skeleton returns the bound static tier.
func (o *Overlay) Skeleton() *Skeleton { return o.skel }

// AddEdge records a dynamic edge with an opaque reason code.
func (o *Overlay) AddEdge(from, to int, reason uint32) {
	if from < 0 || from >= o.skel.n || to < 0 || to >= o.skel.n {
		panic(fmt.Sprintf("uhb: overlay edge (%d,%d) out of range [0,%d)", from, to, o.skel.n))
	}
	e := int32(len(o.to))
	o.next = append(o.next, o.head[from])
	o.from = append(o.from, int32(from))
	o.to = append(o.to, int32(to))
	o.reason = append(o.reason, reason)
	o.head[from] = e
	o.live++
	o.bits[from*o.words+to>>6] |= 1 << (uint(to) & 63)
	if !o.rowTouched[from] {
		o.rowTouched[from] = true
		o.dirty = append(o.dirty, int32(from))
	}
}

// HasEdge reports whether the edge exists in either tier. The dynamic
// tier is answered from the bitset rows in O(1) instead of scanning the
// node's edge list.
func (o *Overlay) HasEdge(from, to int) bool {
	if from >= 0 && from < o.skel.n && to >= 0 && to < o.skel.n &&
		o.bits[from*o.words+to>>6]&(1<<(uint(to)&63)) != 0 {
		return true
	}
	return o.skel.HasEdge(from, to)
}

// RetractEdge removes the most recently added live record of the edge
// (from, to) and reports whether one existed. Retraction unlinks the
// record from the adjacency list and tombstones it in place, so earlier
// Checkpoint marks stay valid; the bitset row bit is cleared only when
// no duplicate record of the edge remains.
func (o *Overlay) RetractEdge(from, to int) bool {
	if from < 0 || from >= o.skel.n || to < 0 || to >= o.skel.n {
		return false
	}
	prev := int32(-1)
	for e := o.head[from]; e >= 0; e = o.next[e] {
		if int(o.to[e]) != to {
			prev = e
			continue
		}
		if prev < 0 {
			o.head[from] = o.next[e]
		} else {
			o.next[prev] = o.next[e]
		}
		o.to[e] = -1 // tombstone
		o.live--
		if !o.rowHasTarget(from, to) {
			o.bits[from*o.words+to>>6] &^= 1 << (uint(to) & 63)
		}
		return true
	}
	return false
}

// rowHasTarget reports whether any live record (from, to) remains in
// from's adjacency list.
func (o *Overlay) rowHasTarget(from, to int) bool {
	for e := o.head[from]; e >= 0; e = o.next[e] {
		if int(o.to[e]) == to {
			return true
		}
	}
	return false
}

// OverlayMark is a Checkpoint token: the edge-record high-water mark.
type OverlayMark int

// Checkpoint returns a mark capturing the current dynamic edge set.
// Restore with it to drop every edge added afterwards — the
// backtracking primitive delta-ordered enumeration uses instead of a
// full Reset. Between Checkpoint and Restore only edges added after the
// mark may be retracted; retracting a pre-mark edge invalidates the
// mark.
func (o *Overlay) Checkpoint() OverlayMark { return OverlayMark(len(o.to)) }

// Restore truncates the dynamic edge set back to a Checkpoint mark.
func (o *Overlay) Restore(m OverlayMark) {
	mark := int(m)
	if mark < 0 || mark > len(o.to) {
		panic(fmt.Sprintf("uhb: Restore mark %d out of range [0,%d]", mark, len(o.to)))
	}
	for e := len(o.to) - 1; e >= mark; e-- {
		if o.to[e] < 0 {
			continue // already retracted; not on any list
		}
		// Popping in reverse insertion order, every live record later
		// than e is gone, so e is the head of its node's list.
		v := o.from[e]
		o.head[v] = o.next[e]
		o.live--
		if !o.rowHasTarget(int(v), int(o.to[e])) {
			o.bits[int(v)*o.words+int(o.to[e])>>6] &^= 1 << (uint(o.to[e]) & 63)
		}
	}
	o.next = o.next[:mark]
	o.from = o.from[:mark]
	o.to = o.to[:mark]
	o.reason = o.reason[:mark]
}

// ForEachDynamicEdge visits every live dynamic edge record in insertion
// order with its reason code.
func (o *Overlay) ForEachDynamicEdge(fn func(from, to int, reason uint32)) {
	for e := range o.to {
		if o.to[e] < 0 {
			continue
		}
		fn(int(o.from[e]), int(o.to[e]), o.reason[e])
	}
}

// HasCycle reports whether skeleton+overlay contains a directed cycle.
// The search is iterative (explicit stack) and allocation-free: all
// scratch lives in the overlay's reusable buffers, so deep graphs from
// synthesized variants can neither overflow a goroutine stack nor
// allocate per call.
func (o *Overlay) HasCycle() bool {
	_, cyclic := o.cycle(false, nil)
	return cyclic
}

// HasCycleReasons is HasCycle with provenance: when a cycle exists, the
// reason codes of every edge on the first cycle found (in traversal
// order, duplicates preserved) are appended to buf. The search is the
// same deterministic DFS as HasCycle, so the witnessing cycle — and
// therefore the reason multiset — is stable for a given skeleton,
// overlay contents, and insertion order. Pass a buffer with spare
// capacity (e.g. a reused buf[:0]) to keep the call allocation-free.
func (o *Overlay) HasCycleReasons(buf []uint32) ([]uint32, bool) {
	return o.cycle(true, buf)
}

func (o *Overlay) cycle(collect bool, buf []uint32) ([]uint32, bool) {
	const (
		white = 0 // unvisited
		gray  = 1 // on stack
		black = 2 // done
	)
	s := o.skel
	n := s.n
	color := o.color
	for i := range color {
		color[i] = white
	}
	for start := 0; start < n; start++ {
		if color[start] != white {
			continue
		}
		sp := 0
		o.fnode[sp] = int32(start)
		o.fsidx[sp] = s.off[start]
		o.fdyn[sp] = o.head[start]
		color[start] = gray
		sp++
		for sp > 0 {
			f := sp - 1
			v := o.fnode[f]
			var w int32 = -1
			var r uint32
			if i := o.fsidx[f]; i < s.off[v+1] {
				w = s.dst[i]
				r = s.reason[i]
				o.fsidx[f] = i + 1
			} else if e := o.fdyn[f]; e >= 0 {
				w = o.to[e]
				r = o.reason[e]
				o.fdyn[f] = o.next[e]
			} else {
				color[v] = black
				sp--
				continue
			}
			switch color[w] {
			case white:
				color[w] = gray
				o.fnode[sp] = w
				o.fsidx[sp] = s.off[w]
				o.fdyn[sp] = o.head[w]
				o.fvia[sp] = r
				sp++
			case gray:
				if collect {
					// w is gray, so it sits somewhere on the DFS stack;
					// the cycle is w → … → v → w. The frames above w's
					// record the reason each was entered through, and r
					// closes the loop.
					j := f
					for o.fnode[j] != w {
						j--
					}
					for k := j + 1; k <= f; k++ {
						buf = append(buf, o.fvia[k])
					}
					buf = append(buf, r)
				}
				return buf, true
			}
		}
	}
	return buf, false
}

// overlayPool recycles overlays across evaluations; a whole enumeration
// sweep on one worker reuses a single buffer set.
var overlayPool = sync.Pool{New: func() any { return &Overlay{} }}

// AcquireOverlay returns a pooled overlay bound (and reset) to skel.
// Release it with ReleaseOverlay when the sweep is done.
func AcquireOverlay(skel *Skeleton) *Overlay {
	o := overlayPool.Get().(*Overlay)
	o.Reset(skel)
	return o
}

// ReleaseOverlay returns an overlay to the pool. The caller must not use
// it afterwards.
func ReleaseOverlay(o *Overlay) {
	o.skel = nil
	overlayPool.Put(o)
}
