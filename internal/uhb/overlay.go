package uhb

import (
	"fmt"
	"sync"
)

// Overlay is the dynamic tier of a two-tier µhb graph: the
// execution-dependent edges of one candidate execution (coherence order,
// reads-from, from-reads, dependency-sourced values, cumulative fence
// closures) layered over a frozen Skeleton.
//
// Overlays are resettable and allocation-free in steady state: all edge
// and traversal storage lives in reusable buffers that survive Reset, so
// one overlay can evaluate an entire enumeration sweep — acquire one per
// worker via AcquireOverlay, Reset it per execution, and release it when
// the sweep ends.
//
// Unlike Graph and Skeleton, an Overlay does not deduplicate edges:
// duplicates cannot change acyclicity, the number of AddEdge calls is
// already bounded by the builder's work, and skipping the lookup keeps
// the hot path branch-free. Reason codes are stored but never resolved
// here; diagnostics always go through the materialized Graph path.
type Overlay struct {
	skel *Skeleton

	// Dynamic adjacency as per-node singly linked lists threaded through
	// shared buffers: head[v] is the first edge index of node v or -1,
	// next[e] chains, from[e]/to[e]/reason[e] describe edge e. Lists are
	// built head-first; the cycle check does not depend on traversal order.
	head   []int32
	next   []int32
	from   []int32
	to     []int32
	reason []uint32

	// Cycle-check scratch, sized to the node count.
	color []byte
	fnode []int32  // DFS stack: node per frame
	fsidx []int32  // next static-CSR index to explore
	fdyn  []int32  // next dynamic edge index to explore (-1 = done)
	fvia  []uint32 // reason code of the edge that entered each frame
}

// NewOverlay returns an overlay bound to skel, ready for AddEdge.
func NewOverlay(skel *Skeleton) *Overlay {
	o := &Overlay{}
	o.Reset(skel)
	return o
}

// Reset rebinds the overlay to skel (which may differ from the previous
// binding) and discards all dynamic edges, retaining buffer capacity.
func (o *Overlay) Reset(skel *Skeleton) {
	if !skel.frozen {
		panic("uhb: Overlay.Reset on unfrozen Skeleton")
	}
	o.skel = skel
	n := skel.n
	if cap(o.head) < n {
		o.head = make([]int32, n)
		o.color = make([]byte, n)
		o.fnode = make([]int32, n)
		o.fsidx = make([]int32, n)
		o.fdyn = make([]int32, n)
		o.fvia = make([]uint32, n)
	}
	o.head = o.head[:n]
	o.color = o.color[:n]
	o.fnode = o.fnode[:n]
	o.fsidx = o.fsidx[:n]
	o.fdyn = o.fdyn[:n]
	o.fvia = o.fvia[:n]
	for i := range o.head {
		o.head[i] = -1
	}
	o.next = o.next[:0]
	o.from = o.from[:0]
	o.to = o.to[:0]
	o.reason = o.reason[:0]
}

// NumNodes returns the node count of the bound skeleton.
func (o *Overlay) NumNodes() int { return o.skel.n }

// NumDynamicEdges returns the number of dynamic edge records (duplicates
// included).
func (o *Overlay) NumDynamicEdges() int { return len(o.to) }

// Skeleton returns the bound static tier.
func (o *Overlay) Skeleton() *Skeleton { return o.skel }

// AddEdge records a dynamic edge with an opaque reason code.
func (o *Overlay) AddEdge(from, to int, reason uint32) {
	if from < 0 || from >= o.skel.n || to < 0 || to >= o.skel.n {
		panic(fmt.Sprintf("uhb: overlay edge (%d,%d) out of range [0,%d)", from, to, o.skel.n))
	}
	e := int32(len(o.to))
	o.next = append(o.next, o.head[from])
	o.from = append(o.from, int32(from))
	o.to = append(o.to, int32(to))
	o.reason = append(o.reason, reason)
	o.head[from] = e
}

// HasEdge reports whether the edge exists in either tier.
func (o *Overlay) HasEdge(from, to int) bool {
	if o.skel.HasEdge(from, to) {
		return true
	}
	for e := o.head[from]; e >= 0; e = o.next[e] {
		if int(o.to[e]) == to {
			return true
		}
	}
	return false
}

// ForEachDynamicEdge visits every dynamic edge record in insertion order
// with its reason code.
func (o *Overlay) ForEachDynamicEdge(fn func(from, to int, reason uint32)) {
	for e := range o.to {
		fn(int(o.from[e]), int(o.to[e]), o.reason[e])
	}
}

// HasCycle reports whether skeleton+overlay contains a directed cycle.
// The search is iterative (explicit stack) and allocation-free: all
// scratch lives in the overlay's reusable buffers, so deep graphs from
// synthesized variants can neither overflow a goroutine stack nor
// allocate per call.
func (o *Overlay) HasCycle() bool {
	_, cyclic := o.cycle(false, nil)
	return cyclic
}

// HasCycleReasons is HasCycle with provenance: when a cycle exists, the
// reason codes of every edge on the first cycle found (in traversal
// order, duplicates preserved) are appended to buf. The search is the
// same deterministic DFS as HasCycle, so the witnessing cycle — and
// therefore the reason multiset — is stable for a given skeleton,
// overlay contents, and insertion order. Pass a buffer with spare
// capacity (e.g. a reused buf[:0]) to keep the call allocation-free.
func (o *Overlay) HasCycleReasons(buf []uint32) ([]uint32, bool) {
	return o.cycle(true, buf)
}

func (o *Overlay) cycle(collect bool, buf []uint32) ([]uint32, bool) {
	const (
		white = 0 // unvisited
		gray  = 1 // on stack
		black = 2 // done
	)
	s := o.skel
	n := s.n
	color := o.color
	for i := range color {
		color[i] = white
	}
	for start := 0; start < n; start++ {
		if color[start] != white {
			continue
		}
		sp := 0
		o.fnode[sp] = int32(start)
		o.fsidx[sp] = s.off[start]
		o.fdyn[sp] = o.head[start]
		color[start] = gray
		sp++
		for sp > 0 {
			f := sp - 1
			v := o.fnode[f]
			var w int32 = -1
			var r uint32
			if i := o.fsidx[f]; i < s.off[v+1] {
				w = s.dst[i]
				r = s.reason[i]
				o.fsidx[f] = i + 1
			} else if e := o.fdyn[f]; e >= 0 {
				w = o.to[e]
				r = o.reason[e]
				o.fdyn[f] = o.next[e]
			} else {
				color[v] = black
				sp--
				continue
			}
			switch color[w] {
			case white:
				color[w] = gray
				o.fnode[sp] = w
				o.fsidx[sp] = s.off[w]
				o.fdyn[sp] = o.head[w]
				o.fvia[sp] = r
				sp++
			case gray:
				if collect {
					// w is gray, so it sits somewhere on the DFS stack;
					// the cycle is w → … → v → w. The frames above w's
					// record the reason each was entered through, and r
					// closes the loop.
					j := f
					for o.fnode[j] != w {
						j--
					}
					for k := j + 1; k <= f; k++ {
						buf = append(buf, o.fvia[k])
					}
					buf = append(buf, r)
				}
				return buf, true
			}
		}
	}
	return buf, false
}

// overlayPool recycles overlays across evaluations; a whole enumeration
// sweep on one worker reuses a single buffer set.
var overlayPool = sync.Pool{New: func() any { return &Overlay{} }}

// AcquireOverlay returns a pooled overlay bound (and reset) to skel.
// Release it with ReleaseOverlay when the sweep is done.
func AcquireOverlay(skel *Skeleton) *Overlay {
	o := overlayPool.Get().(*Overlay)
	o.Reset(skel)
	return o
}

// ReleaseOverlay returns an overlay to the pool. The caller must not use
// it afterwards.
func ReleaseOverlay(o *Overlay) {
	o.skel = nil
	overlayPool.Put(o)
}
