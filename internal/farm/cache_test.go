package farm

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// These tests pin the snapshot merge semantics the fleet's memo
// replication relies on: loading several snapshot slices into one cache
// must be last-write-wins deterministic on overlapping keys and must
// never drop disjoint keys.

func encodeEntries(t *testing.T, m map[string]int) []byte {
	t.Helper()
	c := NewCache[string, int](0)
	c.Fill(m)
	data, err := EncodeSnapshot(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestDecodeSnapshotMergeIsLastWriteWins(t *testing.T) {
	first := encodeEntries(t, map[string]int{"a": 1, "b": 2, "shared": 10})
	second := encodeEntries(t, map[string]int{"c": 3, "shared": 20})

	c := NewCache[string, int](0)
	if err := DecodeSnapshot(first, c); err != nil {
		t.Fatal(err)
	}
	if err := DecodeSnapshot(second, c); err != nil {
		t.Fatal(err)
	}
	want := map[string]int{"a": 1, "b": 2, "c": 3, "shared": 20}
	got := c.Entries()
	if len(got) != len(want) {
		t.Fatalf("merged cache has %d entries, want %d: %v", len(got), len(want), got)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("entry %q = %d, want %d", k, got[k], v)
		}
	}

	// The opposite load order flips only the overlapping key.
	c2 := NewCache[string, int](0)
	if err := DecodeSnapshot(second, c2); err != nil {
		t.Fatal(err)
	}
	if err := DecodeSnapshot(first, c2); err != nil {
		t.Fatal(err)
	}
	if got := c2.Entries(); got["shared"] != 10 || len(got) != len(want) {
		t.Fatalf("reverse merge: shared=%d len=%d, want shared=10 len=%d", got["shared"], len(got), len(want))
	}
}

func TestDecodeSnapshotIsDeterministicAcrossRepeats(t *testing.T) {
	a := encodeEntries(t, map[string]int{"x": 1, "y": 2, "z": 3})
	b := encodeEntries(t, map[string]int{"y": 20, "w": 4})
	var ref map[string]int
	for i := 0; i < 10; i++ {
		c := NewCache[string, int](0)
		for _, data := range [][]byte{a, b} {
			if err := DecodeSnapshot(data, c); err != nil {
				t.Fatal(err)
			}
		}
		got := c.Entries()
		if ref == nil {
			ref = got
			continue
		}
		if fmt.Sprint(got) != fmt.Sprint(ref) && len(got) != len(ref) {
			t.Fatalf("merge %d diverged: %v vs %v", i, got, ref)
		}
		for k, v := range ref {
			if got[k] != v {
				t.Fatalf("merge %d: entry %q = %d, want %d", i, k, got[k], v)
			}
		}
	}
}

func TestEncodeSnapshotKeepFilter(t *testing.T) {
	c := NewCache[string, int](0)
	c.Fill(map[string]int{"keep-a": 1, "keep-b": 2, "drop-c": 3})
	data, err := EncodeSnapshot(c, func(k string) bool { return strings.HasPrefix(k, "keep-") })
	if err != nil {
		t.Fatal(err)
	}
	out := NewCache[string, int](0)
	if err := DecodeSnapshot(data, out); err != nil {
		t.Fatal(err)
	}
	got := out.Entries()
	if len(got) != 2 || got["keep-a"] != 1 || got["keep-b"] != 2 {
		t.Fatalf("filtered slice = %v, want keep-a/keep-b only", got)
	}
	// Filtering must not mutate the source cache.
	if c.Len() != 3 {
		t.Fatalf("source cache shrank to %d entries", c.Len())
	}
}

func TestDecodeSnapshotRejectsVersionSkew(t *testing.T) {
	data := []byte(`{"version":1,"entries":{"a":1}}`)
	c := NewCache[string, int](0)
	err := DecodeSnapshot(data, c)
	if !errors.Is(err, ErrSnapshotVersion) {
		t.Fatalf("version-1 snapshot decoded with err=%v, want ErrSnapshotVersion", err)
	}
	if c.Len() != 0 {
		t.Fatalf("rejected snapshot still filled %d entries", c.Len())
	}
}
