// Package farm is the verification farm substrate: a sharded
// work-stealing scheduler with job deduplication and a memoized result
// cache (in-memory LRU plus an optional JSON snapshot on disk).
//
// The farm is deliberately generic. Jobs are (key, thunk) pairs: the key
// is a canonical fingerprint of the work (for TriCheck, a hash of the
// litmus test program plus the full-stack identity) and the thunk
// performs it. The scheduler:
//
//   - deduplicates jobs by key, executing each distinct key once and
//     fanning the result out to every submitted duplicate;
//   - consults the optional cache before scheduling, so a warm farm
//     performs zero executions for previously-verified work;
//   - distributes the remaining jobs over per-worker shard deques; each
//     worker drains its own shard LIFO and steals FIFO from the others
//     when idle, so stragglers (litmus tests with large execution-
//     candidate spaces) never serialize the sweep;
//   - streams every result to an optional observer as it lands, for
//     progressive reporting, while still returning the full result slice
//     in submission order for deterministic aggregation.
//
// Determinism: results are assigned by submission index, the cache is
// keyed by content fingerprints, and verdict aggregation happens outside
// the farm, so the output of a run is byte-identical regardless of the
// worker count or the steal schedule.
package farm

import (
	"context"
	"runtime"
	"sync"
	"time"
)

// Job is one unit of farm work: a canonical key plus the thunk that
// computes the value. Jobs with equal keys MUST compute equal values;
// the farm runs only one of them.
type Job[K comparable, V any] struct {
	// Key is the canonical fingerprint of the work.
	Key K
	// Run performs the work. It is called at most once per distinct key
	// per farm run, and not at all on a cache hit.
	Run func() (V, error)
}

// Stats reports what a farm run did.
type Stats struct {
	// Jobs is the number of submitted jobs; Unique the number of
	// distinct keys among them.
	Jobs, Unique int
	// CacheHits counts distinct keys satisfied from the cache without
	// execution; Executed counts keys whose thunk actually ran.
	CacheHits, Executed int
	// Stolen counts executions a worker took from a foreign shard.
	Stolen int
	// Skipped counts distinct keys that were never scheduled because the
	// run's context was cancelled first.
	Skipped int
	// Workers is the resolved worker count.
	Workers int
}

// Options configures a farm run.
type Options[K comparable, V any] struct {
	// Workers bounds the worker pool (0 = GOMAXPROCS).
	Workers int
	// Cache, when non-nil, memoizes results across runs.
	Cache *Cache[K, V]
	// OnResult, when non-nil, observes every job's result as it lands
	// (duplicates and cache hits included, with cached=true). Calls are
	// serialized; index is the job's submission index.
	OnResult func(index int, v V, cached bool)
	// Context, when non-nil, aborts the run: once it is cancelled no new
	// job is scheduled (in-flight jobs finish, land in the cache, and are
	// streamed to OnResult as usual — a cancelled run never poisons a
	// shared cache) and Run returns the context's error. Nil means run to
	// completion.
	Context context.Context
	// Metrics, when non-nil, receives scheduler telemetry: queue-wait and
	// run-time distributions, memo lookup latencies and disposition
	// counters. Recording is atomic adds on pre-registered handles — the
	// instrumented path performs no allocation or formatting.
	Metrics *Metrics
}

// shard is one worker's deque. The owner pops newest-first from the
// tail; thieves pop oldest-first from the head, so stolen work is the
// work least likely to be in the owner's cache-warm neighbourhood.
type shard struct {
	mu   sync.Mutex
	jobs []int // indices into the canonical job list
}

func (s *shard) popTail() (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.jobs) == 0 {
		return 0, false
	}
	j := s.jobs[len(s.jobs)-1]
	s.jobs = s.jobs[:len(s.jobs)-1]
	return j, true
}

func (s *shard) popHead() (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.jobs) == 0 {
		return 0, false
	}
	j := s.jobs[0]
	s.jobs = s.jobs[1:]
	return j, true
}

// Run executes the jobs and returns their values in submission order.
// On error the partial results are returned together with the first
// error in submission order; a cancelled Options.Context wins over job
// errors.
func Run[K comparable, V any](jobs []Job[K, V], opts Options[K, V]) ([]V, Stats, error) {
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	obsm := opts.Metrics
	if obsm != nil {
		obsm.Runs.Inc()
	}
	stats := Stats{Jobs: len(jobs)}
	results := make([]V, len(jobs))
	errs := make([]error, len(jobs))

	// Deduplicate by key: the first job with a key is canonical, later
	// ones become aliases that receive a copy of its result.
	canon := make(map[K]int, len(jobs))
	aliases := make(map[int][]int)
	var pending []int
	var emitMu sync.Mutex
	emit := func(i int, v V, cached bool) {
		emitMu.Lock()
		defer emitMu.Unlock()
		results[i] = v
		if opts.OnResult != nil {
			opts.OnResult(i, v, cached)
		}
		for _, a := range aliases[i] {
			results[a] = v
			if opts.OnResult != nil {
				opts.OnResult(a, v, true)
			}
		}
	}
	for i, j := range jobs {
		if ci, ok := canon[j.Key]; ok {
			aliases[ci] = append(aliases[ci], i)
			continue
		}
		canon[j.Key] = i
		pending = append(pending, i)
	}
	stats.Unique = len(pending)
	if obsm != nil && stats.Jobs > stats.Unique {
		obsm.Deduped.Add(uint64(stats.Jobs - stats.Unique))
	}

	// Warm-cache pass: satisfy whatever we can without scheduling.
	if opts.Cache != nil {
		uncached := pending[:0]
		for _, i := range pending {
			var lookupStart time.Time
			if obsm != nil {
				lookupStart = time.Now()
			}
			v, ok := opts.Cache.Get(jobs[i].Key)
			obsm.observeLookup(lookupStart, ok)
			if ok {
				stats.CacheHits++
				emit(i, v, true)
				continue
			}
			uncached = append(uncached, i)
		}
		pending = uncached
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pending) {
		workers = len(pending)
	}
	if workers == 0 {
		return results, stats, runError(ctx, errs)
	}
	stats.Workers = workers

	// Stripe the pending jobs across the shards so that expensive
	// neighbourhoods (litmus families are generated contiguously)
	// spread evenly, then let stealing fix any residual imbalance.
	shards := make([]*shard, workers)
	for w := range shards {
		shards[w] = &shard{}
	}
	for n, i := range pending {
		s := shards[n%workers]
		s.jobs = append(s.jobs, i)
	}

	var mu sync.Mutex // guards stats.Executed / stats.Stolen and errs
	var wg sync.WaitGroup
	// All pending jobs are enqueued before the workers start, so a job's
	// queue wait is simply take-time minus the run's start.
	enqueued := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i, stolen, ok := take(shards, w)
				if !ok {
					return
				}
				var runStart time.Time
				if obsm != nil {
					runStart = time.Now()
					obsm.QueueWait.Observe(runStart.Sub(enqueued))
				}
				v, err := jobs[i].Run()
				if obsm != nil {
					obsm.RunTime.Observe(time.Since(runStart))
					obsm.Executed.Inc()
					if stolen {
						obsm.Stolen.Inc()
					}
				}
				mu.Lock()
				stats.Executed++
				if stolen {
					stats.Stolen++
				}
				if err != nil {
					errs[i] = err
				}
				mu.Unlock()
				if err != nil {
					continue
				}
				if opts.Cache != nil {
					opts.Cache.Put(jobs[i].Key, v)
				}
				emit(i, v, false)
			}
		}(w)
	}
	wg.Wait()
	// Whatever is still sitting in the shards was abandoned by the
	// cancellation above; count it so callers can see how much of the
	// run never happened.
	for _, s := range shards {
		stats.Skipped += len(s.jobs)
	}
	if obsm != nil && stats.Skipped > 0 {
		obsm.Skipped.Add(uint64(stats.Skipped))
	}
	return results, stats, runError(ctx, errs)
}

// take pops work for worker w: its own shard first (tail, LIFO), then a
// steal sweep over the other shards (head, FIFO). All work is enqueued
// before the workers start, so one empty sweep means the farm is done.
func take(shards []*shard, w int) (idx int, stolen, ok bool) {
	if i, ok := shards[w].popTail(); ok {
		return i, false, true
	}
	for d := 1; d < len(shards); d++ {
		if i, ok := shards[(w+d)%len(shards)].popHead(); ok {
			return i, true, true
		}
	}
	return 0, false, false
}

// runError resolves a run's error: cancellation wins (the job errors of
// an aborted run are incidental), then the first job error in
// submission order.
func runError(ctx context.Context, errs []error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
