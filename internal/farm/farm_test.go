package farm

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"
)

func squareJobs(n int, execs *atomic.Int64) []Job[string, int] {
	jobs := make([]Job[string, int], n)
	for i := 0; i < n; i++ {
		i := i
		jobs[i] = Job[string, int]{
			Key: fmt.Sprintf("sq:%d", i),
			Run: func() (int, error) {
				execs.Add(1)
				return i * i, nil
			},
		}
	}
	return jobs
}

func TestRunOrderAndDeterminism(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		var execs atomic.Int64
		got, stats, err := Run(squareJobs(100, &execs), Options[string, int]{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
		if execs.Load() != 100 || stats.Executed != 100 {
			t.Fatalf("workers=%d: executed %d/%d, want 100", workers, execs.Load(), stats.Executed)
		}
		if stats.Unique != 100 || stats.Jobs != 100 {
			t.Fatalf("workers=%d: stats %+v", workers, stats)
		}
	}
}

func TestDeduplication(t *testing.T) {
	var execs atomic.Int64
	jobs := make([]Job[string, int], 30)
	for i := range jobs {
		key := fmt.Sprintf("k%d", i%10) // each key submitted 3 times
		jobs[i] = Job[string, int]{Key: key, Run: func() (int, error) {
			execs.Add(1)
			return len(key), nil
		}}
	}
	got, stats, err := Run(jobs, Options[string, int]{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if execs.Load() != 10 {
		t.Fatalf("executed %d thunks, want 10 (deduplicated)", execs.Load())
	}
	if stats.Unique != 10 || stats.Jobs != 30 {
		t.Fatalf("stats %+v", stats)
	}
	for i, v := range got {
		if v != len(fmt.Sprintf("k%d", i%10)) {
			t.Fatalf("result[%d] = %d", i, v)
		}
	}
}

func TestWarmCacheRunsNothing(t *testing.T) {
	cache := NewCache[string, int](0)
	var execs atomic.Int64
	jobs := squareJobs(50, &execs)

	cold, coldStats, err := Run(jobs, Options[string, int]{Workers: 8, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if execs.Load() != 50 || coldStats.Executed != 50 || coldStats.CacheHits != 0 {
		t.Fatalf("cold run: execs=%d stats=%+v", execs.Load(), coldStats)
	}

	warm, warmStats, err := Run(jobs, Options[string, int]{Workers: 8, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if execs.Load() != 50 {
		t.Fatalf("warm run executed %d new thunks, want 0", execs.Load()-50)
	}
	if warmStats.Executed != 0 || warmStats.CacheHits != 50 {
		t.Fatalf("warm stats %+v", warmStats)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatal("warm results differ from cold results")
	}
}

func TestOnResultStreamsEverything(t *testing.T) {
	var execs atomic.Int64
	jobs := squareJobs(20, &execs)
	jobs = append(jobs, jobs...) // 20 duplicates
	seen := make([]bool, len(jobs))
	var cachedCount int
	_, _, err := Run(jobs, Options[string, int]{
		Workers: 4,
		OnResult: func(i int, v int, cached bool) {
			if seen[i] {
				t.Errorf("result %d delivered twice", i)
			}
			seen[i] = true
			if cached {
				cachedCount++
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("result %d never delivered", i)
		}
	}
	if cachedCount != 20 {
		t.Fatalf("%d results marked cached, want the 20 duplicates", cachedCount)
	}
}

func TestFirstErrorWins(t *testing.T) {
	boom7 := errors.New("boom 7")
	boom3 := errors.New("boom 3")
	jobs := make([]Job[string, int], 10)
	for i := range jobs {
		i := i
		jobs[i] = Job[string, int]{Key: fmt.Sprintf("e%d", i), Run: func() (int, error) {
			switch i {
			case 3:
				return 0, boom3
			case 7:
				return 0, boom7
			}
			return i, nil
		}}
	}
	// Deterministic regardless of scheduling: the error of the lowest
	// submission index is reported.
	for _, workers := range []int{1, 4} {
		_, _, err := Run(jobs, Options[string, int]{Workers: workers})
		if !errors.Is(err, boom3) {
			t.Fatalf("workers=%d: err = %v, want boom 3", workers, err)
		}
	}
}

func TestErrorsAreNotCached(t *testing.T) {
	cache := NewCache[string, int](0)
	fail := true
	job := []Job[string, int]{{Key: "flaky", Run: func() (int, error) {
		if fail {
			return 0, errors.New("transient")
		}
		return 42, nil
	}}}
	if _, _, err := Run(job, Options[string, int]{Cache: cache}); err == nil {
		t.Fatal("want error from first run")
	}
	if cache.Len() != 0 {
		t.Fatal("error result was cached")
	}
	fail = false
	got, _, err := Run(job, Options[string, int]{Cache: cache})
	if err != nil || got[0] != 42 {
		t.Fatalf("retry: got %v, %v", got, err)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache[string, int](2)
	c.Put("a", 1)
	c.Put("b", 2)
	if _, ok := c.Get("a"); !ok { // refresh a; b becomes LRU
		t.Fatal("a missing")
	}
	c.Put("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a should have survived")
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.json")
	c := NewCache[string, []string](0)
	c.Put("x", []string{"1", "2"})
	c.Put("y", nil)
	if err := SaveSnapshot(path, c); err != nil {
		t.Fatal(err)
	}
	c2 := NewCache[string, []string](0)
	if err := LoadSnapshot(path, c2); err != nil {
		t.Fatal(err)
	}
	if v, ok := c2.Get("x"); !ok || !reflect.DeepEqual(v, []string{"1", "2"}) {
		t.Fatalf("x = %v, %v", v, ok)
	}
	if c2.Len() != 2 {
		t.Fatalf("len = %d", c2.Len())
	}
}

func TestEmptyRun(t *testing.T) {
	got, stats, err := Run(nil, Options[string, int]{})
	if err != nil || len(got) != 0 || stats.Jobs != 0 {
		t.Fatalf("got %v, %+v, %v", got, stats, err)
	}
}

func TestPreCancelledContextSchedulesNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var execs atomic.Int64
	_, stats, err := Run(squareJobs(50, &execs), Options[string, int]{Workers: 4, Context: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if execs.Load() != 0 {
		t.Fatalf("executed %d jobs under a pre-cancelled context, want 0", execs.Load())
	}
	if stats.Skipped != 50 {
		t.Fatalf("stats.Skipped = %d, want 50 (stats %+v)", stats.Skipped, stats)
	}
}

func TestCancellationStopsSchedulingButKeepsFinishedResults(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cache := NewCache[string, int](0)
	var execs atomic.Int64
	const n = 200
	jobs := make([]Job[string, int], n)
	for i := range jobs {
		i := i
		jobs[i] = Job[string, int]{Key: fmt.Sprintf("c:%d", i), Run: func() (int, error) {
			execs.Add(1)
			return i * i, nil
		}}
	}
	delivered := 0
	_, stats, err := Run(jobs, Options[string, int]{
		Workers: 1,
		Cache:   cache,
		Context: ctx,
		OnResult: func(i, v int, cached bool) {
			delivered++
			if delivered == 5 {
				cancel() // abort mid-run, single worker ⇒ plenty pending
			}
			if v != i*i {
				t.Errorf("result[%d] = %d, want %d", i, v, i*i)
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := int(execs.Load()); got >= n || got < 5 {
		t.Fatalf("executed %d of %d jobs, want a strict partial run ≥ 5", got, n)
	}
	if stats.Skipped == 0 || stats.Skipped != stats.Unique-stats.Executed {
		t.Fatalf("stats.Skipped = %d, want %d (stats %+v)", stats.Skipped, stats.Unique-stats.Executed, stats)
	}
	// Everything that finished before the abort is in the cache and
	// correct: a warm rerun executes only the remainder.
	if cache.Len() != stats.Executed {
		t.Fatalf("cache holds %d entries, want %d", cache.Len(), stats.Executed)
	}
	execs.Store(0)
	got, stats2, err := Run(jobs, Options[string, int]{Workers: 4, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("warm rerun result[%d] = %d, want %d", i, v, i*i)
		}
	}
	if stats2.CacheHits != stats.Executed || int(execs.Load()) != n-stats.Executed {
		t.Fatalf("warm rerun: hits=%d executed=%d, want hits=%d executed=%d",
			stats2.CacheHits, execs.Load(), stats.Executed, n-stats.Executed)
	}
}
