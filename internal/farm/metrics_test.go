package farm

import (
	"sync/atomic"
	"testing"

	"tricheck/internal/obs"
)

// TestRunRecordsMetrics pins the scheduler telemetry contract: a cold
// run records executed jobs, queue-wait and run-time observations; a
// warm rerun against the same cache records memo hits with lookup
// latencies and executes nothing new.
func TestRunRecordsMetrics(t *testing.T) {
	m := NewMetrics(obs.NewRegistry())
	cache := NewCache[string, int](0)
	var execs atomic.Int64

	_, stats, err := Run(squareJobs(40, &execs), Options[string, int]{
		Workers: 4, Cache: cache, Metrics: m,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Runs.Value() != 1 {
		t.Errorf("runs = %d, want 1", m.Runs.Value())
	}
	if got := m.Executed.Value(); got != uint64(stats.Executed) || got != 40 {
		t.Errorf("executed counter = %d, farm stats %d, want 40", got, stats.Executed)
	}
	if m.QueueWait.Count() != 40 || m.RunTime.Count() != 40 {
		t.Errorf("queue-wait %d / run-time %d observations, want 40 each",
			m.QueueWait.Count(), m.RunTime.Count())
	}
	if m.MemoMisses.Value() != 40 || m.MemoHits.Value() != 0 {
		t.Errorf("cold run: hits=%d misses=%d, want 0/40", m.MemoHits.Value(), m.MemoMisses.Value())
	}

	// Warm rerun: every job is a memo hit, nothing executes.
	_, stats, err = Run(squareJobs(40, &execs), Options[string, int]{
		Workers: 4, Cache: cache, Metrics: m,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Executed != 0 {
		t.Fatalf("warm run executed %d jobs", stats.Executed)
	}
	if m.MemoHits.Value() != 40 {
		t.Errorf("warm run memo hits = %d, want 40", m.MemoHits.Value())
	}
	if m.MemoLookup.Count() != 80 {
		t.Errorf("memo lookup observations = %d, want 80", m.MemoLookup.Count())
	}
	if m.Executed.Value() != 40 {
		t.Errorf("executed counter moved on warm run: %d", m.Executed.Value())
	}
}

// TestRunMetricsDedup pins the deduped-disposition counter.
func TestRunMetricsDedup(t *testing.T) {
	m := NewMetrics(obs.NewRegistry())
	var execs atomic.Int64
	jobs := squareJobs(10, &execs)
	jobs = append(jobs, squareJobs(10, &execs)...) // every key twice
	if _, _, err := Run(jobs, Options[string, int]{Workers: 2, Metrics: m}); err != nil {
		t.Fatal(err)
	}
	if m.Deduped.Value() != 10 {
		t.Errorf("deduped = %d, want 10", m.Deduped.Value())
	}
	if m.Executed.Value() != 10 {
		t.Errorf("executed = %d, want 10", m.Executed.Value())
	}
}

// TestRunNilMetrics pins that a run without metrics records nothing and
// does not crash — the zero-cost default for library users.
func TestRunNilMetrics(t *testing.T) {
	var execs atomic.Int64
	if _, _, err := Run(squareJobs(8, &execs), Options[string, int]{Workers: 2}); err != nil {
		t.Fatal(err)
	}
}
