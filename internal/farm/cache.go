package farm

import (
	"container/list"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Cache is a concurrency-safe LRU memo cache keyed by canonical job
// fingerprints. A capacity of 0 means unbounded.
type Cache[K comparable, V any] struct {
	mu       sync.Mutex
	capacity int
	entries  map[K]*list.Element
	order    *list.List // front = most recently used
	hits     uint64
	misses   uint64
}

type cacheEntry[K comparable, V any] struct {
	key K
	val V
}

// CacheStats is a point-in-time cache counter snapshot.
type CacheStats struct {
	Hits, Misses uint64
	Len, Cap     int
}

// NewCache returns an empty cache holding at most capacity entries
// (0 = unbounded).
func NewCache[K comparable, V any](capacity int) *Cache[K, V] {
	return &Cache[K, V]{
		capacity: capacity,
		entries:  map[K]*list.Element{},
		order:    list.New(),
	}
}

// Get looks a key up, marking it most recently used.
func (c *Cache[K, V]) Get(k K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k]; ok {
		c.hits++
		c.order.MoveToFront(el)
		return el.Value.(*cacheEntry[K, V]).val, true
	}
	c.misses++
	var zero V
	return zero, false
}

// Put inserts or refreshes a key, evicting the least recently used
// entry when over capacity.
func (c *Cache[K, V]) Put(k K, v V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k]; ok {
		el.Value.(*cacheEntry[K, V]).val = v
		c.order.MoveToFront(el)
		return
	}
	c.entries[k] = c.order.PushFront(&cacheEntry[K, V]{key: k, val: v})
	if c.capacity > 0 && c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry[K, V]).key)
	}
}

// Len returns the number of cached entries.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats returns the hit/miss counters.
func (c *Cache[K, V]) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Len: c.order.Len(), Cap: c.capacity}
}

// Entries returns a copy of the cache contents (values are shared).
func (c *Cache[K, V]) Entries() map[K]V {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[K]V, len(c.entries))
	for k, el := range c.entries {
		out[k] = el.Value.(*cacheEntry[K, V]).val
	}
	return out
}

// Fill bulk-loads entries (e.g. from a snapshot) without touching the
// hit/miss counters. Iteration order is map order; with a bounded cache
// smaller than len(m) an arbitrary subset survives.
func (c *Cache[K, V]) Fill(m map[K]V) {
	for k, v := range m {
		c.Put(k, v)
	}
}

// snapshot is the on-disk JSON envelope.
type snapshot[V any] struct {
	Version int          `json:"version"`
	Entries map[string]V `json:"entries"`
}

// snapshotVersion guards the on-disk format; bump it when the key
// derivation or the value encoding changes incompatibly.
// History: 2 = the canonical test fingerprint became invariant under
// thread permutation and location renumbering (v1 keys never match it).
const snapshotVersion = 2

// ErrSnapshotVersion reports a snapshot written by an incompatible
// build. Callers should treat it as a cold start (the next
// SaveSnapshot overwrites the stale file) but may want to surface it —
// silently re-verifying everything surprises users expecting a warm
// cache.
var ErrSnapshotVersion = errors.New("incompatible snapshot version")

// EncodeSnapshot marshals a string-keyed cache in the snapshot envelope.
// A non-nil keep filters the entries — the fleet's memo-replication path
// uses it to slice a worker's cache by consistent-hash ownership — while
// keep == nil takes everything (the on-disk snapshot).
func EncodeSnapshot[V any](c *Cache[string, V], keep func(key string) bool) ([]byte, error) {
	entries := c.Entries()
	if keep != nil {
		for k := range entries {
			if !keep(k) {
				delete(entries, k)
			}
		}
	}
	data, err := json.Marshal(snapshot[V]{Version: snapshotVersion, Entries: entries})
	if err != nil {
		return nil, fmt.Errorf("farm: encoding snapshot: %w", err)
	}
	return data, nil
}

// DecodeSnapshot merges snapshot bytes (from EncodeSnapshot or a
// SaveSnapshot file) into the cache. Merge semantics are Fill's:
// last-write-wins per key, keys absent from the snapshot untouched — so
// loading two overlapping snapshots keeps the union, with the second
// load winning on the overlap. An incompatible envelope satisfies
// errors.Is(err, ErrSnapshotVersion).
func DecodeSnapshot[V any](data []byte, c *Cache[string, V]) error {
	var snap snapshot[V]
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("farm: decoding snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return fmt.Errorf("farm: snapshot has version %d, want %d: %w", snap.Version, snapshotVersion, ErrSnapshotVersion)
	}
	c.Fill(snap.Entries)
	return nil
}

// SaveSnapshot writes a string-keyed cache to path as JSON, atomically
// (write to a temp file in the same directory, then rename).
func SaveSnapshot[V any](path string, c *Cache[string, V]) error {
	data, err := EncodeSnapshot(c, nil)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".farm-snapshot-*")
	if err != nil {
		return fmt.Errorf("farm: writing snapshot: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("farm: writing snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("farm: writing snapshot: %w", err)
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		return fmt.Errorf("farm: writing snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("farm: writing snapshot: %w", err)
	}
	return nil
}

// LoadSnapshot merges a JSON snapshot into the cache. A missing file is
// reported via os.IsNotExist on the returned error.
func LoadSnapshot[V any](path string, c *Cache[string, V]) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := DecodeSnapshot(data, c); err != nil {
		return fmt.Errorf("%w (%s)", err, path)
	}
	return nil
}
