package farm

import (
	"time"

	"tricheck/internal/obs"
)

// Metrics is the farm's scheduler telemetry: per-job queue-wait and
// run-time distributions, steal/dedup/skip counters and memo-cache
// hit/miss counters with lookup latencies. All fields are pre-registered
// obs handles; recording is atomic adds only, so instrumented runs keep
// the farm's hot loop allocation-free.
type Metrics struct {
	// QueueWait is the time a job spent enqueued before a worker took it.
	QueueWait *obs.Histogram
	// RunTime is the job thunk's execution time.
	RunTime *obs.Histogram
	// MemoLookup is the memo-cache Get latency (hits and misses).
	MemoLookup *obs.Histogram
	// MemoHits / MemoMisses count warm-pass cache outcomes.
	MemoHits, MemoMisses *obs.Counter
	// Executed / Stolen / Deduped / Skipped count job dispositions.
	Executed, Stolen, Deduped, Skipped *obs.Counter
	// Runs counts farm runs.
	Runs *obs.Counter
}

// NewMetrics registers (or re-resolves — registration is idempotent) the
// farm metric family in r.
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		QueueWait:  r.Histogram("tricheck_farm_queue_wait_seconds", "Time a farm job waited in a shard deque before a worker took it.", nil),
		RunTime:    r.Histogram("tricheck_farm_job_run_seconds", "Execution time of a farm job thunk.", nil),
		MemoLookup: r.Histogram("tricheck_farm_memo_lookup_seconds", "Memo-cache Get latency during the warm pass.", nil),
		MemoHits:   r.Counter("tricheck_farm_memo_total", "Warm-pass memo-cache lookups by outcome.", obs.L("outcome", "hit")),
		MemoMisses: r.Counter("tricheck_farm_memo_total", "Warm-pass memo-cache lookups by outcome.", obs.L("outcome", "miss")),
		Executed:   r.Counter("tricheck_farm_jobs_total", "Farm jobs by disposition.", obs.L("disposition", "executed")),
		Stolen:     r.Counter("tricheck_farm_jobs_total", "Farm jobs by disposition.", obs.L("disposition", "stolen")),
		Deduped:    r.Counter("tricheck_farm_jobs_total", "Farm jobs by disposition.", obs.L("disposition", "deduped")),
		Skipped:    r.Counter("tricheck_farm_jobs_total", "Farm jobs by disposition.", obs.L("disposition", "skipped")),
		Runs:       r.Counter("tricheck_farm_runs_total", "Farm runs started."),
	}
}

// observeLookup times one cache lookup; nil-safe.
func (m *Metrics) observeLookup(start time.Time, hit bool) {
	if m == nil {
		return
	}
	m.MemoLookup.Observe(time.Since(start))
	if hit {
		m.MemoHits.Inc()
	} else {
		m.MemoMisses.Inc()
	}
}
