package c11

import (
	"testing"

	"tricheck/internal/mem"
)

// mp builds message passing: T0: st x; st y. T1: r0=ld y; r1=ld x.
// The interesting outcome is r0=1 (saw flag) with r1=0 (missed data).
func mp(sx, sy, ly, lx Order) *Program {
	p := New(2, "x", "y")
	x, y := mem.Const(0), mem.Const(1)
	p.Store(0, sx, x, mem.Const(1))
	p.Store(0, sy, y, mem.Const(1))
	p.Load(1, ly, y, 0)
	p.Load(1, lx, x, 1)
	p.Observe(1, 0, "r0")
	p.Observe(1, 1, "r1")
	return p
}

const mpStale = mem.Outcome("r0=1; r1=0")

func evalAllowed(t *testing.T, p *Program, o mem.Outcome) bool {
	t.Helper()
	res, err := Evaluate(p)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if !res.All[o] {
		t.Fatalf("outcome %q is not even a candidate; candidates: %v", o, res.All)
	}
	return res.Allowed[o]
}

func TestMPRelAcqForbidden(t *testing.T) {
	if evalAllowed(t, mp(Rlx, Rel, Acq, Rlx), mpStale) {
		t.Error("MP with release/acquire must forbid the stale read")
	}
}

func TestMPRelaxedAllowed(t *testing.T) {
	if !evalAllowed(t, mp(Rlx, Rlx, Rlx, Rlx), mpStale) {
		t.Error("MP with relaxed atomics must allow the stale read")
	}
}

func TestMPReleaseWithoutAcquireAllowed(t *testing.T) {
	if !evalAllowed(t, mp(Rlx, Rel, Rlx, Rlx), mpStale) {
		t.Error("a release that is read by a relaxed load does not synchronize")
	}
}

func TestMPSeqCstForbidden(t *testing.T) {
	if evalAllowed(t, mp(SC, SC, SC, SC), mpStale) {
		t.Error("MP with SC atomics must forbid the stale read")
	}
}

// TestFigure11RoachMotel reproduces the paper's Figure 11: the MP variant
// where the second store is relaxed and everything else SC. C11 allows the
// relaxed store to roach-motel ahead of the SC store, so the stale outcome
// is allowed.
func TestFigure11RoachMotel(t *testing.T) {
	if !evalAllowed(t, mp(SC, Rlx, SC, SC), mpStale) {
		t.Error("Figure 11: relaxed store may move before the SC store; outcome must be allowed")
	}
}

// sb builds store buffering: T0: st x; r0=ld y. T1: st y; r1=ld x.
func sbTest(sx, ly, sy, lx Order) *Program {
	p := New(2, "x", "y")
	x, y := mem.Const(0), mem.Const(1)
	p.Store(0, sx, x, mem.Const(1))
	p.Load(0, ly, y, 0)
	p.Store(1, sy, y, mem.Const(1))
	p.Load(1, lx, x, 1)
	p.Observe(0, 0, "r0")
	p.Observe(1, 1, "r1")
	return p
}

const sbBoth0 = mem.Outcome("r0=0; r1=0")

func TestSBAllSCForbidden(t *testing.T) {
	if evalAllowed(t, sbTest(SC, SC, SC, SC), sbBoth0) {
		t.Error("SB with all-SC atomics must forbid r0=r1=0")
	}
}

func TestSBRelAcqAllowed(t *testing.T) {
	if !evalAllowed(t, sbTest(Rel, Acq, Rel, Acq), sbBoth0) {
		t.Error("SB with release/acquire must allow r0=r1=0")
	}
}

// wrc builds the paper's Figure 3 shape (write-to-read causality).
func wrc(s0, l1, s1, l2, l3 Order) *Program {
	p := New(2, "x", "y")
	x, y := mem.Const(0), mem.Const(1)
	p.Store(0, s0, x, mem.Const(1))
	p.Load(1, l1, x, 0)
	p.Store(1, s1, y, mem.Const(1))
	p.Load(2, l2, y, 1)
	p.Load(2, l3, x, 2)
	p.Observe(1, 0, "r0")
	p.Observe(2, 1, "r1")
	p.Observe(2, 2, "r2")
	return p
}

const wrcBad = mem.Outcome("r0=1; r1=1; r2=0")

// TestFigure3WRCForbidden: exactly the paper's Figure 3 — relaxed first
// write and first load, release/acquire on y. The causality chain makes the
// outcome forbidden even though the x accesses are relaxed.
func TestFigure3WRCForbidden(t *testing.T) {
	if evalAllowed(t, wrc(Rlx, Rlx, Rel, Acq, Rlx), wrcBad) {
		t.Error("Figure 3 WRC outcome must be forbidden by C11")
	}
}

func TestWRCNoReleaseAllowed(t *testing.T) {
	if !evalAllowed(t, wrc(Rlx, Rlx, Rlx, Acq, Rlx), wrcBad) {
		t.Error("WRC without a release on y must be allowed")
	}
}

func TestWRCNoAcquireAllowed(t *testing.T) {
	if !evalAllowed(t, wrc(Rlx, Rlx, Rel, Rlx, Rlx), wrcBad) {
		t.Error("WRC without an acquire on y must be allowed")
	}
}

// TestWRCForbiddenCount verifies the analytical count behind the paper's
// Section 6.1: of the 243 WRC variants, exactly the 108 with a release
// store to y and an acquire load of y forbid the outcome.
func TestWRCForbiddenCount(t *testing.T) {
	stores := []Order{Rlx, Rel, SC}
	loads := []Order{Rlx, Acq, SC}
	forbidden := 0
	for _, s0 := range stores {
		for _, l1 := range loads {
			for _, s1 := range stores {
				for _, l2 := range loads {
					for _, l3 := range loads {
						if !evalAllowed(t, wrc(s0, l1, s1, l2, l3), wrcBad) {
							forbidden++
						}
					}
				}
			}
		}
	}
	if forbidden != 108 {
		t.Errorf("forbidden WRC variants = %d, want 108 (paper §6.1)", forbidden)
	}
}

// iriw builds the paper's Figure 4 shape.
func iriw(s0, s1, l1, l2, l3, l4 Order) *Program {
	p := New(2, "x", "y")
	x, y := mem.Const(0), mem.Const(1)
	p.Store(0, s0, x, mem.Const(1))
	p.Store(1, s1, y, mem.Const(1))
	p.Load(2, l1, x, 0)
	p.Load(2, l2, y, 1)
	p.Load(3, l3, y, 2)
	p.Load(3, l4, x, 3)
	p.Observe(2, 0, "r0")
	p.Observe(2, 1, "r1")
	p.Observe(3, 2, "r2")
	p.Observe(3, 3, "r3")
	return p
}

const iriwBad = mem.Outcome("r0=1; r1=0; r2=1; r3=0")

func TestFigure4IRIWAllSCForbidden(t *testing.T) {
	if evalAllowed(t, iriw(SC, SC, SC, SC, SC, SC), iriwBad) {
		t.Error("IRIW with all-SC atomics must be forbidden")
	}
}

func TestIRIWRelAcqAllowed(t *testing.T) {
	if !evalAllowed(t, iriw(Rel, Rel, Acq, Acq, Acq, Acq), iriwBad) {
		t.Error("IRIW with release/acquire must be allowed (no total order required)")
	}
}

// TestIRIWForbiddenCount pins the analytical count behind Section 6.1's "4
// buggy executions": IRIW is forbidden exactly when both stores and both
// second loads are SC and the first loads are at least acquire.
func TestIRIWForbiddenCount(t *testing.T) {
	stores := []Order{Rlx, Rel, SC}
	loads := []Order{Rlx, Acq, SC}
	var forbidden []string
	for _, s0 := range stores {
		for _, s1 := range stores {
			for _, l1 := range loads {
				for _, l2 := range loads {
					for _, l3 := range loads {
						for _, l4 := range loads {
							if !evalAllowed(t, iriw(s0, s1, l1, l2, l3, l4), iriwBad) {
								forbidden = append(forbidden,
									s0.String()+s1.String()+l1.String()+l2.String()+l3.String()+l4.String())
							}
						}
					}
				}
			}
		}
	}
	if len(forbidden) != 4 {
		t.Errorf("forbidden IRIW variants = %d (%v), want 4", len(forbidden), forbidden)
	}
}

func TestCoRRAlwaysForbidden(t *testing.T) {
	// T0: x=1; x=2. T1: r0=x; r1=x. Seeing 2 then 1 violates coherence for
	// every memory-order combination, even all-relaxed.
	for _, l1 := range []Order{Rlx, Acq, SC} {
		for _, l2 := range []Order{Rlx, Acq, SC} {
			p := New(1, "x")
			x := mem.Const(0)
			p.Store(0, Rlx, x, mem.Const(1))
			p.Store(0, Rlx, x, mem.Const(2))
			p.Load(1, l1, x, 0)
			p.Load(1, l2, x, 1)
			p.Observe(1, 0, "r0")
			p.Observe(1, 1, "r1")
			if evalAllowed(t, p, "r0=2; r1=1") {
				t.Errorf("CoRR (%v,%v): new-then-old must be forbidden", l1, l2)
			}
		}
	}
}

// TestFigure13LazyCumulativity: the MP variant of Figure 13. The relaxed
// load of y does not synchronize with the release, so the dependent acquire
// load may still see x=0.
func TestFigure13LazyCumulativity(t *testing.T) {
	p := New(2, "x", "y")
	x, y := mem.Const(0), mem.Const(1)
	p.Store(0, Rel, x, mem.Const(1))
	p.Store(0, Rel, y, mem.Const(0)) // stores the location id of x (0)
	p.Load(1, Rlx, y, 0)
	p.Load(1, Acq, mem.FromReg(0), 1) // address dependency on r0
	p.Observe(1, 0, "r0")
	p.Observe(1, 1, "r1")
	// r0=0 either way (both init y and the store have value 0 = &x); the
	// dependent load targets x and may read 0: allowed by C11.
	if !evalAllowed(t, p, "r0=0; r1=0") {
		t.Error("Figure 13: relaxed observation of a release must not synchronize")
	}
}

func TestReleaseSequenceThroughRMW(t *testing.T) {
	// T0: st(x,1,rel); T1: rmw(x,+=1,rlx); T2: r=ld(x,acq) reading the RMW.
	// The RMW continues T0's release sequence, so T2 synchronizes with T0
	// and must then see T0's earlier normal store to y.
	p := New(2, "y", "x")
	y, x := mem.Const(0), mem.Const(1)
	p.Store(0, Rlx, y, mem.Const(1))
	p.Store(0, Rel, x, mem.Const(1))
	p.RMW(1, Rlx, x, mem.Const(1), 0, mem.RMWAdd)
	p.Load(2, Acq, x, 1)
	p.Load(2, Rlx, y, 2)
	p.Observe(2, 1, "rx")
	p.Observe(2, 2, "ry")
	// Reading the RMW's value (2) with ry=0 must be forbidden: sync through
	// the release sequence.
	if evalAllowed(t, p, "rx=2; ry=0") {
		t.Error("release sequence through RMW must synchronize")
	}
}

func TestReleaseSequenceBrokenByOtherThreadStore(t *testing.T) {
	// T0: st(y,1,rlx); st(x,1,rel). T1: st(x,2,rlx). T2: acq-loads x=2 then
	// loads y. T1's plain store breaks T0's release sequence, so no
	// synchronization: ry=0 allowed.
	p := New(2, "y", "x")
	y, x := mem.Const(0), mem.Const(1)
	p.Store(0, Rlx, y, mem.Const(1))
	p.Store(0, Rel, x, mem.Const(1))
	p.Store(1, Rlx, x, mem.Const(2))
	p.Load(2, Acq, x, 1)
	p.Load(2, Rlx, y, 2)
	p.Observe(2, 1, "rx")
	p.Observe(2, 2, "ry")
	if !evalAllowed(t, p, "rx=2; ry=0") {
		t.Error("another thread's store must break the release sequence")
	}
}

func TestFenceSynchronization(t *testing.T) {
	// MP with relaxed accesses but release/acquire fences: forbidden.
	p := New(2, "x", "y")
	x, y := mem.Const(0), mem.Const(1)
	p.Store(0, Rlx, x, mem.Const(1))
	p.FenceOp(0, Rel)
	p.Store(0, Rlx, y, mem.Const(1))
	p.Load(1, Rlx, y, 0)
	p.FenceOp(1, Acq)
	p.Load(1, Rlx, x, 1)
	p.Observe(1, 0, "r0")
	p.Observe(1, 1, "r1")
	if evalAllowed(t, p, "r0=1; r1=0") {
		t.Error("MP with release and acquire fences must be forbidden")
	}
}

func TestSCFencesRestoreSB(t *testing.T) {
	// SB with relaxed accesses and SC fences between them: forbidden
	// (C++11 [atomics.order] p6 via the fence pair).
	p := New(2, "x", "y")
	x, y := mem.Const(0), mem.Const(1)
	p.Store(0, Rlx, x, mem.Const(1))
	p.FenceOp(0, SC)
	p.Load(0, Rlx, y, 0)
	p.Store(1, Rlx, y, mem.Const(1))
	p.FenceOp(1, SC)
	p.Load(1, Rlx, x, 1)
	p.Observe(0, 0, "r0")
	p.Observe(1, 1, "r1")
	if evalAllowed(t, p, "r0=0; r1=0") {
		t.Error("SB with SC fences must be forbidden")
	}
}

func TestDataRaceMakesEverythingAllowed(t *testing.T) {
	// Non-atomic MP: racy, so even the coherence-violating outcome of a
	// same-thread... use stale-read outcome: allowed due to UB.
	p := New(2, "x", "y")
	x, y := mem.Const(0), mem.Const(1)
	p.Store(0, NA, x, mem.Const(1))
	p.Store(0, Rel, y, mem.Const(1))
	p.Load(1, Acq, y, 0)
	p.Load(1, NA, x, 1)
	p.Observe(1, 0, "r0")
	p.Observe(1, 1, "r1")
	// This one is actually race-free when r0=1 (synchronized); but the
	// r0=0 executions race on x (concurrent na-load vs na-store).
	res, err := Evaluate(p)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if !res.Racy {
		t.Fatal("program must be racy")
	}
	for o := range res.All {
		if !res.Allowed[o] {
			t.Errorf("racy program: outcome %q must be allowed (UB)", o)
		}
	}
}

func TestRaceFreeNAProgram(t *testing.T) {
	// Properly synchronized non-atomic MP: not racy, stale read forbidden.
	p := New(2, "x", "y")
	x, y := mem.Const(0), mem.Const(1)
	p.Store(0, NA, x, mem.Const(1))
	p.Store(0, Rel, y, mem.Const(1))
	p.Load(1, Acq, y, 0)
	// The NA load is control-dependent on observing the flag; we model the
	// conditioned path where it only runs after acquire reads 1. For race
	// detection we check the hb relation: with r0=1 there is no race; with
	// r0=0 reading x would race, so a correct program would skip it. Here
	// we simply verify the synchronized outcome set.
	p.Load(1, NA, x, 1)
	res, err := Evaluate(p)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if !res.Racy {
		t.Skip("unconditional NA read races in some executions; covered above")
	}
}

func TestOrderPredicates(t *testing.T) {
	if !SC.IsAcquire() || !SC.IsRelease() {
		t.Error("SC must be both acquire and release")
	}
	if Rlx.IsAcquire() || Rlx.IsRelease() || NA.IsAcquire() {
		t.Error("relaxed/NA must be neither acquire nor release")
	}
	if Acq.IsRelease() || Rel.IsAcquire() {
		t.Error("acq is not release; rel is not acquire")
	}
	for _, o := range []Order{NA, Rlx, Acq, Rel, AcqRel, SC} {
		if o.String() == "" {
			t.Error("empty order name")
		}
	}
}

func TestProgramString(t *testing.T) {
	p := mp(Rlx, Rel, Acq, Rlx)
	s := p.String()
	for _, want := range []string{"T0:", "T1:", "st(x,1,rlx)", "st(y,1,rel)", "r0=ld(y,acq)"} {
		if !contains(s, want) {
			t.Errorf("Program.String() = %q missing %q", s, want)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
