package c11

import (
	"tricheck/internal/mem"
)

// Result is the outcome of evaluating a program against the C11 model.
type Result struct {
	// Allowed is the set of final-state outcomes permitted by C11. If the
	// program is racy (undefined behaviour) this equals All.
	Allowed map[mem.Outcome]bool
	// All is the set of outcomes over every candidate execution, i.e. the
	// outcome universe the microarchitectural side is compared against.
	All map[mem.Outcome]bool
	// Racy reports whether some consistent execution has a data race on a
	// non-atomic access, making the program undefined.
	Racy bool
	// Consistent and Candidates count executions for diagnostics.
	Consistent int
	Candidates int
}

// Forbidden reports whether outcome o is a candidate outcome that C11
// forbids.
func (r *Result) Forbidden(o mem.Outcome) bool {
	return r.All[o] && !r.Allowed[o]
}

// Evaluate runs the C11 axiomatic model over every candidate execution of p
// and returns the allowed outcome set.
func Evaluate(p *Program) (*Result, error) {
	res := &Result{
		Allowed: map[mem.Outcome]bool{},
		All:     map[mem.Outcome]bool{},
	}
	err := mem.Enumerate(p.memp, func(x *mem.Execution) bool {
		res.Candidates++
		o := x.OutcomeOf()
		res.All[o] = true
		ok, racy := Consistent(p, x)
		if ok {
			res.Consistent++
			res.Allowed[o] = true
			if racy {
				res.Racy = true
			}
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	if res.Racy {
		// Undefined behaviour: any outcome is possible.
		for o := range res.All {
			res.Allowed[o] = true
		}
	}
	return res, nil
}

// Consistent reports whether execution x satisfies the C11 consistency
// axioms, and whether it contains a non-atomic data race.
func Consistent(p *Program, x *mem.Execution) (ok, racy bool) {
	c := newChecker(p, x)
	if !c.coherent() {
		return false, false
	}
	if !c.scConsistent() {
		return false, false
	}
	if !c.naReadsVisible() {
		return false, false
	}
	return true, c.hasRace()
}

// checker holds the relations of one candidate execution.
type checker struct {
	p  *Program
	x  *mem.Execution
	n  int
	ev []*mem.Event
	sb [][]bool
	hb [][]bool // (sb ∪ sw)+
}

func newChecker(p *Program, x *mem.Execution) *checker {
	n := len(p.memp.Events())
	c := &checker{p: p, x: x, n: n, ev: p.memp.Events()}
	c.sb = mat(n)
	for _, th := range p.memp.Threads {
		for i := 0; i < len(th); i++ {
			for j := i + 1; j < len(th); j++ {
				c.sb[th[i].GID][th[j].GID] = true
			}
		}
	}
	c.hb = mat(n)
	for a := 0; a < n; a++ {
		copy(c.hb[a], c.sb[a])
	}
	c.addSW()
	closure(c.hb)
	return c
}

func mat(n int) [][]bool {
	m := make([][]bool, n)
	for i := range m {
		m[i] = make([]bool, n)
	}
	return m
}

// closure computes the transitive closure in place (Floyd–Warshall).
func closure(m [][]bool) {
	n := len(m)
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if !m[i][k] {
				continue
			}
			for j := 0; j < n; j++ {
				if m[k][j] {
					m[i][j] = true
				}
			}
		}
	}
}

func (c *checker) atomic(gid int) bool { return c.p.ord[gid] != NA }

func (c *checker) isWrite(gid int) bool { return c.ev[gid].IsWrite() }
func (c *checker) isRead(gid int) bool  { return c.ev[gid].IsRead() }
func (c *checker) isFence(gid int) bool { return c.ev[gid].Kind == mem.Fence }

// releaseSequence returns the C++11 release sequence headed by write w:
// w plus the maximal contiguous run of mo-successors that are either writes
// by w's thread or atomic read-modify-writes.
func (c *checker) releaseSequence(w int) []int {
	loc := c.x.LocOf[w]
	seq := []int{w}
	mo := c.x.MO[loc]
	for i := c.x.MOIndex[w]; i < len(mo); i++ { // MOIndex is 1-based: mo[idx] is the next write
		nxt := mo[i]
		if c.ev[nxt].Thread == c.ev[w].Thread || c.ev[nxt].Kind == mem.RMW {
			seq = append(seq, nxt)
			continue
		}
		break
	}
	return seq
}

// addSW inserts synchronizes-with edges into c.hb (before closure):
// release-write → acquire-read pairs through release sequences, plus the
// C++11 fence synchronization rules.
func (c *checker) addSW() {
	// For each atomic write w, precompute the set of reads that read from
	// w's (hypothetical) release sequence.
	for w := 0; w < c.n; w++ {
		if !c.isWrite(w) || !c.atomic(w) {
			continue
		}
		rs := c.releaseSequence(w)
		inRS := map[int]bool{}
		for _, m := range rs {
			inRS[m] = true
		}
		for r := 0; r < c.n; r++ {
			if !c.isRead(r) || !c.atomic(r) || c.ev[r].Thread == c.ev[w].Thread {
				continue
			}
			src := c.x.RF[r]
			if src == mem.InitWrite || !inRS[src] {
				continue
			}
			wRel := c.p.ord[w].IsRelease()
			rAcq := c.p.ord[r].IsAcquire()
			// Plain release/acquire synchronization.
			if wRel && rAcq {
				c.hb[w][r] = true
			}
			// Fence rules (C++11 29.8p2-4):
			// release fence F sequenced before w, acquire read r.
			if rAcq {
				for f := 0; f < c.n; f++ {
					if c.isFence(f) && c.p.ord[f].IsRelease() && c.sb[f][w] {
						c.hb[f][r] = true
					}
				}
			}
			// release write w, acquire fence G sequenced after r.
			if wRel {
				for g := 0; g < c.n; g++ {
					if c.isFence(g) && c.p.ord[g].IsAcquire() && c.sb[r][g] {
						c.hb[w][g] = true
					}
				}
			}
			// release fence F before w, acquire fence G after r.
			for f := 0; f < c.n; f++ {
				if !(c.isFence(f) && c.p.ord[f].IsRelease() && c.sb[f][w]) {
					continue
				}
				for g := 0; g < c.n; g++ {
					if c.isFence(g) && c.p.ord[g].IsAcquire() && c.sb[r][g] {
						c.hb[f][g] = true
					}
				}
			}
		}
	}
}

// coherent checks irreflexive(hb) and irreflexive(hb ; eco) with
// eco = (rf ∪ mo ∪ fr)+.
func (c *checker) coherent() bool {
	for a := 0; a < c.n; a++ {
		if c.hb[a][a] {
			return false
		}
	}
	eco := mat(c.n)
	for r := 0; r < c.n; r++ {
		if !c.isRead(r) {
			continue
		}
		if src := c.x.RF[r]; src != mem.InitWrite {
			eco[src][r] = true
		}
		for _, w := range c.x.FRSuccessors(r) {
			eco[r][w] = true
		}
	}
	for w1 := 0; w1 < c.n; w1++ {
		if !c.isWrite(w1) {
			continue
		}
		for w2 := 0; w2 < c.n; w2++ {
			if w1 != w2 && c.isWrite(w2) && c.x.SameLoc(w1, w2) && c.x.MOBefore(w1, w2) {
				eco[w1][w2] = true
			}
		}
	}
	closure(eco)
	for a := 0; a < c.n; a++ {
		for b := 0; b < c.n; b++ {
			if c.hb[a][b] && eco[b][a] {
				return false
			}
		}
	}
	return true
}

// moLT compares two write GIDs (or mem.InitWrite) in coherence order at a
// shared location; init precedes every real write.
func (c *checker) moLT(a, b int) bool {
	if a == mem.InitWrite {
		return b != mem.InitWrite
	}
	if b == mem.InitWrite {
		return false
	}
	return c.x.MOBefore(a, b)
}

// scConsistent searches for a strict total order S over all SC events that
// satisfies the original C11 SC axioms.
func (c *checker) scConsistent() bool {
	var sc []int
	for g := 0; g < c.n; g++ {
		if c.p.ord[g] == SC {
			sc = append(sc, g)
		}
	}
	if len(sc) <= 1 {
		return true
	}
	k := len(sc)
	idxOf := map[int]int{}
	for i, g := range sc {
		idxOf[g] = i
	}
	// Forced edges: S consistent with hb, with mo between same-location SC
	// writes, and with rf between SC events.
	must := make([][]bool, k)
	for i := range must {
		must[i] = make([]bool, k)
	}
	for i, a := range sc {
		for j, b := range sc {
			if i == j {
				continue
			}
			if c.hb[a][b] {
				must[i][j] = true
			}
			if c.isWrite(a) && c.isWrite(b) && c.x.SameLoc(a, b) && c.x.MOBefore(a, b) {
				must[i][j] = true
			}
		}
	}
	for _, b := range sc {
		if c.isRead(b) {
			if src := c.x.RF[b]; src != mem.InitWrite {
				if i, isSC := idxOf[src]; isSC {
					must[i][idxOf[b]] = true
				}
			}
		}
	}
	// Enumerate linear extensions of must; accept if any satisfies the SC
	// read and fence restrictions.
	order := make([]int, 0, k)
	used := make([]bool, k)
	var rec func() bool
	rec = func() bool {
		if len(order) == k {
			return c.scOrderOK(sc, order)
		}
		for i := 0; i < k; i++ {
			if used[i] {
				continue
			}
			ok := true
			for j := 0; j < k; j++ {
				if !used[j] && j != i && must[j][i] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			used[i] = true
			order = append(order, i)
			if rec() {
				return true
			}
			order = order[:len(order)-1]
			used[i] = false
		}
		return false
	}
	return rec()
}

// scOrderOK checks the value restrictions of a complete candidate S.
// order[pos] = index into sc.
func (c *checker) scOrderOK(sc []int, order []int) bool {
	k := len(sc)
	pos := make([]int, k)
	for p, i := range order {
		pos[i] = p
	}
	idxOf := map[int]int{}
	for i, g := range sc {
		idxOf[g] = i
	}
	scPos := func(g int) (int, bool) {
		i, ok := idxOf[g]
		if !ok {
			return 0, false
		}
		return pos[i], true
	}
	// (d) SC read restriction: an SC read r of location l must not read a
	// value older than the last SC write to l preceding r in S.
	for _, r := range sc {
		if !c.isRead(r) {
			continue
		}
		rp, _ := scPos(r)
		src := c.x.RF[r]
		for _, w := range sc {
			if w == r || !c.isWrite(w) || !c.x.SameLoc(w, r) {
				continue
			}
			wp, _ := scPos(w)
			if wp < rp && w != src && c.moLT(src, w) {
				return false
			}
		}
	}
	// Fence rules, C++11 [atomics.order] p4–p6. B ranges over all atomic
	// reads (not only SC ones).
	for b := 0; b < c.n; b++ {
		if !c.isRead(b) || !c.atomic(b) {
			continue
		}
		src := c.x.RF[b]
		// p4: X SC fence sequenced before B: B must not observe a value
		// older than the last same-location SC write preceding X in S.
		for _, xf := range sc {
			if !c.isFence(xf) || !c.sb[xf][b] {
				continue
			}
			xp, _ := scPos(xf)
			for _, w := range sc {
				if !c.isWrite(w) || !c.x.SameLoc(w, b) {
					continue
				}
				wp, _ := scPos(w)
				if wp < xp && w != src && c.moLT(src, w) {
					return false
				}
			}
		}
		// p5: atomic write A sequenced before SC fence X, B an SC read with
		// X before B in S: B observes A or something mo-later.
		if bp, bSC := scPos(b); bSC {
			for _, xf := range sc {
				if !c.isFence(xf) {
					continue
				}
				xp, _ := scPos(xf)
				if xp >= bp {
					continue
				}
				for a := 0; a < c.n; a++ {
					if c.isWrite(a) && c.atomic(a) && c.x.SameLoc(a, b) && c.sb[a][xf] && a != src && c.moLT(src, a) {
						return false
					}
				}
			}
		}
		// p6: write A sb X (SC fence), Y (SC fence) sb B, X before Y in S:
		// B observes A or something mo-later.
		for _, yf := range sc {
			if !c.isFence(yf) || !c.sb[yf][b] {
				continue
			}
			yp, _ := scPos(yf)
			for _, xf := range sc {
				if !c.isFence(xf) || xf == yf {
					continue
				}
				xp, _ := scPos(xf)
				if xp >= yp {
					continue
				}
				for a := 0; a < c.n; a++ {
					if c.isWrite(a) && c.atomic(a) && c.x.SameLoc(a, b) && c.sb[a][xf] && a != src && c.moLT(src, a) {
						return false
					}
				}
			}
		}
	}
	return true
}

// naReadsVisible enforces that non-atomic reads observe a visible side
// effect: a write w with w hb r and no same-location write hb-between.
func (c *checker) naReadsVisible() bool {
	for r := 0; r < c.n; r++ {
		if !c.isRead(r) || c.atomic(r) {
			continue
		}
		src := c.x.RF[r]
		if src == mem.InitWrite {
			// Init is visible unless some same-location write happens
			// before r.
			for w := 0; w < c.n; w++ {
				if c.isWrite(w) && c.x.SameLoc(w, r) && c.hb[w][r] {
					return false
				}
			}
			continue
		}
		if !c.hb[src][r] {
			return false
		}
		for w := 0; w < c.n; w++ {
			if w != src && c.isWrite(w) && c.x.SameLoc(w, r) && c.hb[src][w] && c.hb[w][r] {
				return false
			}
		}
	}
	return true
}

// hasRace reports a data race: two concurrent same-location accesses, at
// least one a write and at least one non-atomic, unordered by hb.
func (c *checker) hasRace() bool {
	for a := 0; a < c.n; a++ {
		if c.isFence(a) {
			continue
		}
		for b := a + 1; b < c.n; b++ {
			if c.isFence(b) || c.ev[a].Thread == c.ev[b].Thread {
				continue
			}
			if !c.x.SameLoc(a, b) {
				continue
			}
			if !c.isWrite(a) && !c.isWrite(b) {
				continue
			}
			if c.atomic(a) && c.atomic(b) {
				continue
			}
			if !c.hb[a][b] && !c.hb[b][a] {
				return true
			}
		}
	}
	return false
}
