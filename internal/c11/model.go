package c11

import (
	"math/bits"
	"sync"

	"tricheck/internal/mem"
)

// Result is the outcome of evaluating a program against the C11 model.
type Result struct {
	// Allowed is the set of final-state outcomes permitted by C11. If the
	// program is racy (undefined behaviour) this equals All.
	Allowed map[mem.Outcome]bool
	// All is the set of outcomes over every candidate execution, i.e. the
	// outcome universe the microarchitectural side is compared against.
	All map[mem.Outcome]bool
	// Racy reports whether some consistent execution has a data race on a
	// non-atomic access, making the program undefined.
	Racy bool
	// Consistent and Candidates count executions for diagnostics.
	Consistent int
	Candidates int
}

// Forbidden reports whether outcome o is a candidate outcome that C11
// forbids.
func (r *Result) Forbidden(o mem.Outcome) bool {
	return r.All[o] && !r.Allowed[o]
}

// Evaluate runs the C11 axiomatic model over every candidate execution of p
// and returns the allowed outcome set.
//
// One checker — sequenced-before matrix, happens-before/eco scratch, SC
// search buffers — is shared across the whole enumeration, and outcomes are
// interned through mem.OutcomeCache so the per-candidate map updates run on
// dense ids. Every candidate is still fully checked (the Consistent counter
// is part of the result), and the outcome and allowed sets are bit-identical
// to checking each candidate with a fresh checker.
func Evaluate(p *Program) (*Result, error) {
	res := &Result{}
	cache := mem.AcquireOutcomeCache(p.memp)
	defer mem.ReleaseOutcomeCache(cache)
	var allowed []bool // by dense outcome id
	c := acquireChecker(p)
	defer releaseChecker(c)
	err := mem.Enumerate(p.memp, func(x *mem.Execution) bool {
		res.Candidates++
		_, id := cache.Lookup(x)
		if id == len(allowed) {
			allowed = append(allowed, false)
		}
		c.bind(x)
		ok, racy := c.check()
		if ok {
			res.Consistent++
			allowed[id] = true
			if racy {
				res.Racy = true
			}
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	outs := cache.Outcomes()
	res.All = make(map[mem.Outcome]bool, len(outs))
	res.Allowed = make(map[mem.Outcome]bool, len(outs))
	for id, o := range outs {
		res.All[o] = true
		if allowed[id] {
			res.Allowed[o] = true
		}
	}
	if res.Racy {
		// Undefined behaviour: any outcome is possible.
		for o := range res.All {
			res.Allowed[o] = true
		}
	}
	return res, nil
}

// Consistent reports whether execution x satisfies the C11 consistency
// axioms, and whether it contains a non-atomic data race.
func Consistent(p *Program, x *mem.Execution) (ok, racy bool) {
	c := newEvalChecker(p)
	c.bind(x)
	return c.check()
}

// checker holds the static relations of a program plus reusable scratch for
// checking one candidate execution at a time; bind rebinds it to the next
// candidate without reallocating.
type checker struct {
	p  *Program
	x  *mem.Execution
	n  int
	ev []*mem.Event
	sb bitmat
	hb bitmat // (sb ∪ sw)+

	// Per-candidate scratch, reused across bind calls.
	eco   bitmat
	seq   []int  // releaseSequence result buffer
	inRS  []bool // by gid; cleared after each use
	frBuf []int
	scSet []int // SC event gids
	scIdx []int // by gid: index into scSet, or -1
	must  [][]bool
	order []int
	used  []bool
	pos   []int
}

// newEvalChecker builds a checker for p: the sequenced-before matrix is
// computed once here, everything execution-dependent is filled in by bind.
func newEvalChecker(p *Program) *checker {
	c := &checker{}
	c.bindProgram(p)
	return c
}

// bindProgram points the checker at program p, resizing (and where
// necessary reallocating) its matrices and scratch buffers.
func (c *checker) bindProgram(p *Program) {
	n := len(p.memp.Events())
	c.p, c.n, c.ev = p, n, p.memp.Events()
	ww := (n + 63) / 64
	if ww == 0 {
		ww = 1
	}
	if cap(c.sb.bits) < n*ww {
		c.sb = newBitmat(n)
		c.hb = newBitmat(n)
		c.eco = newBitmat(n)
	} else {
		c.sb.ww, c.sb.bits = ww, c.sb.bits[:n*ww]
		clear(c.sb.bits)
		// hb is fully overwritten by bind; eco is cleared by coherent.
		c.hb.ww, c.hb.bits = ww, c.hb.bits[:n*ww]
		c.eco.ww, c.eco.bits = ww, c.eco.bits[:n*ww]
	}
	for _, th := range p.memp.Threads {
		for i := 0; i < len(th); i++ {
			for j := i + 1; j < len(th); j++ {
				c.sb.set(th[i].GID, th[j].GID)
			}
		}
	}
	if len(c.must) < n {
		c.must = mat(n) // scConsistent clears the rows it uses
	}
	if cap(c.seq) < n {
		c.seq = make([]int, 0, n)
	}
	if len(c.inRS) < n {
		c.inRS = make([]bool, n)
	} else {
		clear(c.inRS[:n]) // addSW leaves it false, but don't rely on it
	}
	if cap(c.scSet) < n {
		c.scSet = make([]int, 0, n)
	}
	if len(c.scIdx) < n {
		c.scIdx = make([]int, n)
	}
	for i := 0; i < n; i++ {
		c.scIdx[i] = -1
	}
	if cap(c.order) < n {
		c.order = make([]int, 0, n)
	}
	if len(c.used) < n {
		c.used = make([]bool, n)
	}
	if len(c.pos) < n {
		c.pos = make([]int, n)
	}
}

// checkerPool recycles checkers between Evaluate calls: one checker is
// bound per evaluation and its matrices otherwise dominate the C11
// side's allocation profile on cold sweeps.
var checkerPool sync.Pool

func acquireChecker(p *Program) *checker {
	if v := checkerPool.Get(); v != nil {
		c := v.(*checker)
		c.bindProgram(p)
		return c
	}
	return newEvalChecker(p)
}

func releaseChecker(c *checker) {
	c.p, c.x, c.ev = nil, nil, nil
	checkerPool.Put(c)
}

// bind points the checker at execution x and recomputes happens-before.
func (c *checker) bind(x *mem.Execution) {
	c.x = x
	copy(c.hb.bits, c.sb.bits)
	c.addSW()
	closure(&c.hb, c.n)
}

// check runs the consistency axioms against the bound execution.
func (c *checker) check() (ok, racy bool) {
	if !c.coherent() {
		return false, false
	}
	if !c.scConsistent() {
		return false, false
	}
	if !c.naReadsVisible() {
		return false, false
	}
	return true, c.hasRace()
}

func mat(n int) [][]bool {
	// One flat backing array: per-row allocation showed up in cold-sweep
	// profiles.
	m := make([][]bool, n)
	back := make([]bool, n*n)
	for i := range m {
		m[i] = back[i*n : (i+1)*n : (i+1)*n]
	}
	return m
}

// bitmat is a dense n×n relation stored as bitset rows. Litmus programs
// have at most a few dozen events, so a row is one or two words and the
// per-candidate Floyd–Warshall closures run on whole words instead of
// byte loads.
type bitmat struct {
	ww   int // words per row
	bits []uint64
}

func newBitmat(n int) bitmat {
	ww := (n + 63) / 64
	if ww == 0 {
		ww = 1
	}
	return bitmat{ww: ww, bits: make([]uint64, n*ww)}
}

func (m *bitmat) row(i int) []uint64 { return m.bits[i*m.ww : (i+1)*m.ww] }

func (m *bitmat) get(i, j int) bool {
	return m.bits[i*m.ww+j>>6]&(1<<(uint(j)&63)) != 0
}

func (m *bitmat) set(i, j int) { m.bits[i*m.ww+j>>6] |= 1 << (uint(j) & 63) }

// closure computes the transitive closure in place (Floyd–Warshall over
// bitset rows: row i absorbs row k whenever i reaches k).
func closure(m *bitmat, n int) {
	for k := 0; k < n; k++ {
		kr := m.row(k)
		for i := 0; i < n; i++ {
			if !m.get(i, k) {
				continue
			}
			ir := m.row(i)
			for t, w := range kr {
				ir[t] |= w
			}
		}
	}
}

func (c *checker) atomic(gid int) bool { return c.p.ord[gid] != NA }

func (c *checker) isWrite(gid int) bool { return c.ev[gid].IsWrite() }
func (c *checker) isRead(gid int) bool  { return c.ev[gid].IsRead() }
func (c *checker) isFence(gid int) bool { return c.ev[gid].Kind == mem.Fence }

// releaseSequence returns the C++11 release sequence headed by write w:
// w plus the maximal contiguous run of mo-successors that are either writes
// by w's thread or atomic read-modify-writes.
func (c *checker) releaseSequence(w int) []int {
	loc := c.x.LocOf[w]
	seq := append(c.seq[:0], w)
	mo := c.x.MO[loc]
	for i := c.x.MOIndex[w]; i < len(mo); i++ { // MOIndex is 1-based: mo[idx] is the next write
		nxt := mo[i]
		if c.ev[nxt].Thread == c.ev[w].Thread || c.ev[nxt].Kind == mem.RMW {
			seq = append(seq, nxt)
			continue
		}
		break
	}
	c.seq = seq
	return seq
}

// addSW inserts synchronizes-with edges into c.hb (before closure):
// release-write → acquire-read pairs through release sequences, plus the
// C++11 fence synchronization rules.
func (c *checker) addSW() {
	// For each atomic write w, precompute the set of reads that read from
	// w's (hypothetical) release sequence.
	for w := 0; w < c.n; w++ {
		if !c.isWrite(w) || !c.atomic(w) {
			continue
		}
		rs := c.releaseSequence(w)
		inRS := c.inRS
		for _, m := range rs {
			inRS[m] = true
		}
		for r := 0; r < c.n; r++ {
			if !c.isRead(r) || !c.atomic(r) || c.ev[r].Thread == c.ev[w].Thread {
				continue
			}
			src := c.x.RF[r]
			if src == mem.InitWrite || !inRS[src] {
				continue
			}
			wRel := c.p.ord[w].IsRelease()
			rAcq := c.p.ord[r].IsAcquire()
			// Plain release/acquire synchronization.
			if wRel && rAcq {
				c.hb.set(w, r)
			}
			// Fence rules (C++11 29.8p2-4):
			// release fence F sequenced before w, acquire read r.
			if rAcq {
				for f := 0; f < c.n; f++ {
					if c.isFence(f) && c.p.ord[f].IsRelease() && c.sb.get(f, w) {
						c.hb.set(f, r)
					}
				}
			}
			// release write w, acquire fence G sequenced after r.
			if wRel {
				for g := 0; g < c.n; g++ {
					if c.isFence(g) && c.p.ord[g].IsAcquire() && c.sb.get(r, g) {
						c.hb.set(w, g)
					}
				}
			}
			// release fence F before w, acquire fence G after r.
			for f := 0; f < c.n; f++ {
				if !(c.isFence(f) && c.p.ord[f].IsRelease() && c.sb.get(f, w)) {
					continue
				}
				for g := 0; g < c.n; g++ {
					if c.isFence(g) && c.p.ord[g].IsAcquire() && c.sb.get(r, g) {
						c.hb.set(f, g)
					}
				}
			}
		}
		for _, m := range rs {
			inRS[m] = false
		}
	}
}

// coherent checks irreflexive(hb) and irreflexive(hb ; eco) with
// eco = (rf ∪ mo ∪ fr)+.
func (c *checker) coherent() bool {
	for a := 0; a < c.n; a++ {
		if c.hb.get(a, a) {
			return false
		}
	}
	eco := &c.eco
	clear(eco.bits)
	for r := 0; r < c.n; r++ {
		if !c.isRead(r) {
			continue
		}
		if src := c.x.RF[r]; src != mem.InitWrite {
			eco.set(src, r)
		}
		c.frBuf = c.x.AppendFRSuccessors(r, c.frBuf[:0])
		for _, w := range c.frBuf {
			eco.set(r, w)
		}
	}
	for w1 := 0; w1 < c.n; w1++ {
		if !c.isWrite(w1) {
			continue
		}
		for w2 := 0; w2 < c.n; w2++ {
			if w1 != w2 && c.isWrite(w2) && c.x.SameLoc(w1, w2) && c.x.MOBefore(w1, w2) {
				eco.set(w1, w2)
			}
		}
	}
	closure(eco, c.n)
	for a := 0; a < c.n; a++ {
		row := c.hb.row(a)
		for wi, wv := range row {
			for wv != 0 {
				b := wi<<6 + bits.TrailingZeros64(wv)
				wv &= wv - 1
				if eco.get(b, a) {
					return false
				}
			}
		}
	}
	return true
}

// moLT compares two write GIDs (or mem.InitWrite) in coherence order at a
// shared location; init precedes every real write.
func (c *checker) moLT(a, b int) bool {
	if a == mem.InitWrite {
		return b != mem.InitWrite
	}
	if b == mem.InitWrite {
		return false
	}
	return c.x.MOBefore(a, b)
}

// scConsistent searches for a strict total order S over all SC events that
// satisfies the original C11 SC axioms.
func (c *checker) scConsistent() bool {
	sc := c.scSet[:0]
	for g := 0; g < c.n; g++ {
		if c.p.ord[g] == SC {
			sc = append(sc, g)
		}
	}
	c.scSet = sc
	if len(sc) <= 1 {
		return true
	}
	k := len(sc)
	for i, g := range sc {
		c.scIdx[g] = i
	}
	// Forced edges: S consistent with hb, with mo between same-location SC
	// writes, and with rf between SC events.
	must := c.must
	for i := 0; i < k; i++ {
		clear(must[i][:k])
	}
	for i, a := range sc {
		for j, b := range sc {
			if i == j {
				continue
			}
			if c.hb.get(a, b) {
				must[i][j] = true
			}
			if c.isWrite(a) && c.isWrite(b) && c.x.SameLoc(a, b) && c.x.MOBefore(a, b) {
				must[i][j] = true
			}
		}
	}
	for _, b := range sc {
		if c.isRead(b) {
			if src := c.x.RF[b]; src != mem.InitWrite {
				if i := c.scIdx[src]; i >= 0 {
					must[i][c.scIdx[b]] = true
				}
			}
		}
	}
	// Enumerate linear extensions of must; accept if any satisfies the SC
	// read and fence restrictions.
	order := c.order[:0]
	used := c.used[:k]
	clear(used)
	var rec func() bool
	rec = func() bool {
		if len(order) == k {
			return c.scOrderOK(sc, order)
		}
		for i := 0; i < k; i++ {
			if used[i] {
				continue
			}
			ok := true
			for j := 0; j < k; j++ {
				if !used[j] && j != i && must[j][i] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			used[i] = true
			order = append(order, i)
			if rec() {
				return true
			}
			order = order[:len(order)-1]
			used[i] = false
		}
		return false
	}
	res := rec()
	for _, g := range sc {
		c.scIdx[g] = -1
	}
	return res
}

// scOrderOK checks the value restrictions of a complete candidate S.
// order[pos] = index into sc.
func (c *checker) scOrderOK(sc []int, order []int) bool {
	k := len(sc)
	pos := c.pos[:k]
	for p, i := range order {
		pos[i] = p
	}
	// c.scIdx is populated by the calling scConsistent.
	scPos := func(g int) (int, bool) {
		i := c.scIdx[g]
		if i < 0 {
			return 0, false
		}
		return pos[i], true
	}
	// (d) SC read restriction: an SC read r of location l must not read a
	// value older than the last SC write to l preceding r in S.
	for _, r := range sc {
		if !c.isRead(r) {
			continue
		}
		rp, _ := scPos(r)
		src := c.x.RF[r]
		for _, w := range sc {
			if w == r || !c.isWrite(w) || !c.x.SameLoc(w, r) {
				continue
			}
			wp, _ := scPos(w)
			if wp < rp && w != src && c.moLT(src, w) {
				return false
			}
		}
	}
	// Fence rules, C++11 [atomics.order] p4–p6. B ranges over all atomic
	// reads (not only SC ones).
	for b := 0; b < c.n; b++ {
		if !c.isRead(b) || !c.atomic(b) {
			continue
		}
		src := c.x.RF[b]
		// p4: X SC fence sequenced before B: B must not observe a value
		// older than the last same-location SC write preceding X in S.
		for _, xf := range sc {
			if !c.isFence(xf) || !c.sb.get(xf, b) {
				continue
			}
			xp, _ := scPos(xf)
			for _, w := range sc {
				if !c.isWrite(w) || !c.x.SameLoc(w, b) {
					continue
				}
				wp, _ := scPos(w)
				if wp < xp && w != src && c.moLT(src, w) {
					return false
				}
			}
		}
		// p5: atomic write A sequenced before SC fence X, B an SC read with
		// X before B in S: B observes A or something mo-later.
		if bp, bSC := scPos(b); bSC {
			for _, xf := range sc {
				if !c.isFence(xf) {
					continue
				}
				xp, _ := scPos(xf)
				if xp >= bp {
					continue
				}
				for a := 0; a < c.n; a++ {
					if c.isWrite(a) && c.atomic(a) && c.x.SameLoc(a, b) && c.sb.get(a, xf) && a != src && c.moLT(src, a) {
						return false
					}
				}
			}
		}
		// p6: write A sb X (SC fence), Y (SC fence) sb B, X before Y in S:
		// B observes A or something mo-later.
		for _, yf := range sc {
			if !c.isFence(yf) || !c.sb.get(yf, b) {
				continue
			}
			yp, _ := scPos(yf)
			for _, xf := range sc {
				if !c.isFence(xf) || xf == yf {
					continue
				}
				xp, _ := scPos(xf)
				if xp >= yp {
					continue
				}
				for a := 0; a < c.n; a++ {
					if c.isWrite(a) && c.atomic(a) && c.x.SameLoc(a, b) && c.sb.get(a, xf) && a != src && c.moLT(src, a) {
						return false
					}
				}
			}
		}
	}
	return true
}

// naReadsVisible enforces that non-atomic reads observe a visible side
// effect: a write w with w hb r and no same-location write hb-between.
func (c *checker) naReadsVisible() bool {
	for r := 0; r < c.n; r++ {
		if !c.isRead(r) || c.atomic(r) {
			continue
		}
		src := c.x.RF[r]
		if src == mem.InitWrite {
			// Init is visible unless some same-location write happens
			// before r.
			for w := 0; w < c.n; w++ {
				if c.isWrite(w) && c.x.SameLoc(w, r) && c.hb.get(w, r) {
					return false
				}
			}
			continue
		}
		if !c.hb.get(src, r) {
			return false
		}
		for w := 0; w < c.n; w++ {
			if w != src && c.isWrite(w) && c.x.SameLoc(w, r) && c.hb.get(src, w) && c.hb.get(w, r) {
				return false
			}
		}
	}
	return true
}

// hasRace reports a data race: two concurrent same-location accesses, at
// least one a write and at least one non-atomic, unordered by hb.
func (c *checker) hasRace() bool {
	for a := 0; a < c.n; a++ {
		if c.isFence(a) {
			continue
		}
		for b := a + 1; b < c.n; b++ {
			if c.isFence(b) || c.ev[a].Thread == c.ev[b].Thread {
				continue
			}
			if !c.x.SameLoc(a, b) {
				continue
			}
			if !c.isWrite(a) && !c.isWrite(b) {
				continue
			}
			if c.atomic(a) && c.atomic(b) {
				continue
			}
			if !c.hb.get(a, b) && !c.hb.get(b, a) {
				return true
			}
		}
	}
	return false
}
