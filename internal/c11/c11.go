// Package c11 implements an axiomatic evaluator for the C11/C++11 memory
// model — the role played by the Herd C11 model in the TriCheck paper
// (Section 3.1). Given a multi-threaded C11 litmus test it enumerates
// candidate executions (via internal/mem) and filters them with the C11
// consistency axioms, yielding the set of allowed final-state outcomes.
//
// The model follows Batty et al.'s formalisation as used by the paper:
//
//   - happens-before hb = (sequenced-before ∪ synchronizes-with)+ with
//     release/acquire synchronization through C++11 release sequences,
//     including fence synchronization;
//   - coherence stated as irreflexivity of hb and of hb;eco where
//     eco = (rf ∪ mo ∪ fr)+ (equivalent to Batty's CoRR/CoWW/CoRW/CoWR
//     axioms but easier to audit);
//   - the ORIGINAL C11 sequential-consistency axiom: a strict total order S
//     over all SC events consistent with hb and mo, with the SC-read
//     restriction and the C++11 SC-fence rules. This is deliberately not
//     RC11's weaker psc axiom: the paper's counts (e.g. exactly 2 forbidden
//     RWC variants and 4 forbidden IRIW variants) depend on S being
//     consistent with the full happens-before relation;
//   - data races on non-atomic accesses make the program undefined, in
//     which case every candidate outcome is allowed.
//
// Consume ordering is not modelled (treated as unsupported), matching the
// paper's litmus suite which never uses memory_order_consume.
package c11

import (
	"fmt"

	"tricheck/internal/mem"
)

// Order is a C11 memory order (memory_order_* constants), plus NA for
// non-atomic accesses.
type Order uint8

// Memory orders. Con (consume) is intentionally absent.
const (
	// NA marks a non-atomic access; racy use is undefined behaviour.
	NA Order = iota
	// Rlx is memory_order_relaxed.
	Rlx
	// Acq is memory_order_acquire (loads and fences).
	Acq
	// Rel is memory_order_release (stores and fences).
	Rel
	// AcqRel is memory_order_acq_rel (RMWs and fences).
	AcqRel
	// SC is memory_order_seq_cst.
	SC
)

// String returns the conventional short name of the order.
func (o Order) String() string {
	switch o {
	case NA:
		return "na"
	case Rlx:
		return "rlx"
	case Acq:
		return "acq"
	case Rel:
		return "rel"
	case AcqRel:
		return "acq_rel"
	case SC:
		return "sc"
	}
	return fmt.Sprintf("Order(%d)", uint8(o))
}

// IsAcquire reports whether the order has acquire semantics on a load/fence.
func (o Order) IsAcquire() bool { return o == Acq || o == AcqRel || o == SC }

// IsRelease reports whether the order has release semantics on a store/fence.
func (o Order) IsRelease() bool { return o == Rel || o == AcqRel || o == SC }

// OpKind classifies a C11 operation.
type OpKind uint8

// Operation kinds.
const (
	// OpLoad is an atomic or non-atomic load.
	OpLoad OpKind = iota
	// OpStore is an atomic or non-atomic store.
	OpStore
	// OpRMW is an atomic read-modify-write.
	OpRMW
	// OpFence is a fence with the given order.
	OpFence
)

// Op is a single C11 operation as authored in a litmus test.
type Op struct {
	Kind OpKind
	Ord  Order
	// Addr is the accessed location (constant or register for an address
	// dependency). Unused for fences.
	Addr mem.Operand
	// Data is the stored value for stores / the RMW operand.
	Data mem.Operand
	// Dst receives the loaded value for loads/RMWs (mem.NoDst if unused).
	Dst int
	// RMWOp selects the RMW function when Kind == OpRMW.
	RMWOp mem.RMWKind
	// CtrlDepOn lists same-thread indices of loads this op is
	// control-dependent on.
	CtrlDepOn []int
}

// Program is a C11 litmus-test program. Build it with the Add* methods,
// then evaluate with Evaluate. The zero value is not usable; call New.
type Program struct {
	memp *mem.Program
	// Ops mirrors the per-thread structure for rendering.
	Ops [][]Op
	// per-GID metadata
	ord  []Order
	kind []OpKind
}

// New returns an empty program over nlocs locations with optional names.
func New(nlocs int, names ...string) *Program {
	return &Program{memp: mem.NewProgram(nlocs, names...)}
}

// Mem exposes the underlying event program (used by compile and tests).
func (p *Program) Mem() *mem.Program { return p.memp }

// OrderOf returns the memory order of the event with the given GID.
func (p *Program) OrderOf(gid int) Order { return p.ord[gid] }

// KindOf returns the operation kind of the event with the given GID.
func (p *Program) KindOf(gid int) OpKind { return p.kind[gid] }

func (p *Program) add(t int, op Op) *mem.Event {
	var ev mem.Event
	switch op.Kind {
	case OpLoad:
		ev = mem.Event{Kind: mem.Read, Addr: op.Addr, Dst: op.Dst}
	case OpStore:
		ev = mem.Event{Kind: mem.Write, Addr: op.Addr, Data: op.Data, Dst: mem.NoDst}
	case OpRMW:
		ev = mem.Event{Kind: mem.RMW, Addr: op.Addr, Data: op.Data, Dst: op.Dst, RMWOp: op.RMWOp}
	case OpFence:
		ev = mem.Event{Kind: mem.Fence, Dst: mem.NoDst}
	}
	ev.CtrlDepOn = op.CtrlDepOn
	ev.Tag = len(p.ord)
	e := p.memp.Add(t, ev)
	for len(p.Ops) <= t {
		p.Ops = append(p.Ops, nil)
	}
	p.Ops[t] = append(p.Ops[t], op)
	p.ord = append(p.ord, op.Ord)
	p.kind = append(p.kind, op.Kind)
	return e
}

// Load appends "dst = load(addr, ord)" to thread t and returns its GID.
func (p *Program) Load(t int, ord Order, addr mem.Operand, dst int) int {
	return p.add(t, Op{Kind: OpLoad, Ord: ord, Addr: addr, Dst: dst}).GID
}

// Store appends "store(addr, data, ord)" to thread t and returns its GID.
func (p *Program) Store(t int, ord Order, addr, data mem.Operand) int {
	return p.add(t, Op{Kind: OpStore, Ord: ord, Addr: addr, Data: data}).GID
}

// RMW appends an atomic read-modify-write and returns its GID.
func (p *Program) RMW(t int, ord Order, addr, data mem.Operand, dst int, fn mem.RMWKind) int {
	return p.add(t, Op{Kind: OpRMW, Ord: ord, Addr: addr, Data: data, Dst: dst, RMWOp: fn}).GID
}

// FenceOp appends "atomic_thread_fence(ord)" to thread t and returns its GID.
func (p *Program) FenceOp(t int, ord Order) int {
	return p.add(t, Op{Kind: OpFence, Ord: ord}).GID
}

// LoadDep appends a load whose execution is control-dependent on the loads
// at the given same-thread indices.
func (p *Program) LoadDep(t int, ord Order, addr mem.Operand, dst int, ctrlDeps []int) int {
	return p.add(t, Op{Kind: OpLoad, Ord: ord, Addr: addr, Dst: dst, CtrlDepOn: ctrlDeps}).GID
}

// StoreDep appends a store with explicit control dependencies.
func (p *Program) StoreDep(t int, ord Order, addr, data mem.Operand, ctrlDeps []int) int {
	return p.add(t, Op{Kind: OpStore, Ord: ord, Addr: addr, Data: data, CtrlDepOn: ctrlDeps}).GID
}

// Observe registers thread t's register reg under the given outcome label.
func (p *Program) Observe(t, reg int, label string) {
	p.memp.AddObserver(t, reg, label)
}

// ObserveMem registers a location's final value under the given label.
func (p *Program) ObserveMem(loc mem.Loc, label string) {
	p.memp.AddMemObserver(loc, label)
}

// NumThreads returns the thread count.
func (p *Program) NumThreads() int { return p.memp.NumThreads() }

// String renders the program in a litmus-like textual form.
func (p *Program) String() string {
	s := ""
	for t, ops := range p.Ops {
		s += fmt.Sprintf("T%d:", t)
		for _, op := range ops {
			s += " " + p.opString(op) + ";"
		}
		s += "\n"
	}
	return s
}

func (p *Program) opString(op Op) string {
	loc := func(o mem.Operand) string {
		if o.Kind == mem.OpConst {
			return p.memp.LocName(mem.Loc(o.Const))
		}
		return fmt.Sprintf("[r%d]", o.Reg)
	}
	val := func(o mem.Operand) string {
		if o.Kind == mem.OpConst {
			return fmt.Sprintf("%d", o.Const)
		}
		return fmt.Sprintf("r%d", o.Reg)
	}
	switch op.Kind {
	case OpLoad:
		return fmt.Sprintf("r%d=ld(%s,%s)", op.Dst, loc(op.Addr), op.Ord)
	case OpStore:
		return fmt.Sprintf("st(%s,%s,%s)", loc(op.Addr), val(op.Data), op.Ord)
	case OpRMW:
		return fmt.Sprintf("r%d=rmw(%s,%s,%s)", op.Dst, loc(op.Addr), val(op.Data), op.Ord)
	case OpFence:
		return fmt.Sprintf("fence(%s)", op.Ord)
	}
	return "?"
}
