package c11

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tricheck/internal/mem"
)

// Tests for the original-C11 SC axioms: the total order S, the SC-read
// restriction, and the [atomics.order] p4–p6 fence rules — each pinned by
// a litmus test that distinguishes it.

// TestSCReadRestriction: an SC read must not observe a value older than
// the last same-location SC write preceding it in S.
func TestSCReadRestriction(t *testing.T) {
	// T0: st(x,1,sc). T1: st(x,2,sc); r0=ld(x,sc).
	// T1's read follows its own SC write in S (sb ⊆ hb consistency), so it
	// can never return the init value 0, and returning 1 requires
	// mo(2) < mo(1)... which CoWW+S ordering also constrains.
	p := New(1, "x")
	x := mem.Const(0)
	p.Store(0, SC, x, mem.Const(1))
	p.Store(1, SC, x, mem.Const(2))
	p.Load(1, SC, x, 0)
	p.Observe(1, 0, "r0")
	res, err := Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Allowed["r0=0"] {
		t.Error("SC read observed init past its own thread's SC write")
	}
	if !res.Allowed["r0=2"] {
		t.Error("reading the own write must be allowed")
	}
	if !res.Allowed["r0=1"] {
		t.Error("reading T0's write (mo-after own) must be allowed")
	}
}

// TestP5WriteBeforeFence: atomic write A sequenced before an SC fence X,
// SC read B with X <S B must observe A or something newer.
func TestP5WriteBeforeFence(t *testing.T) {
	// T0: st(x,1,rlx); fence(sc); st(y,1,sc). T1: r0=ld(y,sc); r1=ld(x,sc).
	// If T1 sees y==1: Wy <S r0 forces X <S r0 (hb: X sb Wy... X <S via
	// hb-consistency through S on {X, Wy, r0, r1}), and p5 then forbids
	// r1 reading init.
	p := New(2, "x", "y")
	x, y := mem.Const(0), mem.Const(1)
	p.Store(0, Rlx, x, mem.Const(1))
	p.FenceOp(0, SC)
	p.Store(0, SC, y, mem.Const(1))
	p.Load(1, SC, y, 0)
	p.Load(1, SC, x, 1)
	p.Observe(1, 0, "r0")
	p.Observe(1, 1, "r1")
	res, err := Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Allowed["r0=1; r1=0"] {
		t.Error("p5: SC read after the fence in S must observe the pre-fence write")
	}
}

// TestP4FenceBeforeRead: a read sequenced after an SC fence X must not
// observe a value older than the last same-location SC write before X in S.
func TestP4FenceBeforeRead(t *testing.T) {
	// T0: st(x,1,sc). T1: fence(sc); r0=ld(x,rlx).
	// In executions whose S places Wx before the fence, the relaxed read
	// must see 1. Since S can also place the fence first, r0=0 stays
	// allowed overall — p4 is existential over S. To pin p4 we must force
	// the S order: have T1 first SC-read a flag written after Wx... Use:
	// T0: st(x,1,sc); st(y,1,sc). T1: r0=ld(y,sc); fence(sc); r1=ld(x,rlx).
	p := New(2, "x", "y")
	x, y := mem.Const(0), mem.Const(1)
	p.Store(0, SC, x, mem.Const(1))
	p.Store(0, SC, y, mem.Const(1))
	p.Load(1, SC, y, 0)
	p.FenceOp(1, SC)
	p.Load(1, Rlx, x, 1)
	p.Observe(1, 0, "r0")
	p.Observe(1, 1, "r1")
	res, err := Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	// r0=1 ⇒ Wy <S r0 <S fence (hb), and Wx <S Wy (hb) ⇒ Wx <S fence:
	// p4 forbids the stale r1=0.
	if res.Allowed["r0=1; r1=0"] {
		t.Error("p4: relaxed read after SC fence must see SC writes ordered before the fence")
	}
	if !res.Allowed["r0=0; r1=0"] {
		t.Error("without the flag the stale read stays allowed")
	}
}

// TestP6FencePair is the SB-with-fences case: writes before SC fences,
// reads after them, fence order forcing visibility.
func TestP6FencePair(t *testing.T) {
	p := New(2, "x", "y")
	x, y := mem.Const(0), mem.Const(1)
	p.Store(0, Rlx, x, mem.Const(1))
	p.FenceOp(0, SC)
	p.Load(0, Rlx, y, 0)
	p.Store(1, Rlx, y, mem.Const(1))
	p.FenceOp(1, SC)
	p.Load(1, Rlx, x, 1)
	p.Observe(0, 0, "r0")
	p.Observe(1, 1, "r1")
	res, err := Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Allowed["r0=0; r1=0"] {
		t.Error("p6: SB through SC fences must be forbidden")
	}
	if !res.Allowed["r0=1; r1=1"] {
		t.Error("benign SB outcome must stay allowed")
	}
}

// TestSTotalOrderConsistentWithHB: hb between SC events (even through
// non-SC intermediaries) constrains S — the property the RWC count
// depends on.
func TestSTotalOrderConsistentWithHB(t *testing.T) {
	// T0: st(x,1,sc). T1: r0=ld(x,acq); r1=ld(y,sc). T2: st(y,1,sc);
	// r2=ld(x,sc). RWC forbidden iff the acquire load creates
	// hb(Wx, r1) forcing Wx <S r1.
	p := New(2, "x", "y")
	x, y := mem.Const(0), mem.Const(1)
	p.Store(0, SC, x, mem.Const(1))
	p.Load(1, Acq, x, 0)
	p.Load(1, SC, y, 1)
	p.Store(2, SC, y, mem.Const(1))
	p.Load(2, SC, x, 2)
	p.Observe(1, 0, "r0")
	p.Observe(1, 1, "r1")
	p.Observe(2, 2, "r2")
	res, err := Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Allowed["r0=1; r1=0; r2=0"] {
		t.Error("S must respect hb through the acquire load (RWC mechanism)")
	}
	// With a relaxed first load there is no hb into r1: allowed.
	p2 := New(2, "x", "y")
	p2.Store(0, SC, x, mem.Const(1))
	p2.Load(1, Rlx, x, 0)
	p2.Load(1, SC, y, 1)
	p2.Store(2, SC, y, mem.Const(1))
	p2.Load(2, SC, x, 2)
	p2.Observe(1, 0, "r0")
	p2.Observe(1, 1, "r1")
	p2.Observe(2, 2, "r2")
	res2, err := Evaluate(p2)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Allowed["r0=1; r1=0; r2=0"] {
		t.Error("without hb into the SC read, some S order must allow RWC")
	}
}

// TestQuickStrengtheningShrinksAllowed: replacing one memory order by a
// stronger one never enlarges the allowed outcome set (C11 monotonicity).
func TestQuickStrengtheningShrinksAllowed(t *testing.T) {
	build := func(orders [4]Order) *Program {
		p := New(2, "x", "y")
		x, y := mem.Const(0), mem.Const(1)
		p.Store(0, orders[0], x, mem.Const(1))
		p.Store(0, orders[1], y, mem.Const(1))
		p.Load(1, orders[2], y, 0)
		p.Load(1, orders[3], x, 1)
		p.Observe(1, 0, "r0")
		p.Observe(1, 1, "r1")
		return p
	}
	strengthen := map[Order]Order{Rlx: Rel, Rel: SC, Acq: SC, SC: SC}
	strengthenLoad := map[Order]Order{Rlx: Acq, Acq: SC, SC: SC}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		stores := []Order{Rlx, Rel, SC}
		loads := []Order{Rlx, Acq, SC}
		orders := [4]Order{
			stores[rng.Intn(3)], stores[rng.Intn(3)],
			loads[rng.Intn(3)], loads[rng.Intn(3)],
		}
		slot := rng.Intn(4)
		stronger := orders
		if slot < 2 {
			stronger[slot] = strengthen[orders[slot]]
		} else {
			stronger[slot] = strengthenLoad[orders[slot]]
		}
		weak, err := Evaluate(build(orders))
		if err != nil {
			return false
		}
		strong, err := Evaluate(build(stronger))
		if err != nil {
			return false
		}
		for o := range strong.Allowed {
			if !weak.Allowed[o] {
				t.Logf("orders %v slot %d: %q allowed only when stronger", orders, slot, o)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestRMWAtC11Level: a successful RMW chains release sequences and
// synchronizes as both acquire and release with AcqRel.
func TestRMWAtC11Level(t *testing.T) {
	// T0: st(d,1,na-free rlx); st(x,1,rel). T1: rmw(x,+1,acq_rel).
	// T2: r=ld(x,acq)==2; r2=ld(d,rlx) must see 1 (sync through the RMW).
	p := New(2, "d", "x")
	d, x := mem.Const(0), mem.Const(1)
	p.Store(0, Rlx, d, mem.Const(1))
	p.Store(0, Rel, x, mem.Const(1))
	p.RMW(1, AcqRel, x, mem.Const(1), 0, mem.RMWAdd)
	p.Load(2, Acq, x, 1)
	p.Load(2, Rlx, d, 2)
	p.Observe(2, 1, "rx")
	p.Observe(2, 2, "rd")
	res, err := Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Allowed["rx=2; rd=0"] {
		t.Error("acquire of the RMW's value must synchronize transitively with T0's release")
	}
	if !res.Allowed["rx=2; rd=1"] {
		t.Error("the synchronized outcome must be allowed")
	}
}
